// Package catalog is the serving layer's relation store: a versioned,
// mutable collection of named relations that queries are prepared
// against. The catalog owns the naming (Create/Drop) and routes
// mutations (Insert/Delete/Replace) to the underlying
// minesweeper.Relation values, whose epoch counters let every
// PreparedQuery bound through the catalog detect staleness and re-bind
// transparently on its next execution — the mechanism that turns the
// one-shot library into a long-lived service.
//
// Each relation carries a default variable binding (its relio header),
// so textual queries such as "R(A,B), S(B,C)" resolve against the
// catalog and relations round-trip through the relio interchange
// format.
package catalog

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"minesweeper"
	"minesweeper/internal/relio"
)

// entry pairs a relation with its default variable binding.
type entry struct {
	rel  *minesweeper.Relation
	vars []string
}

// Info describes one cataloged relation.
type Info struct {
	Name   string   `json:"name"`
	Vars   []string `json:"vars"`
	Arity  int      `json:"arity"`
	Tuples int      `json:"tuples"`
	Epoch  uint64   `json:"epoch"`
}

// Catalog is a named, mutable set of relations, safe for concurrent
// use. The zero value is not usable; call New.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{rels: map[string]*entry{}}
}

// Create adds a new relation under the given name with the given
// default variable binding (arity = len(vars)) and initial tuples. It
// fails if the name is already taken or the vars repeat.
func (c *Catalog) Create(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.createLocked(name, vars, tuples)
}

// createLocked is Create with c.mu held.
func (c *Catalog) createLocked(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty relation name")
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("catalog: relation %q: empty variable list", name)
	}
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			return nil, fmt.Errorf("catalog: relation %q: repeated variable %q", name, v)
		}
		seen[v] = true
	}
	if _, dup := c.rels[name]; dup {
		return nil, fmt.Errorf("catalog: relation %q already exists", name)
	}
	rel, err := minesweeper.NewRelation(name, len(vars), tuples)
	if err != nil {
		return nil, err
	}
	c.rels[name] = &entry{rel: rel, vars: append([]string(nil), vars...)}
	return rel, nil
}

// Get returns the named relation.
func (c *Catalog) Get(name string) (*minesweeper.Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	if !ok {
		return nil, false
	}
	return e.rel, true
}

// Vars returns the relation's default variable binding.
func (c *Catalog) Vars(name string) ([]string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), e.vars...), true
}

// Insert adds tuples to the named relation, bumping its epoch, and
// returns the relation's post-mutation description. Queries prepared
// against the relation pick up the new tuples on their next execution.
// Catalog mutations run under the catalog's write lock, so the returned
// Info is exactly the state this mutation produced — concurrent
// mutations cannot skew the reported epoch or tuple count.
func (c *Catalog) Insert(name string, tuples ...[]int) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := e.rel.Insert(tuples...); err != nil {
		return Info{}, err
	}
	return e.describe(name), nil
}

// Delete removes every stored copy of each given tuple from the named
// relation, returning how many rows were removed and the post-mutation
// description.
func (c *Catalog) Delete(name string, tuples ...[]int) (int, Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return 0, Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	n, err := e.rel.Delete(tuples...)
	if err != nil {
		return 0, Info{}, err
	}
	return n, e.describe(name), nil
}

// Replace swaps the named relation's contents, bumping its epoch, and
// returns the post-mutation description.
func (c *Catalog) Replace(name string, tuples [][]int) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := e.rel.Replace(tuples); err != nil {
		return Info{}, err
	}
	return e.describe(name), nil
}

// Drop removes the relation from the catalog. The *Relation value stays
// valid for queries still holding it, but it is no longer reachable by
// name and its name becomes free.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[name]; !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	delete(c.rels, name)
	return nil
}

// Len returns the number of cataloged relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Names returns the cataloged relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Relations returns a snapshot description of every cataloged relation,
// sorted by name. Entries are read entirely under the catalog lock —
// Load's replace path rewrites e.vars under the write lock, so readers
// must not hold slice references past the unlock.
func (c *Catalog) Relations() []Info {
	c.mu.RLock()
	out := make([]Info, 0, len(c.rels))
	for n, e := range c.rels {
		out = append(out, e.describe(n))
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// describe renders the entry as an Info. Callers hold c.mu (read or
// write): the vars copy must happen under the lock.
func (e *entry) describe(name string) Info {
	return Info{
		Name:   name,
		Vars:   append([]string(nil), e.vars...),
		Arity:  e.rel.Arity(),
		Tuples: e.rel.Len(),
		Epoch:  e.rel.Epoch(),
	}
}

// Load reads one relation in the relio interchange format. A new name
// is created; an existing name of the same arity has its contents
// replaced in place (bumping the epoch, so bound prepared queries see
// the new data) and its default variable binding updated. Loading over
// an existing relation with a different arity is an error — drop it
// first.
func (c *Catalog) Load(r io.Reader, source string) (Info, error) {
	parsed, err := relio.ReadRelation(r, source)
	if err != nil {
		return Info{}, err
	}
	// Holding c.mu across the whole create-or-replace keeps the load
	// atomic: a concurrent Drop cannot strand the upload on an orphaned
	// relation object, and two concurrent loads of the same new name
	// serialize into create-then-replace instead of one of them failing.
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, exists := c.rels[parsed.Name]; exists {
		if e.rel.Arity() != len(parsed.Vars) {
			return Info{}, fmt.Errorf("catalog: relation %q exists with arity %d, load has arity %d (drop it first)",
				parsed.Name, e.rel.Arity(), len(parsed.Vars))
		}
		if err := e.rel.Replace(parsed.Tuples); err != nil {
			return Info{}, err
		}
		e.vars = append([]string(nil), parsed.Vars...)
		return e.describe(parsed.Name), nil
	}
	if _, err := c.createLocked(parsed.Name, parsed.Vars, parsed.Tuples); err != nil {
		return Info{}, err
	}
	return c.rels[parsed.Name].describe(parsed.Name), nil
}

// Dump writes the named relation in the relio interchange format
// (round-trips through Load).
func (c *Catalog) Dump(w io.Writer, name string) error {
	c.mu.RLock()
	e, ok := c.rels[name]
	var vars []string
	var tuples [][]int
	if ok {
		vars = append([]string(nil), e.vars...)
		tuples = e.rel.Tuples()
	}
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	return relio.WriteRelation(w, &relio.Relation{Name: name, Vars: vars, Tuples: tuples})
}

// Query parses a textual join expression such as "R(A,B), S(B,C)"
// against the catalog's relations.
func (c *Catalog) Query(expr string) (*minesweeper.Query, error) {
	c.mu.RLock()
	rels := make(map[string]*minesweeper.Relation, len(c.rels))
	for n, e := range c.rels {
		rels[n] = e.rel
	}
	c.mu.RUnlock()
	return minesweeper.ParseQuery(expr, rels)
}

package ordered

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{3, 7}
	if r.Empty() || !r.Contains(3) || !r.Contains(7) || r.Contains(8) || r.Contains(2) {
		t.Fatalf("Range{3,7} misbehaves")
	}
	if (Range{5, 4}).Empty() != true {
		t.Fatal("Range{5,4} should be empty")
	}
	got := Range{1, 6}.Intersect(Range{4, 9})
	if got.Lo != 4 || got.Hi != 6 {
		t.Fatalf("Intersect = %v", got)
	}
	if !(Range{1, 3}).Intersect(Range{5, 9}).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestOpenToRange(t *testing.T) {
	cases := []struct {
		l, r   int
		lo, hi int
	}{
		{2, 5, 3, 4},
		{2, 3, 3, 2}, // empty
		{NegInf, 4, NegInf, 3},
		{7, PosInf, 8, PosInf},
		{NegInf, PosInf, NegInf, PosInf},
	}
	for _, c := range cases {
		got := OpenToRange(c.l, c.r)
		if got.Lo != c.lo || got.Hi != c.hi {
			t.Errorf("OpenToRange(%d,%d) = %v, want [%d,%d]", c.l, c.r, got, c.lo, c.hi)
		}
	}
}

func TestRangeSetInsertMerging(t *testing.T) {
	s := NewRangeSet()
	s.Insert(5, 9)
	s.Insert(1, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Insert(3, 4) // adjacent to [1,2] -> merge to [1,4], adjacent to [5,9] -> [1,9]
	if s.Len() != 1 {
		t.Fatalf("adjacent merge failed: %v", s)
	}
	if r := s.Ranges()[0]; r.Lo != 1 || r.Hi != 9 {
		t.Fatalf("merged = %v", r)
	}
	s.Insert(20, 30)
	s.Insert(25, 40) // overlap
	if s.Len() != 2 {
		t.Fatalf("overlap merge failed: %v", s)
	}
	if r := s.Ranges()[1]; r.Lo != 20 || r.Hi != 40 {
		t.Fatalf("merged = %v", r)
	}
	s.Insert(0, 100) // swallows everything
	if s.Len() != 1 || s.Ranges()[0] != (Range{0, 100}) {
		t.Fatalf("swallow failed: %v", s)
	}
	s.Insert(50, 60) // no-op, already covered
	if s.Len() != 1 || s.Ranges()[0] != (Range{0, 100}) {
		t.Fatalf("covered insert changed set: %v", s)
	}
}

func TestRangeSetOpenIntervalSemantics(t *testing.T) {
	s := NewRangeSet()
	// The paper's example: (2,5) and (5,9) must NOT merge (5 uncovered),
	// while (2,5) and (4,9) must merge into (2,9).
	s.InsertOpen(2, 5)
	s.InsertOpen(5, 9)
	if s.Covers(5) {
		t.Fatal("5 must stay uncovered")
	}
	if !s.Covers(3) || !s.Covers(4) || !s.Covers(6) || !s.Covers(8) || s.Covers(9) || s.Covers(2) {
		t.Fatalf("open interval coverage wrong: %v", s)
	}
	s2 := NewRangeSet()
	s2.InsertOpen(2, 5)
	s2.InsertOpen(4, 9)
	if s2.Len() != 1 || !s2.Covers(4) || !s2.Covers(5) || s2.Covers(9) {
		t.Fatalf("overlapping open merge wrong: %v", s2)
	}
	// Empty open interval is a no-op.
	s3 := NewRangeSet()
	s3.InsertOpen(4, 5)
	if !s3.Empty() {
		t.Fatalf("(4,5) should be empty: %v", s3)
	}
}

func TestRangeSetNext(t *testing.T) {
	s := NewRangeSet()
	s.Insert(2, 4)
	s.Insert(8, 10)
	cases := [][2]int{{0, 0}, {1, 1}, {2, 5}, {3, 5}, {4, 5}, {5, 5}, {7, 7}, {8, 11}, {10, 11}, {11, 11}}
	for _, c := range cases {
		if got := s.Next(c[0]); got != c[1] {
			t.Errorf("Next(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	s.Insert(12, PosInf)
	if got := s.Next(13); got != PosInf {
		t.Errorf("Next(13) with infinite tail = %d", got)
	}
	if got := s.Next(11); got != 11 {
		t.Errorf("Next(11) = %d", got)
	}
	all := NewRangeSet()
	all.Insert(NegInf, PosInf)
	if got := all.Next(-1); got != PosInf {
		t.Errorf("Next on full set = %d", got)
	}
}

func TestRangeSetSentinelInsert(t *testing.T) {
	s := NewRangeSet()
	s.InsertOpen(NegInf, 0) // covers everything below 0
	if got := s.Next(NegInf + 5); got != 0 {
		t.Fatalf("Next below = %d", got)
	}
	s.InsertOpen(10, PosInf)
	if !s.Covers(11) || s.Covers(10) {
		t.Fatalf("upper sentinel coverage wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Bridging the middle merges all three into one.
	s.InsertOpen(-1, 11)
	if s.Len() != 1 {
		t.Fatalf("bridge merge failed: %v", s)
	}
	if got := s.Next(5); got != PosInf {
		t.Fatalf("Next(5) = %d", got)
	}
}

func TestRangeSetWithinGaps(t *testing.T) {
	s := NewRangeSet()
	s.Insert(2, 4)
	s.Insert(8, 10)
	s.Insert(15, 20)
	within := s.Within(3, 16)
	want := []Range{{3, 4}, {8, 10}, {15, 16}}
	if len(within) != len(want) {
		t.Fatalf("Within = %v", within)
	}
	for i := range want {
		if within[i] != want[i] {
			t.Fatalf("Within = %v, want %v", within, want)
		}
	}
	gaps := s.Gaps(0, 12)
	wantGaps := []Range{{0, 1}, {5, 7}, {11, 12}}
	if len(gaps) != len(wantGaps) {
		t.Fatalf("Gaps = %v", gaps)
	}
	for i := range wantGaps {
		if gaps[i] != wantGaps[i] {
			t.Fatalf("Gaps = %v, want %v", gaps, wantGaps)
		}
	}
	if g := s.Gaps(2, 4); len(g) != 0 {
		t.Fatalf("Gaps inside covered = %v", g)
	}
	if g := s.Gaps(5, 7); len(g) != 1 || g[0] != (Range{5, 7}) {
		t.Fatalf("Gaps fully uncovered = %v", g)
	}
	if !s.CoversRange(2, 4) || s.CoversRange(2, 5) || !s.CoversRange(16, 19) {
		t.Fatal("CoversRange wrong")
	}
	if !s.CoversRange(5, 4) {
		t.Fatal("empty query range should be trivially covered")
	}
}

func TestNextUnion(t *testing.T) {
	a, b := NewRangeSet(), NewRangeSet()
	a.Insert(0, 4)
	b.Insert(5, 9)
	a.Insert(12, 14)
	if got := NextUnion(a, b, 0); got != 10 {
		t.Fatalf("NextUnion = %d, want 10", got)
	}
	if got := NextUnion(a, b, 11); got != 11 {
		t.Fatalf("NextUnion = %d, want 11", got)
	}
	if got := NextUnion(a, b, 12); got != 15 {
		t.Fatalf("NextUnion = %d, want 15", got)
	}
	// Fully covered tail.
	a.Insert(20, PosInf)
	b.Insert(15, 22)
	if got := NextUnion(a, b, 15); got != PosInf {
		t.Fatalf("NextUnion covered tail = %d", got)
	}
	// Empty sets pass everything through.
	e1, e2 := NewRangeSet(), NewRangeSet()
	if got := NextUnion(e1, e2, 42); got != 42 {
		t.Fatalf("NextUnion empty = %d", got)
	}
}

// TestRangeSetAgainstReference drives random inserts and compares Covers,
// Next, Gaps, and Within against a brute-force boolean-array reference.
func TestRangeSetAgainstReference(t *testing.T) {
	const dom = 120
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := NewRangeSet()
		covered := make([]bool, dom)
		for op := 0; op < 40; op++ {
			lo := rng.Intn(dom)
			hi := lo + rng.Intn(dom-lo)
			s.Insert(lo, hi)
			for v := lo; v <= hi; v++ {
				covered[v] = true
			}
			// Invariant: ranges are disjoint, non-adjacent and sorted.
			prev := Range{NegInf, NegInf}
			for _, r := range s.Ranges() {
				if r.Empty() {
					t.Fatalf("empty stored range %v", r)
				}
				if prev.Hi != NegInf && r.Lo <= prev.Hi+1 {
					t.Fatalf("ranges not canonical: %v after %v", r, prev)
				}
				prev = r
			}
			for v := 0; v < dom; v++ {
				if s.Covers(v) != covered[v] {
					t.Fatalf("Covers(%d) = %v, want %v (%v)", v, s.Covers(v), covered[v], s)
				}
			}
			for v := 0; v < dom; v++ {
				want := dom + 1 // “none within domain”
				for u := v; u < dom; u++ {
					if !covered[u] {
						want = u
						break
					}
				}
				got := s.Next(v)
				if want == dom+1 {
					if got < dom && got >= v {
						// reference says everything ≥ v covered inside domain;
						// got must be ≥ dom
						t.Fatalf("Next(%d) = %d, want ≥ %d", v, got, dom)
					}
				} else if got != want {
					t.Fatalf("Next(%d) = %d, want %d (%v)", v, got, want, s)
				}
			}
		}
	}
}

func TestRangeSetGapsQuick(t *testing.T) {
	f := func(ranges [][2]uint8, lo8, hi8 uint8) bool {
		lo, hi := int(lo8), int(hi8)
		if lo > hi {
			lo, hi = hi, lo
		}
		s := NewRangeSet()
		covered := map[int]bool{}
		for _, r := range ranges {
			a, b := int(r[0]), int(r[1])
			if a > b {
				a, b = b, a
			}
			s.Insert(a, b)
			for v := a; v <= b; v++ {
				covered[v] = true
			}
		}
		// Gaps ∪ Within must partition [lo,hi].
		marks := map[int]int{}
		for _, g := range s.Gaps(lo, hi) {
			for v := g.Lo; v <= g.Hi; v++ {
				marks[v]++
				if covered[v] {
					return false
				}
			}
		}
		for _, w := range s.Within(lo, hi) {
			for v := w.Lo; v <= w.Hi; v++ {
				marks[v]++
				if !covered[v] {
					return false
				}
			}
		}
		for v := lo; v <= hi; v++ {
			if marks[v] != 1 {
				return false
			}
		}
		return len(marks) == hi-lo+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetString(t *testing.T) {
	s := NewRangeSet()
	s.Insert(1, 3)
	s.Insert(NegInf, -5)
	s.Insert(10, PosInf)
	got := s.String()
	want := "{[-inf,-5] [1,3] [10,+inf]}"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

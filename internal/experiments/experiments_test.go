package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseCount reverses fmtCount for assertions.
func parseCount(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	if strings.HasSuffix(s, "M") {
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	} else if strings.HasSuffix(s, "K") {
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parseCount(%q): %v", s, err)
	}
	return v * mult
}

func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has nil runner", e.Name)
		}
	}
	for _, want := range []string{"fig2", "betaacyclic", "appj", "intersect", "bowtie", "triangle", "treewidth", "memo", "gao"} {
		if !names[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestEveryExperimentRunsSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tab, err := e.Run(Small)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if tab.ID == "" || tab.Title == "" || len(tab.Headers) == 0 {
				t.Fatalf("%s: incomplete table metadata", e.Name)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: no rows", e.Name)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Fatalf("%s: row %d has %d cells, want %d", e.Name, i, len(row), len(tab.Headers))
				}
			}
		})
	}
}

// TestFigure2Shape verifies the paper's headline phenomenon at small
// scale: the measured certificate is much smaller than the input on every
// dataset × query combination.
func TestFigure2Shape(t *testing.T) {
	tab, err := Figure2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("expected 9 rows (3 queries × 3 datasets), got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		n := parseCount(t, row[2])
		c := parseCount(t, row[3])
		if c <= 0 || n <= 0 {
			t.Fatalf("degenerate row %v", row)
		}
		if c*2 > n {
			t.Errorf("row %v: |C|=%v not well below N=%v", row, c, n)
		}
	}
}

// TestBetaAcyclicLinearity: probe counts on the Appendix J family must
// grow sub-quadratically in M (the theorem says linearly; allow slack).
func TestBetaAcyclicLinearity(t *testing.T) {
	tab, err := BetaAcyclicScaling(Small)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	m0 := parseCount(t, first[1])
	m1 := parseCount(t, last[1])
	p0 := parseCount(t, first[4])
	p1 := parseCount(t, last[4])
	growth := (p1 / p0) / (m1 / m0)
	if growth > 3 {
		t.Fatalf("probe growth %.2fx per M-doubling factor: not linear (rows %v → %v)", growth, first, last)
	}
}

// TestTriangleSeparation: the generic/special CDS-work ratio must widen
// as K grows (Θ(K²) vs Õ(K)).
func TestTriangleSeparation(t *testing.T) {
	tab, err := TriangleCDSComparison(Small)
	if err != nil {
		t.Fatal(err)
	}
	firstSpecial := parseCount(t, tab.Rows[0][2])
	firstGeneric := parseCount(t, tab.Rows[0][3])
	lastSpecial := parseCount(t, tab.Rows[len(tab.Rows)-1][2])
	lastGeneric := parseCount(t, tab.Rows[len(tab.Rows)-1][3])
	if !(lastGeneric/lastSpecial > firstGeneric/firstSpecial) {
		t.Fatalf("separation not widening: first %v/%v, last %v/%v",
			firstGeneric, firstSpecial, lastGeneric, lastSpecial)
	}
}

// TestTreewidthGrowth: within w=2 rows, CDS backtracks grow superlinearly
// in m (Proposition 5.3's Ω(m^w) cost), while full probes stay ~linear.
func TestTreewidthGrowth(t *testing.T) {
	tab, err := TreewidthFamily(Small)
	if err != nil {
		t.Fatal(err)
	}
	var w2 [][]string
	for _, row := range tab.Rows {
		if row[0] == "2" {
			w2 = append(w2, row)
		}
	}
	if len(w2) < 2 {
		t.Fatal("need at least two w=2 rows")
	}
	m0 := parseCount(t, w2[0][1])
	m1 := parseCount(t, w2[len(w2)-1][1])
	b0 := parseCount(t, w2[0][5])
	b1 := parseCount(t, w2[len(w2)-1][5])
	if b1/b0 < 1.5*(m1/m0) {
		t.Fatalf("backtracks grow like m, expected ~m²: %v → %v for m %v → %v", b0, b1, m0, m1)
	}
	p0 := parseCount(t, w2[0][4])
	p1 := parseCount(t, w2[len(w2)-1][4])
	if p1/p0 > 2.5*(m1/m0) {
		t.Fatalf("probes %v → %v grew superlinearly in m %v → %v; expected ~m", p0, p1, m0, m1)
	}
}

// TestGAODependenceShape: under (C,A,B) the FindGap count must be far
// below the (A,B,C) count at the largest n.
func TestGAODependenceShape(t *testing.T) {
	tab, err := GAODependence(Small)
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows
	last2 := rows[len(rows)-2:]
	abc := parseCount(t, last2[0][3])
	cab := parseCount(t, last2[1][3])
	if !(cab*2 < abc) {
		t.Fatalf("(C,A,B) findgaps %v not well below (A,B,C) %v", cab, abc)
	}
}

// TestBowtieFlat: probes must not grow with N on the O(1)-certificate
// family.
func TestBowtieFlat(t *testing.T) {
	tab, err := BowtieAdaptivity(Small)
	if err != nil {
		t.Fatal(err)
	}
	p0 := parseCount(t, tab.Rows[0][2])
	p1 := parseCount(t, tab.Rows[len(tab.Rows)-1][2])
	if p1 > 2*p0+4 {
		t.Fatalf("bow-tie probes grew with N: %v → %v", p0, p1)
	}
}

// TestIntersectionContrast: interleaved probes must dwarf block probes.
func TestIntersectionContrast(t *testing.T) {
	tab, err := IntersectionAdaptivity(Small)
	if err != nil {
		t.Fatal(err)
	}
	byFam := map[string]float64{}
	for _, row := range tab.Rows {
		byFam[row[0]] += parseCount(t, row[3])
	}
	if !(byFam["blocks"]*10 < byFam["interleaved"]) {
		t.Fatalf("blocks=%v interleaved=%v: expected >10x contrast", byFam["blocks"], byFam["interleaved"])
	}
}

// TestMemoizationQuadratic: with memoization, ops/N² must stay flat; the
// ablated CDS must grow strictly faster than quadratic.
func TestMemoizationQuadratic(t *testing.T) {
	tab, err := MemoizationEffect(Small)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("unparseable cell %q", tab.Rows[row][col])
		}
		return v
	}
	firstMemo, lastMemo := cell(0, 2), cell(len(tab.Rows)-1, 2)
	if lastMemo > 6*firstMemo {
		t.Fatalf("memo ops/N² grew from %.1f to %.1f: memoization not quadratic", firstMemo, lastMemo)
	}
	firstRaw, lastRaw := cell(0, 4), cell(len(tab.Rows)-1, 4)
	if lastRaw < 1.5*firstRaw {
		t.Fatalf("ablated ops/N² flat (%.1f → %.1f): ablation not superquadratic?", firstRaw, lastRaw)
	}
}

// TestGAOQualityShape: the non-nested order must cost more CDS work.
func TestGAOQualityShape(t *testing.T) {
	tab, err := GAOQuality(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "true" || tab.Rows[1][2] != "false" {
		t.Fatalf("nestedness flags wrong: %v", tab.Rows)
	}
	nestedOps := parseCount(t, tab.Rows[0][5])
	badOps := parseCount(t, tab.Rows[1][5])
	if badOps <= nestedOps {
		t.Fatalf("non-nested order should cost more CDS work: %v vs %v", badOps, nestedOps)
	}
}

// TestLayeredPathShape: Minesweeper's work must stay far below NPRR's on
// the no-ℓ-path family.
func TestLayeredPathShape(t *testing.T) {
	tab, err := LayeredPathComparison(Small)
	if err != nil {
		t.Fatal(err)
	}
	byEngine := map[string]float64{}
	for _, row := range tab.Rows {
		byEngine[row[3]] += parseCount(t, row[5])
	}
	if !(byEngine["minesweeper"]*10 < byEngine["nprr"]) {
		t.Fatalf("minesweeper=%v nprr=%v: expected >10x gap", byEngine["minesweeper"], byEngine["nprr"])
	}
}

package dataset

// The E13 instances: axis-aligned clustered joins. Both relations agree
// on the clustered leading attribute but occupy disjoint (or barely
// overlapping) bands on the trailing one, so an interval-only CDS pays
// one probe round per cluster member while a box-cover CDS retires each
// cluster with a handful of boxes — the workload from the box-cover /
// geometric-resolution line of work.

// ClusteredBandJoin builds the E13 instance: Q = R(X,Y) ⋈ S(X,Y) where
// both relations share `clusters` X-clusters of `width` consecutive
// values (cluster c occupies X ∈ [c·gap, c·gap+width)), R's Y values sit
// in the low band {0, 1} and S's in the high band {10, 11}. The bands
// are disjoint, so the join is empty — but an interval-only CDS only
// learns ⟨X=x, Y-gap⟩ one x at a time (Θ(clusters·width) probe rounds),
// while box widening certifies each cluster's X-range × Y-band
// rectangle in O(log width) rounds.
func ClusteredBandJoin(clusters, width int) (r, s [][]int) {
	const gap = 1 << 16
	for c := 0; c < clusters; c++ {
		base := c * gap
		for i := 0; i < width; i++ {
			x := base + i
			r = append(r, []int{x, 0}, []int{x, 1})
			s = append(s, []int{x, 10}, []int{x, 11})
		}
	}
	return r, s
}

// ClusteredOverlapJoin is the non-empty E13 variant: the same shared
// X-clusters, but every `hit`-th cluster member carries one overlapping
// Y value (Y = 5 in both relations) in addition to its private band, so
// the join emits exactly one tuple per such member. Output correctness
// across engines and dictionary modes is what the equivalence suite
// checks on this shape; the box win shows on the ruled-out remainder.
func ClusteredOverlapJoin(clusters, width, hit int) (r, s [][]int) {
	const gap = 1 << 16
	for c := 0; c < clusters; c++ {
		base := c * gap
		for i := 0; i < width; i++ {
			x := base + i
			r = append(r, []int{x, 0}, []int{x, 1})
			s = append(s, []int{x, 10}, []int{x, 11})
			if hit > 0 && i%hit == 0 {
				r = append(r, []int{x, 5})
				s = append(s, []int{x, 5})
			}
		}
	}
	return r, s
}

package certificate

import (
	"strings"
	"testing"
)

func mapInstance(m map[string]int) Instance {
	return InstanceFunc(func(v Var) (int, bool) {
		val, ok := m[v.key()]
		return val, ok
	})
}

func TestVarString(t *testing.T) {
	v := Var{Rel: "R", Index: []int{0, 2}}
	if v.String() != "R[0,2]" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestOpString(t *testing.T) {
	if Lt.String() != "<" || Eq.String() != "=" || Gt.String() != ">" || Op(9).String() != "?" {
		t.Fatal("Op.String wrong")
	}
}

func TestSatisfiedBy(t *testing.T) {
	a := Argument{
		{Left: Var{Rel: "R", Index: []int{0}}, Op: Lt, Right: Var{Rel: "S", Index: []int{0}}},
		{Left: Var{Rel: "S", Index: []int{0}}, Op: Eq, Right: Var{Rel: "T", Index: []int{0}}},
	}
	ok, err := a.SatisfiedBy(mapInstance(map[string]int{"R[0]": 1, "S[0]": 5, "T[0]": 5}))
	if err != nil || !ok {
		t.Fatalf("should satisfy: %v %v", ok, err)
	}
	ok, err = a.SatisfiedBy(mapInstance(map[string]int{"R[0]": 9, "S[0]": 5, "T[0]": 5}))
	if err != nil || ok {
		t.Fatalf("Lt violated but satisfied")
	}
	ok, err = a.SatisfiedBy(mapInstance(map[string]int{"R[0]": 1, "S[0]": 5, "T[0]": 6}))
	if err != nil || ok {
		t.Fatalf("Eq violated but satisfied")
	}
	// Gt.
	g := Argument{{Left: Var{Rel: "R", Index: []int{0}}, Op: Gt, Right: Var{Rel: "S", Index: []int{0}}}}
	ok, _ = g.SatisfiedBy(mapInstance(map[string]int{"R[0]": 9, "S[0]": 5}))
	if !ok {
		t.Fatal("Gt should hold")
	}
	// Missing variable errors (the Example 2.4 shape mismatch).
	if _, err := a.SatisfiedBy(mapInstance(map[string]int{"R[0]": 1})); err == nil {
		t.Fatal("missing variable must error")
	}
}

func TestBuildProp26(t *testing.T) {
	vars := []AttrVar{
		{V: Var{Rel: "R", Index: []int{0}}, Value: 5},
		{V: Var{Rel: "S", Index: []int{1}}, Value: 5},
		{V: Var{Rel: "S", Index: []int{0}}, Value: 2},
		{V: Var{Rel: "T", Index: []int{0}}, Value: 9},
	}
	arg := BuildProp26(vars)
	// One equality (the two value-5 vars) + two inequalities (2<5, 5<9).
	eqs, lts := 0, 0
	for _, c := range arg {
		switch c.Op {
		case Eq:
			eqs++
		case Lt:
			lts++
		}
	}
	if eqs != 1 || lts != 2 {
		t.Fatalf("eqs=%d lts=%d: %v", eqs, lts, arg)
	}
	inst := mapInstance(map[string]int{"R[0]": 5, "S[1]": 5, "S[0]": 2, "T[0]": 9})
	ok, err := arg.SatisfiedBy(inst)
	if err != nil || !ok {
		t.Fatalf("own instance must satisfy: %v %v", ok, err)
	}
	// Order-preserving transform still satisfies (value-obliviousness).
	shifted := mapInstance(map[string]int{"R[0]": 50, "S[1]": 50, "S[0]": 20, "T[0]": 90})
	okShift, errShift := arg.SatisfiedBy(shifted)
	if errShift != nil || !okShift {
		t.Fatalf("order-preserving shift must satisfy: %v %v", okShift, errShift)
	}
	// Order-breaking swap must fail.
	swapped := mapInstance(map[string]int{"R[0]": 5, "S[1]": 5, "S[0]": 7, "T[0]": 9})
	okSwap, errSwap := arg.SatisfiedBy(swapped)
	if errSwap != nil || okSwap {
		t.Fatalf("order-breaking instance must not satisfy")
	}
}

func TestBuildProp26Empty(t *testing.T) {
	if got := BuildProp26(nil); got != nil {
		t.Fatalf("empty input should give empty argument, got %v", got)
	}
}

func TestBuildProp26SingleValue(t *testing.T) {
	vars := []AttrVar{
		{V: Var{Rel: "R", Index: []int{0}}, Value: 3},
		{V: Var{Rel: "S", Index: []int{0}}, Value: 3},
		{V: Var{Rel: "T", Index: []int{0}}, Value: 3},
	}
	arg := BuildProp26(vars)
	if len(arg) != 2 {
		t.Fatalf("3 equal vars need 2 equalities, got %v", arg)
	}
	for _, c := range arg {
		if c.Op != Eq {
			t.Fatalf("expected only equalities: %v", arg)
		}
	}
}

func TestArgumentString(t *testing.T) {
	a := Argument{{Left: Var{Rel: "R", Index: []int{0}}, Op: Lt, Right: Var{Rel: "S", Index: []int{1}}}}
	if got := a.String(); !strings.Contains(got, "R[0] < S[1]") {
		t.Fatalf("String = %q", got)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{FindGaps: 1, Comparisons: 2, ProbePoints: 3, Constraints: 4, CDSOps: 5, Outputs: 6, Backtracks: 7}
	b := Stats{FindGaps: 10, Comparisons: 20, ProbePoints: 30, Constraints: 40, CDSOps: 50, Outputs: 60, Backtracks: 70}
	a.Add(&b)
	if a.FindGaps != 11 || a.Comparisons != 22 || a.ProbePoints != 33 ||
		a.Constraints != 44 || a.CDSOps != 55 || a.Outputs != 66 || a.Backtracks != 77 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.CertificateEstimate() != 11 {
		t.Fatal("CertificateEstimate wrong")
	}
	if !strings.Contains(a.String(), "findgaps=11") {
		t.Fatalf("String = %q", a.String())
	}
}

package experiments

import (
	"fmt"

	"minesweeper/internal/cds"
	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// runExample41 drives the CDS directly with the constraint families (i)-(iv)
// of Example 4.1 plus bounding constraints, then exhausts getProbePoint,
// returning the accumulated stats. Total CDS work must be ~N² thanks to
// inferred-constraint memoization (the brute-force strategy is Ω(N³));
// pass memo=false for the ablated variant.
func runExample41(n int, memo bool) (*certificate.Stats, error) {
	tr := cds.NewTree(3)
	tr.SetMemo(memo)
	var stats certificate.Stats
	tr.SetStats(&stats)
	star, ni, pi := cds.Star, ordered.NegInf, ordered.PosInf
	// (i) ⟨a,b,(-∞,1)⟩
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{cds.Eq(a), cds.Eq(b)}, Lo: ni, Hi: 1})
		}
	}
	// (ii) ⟨*,b,(2i-2,2i)⟩
	for b := 1; b <= n; b++ {
		for i := 1; i <= n; i++ {
			tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star, cds.Eq(b)}, Lo: 2*i - 2, Hi: 2 * i})
		}
	}
	// (iii) ⟨*,*,(2i-1,2i+1)⟩ and (iv) ⟨*,*,(2N,∞)⟩
	for i := 1; i <= n; i++ {
		tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star, star}, Lo: 2*i - 1, Hi: 2*i + 1})
	}
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star, star}, Lo: 2 * n, Hi: pi})
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star, star}, Lo: ni, Hi: 1})
	// Bound A and B to [1, N].
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{}, Lo: ni, Hi: 1})
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{}, Lo: n, Hi: pi})
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star}, Lo: ni, Hi: 1})
	tr.InsConstraint(cds.Constraint{Prefix: cds.Pattern{star}, Lo: n, Hi: pi})

	guard := 10*n*n + 100
	for i := 0; ; i++ {
		if i > guard {
			return nil, fmt.Errorf("experiments: Example 4.1 CDS did not converge within %d probes", guard)
		}
		probe := tr.GetProbePoint()
		if probe == nil {
			return &stats, nil
		}
		// No (a,b,c) with a,b ∈ [N] is active by construction.
		if probe[0] >= 1 && probe[0] <= n && probe[1] >= 1 && probe[1] <= n {
			return nil, fmt.Errorf("experiments: impossible active probe %v", probe)
		}
	}
}

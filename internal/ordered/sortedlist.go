// Package ordered provides the ordered building blocks of the Minesweeper
// join algorithm: an AVL-tree SortedList (Appendix E.1 of the paper), an
// IntervalList of disjoint open intervals built on top of it (Appendix E.2),
// and the dyadic interval tree used by the specialized triangle-query
// constraint data structure (Appendix L.1).
//
// All values are ints. The sentinels NegInf and PosInf stand for the paper's
// -∞ and +∞; they are never stored inside a SortedList but may appear as
// interval endpoints.
package ordered

// NegInf and PosInf are the -∞/+∞ sentinels used throughout the library.
// They are chosen so that v-1 and v+1 never overflow for any finite domain
// value v produced by the data generators (domain values are non-negative
// and far below PosInf).
const (
	NegInf = -1 << 60
	PosInf = 1 << 60
)

// IsFinite reports whether v is a finite domain value (not a sentinel).
func IsFinite(v int) bool { return v > NegInf && v < PosInf }

// SortedList stores a set of distinct int keys, each with a payload of type
// V, in an AVL tree. It supports the operations of Appendix E.1:
// Find, FindLub (least key ≥ v), Insert, Delete, and DeleteInterval
// (delete every key strictly inside an open interval). All operations run
// in O(log n) worst case except DeleteInterval, which is O((k+1) log n) for
// k deleted keys and therefore O(log n) amortized against their insertions.
type SortedList[V any] struct {
	root *avlNode[V]
	size int
}

type avlNode[V any] struct {
	key         int
	val         V
	left, right *avlNode[V]
	height      int
}

// NewSortedList returns an empty SortedList.
func NewSortedList[V any]() *SortedList[V] { return &SortedList[V]{} }

// Len returns the number of stored keys.
func (s *SortedList[V]) Len() int { return s.size }

func height[V any](n *avlNode[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update[V any](n *avlNode[V]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func rotateRight[V any](y *avlNode[V]) *avlNode[V] {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft[V any](x *avlNode[V]) *avlNode[V] {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func rebalance[V any](n *avlNode[V]) *avlNode[V] {
	update(n)
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert stores val under key, replacing any existing payload.
// It reports whether the key was newly inserted.
func (s *SortedList[V]) Insert(key int, val V) bool {
	var added bool
	s.root, added = insertNode(s.root, key, val)
	if added {
		s.size++
	}
	return added
}

func insertNode[V any](n *avlNode[V], key int, val V) (*avlNode[V], bool) {
	if n == nil {
		return &avlNode[V]{key: key, val: val, height: 1}, true
	}
	var added bool
	switch {
	case key < n.key:
		n.left, added = insertNode(n.left, key, val)
	case key > n.key:
		n.right, added = insertNode(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	return rebalance(n), added
}

// Find returns the payload stored under key and whether it exists.
func (s *SortedList[V]) Find(key int) (V, bool) {
	n := s.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// FindLub returns the smallest key ≥ v together with its payload.
// ok is false when every stored key is < v.
func (s *SortedList[V]) FindLub(v int) (key int, val V, ok bool) {
	n := s.root
	var best *avlNode[V]
	for n != nil {
		if n.key >= v {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// FindGlb returns the largest key ≤ v together with its payload.
// ok is false when every stored key is > v.
func (s *SortedList[V]) FindGlb(v int) (key int, val V, ok bool) {
	n := s.root
	var best *avlNode[V]
	for n != nil {
		if n.key <= v {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest stored key. ok is false on an empty list.
func (s *SortedList[V]) Min() (key int, val V, ok bool) {
	n := s.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest stored key. ok is false on an empty list.
func (s *SortedList[V]) Max() (key int, val V, ok bool) {
	n := s.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Delete removes key and reports whether it was present.
func (s *SortedList[V]) Delete(key int) bool {
	var removed bool
	s.root, removed = deleteNode(s.root, key)
	if removed {
		s.size--
	}
	return removed
}

func deleteNode[V any](n *avlNode[V], key int) (*avlNode[V], bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case key < n.key:
		n.left, removed = deleteNode(n.left, key)
	case key > n.key:
		n.right, removed = deleteNode(n.right, key)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		n.right, _ = deleteNode(n.right, succ.key)
	}
	return rebalance(n), removed
}

// DeleteInterval removes every key strictly inside the open interval (l, r)
// and returns the removed keys in ascending order. Either endpoint may be a
// sentinel. Cost is O((k+1) log n) for k removed keys, so O(log n) amortized
// against the insertions that created them (Proposition E.2).
func (s *SortedList[V]) DeleteInterval(l, r int) []int {
	var removed []int
	for {
		key, _, ok := s.FindLub(l + 1)
		if l == NegInf {
			key, _, ok = s.Min()
		}
		if !ok || key >= r {
			return removed
		}
		s.Delete(key)
		removed = append(removed, key)
	}
}

// Ascend calls fn on every (key, payload) pair in ascending key order until
// fn returns false.
func (s *SortedList[V]) Ascend(fn func(key int, val V) bool) {
	ascend(s.root, fn)
}

func ascend[V any](n *avlNode[V], fn func(int, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// AscendFrom calls fn on every pair with key ≥ from, ascending, until fn
// returns false.
func (s *SortedList[V]) AscendFrom(from int, fn func(key int, val V) bool) {
	ascendFrom(s.root, from, fn)
}

func ascendFrom[V any](n *avlNode[V], from int, fn func(int, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= from {
		if !ascendFrom(n.left, from, fn) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
	}
	return ascendFrom(n.right, from, fn)
}

// Keys returns all stored keys in ascending order.
func (s *SortedList[V]) Keys() []int {
	keys := make([]int, 0, s.size)
	s.Ascend(func(k int, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Package storage is the serving layer's data plane: it owns the
// durable representation of the catalog — relations, their mutation
// epochs, and named prepared-query definitions — behind a pluggable
// Backend, so the compute plane (the engines, the shaping adapter, the
// catalog's naming layer) never touches a file directly.
//
// Two backends ship:
//
//   - Mem keeps everything in process memory: zero overhead, nothing
//     survives a restart. This is the historical msserve behavior.
//   - Durable pairs an append-only, CRC-checked write-ahead log with
//     periodic full snapshots. Every mutation is framed as one Record
//     and appended to the WAL *before* it is applied in memory; recovery
//     loads the newest snapshot and replays the WAL over it, truncating
//     a torn tail (a record half-written at the moment of a crash)
//     instead of failing. Once the log outgrows the last snapshot the
//     backend compacts: it dumps the full state to a fresh snapshot
//     (written through a temp file and an atomic rename) and rotates to
//     an empty WAL.
//
// The on-disk format is relio-compatible text: tuples are serialized
// exactly as relio tuple lines, variable bindings as relio header
// fields, and record framing lines start with "#!" so a plain relio
// reader skips them as comments. See wal.go for the framing grammar.
package storage

import (
	"errors"
	"fmt"
	"sort"
)

// ErrPoisoned marks a backend whose log tail is no longer trustworthy:
// an append or sync failed partway, so further mutations would risk
// diverging the in-memory state from the durable one. The catalog
// reacts by entering degraded read-only mode; queries keep serving,
// mutations fail until the backend is reopened (or the process
// restarts and recovers).
var ErrPoisoned = errors.New("storage: backend poisoned by a write failure")

// QueryDef is a named prepared-query definition: the textual query and
// the options it was registered with. Definitions persist so that a
// recovered server re-registers — and re-plans against the recovered
// data — every query its clients had prepared.
type QueryDef struct {
	Name    string   `json:"name"`
	Query   string   `json:"query"`
	Engine  string   `json:"engine,omitempty"`
	GAO     []string `json:"gao,omitempty"`
	Workers int      `json:"workers,omitempty"`
	Domain  string   `json:"domain,omitempty"`
	Select  string   `json:"select,omitempty"`
	Where   string   `json:"where,omitempty"`
}

// RelationState is one relation's durable state: its name, default
// variable binding, mutation epoch, and tuples.
type RelationState struct {
	Name   string
	Vars   []string
	Epoch  uint64
	Tuples [][]int
}

// State is a full catalog image: what a snapshot stores and what
// recovery returns. Relations and Queries are sorted by name.
type State struct {
	Relations []RelationState
	Queries   []QueryDef
}

// Op enumerates the mutation record types.
type Op byte

const (
	OpCreate    Op = iota // create a relation (vars + initial tuples; epoch restored from the record)
	OpDrop                // drop a relation
	OpInsert              // append tuples
	OpDelete              // remove every stored copy of each tuple
	OpReplace             // swap contents (and, when Vars is set, the default binding)
	OpPutQuery            // store a prepared-query definition
	OpDropQuery           // remove a prepared-query definition
)

var opNames = map[Op]string{
	OpCreate: "create", OpDrop: "drop", OpInsert: "insert",
	OpDelete: "delete", OpReplace: "replace",
	OpPutQuery: "putquery", OpDropQuery: "dropquery",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one logged mutation. Epoch is the relation's epoch the
// record applies at (its pre-mutation epoch — replay verifies it), or
// the epoch to restore for an OpCreate written by a snapshot.
type Record struct {
	Op     Op
	Name   string
	Epoch  uint64
	Vars   []string  // OpCreate always; OpReplace when the binding changes
	Tuples [][]int   // OpCreate/OpInsert/OpDelete/OpReplace
	Query  *QueryDef // OpPutQuery
}

// Stats reports a backend's counters, served by msserve /stats.
type Stats struct {
	Mode string `json:"mode"` // "memory" or "durable"
	Dir  string `json:"dir,omitempty"`
	// Seq is the current snapshot/WAL generation.
	Seq uint64 `json:"seq,omitempty"`
	// WALRecords / WALBytes describe the live WAL: records appended to
	// it (including those replayed from it at recovery) and its size.
	WALRecords int64 `json:"wal_records,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
	// Snapshots counts compactions performed since open; SnapshotBytes
	// is the size of the newest snapshot file.
	Snapshots     int64 `json:"snapshots,omitempty"`
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Syncs counts explicit fsyncs of the WAL file.
	Syncs int64 `json:"syncs,omitempty"`
	// Recovery outcome: how many relations/queries the last Recover
	// returned, how many WAL records it replayed, and how many torn
	// trailing bytes it truncated.
	RecoveredRelations int   `json:"recovered_relations,omitempty"`
	RecoveredQueries   int   `json:"recovered_queries,omitempty"`
	ReplayedRecords    int64 `json:"replayed_records,omitempty"`
	TruncatedBytes     int64 `json:"truncated_bytes,omitempty"`
	// LastError records the most recent append/compaction failure; the
	// catalog fails soft on compaction errors (the WAL stays
	// authoritative and compaction retries on the next mutation), so
	// this is where that trouble becomes observable.
	LastError string `json:"last_error,omitempty"`
}

// Backend is the pluggable data plane behind the catalog. The catalog
// serializes all calls except Stats, which must be safe to call
// concurrently with the others.
type Backend interface {
	// Recover returns the durably stored catalog state. It is called
	// once, before any Append. The memory backend returns an empty
	// state.
	Recover() (*State, error)
	// Append logs one mutation record. It must make the record durable
	// (to the backend's configured degree) before returning: the caller
	// applies the mutation in memory only after Append succeeds.
	Append(rec *Record) error
	// ShouldCompact reports whether the log has outgrown the last
	// snapshot; the caller then invokes Compact with a full state dump.
	ShouldCompact() bool
	// Compact writes the given full state as a new snapshot and rotates
	// to an empty WAL.
	Compact(state *State) error
	// Sync flushes any buffered log data to stable storage.
	Sync() error
	// Close syncs and releases the backend. The backend is unusable
	// afterwards.
	Close() error
	// Stats returns the backend's counters.
	Stats() Stats
	// Healthy reports whether the backend can still accept appends.
	// A poisoned backend (a write failed partway, see ErrPoisoned)
	// returns the poisoning error; callers use this to distinguish a
	// transient per-record failure from a backend that is done for.
	// Like Stats, it must be safe to call concurrently.
	Healthy() error
}

// sortState normalizes a state for deterministic snapshots and
// comparisons in tests.
func sortState(s *State) {
	sort.Slice(s.Relations, func(i, j int) bool { return s.Relations[i].Name < s.Relations[j].Name })
	sort.Slice(s.Queries, func(i, j int) bool { return s.Queries[i].Name < s.Queries[j].Name })
}

// apply replays one record onto the state, mirroring the catalog's
// mutation semantics exactly — including when a mutation bumps the
// epoch (an insert of at least one tuple, a delete that removes at
// least one row, every replace) — so that replay reproduces the same
// epoch a live relation would have reached. Record.Epoch carries the
// relation's pre-mutation epoch and is verified against the state; a
// mismatch means the log does not describe this state and is reported
// as corruption rather than silently applied.
func (s *State) apply(rec *Record) error {
	find := func() (int, error) {
		for i := range s.Relations {
			if s.Relations[i].Name == rec.Name {
				return i, nil
			}
		}
		return -1, fmt.Errorf("storage: %s record for unknown relation %q", rec.Op, rec.Name)
	}
	checkEpoch := func(i int) error {
		if s.Relations[i].Epoch != rec.Epoch {
			return fmt.Errorf("storage: %s record for %q stamped epoch %d, relation is at %d",
				rec.Op, rec.Name, rec.Epoch, s.Relations[i].Epoch)
		}
		return nil
	}
	switch rec.Op {
	case OpCreate:
		for i := range s.Relations {
			if s.Relations[i].Name == rec.Name {
				return fmt.Errorf("storage: create record for existing relation %q", rec.Name)
			}
		}
		s.Relations = append(s.Relations, RelationState{
			Name:   rec.Name,
			Vars:   append([]string(nil), rec.Vars...),
			Epoch:  rec.Epoch,
			Tuples: copyTuples(rec.Tuples),
		})
	case OpDrop:
		i, err := find()
		if err != nil {
			return err
		}
		s.Relations = append(s.Relations[:i], s.Relations[i+1:]...)
	case OpInsert:
		i, err := find()
		if err != nil {
			return err
		}
		if err := checkEpoch(i); err != nil {
			return err
		}
		if len(rec.Tuples) > 0 {
			s.Relations[i].Tuples = append(s.Relations[i].Tuples, copyTuples(rec.Tuples)...)
			s.Relations[i].Epoch++
		}
	case OpDelete:
		i, err := find()
		if err != nil {
			return err
		}
		if err := checkEpoch(i); err != nil {
			return err
		}
		drop := make(map[string]bool, len(rec.Tuples))
		for _, tup := range rec.Tuples {
			drop[tupleKey(tup)] = true
		}
		kept := s.Relations[i].Tuples[:0]
		removed := 0
		for _, tup := range s.Relations[i].Tuples {
			if drop[tupleKey(tup)] {
				removed++
				continue
			}
			kept = append(kept, tup)
		}
		s.Relations[i].Tuples = kept
		if removed > 0 {
			s.Relations[i].Epoch++
		}
	case OpReplace:
		i, err := find()
		if err != nil {
			return err
		}
		if err := checkEpoch(i); err != nil {
			return err
		}
		s.Relations[i].Tuples = copyTuples(rec.Tuples)
		if len(rec.Vars) > 0 {
			s.Relations[i].Vars = append([]string(nil), rec.Vars...)
		}
		s.Relations[i].Epoch++
	case OpPutQuery:
		if rec.Query == nil {
			return fmt.Errorf("storage: putquery record without a definition")
		}
		def := *rec.Query
		for i := range s.Queries {
			if s.Queries[i].Name == def.Name {
				s.Queries[i] = def
				return nil
			}
		}
		s.Queries = append(s.Queries, def)
	case OpDropQuery:
		for i := range s.Queries {
			if s.Queries[i].Name == rec.Name {
				s.Queries = append(s.Queries[:i], s.Queries[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("storage: dropquery record for unknown query %q", rec.Name)
	default:
		return fmt.Errorf("storage: unknown record op %d", rec.Op)
	}
	return nil
}

func copyTuples(tuples [][]int) [][]int {
	out := make([][]int, len(tuples))
	for i, tup := range tuples {
		out[i] = append([]int(nil), tup...)
	}
	return out
}

// tupleKey renders a tuple as a map key (delete-set membership).
func tupleKey(tup []int) string {
	b := make([]byte, 0, len(tup)*4)
	for _, v := range tup {
		b = appendInt(b, v)
		b = append(b, ' ')
	}
	return string(b)
}

// Mem is the in-memory backend: the historical msserve behavior, now
// expressed as the trivial implementation of Backend. Nothing survives
// a restart; every call is a no-op.
type Mem struct{}

// NewMem returns the in-memory backend.
func NewMem() *Mem { return &Mem{} }

func (*Mem) Recover() (*State, error) { return &State{}, nil }
func (*Mem) Append(*Record) error     { return nil }
func (*Mem) ShouldCompact() bool      { return false }
func (*Mem) Compact(*State) error     { return nil }
func (*Mem) Sync() error              { return nil }
func (*Mem) Close() error             { return nil }
func (*Mem) Stats() Stats             { return Stats{Mode: "memory"} }
func (*Mem) Healthy() error           { return nil }

// Command msserve exposes the minesweeper join library as a long-lived
// HTTP service: load relations in the relio text format, mutate them in
// place, register named prepared queries, and execute them with
// streaming NDJSON responses — the serving-side counterpart to the
// anytime, certificate-driven evaluation the library implements.
//
// Endpoints:
//
//	GET    /relations               list relations (name, vars, tuples, epoch)
//	POST   /relations               load a relation (relio text body; replaces same-arity duplicates)
//	GET    /relations/{name}        dump a relation in relio format
//	DELETE /relations/{name}        drop a relation
//	POST   /relations/{name}/insert add tuples              {"tuples": [[1,2], …]}
//	POST   /relations/{name}/delete remove tuples           {"tuples": [[1,2], …]}
//	GET    /queries                 list registered queries
//	POST   /queries                 register a prepared query {"name":…, "query":"R(A,B), S(B,C)", …}
//	DELETE /queries/{name}          unregister
//	GET    /queries/{name}/run      execute; ?limit=&timeout=&engine=&workers=
//	POST   /query                   one-shot query (spec + limit/timeout in the body)
//	GET    /stats                   aggregate certificate/output/admission/health counters
//	GET    /healthz                 liveness probe (always 200 while the process serves)
//	GET    /readyz                  readiness probe (503 while degraded read-only or draining)
//
// Run responses are NDJSON: a header line with the output variable
// order, one JSON array per tuple (streamed as the engine finds them),
// and a footer line with the run's stats. A timeout ends the stream
// early but cleanly: the tuples already found are on the wire and the
// footer says "timed_out": true.
//
// Usage:
//
//	msserve [-addr :8080] [-data-dir DIR] [relation files…]
//
// Relation files given on the command line are preloaded into the
// catalog at startup.
//
// With -data-dir the catalog is durable: every mutation is appended to
// a CRC-checked write-ahead log before it applies, the log compacts
// into full snapshots as it grows, and a restart — clean or not —
// recovers every relation (tuples, variable bindings, mutation epochs)
// and re-registers every named prepared query, replaying the WAL over
// the newest snapshot and truncating a torn tail. Without -data-dir
// everything stays in memory, the historical behavior.
//
// -shards N partitions every relation across N fragment owners with
// scatter-gather execution; -replicas R additionally keeps R
// synchronous copies of every fragment, each with its own WAL
// directory. A replica whose storage poisons is failed over: mutations
// promote a healthy follower, running substreams resume on a sibling
// from the last delivered key (the stream stays byte-identical), and
// the background reopen loop recovers each dead copy on an independent
// backoff schedule while /readyz stays ready.
//
// The serving plane defends itself: -max-runs/-max-mutations bound the
// concurrent work admitted (the overflow queue is capped at
// -queue-depth; beyond it requests are shed with 429 + Retry-After),
// -run-timeout clamps every execution to a server-side deadline (504
// when it expires before the first tuple), and an engine panic becomes
// a 500 — never a dead process. When a durable backend poisons on a
// write failure the server degrades to read-only: queries keep serving,
// mutations return 503, /readyz reports not-ready, and a background
// loop retries reopening the backend with capped exponential backoff.
//
// On SIGINT/SIGTERM the server drains: no new requests are accepted,
// in-flight NDJSON streams get up to -drain-timeout to finish, and
// stragglers are ended with a terminal "aborted" error record before
// the storage backend closes with a final WAL sync.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minesweeper/internal/catalog"
	"minesweeper/internal/shard"
	"minesweeper/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory, nothing survives a restart)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long in-flight streams may drain at shutdown")
	fsync := flag.Bool("fsync", false, "with -data-dir: fsync the WAL on every mutation (safer, slower)")
	shards := flag.Int("shards", 1, "partition relations across N goroutine-owned shards with scatter-gather execution (with -data-dir: one WAL directory per shard)")
	replicas := flag.Int("replicas", 1, "keep R synchronous copies of every shard fragment; a poisoned primary fails over to a healthy follower and substreams retry on siblings")
	cfg := defaultServerConfig()
	flag.IntVar(&cfg.maxRuns, "max-runs", cfg.maxRuns, "max concurrent query executions (<=0 unlimited)")
	flag.IntVar(&cfg.maxMutations, "max-mutations", cfg.maxMutations, "max concurrent catalog mutations (<=0 unlimited)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", cfg.queueDepth, "requests allowed to wait for an admission slot before load shedding (429)")
	flag.DurationVar(&cfg.runTimeout, "run-timeout", cfg.runTimeout, "server-side deadline per query run; client timeouts are clamped to it (0 disables)")
	flag.Parse()

	sopts := storage.Options{FsyncEach: *fsync}
	if *replicas < 1 {
		*replicas = 1
	}
	var cat store
	if *shards > 1 || *replicas > 1 {
		// Sharded store: N fragment owners × R replicas, each replica
		// with its own WAL directory under -data-dir, scatter-gather
		// execution with per-substream failover.
		var sc *shard.Catalog
		if *dataDir != "" {
			var err error
			sc, err = shard.OpenReplicated(*dataDir, *shards, *replicas, sopts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msserve: opening -data-dir: %v\n", err)
				os.Exit(1)
			}
			dir := *dataDir
			cfg.reopenTargets = func() []reopenTarget {
				var out []reopenTarget
				for _, ref := range sc.DownReplicas() {
					ref := ref
					out = append(out, reopenTarget{
						key: fmt.Sprintf("shard-%d/replica-%d", ref.Shard, ref.Replica),
						reopen: func() error {
							return sc.ReopenReplica(ref.Shard, ref.Replica, func() (storage.Backend, error) {
								return storage.OpenDurable(shard.ReplicaDir(dir, ref.Shard, ref.Replica), sopts)
							})
						},
					})
				}
				return out
			}
		} else {
			sc = shard.NewReplicated(*shards, *replicas)
		}
		log.Printf("sharded catalog: %d shards x %d replicas", *shards, *replicas)
		cat = shardStore{sc}
	} else {
		var backend storage.Backend = storage.NewMem()
		if *dataDir != "" {
			durable, err := storage.OpenDurable(*dataDir, sopts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msserve: opening -data-dir: %v\n", err)
				os.Exit(1)
			}
			backend = durable
		}
		c, err := catalog.Open(backend)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msserve: recovering catalog: %v\n", err)
			os.Exit(1)
		}
		if *dataDir != "" {
			// Degraded-mode recovery: when the WAL poisons on a write
			// failure the catalog turns read-only, and the server retries
			// a fresh open of the same directory with capped exponential
			// backoff until the failure clears (disk freed, volume
			// remounted, …).
			dir := *dataDir
			cfg.reopenTargets = func() []reopenTarget {
				if c.Degraded() == nil {
					return nil
				}
				return []reopenTarget{{
					key: "store",
					reopen: func() error {
						return c.Reopen(func() (storage.Backend, error) {
							return storage.OpenDurable(dir, sopts)
						})
					},
				}}
			}
		}
		cat = singleStore{c}
	}
	if st := cat.StorageStats(); st.Mode == "durable" {
		log.Printf("recovered %d relations and %d query definitions from %s (snapshot seq %d, %d WAL records replayed)",
			st.RecoveredRelations, st.RecoveredQueries, st.Dir, st.Seq, st.ReplayedRecords)
		if st.TruncatedBytes > 0 {
			log.Printf("warning: truncated %d torn trailing bytes from the WAL", st.TruncatedBytes)
		}
	}

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msserve: %v\n", err)
			os.Exit(1)
		}
		info, err := cat.Load(f, path)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "msserve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("loaded %s: %d tuples over %v", info.Name, info.Tuples, info.Vars)
	}

	srv := newServerWith(cat, cfg)
	defer srv.Close()
	if restored, failed := srv.restoreQueries(); restored > 0 || len(failed) > 0 {
		log.Printf("re-registered %d prepared queries", restored)
		for _, err := range failed {
			log.Printf("warning: could not restore %v", err)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.ListenAndServe()
	}()
	log.Printf("msserve listening on %s (%d relations)", *addr, cat.Len())

	select {
	case err := <-errc:
		cat.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	srv.draining.Store(true) // /readyz flips not-ready for the load balancer
	log.Printf("shutting down: draining in-flight streams (up to %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Streams still running at the deadline are aborted through
			// their run contexts, so each handler writes a terminal error
			// record ("aborted": true) before its connection ends — the
			// client can tell a cut stream from a complete result set.
			n := srv.abortStreams()
			log.Printf("drain timeout reached; aborting %d straggler streams", n)
			finalCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel2()
			if err := httpSrv.Shutdown(finalCtx); err != nil {
				log.Printf("closing remaining connections: %v", err)
				httpSrv.Close()
			}
		} else {
			log.Printf("shutdown: %v", err)
		}
	}
	// Final WAL sync: everything appended before the listener closed is
	// on stable storage before the process exits.
	if err := cat.Close(); err != nil {
		log.Printf("closing storage: %v", err)
	}
	log.Printf("msserve stopped")
}

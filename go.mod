module minesweeper

go 1.24

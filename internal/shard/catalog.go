package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	minesweeper "minesweeper"
	"minesweeper/internal/catalog"
	"minesweeper/internal/ordered"
	"minesweeper/internal/relio"
	"minesweeper/internal/storage"
)

// manifestName is the routing manifest at the data-dir root. The
// manifest is authoritative for how stored tuples were physically
// routed: re-deriving a partition from statistics after recovery could
// disagree with the placement the fragments actually hold, which would
// silently break the colocation invariant the scatter executor needs.
const manifestName = "shards.json"

// manifest is the durable routing state: the shard count the directory
// is laid out for and the partition of every relation.
type manifest struct {
	Shards    int                  `json:"shards"`
	Relations map[string]Partition `json:"relations"`
}

// shardCounters is one shard's serving-side telemetry: scatter runs
// started, substream tuples emitted, currently running substreams, and
// substream producers currently blocked on a full gather channel (the
// hot-shard signal).
type shardCounters struct {
	runs     atomic.Int64
	emitted  atomic.Int64
	inflight atomic.Int64
	queued   atomic.Int64
}

// ShardStat describes one shard for /stats.
type ShardStat struct {
	Shard     int           `json:"shard"`
	Relations int           `json:"relations"`
	Tuples    int           `json:"tuples"`
	Runs      int64         `json:"runs"`
	Inflight  int64         `json:"inflight"`
	Queued    int64         `json:"queued"`
	Emitted   int64         `json:"emitted"`
	Degraded  string        `json:"degraded,omitempty"`
	Storage   storage.Stats `json:"storage"`
}

// Catalog owns N per-shard catalogs (each durable under its own
// shard-<i> WAL directory) plus a gathered in-memory view holding every
// relation whole. The view serves parses, reads and plans — a query is
// built against view relations exactly as against an unsharded
// catalog — while the fragments serve scatter execution and
// durability. Mutations route tuples by each relation's Partition,
// apply to the owning fragments first (durability), then to the view.
// The API mirrors catalog.Catalog so the serving layer treats the two
// uniformly.
type Catalog struct {
	n    int
	dir  string // "" for in-memory
	opts storage.Options

	// mu serializes mutations and partition changes; reads go straight
	// to the view (which has its own lock).
	mu       sync.Mutex
	inner    []*catalog.Catalog
	view     *catalog.Catalog
	parts    map[string]Partition
	version  uint64 // bumped whenever parts changes; scatter plans pin it
	counters []shardCounters
}

// New returns an in-memory sharded catalog (no durability), for tests
// and -data-dir-less serving.
func New(shards int) *Catalog {
	if shards < 1 {
		shards = 1
	}
	c := &Catalog{
		n:        shards,
		view:     catalog.New(),
		inner:    make([]*catalog.Catalog, shards),
		parts:    make(map[string]Partition),
		counters: make([]shardCounters, shards),
	}
	for i := range c.inner {
		c.inner[i] = catalog.New()
	}
	return c
}

// ShardDir returns the WAL directory of one shard under the data dir.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", shard))
}

// Open recovers a sharded catalog from dir: each shard replays its own
// WAL+snapshot under shard-<i>/ (restoring exact per-fragment epochs),
// the gathered view is rebuilt from the fragments, and routing comes
// from the manifest. Relations missing a manifest entry (a crash
// between fragment writes and the manifest write) are deterministically
// repartitioned and redistributed. Opening a directory laid out for a
// different shard count is refused — re-routing existing placements
// across a new count is a data migration, not a recovery.
func Open(dir string, shards int, opts storage.Options) (*Catalog, error) {
	if shards < 1 {
		shards = 1
	}
	m, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	if m != nil && m.Shards != shards {
		return nil, fmt.Errorf("shard: %s is laid out for %d shards, cannot open with %d", dir, m.Shards, shards)
	}
	c := &Catalog{
		n:        shards,
		dir:      dir,
		opts:     opts,
		view:     catalog.New(),
		inner:    make([]*catalog.Catalog, shards),
		parts:    make(map[string]Partition),
		counters: make([]shardCounters, shards),
	}
	for i := range c.inner {
		b, err := storage.OpenDurable(ShardDir(dir, i), opts)
		if err != nil {
			c.closeOpened(i)
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		cat, err := catalog.Open(b)
		if err != nil {
			b.Close()
			c.closeOpened(i)
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.inner[i] = cat
	}
	if err := c.recover(m); err != nil {
		c.closeOpened(shards)
		return nil, err
	}
	return c, nil
}

func (c *Catalog) closeOpened(n int) {
	for i := 0; i < n; i++ {
		if c.inner[i] != nil {
			c.inner[i].Close()
		}
	}
}

// recover rebuilds the gathered view and routing table from the
// recovered fragments plus the manifest.
func (c *Catalog) recover(m *manifest) error {
	names := map[string]bool{}
	for _, inner := range c.inner {
		for _, n := range inner.Names() {
			names[n] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		var vars []string
		var gathered [][]int
		var epochSum uint64
		for _, inner := range c.inner {
			rel, ok := inner.Get(name)
			if !ok {
				continue
			}
			if vars == nil {
				vars, _ = inner.Vars(name)
			}
			gathered = append(gathered, rel.Tuples()...)
			epochSum += rel.Epoch()
		}
		rel, err := c.view.Create(name, vars, gathered)
		if err != nil {
			return fmt.Errorf("shard: gathering relation %q: %w", name, err)
		}
		if err := rel.RestoreEpoch(epochSum); err != nil {
			return fmt.Errorf("shard: gathering relation %q: %w", name, err)
		}
		if m != nil {
			if p, ok := m.Relations[name]; ok && p.Column < len(vars) {
				c.parts[name] = p
				continue
			}
		}
		// No (usable) manifest entry: repartition deterministically and
		// redistribute the gathered tuples so the colocation invariant
		// holds again.
		p := choosePartition(vars, gathered, c.n)
		if err := c.redistribute(name, vars, gathered, p); err != nil {
			return fmt.Errorf("shard: repartitioning relation %q: %w", name, err)
		}
		c.parts[name] = p
	}
	return c.writeManifest()
}

// redistribute replaces every fragment of name with its bucket under p,
// creating the relation on shards that lack it.
func (c *Catalog) redistribute(name string, vars []string, tuples [][]int, p Partition) error {
	buckets := p.split(tuples, c.n)
	for i, inner := range c.inner {
		if _, ok := inner.Get(name); ok {
			if _, err := inner.Replace(name, buckets[i]); err != nil {
				return err
			}
			continue
		}
		if _, err := inner.Create(name, vars, buckets[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeManifest persists the routing table atomically (temp + rename).
// In-memory catalogs skip it.
func (c *Catalog) writeManifest() error {
	if c.dir == "" {
		return nil
	}
	m := manifest{Shards: c.n, Relations: c.parts}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: reading %s: %w", path, err)
	}
	if m.Relations == nil {
		m.Relations = map[string]Partition{}
	}
	return &m, nil
}

// checkTuples mirrors the catalog's pre-mutation validation: routing
// indexes into tuples by the partition column, so arity and domain must
// hold before any tuple is routed.
func checkTuples(name string, arity int, tuples [][]int) error {
	for i, tup := range tuples {
		if len(tup) != arity {
			return fmt.Errorf("catalog: relation %q: tuple %d has %d values, want %d", name, i, len(tup), arity)
		}
		for j, v := range tup {
			if v < 0 || v >= ordered.PosInf {
				return fmt.Errorf("catalog: relation %q: tuple %d component %d = %d out of domain [0, %d)",
					name, i, j, v, ordered.PosInf)
			}
		}
	}
	return nil
}

// rebuildViewLocked resynchronizes the view of one relation with the
// union of its fragments — the generic repair after a mutation applied
// to only part of the shard set.
func (c *Catalog) rebuildViewLocked(name string) {
	var vars []string
	var gathered [][]int
	found := false
	for _, inner := range c.inner {
		rel, ok := inner.Get(name)
		if !ok {
			continue
		}
		if vars == nil {
			vars, _ = inner.Vars(name)
		}
		found = true
		gathered = append(gathered, rel.Tuples()...)
	}
	if !found {
		c.view.Drop(name)
		return
	}
	if _, ok := c.view.Get(name); ok {
		c.view.Replace(name, gathered)
		return
	}
	c.view.Create(name, vars, gathered)
}

// Shards returns the shard count.
func (c *Catalog) Shards() int { return c.n }

// PartitionOf returns the relation's current partition. ok is false for
// unknown relations and for relations left unpartitioned by a partial
// replace failure (those are excluded from scatter until repaired).
func (c *Catalog) PartitionOf(name string) (Partition, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parts[name]
	return p, ok
}

// partsVersion pins the routing table's revision for scatter plans.
func (c *Catalog) partsVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Create splits the tuples under a planner-chosen partition, creates
// the owning fragment on every shard, then the gathered view relation,
// which it returns.
func (c *Catalog) Create(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.validateNew(name, vars, tuples); err != nil {
		return nil, err
	}
	p := choosePartition(vars, tuples, c.n)
	buckets := p.split(tuples, c.n)
	for i, inner := range c.inner {
		if _, err := inner.Create(name, vars, buckets[i]); err != nil {
			for j := 0; j < i; j++ {
				c.inner[j].Drop(name)
			}
			return nil, err
		}
	}
	rel, err := c.view.Create(name, vars, tuples)
	if err != nil {
		for _, inner := range c.inner {
			inner.Drop(name)
		}
		return nil, err
	}
	c.parts[name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return nil, err
	}
	return rel, nil
}

// validateNew pre-checks a Create before any tuple is routed.
func (c *Catalog) validateNew(name string, vars []string, tuples [][]int) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if len(vars) == 0 {
		return fmt.Errorf("catalog: relation %q: empty variable list", name)
	}
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			return fmt.Errorf("catalog: relation %q: repeated variable %q", name, v)
		}
		seen[v] = true
	}
	if _, dup := c.view.Get(name); dup {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	return checkTuples(name, len(vars), tuples)
}

// Insert routes the tuples to their owning fragments, applies the
// per-shard inserts (durability first), then the view insert, whose
// gathered Info it returns. On a partial failure the view is rebuilt
// from the fragments so reads stay consistent with what was durably
// applied; the colocation invariant is unaffected (every applied copy
// was routed).
func (c *Catalog) Insert(name string, tuples ...[]int) (catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return catalog.Info{}, err
	}
	p, partitioned := c.parts[name]
	var buckets [][][]int
	if partitioned {
		buckets = p.split(tuples, c.n)
	} else {
		// Unpartitioned fallback (after a partial replace failure): park
		// new rows on shard 0; the relation is excluded from scatter
		// until recovery repartitions it, so placement is free.
		buckets = make([][][]int, c.n)
		buckets[0] = tuples
	}
	for i, b := range buckets {
		if len(b) == 0 && !(i == 0 && len(tuples) == 0) {
			continue
		}
		if _, err := c.inner[i].Insert(name, b...); err != nil {
			c.rebuildViewLocked(name)
			return catalog.Info{}, err
		}
	}
	return c.view.Insert(name, tuples...)
}

// Delete removes every stored copy of each tuple. Partitioned relations
// route the deletes (copies colocate); unpartitioned ones broadcast to
// every shard, which is correct under any placement.
func (c *Catalog) Delete(name string, tuples ...[]int) (int, catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return 0, catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return 0, catalog.Info{}, err
	}
	p, partitioned := c.parts[name]
	buckets := make([][][]int, c.n)
	if partitioned {
		buckets = p.split(tuples, c.n)
	} else {
		for i := range buckets {
			buckets[i] = tuples
		}
	}
	for i, b := range buckets {
		if len(b) == 0 && !(i == 0 && len(tuples) == 0) {
			continue
		}
		if _, _, err := c.inner[i].Delete(name, b...); err != nil {
			c.rebuildViewLocked(name)
			return 0, catalog.Info{}, err
		}
	}
	return c.view.Delete(name, tuples...)
}

// Replace swaps the relation's contents, re-choosing its partition for
// the new data and rewriting every fragment. A partial failure leaves
// fragments under two different layouts, which breaks the colocation
// invariant — the relation is demoted to unpartitioned (gathered
// execution only, no scatter) until a restart repartitions it.
func (c *Catalog) Replace(name string, tuples [][]int) (catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return catalog.Info{}, err
	}
	vars, _ := c.view.Vars(name)
	p := choosePartition(vars, tuples, c.n)
	buckets := p.split(tuples, c.n)
	for i, inner := range c.inner {
		if _, err := inner.Replace(name, buckets[i]); err != nil {
			delete(c.parts, name)
			c.version++
			c.rebuildViewLocked(name)
			c.writeManifest()
			return catalog.Info{}, err
		}
	}
	c.parts[name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return catalog.Info{}, err
	}
	return c.view.Replace(name, tuples)
}

// ForcePartition rewrites the relation's fragments under an explicitly
// given partition — an administrative/testing hook for exercising a
// routing mode the statistics would not choose. Splits must be strictly
// increasing for range mode.
func (c *Catalog) ForcePartition(name string, p Partition) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if p.Column < 0 || p.Column >= rel.Arity() {
		return fmt.Errorf("shard: partition column %d out of range for arity %d", p.Column, rel.Arity())
	}
	if p.Mode != ModeHash && p.Mode != ModeRange {
		return fmt.Errorf("shard: unknown partition mode %q", p.Mode)
	}
	for i := 1; i < len(p.Splits); i++ {
		if p.Splits[i] <= p.Splits[i-1] {
			return fmt.Errorf("shard: range splits must be strictly increasing")
		}
	}
	vars, _ := c.view.Vars(name)
	if err := c.redistribute(name, vars, rel.Tuples(), p); err != nil {
		delete(c.parts, name)
		c.version++
		c.rebuildViewLocked(name)
		c.writeManifest()
		return err
	}
	c.parts[name] = p
	c.version++
	return c.writeManifest()
}

// Drop removes the relation from every shard and the view.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.view.Get(name); !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	for _, inner := range c.inner {
		if _, ok := inner.Get(name); !ok {
			continue
		}
		if err := inner.Drop(name); err != nil {
			c.rebuildViewLocked(name)
			return err
		}
	}
	delete(c.parts, name)
	c.version++
	if err := c.writeManifest(); err != nil {
		return err
	}
	return c.view.Drop(name)
}

// Load reads a relation in the relio interchange format and
// creates-or-replaces it, splitting the rows across the shard set under
// a freshly chosen partition.
func (c *Catalog) Load(r io.Reader, source string) (catalog.Info, error) {
	parsed, err := relio.ReadRelation(r, source)
	if err != nil {
		return catalog.Info{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rel, exists := c.view.Get(parsed.Name); exists && rel.Arity() != len(parsed.Vars) {
		return catalog.Info{}, fmt.Errorf("catalog: relation %q exists with arity %d, load has arity %d (drop it first)",
			parsed.Name, rel.Arity(), len(parsed.Vars))
	}
	if err := checkTuples(parsed.Name, len(parsed.Vars), parsed.Tuples); err != nil {
		return catalog.Info{}, err
	}
	p := choosePartition(parsed.Vars, parsed.Tuples, c.n)
	buckets := p.split(parsed.Tuples, c.n)
	for i, inner := range c.inner {
		if err := loadInto(inner, parsed.Name, parsed.Vars, buckets[i], source); err != nil {
			delete(c.parts, parsed.Name)
			c.version++
			c.rebuildViewLocked(parsed.Name)
			c.writeManifest()
			return catalog.Info{}, err
		}
	}
	var buf bytes.Buffer
	if err := relio.WriteRelation(&buf, parsed); err != nil {
		return catalog.Info{}, err
	}
	info, err := c.view.Load(&buf, source)
	if err != nil {
		return info, err
	}
	c.parts[parsed.Name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return info, err
	}
	return info, nil
}

// loadInto create-or-replaces one fragment through the catalog's Load
// path, so the fragment's default binding tracks the upload's vars.
func loadInto(inner *catalog.Catalog, name string, vars []string, tuples [][]int, source string) error {
	var buf bytes.Buffer
	if err := relio.WriteRelation(&buf, &relio.Relation{Name: name, Vars: vars, Tuples: tuples}); err != nil {
		return err
	}
	_, err := inner.Load(&buf, source)
	return err
}

// Get returns the gathered view relation: queries parse and plan
// against whole relations; fragments surface only through scatter.
func (c *Catalog) Get(name string) (*minesweeper.Relation, bool) { return c.view.Get(name) }

// Fragment returns one shard's fragment of the relation.
func (c *Catalog) Fragment(shard int, name string) (*minesweeper.Relation, bool) {
	return c.inner[shard].Get(name)
}

// Vars returns the relation's default variable binding.
func (c *Catalog) Vars(name string) ([]string, bool) { return c.view.Vars(name) }

// Len returns the number of cataloged relations.
func (c *Catalog) Len() int { return c.view.Len() }

// Names returns the sorted relation names.
func (c *Catalog) Names() []string { return c.view.Names() }

// Relations describes every cataloged relation (gathered totals).
func (c *Catalog) Relations() []catalog.Info { return c.view.Relations() }

// Dump writes the gathered relation in the relio interchange format.
func (c *Catalog) Dump(w io.Writer, name string) error { return c.view.Dump(w, name) }

// DumpFile writes the gathered relation to a file atomically.
func (c *Catalog) DumpFile(path, name string) error { return c.view.DumpFile(path, name) }

// Query parses a textual join expression against the gathered view.
func (c *Catalog) Query(expr string) (*minesweeper.Query, error) { return c.view.Query(expr) }

// PutQueryDef stores a prepared-query definition durably (on shard 0 —
// definitions are control-plane state, not partitioned data).
func (c *Catalog) PutQueryDef(def storage.QueryDef) error { return c.inner[0].PutQueryDef(def) }

// DropQueryDef removes a stored definition.
func (c *Catalog) DropQueryDef(name string) error { return c.inner[0].DropQueryDef(name) }

// QueryDefs returns the stored definitions.
func (c *Catalog) QueryDefs() []storage.QueryDef { return c.inner[0].QueryDefs() }

// Degraded reports the first shard's degradation, if any: one poisoned
// shard makes the whole store read-only for mutations that touch it,
// and /readyz should say so.
func (c *Catalog) Degraded() error {
	for i, inner := range c.inner {
		if err := inner.Degraded(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Reopen re-runs recovery on every degraded shard with a fresh backend
// from open(shard), leaving healthy shards alone.
func (c *Catalog) Reopen(open func(shard int) (storage.Backend, error)) error {
	var first error
	for i, inner := range c.inner {
		if inner.Degraded() == nil {
			continue
		}
		i := i
		if err := inner.Reopen(func() (storage.Backend, error) { return open(i) }); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// Sync flushes every shard's backend.
func (c *Catalog) Sync() error {
	var first error
	for i, inner := range c.inner {
		if err := inner.Sync(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// Close releases every shard's backend and the view.
func (c *Catalog) Close() error {
	var first error
	for i, inner := range c.inner {
		if err := inner.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if err := c.view.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// StorageStats aggregates the shards' storage statistics (counters
// summed, mode and sequence from shard 0, Dir the data-dir root).
func (c *Catalog) StorageStats() storage.Stats {
	agg := c.inner[0].StorageStats()
	agg.Dir = c.dir
	for _, inner := range c.inner[1:] {
		s := inner.StorageStats()
		agg.WALRecords += s.WALRecords
		agg.WALBytes += s.WALBytes
		agg.Snapshots += s.Snapshots
		agg.SnapshotBytes += s.SnapshotBytes
		agg.Syncs += s.Syncs
		agg.RecoveredRelations += s.RecoveredRelations
		agg.RecoveredQueries += s.RecoveredQueries
		agg.ReplayedRecords += s.ReplayedRecords
		agg.TruncatedBytes += s.TruncatedBytes
		if agg.LastError == "" {
			agg.LastError = s.LastError
		}
	}
	return agg
}

// ShardStats describes every shard for /stats: per-shard data volume,
// scatter activity (the hot-shard signal) and storage health.
func (c *Catalog) ShardStats() []ShardStat {
	out := make([]ShardStat, c.n)
	for i, inner := range c.inner {
		st := ShardStat{
			Shard:    i,
			Runs:     c.counters[i].runs.Load(),
			Inflight: c.counters[i].inflight.Load(),
			Queued:   c.counters[i].queued.Load(),
			Emitted:  c.counters[i].emitted.Load(),
			Storage:  inner.StorageStats(),
		}
		for _, info := range inner.Relations() {
			st.Relations++
			st.Tuples += info.Tuples
		}
		if err := inner.Degraded(); err != nil {
			st.Degraded = err.Error()
		}
		out[i] = st
	}
	return out
}

// Triangle listing: the triangle query Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)
// solved three ways — the specialized dyadic-CDS Minesweeper of
// Theorem 5.4 (Õ(|C|^{3/2}+Z)), the generic Minesweeper engine
// (Õ(|C|²+Z) on this query), and Leapfrog Triejoin — on both a real
// graph workload and the adversarial family where the engines separate.
//
//	go run ./examples/triangles
package main

import (
	"fmt"
	"log"
	"math/rand"

	"minesweeper"
)

func randomGraph(n, m int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]int]bool{}
	var edges [][]int
	for len(edges) < 2*m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		seen[[2]int{v, u}] = true
		edges = append(edges, []int{u, v}, []int{v, u})
	}
	return edges
}

func main() {
	// Part 1: triangles of a random graph.
	edges := randomGraph(400, 1600, 7)
	tris, stats, err := minesweeper.ListTriangles(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random graph: %d directed edges, %d ordered triangles (%d undirected)\n",
		len(edges), len(tris), len(tris)/6)
	fmt.Printf("dyadic-CDS engine: %s\n\n", stats.String())

	// The generic engine must agree.
	e, err := minesweeper.NewRelation("E", 2, edges)
	if err != nil {
		log.Fatal(err)
	}
	q, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: e, Vars: []string{"A", "B"}},
		minesweeper.Atom{Rel: e, Vars: []string{"B", "C"}},
		minesweeper.Atom{Rel: e, Vars: []string{"A", "C"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := minesweeper.Execute(q, &minesweeper.Options{GAO: []string{"A", "B", "C"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic Minesweeper agrees: %v (probes=%d)\n", len(gen.Tuples) == len(tris), gen.Stats.ProbePoints)
	lf, err := minesweeper.Execute(q, &minesweeper.Options{
		Engine: minesweeper.EngineLeapfrog, GAO: []string{"A", "B", "C"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leapfrog agrees:           %v (seeks=%d)\n\n", len(lf.Tuples) == len(tris), lf.Stats.FindGaps)

	// Part 2: the adversarial family (Appendix L): R = [K]², S and T
	// disjoint strips — empty output, |C| = O(K), but a quadratic trap
	// for the generic CDS. The Θ(K²) pair iteration of the generic CDS
	// is visible in its CDS-operation counter; the dyadic CDS prunes
	// whole B-subtrees and stays near-linear.
	fmt.Printf("%4s %12s %16s %16s\n", "K", "input", "special cdsops", "generic cdsops")
	for _, k := range []int{16, 32, 64} {
		var r, s, t [][]int
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				r = append(r, []int{a, b})
			}
		}
		for b := 0; b < k; b++ {
			s = append(s, []int{b, k + 1 + b})
			t = append(t, []int{b, 2*k + 10 + b})
		}
		out, spStats, err := minesweeper.TriangleJoin(r, s, t)
		if err != nil {
			log.Fatal(err)
		}
		if len(out) != 0 {
			log.Fatal("expected empty output")
		}
		rr, _ := minesweeper.NewRelation("R", 2, r)
		ss, _ := minesweeper.NewRelation("S", 2, s)
		tt, _ := minesweeper.NewRelation("T", 2, t)
		q, err := minesweeper.NewQuery(
			minesweeper.Atom{Rel: rr, Vars: []string{"A", "B"}},
			minesweeper.Atom{Rel: ss, Vars: []string{"B", "C"}},
			minesweeper.Atom{Rel: tt, Vars: []string{"A", "C"}},
		)
		if err != nil {
			log.Fatal(err)
		}
		genRes, err := minesweeper.Execute(q, &minesweeper.Options{GAO: []string{"A", "B", "C"}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %12d %16d %16d\n",
			k, len(r)+len(s)+len(t), spStats.CDSOps, genRes.Stats.CDSOps)
	}
	fmt.Println("\nThe dyadic CDS prunes whole B-blocks per probe (Theorem 5.4); the")
	fmt.Println("generic CDS pays per (a,b) pair — the |C|^{3/2} vs |C|² separation.")
}

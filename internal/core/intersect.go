package core

import (
	"fmt"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// IntersectSets computes the m-way set intersection query
// Q∩ = S1(A) ⋈ … ⋈ Sm(A) with Minesweeper specialized per Algorithm 8
// (Appendix H). The CDS degenerates to a single interval list over the
// lone attribute; every iteration either reports an output value or
// inserts a gap charged to a certificate comparison, so the runtime is
// O((|C|+Z) m log N) (Theorem H.4) — near instance optimal.
//
// Input sets may be unsorted and contain duplicates. The result is the
// sorted intersection.
func IntersectSets(sets [][]int, stats *certificate.Stats) ([]int, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: IntersectSets needs at least one set")
	}
	trees, err := intersectTrees(sets, stats)
	if err != nil {
		return nil, err
	}
	cds := ordered.NewRangeSet()
	var out []int
	var idx [1]int // index-tuple scratch for Value lookups
	for {
		t := cds.Next(-1)
		if t >= ordered.PosInf {
			return out, nil
		}
		if stats != nil {
			stats.ProbePoints++
		}
		output := true
		for _, tr := range trees {
			lo, hi := tr.FindGap(nil, t)
			if lo == hi {
				continue // t present in this set
			}
			output = false
			idx[0] = lo
			loVal := tr.Value(idx[:])
			idx[0] = hi
			hiVal := tr.Value(idx[:])
			cds.InsertOpen(loVal, hiVal)
			if stats != nil {
				stats.Constraints++
				stats.CDSOps++
			}
		}
		if output {
			out = append(out, t)
			if stats != nil {
				stats.Outputs++
				stats.Constraints++
			}
			cds.InsertOpen(t-1, t+1)
		}
	}
}

// intersectTrees indexes each input set as an arity-1 search tree,
// going through reltree.NewFromValues so no per-element tuple wrappers
// are allocated.
func intersectTrees(sets [][]int, stats *certificate.Stats) ([]*reltree.Tree, error) {
	trees := make([]*reltree.Tree, len(sets))
	for i, s := range sets {
		tr, err := reltree.NewFromValues(fmt.Sprintf("S%d", i+1), s)
		if err != nil {
			return nil, err
		}
		tr.SetStats(stats)
		trees[i] = tr
	}
	return trees, nil
}

// mergeCrossoverRatio is the max/min set-size ratio at which
// IntersectSetsAdaptive switches from the Hwang–Lin merge to the
// interval-list CDS. BenchmarkIntersectCrossover measures the trade-off:
// the merge variant's constant-time frontier wins while the sets are
// comparable (every probe advances all frontiers about equally), and the
// interval list starts paying for itself once one set is roughly an
// order of magnitude sparser than another, because each of the sparse
// set's gaps is remembered once and then skipped in O(log) instead of
// being rediscovered probe by probe.
const mergeCrossoverRatio = 8

// IntersectSetsAdaptive computes the same m-way intersection as
// IntersectSets, picking the CDS strategy per instance (Appendix H.2
// discusses both): the minimum-comparison merge for size-balanced
// inputs and the interval-list CDS once the size skew crosses
// mergeCrossoverRatio, where gap-skipping dominates. Callers should
// prefer this entry point unless they are ablating one strategy.
func IntersectSetsAdaptive(sets [][]int, stats *certificate.Stats) ([]int, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: IntersectSetsAdaptive needs at least one set")
	}
	minLen, maxLen := len(sets[0]), len(sets[0])
	for _, s := range sets[1:] {
		if len(s) < minLen {
			minLen = len(s)
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	// minLen == 0 also routes to IntersectSets: the intersection is
	// trivially empty, but every set must still pass domain validation,
	// so no shortcut that skips the tree builds is taken.
	if minLen == 0 || maxLen >= mergeCrossoverRatio*minLen {
		return IntersectSets(sets, stats)
	}
	return IntersectSetsMerge(sets, stats)
}

// IntersectSetsMerge is the second CDS strategy discussed in Appendix
// H.2: always probing the least unruled value means the CDS only ever
// needs the single interval (-∞, t), and the algorithm degenerates into
// the minimum-comparison m-way merge of Hwang–Lin / Demaine et al. [20]
// — constant-time CDS operations at the price of giving up interval
// merging. Provided for the ablation comparison with IntersectSets.
func IntersectSetsMerge(sets [][]int, stats *certificate.Stats) ([]int, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: IntersectSetsMerge needs at least one set")
	}
	trees, err := intersectTrees(sets, stats)
	if err != nil {
		return nil, err
	}
	var out []int
	var idx [1]int // index-tuple scratch for Value lookups
	t := -1        // the CDS is exactly the interval (-∞, t+1): probe t+1 next
	for {
		probe := t + 1
		if stats != nil {
			stats.ProbePoints++
		}
		output := true
		next := probe
		for _, tr := range trees {
			lo, hi := tr.FindGap(nil, probe)
			if lo == hi {
				continue
			}
			output = false
			idx[0] = hi
			hiVal := tr.Value(idx[:])
			if hiVal >= ordered.PosInf {
				return out, nil // some set is exhausted above probe
			}
			// Advance the single frontier to the largest lower bound seen.
			if hiVal-1 > next {
				next = hiVal - 1
			}
			if stats != nil {
				stats.CDSOps++
			}
		}
		if output {
			out = append(out, probe)
			if stats != nil {
				stats.Outputs++
			}
			t = probe
		} else {
			t = next
		}
	}
}

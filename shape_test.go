package minesweeper

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// sortTuples lex-sorts a tuple list in place (presentation order).
func sortTuples(ts [][]int) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// shapeData builds R(x, c) with c = x%100 and S(x, y): selecting c = 7
// keeps 1% of R.
func shapeData(t *testing.T) (*Relation, *Relation) {
	t.Helper()
	var rt, st [][]int
	for i := 0; i < 500; i++ {
		rt = append(rt, []int{i, i % 100})
		st = append(st, []int{i, (i * 3) % 50})
	}
	return rel(t, "R", 2, rt), rel(t, "S", 2, st)
}

// TestConstantPushdownAllEngines: R(x, 7) ⋈ S(x, y) must equal the full
// join post-filtered on c == 7, projected to (x, y), for every engine
// and for parallel Minesweeper.
func TestConstantPushdownAllEngines(t *testing.T) {
	r, s := shapeData(t)
	full, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "c"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := Execute(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range fres.Vars {
		pos[v] = i
	}
	var want [][]int
	for _, tup := range fres.Tuples {
		if tup[pos["c"]] == 7 {
			want = append(want, []int{tup[pos["x"]], tup[pos["y"]]})
		}
	}
	sortTuples(want)
	if len(want) == 0 {
		t.Fatal("post-filter reference is empty; test data broken")
	}

	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "7"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Vars = %v (constants must not be variables)", got)
	}
	for _, eng := range allEngines {
		res, err := Execute(q, &Options{Engine: eng, Debug: true})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !reflect.DeepEqual(res.Vars, []string{"x", "y"}) {
			t.Fatalf("engine %v: Vars = %v", eng, res.Vars)
		}
		got := append([][]int(nil), res.Tuples...)
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %v: got %d tuples, want %d\ngot  %v\nwant %v",
				eng, len(got), len(want), got, want)
		}
	}
	par, err := Execute(q, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]int(nil), par.Tuples...)
	sortTuples(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel: diverges from reference")
	}
}

// TestConstantPushdownSavesWork: the pushed-down constant must make the
// selective run much cheaper than the full join, not just smaller.
func TestConstantPushdownSavesWork(t *testing.T) {
	r, s := shapeData(t)
	full, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "c"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := Execute(full, &Options{GAO: []string{"x", "c", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "7"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Execute(sel, &Options{GAO: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Stats.ProbePoints*10 > fres.Stats.ProbePoints {
		t.Fatalf("selective run probes %d vs full %d: pushdown not saving work",
			sres.Stats.ProbePoints, fres.Stats.ProbePoints)
	}
}

// TestWhereFiltersAllEngines: range filters agree across engines and
// match the post-filtered full join.
func TestWhereFiltersAllEngines(t *testing.T) {
	r, s := shapeData(t)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "c"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range fres.Vars {
		pos[v] = i
	}
	var want [][]int
	for _, tup := range fres.Tuples {
		x, c, y := tup[pos["x"]], tup[pos["c"]], tup[pos["y"]]
		if x < 50 && y >= 3 {
			want = append(want, []int{x, c, y})
		}
	}
	sortTuples(want)
	if len(want) == 0 {
		t.Fatal("filter reference empty")
	}
	where := []Filter{{Var: "x", Op: "<", Value: 50}, {Var: "y", Op: ">=", Value: 3}}
	for _, eng := range allEngines {
		res, err := Execute(q, &Options{Engine: eng, Where: where, Debug: true})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !reflect.DeepEqual(res.Vars, []string{"x", "c", "y"}) {
			t.Fatalf("engine %v: Vars = %v", eng, res.Vars)
		}
		got := append([][]int(nil), res.Tuples...)
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %v: filtered result diverges (%d vs %d tuples)", eng, len(got), len(want))
		}
	}
	// Contradictory filters: provably empty, no error, no tuples.
	res, err := Execute(q, &Options{Where: []Filter{
		{Var: "x", Op: ">", Value: 10}, {Var: "x", Op: "<", Value: 5},
	}})
	if err != nil || len(res.Tuples) != 0 {
		t.Fatalf("contradictory filters: %v, %v", res.Tuples, err)
	}
	// Unknown variable and bad operator are errors.
	if _, err := Execute(q, &Options{Where: []Filter{{Var: "zz", Op: "<", Value: 1}}}); err == nil {
		t.Fatal("unknown filter variable must error")
	}
	if _, err := Execute(q, &Options{Where: []Filter{{Var: "x", Op: "!=", Value: 1}}}); err == nil {
		t.Fatal("unsupported operator must error")
	}
}

// TestProjectionDistinct: projecting away a join variable dedups under
// set semantics, identically across engines.
func TestProjectionDistinct(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 10}, {1, 20}, {2, 10}, {3, 30}})
	s := rel(t, "S", 2, [][]int{{10, 5}, {20, 5}, {30, 6}})
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Full join: (1,10,5) (1,20,5) (2,10,5) (3,30,6). Projection to c:
	// {5, 6}.
	for _, eng := range allEngines {
		res, err := Execute(q, &Options{Engine: eng, Select: []string{"c"}})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !reflect.DeepEqual(res.Vars, []string{"c"}) {
			t.Fatalf("engine %v: Vars = %v", eng, res.Vars)
		}
		got := append([][]int(nil), res.Tuples...)
		sortTuples(got)
		if !reflect.DeepEqual(got, [][]int{{5}, {6}}) {
			t.Fatalf("engine %v: projected = %v", eng, got)
		}
	}
	// Projection to (c, a): order of the select list is the column order.
	res, err := Execute(q, &Options{Select: []string{"c", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]int(nil), res.Tuples...)
	sortTuples(got)
	want := [][]int{{5, 1}, {5, 2}, {6, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("select c,a = %v, want %v", got, want)
	}
	// Unknown projection variable errors.
	if _, err := Execute(q, &Options{Select: []string{"zz"}}); err == nil {
		t.Fatal("unknown select variable must error")
	}
}

// TestAggregatesAllEngines checks every aggregate op, grouped and
// global, against a hand-computed reference, across engines.
func TestAggregatesAllEngines(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 10}, {1, 20}, {2, 10}, {3, 30}})
	s := rel(t, "S", 2, [][]int{{10, 5}, {20, 5}, {30, 6}})
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Join tuples (a,b,c): (1,10,5) (1,20,5) (2,10,5) (3,30,6).
	aggs := []Aggregate{
		{Op: AggCount},
		{Op: AggSum, Var: "b"},
		{Op: AggMin, Var: "b"},
		{Op: AggMax, Var: "b"},
		{Op: AggCountDistinct, Var: "b"},
	}
	wantVars := []string{"c", "count(*)", "sum(b)", "min(b)", "max(b)", "count(distinct b)"}
	want := [][]int{
		{5, 3, 40, 10, 20, 2},
		{6, 1, 30, 30, 30, 1},
	}
	for _, eng := range allEngines {
		res, err := Execute(q, &Options{Engine: eng, Select: []string{"c"}, Aggregates: aggs})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !reflect.DeepEqual(res.Vars, wantVars) {
			t.Fatalf("engine %v: Vars = %v, want %v", eng, res.Vars, wantVars)
		}
		if !reflect.DeepEqual(res.Tuples, want) {
			t.Fatalf("engine %v: rows = %v, want %v", eng, res.Tuples, want)
		}
	}
	// Global aggregate: one group, one row.
	res, err := Execute(q, &Options{Aggregates: []Aggregate{{Op: AggCount}, {Op: AggSum, Var: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, []string{"count(*)", "sum(a)"}) {
		t.Fatalf("global Vars = %v", res.Vars)
	}
	if !reflect.DeepEqual(res.Tuples, [][]int{{4, 7}}) {
		t.Fatalf("global rows = %v", res.Tuples)
	}
	// Global aggregate over an empty join: no groups, no rows.
	empty, err := Execute(q, &Options{
		Aggregates: []Aggregate{{Op: AggCount}},
		Where:      []Filter{{Var: "a", Op: ">", Value: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Tuples) != 0 {
		t.Fatalf("empty-join aggregate rows = %v", empty.Tuples)
	}
	// sum/min/max without a variable is an error.
	if _, err := Execute(q, &Options{Aggregates: []Aggregate{{Op: AggSum}}}); err == nil {
		t.Fatal("sum without variable must error")
	}
}

// TestCrossProductAllEngines: disconnected queries evaluate as cross
// products, identically across engines (with projection and aggregation
// riding along).
func TestCrossProductAllEngines(t *testing.T) {
	r := rel(t, "R", 1, [][]int{{1}, {2}})
	s := rel(t, "S", 1, [][]int{{10}, {20}, {30}})
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x"}},
		Atom{Rel: s, Vars: []string{"y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	for _, eng := range allEngines {
		res, err := Execute(q, &Options{Engine: eng, Debug: true})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		got := append([][]int(nil), res.Tuples...)
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %v: cross product = %v", eng, got)
		}
	}
	// Binary atoms, disconnected: R2(a,b) × S2(c,d).
	r2 := rel(t, "R2", 2, [][]int{{1, 2}, {3, 4}})
	s2 := rel(t, "S2", 2, [][]int{{5, 6}})
	q2, err := NewQuery(
		Atom{Rel: r2, Vars: []string{"a", "b"}},
		Atom{Rel: s2, Vars: []string{"c", "d"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var ref [][]int
	for _, eng := range allEngines {
		res, err := Execute(q2, &Options{Engine: eng, Debug: true})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		got := append([][]int(nil), res.Tuples...)
		sortTuples(got)
		if ref == nil {
			ref = got
			if len(ref) != 2 {
				t.Fatalf("cross product size = %d, want 2", len(ref))
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("engine %v diverges on disconnected query", eng)
		}
	}
	// Aggregate over a cross product.
	res, err := Execute(q, &Options{Select: []string{"x"}, Aggregates: []Aggregate{{Op: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, [][]int{{1, 3}, {2, 3}}) {
		t.Fatalf("cross-product counts = %v", res.Tuples)
	}
}

// TestPreparedConstantsSurviveMutation: epoch-triggered re-binds must
// preserve pushed-down constants and filters.
func TestPreparedConstantsSurviveMutation(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 7}, {2, 8}})
	s := rel(t, "S", 2, [][]int{{1, 100}, {2, 200}, {3, 300}})
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "7"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&Options{Where: []Filter{{Var: "y", Op: "<", Value: 250}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, [][]int{{1, 100}}) {
		t.Fatalf("before mutation: %v", res.Tuples)
	}
	// Insert a matching and a non-matching row; the re-bound execution
	// must still apply c = 7 and y < 250.
	if err := r.Insert([]int{3, 7}, []int{3, 9}); err != nil {
		t.Fatal(err)
	}
	res, err = pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]int(nil), res.Tuples...)
	sortTuples(got)
	if !reflect.DeepEqual(got, [][]int{{1, 100}}) {
		t.Fatalf("after insert: %v (y<250 keeps only x=1; x=3 has y=300)", got)
	}
	// Drop the filter blocker: replacing S re-binds again.
	if err := s.Replace([][]int{{3, 30}, {1, 100}}); err != nil {
		t.Fatal(err)
	}
	res, err = pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	got = append([][]int(nil), res.Tuples...)
	sortTuples(got)
	if !reflect.DeepEqual(got, [][]int{{1, 100}, {3, 30}}) {
		t.Fatalf("after replace: %v", got)
	}
}

// TestStreamVarsOrder pins the stream-ordering bugfix: streamed tuples
// present columns in Vars()/OutputVars order even when the GAO reorders
// the variables, and the prepared query exposes both orders.
func TestStreamVarsOrder(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 2}, {3, 4}})
	s := rel(t, "S", 2, [][]int{{2, 5}, {4, 9}})
	// First appearance order: b, c, a. Force GAO a, b, c.
	q, err := NewQuery(
		Atom{Rel: s, Vars: []string{"b", "c"}},
		Atom{Rel: r, Vars: []string{"a", "b"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&Options{GAO: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pq.GAO(), []string{"a", "b", "c"}) {
		t.Fatalf("GAO = %v", pq.GAO())
	}
	if !reflect.DeepEqual(pq.OutputVars(), []string{"b", "c", "a"}) {
		t.Fatalf("OutputVars = %v", pq.OutputVars())
	}
	var streamed [][]int
	if _, err := pq.Stream(func(tup []int) bool {
		streamed = append(streamed, tup)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Join tuples (a,b,c): (1,2,5), (3,4,9) — presented as (b,c,a).
	want := [][]int{{2, 5, 1}, {4, 9, 3}}
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("streamed = %v, want %v (Vars order)", streamed, want)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, []string{"b", "c", "a"}) || !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("Execute: vars %v tuples %v", res.Vars, res.Tuples)
	}
	if !reflect.DeepEqual(res.GAO, []string{"a", "b", "c"}) {
		t.Fatalf("Result.GAO = %v", res.GAO)
	}
	// The top-level stream API agrees.
	streamed = nil
	if _, err := ExecuteStream(q, &Options{GAO: []string{"a", "b", "c"}}, func(tup []int) bool {
		streamed = append(streamed, tup)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("ExecuteStream = %v, want %v", streamed, want)
	}
}

// TestIntersectZeroSets: the public API wraps the internal error and
// stays consistent for empty input forms.
func TestIntersectZeroSets(t *testing.T) {
	if _, _, err := Intersect(); err == nil || !strings.HasPrefix(err.Error(), "minesweeper:") {
		t.Fatalf("Intersect() error = %v, want minesweeper:-prefixed", err)
	}
	var none [][]int
	if _, _, err := Intersect(none...); err == nil || !strings.HasPrefix(err.Error(), "minesweeper:") {
		t.Fatalf("Intersect(none...) error = %v", err)
	}
	// One nil set is a present-but-empty set: empty result, no error.
	out, _, err := Intersect(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("Intersect(nil) = %v, %v", out, err)
	}
}

// TestNegativeLimitUnlimited: limit < 0 means unlimited, across the
// library surface.
func TestNegativeLimitUnlimited(t *testing.T) {
	q := streamQuery(t, 31)
	full, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) == 0 {
		t.Fatal("want non-empty result")
	}
	res, err := ExecuteLimit(q, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, full.Tuples) {
		t.Fatalf("ExecuteLimit(-1) = %d tuples, want %d", len(res.Tuples), len(full.Tuples))
	}
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = pq.ExecuteLimit(-7)
	if err != nil || !reflect.DeepEqual(res.Tuples, full.Tuples) {
		t.Fatalf("PreparedQuery.ExecuteLimit(-7): %d tuples, err %v", len(res.Tuples), err)
	}
}

// TestConstantValidation: constant-only atoms and out-of-domain
// constants are rejected; constants never merge across atoms.
func TestConstantValidation(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 7}})
	if _, err := NewQuery(Atom{Rel: r, Vars: []string{"1", "2"}}); err == nil {
		t.Fatal("constant-only atom must error")
	}
	if _, err := NewQuery(Atom{Rel: r, Vars: []string{"x", "-3"}}); err == nil {
		t.Fatal("negative constant must error (parsed as neither var nor constant)")
	}
	// Same constant twice in one atom is fine (distinct hidden columns).
	rr := rel(t, "RR", 3, [][]int{{5, 5, 1}, {5, 6, 2}})
	q, err := NewQuery(Atom{Rel: rr, Vars: []string{"5", "5", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, [][]int{{1}}) {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

// TestFilterIntExtremes: strict comparisons at the int extremes must
// read as provably-empty bounds, not wrap around and become no-ops.
func TestFilterIntExtremes(t *testing.T) {
	r := rel(t, "R", 1, [][]int{{1}, {2}, {3}})
	q, err := NewQuery(Atom{Rel: r, Vars: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	const maxInt = int(^uint(0) >> 1)
	for _, f := range []Filter{
		{Var: "x", Op: ">", Value: maxInt},
		{Var: "x", Op: "<", Value: -maxInt - 1},
		{Var: "x", Op: "<", Value: 0},
		{Var: "x", Op: "<=", Value: -1},
		{Var: "x", Op: ">=", Value: maxInt},
	} {
		res, err := Execute(q, &Options{Where: []Filter{f}})
		if err != nil {
			t.Fatalf("filter %v: %v", f, err)
		}
		if len(res.Tuples) != 0 {
			t.Fatalf("filter %v returned %v, want empty", f, res.Tuples)
		}
	}
	// Sanity: the non-degenerate forms still pass everything through.
	res, err := Execute(q, &Options{Where: []Filter{{Var: "x", Op: "<=", Value: maxInt}, {Var: "x", Op: ">", Value: -maxInt - 1}}})
	if err != nil || len(res.Tuples) != 3 {
		t.Fatalf("wide filters: %v, %v", res.Tuples, err)
	}
}

// TestParallelPartitionSkipsConstants: a constant-led extended GAO must
// still shard range-parallel runs on the first real variable, and the
// all-constant-led fallback stays correct.
func TestParallelPartitionSkipsConstants(t *testing.T) {
	var rt, st [][]int
	for i := 0; i < 300; i++ {
		rt = append(rt, []int{i, i % 100})
		st = append(st, []int{i, i % 9})
	}
	r := rel(t, "R", 2, rt)
	s := rel(t, "S", 2, st)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "7"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Execute(q, &Options{GAO: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Tuples) != 3 {
		t.Fatalf("sequential = %v", seq.Tuples)
	}
	par, err := Execute(q, &Options{GAO: []string{"x", "y"}, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Tuples, seq.Tuples) {
		t.Fatalf("parallel %v != sequential %v", par.Tuples, seq.Tuples)
	}
	// Workload big enough that sharding shows up in merged stats: the
	// parallel run must have actually split (more than one worker's
	// FindGaps merged — weak proxy: stats non-zero and result correct).
	if par.Stats.FindGaps == 0 {
		t.Fatal("parallel stats not merged")
	}
	// Every atom covering the partition variable leads with a constant:
	// the driver must fall back to a sequential run, not return empty.
	r3 := rel(t, "R3", 2, [][]int{{3, 1}, {3, 2}, {4, 5}})
	s3 := rel(t, "S3", 2, [][]int{{5, 1}, {5, 2}})
	q2, err := NewQuery(
		Atom{Rel: r3, Vars: []string{"3", "x"}},
		Atom{Rel: s3, Vars: []string{"5", "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := Execute(q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := Execute(q2, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par2.Tuples, seq2.Tuples) || len(seq2.Tuples) != 2 {
		t.Fatalf("all-constant-led: parallel %v, sequential %v", par2.Tuples, seq2.Tuples)
	}
}

package reltree

import (
	"math/rand"
	"sort"
	"testing"

	"minesweeper/internal/ordered"
)

const (
	negInfValue = ordered.NegInf
	posInfValue = ordered.PosInf
)

// nodeFindGap is the reference pointer-walk FindGap (the pre-flat
// implementation), used to cross-check the flat galloping path.
func nodeFindGap(t *Tree, x []int, a int) (lo, hi int) {
	n := t.node(x)
	hi = sort.SearchInts(n.Values, a)
	if hi < len(n.Values) && n.Values[hi] == a {
		return hi, hi
	}
	return hi - 1, hi
}

// TestFlatMatchesNodeWalk drives FindGap/Value/InRange/Fanout over
// random trees with random index prefixes and targets and checks the
// flat CSR path against the node-walk reference. Repeated queries warm
// the galloping hints, so both the cold and the seeded paths are hit.
func TestFlatMatchesNodeWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(60)
		tuples := make([][]int, n)
		for i := range tuples {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(12) * (1 + rng.Intn(500)) // sparse-ish
			}
			tuples[i] = tup
		}
		tr := mustNew(t, "R", arity, tuples)
		if tr.flat == nil {
			t.Fatal("New did not build the flat index")
		}
		for probe := 0; probe < 200; probe++ {
			// Random in-range prefix.
			depth := rng.Intn(arity)
			x := make([]int, 0, depth)
			for d := 0; d < depth; d++ {
				fan := tr.Fanout(x)
				if fan == 0 {
					break
				}
				x = append(x, rng.Intn(fan))
			}
			a := rng.Intn(12 * 501)
			gotLo, gotHi := tr.FindGap(x, a)
			wantLo, wantHi := nodeFindGap(tr, x, a)
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("FindGap(%v, %d) = (%d,%d), node walk says (%d,%d)", x, a, gotLo, gotHi, wantLo, wantHi)
			}
			nd := tr.node(x)
			if got, want := tr.Fanout(x), len(nd.Values); got != want {
				t.Fatalf("Fanout(%v) = %d, want %d", x, got, want)
			}
			for _, i := range []int{-1, 0, gotHi, len(nd.Values) - 1, len(nd.Values)} {
				if got, want := tr.InRange(x, i), i >= 0 && i < len(nd.Values); got != want {
					t.Fatalf("InRange(%v, %d) = %v, want %v", x, i, got, want)
				}
				xi := append(append([]int(nil), x...), i)
				got := tr.Value(xi)
				want := 0
				switch {
				case i <= -1:
					want = negInfValue
				case i >= len(nd.Values):
					want = posInfValue
				default:
					want = nd.Values[i]
				}
				if got != want {
					t.Fatalf("Value(%v) = %d, want %d", xi, got, want)
				}
			}
		}
		// Contains agrees with the materialized tuple set.
		set := map[string]bool{}
		for _, tup := range tr.Tuples() {
			set[keyOf(tup)] = true
		}
		for probe := 0; probe < 100; probe++ {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(12 * 501)
			}
			if got, want := tr.Contains(tup), set[keyOf(tup)]; got != want {
				t.Fatalf("Contains(%v) = %v, want %v", tup, got, want)
			}
		}
	}
}

func keyOf(tup []int) string {
	b := make([]byte, 0, len(tup)*4)
	for _, v := range tup {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// TestGallopSearch checks the exponential search against sort.SearchInts
// for every seed position, including out-of-range seeds.
func TestGallopSearch(t *testing.T) {
	arr := []int{2, 3, 3, 7, 9, 14, 14, 14, 20, 31}
	for lo := 0; lo <= len(arr); lo++ {
		for hi := lo; hi <= len(arr); hi++ {
			for a := 0; a <= 33; a++ {
				want := lo + sort.SearchInts(arr[lo:hi], a)
				for seed := lo - 2; seed <= hi+2; seed++ {
					if got := gallopSearch(arr, lo, hi, seed, a); got != want {
						t.Fatalf("gallopSearch(arr, %d, %d, seed=%d, %d) = %d, want %d", lo, hi, seed, a, got, want)
					}
				}
			}
		}
	}
}

// TestSliceTopFlat checks that sliced views answer flat-path queries
// relative to their restricted top level, including slices of slices
// via repeated SliceTop on the same backing arrays.
func TestSliceTopFlat(t *testing.T) {
	var tuples [][]int
	for a := 0; a < 10; a++ {
		for b := 0; b < 3; b++ {
			tuples = append(tuples, []int{a * 5, a*100 + b})
		}
	}
	tr := mustNew(t, "R", 2, tuples)
	sl := tr.SliceTop(10, 30) // values 10,15,20,25,30
	if got := sl.Fanout(nil); got != 5 {
		t.Fatalf("slice Fanout = %d, want 5", got)
	}
	if got := sl.Size(); got != 15 {
		t.Fatalf("slice Size = %d, want 15", got)
	}
	// Index 0 of the slice is absolute value 10.
	if got := sl.Value([]int{0}); got != 10 {
		t.Fatalf("slice Value[0] = %d, want 10", got)
	}
	if lo, hi := sl.FindGap(nil, 17); lo != 1 || hi != 2 {
		t.Fatalf("slice FindGap(17) = (%d,%d), want (1,2)", lo, hi)
	}
	// Children resolve through the absolute offsets: value 20 is slice
	// index 2, its children are 400, 401, 402.
	if got := sl.Fanout([]int{2}); got != 3 {
		t.Fatalf("slice Fanout([2]) = %d, want 3", got)
	}
	if got := sl.Value([]int{2, 1}); got != 401 {
		t.Fatalf("slice Value([2,1]) = %d, want 401", got)
	}
	if !sl.Contains([]int{25, 501}) {
		t.Fatal("slice must contain (25, 501)")
	}
	if sl.Contains([]int{45, 901}) {
		t.Fatal("slice must not contain values outside its range")
	}
}

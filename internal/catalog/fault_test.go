package catalog

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"minesweeper/internal/storage"
)

// mutOp is one step of a randomized mutation script, replayed against
// both a faulty durable catalog and an in-memory model catalog.
type mutOp struct {
	kind   string // create | insert | delete | replace | drop | putquery | dropquery
	name   string
	tuples [][]int
}

// genScript builds a deterministic pseudo-random mutation script that
// is valid step by step (creates before inserts, drops only what
// exists), so every op reaches the storage append — the boundary the
// fault sweep targets.
func genScript(rng *rand.Rand, n int) []mutOp {
	names := []string{"R", "S", "T"}
	live := map[string]bool{}
	queries := map[string]bool{}
	randTuples := func() [][]int {
		tuples := make([][]int, 1+rng.Intn(3))
		for i := range tuples {
			tuples[i] = []int{rng.Intn(50), rng.Intn(50)}
		}
		return tuples
	}
	var script []mutOp
	for len(script) < n {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(8) {
		case 0, 1:
			if !live[name] {
				live[name] = true
				script = append(script, mutOp{kind: "create", name: name, tuples: randTuples()})
			}
		case 2, 3:
			if live[name] {
				script = append(script, mutOp{kind: "insert", name: name, tuples: randTuples()})
			}
		case 4:
			if live[name] {
				script = append(script, mutOp{kind: "delete", name: name, tuples: randTuples()})
			}
		case 5:
			if live[name] {
				script = append(script, mutOp{kind: "replace", name: name, tuples: randTuples()})
			}
		case 6:
			if live[name] && rng.Intn(3) == 0 {
				delete(live, name)
				script = append(script, mutOp{kind: "drop", name: name})
			}
		case 7:
			qname := "q" + name
			if queries[qname] && rng.Intn(2) == 0 {
				delete(queries, qname)
				script = append(script, mutOp{kind: "dropquery", name: qname})
			} else if live[name] {
				queries[qname] = true
				script = append(script, mutOp{kind: "putquery", name: qname})
			}
		}
	}
	return script
}

// applyOp runs one script step against a catalog. Query definitions
// reference the op's name so put/drop pairs round-trip.
func applyOp(c *Catalog, op mutOp) error {
	switch op.kind {
	case "create":
		_, err := c.Create(op.name, []string{"A", "B"}, op.tuples)
		return err
	case "insert":
		_, err := c.Insert(op.name, op.tuples...)
		return err
	case "delete":
		_, _, err := c.Delete(op.name, op.tuples...)
		return err
	case "replace":
		_, err := c.Replace(op.name, op.tuples)
		return err
	case "drop":
		return c.Drop(op.name)
	case "putquery":
		return c.PutQueryDef(storage.QueryDef{Name: op.name, Query: op.name[1:] + "(A,B)"})
	case "dropquery":
		return c.DropQueryDef(op.name)
	}
	panic("unknown op " + op.kind)
}

// sameCatalogState compares two catalogs' observable state: relation
// descriptions (name, binding, epoch, tuple count), the tuples
// themselves (as multisets — recovery and live mutation may order
// rows differently), and the stored query definitions.
func sameCatalogState(got, want *Catalog) error {
	gi, wi := got.Relations(), want.Relations()
	if !reflect.DeepEqual(gi, wi) {
		return fmt.Errorf("relations %+v, want %+v", gi, wi)
	}
	for _, info := range wi {
		grel, _ := got.Get(info.Name)
		wrel, _ := want.Get(info.Name)
		gt, wt := grel.Tuples(), wrel.Tuples()
		sortTuples(gt)
		sortTuples(wt)
		if !reflect.DeepEqual(gt, wt) && !(len(gt) == 0 && len(wt) == 0) {
			return fmt.Errorf("relation %q tuples diverge", info.Name)
		}
	}
	if gq, wq := got.QueryDefs(), want.QueryDefs(); !reflect.DeepEqual(gq, wq) {
		return fmt.Errorf("query defs %+v, want %+v", gq, wq)
	}
	return nil
}

func sortTuples(t [][]int) {
	sort.Slice(t, func(i, j int) bool {
		for k := range t[i] {
			if t[i][k] != t[j][k] {
				return t[i][k] < t[j][k]
			}
		}
		return false
	})
}

// TestFaultSweepNeverPartiallyApplies drives one randomized mutation
// script while sweeping an injected append failure across every storage
// op position, and checks the crash contract at each position:
//
//   - the catalog never partially applies a mutation — after every op
//     (failed or not) its state equals an in-memory model that applied
//     exactly the successful ops;
//   - the first injected failure flips the catalog into read-only mode
//     and every later mutation fails with ErrReadOnly;
//   - a restart (fresh open of the same directory) recovers exactly the
//     longest durable prefix — the model state again.
func TestFaultSweepNeverPartiallyApplies(t *testing.T) {
	script := genScript(rand.New(rand.NewSource(7)), 40)
	// One position past every append of a fault-free run proves the
	// sweep covered the whole script (that run must inject nothing).
	total := probeAppendCount(t, script)
	for k := 1; k <= total+1; k++ {
		fault := "append@%d=torn:11"
		if k%2 == 0 {
			fault = "append@%d=enospc" // poisons without landing bytes
		}
		faultSpec := fmt.Sprintf(fault, k)
		t.Run(faultSpec, func(t *testing.T) {
			dir := t.TempDir()
			d, err := storage.OpenDurable(dir, storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			f, err := storage.NewFaulty(d, faultSpec)
			if err != nil {
				t.Fatal(err)
			}
			cat, err := Open(f)
			if err != nil {
				t.Fatal(err)
			}
			model := New()

			poisoned := false
			for i, op := range script {
				err := applyOp(cat, op)
				switch {
				case err == nil:
					if merr := applyOp(model, op); merr != nil {
						t.Fatalf("op %d %s %s: model diverged: %v", i, op.kind, op.name, merr)
					}
					if poisoned && op.kind != "dropquery" {
						// dropquery of an absent name is a no-op that never
						// reaches the backend, so it succeeds even read-only.
						t.Fatalf("op %d %s %s succeeded after poisoning", i, op.kind, op.name)
					}
				case errors.Is(err, ErrReadOnly):
					poisoned = true
				default:
					// A validation failure before the append (the script was
					// generated for the fault-free history, so post-poison
					// steps can reference relations that were never created).
					// Both catalogs are in the same state, so the model must
					// refuse identically — and nothing was applied either way.
					if merr := applyOp(model, op); merr == nil || merr.Error() != err.Error() {
						t.Fatalf("op %d %s %s: catalog failed %q, model %v", i, op.kind, op.name, err, merr)
					}
				}
				if serr := sameCatalogState(cat, model); serr != nil {
					t.Fatalf("after op %d %s %s: %v", i, op.kind, op.name, serr)
				}
			}
			injected := f.Injected()
			cat.Close()
			if injected == 0 {
				if poisoned {
					t.Fatal("catalog poisoned without an injected fault")
				}
				if k <= total {
					t.Fatalf("position %d of %d appends never fired", k, total)
				}
				return // the one position past the script's appends
			}
			if !poisoned {
				t.Fatal("fault injected but no mutation failed")
			}

			// Restart: recovery over the same directory must rebuild the
			// longest durable prefix, which is exactly the model state.
			d2, err := storage.OpenDurable(dir, storage.Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			recovered, err := Open(d2)
			if err != nil {
				t.Fatalf("recovering: %v", err)
			}
			defer recovered.Close()
			if serr := sameCatalogState(recovered, model); serr != nil {
				t.Fatalf("recovered state: %v", serr)
			}
		})
	}
}

// probeAppendCount runs the script fault-free once and reports how many
// records it appends — the sweep's upper bound.
func probeAppendCount(t *testing.T, script []mutOp) int {
	t.Helper()
	d, err := storage.OpenDurable(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, op := range script {
		if err := applyOp(c, op); err != nil {
			t.Fatalf("fault-free %s %s: %v", op.kind, op.name, err)
		}
	}
	return int(c.StorageStats().WALRecords)
}

// TestFaultSweepCompactionFailSoft runs the same script with every
// compaction failing (and a tiny threshold so compaction triggers
// constantly): no mutation may fail, the WAL stays authoritative, and
// recovery still reproduces the full final state.
func TestFaultSweepCompactionFailSoft(t *testing.T) {
	script := genScript(rand.New(rand.NewSource(7)), 40)
	dir := t.TempDir()
	d, err := storage.OpenDurable(dir, storage.Options{CompactMinBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFaulty(d, "compact@*=err")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	model := New()
	for i, op := range script {
		if err := applyOp(cat, op); err != nil {
			t.Fatalf("op %d %s %s under failing compaction: %v", i, op.kind, op.name, err)
		}
		if err := applyOp(model, op); err != nil {
			t.Fatal(err)
		}
	}
	if f.Injected() == 0 {
		t.Fatal("no compaction fault fired; threshold too high for the script")
	}
	if err := cat.Degraded(); err != nil {
		t.Fatalf("Degraded() = %v after fail-soft compaction faults, want nil", err)
	}
	cat.Close()

	d2, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if serr := sameCatalogState(recovered, model); serr != nil {
		t.Fatalf("recovered state: %v", serr)
	}
}

// TestReopenLeavesReadOnlyMode: after a poisoning append failure the
// catalog is read-only; Reopen over the same directory verifies the
// recovered state against memory, swaps the backend in, and mutations
// resume — without disturbing live relation pointers.
func TestReopenLeavesReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	open := func() (storage.Backend, error) {
		return storage.OpenDurable(dir, storage.Options{})
	}
	d, err := open()
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFaulty(d, "append@3=torn:13")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	rel, err := cat.Create("R", []string{"A", "B"}, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Insert("R", []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Insert("R", []int{5, 6}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("third mutation = %v, want ErrReadOnly", err)
	}
	if cat.Degraded() == nil {
		t.Fatal("catalog not degraded after poisoning")
	}
	// Reads keep working in read-only mode.
	if got, ok := cat.Get("R"); !ok || got != rel || got.Len() != 2 {
		t.Fatalf("read in degraded mode: ok=%v len=%d", ok, rel.Len())
	}

	if err := cat.Reopen(open); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if err := cat.Degraded(); err != nil {
		t.Fatalf("Degraded() after Reopen = %v, want nil", err)
	}
	// The relation pointer survived the swap and mutations resume.
	if _, err := cat.Insert("R", []int{5, 6}); err != nil {
		t.Fatalf("insert after Reopen: %v", err)
	}
	if got, _ := cat.Get("R"); got != rel || rel.Len() != 3 {
		t.Fatalf("relation identity or contents lost across Reopen (len %d)", rel.Len())
	}

	// And the resumed history is durable: a fresh recovery sees all
	// three tuples.
	cat.Close()
	d2, err := open()
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	got, _ := recovered.Get("R")
	if got == nil || got.Len() != 3 {
		t.Fatalf("recovered R after Reopen has %v tuples, want 3", got)
	}
}

package minesweeper

import (
	"strings"
	"testing"
)

// FuzzParseQuery feeds arbitrary strings to the query parser; it must
// never panic and must only succeed on inputs that round-trip into a
// well-formed query.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"R(A,B), S(B,C)",
		"R(A,B) ⋈ S(B,C)",
		"R(A,B)(",
		"R(,)",
		"⋈⋈⋈",
		"R (A , B)   S(B,C)",
		strings.Repeat("R(A,B),", 50),
		"Unknown(X)",
		// Extended grammar: constants, select/where clauses, aggregates.
		"R(A, 2), S(2, C)",
		"R(A, 99999999999999999999)",
		"R(A,B) select A, count(*), sum(B) where A < 10 and B >= 3",
		"R(A,B) select count(distinct B)",
		"R(A,B) where A = 2, B <= 3 select B",
		"R(A,B) select sum(*)",
		"R(A,B) where A ! 3",
		"R(A,B) select",
		"R(A,B) where A < -5",
		"R(A,B) select min(A), max(B)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rel, err := NewRelation("R", 2, [][]int{{1, 2}})
	if err != nil {
		f.Fatal(err)
	}
	s2, err := NewRelation("S", 2, [][]int{{2, 3}})
	if err != nil {
		f.Fatal(err)
	}
	rels := map[string]*Relation{"R": rel, "S": s2}
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := ParseQuery(expr, rels)
		if err != nil {
			return
		}
		// Anything that parses must execute.
		if _, err := Execute(q, nil); err != nil {
			t.Fatalf("parsed query failed to execute: %v (expr %q)", err, expr)
		}
	})
}

// FuzzExecuteTwoAtoms builds two small relations from fuzzed bytes and
// checks that Minesweeper agrees with the hash-plan oracle.
func FuzzExecuteTwoAtoms(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{2, 5, 3, 7})
	f.Add([]byte{}, []byte{0, 0})
	f.Add([]byte{9, 9, 9, 9}, []byte{9, 9})
	f.Fuzz(func(t *testing.T, rb, sb []byte) {
		if len(rb) > 60 || len(sb) > 60 {
			return
		}
		mk := func(b []byte) [][]int {
			var out [][]int
			for i := 0; i+1 < len(b); i += 2 {
				out = append(out, []int{int(b[i]) % 16, int(b[i+1]) % 16})
			}
			return out
		}
		r, err := NewRelation("R", 2, mk(rb))
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewRelation("S", 2, mk(sb))
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuery(
			Atom{Rel: r, Vars: []string{"A", "B"}},
			Atom{Rel: s, Vars: []string{"B", "C"}},
		)
		if err != nil {
			t.Fatal(err)
		}
		gao := []string{"A", "B", "C"}
		ms, err := Execute(q, &Options{Engine: EngineMinesweeper, GAO: gao, Debug: true})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := Execute(q, &Options{Engine: EngineHashPlan, GAO: gao})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms.Tuples) != len(oracle.Tuples) {
			t.Fatalf("minesweeper %d tuples, oracle %d", len(ms.Tuples), len(oracle.Tuples))
		}
		for i := range ms.Tuples {
			for j := range ms.Tuples[i] {
				if ms.Tuples[i][j] != oracle.Tuples[i][j] {
					t.Fatalf("tuple %d differs: %v vs %v", i, ms.Tuples[i], oracle.Tuples[i])
				}
			}
		}
	})
}

package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minesweeper/internal/catalog"
	"minesweeper/internal/storage"
)

// faultyServer builds a server over a durable backend wrapped in the
// fault-injection layer, in dir, with the given fault script and
// config. The caller drives it to the fault and inspects the wreckage.
func faultyServer(t *testing.T, dir, script string, cfg serverConfig) *server {
	t.Helper()
	d, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFaulty(d, script)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	s := newServerWith(singleStore{cat}, cfg)
	t.Cleanup(s.Close)
	return s
}

func statsBody(t *testing.T, s *server) map[string]any {
	t.Helper()
	rec := do(t, s, "GET", "/stats", "")
	wantStatus(t, rec, http.StatusOK)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDegradedReadOnlyAndRestart is the kill-and-restart acceptance
// path: an injected torn append mid-history poisons the backend, the
// server degrades to read-only (503 mutations, 200 queries, /readyz
// not-ready, /healthz still alive), and a restart over the same
// directory recovers exactly the longest durable prefix.
func TestDegradedReadOnlyAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := faultyServer(t, dir, "append@5=torn:23", defaultServerConfig())

	// Appends 1-4: create R, create S, register rs, one insert.
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[7,3]]}`), http.StatusOK)

	// Append 5 tears: the mutation fails with 503 and nothing applies.
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[9,9]]}`), http.StatusServiceUnavailable)
	// Read-only mode: every further mutation is 503...
	wantStatus(t, do(t, s, "POST", "/relations/S/insert", `{"tuples":[[1,1]]}`), http.StatusServiceUnavailable)
	wantStatus(t, do(t, s, "DELETE", "/relations/S", ""), http.StatusServiceUnavailable)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"q2","query":"R(A,B)"}`), http.StatusServiceUnavailable)
	// ...while queries keep serving the durably applied state: the
	// fixture's 3 join rows plus the row insert #4 added (7-3 joins 3-7
	// and 3-9).
	rec := do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	if run := parseRun(t, rec.Body); len(run.tuples) != 5 {
		t.Fatalf("degraded run returned %d tuples, want 5", len(run.tuples))
	}
	// Probes: alive but not ready.
	wantStatus(t, do(t, s, "GET", "/healthz", ""), http.StatusOK)
	rec = do(t, s, "GET", "/readyz", "")
	wantStatus(t, rec, http.StatusServiceUnavailable)
	if !strings.Contains(rec.Body.String(), `"ready":false`) {
		t.Fatalf("readyz body: %s", rec.Body.String())
	}
	if health, _ := statsBody(t, s)["health"].(map[string]any); health["read_only"] != true {
		t.Fatalf("stats health = %v, want read_only true", health)
	}

	// "Restart": recover the directory with a clean backend. The torn
	// record truncates away; everything before it survives.
	d, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	s2 := newServerWith(singleStore{cat}, defaultServerConfig())
	defer s2.Close()
	if restored, failed := s2.restoreQueries(); restored != 1 || len(failed) != 0 {
		t.Fatalf("restored %d queries (failures %v), want 1", restored, failed)
	}
	wantStatus(t, do(t, s2, "GET", "/readyz", ""), http.StatusOK)
	rec = do(t, s2, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	if run := parseRun(t, rec.Body); len(run.tuples) != 5 {
		t.Fatalf("recovered run returned %d tuples, want 5", len(run.tuples))
	}
	// Mutations flow again on the recovered server.
	wantStatus(t, do(t, s2, "POST", "/relations/R/insert", `{"tuples":[[9,9]]}`), http.StatusOK)
}

// TestReopenLoopLeavesDegradedMode: with a reopen policy configured,
// the server recovers from a poisoned backend in place — the
// background loop swaps in a freshly recovered backend and mutations
// resume without a restart.
func TestReopenLoopLeavesDegradedMode(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := storage.NewFaulty(d, "append@2=enospc")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	cfg := defaultServerConfig()
	cfg.reopenTargets = func() []reopenTarget {
		if cat.Degraded() == nil {
			return nil
		}
		return []reopenTarget{{key: "store", reopen: func() error {
			return cat.Reopen(func() (storage.Backend, error) {
				return storage.OpenDurable(dir, storage.Options{})
			})
		}}}
	}
	cfg.reopenBase = 2 * time.Millisecond
	cfg.reopenPoll = 20 * time.Millisecond
	s := newServerWith(singleStore{cat}, cfg)
	t.Cleanup(s.Close)

	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[3,4]]}`), http.StatusServiceUnavailable)

	// The 503 woke the reopen loop; within a few backoff rounds the
	// server must be ready again.
	deadline := time.Now().Add(5 * time.Second)
	for do(t, s, "GET", "/readyz", "").Code != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("server never left degraded mode")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[3,4]]}`), http.StatusOK)
	health, _ := statsBody(t, s)["health"].(map[string]any)
	if health["read_only"] != false {
		t.Fatalf("health = %v, want read_only false", health)
	}
	if n, _ := health["reopen_attempts"].(float64); n < 1 {
		t.Fatalf("reopen_attempts = %v, want >= 1", health["reopen_attempts"])
	}
}

// TestReopenBackoffPerTarget: each degraded target keeps an independent
// capped-exponential schedule — a stubbornly failing replica retries on
// its own clock and never delays the recovery of a healthy sibling.
func TestReopenBackoffPerTarget(t *testing.T) {
	var goodDone atomic.Bool
	var goodCalls, badCalls atomic.Int64
	cfg := defaultServerConfig()
	cfg.reopenBase = time.Millisecond
	cfg.reopenMax = 4 * time.Millisecond
	cfg.reopenPoll = 2 * time.Millisecond
	cfg.reopenTargets = func() []reopenTarget {
		out := []reopenTarget{{key: "shard-0/replica-1", reopen: func() error {
			badCalls.Add(1)
			return errors.New("still broken")
		}}}
		if !goodDone.Load() {
			out = append(out, reopenTarget{key: "shard-1/replica-0", reopen: func() error {
				goodCalls.Add(1)
				goodDone.Store(true)
				return nil
			}})
		}
		return out
	}
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !goodDone.Load() || badCalls.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("reopen loop stalled: good=%d bad=%d", goodCalls.Load(), badCalls.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The healthy target recovered on its first attempt and left the
	// schedule; the failing one kept retrying without it.
	if n := goodCalls.Load(); n != 1 {
		t.Fatalf("healthy target reopened %d times, want exactly 1", n)
	}
}

// TestPanicIsolation: an engine panic mid-run becomes an HTTP error —
// 500 before the first tuple, a terminal NDJSON error record after —
// and never takes the process down. The /stats panic counter records
// both.
func TestPanicIsolation(t *testing.T) {
	var calls atomic.Int64
	panicAt := atomic.Int64{}
	cfg := defaultServerConfig()
	cfg.emitHook = func([]int) {
		if calls.Add(1) == panicAt.Load() {
			panic("kaboom")
		}
	}
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)

	// Panic on the first tuple, before anything is on the wire: 500.
	panicAt.Store(1)
	rec := do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusInternalServerError)
	if !strings.Contains(rec.Body.String(), "engine panic") {
		t.Fatalf("panic body: %s", rec.Body.String())
	}

	// Panic on the second tuple, mid-stream: 200 with a terminal error
	// footer instead of a vanishing connection.
	calls.Store(0)
	panicAt.Store(2)
	rec = do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var footer map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatal(err)
	}
	if errStr, _ := footer["error"].(string); !strings.Contains(errStr, "engine panic") {
		t.Fatalf("mid-stream footer = %v, want engine panic error", footer)
	}

	// The process (and the server) survived both; /stats counted them.
	panicAt.Store(0)
	rec = do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	if run := parseRun(t, rec.Body); len(run.tuples) != 3 {
		t.Fatalf("post-panic run: %d tuples, want 3", len(run.tuples))
	}
	health, _ := statsBody(t, s)["health"].(map[string]any)
	if n, _ := health["panics"].(float64); n != 2 {
		t.Fatalf("panics = %v, want 2", health["panics"])
	}
}

// TestServerSideDeadline: with no client timeout at all, -run-timeout
// still bounds the run, and expiry before the first tuple maps to 504
// (counted apart from client cancels).
func TestServerSideDeadline(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.runTimeout = time.Nanosecond
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"r","query":"R(A,B)"}`), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/queries/r/run", ""), http.StatusGatewayTimeout)
	body := statsBody(t, s)
	if body["deadline_expired"] != float64(1) || body["client_canceled"] != float64(0) {
		t.Fatalf("deadline_expired = %v, client_canceled = %v, want 1 and 0",
			body["deadline_expired"], body["client_canceled"])
	}
}

// TestAdmissionSoak floods a server whose run gate admits 3 with 2
// queued: inflight must never exceed the cap, the overflow must be
// shed with 429 + Retry-After, and every admitted run must complete
// correctly. Mutations ride along through their own gate.
func TestAdmissionSoak(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.maxRuns = 3
	cfg.maxMutations = 2
	cfg.queueDepth = 2
	cfg.emitHook = func([]int) { time.Sleep(2 * time.Millisecond) }
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)

	const clients = 24
	var (
		wg          sync.WaitGroup
		start       = make(chan struct{})
		ok, shed    atomic.Int64
		missingRA   atomic.Int64
		unexpected  atomic.Int64
		mutOK, mut5 atomic.Int64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for r := 0; r < 4; r++ {
				if i%6 == 0 {
					// A sprinkle of mutations through the mutation gate.
					req := httptest.NewRequest("POST", "/relations/R/insert", strings.NewReader(`{"tuples":[]}`))
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					switch rec.Code {
					case http.StatusOK:
						mutOK.Add(1)
					case http.StatusTooManyRequests:
						mut5.Add(1)
					default:
						unexpected.Add(1)
					}
					continue
				}
				req := httptest.NewRequest("GET", "/queries/rs/run", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					ok.Add(1)
					if !strings.HasSuffix(strings.TrimSpace(rec.Body.String()), "}") {
						unexpected.Add(1) // truncated stream
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						missingRA.Add(1)
					}
				default:
					unexpected.Add(1)
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if unexpected.Load() != 0 {
		t.Fatalf("%d unexpected responses", unexpected.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no run was admitted")
	}
	if shed.Load() == 0 {
		t.Fatal("no run was shed; the soak never saturated the gate")
	}
	if missingRA.Load() != 0 {
		t.Fatalf("%d shed responses missing Retry-After", missingRA.Load())
	}
	runStats := s.runGate.stats()
	if runStats.MaxInflight > 3 {
		t.Fatalf("run max_inflight = %d, want <= 3", runStats.MaxInflight)
	}
	if mutStats := s.mutGate.stats(); mutStats.MaxInflight > 2 {
		t.Fatalf("mutation max_inflight = %d, want <= 2", mutStats.MaxInflight)
	}
	// The numbers surface in /stats for operators.
	adm, _ := statsBody(t, s)["admission"].(map[string]any)
	runs, _ := adm["runs"].(map[string]any)
	if n, _ := runs["shed"].(float64); int64(n) != runStats.Shed {
		t.Fatalf("stats admission.runs.shed = %v, gate says %d", runs["shed"], runStats.Shed)
	}
}

// TestDrainAbortEmitsTerminalRecord: when the drain deadline fires,
// abortStreams ends an in-flight NDJSON stream with a terminal footer
// ("aborted": true + error) instead of just cutting the connection.
func TestDrainAbortEmitsTerminalRecord(t *testing.T) {
	firstOut := make(chan struct{})
	released := make(chan struct{})
	var calls atomic.Int64
	cfg := defaultServerConfig()
	cfg.emitHook = func([]int) {
		if calls.Add(1) == 2 {
			// Tuple 1 is on the wire; park the stream mid-flight until
			// the test fires the drain path.
			close(firstOut)
			<-released
		}
	}
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)

	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/queries/rs/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	<-firstOut
	if n := s.abortStreams(); n != 1 {
		t.Fatalf("abortStreams aborted %d streams, want 1", n)
	}
	close(released)

	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream had %d lines: %q", len(lines), lines)
	}
	var footer map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatalf("last line %q is not the terminal record: %v", lines[len(lines)-1], err)
	}
	if footer["done"] != true || footer["aborted"] != true {
		t.Fatalf("terminal record = %v, want done and aborted", footer)
	}
	if errStr, _ := footer["error"].(string); !strings.Contains(errStr, "draining") {
		t.Fatalf("terminal record error = %q, want the draining cause", footer["error"])
	}
	if n, _ := statsBody(t, s)["aborted_streams"].(float64); n != 1 {
		t.Fatalf("aborted_streams = %v, want 1", n)
	}
}

// TestClientTimeoutClampedToServerDeadline: a client asking for a
// looser timeout than -run-timeout gets the server's deadline; a
// tighter one is honored. (Verified through the effective 504/200
// behavior rather than timing.)
func TestClientTimeoutClamp(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.runTimeout = time.Nanosecond
	s := newServerWith(newTestCatalog(t), cfg)
	defer s.Close()
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"r","query":"R(A,B)"}`), http.StatusOK)
	// Client asks for a minute; the 1ns server deadline still rules.
	wantStatus(t, do(t, s, "GET", "/queries/r/run?timeout=1m", ""), http.StatusGatewayTimeout)

	// And the other direction: a generous server deadline does not
	// override a tight client timeout.
	cfg2 := defaultServerConfig()
	s2 := newServerWith(newTestCatalog(t), cfg2)
	defer s2.Close()
	wantStatus(t, do(t, s2, "POST", "/relations", "R: A B\n1 2\n"), http.StatusOK)
	wantStatus(t, do(t, s2, "POST", "/queries", `{"name":"r","query":"R(A,B)"}`), http.StatusOK)
	wantStatus(t, do(t, s2, "GET", "/queries/r/run?timeout=1ns", ""), http.StatusGatewayTimeout)
}

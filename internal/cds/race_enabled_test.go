//go:build race

package cds

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so the allocation-budget tests skip
// themselves rather than measure the detector.
const raceEnabled = true

// Package core implements the Minesweeper join algorithm of the paper:
// the generic outer algorithm (Algorithm 2) driving the constraint data
// structure, plus the specialized instantiations worked out in the
// appendices — m-way set intersection (Algorithm 8, Appendix H), the
// bow-tie query (Algorithm 9, Appendix I) and the triangle query with the
// dyadic-tree CDS (Algorithm 10, Appendix L).
package core

import (
	"fmt"
	"sort"

	"minesweeper/internal/certificate"
	"minesweeper/internal/reltree"
)

// AtomSpec describes one atom of a natural join query: a named relation
// with an attribute list and its tuples (columns parallel to Attrs).
// The same underlying data may appear in several atoms under different
// attribute bindings (self-joins).
type AtomSpec struct {
	Name   string
	Attrs  []string
	Tuples [][]int
}

// Atom is an atom prepared for execution: its index tree is built in
// GAO-consistent column order and Positions maps the tree's levels to
// GAO positions (the paper's function s, strictly increasing).
type Atom struct {
	Name      string
	Tree      *reltree.Tree
	Positions []int
}

// Problem is a join query bound to a global attribute order, with all
// relations indexed consistently with the GAO (Section 2.1).
type Problem struct {
	GAO   []string
	Atoms []Atom
	// Debug enables the per-iteration soundness check that each non-output
	// probe point is covered by a freshly inserted constraint (the
	// termination invariant of Theorem 3.2's proof). O(2^n log W) per probe.
	Debug bool
}

// NewProblem validates the query, permutes every atom's columns into
// GAO-consistent order, and builds the search-tree indexes.
func NewProblem(gao []string, atoms []AtomSpec) (*Problem, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	pos := make(map[string]int, len(gao))
	for i, a := range gao {
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("core: GAO repeats attribute %q", a)
		}
		pos[a] = i
	}
	covered := make([]bool, len(gao))
	p := &Problem{GAO: gao}
	names := map[string]bool{}
	for _, spec := range atoms {
		if len(spec.Attrs) == 0 {
			return nil, fmt.Errorf("core: atom %q has no attributes", spec.Name)
		}
		if names[spec.Name] {
			return nil, fmt.Errorf("core: duplicate atom name %q (atom names key the certificate variables)", spec.Name)
		}
		names[spec.Name] = true
		seen := map[string]bool{}
		type col struct {
			gaoPos, srcCol int
		}
		cols := make([]col, 0, len(spec.Attrs))
		for j, a := range spec.Attrs {
			gp, ok := pos[a]
			if !ok {
				return nil, fmt.Errorf("core: atom %q: attribute %q not in GAO", spec.Name, a)
			}
			if seen[a] {
				return nil, fmt.Errorf("core: atom %q repeats attribute %q", spec.Name, a)
			}
			seen[a] = true
			covered[gp] = true
			cols = append(cols, col{gp, j})
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i].gaoPos < cols[j].gaoPos })
		positions := make([]int, len(cols))
		perm := make([]int, len(cols))
		for i, c := range cols {
			positions[i] = c.gaoPos
			perm[i] = c.srcCol
		}
		permuted := make([][]int, len(spec.Tuples))
		for i, tup := range spec.Tuples {
			if len(tup) != len(spec.Attrs) {
				return nil, fmt.Errorf("core: atom %q: tuple %d has %d values, want %d", spec.Name, i, len(tup), len(spec.Attrs))
			}
			row := make([]int, len(perm))
			for j, src := range perm {
				row[j] = tup[src]
			}
			permuted[i] = row
		}
		tree, err := reltree.New(spec.Name, len(cols), permuted)
		if err != nil {
			return nil, err
		}
		p.Atoms = append(p.Atoms, Atom{Name: spec.Name, Tree: tree, Positions: positions})
	}
	for i, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: GAO attribute %q appears in no atom", gao[i])
		}
	}
	return p, nil
}

// Attach wires per-run stats into every index tree.
func (p *Problem) Attach(s *certificate.Stats) {
	for _, a := range p.Atoms {
		a.Tree.SetStats(s)
	}
}

// Detach removes the stats receivers.
func (p *Problem) Detach() {
	for _, a := range p.Atoms {
		a.Tree.SetStats(nil)
	}
}

// InputSize returns N: the total number of tuples across atoms.
func (p *Problem) InputSize() int {
	n := 0
	for _, a := range p.Atoms {
		n += a.Tree.Size()
	}
	return n
}

// Package planner chooses global attribute orders from the data, not
// just the query structure. The paper's certificate bound Õ(|C|^{w+1}+Z)
// is relative to a fixed GAO, and Examples B.3–B.6 show that two
// equal-width orders can differ by an exponential factor on the same
// instance; the structural heuristics (nested elimination orders, the
// greedy min-width search) cannot see that difference. This package
// collects cheap per-column statistics at index-build time — distinct
// counts, value ranges, a max-frequency skew sketch — and runs a
// cost-based beam search over elimination-width-feasible orders, so the
// order the engines evaluate under reflects the instance at hand.
package planner

import "sort"

// ColStat summarizes one relation column: the number of distinct
// values, the value range, and the size of the largest single-value run
// (the skew sketch — a column where one value dominates joins very
// differently from a uniform one with the same distinct count).
type ColStat struct {
	Distinct int
	Min, Max int
	MaxFreq  int
}

// Span returns the width of the column's value range (0 for an empty
// column). Span ≫ Distinct marks a sparse domain — the signal the
// dictionary encoder keys on.
func (c ColStat) Span() int {
	if c.Distinct == 0 {
		return 0
	}
	return c.Max - c.Min + 1
}

// freqSkewFactor is the skew threshold of FreqSkewed: the heaviest
// value must occur at least this many times the uniform expectation
// rows/distinct before a frequency-permuted domain order is worth a
// non-order-preserving encoding.
const freqSkewFactor = 8

// FreqSkewed reports whether the skew sketch marks the column a
// candidate for a frequency-permuted domain order (NewFreqDict): its
// max-frequency value dominates enough that clustering heavy values at
// adjacent codes can coalesce the constraint-store intervals around
// them. Uniform columns (MaxFreq ≈ rows/distinct) never qualify, so
// typical key data keeps the order-preserving rank encoding and its
// bound pushdown.
func FreqSkewed(rows int, c ColStat) bool {
	if rows == 0 || c.Distinct < 2 || c.MaxFreq < 2 {
		return false
	}
	return c.MaxFreq*c.Distinct >= freqSkewFactor*rows
}

// RelStats carries the per-column statistics of one relation snapshot.
// The public layer caches one per relation, invalidated by the
// relation's mutation epoch, so prepared queries re-plan only when the
// data actually changed.
type RelStats struct {
	Rows int
	Cols []ColStat
}

// Collect computes the statistics of a tuple set in O(arity · N log N):
// one sorted pass per column. Duplicate tuples are counted as stored
// (the sketch approximates the indexed relation closely enough for
// costing; exactness is not required).
func Collect(tuples [][]int, arity int) *RelStats {
	st := &RelStats{Rows: len(tuples), Cols: make([]ColStat, arity)}
	if len(tuples) == 0 {
		return st
	}
	buf := make([]int, len(tuples))
	for c := 0; c < arity; c++ {
		for i, tup := range tuples {
			buf[i] = tup[c]
		}
		sort.Ints(buf)
		cs := ColStat{Min: buf[0], Max: buf[len(buf)-1], Distinct: 1, MaxFreq: 1}
		run := 1
		for i := 1; i < len(buf); i++ {
			if buf[i] == buf[i-1] {
				run++
				if run > cs.MaxFreq {
					cs.MaxFreq = run
				}
				continue
			}
			run = 1
			cs.Distinct++
		}
		st.Cols[c] = cs
	}
	return st
}

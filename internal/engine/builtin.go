package engine

import (
	"context"

	"minesweeper/internal/baseline"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// The five built-in engines. Minesweeper, Leapfrog and NPRR consume the
// search-tree indexes directly; Yannakakis and the hash plan work on
// tuple lists reconstructed from the indexes via Problem.Specs (they are
// Ω(N) per run regardless, so the materialization does not change their
// asymptotics).
func init() {
	Register(Engine{
		Name:        "minesweeper",
		Streaming:   true,
		Description: "certificate-optimal probe-driven join (Algorithm 2), Õ(|C|^{w+1}+Z)",
		Run:         core.MinesweeperStreamContext,
	})
	Register(Engine{
		Name:        "leapfrog",
		Streaming:   true,
		Description: "Leapfrog Triejoin, worst-case optimal backtracking search",
		Run:         baseline.LeapfrogStream,
	})
	Register(Engine{
		Name:        "nprr",
		Streaming:   true,
		Description: "NPRR-style generic join, worst-case optimal hash probing",
		Run:         baseline.NPRRStream,
	})
	Register(Engine{
		Name:        "yannakakis",
		Streaming:   false,
		Description: "Yannakakis semijoin reduction for α-acyclic queries, Õ(N+Z)",
		Run: func(ctx context.Context, p *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
			return baseline.YannakakisStream(ctx, p.GAO, p.Specs(), stats, emit)
		},
	})
	Register(Engine{
		Name:        "hashplan",
		Streaming:   false,
		Description: "left-deep pairwise hash-join plan (materializing oracle)",
		Run: func(ctx context.Context, p *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
			return baseline.LeftDeepHashJoinStream(ctx, p.GAO, p.Specs(), stats, emit)
		},
	})
}

package minesweeper

import (
	"reflect"
	"sort"
	"testing"

	"minesweeper/internal/dataset"
)

// The E13 dict+box interaction suite: the clustered workloads are
// exactly where the box-cover CDS and the dictionary machinery overlap
// (boxes span the trailing attributes the dictionaries re-code), so
// every engine, dictionary mode and worker count must agree tuple for
// tuple — including after a mutation forces a prepared re-plan.

// assertGAOLex fails unless the tuples are sorted GAO-lexicographically:
// tuples are emitted in evaluation order, so the columns are compared in
// GAO order, located through the output Vars.
func assertGAOLex(t *testing.T, res *Result) {
	t.Helper()
	pos := make([]int, 0, len(res.GAO))
	for _, g := range res.GAO {
		for j, v := range res.Vars {
			if v == g {
				pos = append(pos, j)
				break
			}
		}
	}
	less := func(a, b []int) bool {
		for _, j := range pos {
			if a[j] != b[j] {
				return a[j] < b[j]
			}
		}
		return false
	}
	for i := 1; i < len(res.Tuples); i++ {
		if less(res.Tuples[i], res.Tuples[i-1]) {
			t.Fatalf("tuples not GAO-lex sorted at %d: %v after %v (gao=%v vars=%v)",
				i, res.Tuples[i], res.Tuples[i-1], res.GAO, res.Vars)
		}
	}
}

// TestClusteredEngineEquivalence runs the E13 shapes across every
// engine, dictionary mode and worker count and demands identical
// results in identical GAO-lex order, then mutates a relation and
// re-executes the prepared variants to cover the re-plan path.
func TestClusteredEngineEquivalence(t *testing.T) {
	shapes := []struct {
		name string
		data func() (r, s [][]int)
		want int // expected output count before mutation
	}{
		{"band", func() ([][]int, [][]int) { return dataset.ClusteredBandJoin(3, 24) }, 0},
		{"overlap", func() ([][]int, [][]int) { return dataset.ClusteredOverlapJoin(3, 24, 6) }, 3 * 4},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			rT, sT := shape.data()
			r := rel(t, "R", 2, rT)
			s := rel(t, "S", 2, sT)
			q, err := NewQuery(
				Atom{Rel: r, Vars: []string{"x", "y"}},
				Atom{Rel: s, Vars: []string{"x", "y"}},
			)
			if err != nil {
				t.Fatal(err)
			}

			type variant struct {
				dict    DictMode
				eng     Engine
				workers int
			}
			var variants []variant
			for _, dict := range []DictMode{DictAuto, DictOff, DictOn} {
				for _, eng := range allEngines {
					for _, workers := range []int{1, 4} {
						if workers > 1 && eng != EngineMinesweeper {
							continue
						}
						variants = append(variants, variant{dict, eng, workers})
					}
				}
			}
			pqs := make([]*PreparedQuery, len(variants))
			for i, v := range variants {
				pq, err := q.Prepare(&Options{Engine: v.eng, Workers: v.workers, Dict: v.dict})
				if err != nil {
					t.Fatalf("dict=%v engine=%v workers=%d: %v", v.dict, v.eng, v.workers, err)
				}
				pqs[i] = pq
			}

			check := func(stage string, want int) {
				t.Helper()
				var ref *Result
				for i, v := range variants {
					res, err := pqs[i].Execute()
					if err != nil {
						t.Fatalf("%s dict=%v engine=%v workers=%d: %v", stage, v.dict, v.eng, v.workers, err)
					}
					if len(res.Tuples) != want {
						t.Fatalf("%s dict=%v engine=%v workers=%d: %d tuples, want %d",
							stage, v.dict, v.eng, v.workers, len(res.Tuples), want)
					}
					assertGAOLex(t, res)
					if ref == nil {
						ref = res
						continue
					}
					if !reflect.DeepEqual(res.Vars, ref.Vars) {
						t.Fatalf("%s dict=%v engine=%v workers=%d: vars %v != %v",
							stage, v.dict, v.eng, v.workers, res.Vars, ref.Vars)
					}
					if !reflect.DeepEqual(res.Tuples, ref.Tuples) {
						t.Fatalf("%s dict=%v engine=%v workers=%d: tuples diverge (first diff %v)",
							stage, v.dict, v.eng, v.workers, firstDiff(res.Tuples, ref.Tuples))
					}
				}
			}
			check("initial", shape.want)

			// Mutate into the overlap band: both relations gain one shared
			// (x, y) pair in a fresh cluster, so every prepared variant must
			// re-plan and agree on exactly one more output tuple.
			const newX = 50 << 16
			if err := r.Insert([]int{newX, 5}); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert([]int{newX, 5}); err != nil {
				t.Fatal(err)
			}
			check("after mutation", shape.want+1)
		})
	}
}

// TestClusteredBoxStatsSurface: the public Stats of an E13 run report
// the box-cover activity (Boxes stored, BoxSkips served), sequential
// and parallel — the /stats and msbench instrumentation rides on these
// fields.
func TestClusteredBoxStatsSurface(t *testing.T) {
	rT, sT := dataset.ClusteredBandJoin(3, 48)
	r := rel(t, "R", 2, rT)
	s := rel(t, "S", 2, sT)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "y"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the clustered x-first order: the data-aware planner would put
	// the two-value y attribute first and empty the join from the bands
	// alone, which is clever but not what this test measures.
	for _, workers := range []int{1, 4} {
		res, err := Execute(q, &Options{GAO: []string{"x", "y"}, Workers: workers, Dict: DictOff})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 0 {
			t.Fatalf("workers=%d: band join must be empty, got %d tuples", workers, len(res.Tuples))
		}
		if res.Stats.Boxes == 0 || res.Stats.BoxSkips == 0 {
			t.Fatalf("workers=%d: box stats not surfaced: Boxes=%d BoxSkips=%d",
				workers, res.Stats.Boxes, res.Stats.BoxSkips)
		}
	}
}

// TestClusteredOverlapOutputsSorted doubles as a direct probe of the
// GAO-lex contract on a non-trivial E13 result set: the overlap rows
// must come out strictly increasing in (x, y).
func TestClusteredOverlapOutputsSorted(t *testing.T) {
	rT, sT := dataset.ClusteredOverlapJoin(4, 16, 4)
	r := rel(t, "R", 2, rT)
	s := rel(t, "S", 2, sT)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"x", "y"}},
		Atom{Rel: s, Vars: []string{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("overlap join must be non-empty")
	}
	if !sort.SliceIsSorted(res.Tuples, func(i, j int) bool {
		a, b := res.Tuples[i], res.Tuples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	}) {
		t.Fatalf("overlap outputs not sorted: %v", res.Tuples)
	}
}

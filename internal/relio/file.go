package relio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file through a temp file in the same
// directory and an atomic rename, fsyncing the data before the rename
// and the directory after it. A reader never observes a half-written
// file: it sees either the old content or the new, so a crash mid-dump
// cannot leave a truncated relation or snapshot behind. On error the
// temp file is removed and the target is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("relio: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	SyncDir(dir)
	return nil
}

// WriteRelationFile dumps the relation to path atomically (see
// WriteFileAtomic): concurrent readers and crashes observe either the
// previous file or the complete new one, never a torn dump.
func WriteRelationFile(path string, rel *Relation) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		return WriteRelation(w, rel)
	})
}

// SyncDir fsyncs a directory, making renames and creations within it
// durable. Errors are ignored: not every platform or filesystem
// supports fsync on directories, and the rename itself has already
// happened.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

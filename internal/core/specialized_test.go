package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"minesweeper/internal/certificate"
)

func refIntersect(sets [][]int) []int {
	if len(sets) == 0 {
		return nil
	}
	count := map[int]map[int]bool{}
	for i, s := range sets {
		for _, v := range s {
			if count[v] == nil {
				count[v] = map[int]bool{}
			}
			count[v][i] = true
		}
	}
	var out []int
	for v, in := range count {
		if len(in) == len(sets) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func TestIntersectBasic(t *testing.T) {
	got, err := IntersectSets([][]int{{1, 3, 5, 7}, {3, 4, 5}, {5, 3, 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestIntersectSingleSet(t *testing.T) {
	got, err := IntersectSets([][]int{{4, 2, 2, 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 4, 9}) {
		t.Fatalf("got %v", got)
	}
}

func TestIntersectEmptyArgs(t *testing.T) {
	if _, err := IntersectSets(nil, nil); err == nil {
		t.Fatal("no sets must error")
	}
	got, err := IntersectSets([][]int{{1, 2}, {}}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestIntersectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(4)
		sets := make([][]int, m)
		for i := range sets {
			n := rng.Intn(30)
			for j := 0; j < n; j++ {
				sets[i] = append(sets[i], rng.Intn(20))
			}
		}
		got, err := IntersectSets(sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refIntersect(sets)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sets=%v got %v want %v", trial, sets, got, want)
		}
	}
}

// TestIntersectAdaptivity: Example B.1-style instance — disjoint ranges
// have an O(1) certificate; probe count must not scale with N.
func TestIntersectAdaptivity(t *testing.T) {
	const n = 10000
	s1 := make([]int, n)
	s2 := make([]int, n)
	for i := 0; i < n; i++ {
		s1[i] = i
		s2[i] = n + i
	}
	var stats certificate.Stats
	got, err := IntersectSets([][]int{s1, s2}, &stats)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if stats.ProbePoints > 4 {
		t.Fatalf("ProbePoints = %d, want O(1)", stats.ProbePoints)
	}
	// Interleaved instance: certificate is Θ(N); probes scale accordingly.
	for i := 0; i < n; i++ {
		s1[i] = 2 * i
		s2[i] = 2*i + 1
	}
	stats = certificate.Stats{}
	if _, err := IntersectSets([][]int{s1, s2}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ProbePoints < n/2 {
		t.Fatalf("interleaved instance should need Ω(N) probes, got %d", stats.ProbePoints)
	}
}

func refBowtie(r []int, s [][]int, t []int) [][]int {
	rs, ts := map[int]bool{}, map[int]bool{}
	for _, v := range r {
		rs[v] = true
	}
	for _, v := range t {
		ts[v] = true
	}
	seen := map[[2]int]bool{}
	var out [][]int
	for _, p := range s {
		k := [2]int{p[0], p[1]}
		if rs[p[0]] && ts[p[1]] && !seen[k] {
			seen[k] = true
			out = append(out, []int{p[0], p[1]})
		}
	}
	sortTuples(out)
	return out
}

func TestBowtieBasic(t *testing.T) {
	r := []int{1, 2, 5}
	s := [][]int{{1, 10}, {1, 20}, {2, 10}, {3, 30}, {5, 20}}
	ty := []int{10, 20, 40}
	got, err := Bowtie(r, s, ty, nil)
	if err != nil {
		t.Fatal(err)
	}
	sortTuples(got)
	want := refBowtie(r, s, ty)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBowtieEmpty(t *testing.T) {
	got, err := Bowtie(nil, nil, nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	got, err = Bowtie([]int{1}, [][]int{{1, 2}}, nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestBowtieRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		dom := 1 + rng.Intn(8)
		mk := func() []int {
			var out []int
			for i := 0; i < rng.Intn(10); i++ {
				out = append(out, rng.Intn(dom))
			}
			return out
		}
		var s [][]int
		for i := 0; i < rng.Intn(20); i++ {
			s = append(s, []int{rng.Intn(dom), rng.Intn(dom)})
		}
		r, ty := mk(), mk()
		got, err := Bowtie(r, s, ty, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sortTuples(got)
		want := refBowtie(r, s, ty)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: r=%v s=%v t=%v got %v want %v", trial, r, s, ty, got, want)
		}
	}
}

// TestBowtieHiddenGapInstance replays the instance after Algorithm 9 that
// motivates exploring both S-branches: R={2}, T={N+1},
// S = {(1, N+1+i)} ∪ {(3, i)}.
func TestBowtieHiddenGapInstance(t *testing.T) {
	const n = 200
	var s [][]int
	for i := 1; i <= n; i++ {
		s = append(s, []int{1, n + 1 + i}, []int{3, i})
	}
	var stats certificate.Stats
	got, err := Bowtie([]int{2}, s, []int{n + 1}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty output, got %v", got)
	}
	if stats.ProbePoints > 8 {
		t.Fatalf("ProbePoints = %d; certificate here is O(1)", stats.ProbePoints)
	}
}

func refTriangle(r, s, t [][]int) [][]int {
	rm, sm, tm := map[[2]int]bool{}, map[[2]int]bool{}, map[[2]int]bool{}
	for _, p := range r {
		rm[[2]int{p[0], p[1]}] = true
	}
	for _, p := range s {
		sm[[2]int{p[0], p[1]}] = true
	}
	for _, p := range t {
		tm[[2]int{p[0], p[1]}] = true
	}
	seen := map[[3]int]bool{}
	var out [][]int
	for ab := range rm {
		for bc := range sm {
			if ab[1] != bc[0] {
				continue
			}
			if tm[[2]int{ab[0], bc[1]}] {
				k := [3]int{ab[0], ab[1], bc[1]}
				if !seen[k] {
					seen[k] = true
					out = append(out, []int{k[0], k[1], k[2]})
				}
			}
		}
	}
	sortTuples(out)
	return out
}

func TestTriangleBasic(t *testing.T) {
	edges := [][]int{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {2, 4}}
	sym := func(es [][]int) [][]int {
		var out [][]int
		for _, e := range es {
			out = append(out, []int{e[0], e[1]}, []int{e[1], e[0]})
		}
		return out
	}
	r, s, ty := sym(edges), sym(edges), sym(edges)
	got, err := Triangle(r, s, ty, nil)
	if err != nil {
		t.Fatal(err)
	}
	sortTuples(got)
	want := refTriangle(r, s, ty)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("graph has triangles")
	}
}

func TestTriangleEmpty(t *testing.T) {
	got, err := Triangle(nil, nil, nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	got, err = Triangle([][]int{{1, 2}}, [][]int{{2, 3}}, nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestTriangleRandom cross-checks the dyadic-CDS triangle engine against
// the brute-force reference and against generic Minesweeper.
func TestTriangleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		dom := 2 + rng.Intn(6)
		mk := func() [][]int {
			var out [][]int
			for i := 0; i < rng.Intn(25); i++ {
				out = append(out, []int{rng.Intn(dom), rng.Intn(dom)})
			}
			return out
		}
		r, s, ty := mk(), mk(), mk()
		got, err := Triangle(r, s, ty, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sortTuples(got)
		want := refTriangle(r, s, ty)
		if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d:\nr=%v\ns=%v\nt=%v\ngot  %v\nwant %v", trial, r, s, ty, got, want)
		}
		// Generic engine agreement.
		p, err := NewProblem([]string{"A", "B", "C"}, []AtomSpec{
			{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
			{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
			{Name: "T", Attrs: []string{"A", "C"}, Tuples: ty},
		})
		if err != nil {
			t.Fatal(err)
		}
		generic, err := MinesweeperAll(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		sortTuples(generic)
		if !(len(generic) == 0 && len(want) == 0) && !reflect.DeepEqual(generic, want) {
			t.Fatalf("trial %d: generic engine diverges: %v want %v", trial, generic, want)
		}
	}
}

// TestTrianglePairsHardInstance builds the instance class where the
// generic CDS wastes Ω(|C|²) (a,b)-pair explorations while the dyadic CDS
// explores O(|C|) of them: R = [n]×[n] (all pairs), S = [n]×{n+1..},
// T = ∅-ish so output is empty but A×B space is large.
func TestTrianglePairsHardInstance(t *testing.T) {
	const n = 25
	var r, s, ty [][]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r = append(r, []int{i, j})
		}
		s = append(s, []int{i, n + 1 + i})
		ty = append(ty, []int{i, n + 100 + i})
	}
	var specialStats, genericStats certificate.Stats
	got, err := Triangle(r, s, ty, &specialStats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
	p, err := NewProblem([]string{"A", "B", "C"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
		{Name: "T", Attrs: []string{"A", "C"}, Tuples: ty},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := MinesweeperAll(p, &genericStats)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen) != 0 {
		t.Fatal("generic disagrees")
	}
	// The specialized engine must issue far fewer probes on this family.
	if specialStats.ProbePoints*2 > genericStats.ProbePoints {
		t.Logf("special=%d generic=%d", specialStats.ProbePoints, genericStats.ProbePoints)
	}
}

func TestTriangleSelfLoopGraph(t *testing.T) {
	// Self-loops and one real triangle.
	edges := [][]int{{0, 0}, {1, 2}, {2, 3}, {1, 3}}
	got, err := Triangle(edges, edges, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	sortTuples(got)
	want := refTriangle(edges, edges, edges)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIntersectMergeVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(4)
		sets := make([][]int, m)
		for i := range sets {
			n := rng.Intn(30)
			for j := 0; j < n; j++ {
				sets[i] = append(sets[i], rng.Intn(25))
			}
		}
		a, err := IntersectSets(sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := IntersectSetsMerge(sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: interval-CDS %v vs merge-CDS %v (sets %v)", trial, a, b, sets)
		}
	}
	if _, err := IntersectSetsMerge(nil, nil); err == nil {
		t.Fatal("no sets must error")
	}
}

func TestIntersectMergeAdaptivity(t *testing.T) {
	// On the disjoint-blocks instance the merge variant gallops too.
	const n = 10000
	s1, s2 := make([]int, n), make([]int, n)
	for i := 0; i < n; i++ {
		s1[i] = i
		s2[i] = n + i
	}
	var stats certificate.Stats
	out, err := IntersectSetsMerge([][]int{s1, s2}, &stats)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
	if stats.ProbePoints > 6 {
		t.Fatalf("ProbePoints = %d, want O(1)", stats.ProbePoints)
	}
}

func TestMinesweeperStreamEarlyStop(t *testing.T) {
	var tuples [][]int
	for i := 0; i < 50; i++ {
		tuples = append(tuples, []int{i})
	}
	p := mustProblem(t, []string{"A"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: tuples},
		{Name: "S", Attrs: []string{"A"}, Tuples: tuples},
	})
	var got [][]int
	var stats certificate.Stats
	err := MinesweeperStream(p, &stats, func(t []int) bool {
		got = append(got, t)
		return len(got) < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("stream yielded %d tuples, want 3", len(got))
	}
	if stats.ProbePoints > 10 {
		t.Fatalf("early stop still probed %d times", stats.ProbePoints)
	}
}

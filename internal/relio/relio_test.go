package relio

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestReadRelationBasic(t *testing.T) {
	in := `
# a comment
R: A B
1 2

# another comment
3 4
`
	rel, err := ReadRelation(strings.NewReader(in), "test")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "R" || !reflect.DeepEqual(rel.Vars, []string{"A", "B"}) {
		t.Fatalf("header = %q %v", rel.Name, rel.Vars)
	}
	want := [][]int{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(rel.Tuples, want) {
		t.Fatalf("tuples = %v", rel.Tuples)
	}
}

func TestReadRelationErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no header", "1 2\n"},
		{"empty", ""},
		{"empty name", ": A B\n"},
		{"no vars", "R:\n"},
		{"dup vars", "R: A A\n"},
		{"short row", "R: A B\n1\n"},
		{"long row", "R: A B\n1 2 3\n"},
		{"negative", "R: A\n-1\n"},
		{"non-numeric", "R: A\nxyz\n"},
	}
	for _, c := range cases {
		if _, err := ReadRelation(strings.NewReader(c.in), c.name); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteRelationValidation(t *testing.T) {
	var buf bytes.Buffer
	err := WriteRelation(&buf, &Relation{Name: "R", Vars: []string{"A"}, Tuples: [][]int{{1, 2}}})
	if err == nil {
		t.Fatal("ragged tuple must fail")
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		arity := 1 + rng.Intn(4)
		vars := make([]string, arity)
		for i := range vars {
			vars[i] = string(rune('A' + i))
		}
		n := rng.Intn(40)
		tuples := make([][]int, n)
		for i := range tuples {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(1000)
			}
			tuples[i] = tup
		}
		orig := &Relation{Name: "Rel", Vars: vars, Tuples: tuples}
		var buf bytes.Buffer
		if err := WriteRelation(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ReadRelation(&buf, "roundtrip")
		if err != nil {
			t.Fatal(err)
		}
		if back.Name != orig.Name || !reflect.DeepEqual(back.Vars, orig.Vars) {
			t.Fatalf("header mismatch: %v", back)
		}
		if len(back.Tuples) != len(orig.Tuples) {
			t.Fatalf("tuple count %d vs %d", len(back.Tuples), len(orig.Tuples))
		}
		for i := range orig.Tuples {
			if !reflect.DeepEqual(back.Tuples[i], orig.Tuples[i]) {
				t.Fatalf("tuple %d: %v vs %v", i, back.Tuples[i], orig.Tuples[i])
			}
		}
	}
}

func TestReadRelationEmptyRelation(t *testing.T) {
	rel, err := ReadRelation(strings.NewReader("R: A B\n"), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 0 {
		t.Fatalf("tuples = %v", rel.Tuples)
	}
}

// TestReadRelationWideTuples covers lines longer than the scanner's
// initial buffer: before the buffer grew on demand, any line past 1 MiB
// failed with a bare "token too long". A wide header plus a ~1.8 MiB
// tuple line must parse, and the data must round-trip.
func TestReadRelationWideTuples(t *testing.T) {
	const arity = 300_000
	vars := make([]string, arity)
	tup := make([]int, arity)
	for i := range vars {
		vars[i] = "V" + strconv.Itoa(i)
		tup[i] = i % 10
	}
	var in bytes.Buffer
	if err := WriteRelation(&in, &Relation{Name: "Wide", Vars: vars, Tuples: [][]int{tup}}); err != nil {
		t.Fatal(err)
	}
	if in.Len() < 2<<20 {
		t.Fatalf("fixture too narrow to exercise buffer growth: %d bytes", in.Len())
	}
	rel, err := ReadRelation(bytes.NewReader(in.Bytes()), "wide.rel")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "Wide" || len(rel.Vars) != arity || len(rel.Tuples) != 1 {
		t.Fatalf("parsed %q: %d vars, %d tuples", rel.Name, len(rel.Vars), len(rel.Tuples))
	}
	if !reflect.DeepEqual(rel.Tuples[0], tup) {
		t.Fatal("wide tuple does not round-trip")
	}
}

package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Faulty wraps any Backend and deterministically injects failures at
// every operation boundary, so tests (and the MS_TEST_BACKEND=faulty
// chaos mode) can prove log-then-apply atomicity, poison semantics and
// fail-soft compaction under faults nobody thought to hand-write.
//
// Faults come from a script — a semicolon-separated list of rules:
//
//	rule  := op '@' occur '=' fault
//	op    := append | sync | compact | recover | close
//	occur := '*'            every call
//	       | N              exactly the Nth call of that op (1-based)
//	       | N '+'          the Nth call and every later one
//	       | N '/' K        every Kth call starting at the Nth
//	fault := err            generic injected I/O error
//	       | enospc         disk-full (wraps syscall.ENOSPC)
//	       | torn[:BYTES]   partial write of the framed record, then
//	                        failure (append only; BYTES defaults to
//	                        half the record)
//	       | delay:DUR      sleep DUR, then perform the op normally
//
// For example "append@3=torn:17; compact@1/2=err; sync@*=delay:100us"
// tears the third append after 17 bytes, fails every odd compaction,
// and slows every sync by 100µs. The first rule matching a call wins.
//
// Error faults wrap ErrInjected, so a test can always tell an injected
// failure from a real bug. When the inner backend is a *Durable,
// injected append faults write the torn prefix into the real WAL file
// and poison the backend exactly as a genuine write error would —
// recovery from that directory then exercises true torn-tail
// truncation — and injected sync faults poison it likewise. Over any
// other backend the fault is the returned error alone. Compaction
// faults never touch the inner backend: like a real snapshot-write
// failure they are fail-soft, the WAL stays authoritative and the
// caller retries later.
type Faulty struct {
	inner Backend
	rules []faultRule
	rng   *rand.Rand // optional random injection (NewFaultyRand)
	rate  float64

	mu       sync.Mutex
	counts   map[string]int // per-op call counts
	injected int64
	lastErr  string
}

// ErrInjected is the root of every fault the Faulty backend injects.
var ErrInjected = errors.New("storage: injected fault")

type faultKind int

const (
	faultErr faultKind = iota
	faultENOSPC
	faultTorn
	faultDelay
)

type faultRule struct {
	op    string
	start int // first matching call (1-based); 0 = every call
	step  int // 0 = only start matches; 1 = start and later; k>1 = every kth from start
	kind  faultKind
	bytes int           // faultTorn: prefix bytes to land (-1 = half the record)
	delay time.Duration // faultDelay
}

// matches reports whether the rule fires on the nth call (1-based).
func (r *faultRule) matches(op string, n int) bool {
	if r.op != op {
		return false
	}
	switch {
	case r.start == 0:
		return true
	case n < r.start:
		return false
	case r.step == 0:
		return n == r.start
	default:
		return (n-r.start)%r.step == 0
	}
}

var faultOps = map[string]bool{
	"append": true, "sync": true, "compact": true, "recover": true, "close": true,
}

// ParseFaultScript parses the fault-script grammar documented on
// Faulty. An empty script is valid (no faults).
func ParseFaultScript(script string) ([]faultRule, error) {
	var rules []faultRule
	for _, raw := range strings.Split(script, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		opOccur, fault, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("storage: fault rule %q: missing '='", part)
		}
		opName, occur, ok := strings.Cut(strings.TrimSpace(opOccur), "@")
		if !ok {
			return nil, fmt.Errorf("storage: fault rule %q: missing '@'", part)
		}
		opName = strings.TrimSpace(opName)
		if !faultOps[opName] {
			return nil, fmt.Errorf("storage: fault rule %q: unknown op %q", part, opName)
		}
		rule := faultRule{op: opName}
		occur = strings.TrimSpace(occur)
		switch {
		case occur == "*":
			// start 0: every call.
		case strings.HasSuffix(occur, "+"):
			n, err := strconv.Atoi(occur[:len(occur)-1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("storage: fault rule %q: bad occurrence %q", part, occur)
			}
			rule.start, rule.step = n, 1
		case strings.Contains(occur, "/"):
			ns, ks, _ := strings.Cut(occur, "/")
			n, err1 := strconv.Atoi(ns)
			k, err2 := strconv.Atoi(ks)
			if err1 != nil || err2 != nil || n < 1 || k < 1 {
				return nil, fmt.Errorf("storage: fault rule %q: bad occurrence %q", part, occur)
			}
			rule.start, rule.step = n, k
		default:
			n, err := strconv.Atoi(occur)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("storage: fault rule %q: bad occurrence %q", part, occur)
			}
			rule.start = n
		}
		fault = strings.TrimSpace(fault)
		kindName, arg, hasArg := strings.Cut(fault, ":")
		switch kindName {
		case "err":
			rule.kind = faultErr
		case "enospc":
			rule.kind = faultENOSPC
		case "torn":
			rule.kind = faultTorn
			rule.bytes = -1
			if hasArg {
				n, err := strconv.Atoi(arg)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("storage: fault rule %q: bad torn byte count %q", part, arg)
				}
				rule.bytes = n
			}
		case "delay":
			if !hasArg {
				return nil, fmt.Errorf("storage: fault rule %q: delay needs a duration", part)
			}
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("storage: fault rule %q: bad delay %q", part, arg)
			}
			rule.kind, rule.delay = faultDelay, d
		default:
			return nil, fmt.Errorf("storage: fault rule %q: unknown fault %q", part, fault)
		}
		if rule.kind == faultTorn && rule.op != "append" {
			return nil, fmt.Errorf("storage: fault rule %q: torn applies to append only", part)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// NewFaulty wraps inner with the given fault script.
func NewFaulty(inner Backend, script string) (*Faulty, error) {
	rules, err := ParseFaultScript(script)
	if err != nil {
		return nil, err
	}
	return &Faulty{inner: inner, rules: rules, counts: map[string]int{}}, nil
}

// NewFaultyRand wraps inner with seeded random injection: every
// operation boundary fails with probability rate (a generic injected
// error; appends additionally tear a random prefix into a *Durable's
// WAL). The same seed reproduces the same fault sequence.
func NewFaultyRand(inner Backend, seed int64, rate float64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewSource(seed)), rate: rate, counts: map[string]int{}}
}

// next advances the op's call counter and returns the rule firing on
// this call, if any.
func (f *Faulty) next(op string) *faultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	n := f.counts[op]
	for i := range f.rules {
		if f.rules[i].matches(op, n) {
			return &f.rules[i]
		}
	}
	if f.rng != nil && f.rng.Float64() < f.rate {
		r := &faultRule{op: op, kind: faultErr}
		if op == "append" {
			r.kind, r.bytes = faultTorn, -1
		}
		return r
	}
	return nil
}

func (f *Faulty) note(err error) error {
	f.mu.Lock()
	f.injected++
	f.lastErr = err.Error()
	f.mu.Unlock()
	return err
}

// Injected returns how many faults have been injected so far.
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// err renders the rule's injected error for the given op.
func (r *faultRule) err(op string) error {
	if r.kind == faultENOSPC {
		return fmt.Errorf("%w: %s: %w", ErrInjected, op, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s", ErrInjected, op)
}

func (f *Faulty) Recover() (*State, error) {
	if r := f.next("recover"); r != nil {
		if r.kind == faultDelay {
			time.Sleep(r.delay)
		} else {
			return nil, f.note(r.err("recover"))
		}
	}
	return f.inner.Recover()
}

func (f *Faulty) Append(rec *Record) error {
	r := f.next("append")
	if r == nil {
		return f.inner.Append(rec)
	}
	if r.kind == faultDelay {
		time.Sleep(r.delay)
		return f.inner.Append(rec)
	}
	cause := r.err("append")
	if d, ok := f.inner.(*Durable); ok {
		// Land a torn prefix in the real WAL and poison the backend the
		// way a genuine write error would. Non-torn faults land nothing
		// but still poison: the WAL tail is in an unknown state.
		torn := 0
		if r.kind == faultTorn {
			torn = r.bytes
			if torn < 0 {
				if buf, err := encodeRecord(nil, rec); err == nil {
					torn = len(buf) / 2
				}
			}
		}
		return f.note(d.appendInjected(rec, torn, cause))
	}
	return f.note(cause)
}

func (f *Faulty) Sync() error {
	if r := f.next("sync"); r != nil {
		if r.kind == faultDelay {
			time.Sleep(r.delay)
		} else {
			cause := r.err("sync")
			if d, ok := f.inner.(*Durable); ok {
				d.injectFailure(cause)
			}
			return f.note(cause)
		}
	}
	return f.inner.Sync()
}

func (f *Faulty) ShouldCompact() bool { return f.inner.ShouldCompact() }

func (f *Faulty) Compact(state *State) error {
	if r := f.next("compact"); r != nil {
		if r.kind == faultDelay {
			time.Sleep(r.delay)
		} else {
			// Fail-soft, like a real snapshot-write failure: the inner
			// backend is untouched and stays healthy, the WAL stays
			// authoritative, the caller retries on a later mutation.
			return f.note(r.err("compact"))
		}
	}
	return f.inner.Compact(state)
}

func (f *Faulty) Close() error {
	if r := f.next("close"); r != nil {
		if r.kind == faultDelay {
			time.Sleep(r.delay)
		} else {
			f.inner.Close()
			return f.note(r.err("close"))
		}
	}
	return f.inner.Close()
}

func (f *Faulty) Healthy() error { return f.inner.Healthy() }

func (f *Faulty) Stats() Stats {
	st := f.inner.Stats()
	st.Mode = "faulty+" + st.Mode
	f.mu.Lock()
	if st.LastError == "" {
		st.LastError = f.lastErr
	}
	f.mu.Unlock()
	return st
}

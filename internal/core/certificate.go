package core

import (
	"minesweeper/internal/certificate"
	"minesweeper/internal/reltree"
)

// BuildFullCertificate constructs the explicit certificate of
// Proposition 2.6 for the problem instance: for every GAO attribute it
// gathers all index-tuple variables on that attribute across all atoms
// (each search-tree node is one variable) and chains them with the
// equalities and inequalities of the construction. The result is a
// certificate of size ≤ r·N witnessing the instance's entire relative
// order — the worst-case upper bound that instance-specific optimal
// certificates improve upon.
func BuildFullCertificate(p *Problem) certificate.Argument {
	n := len(p.GAO)
	perAttr := make([][]certificate.AttrVar, n)
	for ai := range p.Atoms {
		atom := &p.Atoms[ai]
		collectVars(atom, func(index []int, depth, value int) {
			attr := atom.Positions[depth]
			perAttr[attr] = append(perAttr[attr], certificate.AttrVar{
				V:     certificate.Var{Rel: atom.Name, Index: append([]int(nil), index...)},
				Value: value,
			})
		})
	}
	var out certificate.Argument
	for _, vars := range perAttr {
		out = append(out, certificate.BuildProp26(vars)...)
	}
	return out
}

// collectVars walks an atom's search tree emitting every variable: the
// index tuple addressing it, its depth (0-based attribute position within
// the atom) and its stored value.
func collectVars(a *Atom, emit func(index []int, depth, value int)) {
	k := a.Tree.Arity()
	var idx []int
	var walk func(depth int)
	walk = func(depth int) {
		fan := a.Tree.Fanout(idx)
		for i := 0; i < fan; i++ {
			idx = append(idx, i)
			emit(idx, depth, a.Tree.Value(idx))
			if depth+1 < k {
				walk(depth + 1)
			}
			idx = idx[:len(idx)-1]
		}
	}
	walk(0)
	_ = k
}

// ProblemInstance adapts a Problem to the certificate.Instance interface,
// optionally applying a value transform (for the perturbation arguments
// of Propositions 2.5/2.6's proofs, e.g. v ↦ 2v+1).
func ProblemInstance(p *Problem, transform func(int) int) certificate.Instance {
	byName := map[string]*reltree.Tree{}
	for i := range p.Atoms {
		byName[p.Atoms[i].Name] = p.Atoms[i].Tree
	}
	return certificate.InstanceFunc(func(v certificate.Var) (int, bool) {
		tree, ok := byName[v.Rel]
		if !ok || len(v.Index) == 0 || len(v.Index) > tree.Arity() {
			return 0, false
		}
		// All components must be in range for the variable to exist.
		for j := range v.Index {
			if !tree.InRange(v.Index[:j], v.Index[j]) {
				return 0, false
			}
		}
		val := tree.Value(v.Index)
		if transform != nil {
			val = transform(val)
		}
		return val, true
	})
}

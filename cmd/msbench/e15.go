package main

import (
	"minesweeper/internal/benchsuite"
	"minesweeper/internal/shard"
)

// shardedSuite adapts the E15 sharded-scaling benchmarks into tracked
// suite entries. They are registered here rather than in
// internal/benchsuite because internal/shard imports the root package
// (whose bench_test.go imports benchsuite) — the cycle only breaks at
// this binary.
func shardedSuite() []benchsuite.Bench {
	var out []benchsuite.Bench
	for _, e := range shard.ScalingSuite() {
		out = append(out, benchsuite.Bench{Name: e.Name, Exp: "E15", F: e.F})
	}
	return out
}

// Command msjoin evaluates a natural join over relations stored in plain
// text files, using any of the library's engines.
//
// Each relation file has a header line naming the relation and its
// variables, followed by one tuple of non-negative integers per line:
//
//	R: A B
//	1 2
//	2 3
//
// The query is the natural join of all given files. Example:
//
//	msjoin -engine minesweeper -stats r.rel s.rel t.rel
//	msjoin -gao A,B,C r.rel s.rel
//
// Lines starting with '#' and blank lines are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"minesweeper"
	"minesweeper/internal/relio"
)

func main() {
	engineFlag := flag.String("engine", "auto", "auto, minesweeper, leapfrog, nprr, yannakakis, hashplan")
	gaoFlag := flag.String("gao", "", "comma-separated global attribute order (default: recommended)")
	statsFlag := flag.Bool("stats", false, "print run statistics")
	quiet := flag.Bool("quiet", false, "suppress tuple output (count only)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "msjoin: no relation files given")
		flag.Usage()
		os.Exit(2)
	}
	engines := map[string]minesweeper.Engine{
		"auto":        minesweeper.EngineAuto,
		"minesweeper": minesweeper.EngineMinesweeper,
		"leapfrog":    minesweeper.EngineLeapfrog,
		"nprr":        minesweeper.EngineNPRR,
		"yannakakis":  minesweeper.EngineYannakakis,
		"hashplan":    minesweeper.EngineHashPlan,
	}
	engine, ok := engines[*engineFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "msjoin: unknown engine %q\n", *engineFlag)
		os.Exit(2)
	}

	var atoms []minesweeper.Atom
	for _, path := range flag.Args() {
		atom, err := loadRelation(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
			os.Exit(1)
		}
		atoms = append(atoms, atom)
	}
	q, err := minesweeper.NewQuery(atoms...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(1)
	}
	opts := &minesweeper.Options{Engine: engine}
	if *gaoFlag != "" {
		opts.GAO = strings.Split(*gaoFlag, ",")
	}
	res, err := minesweeper.Execute(q, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("-- vars: %s\n", strings.Join(res.Vars, " "))
	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for _, tup := range res.Tuples {
			for i, v := range tup {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprint(w, v)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	fmt.Printf("-- %d tuples (engine=%s, gao=%s", len(res.Tuples), *engineFlag, strings.Join(res.GAO, ","))
	if q.IsBetaAcyclic() {
		fmt.Printf(", β-acyclic")
	} else if q.IsAlphaAcyclic() {
		fmt.Printf(", α-acyclic")
	} else {
		fmt.Printf(", cyclic")
	}
	fmt.Println(")")
	if *statsFlag {
		fmt.Printf("-- stats: %s\n", res.Stats.String())
		fmt.Printf("-- certificate estimate |C| ≈ %d FindGap ops\n", res.Stats.CertificateEstimate())
	}
}

// loadRelation parses "Name: V1 V2 ..." plus integer tuple rows.
func loadRelation(path string) (minesweeper.Atom, error) {
	f, err := os.Open(path)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	defer f.Close()
	parsed, err := relio.ReadRelation(f, path)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	rel, err := minesweeper.NewRelation(parsed.Name, len(parsed.Vars), parsed.Tuples)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	return minesweeper.Atom{Rel: rel, Vars: parsed.Vars}, nil
}

// Package minesweeper is a Go implementation of the Minesweeper join
// algorithm from "Beyond Worst-case Analysis for Joins with Minesweeper"
// (Ngo, Nguyen, Ré, Rudra — PODS 2014). Minesweeper evaluates natural
// joins over ordered indexes in time proportional to the instance's
// certificate complexity |C| — a per-instance difficulty measure that can
// be far below the input size — plus the output size: Õ(|C| + Z) for
// β-acyclic queries under a nested elimination order, Õ(|C|^{w+1} + Z)
// for global attribute orders of elimination width w, and Õ(|C|^{3/2}+Z)
// for the triangle query via a specialized dyadic constraint store.
//
// The package also ships the classical comparison algorithms (Yannakakis,
// Leapfrog Triejoin, NPRR-style generic join, pairwise hash plans) behind
// the same API, the acyclicity/width theory needed to pick good attribute
// orders, and specialized solvers for set intersection and the bow-tie
// and triangle queries.
//
// Quick start:
//
//	r, _ := minesweeper.NewRelation("R", 2, [][]int{{1, 2}, {2, 3}})
//	s, _ := minesweeper.NewRelation("S", 2, [][]int{{2, 5}, {3, 7}})
//	q, _ := minesweeper.NewQuery(
//		minesweeper.Atom{Rel: r, Vars: []string{"A", "B"}},
//		minesweeper.Atom{Rel: s, Vars: []string{"B", "C"}},
//	)
//	res, _ := minesweeper.Execute(q, nil)
//	// res.Tuples over res.Vars (the GAO), res.Stats has |C| estimates.
//
// Every engine runs behind the streaming executor layer: ExecuteStream
// exposes the anytime, one-tuple-at-a-time behaviour, ExecuteLimit stops
// after k tuples, and the Context variants honor cancellation and
// deadlines uniformly across engines. For repeated execution over the
// same relations, Prepare builds the GAO-permuted indexes once and
// caches them on the relations (keyed by column order), so re-running a
// query — or running another query that indexes the same relation the
// same way — skips the index build entirely.
package minesweeper

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"minesweeper/internal/baseline"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/hypergraph"
	"minesweeper/internal/ordered"
	"minesweeper/internal/planner"
	"minesweeper/internal/reltree"
)

// Stats carries the per-run cost counters of the certificate-complexity
// analysis: FindGap calls (the paper's empirical |C| proxy), probe
// points, constraints inserted, CDS work, comparisons, and output count.
type Stats = certificate.Stats

// Relation is a set of tuples of fixed arity with non-negative integer
// components (the paper's ℕ domains). The same Relation may be bound by
// several atoms of a query (self-joins).
//
// A Relation owns its index cache: the first execution that needs the
// relation sorted under some column order builds a search tree and
// caches it keyed by that column permutation, so later executions —
// through this query or any other — reuse it. The cache is safe for
// concurrent use and lives as long as the Relation.
//
// Relations are mutable: Insert, Delete and Replace change the stored
// tuples, bump the relation's epoch and drop the cached indexes, which
// are lazily rebuilt by the next execution that needs them. Prepared
// queries bound to an earlier epoch detect the change and transparently
// re-prepare (see PreparedQuery). All methods are safe for concurrent
// use.
type Relation struct {
	name  string
	arity int

	mu      sync.Mutex
	epoch   uint64
	tuples  [][]int
	indexes map[string]*reltree.Tree
	// stats caches the per-column statistics the GAO planner costs
	// orders from. Computed lazily on first plan, dropped by mutate, so
	// prepared queries re-plan exactly when the data changed.
	stats *planner.RelStats
}

// permKey renders a column permutation as a cache key.
func permKey(perm []int) string {
	var b strings.Builder
	for i, p := range perm {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

// IndexesFor returns the relation's search trees for the given column
// permutations — building and caching missing ones — together with the
// epoch the trees reflect. All trees are fetched under a single lock
// acquisition, so every atom of a query that binds this relation sees
// one consistent version even while mutations race with the binding
// (no torn self-joins). Part of the Fragment interface.
func (r *Relation) IndexesFor(perms [][]int) ([]*reltree.Tree, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	trees := make([]*reltree.Tree, len(perms))
	for i, perm := range perms {
		key := permKey(perm)
		if t, ok := r.indexes[key]; ok {
			trees[i] = t
			continue
		}
		permuted, err := core.PermuteTuples(perm, r.tuples)
		if err != nil {
			return nil, 0, fmt.Errorf("minesweeper: relation %q: %w", r.name, err)
		}
		t, err := reltree.New(r.name, len(perm), permuted)
		if err != nil {
			return nil, 0, err
		}
		if r.indexes == nil {
			r.indexes = map[string]*reltree.Tree{}
		}
		r.indexes[key] = t
		trees[i] = t
	}
	return trees, r.epoch, nil
}

// CachedIndexes reports how many GAO-permuted indexes the relation
// currently caches (one per distinct column order it has been queried
// under).
func (r *Relation) CachedIndexes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.indexes)
}

// NewRelation validates and copies the given tuples. Duplicates are
// allowed and collapse under set semantics at indexing time.
func NewRelation(name string, arity int, tuples [][]int) (*Relation, error) {
	if arity < 1 {
		return nil, fmt.Errorf("minesweeper: relation %q: arity %d < 1", name, arity)
	}
	r := &Relation{name: name, arity: arity}
	if err := r.checkTuples(tuples); err != nil {
		return nil, err
	}
	cp := make([][]int, len(tuples))
	for i, tup := range tuples {
		cp[i] = append([]int(nil), tup...)
	}
	r.tuples = cp
	return r, nil
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of stored tuples (before deduplication).
func (r *Relation) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tuples)
}

// Epoch returns the relation's mutation counter. Every successful
// Insert, Delete or Replace that changes the stored tuples increments
// it; prepared queries use it to detect staleness.
func (r *Relation) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// RestoreEpoch fast-forwards the relation's epoch counter without
// touching the stored tuples or caches. Storage recovery uses it to
// rebuild a relation at the epoch its durable log recorded, so prepared
// queries and planner statistics see the same staleness signal across a
// restart as they would have in the original process. The epoch can
// only move forward: rewinding would let a prepared query mistake new
// data for the version it is bound to.
func (r *Relation) RestoreEpoch(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.epoch {
		return fmt.Errorf("minesweeper: relation %q: cannot rewind epoch %d to %d", r.name, r.epoch, epoch)
	}
	r.epoch = epoch
	return nil
}

// Tuples returns a snapshot of the stored tuples. The rows are shared
// with the relation and must not be modified; the outer slice is the
// caller's.
func (r *Relation) Tuples() [][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]int(nil), r.tuples...)
}

// checkTuples validates arity and the index domain [0, ordered.PosInf):
// rejecting out-of-domain values here, before they are stored, keeps a
// bad write from poisoning every later execution at index-build time.
func (r *Relation) checkTuples(tuples [][]int) error {
	for i, tup := range tuples {
		if len(tup) != r.arity {
			return fmt.Errorf("minesweeper: relation %q: tuple %d has %d values, want %d", r.name, i, len(tup), r.arity)
		}
		for j, v := range tup {
			if v < 0 {
				return fmt.Errorf("minesweeper: relation %q: tuple %d component %d is negative", r.name, i, j)
			}
			if v >= ordered.PosInf {
				return fmt.Errorf("minesweeper: relation %q: tuple %d component %d = %d out of domain [0, %d)", r.name, i, j, v, ordered.PosInf)
			}
		}
	}
	return nil
}

// mutate installs the new tuple set, bumps the epoch and drops the
// cached indexes and planner statistics (both are rebuilt lazily by the
// next execution). Callers hold r.mu.
func (r *Relation) mutate(tuples [][]int) {
	r.tuples = tuples
	r.epoch++
	r.indexes = nil
	r.stats = nil
}

// ColStats returns the relation's cached per-column statistics,
// computing them on first use. The cache is dropped by mutate, so the
// returned snapshot reflects some recent epoch; the planner tolerates
// slightly stale statistics (they steer order choice, not correctness).
// Part of the Fragment interface.
func (r *Relation) ColStats() *planner.RelStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stats == nil {
		r.stats = planner.Collect(r.tuples, r.arity)
	}
	return r.stats
}

// SnapshotTuples returns the stored tuples (rows shared, outer slice
// owned by the caller) together with the epoch they reflect, under one
// lock acquisition. Part of the Fragment interface.
func (r *Relation) SnapshotTuples() ([][]int, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]int(nil), r.tuples...), r.epoch
}

// Insert adds the given tuples to the relation. The tuples are
// validated and copied; duplicates are allowed and collapse under set
// semantics at indexing time. A successful insert of at least one tuple
// bumps the relation's epoch and invalidates the cached indexes.
func (r *Relation) Insert(tuples ...[]int) error {
	if err := r.checkTuples(tuples); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	cp := make([][]int, len(tuples))
	for i, tup := range tuples {
		cp[i] = append([]int(nil), tup...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Appending in place is safe — Tuples() hands out copies of the
	// outer slice and indexFor reads it only under r.mu — and keeps a
	// small insert into a large resident relation O(batch), not O(rows).
	r.mutate(append(r.tuples, cp...))
	return nil
}

// Delete removes every stored copy of each given tuple and reports how
// many rows were removed. Deleting an absent tuple is not an error.
// When at least one row is removed the relation's epoch is bumped and
// the cached indexes are invalidated.
func (r *Relation) Delete(tuples ...[]int) (int, error) {
	if err := r.checkTuples(tuples); err != nil {
		return 0, err
	}
	if len(tuples) == 0 {
		return 0, nil
	}
	drop := make(map[string]bool, len(tuples))
	for _, tup := range tuples {
		drop[permKey(tup)] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make([][]int, 0, len(r.tuples))
	removed := 0
	for _, tup := range r.tuples {
		if drop[permKey(tup)] {
			removed++
			continue
		}
		next = append(next, tup)
	}
	if removed > 0 {
		r.mutate(next)
	}
	return removed, nil
}

// Replace swaps the relation's contents for the given tuples (validated
// and copied), bumping the epoch and invalidating the cached indexes.
// Prepared queries bound to the relation transparently pick up the new
// contents on their next execution.
func (r *Relation) Replace(tuples [][]int) error {
	if err := r.checkTuples(tuples); err != nil {
		return err
	}
	next := make([][]int, len(tuples))
	for i, tup := range tuples {
		next[i] = append([]int(nil), tup...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mutate(next)
	return nil
}

// Atom binds a relation's columns to query variables. A Vars entry that
// is a non-negative integer literal (e.g. "7" in R(x, 7)) is a constant
// selection on that column rather than a variable: it is pushed down
// into the index walk as a pre-ruled-out gap in the constraint store, so
// the engines skip the unselected region instead of filtering after the
// join. Constants never join across atoms and do not appear in
// Query.Vars or the output.
//
// Rel is a Fragment, not necessarily a *Relation: the execution
// pipeline only needs the read-side data-access interface, which is
// what lets internal/shard substitute partition-owned fragments for
// catalog relations without the query layer noticing.
type Atom struct {
	Rel  Fragment
	Vars []string
}

// constName builds the internal variable name of a constant column.
// Names start with '#', which no user identifier can, so they can never
// collide with query variables.
func constName(atom, col int) string { return fmt.Sprintf("#c%d_%d", atom, col) }

// hiddenConst is one constant selection: the internal GAO attribute
// standing in for the constant column, and the value it is pinned to.
type hiddenConst struct {
	name string
	val  int
}

// Query is a natural join query: the join of its atoms on shared
// variables, optionally shaped by a projection list, per-variable range
// filters and aggregates (set by ParseQuery's select/where clauses, or
// per execution through Options).
type Query struct {
	atoms  []Atom
	vars   []string
	hidden []hiddenConst
	hg     *hypergraph.Hypergraph

	// Shaping clauses parsed from the query text (ParseQuery); nil when
	// absent. Options fields, when set, take precedence at Prepare.
	sel   []string
	where []Filter
	aggs  []Aggregate
}

// NewQuery validates the atoms and derives the query hypergraph.
// Constant columns (integer-literal Vars entries) are rewritten to
// hidden equality-bound attributes; every atom must keep at least one
// real variable.
func NewQuery(atoms ...Atom) (*Query, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("minesweeper: query needs at least one atom")
	}
	q := &Query{}
	seen := map[string]bool{}
	edges := make([][]string, len(atoms))
	for i, a := range atoms {
		if a.Rel == nil {
			return nil, fmt.Errorf("minesweeper: atom %d has nil relation", i)
		}
		if len(a.Vars) != a.Rel.Arity() {
			return nil, fmt.Errorf("minesweeper: atom %d binds %d vars to %d-ary relation %q",
				i, len(a.Vars), a.Rel.Arity(), a.Rel.Name())
		}
		vars := append([]string(nil), a.Vars...)
		var real []string
		dup := map[string]bool{}
		for j, v := range vars {
			if c, ok := parseConstant(v); ok {
				if c < 0 || c >= ordered.PosInf {
					return nil, fmt.Errorf("minesweeper: atom %d column %d: constant %q out of domain [0, %d)",
						i, j, v, ordered.PosInf)
				}
				name := constName(i, j)
				q.hidden = append(q.hidden, hiddenConst{name: name, val: c})
				vars[j] = name
				continue
			}
			if !validVarName(v) {
				return nil, fmt.Errorf("minesweeper: atom %d column %d: %q is neither a variable nor a non-negative integer constant", i, j, v)
			}
			if dup[v] {
				return nil, fmt.Errorf("minesweeper: atom %d repeats variable %q", i, v)
			}
			dup[v] = true
			real = append(real, v)
			if !seen[v] {
				seen[v] = true
				q.vars = append(q.vars, v)
			}
		}
		if len(real) == 0 {
			return nil, fmt.Errorf("minesweeper: atom %d (%s) binds only constants; every atom needs at least one variable",
				i, a.Rel.Name())
		}
		// The hypergraph ranges over the real variables only: constants
		// are selections, not join structure, so acyclicity and width
		// are those of the residual query.
		edges[i] = real
		q.atoms = append(q.atoms, Atom{Rel: a.Rel, Vars: vars})
	}
	q.hg = hypergraph.New(edges)
	return q, nil
}

// validVarName reports whether s is a legal variable name: an
// identifier (letter or underscore, then letters, digits or
// underscores). Names starting with a digit are constants; anything
// else is rejected so constants and variables stay unambiguous.
func validVarName(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !isIdentStart(r) {
				return false
			}
			continue
		}
		if !isIdentRune(r) {
			return false
		}
	}
	return s != ""
}

// parseConstant reports whether the Vars entry denotes an integer
// constant (a non-empty all-digit string; identifiers cannot start with
// a digit, so the forms are disjoint).
func parseConstant(s string) (int, bool) {
	if s == "" || s[0] < '0' || s[0] > '9' {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Vars returns all query variables in order of first appearance.
// Constant columns are not variables and are excluded. This is the
// column order of executed results and streamed tuples (unless a
// projection narrows it); the evaluation order may differ — see
// Result.GAO.
func (q *Query) Vars() []string { return append([]string(nil), q.vars...) }

// Select returns the query's parsed projection list (nil when the query
// text had no select clause).
func (q *Query) Select() []string { return append([]string(nil), q.sel...) }

// Where returns the query's parsed range filters (nil when the query
// text had no where clause).
func (q *Query) Where() []Filter { return append([]Filter(nil), q.where...) }

// Aggregates returns the query's parsed aggregate outputs (nil when the
// query text had none).
func (q *Query) Aggregates() []Aggregate { return append([]Aggregate(nil), q.aggs...) }

// extendGAO prepends the hidden constant attributes to a GAO over the
// real variables, yielding the internal evaluation order. Constants
// lead: each contributes exactly one value, so the order over the real
// variables is untouched, while the index walks restrict to the
// selected region at their outermost levels — where it prunes most.
func (q *Query) extendGAO(gao []string) []string {
	if len(q.hidden) == 0 {
		return gao
	}
	ext := make([]string, 0, len(q.hidden)+len(gao))
	for _, h := range q.hidden {
		ext = append(ext, h.name)
	}
	return append(ext, gao...)
}

// Relations returns the distinct data fragments the query binds, in
// order of first appearance (self-joins contribute one entry).
// Long-lived callers use this to check that the fragments a query was
// built over are still the ones a catalog serves under those names.
func (q *Query) Relations() []Fragment {
	seen := map[Fragment]bool{}
	var out []Fragment
	for _, a := range q.atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

// IsAlphaAcyclic reports α-acyclicity (GYO-reducible; Yannakakis applies).
func (q *Query) IsAlphaAcyclic() bool { return q.hg.IsAlphaAcyclic() }

// IsBetaAcyclic reports β-acyclicity: every sub-hypergraph α-acyclic;
// exactly the class for which Minesweeper achieves Õ(|C|+Z)
// (Theorem 2.7 / Proposition 2.8).
func (q *Query) IsBetaAcyclic() bool { return q.hg.IsBetaAcyclic() }

// NestedEliminationOrder returns a GAO whose prefix posets are chains
// (Definition A.5), which exists iff the query is β-acyclic.
func (q *Query) NestedEliminationOrder() ([]string, bool) {
	return q.hg.NestedEliminationOrder()
}

// EliminationWidth returns the elimination width of the given GAO; the
// Minesweeper bound for that order is Õ(|C|^{w+1} + Z) (Theorem 5.1).
func (q *Query) EliminationWidth(gao []string) (int, error) {
	return q.hg.EliminationWidth(gao)
}

// Treewidth returns the query's treewidth, computed exactly by exhaustive
// elimination-order search (Proposition A.7). Limited to queries with at
// most 9 variables; use RecommendGAO's width for larger ones.
func (q *Query) Treewidth() (int, error) { return q.hg.Treewidth() }

// RecommendGAO returns the purely structural global attribute order: a
// nested elimination order when the query is β-acyclic (width reported
// by its elimination width), otherwise the greedy min-width order. The
// choice is deterministic — equal-width ties break lexicographically —
// and depends only on the query's hypergraph, never on the data.
//
// Execute and Prepare no longer use this order directly when none is
// supplied: they run the data-aware planner, which costs
// width-feasible orders from per-column statistics and falls back to
// this structural order on ties. Use Options.GAO to force any order,
// and Query.Explain or PreparedQuery.Explain to see what the planner
// chose and why.
func (q *Query) RecommendGAO() (gao []string, width int) {
	if neo, ok := q.hg.NestedEliminationOrder(); ok {
		w, err := q.hg.EliminationWidth(neo)
		if err != nil {
			panic(err) // unreachable: neo is a permutation of the query vars
		}
		return neo, w
	}
	return q.hg.GreedyWidthOrder()
}

// plannerAtoms renders the query's atoms for the cost-based planner:
// real variables only (constant columns are selections, not order
// choices), with the cached per-column statistics of each bound
// relation.
func (q *Query) plannerAtoms() []planner.Atom {
	atoms := make([]planner.Atom, 0, len(q.atoms))
	for _, a := range q.atoms {
		st := a.Rel.ColStats()
		pa := planner.Atom{Rows: st.Rows}
		for j, v := range a.Vars {
			if strings.HasPrefix(v, "#") {
				continue // hidden constant column
			}
			pa.Attrs = append(pa.Attrs, v)
			pa.Cols = append(pa.Cols, st.Cols[j])
		}
		atoms = append(atoms, pa)
	}
	return atoms
}

// Engine selects the join algorithm.
type Engine int

const (
	// EngineAuto picks Minesweeper with a recommended GAO.
	EngineAuto Engine = iota
	// EngineMinesweeper is the paper's algorithm (Algorithm 2).
	EngineMinesweeper
	// EngineLeapfrog is the Leapfrog Triejoin baseline [53].
	EngineLeapfrog
	// EngineNPRR is the generic worst-case-optimal join baseline [40].
	EngineNPRR
	// EngineYannakakis is Yannakakis's algorithm [55] (α-acyclic only).
	EngineYannakakis
	// EngineHashPlan is a left-deep pairwise hash-join plan.
	EngineHashPlan
)

// ParseEngine resolves an engine name as printed by Engine.String
// ("auto", "minesweeper", "leapfrog", "nprr", "yannakakis",
// "hashplan"). The empty string parses as EngineAuto. This is the one
// authoritative name table for CLI flags and service parameters.
func ParseEngine(name string) (Engine, error) {
	if name == "" {
		return EngineAuto, nil
	}
	for _, e := range []Engine{EngineAuto, EngineMinesweeper, EngineLeapfrog, EngineNPRR, EngineYannakakis, EngineHashPlan} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("minesweeper: unknown engine %q", name)
}

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineMinesweeper:
		return "minesweeper"
	case EngineLeapfrog:
		return "leapfrog"
	case EngineNPRR:
		return "nprr"
	case EngineYannakakis:
		return "yannakakis"
	case EngineHashPlan:
		return "hashplan"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// DictMode controls the per-attribute order-preserving dictionary: an
// optional rank encoding of attribute values into the contiguous range
// [0, n) applied before index build and decoded on emit. Rank encoding
// is strictly monotone, so every engine produces identical results on
// encoded and raw values; what changes is domain density — sparse,
// skewed domains fragment the constraint store into many tiny
// ruled-out intervals that collapse into few wide gaps under dense
// codes.
type DictMode int

const (
	// DictAuto (the default) encodes exactly the attributes whose
	// statistics mark them sparse: value span well beyond the distinct
	// count. Dense domains are left raw, so typical integer-key data
	// pays nothing.
	DictAuto DictMode = iota
	// DictOff disables dictionary encoding.
	DictOff
	// DictOn encodes every (non-constant) attribute.
	DictOn
)

// DomainOrder selects the code-space ordering of dictionary-encoded
// attributes — the data-driven domain permutation of the box-cover /
// domain-ordering line of work generalizing PR 5's rank encodings.
type DomainOrder int

const (
	// DomainNatural (the default) keeps every dictionary
	// order-preserving: codes follow value order, emitted tuples are
	// GAO-lexicographic in raw values, and range bounds push down into
	// code space.
	DomainNatural DomainOrder = iota
	// DomainFreq re-permutes the code space of attributes the planner's
	// skew sketch marks heavy-hitter-dominated: codes follow descending
	// frequency (ties by value), so the values that join most cluster at
	// adjacent codes and their rule-outs coalesce into few wide gaps and
	// boxes. The permutation applies only to attributes without
	// pushed-down range bounds (a permuted code space has no contiguous
	// bound image) and is deterministic, so repeated runs — and all
	// engines, which share the encoded indexes — agree exactly.
	//
	// Trade-off: tuples stream in permuted-domain order on the affected
	// attributes (still a deterministic total order, identical across
	// engines and worker counts, but not raw value order). Explain's
	// DictOrders field reports the discipline actually applied per
	// attribute.
	DomainFreq
)

// ParseDomainOrder resolves a domain-order name as printed by
// DomainOrder.String ("natural", "freq"); the empty string parses as
// DomainNatural. The one authoritative name table for CLI flags and
// service parameters, like ParseEngine.
func ParseDomainOrder(name string) (DomainOrder, error) {
	switch name {
	case "", "natural":
		return DomainNatural, nil
	case "freq":
		return DomainFreq, nil
	}
	return 0, fmt.Errorf("minesweeper: unknown domain order %q", name)
}

func (d DomainOrder) String() string {
	switch d {
	case DomainNatural:
		return "natural"
	case DomainFreq:
		return "freq"
	}
	return fmt.Sprintf("domainorder(%d)", int(d))
}

// Options configures Execute. The zero value (or nil) means: planned
// GAO, Minesweeper engine, sequential, auto dictionary encoding, full
// output (no projection, filters or aggregates beyond those parsed into
// the query itself).
type Options struct {
	Engine Engine
	// GAO fixes the global attribute order (a permutation of the query's
	// variables). Empty means the data-aware planner chooses (see
	// Query.Explain); forcing a GAO bypasses planning entirely.
	GAO []string
	// Dict controls per-attribute dictionary (dense-domain) encoding.
	Dict DictMode
	// Domain opts skewed attributes into frequency-permuted code spaces
	// (see DomainFreq). Ignored under DictOff — domain permutations ride
	// on the dictionary machinery.
	Domain DomainOrder
	// Workers > 1 parallelizes the Minesweeper engine by partitioning the
	// first GAO attribute's domain (ignored by other engines).
	Workers int
	// Debug enables internal soundness checks (slower).
	Debug bool
	// Select projects the output onto the given variables, in order,
	// under set semantics (dropped columns never produce duplicate
	// rows). nil keeps every variable; with Aggregates set it is the
	// group-by list, and an empty non-nil list aggregates the whole
	// result as one group. When nil, the query's own parsed select
	// clause (if any) applies.
	Select []string
	// Where conjoins per-variable range filters, pushed down into the
	// engines' index walks (Minesweeper seeds them into the constraint
	// store as pre-ruled-out gaps, so run cost tracks selectivity).
	// When nil, the query's own parsed where clause (if any) applies.
	Where []Filter
	// Aggregates computes grouped aggregates (grouped by Select) instead
	// of returning tuples. When nil, the query's own parsed aggregates
	// (if any) apply.
	Aggregates []Aggregate
}

// Result is a join result.
//
// Invariants: Vars is the output column order — the projection list if
// one applies, otherwise Query.Vars (first-appearance order), plus one
// labelled column per aggregate. GAO is the evaluation order actually
// used, which may be a different permutation: Tuples are emitted and
// sorted GAO-lexicographically (aggregate rows sort by group key), so
// rows are NOT generally sorted by their visible column order unless
// Vars and GAO coincide. Stats.Outputs counts the raw join tuples the
// engine discovered; under projection or aggregation this can exceed
// len(Tuples).
type Result struct {
	Vars   []string
	Tuples [][]int
	Stats  Stats
	GAO    []string
	Engine Engine
}

// Execute evaluates the query and returns its full result.
func Execute(q *Query, opts *Options) (*Result, error) {
	return ExecuteContext(context.Background(), q, opts)
}

// ExecuteContext evaluates the query and returns its full result,
// stopping with ctx.Err() when the context is cancelled or its deadline
// passes. On such an early stop the tuples collected so far are
// returned alongside the non-nil error (a non-nil partial *Result whose
// Tuples are a prefix of the full GAO-ordered result); only preparation
// failures return a nil Result. The query is prepared first, so
// repeated executions over the same relations reuse the cached indexes.
func ExecuteContext(ctx context.Context, q *Query, opts *Options) (*Result, error) {
	pq, err := q.Prepare(opts)
	if err != nil {
		return nil, err
	}
	return pq.ExecuteContext(ctx)
}

// ExecuteLimit evaluates the query but stops after at most limit output
// tuples — the anytime behaviour of probe-point-driven evaluation: with
// a streaming engine the first k results cost only the probes that found
// them. Every engine honors the limit through the streaming executor;
// for the materializing engines (Yannakakis, hash plan) it bounds the
// returned tuples but not the evaluation work. The returned tuples are
// the k GAO-lexicographically smallest, identical across engines.
//
// A negative limit means unlimited (equivalent to Execute); limit 0
// returns an empty result without evaluating. The same convention holds
// across PreparedQuery.ExecuteLimit*, msserve's limit parameter and
// msjoin's -limit flag.
func ExecuteLimit(q *Query, opts *Options, limit int) (*Result, error) {
	return ExecuteLimitContext(context.Background(), q, opts, limit)
}

// ExecuteLimitContext is ExecuteLimit with cancellation. Like
// ExecuteContext, cancellation mid-run returns the partial result
// collected so far alongside the error.
func ExecuteLimitContext(ctx context.Context, q *Query, opts *Options, limit int) (*Result, error) {
	pq, err := q.Prepare(opts)
	if err != nil {
		return nil, err
	}
	return pq.ExecuteLimitContext(ctx, limit)
}

// ExecuteStream evaluates the query, calling yield once per output tuple
// as the engine discovers it. Tuples arrive in GAO-lexicographic
// discovery order, but their columns are presented in output order —
// Query.Vars (first appearance) or the projection list — exactly like
// Result.Tuples; use Prepare and PreparedQuery.GAO/OutputVars to
// inspect both orders. yield returns false to stop the enumeration
// early (the call then returns nil error). The returned Stats cover the
// work actually performed. Aggregate queries yield their group rows
// only after the evaluation completes.
func ExecuteStream(q *Query, opts *Options, yield func([]int) bool) (Stats, error) {
	return ExecuteStreamContext(context.Background(), q, opts, yield)
}

// ExecuteStreamContext is ExecuteStream with cancellation: a cancelled
// or expired context stops the evaluation with ctx.Err().
func ExecuteStreamContext(ctx context.Context, q *Query, opts *Options, yield func([]int) bool) (Stats, error) {
	pq, err := q.Prepare(opts)
	if err != nil {
		return Stats{}, err
	}
	return pq.StreamContext(ctx, yield)
}

// atomSpecs renders the query's atoms as core specs with unique names
// (used by the certificate machinery, which indexes outside the cache).
// Attribute lists include the hidden constant attributes; pair with
// extendGAO.
func (q *Query) atomSpecs() []core.AtomSpec {
	specs := make([]core.AtomSpec, len(q.atoms))
	for i, a := range q.atoms {
		specs[i] = core.AtomSpec{Name: fmt.Sprintf("%s#%d", a.Rel.Name(), i), Attrs: a.Vars, Tuples: a.Rel.Tuples()}
	}
	return specs
}

// Intersect computes the intersection of the given integer sets with the
// specialized Minesweeper of Appendix H, picking the CDS strategy per
// instance (Appendix H.2): the minimum-comparison merge when the sets
// have comparable sizes, and the gap-skipping interval list (Algorithm
// 8) once the size skew makes remembered gaps pay for themselves. The
// returned stats include the FindGap count, the paper's
// certificate-size estimate.
//
// At least one set is required: the intersection of zero sets is the
// whole (unbounded) domain, which cannot be materialized, so
// Intersect() — and Intersect(nil...) with an empty slice — returns an
// error. A present-but-empty set is fine and yields an empty
// intersection.
func Intersect(sets ...[]int) ([]int, Stats, error) {
	if len(sets) == 0 {
		return nil, Stats{}, fmt.Errorf("minesweeper: Intersect needs at least one set (the empty intersection is the whole domain)")
	}
	var s Stats
	out, err := core.IntersectSetsAdaptive(sets, &s)
	if err != nil {
		err = fmt.Errorf("minesweeper: %w", err)
	}
	return out, s, err
}

// BowtieJoin computes R(X) ⋈ S(X,Y) ⋈ T(Y) with the near
// instance-optimal Algorithm 9 of Appendix I. s rows are (x, y) pairs.
func BowtieJoin(r []int, s [][]int, t []int) ([][]int, Stats, error) {
	var st Stats
	out, err := core.Bowtie(r, s, t, &st)
	return out, st, err
}

// TriangleJoin computes R(A,B) ⋈ S(B,C) ⋈ T(A,C) with the dyadic-CDS
// Minesweeper of Theorem 5.4 (Õ(|C|^{3/2} + Z)). Inputs are pair lists;
// the output lists (a, b, c) triples.
func TriangleJoin(r, s, t [][]int) ([][]int, Stats, error) {
	var st Stats
	out, err := core.Triangle(r, s, t, &st)
	if err != nil {
		return nil, st, err
	}
	baseline.SortTuples(out)
	return out, st, nil
}

// ListTriangles enumerates the ordered triangles of a directed edge list
// (use both orientations for an undirected graph).
func ListTriangles(edges [][]int) ([][]int, Stats, error) {
	return TriangleJoin(edges, edges, edges)
}

// ListTrianglesParallel enumerates ordered triangles with the dyadic-CDS
// engine parallelized across workers by partitioning the A domain
// (mirroring the paper's multi-threaded runs). workers ≤ 1 is sequential.
func ListTrianglesParallel(edges [][]int, workers int) ([][]int, Stats, error) {
	var st Stats
	out, err := core.TriangleParallel(edges, edges, edges, workers, &st)
	return out, st, err
}

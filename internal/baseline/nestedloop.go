package baseline

import (
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// IndexNestedLoopJoin evaluates the query with the classic index
// nested-loop strategy over the GAO-ordered search trees: scan the first
// atom's tuples; for each, bind its attributes and recursively probe the
// remaining atoms through their indexes (one FindGap-equivalent binary
// search per bound attribute group). A member of the paper's
// comparison-based class (Section 1) and hence lower-bounded by |C|.
func IndexNestedLoopJoin(p *core.Problem, stats *certificate.Stats, emit func([]int)) error {
	p.Attach(stats)
	defer p.Detach()
	n := len(p.GAO)
	t := make([]int, n)
	bound := make([]bool, n)

	var rec func(ai int) error
	rec = func(ai int) error {
		if ai == len(p.Atoms) {
			// All atoms matched; all attributes must be bound (every GAO
			// attribute appears in some atom).
			if stats != nil {
				stats.Outputs++
			}
			emit(append([]int(nil), t...))
			return nil
		}
		atom := &p.Atoms[ai]
		// Enumerate the atom's tuples consistent with current bindings by
		// walking its search tree, seeking on bound attributes.
		var walk func(idx []int, depth int) error
		walk = func(idx []int, depth int) error {
			if depth == atom.Tree.Arity() {
				return rec(ai + 1)
			}
			gp := atom.Positions[depth]
			if bound[gp] {
				lo, hi := atom.Tree.FindGap(idx, t[gp])
				if lo != hi {
					return nil // bound value absent
				}
				return walk(append(idx, hi), depth+1)
			}
			fan := atom.Tree.Fanout(idx)
			for i := 0; i < fan; i++ {
				t[gp] = atom.Tree.Value(append(idx, i))
				bound[gp] = true
				if err := walk(append(idx, i), depth+1); err != nil {
					return err
				}
				bound[gp] = false
			}
			return nil
		}
		return walk(make([]int, 0, atom.Tree.Arity()), 0)
	}
	return rec(0)
}

// IndexNestedLoopAll runs IndexNestedLoopJoin and collects sorted output.
func IndexNestedLoopAll(p *core.Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := IndexNestedLoopJoin(p, stats, func(t []int) { out = append(out, t) })
	SortTuples(out)
	return dedupTuples(out), err
}

// BlockNestedLoopJoin evaluates a two-table natural join by the
// block-nested-loop method: the outer relation is processed in fixed-size
// blocks, each joined against a full scan of the inner relation. Another
// member of the Section 1 comparison class; quadratic in general.
func BlockNestedLoopJoin(a, b *table, blockSize int, stats *certificate.Stats) *table {
	if blockSize < 1 {
		blockSize = 256
	}
	_, ia, ib := common(a, b)
	shared := map[int]bool{}
	for _, j := range ib {
		shared[j] = true
	}
	var extraCols []int
	out := &table{attrs: append([]string(nil), a.attrs...)}
	for j, attr := range b.attrs {
		if !shared[j] {
			extraCols = append(extraCols, j)
			out.attrs = append(out.attrs, attr)
		}
	}
	for start := 0; start < len(a.tuples); start += blockSize {
		end := start + blockSize
		if end > len(a.tuples) {
			end = len(a.tuples)
		}
		block := a.tuples[start:end]
		for _, tb := range b.tuples {
			for _, ta := range block {
				if stats != nil {
					stats.Comparisons++
				}
				match := true
				for x := range ia {
					if ta[ia[x]] != tb[ib[x]] {
						match = false
						break
					}
				}
				if match {
					row := make([]int, 0, len(out.attrs))
					row = append(row, ta...)
					for _, c := range extraCols {
						row = append(row, tb[c])
					}
					out.tuples = append(out.tuples, row)
				}
			}
		}
	}
	return out.dedup()
}

func dedupTuples(tuples [][]int) [][]int {
	out := tuples[:0]
	for i, tup := range tuples {
		if i > 0 && equalTuple(tup, tuples[i-1]) {
			continue
		}
		out = append(out, tup)
	}
	return out
}

func equalTuple(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package benchsuite

import (
	"context"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/engine"
)

// selectiveN is the per-relation size of the E10/E11 workloads.
const selectiveN = 10000

// selectiveProblem builds R(c, x) ⋈ S(x, y) with c = x mod 100: pinning
// c to one value keeps 1% of R. When bounded, the constant is pushed
// down as Problem.Bounds — the path the public API's R(x, 7) takes.
func selectiveProblem(bounded bool) *core.Problem {
	var rt, st [][]int
	for i := 0; i < selectiveN; i++ {
		rt = append(rt, []int{i % 100, i})
		st = append(st, []int{i, (i * 7) % 1000})
	}
	gao := []string{"c", "x", "y"}
	p, err := core.NewProblem(gao, []core.AtomSpec{
		{Name: "R", Attrs: []string{"c", "x"}, Tuples: rt},
		{Name: "S", Attrs: []string{"x", "y"}, Tuples: st},
	})
	if err != nil {
		panic(err)
	}
	if bounded {
		p.Bounds = []core.Bound{{Lo: 7, Hi: 7}, core.FullBound(), core.FullBound()}
	}
	return p
}

// SelectivePushdown (E10) measures the constant-selective join with the
// bound seeded into the CDS: cost should track the 1% selectivity, not
// the full join.
func SelectivePushdown(b *testing.B) {
	p := selectiveProblem(true)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	outputs := 0
	for i := 0; i < b.N; i++ {
		outputs = 0
		err := core.MinesweeperStreamContext(context.Background(), p.Snapshot(), &stats, func([]int) bool {
			outputs++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if outputs != selectiveN/100 {
			b.Fatalf("outputs = %d, want %d", outputs, selectiveN/100)
		}
	}
	report(b, &stats, b.N)
}

// SelectivePostFilter (E10) is the baseline the pushdown is measured
// against: the same query evaluated as a full join with the constant
// checked per emitted tuple.
func SelectivePostFilter(b *testing.B) {
	p := selectiveProblem(false)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	outputs := 0
	for i := 0; i < b.N; i++ {
		outputs = 0
		err := core.MinesweeperStreamContext(context.Background(), p.Snapshot(), &stats, func(t []int) bool {
			if t[0] == 7 {
				outputs++
			}
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if outputs != selectiveN/100 {
			b.Fatalf("outputs = %d, want %d", outputs, selectiveN/100)
		}
	}
	report(b, &stats, b.N)
}

// AggregateGroupCount (E11) measures the streaming aggregation sink:
// count(*) grouped by c over the full R ⋈ S join, through the shared
// emit adapter, materializing only the 100 group states.
func AggregateGroupCount(b *testing.B) {
	p := selectiveProblem(false)
	sh := &engine.Shape{
		Cols:       []int{0},
		Aggregates: []engine.Aggregate{{Op: engine.AggCount, Col: -1}},
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		err := engine.RunShaped(context.Background(), core.MinesweeperStreamContext, p.Snapshot(), sh, &stats, func([]int) bool {
			rows++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows != 100 {
			b.Fatalf("groups = %d, want 100", rows)
		}
	}
	report(b, &stats, b.N)
}

package minesweeper

import (
	"context"
	"fmt"

	"minesweeper/internal/core"
	"minesweeper/internal/engine"
)

// PreparedQuery is a query bound to a global attribute order and an
// engine, with every relation's search-tree index already built. Prepare
// once, execute many times: re-executions skip GAO planning, column
// permutation, sorting and index construction entirely, which is the
// difference between Õ(N log N) and O(#atoms) of setup per query on a
// served workload.
//
// A PreparedQuery is safe for concurrent use: each run operates on a
// snapshot whose tree views carry run-local state.
type PreparedQuery struct {
	query   *Query
	opts    Options
	gao     []string
	eng     Engine
	runner  engine.Engine
	problem *core.Problem
}

// Prepare resolves the GAO and engine and builds (or fetches from the
// relations' caches) the GAO-permuted indexes. The returned
// PreparedQuery can be executed repeatedly without re-indexing; two
// prepared queries that bind the same relation under the same column
// order share one index.
func (q *Query) Prepare(opts *Options) (*PreparedQuery, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.GAO = append([]string(nil), o.GAO...)
	gao := o.GAO
	if len(gao) == 0 {
		gao, _ = q.RecommendGAO()
	}
	eng := o.Engine
	if eng == EngineAuto {
		eng = EngineMinesweeper
	}
	runner, ok := engine.Lookup(eng.String())
	if !ok {
		return nil, fmt.Errorf("minesweeper: unknown engine %v", o.Engine)
	}
	atoms := make([]core.Atom, len(q.atoms))
	for i, a := range q.atoms {
		positions, perm, err := core.ColumnPlan(gao, a.Vars)
		if err != nil {
			return nil, fmt.Errorf("minesweeper: atom %d (%s): %w", i, a.Rel.name, err)
		}
		tree, err := a.Rel.indexFor(perm)
		if err != nil {
			return nil, err
		}
		atoms[i] = core.Atom{
			Name:      fmt.Sprintf("%s#%d", a.Rel.name, i),
			Tree:      tree,
			Positions: positions,
		}
	}
	p, err := core.NewProblemFromAtoms(gao, atoms)
	if err != nil {
		return nil, err
	}
	p.Debug = o.Debug
	return &PreparedQuery{query: q, opts: o, gao: gao, eng: eng, runner: runner, problem: p}, nil
}

// GAO returns the resolved global attribute order.
func (pq *PreparedQuery) GAO() []string { return append([]string(nil), pq.gao...) }

// Engine returns the resolved engine (never EngineAuto).
func (pq *PreparedQuery) Engine() Engine { return pq.eng }

// Stream evaluates the prepared query, calling yield once per output
// tuple in GAO-lexicographic order. yield returns false to stop early.
func (pq *PreparedQuery) Stream(yield func([]int) bool) (Stats, error) {
	return pq.StreamContext(context.Background(), yield)
}

// StreamContext is Stream with cancellation: a cancelled or expired
// context aborts the run with ctx.Err(). Every engine runs through the
// same streaming executor, so limits and cancellation behave uniformly.
func (pq *PreparedQuery) StreamContext(ctx context.Context, yield func([]int) bool) (Stats, error) {
	var stats Stats
	run := pq.problem.Snapshot()
	if pq.eng == EngineMinesweeper && pq.opts.Workers > 1 {
		err := core.MinesweeperParallelStream(ctx, run, pq.opts.Workers, &stats, yield)
		return stats, err
	}
	err := pq.runner.Run(ctx, run, &stats, yield)
	return stats, err
}

// Execute evaluates the prepared query and returns the full result.
func (pq *PreparedQuery) Execute() (*Result, error) {
	return pq.ExecuteContext(context.Background())
}

// ExecuteContext evaluates the prepared query under the context.
func (pq *PreparedQuery) ExecuteContext(ctx context.Context) (*Result, error) {
	res := &Result{Vars: pq.GAO(), GAO: pq.GAO(), Engine: pq.eng}
	stats, err := pq.StreamContext(ctx, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return true
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ExecuteLimit evaluates the prepared query, stopping after at most
// limit output tuples (the lexicographically smallest ones — engines
// emit in order, so the prefix is engine-independent).
func (pq *PreparedQuery) ExecuteLimit(limit int) (*Result, error) {
	return pq.ExecuteLimitContext(context.Background(), limit)
}

// ExecuteLimitContext is ExecuteLimit with cancellation.
func (pq *PreparedQuery) ExecuteLimitContext(ctx context.Context, limit int) (*Result, error) {
	res := &Result{Vars: pq.GAO(), GAO: pq.GAO(), Engine: pq.eng}
	if limit <= 0 {
		return res, nil
	}
	stats, err := pq.StreamContext(ctx, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return len(res.Tuples) < limit
	})
	res.Stats = stats
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Package catalog is the serving layer's relation store: a versioned,
// mutable collection of named relations that queries are prepared
// against. The catalog owns the naming (Create/Drop) and routes
// mutations (Insert/Delete/Replace) to the underlying
// minesweeper.Relation values, whose epoch counters let every
// PreparedQuery bound through the catalog detect staleness and re-bind
// transparently on its next execution — the mechanism that turns the
// one-shot library into a long-lived service.
//
// Since the data/compute-plane split, the catalog is a thin naming and
// versioning layer over a storage.Backend: every mutation — Create,
// Drop, Insert, Delete, Replace, the Load replace path, and the named
// prepared-query definitions — is framed as a storage.Record and
// appended to the backend's log *before* it touches the in-memory
// relation, so a catalog opened over a durable backend recovers every
// relation (tuples, default variable binding, mutation epoch) and every
// query definition after a crash. The in-memory behavior is the
// storage.Mem backend; indexes are never persisted — recovery rebuilds
// them lazily through the same epoch machinery that serves live
// mutations, so the warm-path invariants (zero reltree builds on warm
// re-execution) hold identically over both backends.
//
// Each relation carries a default variable binding (its relio header),
// so textual queries such as "R(A,B), S(B,C)" resolve against the
// catalog and relations round-trip through the relio interchange
// format.
package catalog

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"

	"minesweeper"
	"minesweeper/internal/ordered"
	"minesweeper/internal/relio"
	"minesweeper/internal/storage"
)

// ErrReadOnly marks a catalog in degraded read-only mode: the storage
// backend was poisoned by a write failure, so mutations are refused
// (nothing may be applied in memory that is not durably logged first)
// while reads and query execution keep working. The catalog leaves
// the mode through Reopen or a process restart.
var ErrReadOnly = errors.New("catalog: read-only: storage backend is poisoned")

// entry pairs a relation with its default variable binding.
type entry struct {
	rel  *minesweeper.Relation
	vars []string
}

// Info describes one cataloged relation.
type Info struct {
	Name   string   `json:"name"`
	Vars   []string `json:"vars"`
	Arity  int      `json:"arity"`
	Tuples int      `json:"tuples"`
	Epoch  uint64   `json:"epoch"`
}

// Catalog is a named, mutable set of relations plus the registered
// prepared-query definitions, safe for concurrent use, persisted
// through a storage.Backend. The zero value is not usable; call New or
// Open.
type Catalog struct {
	mu      sync.RWMutex
	backend storage.Backend
	rels    map[string]*entry
	queries map[string]storage.QueryDef
	// degraded is non-nil while the catalog is in read-only mode: the
	// backend poisoned itself on a write failure, so every mutation is
	// refused with ErrReadOnly until Reopen succeeds.
	degraded error
}

// New returns an empty catalog over the in-memory backend — the
// historical non-durable behavior.
func New() *Catalog {
	c, err := Open(storage.NewMem())
	if err != nil {
		// The memory backend's recovery cannot fail.
		panic(err)
	}
	return c
}

// Open recovers a catalog from the given backend: relations come back
// with their tuples, default variable bindings and mutation epochs;
// prepared-query definitions are available from QueryDefs for the
// serving layer to re-register (and re-plan) against the recovered
// data. Indexes are not persisted — the first execution that needs one
// rebuilds it lazily, exactly as after a live mutation.
func Open(b storage.Backend) (*Catalog, error) {
	state, err := b.Recover()
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		backend: b,
		rels:    make(map[string]*entry, len(state.Relations)),
		queries: make(map[string]storage.QueryDef, len(state.Queries)),
	}
	for i := range state.Relations {
		rs := &state.Relations[i]
		rel, err := minesweeper.NewRelation(rs.Name, len(rs.Vars), rs.Tuples)
		if err != nil {
			return nil, fmt.Errorf("catalog: recovering relation %q: %w", rs.Name, err)
		}
		if err := rel.RestoreEpoch(rs.Epoch); err != nil {
			return nil, fmt.Errorf("catalog: recovering relation %q: %w", rs.Name, err)
		}
		c.rels[rs.Name] = &entry{rel: rel, vars: append([]string(nil), rs.Vars...)}
	}
	for _, def := range state.Queries {
		c.queries[def.Name] = def
	}
	return c, nil
}

// checkTuples validates arity and the value domain before a mutation is
// logged: a record must never enter the WAL unless replaying it will
// succeed, so the same bounds the Relation mutators enforce are checked
// here first.
func checkTuples(name string, arity int, tuples [][]int) error {
	for i, tup := range tuples {
		if len(tup) != arity {
			return fmt.Errorf("catalog: relation %q: tuple %d has %d values, want %d", name, i, len(tup), arity)
		}
		for j, v := range tup {
			if v < 0 || v >= ordered.PosInf {
				return fmt.Errorf("catalog: relation %q: tuple %d component %d = %d out of domain [0, %d)",
					name, i, j, v, ordered.PosInf)
			}
		}
	}
	return nil
}

// appendLocked logs one mutation record; callers hold c.mu and apply
// the mutation in memory only when it returns nil. A failure that
// poisons the backend flips the catalog into degraded read-only mode:
// this mutation (and every later one, short-circuited here) fails
// with ErrReadOnly, while reads and query execution continue — the
// in-memory state is exactly the durably logged prefix, so serving it
// is safe.
func (c *Catalog) appendLocked(rec *storage.Record) error {
	if c.degraded != nil {
		return fmt.Errorf("%w (%v)", ErrReadOnly, c.degraded)
	}
	err := c.backend.Append(rec)
	if err != nil {
		if herr := c.backend.Healthy(); herr != nil {
			c.degraded = herr
			return fmt.Errorf("%w (%v)", ErrReadOnly, err)
		}
	}
	return err
}

// maybeCompactLocked rotates the log into a fresh snapshot when it has
// outgrown the previous one. Compaction failure is deliberately soft:
// the mutation that triggered it is already durable in the WAL, the
// backend records the error in its Stats, and the next mutation
// retries.
func (c *Catalog) maybeCompactLocked() {
	if !c.backend.ShouldCompact() {
		return
	}
	c.backend.Compact(c.stateLocked())
}

// stateLocked renders the full catalog as a storage.State. Tuple rows
// are shared with the relations (the snapshot writer only reads them).
func (c *Catalog) stateLocked() *storage.State {
	st := &storage.State{
		Relations: make([]storage.RelationState, 0, len(c.rels)),
		Queries:   make([]storage.QueryDef, 0, len(c.queries)),
	}
	for name, e := range c.rels {
		st.Relations = append(st.Relations, storage.RelationState{
			Name:   name,
			Vars:   append([]string(nil), e.vars...),
			Epoch:  e.rel.Epoch(),
			Tuples: e.rel.Tuples(),
		})
	}
	for _, def := range c.queries {
		st.Queries = append(st.Queries, def)
	}
	return st
}

// Create adds a new relation under the given name with the given
// default variable binding (arity = len(vars)) and initial tuples. It
// fails if the name is already taken or the vars repeat.
func (c *Catalog) Create(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, err := c.createLocked(name, vars, tuples)
	if err != nil {
		return nil, err
	}
	c.maybeCompactLocked()
	return rel, nil
}

// createLocked is Create with c.mu held (and without the compaction
// check, so Load composes it with a replace under one lock).
func (c *Catalog) createLocked(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty relation name")
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("catalog: relation %q: empty variable list", name)
	}
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			return nil, fmt.Errorf("catalog: relation %q: repeated variable %q", name, v)
		}
		seen[v] = true
	}
	if _, dup := c.rels[name]; dup {
		return nil, fmt.Errorf("catalog: relation %q already exists", name)
	}
	// Build (and thereby validate) the relation before logging: a
	// record only enters the log if applying it must succeed.
	rel, err := minesweeper.NewRelation(name, len(vars), tuples)
	if err != nil {
		return nil, err
	}
	if err := c.appendLocked(&storage.Record{Op: storage.OpCreate, Name: name, Vars: vars, Tuples: tuples}); err != nil {
		return nil, err
	}
	c.rels[name] = &entry{rel: rel, vars: append([]string(nil), vars...)}
	return rel, nil
}

// Get returns the named relation.
func (c *Catalog) Get(name string) (*minesweeper.Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	if !ok {
		return nil, false
	}
	return e.rel, true
}

// Vars returns the relation's default variable binding.
func (c *Catalog) Vars(name string) ([]string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), e.vars...), true
}

// Insert adds tuples to the named relation, bumping its epoch, and
// returns the relation's post-mutation description. Queries prepared
// against the relation pick up the new tuples on their next execution.
// Catalog mutations run under the catalog's write lock, so the returned
// Info is exactly the state this mutation produced — concurrent
// mutations cannot skew the reported epoch or tuple count. The record
// is appended to the storage log before the relation changes.
func (c *Catalog) Insert(name string, tuples ...[]int) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, e.rel.Arity(), tuples); err != nil {
		return Info{}, err
	}
	if len(tuples) > 0 {
		if err := c.appendLocked(&storage.Record{
			Op: storage.OpInsert, Name: name, Epoch: e.rel.Epoch(), Tuples: tuples,
		}); err != nil {
			return Info{}, err
		}
	}
	if err := e.rel.Insert(tuples...); err != nil {
		return Info{}, err
	}
	c.maybeCompactLocked()
	return e.describe(name), nil
}

// Delete removes every stored copy of each given tuple from the named
// relation, returning how many rows were removed and the post-mutation
// description.
func (c *Catalog) Delete(name string, tuples ...[]int) (int, Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return 0, Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, e.rel.Arity(), tuples); err != nil {
		return 0, Info{}, err
	}
	if len(tuples) > 0 {
		// Logged even when nothing ends up removed: whether rows match
		// is only known after applying, and replaying a no-op delete
		// reproduces the same no-op (and the same epoch).
		if err := c.appendLocked(&storage.Record{
			Op: storage.OpDelete, Name: name, Epoch: e.rel.Epoch(), Tuples: tuples,
		}); err != nil {
			return 0, Info{}, err
		}
	}
	n, err := e.rel.Delete(tuples...)
	if err != nil {
		return 0, Info{}, err
	}
	c.maybeCompactLocked()
	return n, e.describe(name), nil
}

// Replace swaps the named relation's contents, bumping its epoch, and
// returns the post-mutation description.
func (c *Catalog) Replace(name string, tuples [][]int) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, e.rel.Arity(), tuples); err != nil {
		return Info{}, err
	}
	if err := c.appendLocked(&storage.Record{
		Op: storage.OpReplace, Name: name, Epoch: e.rel.Epoch(), Vars: e.vars, Tuples: tuples,
	}); err != nil {
		return Info{}, err
	}
	if err := e.rel.Replace(tuples); err != nil {
		return Info{}, err
	}
	c.maybeCompactLocked()
	return e.describe(name), nil
}

// Drop removes the relation from the catalog. The *Relation value stays
// valid for queries still holding it, but it is no longer reachable by
// name and its name becomes free.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.rels[name]
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := c.appendLocked(&storage.Record{Op: storage.OpDrop, Name: name, Epoch: e.rel.Epoch()}); err != nil {
		return err
	}
	delete(c.rels, name)
	c.maybeCompactLocked()
	return nil
}

// Len returns the number of cataloged relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Names returns the cataloged relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Relations returns a snapshot description of every cataloged relation,
// sorted by name. Entries are read entirely under the catalog lock —
// Load's replace path rewrites e.vars under the write lock, so readers
// must not hold slice references past the unlock.
func (c *Catalog) Relations() []Info {
	c.mu.RLock()
	out := make([]Info, 0, len(c.rels))
	for n, e := range c.rels {
		out = append(out, e.describe(n))
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// describe renders the entry as an Info. Callers hold c.mu (read or
// write): the vars copy must happen under the lock.
func (e *entry) describe(name string) Info {
	return Info{
		Name:   name,
		Vars:   append([]string(nil), e.vars...),
		Arity:  e.rel.Arity(),
		Tuples: e.rel.Len(),
		Epoch:  e.rel.Epoch(),
	}
}

// Load reads one relation in the relio interchange format. A new name
// is created; an existing name of the same arity has its contents
// replaced in place (bumping the epoch, so bound prepared queries see
// the new data) and its default variable binding updated. Loading over
// an existing relation with a different arity is an error — drop it
// first.
func (c *Catalog) Load(r io.Reader, source string) (Info, error) {
	parsed, err := relio.ReadRelation(r, source)
	if err != nil {
		return Info{}, err
	}
	// Holding c.mu across the whole create-or-replace keeps the load
	// atomic: a concurrent Drop cannot strand the upload on an orphaned
	// relation object, and two concurrent loads of the same new name
	// serialize into create-then-replace instead of one of them failing.
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, exists := c.rels[parsed.Name]; exists {
		if e.rel.Arity() != len(parsed.Vars) {
			return Info{}, fmt.Errorf("catalog: relation %q exists with arity %d, load has arity %d (drop it first)",
				parsed.Name, e.rel.Arity(), len(parsed.Vars))
		}
		if err := checkTuples(parsed.Name, e.rel.Arity(), parsed.Tuples); err != nil {
			return Info{}, err
		}
		if err := c.appendLocked(&storage.Record{
			Op: storage.OpReplace, Name: parsed.Name, Epoch: e.rel.Epoch(),
			Vars: parsed.Vars, Tuples: parsed.Tuples,
		}); err != nil {
			return Info{}, err
		}
		if err := e.rel.Replace(parsed.Tuples); err != nil {
			return Info{}, err
		}
		e.vars = append([]string(nil), parsed.Vars...)
		c.maybeCompactLocked()
		return e.describe(parsed.Name), nil
	}
	if _, err := c.createLocked(parsed.Name, parsed.Vars, parsed.Tuples); err != nil {
		return Info{}, err
	}
	c.maybeCompactLocked()
	return c.rels[parsed.Name].describe(parsed.Name), nil
}

// Dump writes the named relation in the relio interchange format
// (round-trips through Load).
func (c *Catalog) Dump(w io.Writer, name string) error {
	c.mu.RLock()
	e, ok := c.rels[name]
	var vars []string
	var tuples [][]int
	if ok {
		vars = append([]string(nil), e.vars...)
		tuples = e.rel.Tuples()
	}
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	return relio.WriteRelation(w, &relio.Relation{Name: name, Vars: vars, Tuples: tuples})
}

// DumpFile writes the named relation to a file atomically (temp file +
// rename): a crash or concurrent reader sees the previous file or the
// complete new one, never a torn dump.
func (c *Catalog) DumpFile(path, name string) error {
	c.mu.RLock()
	e, ok := c.rels[name]
	var rel relio.Relation
	if ok {
		rel = relio.Relation{Name: name, Vars: append([]string(nil), e.vars...), Tuples: e.rel.Tuples()}
	}
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	return relio.WriteRelationFile(path, &rel)
}

// Query parses a textual join expression such as "R(A,B), S(B,C)"
// against the catalog's relations.
func (c *Catalog) Query(expr string) (*minesweeper.Query, error) {
	c.mu.RLock()
	rels := make(map[string]*minesweeper.Relation, len(c.rels))
	for n, e := range c.rels {
		rels[n] = e.rel
	}
	c.mu.RUnlock()
	return minesweeper.ParseQuery(expr, rels)
}

// --- prepared-query definitions --------------------------------------

// PutQueryDef stores (or overwrites) a named prepared-query definition,
// logging it before the in-memory registry changes so a recovered
// catalog re-registers the same queries.
func (c *Catalog) PutQueryDef(def storage.QueryDef) error {
	if def.Name == "" {
		return fmt.Errorf("catalog: query definition without a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.appendLocked(&storage.Record{Op: storage.OpPutQuery, Name: def.Name, Query: &def}); err != nil {
		return err
	}
	c.queries[def.Name] = def
	c.maybeCompactLocked()
	return nil
}

// DropQueryDef removes a named definition. Dropping an absent name is a
// no-op (nothing is logged).
func (c *Catalog) DropQueryDef(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.queries[name]; !ok {
		return nil
	}
	if err := c.appendLocked(&storage.Record{Op: storage.OpDropQuery, Name: name}); err != nil {
		return err
	}
	delete(c.queries, name)
	c.maybeCompactLocked()
	return nil
}

// QueryDefs returns the stored prepared-query definitions, sorted by
// name.
func (c *Catalog) QueryDefs() []storage.QueryDef {
	c.mu.RLock()
	out := make([]storage.QueryDef, 0, len(c.queries))
	for _, def := range c.queries {
		out = append(out, def)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- backend plumbing -------------------------------------------------

// Degraded reports whether the catalog is in read-only mode, returning
// the backend failure that caused it (nil when healthy).
func (c *Catalog) Degraded() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.degraded
}

// Healthy reports whether the catalog can accept mutations: nil while
// the backend is appendable, the poisoning failure otherwise. It is
// stricter than Degraded — a backend can poison itself outside the
// catalog's own append path (a failed explicit Sync, an injected
// fault), which Degraded only notices on the next mutation; Healthy
// asks the backend directly.
func (c *Catalog) Healthy() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.degraded != nil {
		return c.degraded
	}
	return c.backend.Healthy()
}

// Restore force-writes one relation at an exact epoch: an existing
// relation of the name is dropped first, then the relation is created
// with the given binding, tuples and epoch stamp. Both steps are logged
// (the WAL create record carries the epoch, exactly as snapshot
// records do), so a restored catalog recovers identically. This is the
// replica-resync primitive: a follower rebuilt from an empty or stale
// store is brought to the leader's exact state, epoch included, so
// divergence checks on later mutations hold.
func (c *Catalog) Restore(name string, vars []string, epoch uint64, tuples [][]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, err := minesweeper.NewRelation(name, len(vars), tuples)
	if err != nil {
		return err
	}
	if err := rel.RestoreEpoch(epoch); err != nil {
		return err
	}
	if e, ok := c.rels[name]; ok {
		if err := c.appendLocked(&storage.Record{Op: storage.OpDrop, Name: name, Epoch: e.rel.Epoch()}); err != nil {
			return err
		}
		delete(c.rels, name)
	}
	if err := c.appendLocked(&storage.Record{Op: storage.OpCreate, Name: name, Epoch: epoch, Vars: vars, Tuples: tuples}); err != nil {
		return err
	}
	c.rels[name] = &entry{rel: rel, vars: append([]string(nil), vars...)}
	c.maybeCompactLocked()
	return nil
}

// Reopen attempts to leave degraded read-only mode by swapping in a
// freshly opened backend. open must return a backend over the same
// durable store (e.g. a new storage.OpenDurable on the same
// directory); its recovered state is verified against the in-memory
// catalog before the swap. By log-then-apply, the in-memory state is
// exactly the successfully appended prefix, and a failed append's torn
// tail is truncated by recovery — so on the expected path the two
// match, the new backend takes over, and mutations resume. A mismatch
// (e.g. the failed append landed in full but was never applied in
// memory) means resuming could diverge memory from disk; Reopen then
// refuses, closes the new backend, and the catalog stays read-only —
// a process restart recovers the durable state cleanly.
//
// Reopen on a healthy catalog is a no-op. Live relation pointers are
// untouched, so prepared queries bound through the catalog stay valid.
func (c *Catalog) Reopen(open func() (storage.Backend, error)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.degraded == nil {
		return nil
	}
	nb, err := open()
	if err != nil {
		return err
	}
	state, err := nb.Recover()
	if err != nil {
		nb.Close()
		return err
	}
	if err := c.verifyStateLocked(state); err != nil {
		nb.Close()
		return fmt.Errorf("catalog: reopen: %w", err)
	}
	old := c.backend
	c.backend = nb
	c.degraded = nil
	old.Close()
	return nil
}

// verifyStateLocked checks that a recovered state is exactly the
// in-memory catalog: same relations (name, binding, epoch, tuples) and
// same query definitions.
func (c *Catalog) verifyStateLocked(state *storage.State) error {
	if len(state.Relations) != len(c.rels) {
		return fmt.Errorf("recovered %d relations, memory has %d", len(state.Relations), len(c.rels))
	}
	for i := range state.Relations {
		rs := &state.Relations[i]
		e, ok := c.rels[rs.Name]
		if !ok {
			return fmt.Errorf("recovered relation %q not in memory", rs.Name)
		}
		if !reflect.DeepEqual(rs.Vars, e.vars) {
			return fmt.Errorf("relation %q: recovered binding %v, memory has %v", rs.Name, rs.Vars, e.vars)
		}
		if rs.Epoch != e.rel.Epoch() {
			return fmt.Errorf("relation %q: recovered epoch %d, memory at %d", rs.Name, rs.Epoch, e.rel.Epoch())
		}
		mem := e.rel.Tuples()
		if len(rs.Tuples) != len(mem) {
			return fmt.Errorf("relation %q: recovered %d tuples, memory has %d", rs.Name, len(rs.Tuples), len(mem))
		}
		if !reflect.DeepEqual(rs.Tuples, mem) && len(mem) > 0 {
			return fmt.Errorf("relation %q: recovered tuples diverge from memory", rs.Name)
		}
	}
	if len(state.Queries) != len(c.queries) {
		return fmt.Errorf("recovered %d query definitions, memory has %d", len(state.Queries), len(c.queries))
	}
	for _, def := range state.Queries {
		if mem, ok := c.queries[def.Name]; !ok || !reflect.DeepEqual(def, mem) {
			return fmt.Errorf("query definition %q diverges from memory", def.Name)
		}
	}
	return nil
}

// Sync flushes the storage backend's log to stable storage.
func (c *Catalog) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backend.Sync()
}

// Close syncs and releases the storage backend. The catalog must not be
// mutated afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backend.Close()
}

// StorageStats returns the backend's counters (WAL records and bytes,
// snapshots, recovery outcome).
func (c *Catalog) StorageStats() storage.Stats {
	return c.backend.Stats()
}

// Package ordered provides the ordered building blocks of the Minesweeper
// join algorithm: a hybrid SortedList (Appendix E.1 of the paper, see
// below), an IntervalList of disjoint open intervals built on top of it
// (Appendix E.2), and the dyadic interval tree used by the specialized
// triangle-query constraint data structure (Appendix L.1).
//
// All values are ints. The sentinels NegInf and PosInf stand for the paper's
// -∞ and +∞; they are never stored inside a SortedList but may appear as
// interval endpoints.
package ordered

// NegInf and PosInf are the -∞/+∞ sentinels used throughout the library.
// They are chosen so that v-1 and v+1 never overflow for any finite domain
// value v produced by the data generators (domain values are non-negative
// and far below PosInf).
const (
	NegInf = -1 << 60
	PosInf = 1 << 60
)

// IsFinite reports whether v is a finite domain value (not a sentinel).
func IsFinite(v int) bool { return v > NegInf && v < PosInf }

// smallMax is the hybrid threshold: a SortedList holds up to this many
// keys in a flat sorted array (binary search + memmove) and only
// promotes to the AVL tree beyond it. CDS nodes overwhelmingly stay
// tiny — most hold a handful of equality children or ruled-out
// intervals — so the common case is two cache lines of ints with no
// pointer chasing and no per-key allocation.
const smallMax = 32

// SortedList stores a set of distinct int keys, each with a payload of
// type V, and supports the operations of Appendix E.1: Find, FindLub
// (least key ≥ v), Insert, Delete, and DeleteInterval (delete every key
// strictly inside an open interval). Up to smallMax keys live in a
// sorted array; beyond that the list promotes itself to an AVL tree,
// preserving the O(log n) worst case of the paper's analysis.
// DeleteInterval is O((k+1) log n) for k deleted keys and therefore
// O(log n) amortized against their insertions.
//
// AVL nodes removed by Delete/DeleteInterval are recycled on a
// free-list, so the insert/delete churn that constraint memoization
// puts on a hot node stops allocating once the list has reached its
// high-water size.
//
// The zero value is an empty list ready for use.
type SortedList[V any] struct {
	keys []int // sorted; small mode iff root == nil
	vals []V
	root *avlNode[V]
	size int
	free *avlNode[V] // recycled nodes, linked through right
}

type avlNode[V any] struct {
	key         int
	val         V
	left, right *avlNode[V]
	height      int
}

// NewSortedList returns an empty SortedList.
func NewSortedList[V any]() *SortedList[V] { return &SortedList[V]{} }

// Len returns the number of stored keys.
func (s *SortedList[V]) Len() int { return s.size }

// Reset empties the list, retaining its array capacity and moving every
// live AVL node to the free-list, so refilling a reset list does not
// allocate.
func (s *SortedList[V]) Reset() {
	if s.root != nil {
		s.recycleTree(s.root)
		s.root = nil
	}
	s.keys = s.keys[:0]
	s.vals = s.vals[:0]
	s.size = 0
}

func (s *SortedList[V]) recycleTree(n *avlNode[V]) {
	if n == nil {
		return
	}
	s.recycleTree(n.left)
	s.recycleTree(n.right)
	s.recycle(n)
}

// recycle pushes a detached node onto the free-list, clearing its
// payload so recycled nodes don't pin garbage.
func (s *SortedList[V]) recycle(n *avlNode[V]) {
	var zero V
	n.val = zero
	n.left = nil
	n.right = s.free
	s.free = n
}

// newNode pops a recycled node or allocates a fresh one.
func (s *SortedList[V]) newNode(key int, val V) *avlNode[V] {
	n := s.free
	if n == nil {
		return &avlNode[V]{key: key, val: val, height: 1}
	}
	s.free = n.right
	n.key, n.val, n.left, n.right, n.height = key, val, nil, nil, 1
	return n
}

// search returns the index of the first key ≥ v in the small-mode array.
func (s *SortedList[V]) search(v int) int {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// promote converts the small-mode arrays into a perfectly balanced AVL
// tree, leaving the arrays empty (capacity retained for a later Reset).
func (s *SortedList[V]) promote() {
	s.root = s.balanced(0, len(s.keys))
	s.keys = s.keys[:0]
	s.vals = s.vals[:0]
}

func (s *SortedList[V]) balanced(lo, hi int) *avlNode[V] {
	if lo >= hi {
		return nil
	}
	mid := int(uint(lo+hi) >> 1)
	n := s.newNode(s.keys[mid], s.vals[mid])
	n.left = s.balanced(lo, mid)
	n.right = s.balanced(mid+1, hi)
	update(n)
	return n
}

func height[V any](n *avlNode[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update[V any](n *avlNode[V]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func rotateRight[V any](y *avlNode[V]) *avlNode[V] {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft[V any](x *avlNode[V]) *avlNode[V] {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func rebalance[V any](n *avlNode[V]) *avlNode[V] {
	update(n)
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert stores val under key, replacing any existing payload.
// It reports whether the key was newly inserted.
func (s *SortedList[V]) Insert(key int, val V) bool {
	if s.root == nil {
		i := s.search(key)
		if i < len(s.keys) && s.keys[i] == key {
			s.vals[i] = val
			return false
		}
		if len(s.keys) < smallMax {
			if s.keys == nil {
				// Skip the first append doublings: small lists are the
				// common case, so land on a useful capacity immediately.
				s.keys = make([]int, 0, 8)
				s.vals = make([]V, 0, 8)
			}
			var zero V
			s.keys = append(s.keys, 0)
			s.vals = append(s.vals, zero)
			copy(s.keys[i+1:], s.keys[i:])
			copy(s.vals[i+1:], s.vals[i:])
			s.keys[i] = key
			s.vals[i] = val
			s.size++
			return true
		}
		s.promote()
	}
	var added bool
	s.root, added = s.insertNode(s.root, key, val)
	if added {
		s.size++
	}
	return added
}

func (s *SortedList[V]) insertNode(n *avlNode[V], key int, val V) (*avlNode[V], bool) {
	if n == nil {
		return s.newNode(key, val), true
	}
	var added bool
	switch {
	case key < n.key:
		n.left, added = s.insertNode(n.left, key, val)
	case key > n.key:
		n.right, added = s.insertNode(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	return rebalance(n), added
}

// Find returns the payload stored under key and whether it exists.
func (s *SortedList[V]) Find(key int) (V, bool) {
	if s.root == nil {
		i := s.search(key)
		if i < len(s.keys) && s.keys[i] == key {
			return s.vals[i], true
		}
		var zero V
		return zero, false
	}
	n := s.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// FindLub returns the smallest key ≥ v together with its payload.
// ok is false when every stored key is < v.
func (s *SortedList[V]) FindLub(v int) (key int, val V, ok bool) {
	if s.root == nil {
		i := s.search(v)
		if i < len(s.keys) {
			return s.keys[i], s.vals[i], true
		}
		var zero V
		return 0, zero, false
	}
	n := s.root
	var best *avlNode[V]
	for n != nil {
		if n.key >= v {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// FindGlb returns the largest key ≤ v together with its payload.
// ok is false when every stored key is > v.
func (s *SortedList[V]) FindGlb(v int) (key int, val V, ok bool) {
	if s.root == nil {
		i := s.search(v + 1) // first key > v (keys are < PosInf, no overflow)
		if i > 0 {
			return s.keys[i-1], s.vals[i-1], true
		}
		var zero V
		return 0, zero, false
	}
	n := s.root
	var best *avlNode[V]
	for n != nil {
		if n.key <= v {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Min returns the smallest stored key. ok is false on an empty list.
func (s *SortedList[V]) Min() (key int, val V, ok bool) {
	if s.root == nil {
		if len(s.keys) == 0 {
			var zero V
			return 0, zero, false
		}
		return s.keys[0], s.vals[0], true
	}
	n := s.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest stored key. ok is false on an empty list.
func (s *SortedList[V]) Max() (key int, val V, ok bool) {
	if s.root == nil {
		if len(s.keys) == 0 {
			var zero V
			return 0, zero, false
		}
		i := len(s.keys) - 1
		return s.keys[i], s.vals[i], true
	}
	n := s.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Delete removes key and reports whether it was present.
func (s *SortedList[V]) Delete(key int) bool {
	if s.root == nil {
		i := s.search(key)
		if i >= len(s.keys) || s.keys[i] != key {
			return false
		}
		s.deleteAt(i)
		return true
	}
	var removed bool
	s.root, removed = s.deleteNode(s.root, key)
	if removed {
		s.size--
	}
	return removed
}

func (s *SortedList[V]) deleteAt(i int) {
	var zero V
	copy(s.keys[i:], s.keys[i+1:])
	copy(s.vals[i:], s.vals[i+1:])
	last := len(s.keys) - 1
	s.vals[last] = zero
	s.keys = s.keys[:last]
	s.vals = s.vals[:last]
	s.size--
}

func (s *SortedList[V]) deleteNode(n *avlNode[V], key int) (*avlNode[V], bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case key < n.key:
		n.left, removed = s.deleteNode(n.left, key)
	case key > n.key:
		n.right, removed = s.deleteNode(n.right, key)
	default:
		if n.left == nil {
			r := n.right
			s.recycle(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			s.recycle(n)
			return l, true
		}
		// Replace with in-order successor; the successor's node is the
		// one physically unlinked (and recycled) by the nested delete.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		n.right, _ = s.deleteNode(n.right, succ.key)
		removed = true
	}
	return rebalance(n), removed
}

// DeleteInterval removes every key strictly inside the open interval (l, r)
// and returns the removed keys in ascending order. Either endpoint may be a
// sentinel. Cost is O((k+1) log n) for k removed keys, so O(log n) amortized
// against the insertions that created them (Proposition E.2). Callers that
// only need the count should use DeleteIntervalCount, which does not
// allocate.
func (s *SortedList[V]) DeleteInterval(l, r int) []int {
	var removed []int
	s.deleteInterval(l, r, func(key int) { removed = append(removed, key) })
	return removed
}

// DeleteIntervalCount is DeleteInterval without materializing the
// removed keys: it returns how many were deleted.
func (s *SortedList[V]) DeleteIntervalCount(l, r int) int {
	n := 0
	s.deleteInterval(l, r, func(int) { n++ })
	return n
}

func (s *SortedList[V]) deleteInterval(l, r int, visit func(key int)) {
	if s.root == nil {
		// Small mode: one contiguous span [i, j) of the array.
		i := s.search(l + 1)
		if l == NegInf {
			i = 0
		}
		j := i
		for j < len(s.keys) && s.keys[j] < r {
			visit(s.keys[j])
			j++
		}
		if j > i {
			var zero V
			copy(s.keys[i:], s.keys[j:])
			copy(s.vals[i:], s.vals[j:])
			for k := len(s.keys) - (j - i); k < len(s.vals); k++ {
				s.vals[k] = zero
			}
			s.keys = s.keys[:len(s.keys)-(j-i)]
			s.vals = s.vals[:len(s.vals)-(j-i)]
			s.size -= j - i
		}
		return
	}
	for {
		key, _, ok := s.FindLub(l + 1)
		if l == NegInf {
			key, _, ok = s.Min()
		}
		if !ok || key >= r {
			return
		}
		s.Delete(key)
		visit(key)
	}
}

// Ascend calls fn on every (key, payload) pair in ascending key order until
// fn returns false.
func (s *SortedList[V]) Ascend(fn func(key int, val V) bool) {
	if s.root == nil {
		for i, k := range s.keys {
			if !fn(k, s.vals[i]) {
				return
			}
		}
		return
	}
	ascend(s.root, fn)
}

func ascend[V any](n *avlNode[V], fn func(int, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// AscendFrom calls fn on every pair with key ≥ from, ascending, until fn
// returns false.
func (s *SortedList[V]) AscendFrom(from int, fn func(key int, val V) bool) {
	if s.root == nil {
		for i := s.search(from); i < len(s.keys); i++ {
			if !fn(s.keys[i], s.vals[i]) {
				return
			}
		}
		return
	}
	ascendFrom(s.root, from, fn)
}

func ascendFrom[V any](n *avlNode[V], from int, fn func(int, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= from {
		if !ascendFrom(n.left, from, fn) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
	}
	return ascendFrom(n.right, from, fn)
}

// Keys returns all stored keys in ascending order.
func (s *SortedList[V]) Keys() []int {
	keys := make([]int, 0, s.size)
	s.Ascend(func(k int, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Package benchsuite defines the repo's tracked benchmark suite: one
// entry per experiment of DESIGN.md's index (E1–E9), the selection
// pushdown and streaming aggregation workloads (E10/E11), and the CDS /
// hot path micro-benchmarks, each runnable both as a conventional testing.B
// benchmark (bench_test.go delegates here) and programmatically via
// testing.Benchmark for the machine-readable BENCH_<n>.json trajectory
// that `msbench -json` emits.
//
// Names are stable identifiers: comparisons between two BENCH_*.json
// files (and the CI benchstat job) match on them, so renaming an entry
// breaks the recorded trajectory — add new entries instead.
package benchsuite

import (
	"testing"

	"minesweeper/internal/baseline"
	"minesweeper/internal/cds"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
	"minesweeper/internal/experiments"
	"minesweeper/internal/ordered"
)

// Bench is one tracked benchmark: a stable name, the experiment it
// measures (E1–E9, or "micro" for substrate benchmarks), and the body.
type Bench struct {
	Name string
	Exp  string
	F    func(b *testing.B)
}

// Suite returns the tracked benchmarks in a fixed order.
func Suite() []Bench {
	return []Bench{
		{"Figure2Star", "E1", Fig2Star},
		{"Figure2Path", "E1", Fig2Path},
		{"Figure2Tree", "E1", Fig2Tree},
		{"BetaAcyclicScaling/M=64", "E2", func(b *testing.B) { BetaAcyclic(b, 64) }},
		{"AppendixJMinesweeper", "E3", AppendixJMinesweeper},
		{"AppendixJLeapfrog", "E3", AppendixJLeapfrog},
		{"SetIntersectionBlocks", "E4", SetIntersectionBlocks},
		{"SetIntersectionInterleaved", "E4", SetIntersectionInterleaved},
		{"BowtieHiddenGap", "E5", Bowtie},
		{"TriangleSpecialized", "E6", TriangleSpecialized},
		{"TriangleGeneric", "E6", TriangleGeneric},
		{"TreewidthFamily/w=2/m=32", "E7", func(b *testing.B) { Treewidth(b, 32) }},
		{"Memoization", "E8", Memoization},
		{"GAODependenceABC", "E9", func(b *testing.B) { GAODependence(b, []string{"A", "B", "C"}) }},
		{"GAODependenceCAB", "E9", func(b *testing.B) { GAODependence(b, []string{"C", "A", "B"}) }},
		{"SelectivePushdown/sel=1%", "E10", SelectivePushdown},
		{"SelectivePostFilter", "E10", SelectivePostFilter},
		{"AggregateGroupCount", "E11", AggregateGroupCount},
		{"SparseSkew/Default", "E12", SparseSkewDefault},
		{"SparseSkew/Planned", "E12", SparseSkewPlanned},
		{"SparseHeavyEnum/Default", "E12", SparseHeavyEnumDefault},
		{"SparseHeavyEnum/PlannedRaw", "E12", SparseHeavyEnumPlannedRaw},
		{"SparseHeavyEnum/Planned", "E12", SparseHeavyEnumPlanned},
		{"ClusteredBand/Boxes", "E13", ClusteredBandBoxes},
		{"ClusteredBand/IntervalOnly", "E13", ClusteredBandIntervalOnly},
		{"ClusteredOverlap/Boxes", "E13", ClusteredOverlapBoxes},
		{"ClusteredOverlap/IntervalOnly", "E13", ClusteredOverlapIntervalOnly},
		{"DurableAppend/mem", "E14", DurableAppendMem},
		{"DurableAppend/wal", "E14", DurableAppendWAL},
		{"DurableAppend/wal-fsync", "E14", DurableAppendWALFsync},
		{"DurableRecovery/wal=1024", "E14", func(b *testing.B) { DurableRecovery(b, 1024) }},
		{"DurableRecovery/wal=16384", "E14", func(b *testing.B) { DurableRecovery(b, 16384) }},
		{"CDSProbeInsertLoop", "micro", CDSProbeInsertLoop},
		{"CDSInsConstraint", "micro", CDSInsConstraint},
		{"RangeSetInsert", "micro", RangeSetInsert},
		{"SortedListInsertDelete", "micro", SortedListInsertDelete},
		{"IntersectAdaptiveSkewed", "micro", IntersectAdaptiveSkewed},
	}
}

func report(b *testing.B, s *certificate.Stats, n int) {
	b.ReportMetric(float64(s.FindGaps)/float64(n), "findgaps/op")
	b.ReportMetric(float64(s.ProbePoints)/float64(n), "probes/op")
	b.ReportMetric(float64(s.CDSOps)/float64(n), "cdsops/op")
	b.ReportMetric(float64(s.Boxes)/float64(n), "boxes/op")
	b.ReportMetric(float64(s.BoxSkips)/float64(n), "boxskips/op")
}

// --- E1: Figure 2 ----------------------------------------------------

func fig2(b *testing.B, build func(*dataset.Graph, [][][]int) ([]string, []core.AtomSpec)) {
	preset := dataset.Presets[1] // Epinions-like: smallest
	preset.N = 2000
	preset.SampleP = 0.005
	g, samples := preset.Build()
	gao, atoms := build(g, samples)
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// Fig2Star, Fig2Path and Fig2Tree are the three query shapes of the
// paper's Figure 2 measurement (E1).
func Fig2Star(b *testing.B) { fig2(b, dataset.StarQuery) }
func Fig2Path(b *testing.B) { fig2(b, dataset.PathQuery) }
func Fig2Tree(b *testing.B) { fig2(b, dataset.TreeQuery) }

// --- E2: Theorem 2.7 β-acyclic scaling -------------------------------

func BetaAcyclic(b *testing.B, m int) {
	gao, atoms := dataset.AppendixJPath(5, m)
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E3: Appendix J --------------------------------------------------

func appendixJ(b *testing.B, run func(*core.Problem) error) {
	gao, atoms := dataset.AppendixJPath(5, 64)
	_ = gao
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(p); err != nil {
			b.Fatal(err)
		}
	}
}

func AppendixJMinesweeper(b *testing.B) {
	appendixJ(b, func(p *core.Problem) error {
		_, err := core.MinesweeperAll(p, nil)
		return err
	})
}

func AppendixJLeapfrog(b *testing.B) {
	appendixJ(b, func(p *core.Problem) error {
		_, err := baseline.LeapfrogAll(p, nil)
		return err
	})
}

// --- E4: Appendix H set intersection ---------------------------------

func SetIntersectionBlocks(b *testing.B) {
	sets := dataset.BlockSets(4, 50000)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntersectSets(sets, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

func SetIntersectionInterleaved(b *testing.B) {
	sets := dataset.InterleavedSets(4, 5000)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntersectSets(sets, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E5: Appendix I bow-tie ------------------------------------------

func Bowtie(b *testing.B) {
	const n = 20000
	var s [][]int
	for i := 1; i <= n; i++ {
		s = append(s, []int{1, n + 1 + i}, []int{3, i})
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Bowtie([]int{2}, s, []int{n + 1}, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E6: Theorem 5.4 triangle ----------------------------------------

func TriangleSpecialized(b *testing.B) {
	r, s, t := dataset.TriangleHard(128)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Triangle(r, s, t, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

func TriangleGeneric(b *testing.B) {
	r, s, t := dataset.TriangleHard(128)
	p, err := core.NewProblem([]string{"A", "B", "C"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
		{Name: "T", Attrs: []string{"A", "C"}, Tuples: t},
	})
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E7: Proposition 5.3 treewidth family ----------------------------

func Treewidth(b *testing.B, m int) {
	gao, atoms := dataset.CliqueInstance(2, m)
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E8: Example 4.1 memoization -------------------------------------

func Memoization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MemoizationEffect(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: Examples B.3/B.4 GAO dependence -----------------------------

func GAODependence(b *testing.B, gao []string) {
	atoms := dataset.ExampleB3(24)
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- hot-path micro-benchmarks ---------------------------------------

// CDSProbeInsertLoop is the CDS steady state in isolation: the
// GetProbePoint / InsConstraint alternation of Algorithm 2's outer loop
// over a three-attribute tree, repeatedly ruling out the probe it is
// handed. One op is a full drain of a fresh tree, so allocs/op captures
// everything the CDS allocates over its lifetime.
func CDSProbeInsertLoop(b *testing.B) {
	const span = 256
	stars := cds.Pattern{cds.Star, cds.Star}
	ruleOut := cds.Pattern{cds.Eq(0)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := cds.NewTree(3)
		// Bound every attribute to [0, span) so the drain terminates.
		for d := 0; d < 3; d++ {
			tr.InsConstraint(cds.Constraint{Prefix: stars[:d], Lo: ordered.NegInf, Hi: 0})
			tr.InsConstraint(cds.Constraint{Prefix: stars[:d], Lo: span - 1, Hi: ordered.PosInf})
		}
		n := 0
		for t := tr.GetProbePoint(); t != nil; t = tr.GetProbePoint() {
			// Rule out the whole subtree under the probe's first value, so
			// the drain visits each first-attribute value exactly once.
			ruleOut[0] = cds.Eq(t[0])
			tr.InsConstraint(cds.Constraint{Prefix: ruleOut, Lo: ordered.NegInf, Hi: ordered.PosInf})
			n++
			if n > 4*span {
				b.Fatal("CDS drain did not converge")
			}
		}
	}
}

// CDSInsConstraint measures constraint insertion alone: a stream of
// overlapping star-pattern intervals that continually merge, which is
// the memoization write pattern of Algorithm 4 line 13.
func CDSInsConstraint(b *testing.B) {
	tr := cds.NewTree(2)
	prefix := cds.Pattern{cds.Star} // hoisted: InsConstraint never retains it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := (i * 7) % 4096
		tr.InsConstraint(cds.Constraint{Prefix: prefix, Lo: v - 2, Hi: v + 2})
	}
}

func RangeSetInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs := ordered.NewRangeSet()
		for j := 0; j < 100; j++ {
			rs.Insert(j*10, j*10+5)
		}
	}
}

// SortedListInsertDelete exercises the DeleteInterval recycling path:
// keys are inserted and then swallowed by interval deletions, the
// churn pattern InsConstraint puts on every CDS node.
func SortedListInsertDelete(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := ordered.NewSortedList[int]()
		for round := 0; round < 20; round++ {
			for j := 0; j < 50; j++ {
				s.Insert(j*3, j)
			}
			s.DeleteInterval(ordered.NegInf, ordered.PosInf)
		}
	}
}

// IntersectAdaptiveSkewed measures the adaptive set-intersection entry
// point on a skewed instance (one tiny set against large ones), the
// regime where the gap-skipping CDS strategy must win.
func IntersectAdaptiveSkewed(b *testing.B) {
	sets := dataset.BlockSets(4, 50000)
	small := make([]int, 0, len(sets[0])/64)
	for i := 0; i < len(sets[0]); i += 64 {
		small = append(small, sets[0][i])
	}
	skewed := append([][]int{small}, sets[1:]...)
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntersectSetsAdaptive(skewed, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

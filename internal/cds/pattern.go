// Package cds implements Minesweeper's constraint data structure: the
// ConstraintTree of Section 3.3 (Figure 1, Appendix E.3) with constraint
// insertion (Algorithm 5) and probe-point discovery — the chain-based
// getProbePoint of Algorithm 3/4 for β-acyclic global attribute orders,
// generalized with the shadow-chain construction of Algorithms 6/7 so the
// same code handles arbitrary queries (Appendix G).
package cds

import (
	"fmt"
	"strings"

	"minesweeper/internal/ordered"
)

// Comp is one component of a constraint pattern: either the wildcard ✱ or
// an equality with a concrete domain value (Section 3.1).
type Comp struct {
	Star bool
	Val  int
}

// Star is the wildcard pattern component.
var Star = Comp{Star: true}

// Eq returns an equality pattern component.
func Eq(v int) Comp { return Comp{Val: v} }

func (c Comp) String() string {
	if c.Star {
		return "*"
	}
	return fmt.Sprintf("=%d", c.Val)
}

// Pattern is a (possibly empty) sequence of components: the prefix of a
// constraint before its interval component (Section 4.2).
type Pattern []Comp

func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// EqCount returns the number of equality components (the pattern "size"
// used by the treewidth analysis in Appendix G).
func (p Pattern) EqCount() int {
	n := 0
	for _, c := range p {
		if !c.Star {
			n++
		}
	}
	return n
}

// LastEqPos returns the 1-based position of the last equality component,
// or 0 when the pattern is all wildcards (the i0 of Algorithm 3 line 11).
func (p Pattern) LastEqPos() int {
	for i := len(p) - 1; i >= 0; i-- {
		if !p[i].Star {
			return i + 1
		}
	}
	return 0
}

// Matches reports whether the tuple prefix matches the pattern: at every
// position the pattern is either a wildcard or equals the tuple value.
// Used with len(prefix) == len(p).
func (p Pattern) Matches(prefix []int) bool {
	if len(prefix) < len(p) {
		return false
	}
	for i, c := range p {
		if !c.Star && c.Val != prefix[i] {
			return false
		}
	}
	return true
}

// SpecializationOf reports p ⪯ q: p is obtained from q by turning some
// wildcards into equalities (Section 4.2). Both must have equal length.
func (p Pattern) SpecializationOf(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range q {
		if q[i].Star {
			continue
		}
		if p[i].Star || p[i].Val != q[i].Val {
			return false
		}
	}
	return true
}

// Meet returns p ∧ q: the most general common specialization, which has an
// equality wherever either operand does. Both patterns must be
// generalizations of a common tuple prefix, so equality values never
// conflict; Meet panics otherwise (it would indicate a CDS bug).
func Meet(p, q Pattern) Pattern {
	if len(p) != len(q) {
		panic("cds: Meet of patterns with different lengths")
	}
	out := make(Pattern, len(p))
	for i := range p {
		switch {
		case p[i].Star:
			out[i] = q[i]
		case q[i].Star:
			out[i] = p[i]
		case p[i].Val == q[i].Val:
			out[i] = p[i]
		default:
			panic(fmt.Sprintf("cds: Meet conflict at position %d: %v vs %v", i, p[i], q[i]))
		}
	}
	return out
}

// Constraint is a constraint vector ⟨prefix, (Lo, Hi)⟩: every tuple that
// matches Prefix and whose next coordinate lies strictly inside the open
// interval (Lo, Hi) is ruled out. Trailing wildcards are implicit
// (Section 3.1). Lo/Hi may be the ±∞ sentinels of package ordered.
type Constraint struct {
	Prefix Pattern
	Lo, Hi int
}

// Empty reports whether the open interval contains no integer.
func (c Constraint) Empty() bool { return ordered.OpenToRange(c.Lo, c.Hi).Empty() }

// Covers reports whether the tuple (its first len(Prefix)+1 coordinates)
// satisfies the constraint.
func (c Constraint) Covers(t []int) bool {
	if len(t) <= len(c.Prefix) {
		return false
	}
	if !c.Prefix.Matches(t) {
		return false
	}
	v := t[len(c.Prefix)]
	return c.Lo < v && v < c.Hi
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s(%s,%s)", c.Prefix, fmtEnd(c.Lo), fmtEnd(c.Hi))
}

func fmtEnd(v int) string {
	switch {
	case v <= ordered.NegInf:
		return "-inf"
	case v >= ordered.PosInf:
		return "+inf"
	}
	return fmt.Sprintf("%d", v)
}

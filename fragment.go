package minesweeper

import (
	"minesweeper/internal/planner"
	"minesweeper/internal/reltree"
)

// Fragment is the data-access seam between query execution and data
// ownership: everything the prepare/bind pipeline — and through it the
// five engines and the shaping adapter — needs from a relation, with no
// way to reach the mutation surface. An engine run consumes exactly
// this interface: ordered index views for a set of column permutations
// (gap probes and range scans run against the returned trees), raw
// tuple snapshots for dictionary builds, per-column statistics for the
// planner, and the epoch stamp that makes staleness observable. Every
// method is safe for concurrent use and consistent under one call (a
// snapshot and its epoch are taken under one lock acquisition).
//
// *Relation is the trivial in-process implementation. internal/shard
// partitions catalog relations into N Fragment-owning shards and runs
// scatter-gather joins across them; because the executor only sees
// this interface, a future cross-process fragment (the methods are
// all value-shaped: names, counts, tuple rows, permutations) is a new
// implementation, not another refactor.
type Fragment interface {
	// Name identifies the fragment's relation (fragments of one sharded
	// relation share its name).
	Name() string
	// Arity returns the number of columns.
	Arity() int
	// Len returns the number of stored tuples (before deduplication).
	Len() int
	// Epoch returns the mutation counter prepared queries use to detect
	// staleness.
	Epoch() uint64
	// Tuples returns a snapshot of the stored tuples (rows shared with
	// the fragment and not to be modified; outer slice caller-owned).
	Tuples() [][]int
	// SnapshotTuples returns the stored tuples together with the epoch
	// they reflect, under one lock acquisition.
	SnapshotTuples() ([][]int, uint64)
	// IndexesFor returns the fragment's search trees for the given
	// column permutations — building and caching missing ones — plus
	// the epoch the trees reflect, all under one lock acquisition so a
	// self-join binds one consistent version.
	IndexesFor(perms [][]int) ([]*reltree.Tree, uint64, error)
	// ColStats returns the per-column statistics the GAO planner costs
	// orders from (cached; recomputed after mutations).
	ColStats() *planner.RelStats
}

// Atoms returns a copy of the query's atoms as validated: constant
// columns appear rewritten to their hidden attribute names (which start
// with '#', so they can never collide with query variables). The
// scatter planner inspects these bindings to find an atom whose
// partition column is bound to the leading GAO attribute.
func (q *Query) Atoms() []Atom {
	out := make([]Atom, len(q.atoms))
	for i, a := range q.atoms {
		out[i] = Atom{Rel: a.Rel, Vars: append([]string(nil), a.Vars...)}
	}
	return out
}

// CloneWithRelations returns a copy of the query with each atom's
// fragment replaced by replace(i, fragment) — the scatter primitive:
// internal/shard rebinds a planned query onto one shard's fragments
// without re-parsing or re-validating. The replacement must preserve
// name and arity (it is a different owner of the same relation, not a
// different relation). Parsed shaping clauses, hidden constants and
// the hypergraph carry over unchanged; replace returning the fragment
// it was given keeps that atom as-is.
func (q *Query) CloneWithRelations(replace func(i int, f Fragment) Fragment) *Query {
	cp := &Query{
		vars:   append([]string(nil), q.vars...),
		hidden: append([]hiddenConst(nil), q.hidden...),
		hg:     q.hg,
		sel:    append([]string(nil), q.sel...),
		where:  append([]Filter(nil), q.where...),
		aggs:   append([]Aggregate(nil), q.aggs...),
	}
	cp.atoms = make([]Atom, len(q.atoms))
	for i, a := range q.atoms {
		cp.atoms[i] = Atom{Rel: replace(i, a.Rel), Vars: append([]string(nil), a.Vars...)}
	}
	return cp
}

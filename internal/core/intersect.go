package core

import (
	"fmt"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// IntersectSets computes the m-way set intersection query
// Q∩ = S1(A) ⋈ … ⋈ Sm(A) with Minesweeper specialized per Algorithm 8
// (Appendix H). The CDS degenerates to a single interval list over the
// lone attribute; every iteration either reports an output value or
// inserts a gap charged to a certificate comparison, so the runtime is
// O((|C|+Z) m log N) (Theorem H.4) — near instance optimal.
//
// Input sets may be unsorted and contain duplicates. The result is the
// sorted intersection.
func IntersectSets(sets [][]int, stats *certificate.Stats) ([]int, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: IntersectSets needs at least one set")
	}
	trees := make([]*reltree.Tree, len(sets))
	for i, s := range sets {
		tuples := make([][]int, len(s))
		for j, v := range s {
			tuples[j] = []int{v}
		}
		tr, err := reltree.New(fmt.Sprintf("S%d", i+1), 1, tuples)
		if err != nil {
			return nil, err
		}
		tr.SetStats(stats)
		trees[i] = tr
	}
	cds := ordered.NewRangeSet()
	var out []int
	for {
		t := cds.Next(-1)
		if t >= ordered.PosInf {
			return out, nil
		}
		if stats != nil {
			stats.ProbePoints++
		}
		output := true
		for _, tr := range trees {
			lo, hi := tr.FindGap(nil, t)
			if lo == hi {
				continue // t present in this set
			}
			output = false
			loVal := tr.Value([]int{lo})
			hiVal := tr.Value([]int{hi})
			cds.InsertOpen(loVal, hiVal)
			if stats != nil {
				stats.Constraints++
				stats.CDSOps++
			}
		}
		if output {
			out = append(out, t)
			if stats != nil {
				stats.Outputs++
				stats.Constraints++
			}
			cds.InsertOpen(t-1, t+1)
		}
	}
}

// IntersectSetsMerge is the second CDS strategy discussed in Appendix
// H.2: always probing the least unruled value means the CDS only ever
// needs the single interval (-∞, t), and the algorithm degenerates into
// the minimum-comparison m-way merge of Hwang–Lin / Demaine et al. [20]
// — constant-time CDS operations at the price of giving up interval
// merging. Provided for the ablation comparison with IntersectSets.
func IntersectSetsMerge(sets [][]int, stats *certificate.Stats) ([]int, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: IntersectSetsMerge needs at least one set")
	}
	trees := make([]*reltree.Tree, len(sets))
	for i, s := range sets {
		tuples := make([][]int, len(s))
		for j, v := range s {
			tuples[j] = []int{v}
		}
		tr, err := reltree.New(fmt.Sprintf("S%d", i+1), 1, tuples)
		if err != nil {
			return nil, err
		}
		tr.SetStats(stats)
		trees[i] = tr
	}
	var out []int
	t := -1 // the CDS is exactly the interval (-∞, t+1): probe t+1 next
	for {
		probe := t + 1
		if stats != nil {
			stats.ProbePoints++
		}
		output := true
		next := probe
		for _, tr := range trees {
			lo, hi := tr.FindGap(nil, probe)
			if lo == hi {
				continue
			}
			output = false
			hiVal := tr.Value([]int{hi})
			if hiVal >= ordered.PosInf {
				return out, nil // some set is exhausted above probe
			}
			// Advance the single frontier to the largest lower bound seen.
			if hiVal-1 > next {
				next = hiVal - 1
			}
			if stats != nil {
				stats.CDSOps++
			}
		}
		if output {
			out = append(out, probe)
			if stats != nil {
				stats.Outputs++
			}
			t = probe
		} else {
			t = next
		}
	}
}

package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"minesweeper/internal/relio"
)

// Durable is the WAL + snapshot backend. Its directory holds one
// snapshot/WAL generation pair at a time:
//
//	snapshot-<seq>.ms   full catalog image (absent for seq 0)
//	wal-<seq>.log       records appended since that snapshot
//
// Appends go to the WAL before the catalog applies them in memory;
// recovery loads snapshot-<seq>.ms (the largest seq present) and
// replays wal-<seq>.log over it, truncating a torn tail at the last
// complete record. Compaction writes snapshot-<seq+1>.ms atomically
// (temp file + rename), then starts wal-<seq+1>.log and deletes the
// old generation — a crash between any two of those steps recovers
// cleanly, because recovery always picks the largest *snapshot* seq
// and ignores stray files from other generations.
type Durable struct {
	dir  string
	opts Options

	mu        sync.Mutex
	wal       *os.File
	seq       uint64
	walBytes  int64
	snapBytes int64
	buf       []byte // append scratch
	recovered *State // held between open and Recover
	failed    error  // sticky: a failed append poisons the backend
	stats     Stats
}

// Options tunes the durable backend.
type Options struct {
	// FsyncEach fsyncs the WAL after every append. Off by default:
	// records are still written (not buffered) per append, so they
	// survive a process crash; an OS crash may lose the records the
	// kernel had not flushed. Compaction, Sync and Close always fsync.
	FsyncEach bool
	// CompactMinBytes is the minimum WAL size before the
	// log-outgrew-the-snapshot rule may trigger compaction. Zero means
	// the 1 MiB default; tests set it low to exercise rotation.
	CompactMinBytes int64
}

const defaultCompactMin = 1 << 20

var errClosed = errors.New("storage: backend is closed")

const (
	snapPrefix = "snapshot-"
	snapSuffix = ".ms"
	walPrefix  = "wal-"
	walSuffix  = ".log"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("%s%08d%s", walPrefix, seq, walSuffix) }

// parseSeq extracts the generation number from a snapshot or WAL file
// name, reporting ok=false for files that are neither.
func parseSeq(name string) (seq uint64, isSnap, ok bool) {
	var body string
	switch {
	case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
		body, isSnap = name[len(snapPrefix):len(name)-len(snapSuffix)], true
	case strings.HasPrefix(name, walPrefix) && strings.HasSuffix(name, walSuffix):
		body = name[len(walPrefix) : len(name)-len(walSuffix)]
	default:
		return 0, false, false
	}
	n, err := strconv.ParseUint(body, 10, 64)
	if err != nil {
		return 0, false, false
	}
	return n, isSnap, true
}

// OpenDurable opens (or initializes) a durable backend in dir,
// performing recovery immediately: the state it rebuilds is returned by
// the first Recover call. The directory is created if missing.
func OpenDurable(dir string, opts Options) (*Durable, error) {
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = defaultCompactMin
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, opts: opts}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// recover scans the directory, loads the newest snapshot, replays its
// WAL (truncating a torn tail), opens the WAL for appending and removes
// stray files from other generations.
func (d *Durable) recover() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return err
	}
	var snapSeqs, walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			// Leftover from an interrupted atomic write; the rename never
			// happened, so it is garbage.
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if seq, isSnap, ok := parseSeq(name); ok {
			if isSnap {
				snapSeqs = append(snapSeqs, seq)
			} else {
				walSeqs = append(walSeqs, seq)
			}
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	state := &State{}
	if n := len(snapSeqs); n > 0 {
		d.seq = snapSeqs[n-1]
		path := filepath.Join(d.dir, snapName(d.seq))
		if err := d.loadSnapshot(path, state); err != nil {
			return err
		}
		if fi, err := os.Stat(path); err == nil {
			d.snapBytes = fi.Size()
		}
	}
	if err := d.replayWAL(filepath.Join(d.dir, walName(d.seq)), state); err != nil {
		return err
	}

	// Open the current WAL for appending (creating it on first open or
	// after a crash between snapshot rename and WAL creation).
	wal, err := os.OpenFile(filepath.Join(d.dir, walName(d.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	d.wal = wal
	if fi, err := wal.Stat(); err == nil {
		d.walBytes = fi.Size()
	}
	relio.SyncDir(d.dir)

	// Drop every file from other generations: older pairs superseded by
	// the snapshot we loaded, or a stray WAL whose snapshot never made
	// it to disk.
	for _, seq := range snapSeqs {
		if seq != d.seq {
			os.Remove(filepath.Join(d.dir, snapName(seq)))
		}
	}
	for _, seq := range walSeqs {
		if seq != d.seq {
			os.Remove(filepath.Join(d.dir, walName(seq)))
		}
	}

	sortState(state)
	d.recovered = state
	d.stats.RecoveredRelations = len(state.Relations)
	d.stats.RecoveredQueries = len(state.Queries)
	return nil
}

// loadSnapshot reads a full snapshot into state. Snapshots are written
// atomically, so unlike the WAL they admit no torn tail: any framing or
// CRC error is corruption and fatal, reported with its line number.
func (d *Durable) loadSnapshot(path string, state *State) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rr := newRecordReader(f, filepath.Base(path))
	for {
		rec, err := rr.Read()
		if err == io.EOF {
			return nil
		}
		if err == errUnterminated {
			return fmt.Errorf("storage: snapshot %s: truncated record at end of file", filepath.Base(path))
		}
		if err != nil {
			return fmt.Errorf("storage: snapshot %w", err)
		}
		if err := state.apply(rec); err != nil {
			return fmt.Errorf("storage: snapshot %s: %w", filepath.Base(path), err)
		}
	}
}

// replayWAL applies the WAL's records to state. A torn or corrupt tail
// is truncated at the last complete record — the crash-recovery
// contract: the catalog comes back as the longest durable prefix of the
// mutation history. A record that fails to *apply* (it references a
// relation the preceding records never created, or its epoch stamp
// disagrees with the replayed state) means the log is semantically
// inconsistent, which truncation cannot fix; that is reported as a
// fatal error with the record's position. A missing WAL file is an
// empty WAL (crash between snapshot rename and WAL creation).
func (d *Durable) replayWAL(path string, state *State) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rr := newRecordReader(f, filepath.Base(path))
	lastGood := int64(0)
	for {
		rec, err := rr.Read()
		if err == io.EOF {
			return nil
		}
		if err == errUnterminated {
			return d.truncateWAL(f, lastGood, rr.Offset())
		}
		var recErr *recordError
		if errors.As(err, &recErr) {
			// A framing/CRC error mid-stream cannot be told apart from a
			// torn final record by inspection — but a torn write can only
			// be at the tail. Scan forward: if another valid record
			// header follows, the damage is interior corruption and
			// truncating would silently drop durable mutations.
			if rest, readErr := io.ReadAll(rr.r); readErr == nil && !containsRecordHeader(rest) {
				return d.truncateWAL(f, lastGood, rr.Offset())
			}
			return fmt.Errorf("storage: wal %w", err)
		}
		if err != nil {
			return fmt.Errorf("storage: wal %s: %w", filepath.Base(path), err)
		}
		if err := state.apply(rec); err != nil {
			return fmt.Errorf("storage: wal %s:%d: %w", filepath.Base(path), rr.lineNo, err)
		}
		lastGood = rr.Offset()
		d.stats.ReplayedRecords++
	}
}

// containsRecordHeader reports whether a later record header appears in
// the remaining bytes — the interior-corruption test in replayWAL.
func containsRecordHeader(rest []byte) bool {
	s := string(rest)
	return strings.HasPrefix(s, recMagic+" ") || strings.Contains(s, "\n"+recMagic+" ")
}

// truncateWAL cuts the torn tail off at the last record boundary.
func (d *Durable) truncateWAL(f *os.File, lastGood, badStart int64) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if err := f.Truncate(lastGood); err != nil {
		return fmt.Errorf("storage: truncating torn wal tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return err
	}
	d.stats.TruncatedBytes = fi.Size() - lastGood
	_ = badStart
	return nil
}

// Recover returns the state rebuilt at open. It may be called once.
func (d *Durable) Recover() (*State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.recovered == nil {
		return nil, errors.New("storage: Recover called twice")
	}
	st := d.recovered
	d.recovered = nil
	return st, nil
}

// Append frames the record and writes it to the WAL in one write call,
// fsyncing when configured. A write error poisons the backend: the WAL
// tail is no longer trustworthy, so all further appends fail and the
// process must restart (and recover) to resume mutating.
func (d *Durable) Append(rec *Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failedErrLocked()
	}
	buf, err := encodeRecord(d.buf[:0], rec)
	if err != nil {
		return err
	}
	d.buf = buf[:0]
	n, err := d.wal.Write(buf)
	d.walBytes += int64(n)
	if err != nil {
		d.failed = err
		d.stats.LastError = err.Error()
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if d.opts.FsyncEach {
		if err := d.wal.Sync(); err != nil {
			d.failed = err
			d.stats.LastError = err.Error()
			return fmt.Errorf("storage: wal sync: %w", err)
		}
		d.stats.Syncs++
	}
	d.stats.WALRecords++
	return nil
}

// failedErrLocked renders the sticky failure. A poisoned (not merely
// closed) backend wraps ErrPoisoned so callers can tell "this backend
// is done for" from a transient per-record error.
func (d *Durable) failedErrLocked() error {
	if errors.Is(d.failed, errClosed) {
		return fmt.Errorf("storage: backend failed: %w", d.failed)
	}
	return fmt.Errorf("%w: %v", ErrPoisoned, d.failed)
}

// appendInjected is the fault-injection seam used by the Faulty
// wrapper: it simulates a write that fails after landing only the
// first tornBytes bytes of the framed record (0 = nothing landed),
// then poisons the backend exactly as a real write error would. The
// partial bytes really go to the WAL file, so a subsequent recovery
// exercises genuine torn-tail truncation.
func (d *Durable) appendInjected(rec *Record, tornBytes int, cause error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failedErrLocked()
	}
	buf, err := encodeRecord(d.buf[:0], rec)
	if err != nil {
		return err
	}
	d.buf = buf[:0]
	if tornBytes > len(buf) {
		tornBytes = len(buf)
	}
	if tornBytes > 0 {
		n, _ := d.wal.Write(buf[:tornBytes])
		d.walBytes += int64(n)
	}
	d.failed = cause
	d.stats.LastError = cause.Error()
	return fmt.Errorf("storage: wal append: %w", cause)
}

// injectFailure poisons the backend with the given error — the Faulty
// wrapper's seam for injected sync failures.
func (d *Durable) injectFailure(cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed == nil {
		d.failed = cause
		d.stats.LastError = cause.Error()
	}
}

// ShouldCompact reports whether the WAL has outgrown the last snapshot
// (and the configured minimum).
func (d *Durable) ShouldCompact() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed == nil && d.walBytes >= d.opts.CompactMinBytes && d.walBytes > d.snapBytes
}

// Compact dumps the full state to the next generation's snapshot
// (atomic temp-file + rename), rotates to its empty WAL, and deletes
// the previous generation.
func (d *Durable) Compact(state *State) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failedErrLocked()
	}
	sortState(state)
	next := d.seq + 1
	snapPath := filepath.Join(d.dir, snapName(next))
	if err := relio.WriteFileAtomic(snapPath, func(w io.Writer) error {
		return writeSnapshot(w, state)
	}); err != nil {
		d.stats.LastError = err.Error()
		return err
	}
	wal, err := os.OpenFile(filepath.Join(d.dir, walName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		d.stats.LastError = err.Error()
		return err
	}
	relio.SyncDir(d.dir)

	// Fsync the outgoing WAL before letting go of it: its records are
	// also in the snapshot, but the old generation stays authoritative
	// until the files swap below.
	d.wal.Sync()
	d.wal.Close()
	os.Remove(filepath.Join(d.dir, snapName(d.seq)))
	os.Remove(filepath.Join(d.dir, walName(d.seq)))

	d.wal = wal
	d.seq = next
	d.walBytes = 0
	if fi, err := os.Stat(snapPath); err == nil {
		d.snapBytes = fi.Size()
	}
	d.stats.Snapshots++
	return nil
}

// writeSnapshot emits the full state as a record stream: one create
// record per relation (carrying its epoch) and one putquery record per
// prepared-query definition.
func writeSnapshot(w io.Writer, state *State) error {
	if _, err := fmt.Fprintf(w, "# minesweeper catalog snapshot: %d relations, %d queries\n",
		len(state.Relations), len(state.Queries)); err != nil {
		return err
	}
	var buf []byte
	for i := range state.Relations {
		rs := &state.Relations[i]
		var err error
		buf, err = encodeRecord(buf[:0], &Record{
			Op: OpCreate, Name: rs.Name, Epoch: rs.Epoch, Vars: rs.Vars, Tuples: rs.Tuples,
		})
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for i := range state.Queries {
		def := state.Queries[i]
		var err error
		buf, err = encodeRecord(buf[:0], &Record{Op: OpPutQuery, Name: def.Name, Query: &def})
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Sync fsyncs the WAL.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failedErrLocked()
	}
	if err := d.wal.Sync(); err != nil {
		d.failed = err
		return err
	}
	d.stats.Syncs++
	return nil
}

// Close performs a final WAL sync and releases the backend.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if errors.Is(d.failed, errClosed) {
		return nil
	}
	var err error
	if d.failed == nil {
		if err = d.wal.Sync(); err == nil {
			d.stats.Syncs++
		}
	}
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	d.failed = errClosed
	return err
}

// Healthy reports the sticky failure state: nil while the backend can
// append, the poisoning error (wrapping ErrPoisoned) after a write
// failure, errClosed after Close.
func (d *Durable) Healthy() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed == nil {
		return nil
	}
	if errors.Is(d.failed, errClosed) {
		return d.failed
	}
	return fmt.Errorf("%w: %v", ErrPoisoned, d.failed)
}

// Stats returns a copy of the backend's counters.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Mode = "durable"
	st.Dir = d.dir
	st.Seq = d.seq
	st.WALBytes = d.walBytes
	st.SnapshotBytes = d.snapBytes
	return st
}

package minesweeper

import (
	"fmt"

	"minesweeper/internal/core"
	"minesweeper/internal/engine"
	"minesweeper/internal/ordered"
)

// Filter is one conjunct of a query's where-clause: a comparison between
// a query variable and an integer constant, e.g. {Var: "x", Op: "<",
// Value: 100}. Filters on the same variable conjoin (their ranges
// intersect); a contradictory conjunction makes the query provably empty
// and skips evaluation entirely. Supported operators: "<", "<=", ">",
// ">=", "=" (alias "==").
type Filter struct {
	Var   string `json:"var"`
	Op    string `json:"op"`
	Value int    `json:"value"`
}

// emptyBound is a bound no value satisfies (Lo > Hi).
var emptyBound = core.Bound{Lo: 1, Hi: 0}

// bound converts the filter to an inclusive value range. The ±1
// adjustments of the strict operators must not wrap at the int
// extremes: a filter no domain value can satisfy becomes the explicit
// empty bound rather than a silently-full one.
func (f Filter) bound() (core.Bound, error) {
	switch f.Op {
	case "<":
		if f.Value <= 0 {
			return emptyBound, nil // domain is non-negative
		}
		return core.Bound{Lo: 0, Hi: f.Value - 1}, nil
	case "<=":
		return core.Bound{Lo: 0, Hi: f.Value}, nil
	case ">":
		if f.Value >= ordered.PosInf-1 {
			return emptyBound, nil // nothing above the domain maximum
		}
		return core.Bound{Lo: f.Value + 1, Hi: ordered.PosInf - 1}, nil
	case ">=":
		return core.Bound{Lo: f.Value, Hi: ordered.PosInf - 1}, nil
	case "=", "==":
		return core.Bound{Lo: f.Value, Hi: f.Value}, nil
	}
	return core.Bound{}, fmt.Errorf("minesweeper: filter %s %s %d: unknown operator %q (want <, <=, >, >=, =)",
		f.Var, f.Op, f.Value, f.Op)
}

func (f Filter) String() string { return fmt.Sprintf("%s %s %d", f.Var, f.Op, f.Value) }

// AggOp is an aggregate function over the join result.
type AggOp int

const (
	// AggCount counts the join tuples of the group (COUNT(*)).
	AggCount AggOp = iota
	// AggSum sums the aggregated variable over the group.
	AggSum
	// AggMin takes the minimum of the aggregated variable.
	AggMin
	// AggMax takes the maximum of the aggregated variable.
	AggMax
	// AggCountDistinct counts the distinct values of the aggregated
	// variable within the group.
	AggCountDistinct
)

func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCountDistinct:
		return "countdistinct"
	}
	return fmt.Sprintf("aggop(%d)", int(op))
}

// engineOp maps the public op onto the executor's.
func (op AggOp) engineOp() (engine.AggOp, error) {
	switch op {
	case AggCount:
		return engine.AggCount, nil
	case AggSum:
		return engine.AggSum, nil
	case AggMin:
		return engine.AggMin, nil
	case AggMax:
		return engine.AggMax, nil
	case AggCountDistinct:
		return engine.AggCountDistinct, nil
	}
	return 0, fmt.Errorf("minesweeper: unknown aggregate op %v", op)
}

// Aggregate is one aggregate output column of a query: an operation
// applied per group to the join result, grouped by the query's
// projection list (the whole result forms a single group when the
// projection is empty). Var names the aggregated variable; it must be
// empty for AggCount ("count(*)") and set for every other op. Aggregate
// queries stream no tuples: only the per-group states are held, so the
// memory footprint is the number of groups, not the join size.
type Aggregate struct {
	Op  AggOp  `json:"op"`
	Var string `json:"var,omitempty"`
}

// Label renders the result-column name of the aggregate, e.g.
// "count(*)", "sum(y)", "count(distinct y)".
func (a Aggregate) Label() string {
	switch {
	case a.Op == AggCount && a.Var == "":
		return "count(*)"
	case a.Op == AggCountDistinct:
		return fmt.Sprintf("count(distinct %s)", a.Var)
	default:
		return fmt.Sprintf("%s(%s)", a.Op, a.Var)
	}
}

// buildShape resolves the effective shaping of an execution — the
// query's parsed clauses overridden by any set Options fields — into
// the executor plan: the output column names, the engine-level shape
// (nil for a pass-through run) and the per-position bounds of the
// extended evaluation order (hidden constants first, then gao).
func (q *Query) buildShape(gao []string, opts *Options) (outVars []string, sh *engine.Shape, err error) {
	sel := opts.Select
	if sel == nil {
		sel = q.sel
	}
	where := opts.Where
	if where == nil {
		where = q.where
	}
	aggs := opts.Aggregates
	if aggs == nil {
		aggs = q.aggs
	}

	ext := q.extendGAO(gao)
	pos := make(map[string]int, len(ext))
	for i, v := range ext {
		pos[v] = i
	}
	isVar := make(map[string]bool, len(q.vars))
	for _, v := range q.vars {
		isVar[v] = true
	}
	lookup := func(v, what string) (int, error) {
		if !isVar[v] {
			return 0, fmt.Errorf("minesweeper: %s references unknown variable %q", what, v)
		}
		p, ok := pos[v]
		if !ok {
			return 0, fmt.Errorf("minesweeper: %s variable %q not in GAO %v", what, v, gao)
		}
		return p, nil
	}

	// Bounds: constants pin their hidden positions, filters conjoin onto
	// their variables' positions.
	var bounds []core.Bound
	ensureBounds := func() {
		if bounds == nil {
			bounds = make([]core.Bound, len(ext))
			for i := range bounds {
				bounds[i] = core.FullBound()
			}
		}
	}
	if len(q.hidden) > 0 {
		ensureBounds()
		for i, h := range q.hidden {
			bounds[i] = core.Bound{Lo: h.val, Hi: h.val}
		}
	}
	for _, f := range where {
		p, err := lookup(f.Var, "filter")
		if err != nil {
			return nil, nil, err
		}
		b, err := f.bound()
		if err != nil {
			return nil, nil, err
		}
		ensureBounds()
		bounds[p] = bounds[p].Intersect(b)
	}
	if core.FullBounds(bounds) {
		bounds = nil // every filter was a no-op (e.g. x >= 0)
	}
	empty := false
	for _, b := range bounds {
		if b.Empty() {
			empty = true
			break
		}
	}

	// Projection: the select list; all variables when unspecified — or
	// no group-by columns at all for a bare aggregate query.
	proj := sel
	if proj == nil {
		if len(aggs) > 0 {
			proj = []string{}
		} else {
			proj = q.vars
		}
	}
	if len(proj) == 0 && len(aggs) == 0 {
		return nil, nil, fmt.Errorf("minesweeper: empty projection without aggregates selects nothing")
	}
	cols := make([]int, len(proj))
	projSet := make(map[string]bool, len(proj))
	for i, v := range proj {
		if projSet[v] {
			return nil, nil, fmt.Errorf("minesweeper: projection repeats variable %q", v)
		}
		projSet[v] = true
		p, err := lookup(v, "projection")
		if err != nil {
			return nil, nil, err
		}
		cols[i] = p
	}
	// Dedup is needed exactly when a real variable is projected away:
	// dropped constants are single-valued and cannot create duplicates.
	distinct := false
	for _, v := range q.vars {
		if !projSet[v] {
			distinct = true
			break
		}
	}

	outVars = append([]string(nil), proj...)
	var eAggs []engine.Aggregate
	for _, a := range aggs {
		op, err := a.Op.engineOp()
		if err != nil {
			return nil, nil, err
		}
		col := -1
		if a.Op == AggCount {
			if a.Var != "" {
				if _, err := lookup(a.Var, "aggregate"); err != nil {
					return nil, nil, err
				}
			}
		} else {
			if a.Var == "" {
				return nil, nil, fmt.Errorf("minesweeper: aggregate %s needs a variable", a.Op)
			}
			c, err := lookup(a.Var, "aggregate")
			if err != nil {
				return nil, nil, err
			}
			col = c
		}
		eAggs = append(eAggs, engine.Aggregate{Op: op, Col: col})
		outVars = append(outVars, a.Label())
	}

	sh = &engine.Shape{
		Cols:       cols,
		Distinct:   distinct && len(eAggs) == 0,
		Aggregates: eAggs,
		Bounds:     bounds,
		Empty:      empty,
	}
	if sh.Identity() {
		sh = nil
	}
	return outVars, sh, nil
}

package baseline

import (
	"context"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// trieIter is a linear iterator over one level of a relation search tree,
// supporting the leapfrog operations open/up/next/seek (Veldhuizen [53]).
type trieIter struct {
	tree  *reltree.Tree
	stats *certificate.Stats
	// stack of (node, position) pairs; depth = len(stack)-1 after open.
	nodes []*reltree.Node
	pos   []int
}

func newTrieIter(t *reltree.Tree, stats *certificate.Stats) *trieIter {
	return &trieIter{tree: t, stats: stats}
}

func (it *trieIter) cur() (*reltree.Node, int) {
	return it.nodes[len(it.nodes)-1], it.pos[len(it.pos)-1]
}

// atEnd reports whether the iterator is past the last value at this level.
func (it *trieIter) atEnd() bool {
	n, p := it.cur()
	return p >= len(n.Values)
}

// key returns the current value at this level.
func (it *trieIter) key() int {
	n, p := it.cur()
	return n.Values[p]
}

// next advances to the following value at this level.
func (it *trieIter) next() {
	it.pos[len(it.pos)-1]++
}

// seek advances to the least value ≥ v at this level (galloping search,
// counted as one FindGap-equivalent probe).
func (it *trieIter) seek(v int) {
	n, p := it.cur()
	if it.stats != nil {
		it.stats.FindGaps++
	}
	// Gallop from the current position.
	lo, hi := p, p+1
	for hi < len(n.Values) && n.Values[hi] < v {
		if it.stats != nil {
			it.stats.Comparisons++
		}
		lo = hi
		hi = p + 2*(hi-p)
	}
	if hi > len(n.Values) {
		hi = len(n.Values)
	}
	// Binary search in (lo, hi].
	for lo < hi {
		mid := (lo + hi) / 2
		if it.stats != nil {
			it.stats.Comparisons++
		}
		if n.Values[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos[len(it.pos)-1] = lo
}

// open descends one trie level: from the virtual pre-root to the first
// attribute, or into the children of the current value.
func (it *trieIter) open() {
	if len(it.nodes) == 0 {
		it.nodes = append(it.nodes, it.tree.Root())
		it.pos = append(it.pos, 0)
		return
	}
	n, p := it.cur()
	it.nodes = append(it.nodes, n.Children[p])
	it.pos = append(it.pos, 0)
}

// up returns to the parent level.
func (it *trieIter) up() {
	it.nodes = it.nodes[:len(it.nodes)-1]
	it.pos = it.pos[:len(it.pos)-1]
}

// Leapfrog evaluates the join with the Leapfrog Triejoin algorithm [53],
// calling emit for every output tuple.
func Leapfrog(p *core.Problem, stats *certificate.Stats, emit func([]int)) error {
	return LeapfrogStream(context.Background(), p, stats, func(t []int) bool {
		emit(t)
		return true
	})
}

// LeapfrogStream evaluates the join with the Leapfrog Triejoin algorithm
// [53]: a backtracking search over the GAO where, at each attribute, the
// iterators of all atoms containing that attribute are intersected with
// the leapfrog seek dance. Worst-case optimal, but ω(|C|) on the path
// families of Appendix J.
//
// Tuples stream in GAO-lexicographic order as the search discovers them.
// emit returns false to stop the enumeration (the call returns nil); a
// cancelled context stops it with ctx.Err(), checked once per search
// level.
func LeapfrogStream(ctx context.Context, p *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
	p.Attach(stats)
	defer p.Detach()
	n := len(p.GAO)
	// For each GAO level, the atoms participating (their iterator index).
	levelAtoms := make([][]int, n)
	for ai := range p.Atoms {
		for _, gp := range p.Atoms[ai].Positions {
			levelAtoms[gp] = append(levelAtoms[gp], ai)
		}
	}
	iters := make([]*trieIter, len(p.Atoms))
	for i := range p.Atoms {
		iters[i] = newTrieIter(p.Atoms[i].Tree, stats)
	}
	t := make([]int, n)
	var rec func(level int) error
	rec = func(level int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if level == n {
			if stats != nil {
				stats.Outputs++
			}
			if !emit(append([]int(nil), t...)) {
				return errStop
			}
			return nil
		}
		parts := levelAtoms[level]
		if len(parts) == 0 {
			// Cannot happen: NewProblem rejects uncovered attributes.
			t[level] = 0
			return rec(level + 1)
		}
		for _, ai := range parts {
			iters[ai].open()
		}
		defer func() {
			for _, ai := range parts {
				iters[ai].up()
			}
		}()
		bound := core.FullBound()
		if p.Bounds != nil {
			bound = p.Bounds[level]
			if bound.Lo > 0 {
				// Pushed-down selection: leap every iterator straight to
				// the lower bound before intersecting.
				for _, ai := range parts {
					iters[ai].seek(bound.Lo)
				}
			}
		}
		// Leapfrog intersection.
		for {
			// max of current keys; if any iterator is exhausted, done.
			maxKey, anyEnd := ordered.NegInf, false
			for _, ai := range parts {
				if iters[ai].atEnd() {
					anyEnd = true
					break
				}
				if k := iters[ai].key(); k > maxKey {
					maxKey = k
				}
			}
			if anyEnd || maxKey > bound.Hi {
				return nil
			}
			agree := true
			for _, ai := range parts {
				if iters[ai].key() != maxKey {
					iters[ai].seek(maxKey)
					agree = false
					break
				}
			}
			if !agree {
				continue
			}
			t[level] = maxKey
			if err := rec(level + 1); err != nil {
				return err
			}
			for _, ai := range parts {
				iters[ai].next()
			}
			// After next(), only the advanced iterators changed; loop
			// recomputes the intersection from scratch.
		}
	}
	return sweep(rec(0))
}

// LeapfrogAll runs Leapfrog and collects the outputs.
func LeapfrogAll(p *core.Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := Leapfrog(p, stats, func(t []int) { out = append(out, t) })
	return out, err
}

package core

import (
	"context"
	"fmt"
	"sync"

	"minesweeper/internal/arena"
	"minesweeper/internal/cds"
	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// Minesweeper evaluates the join with Algorithm 2 of the paper, calling
// emit for every output tuple (in GAO order). The stats receiver may be
// nil. Probe points come from the ConstraintTree CDS, whose chain-based
// getProbePoint is near-optimal for β-acyclic GAOs (Theorem 2.7) and
// falls back to the shadow-chain walk for general GAOs (Theorem 5.1).
func Minesweeper(p *Problem, stats *certificate.Stats, emit func([]int)) error {
	return MinesweeperStream(p, stats, func(t []int) bool {
		emit(t)
		return true
	})
}

// MinesweeperStream is Minesweeper with early termination: emit returns
// false to stop the evaluation after the current tuple. Because
// Minesweeper discovers outputs one probe point at a time (it never
// builds intermediate results), stopping after k tuples costs only the
// work for those k probes plus the constraints learned so far — the
// anytime behaviour that worst-case-optimal algorithms lack.
//
// Probe points arrive in increasing lexicographic order (GetProbePoint
// always returns the smallest active point and the ruled-out region only
// grows), so output tuples stream in GAO-lexicographic order.
func MinesweeperStream(p *Problem, stats *certificate.Stats, emit func([]int) bool) error {
	return MinesweeperStreamContext(context.Background(), p, stats, emit)
}

// tupleBlockSize is how many output tuples share one flat backing array.
// Emitted tuples are retainable by the receiver — each is a distinct
// carve of a block that is never reused — but cost one allocation per
// block instead of one per tuple.
const tupleBlockSize = 128

// tupleArena carves retainable tuple copies out of flat blocks.
type tupleArena struct {
	width int
	buf   []int
}

func (a *tupleArena) copy(t []int) []int {
	if cap(a.buf)-len(a.buf) < a.width {
		a.buf = make([]int, 0, tupleBlockSize*a.width)
	}
	start := len(a.buf)
	a.buf = append(a.buf, t...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// MinesweeperStreamContext is MinesweeperStream with cooperative
// cancellation: the context is checked once per probe point (the outer
// loop of Algorithm 2), and evaluation stops with ctx.Err() when it is
// cancelled or its deadline passes.
//
// Emitted tuples are owned by the receiver (they are never reused), and
// are block-allocated: retaining one keeps its whole block of up to
// tupleBlockSize tuples reachable.
func MinesweeperStreamContext(ctx context.Context, p *Problem, stats *certificate.Stats, emit func([]int) bool) error {
	arena := tupleArena{width: len(p.GAO)}
	return minesweeperShared(ctx, p, stats, func(t []int) bool {
		return emit(arena.copy(t))
	})
}

// treePools holds per-arity free lists of CDS trees. A released tree
// keeps its node/pattern arenas and scratch buffers, so the warm path of
// a served workload re-runs the same query shape without rebuilding or
// reallocating its constraint store.
var treePools sync.Map // int (arity) -> *sync.Pool

func arityPool(n int) *sync.Pool {
	// Load-first: LoadOrStore's value argument is built eagerly, so
	// going through it on every call would allocate a discarded
	// sync.Pool on the warm path.
	if p, ok := treePools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := treePools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

func acquireTree(n int) *cds.Tree {
	if v := arityPool(n).Get(); v != nil {
		tr := v.(*cds.Tree)
		tr.Reset()
		return tr
	}
	return cds.NewTree(n)
}

func releaseTree(tr *cds.Tree) {
	tr.SetStats(nil)
	tr.SetTrace(nil)
	arityPool(tr.Attrs()).Put(tr)
}

// msScratch is the per-run working set of the outer algorithm, pooled
// across executions: the per-atom exploration trees and index-path
// buffers of Algorithm 2 lines 4–10 and the shared constraint-prefix
// buffer (safe to reuse per insertion — InsConstraint never retains its
// input). Steady-state executions allocate nothing from here.
type msScratch struct {
	expl   []*gapNode
	atoms  []atomScratch
	prefix cds.Pattern
}

var scratchPool = sync.Pool{New: func() any { return &msScratch{} }}

func (sc *msScratch) prepare(p *Problem, n int) {
	if cap(sc.expl) < len(p.Atoms) {
		sc.expl = make([]*gapNode, len(p.Atoms))
		sc.atoms = make([]atomScratch, len(p.Atoms))
	}
	sc.expl = sc.expl[:len(p.Atoms)]
	sc.atoms = sc.atoms[:len(p.Atoms)]
	for i := range p.Atoms {
		k := p.Atoms[i].Tree.Arity()
		if cap(sc.atoms[i].idx) < k {
			sc.atoms[i].idx = make([]int, 0, k)
			sc.atoms[i].pathVals = make([]int, 0, k)
			sc.atoms[i].widx = make([]int, 0, k)
		}
		if cap(sc.atoms[i].dims) < n {
			sc.atoms[i].dims = make([]ordered.Range, 0, n)
		}
		sc.atoms[i].lastDepth = -1
		sc.atoms[i].lastLo = 0
		sc.atoms[i].lastHi = 0
		sc.atoms[i].streak = 0
	}
	if cap(sc.prefix) < n-1 {
		sc.prefix = make(cds.Pattern, n-1)
	}
	sc.prefix = sc.prefix[:n-1]
}

// minesweeperShared is the engine core. emit receives the CDS probe
// scratch directly — valid only until emit returns — so materializing
// callers go through a copying wrapper (MinesweeperStreamContext).
func minesweeperShared(ctx context.Context, p *Problem, stats *certificate.Stats, emit func([]int) bool) error {
	n := len(p.GAO)
	tree := acquireTree(n)
	defer releaseTree(tree)
	tree.SetStats(stats)
	p.Attach(stats)
	defer p.Detach()

	sc := scratchPool.Get().(*msScratch)
	defer scratchPool.Put(sc)
	sc.prepare(p, n)
	seedBounds(tree, p.Bounds, sc.prefix)

	for t := tree.GetProbePoint(); t != nil; t = tree.GetProbePoint() {
		if err := ctx.Err(); err != nil {
			return err
		}
		output := true
		for i := range p.Atoms {
			sc.expl[i] = exploreAtom(&p.Atoms[i], t, &sc.atoms[i])
			if !sc.expl[i].allHighMatch {
				output = false
			}
		}
		if output {
			if stats != nil {
				stats.Outputs++
			}
			keep := emit(t)
			// Rule the output tuple out: ⟨t1,…,t_{n-1},(t_n−1, t_n+1)⟩.
			prefix := sc.prefix[:n-1]
			for j := 0; j < n-1; j++ {
				prefix[j] = cds.Eq(t[j])
			}
			lo, hi := ruledOutInterval(t[n-1])
			tree.InsConstraint(cds.Constraint{Prefix: prefix, Lo: lo, Hi: hi})
			if !keep {
				return nil
			}
			continue
		}
		// Insert every discovered gap (Algorithm 2 lines 15–20).
		covered := false
		for i := range p.Atoms {
			if insertGaps(tree, &p.Atoms[i], sc.expl[i], &sc.atoms[i], sc.prefix, p.Debug, !p.DisableBoxes, t) {
				covered = true
			}
		}
		if p.Debug && !covered {
			return fmt.Errorf("core: probe point %v not covered by any discovered gap — Minesweeper would not terminate", t)
		}
	}
	return nil
}

// seedBounds pushes per-position value bounds into the CDS before the
// first probe: for a position restricted to [Lo, Hi], the open intervals
// (−∞, Lo) and (Hi, +∞) under the all-wildcard prefix rule out every
// disallowed value, so probe points — and therefore all index
// exploration work — never leave the selected region. This is what
// makes a constant-selective query cost work proportional to its
// selectivity instead of the full join. prefixBuf is scratch of length
// ≥ len(bounds)-1 (InsConstraint never retains its input).
func seedBounds(tree *cds.Tree, bounds []Bound, prefixBuf cds.Pattern) {
	if bounds == nil {
		return
	}
	for i, b := range bounds {
		if b.Full() {
			continue
		}
		prefix := prefixBuf[:i]
		for j := range prefix {
			prefix[j] = cds.Star
		}
		if b.Lo > 0 {
			tree.InsConstraint(cds.Constraint{Prefix: prefix, Lo: ordered.NegInf, Hi: b.Lo})
		}
		if b.Hi < ordered.PosInf-1 {
			tree.InsConstraint(cds.Constraint{Prefix: prefix, Lo: b.Hi, Hi: ordered.PosInf})
		}
	}
}

// ruledOutInterval returns the open interval (lo, hi) that rules out
// exactly the value v of an emitted tuple's last coordinate. The naive
// (v-1, v+1) overflows when v sits at the int extremes, so endpoints
// are clamped to the ±∞ sentinels: values at or beyond a sentinel keep
// the sentinel itself as that endpoint, which still covers v because
// the CDS treats sentinel endpoints as unbounded.
func ruledOutInterval(v int) (lo, hi int) {
	if v < ordered.NegInf {
		v = ordered.NegInf
	}
	if v > ordered.PosInf {
		v = ordered.PosInf
	}
	lo, hi = ordered.NegInf, ordered.PosInf
	if v > ordered.NegInf {
		lo = v - 1
	}
	if v < ordered.PosInf {
		hi = v + 1
	}
	return lo, hi
}

// gapNode is the exploration tree of one atom around the current probe
// point: node at depth p holds the FindGap result for the index prefix
// reached by one of the {ℓ,h}^p vectors of Algorithm 2. When lo == hi the
// ℓ- and h-branches coincide and are shared. Nodes live in the per-atom
// arena and are recycled every probe iteration.
type gapNode struct {
	lo, hi       int
	loVal, hiVal int
	loChild      *gapNode
	hiChild      *gapNode
	allHighMatch bool // all-h path below (and including) this level hits t exactly
}

// atomScratch is the reusable exploration state of one atom: the index
// path of the current {ℓ,h} vector, the value path used when emitting
// constraints, and the gap-node arena (rewound every probe point, so
// one exploration allocates only when it outgrows every previous one).
// widx mirrors pathVals with child indexes during the constraint walk so
// box widening can enumerate siblings by index arithmetic; dims backs
// the box dimension ranges. lastDepth/lastLo/lastHi/streak implement the
// widening trigger: re-discovering the SAME gap on consecutive probes is
// the signature of a clustered grind (each probe advances one parent
// value into the same multi-value rectangle), so the streak of repeats
// gates widening and sets its sibling-scan allowance. Sparse workloads
// re-discover a gap essentially never, so they pay only the comparison.
type atomScratch struct {
	idx                               []int
	pathVals                          []int
	widx                              []int
	dims                              []ordered.Range
	lastDepth, lastLo, lastHi, streak int
	arena                             arena.Arena[gapNode]
}

// boxScanBase is the sibling-scan allowance (per direction) of the first
// widening in a streak; the allowance doubles with each further repeat,
// so a cluster of width W is covered by O(log W) widenings whose scans
// total O(W) FindGaps.
const boxScanBase = 8

// noteGap records a discovered gap and reports the scan allowance this
// streak has earned: 0 on first sight (no widening — one repeat must
// prove the grind before any sibling is probed).
func (sc *atomScratch) noteGap(p, loVal, hiVal int) int {
	if p != sc.lastDepth || loVal != sc.lastLo || hiVal != sc.lastHi {
		sc.lastDepth, sc.lastLo, sc.lastHi, sc.streak = p, loVal, hiVal, 0
		return 0
	}
	if sc.streak < 24 {
		sc.streak++
	}
	return boxScanBase << (sc.streak - 1)
}

// exploreAtom performs the {ℓ,h}^p FindGap sweep of Algorithm 2 lines
// 4–10 for one atom around probe point t, into the atom's scratch.
// The returned tree is valid until the atom's next exploration.
func exploreAtom(a *Atom, t []int, sc *atomScratch) *gapNode {
	sc.arena.Rewind()
	sc.idx = sc.idx[:0]
	return exploreRec(a, t, sc, 0)
}

func exploreRec(a *Atom, t []int, sc *atomScratch, p int) *gapNode {
	k := a.Tree.Arity()
	idx := sc.idx // current index prefix, length p; cap ≥ k, never moves
	target := t[a.Positions[p]]
	lo, hi := a.Tree.FindGap(idx, target)
	nd := sc.arena.Alloc()
	*nd = gapNode{} // arena slots are recycled, not zeroed
	nd.lo, nd.hi = lo, hi
	nd.loVal = a.Tree.Value(append(idx, lo))
	nd.hiVal = a.Tree.Value(append(idx, hi))
	exact := lo == hi // target present at this level
	if p == k-1 {
		nd.allHighMatch = exact
		return nd
	}
	if a.Tree.InRange(idx, lo) {
		sc.idx = append(idx, lo)
		nd.loChild = exploreRec(a, t, sc, p+1)
		sc.idx = idx
	}
	if exact {
		nd.hiChild = nd.loChild
	} else if a.Tree.InRange(idx, hi) {
		sc.idx = append(idx, hi)
		nd.hiChild = exploreRec(a, t, sc, p+1)
		sc.idx = idx
	}
	nd.allHighMatch = exact && nd.hiChild != nil && nd.hiChild.allHighMatch
	return nd
}

// insertGaps walks the exploration tree and inserts one constraint per
// node (Algorithm 2 lines 15–20): the pattern fixes the values along the
// index path at the atom's attribute positions, wildcards elsewhere, and
// the interval is the discovered gap at the next attribute position.
// The prefix buffer is reused per constraint (the CDS interns what it
// keeps). When debug is set it reports whether any inserted constraint
// covers the probe point t — the termination invariant. With boxes
// allowed, a gap found under an index path is widened across the
// parent's siblings into a box constraint when the same gap holds
// under them too (the common case on clustered composite indexes).
func insertGaps(tree *cds.Tree, a *Atom, root *gapNode, sc *atomScratch, prefixBuf cds.Pattern, debug, boxes bool, t []int) bool {
	sc.pathVals = sc.pathVals[:0]
	sc.widx = sc.widx[:0]
	return walkGaps(tree, a, root, 0, sc, prefixBuf, debug, boxes, t)
}

func walkGaps(tree *cds.Tree, a *Atom, nd *gapNode, p int, sc *atomScratch, prefixBuf cds.Pattern, debug, boxes bool, t []int) bool {
	if nd == nil {
		return false
	}
	covered := false
	if nd.loVal < nd.hiVal { // non-empty gap
		emitted := false
		if boxes && p > 0 {
			if scan := sc.noteGap(p, nd.loVal, nd.hiVal); scan > 0 {
				if b, ok := tryWidenBox(a, sc, p, nd.loVal, nd.hiVal, scan, prefixBuf); ok {
					if debug && b.Covers(t) {
						covered = true
					}
					tree.InsBox(b)
					emitted = true
				}
			}
		}
		if !emitted {
			prefixLen := a.Positions[p]
			prefix := prefixBuf[:prefixLen]
			for j := range prefix {
				prefix[j] = cds.Star
			}
			for j := 0; j < p; j++ {
				prefix[a.Positions[j]] = cds.Eq(sc.pathVals[j])
			}
			c := cds.Constraint{Prefix: prefix, Lo: nd.loVal, Hi: nd.hiVal}
			if debug && c.Covers(t) {
				covered = true
			}
			tree.InsConstraint(c)
		}
	}
	if p == a.Tree.Arity()-1 {
		return covered
	}
	if nd.loChild != nil && nd.loVal > ordered.NegInf {
		sc.pathVals = append(sc.pathVals, nd.loVal)
		sc.widx = append(sc.widx, nd.lo)
		if walkGaps(tree, a, nd.loChild, p+1, sc, prefixBuf, debug, boxes, t) {
			covered = true
		}
		sc.pathVals = sc.pathVals[:p]
		sc.widx = sc.widx[:p]
	}
	if nd.hiChild != nil && nd.hiChild != nd.loChild && nd.hiVal < ordered.PosInf {
		sc.pathVals = append(sc.pathVals, nd.hiVal)
		sc.widx = append(sc.widx, nd.hi)
		if walkGaps(tree, a, nd.hiChild, p+1, sc, prefixBuf, debug, boxes, t) {
			covered = true
		}
		sc.pathVals = sc.pathVals[:p]
		sc.widx = sc.widx[:p]
	}
	return covered
}

// tryWidenBox checks whether the gap (loVal, hiVal), discovered at atom
// level p under the index path sc.widx[:p], also holds under adjacent
// siblings of the level-(p-1) index, and if so returns the box ruling
// out the whole rectangle: the widened value range at the parent
// attribute × full ranges at the GAO positions the atom skips × the gap
// at the atom's level-p attribute. Each direction is validated with one
// reltree.GapRun — a single prefix descent that probes the siblings'
// contiguous sorted runs with seeded doubling searches and stops at the
// first sibling where the gap breaks — instead of one full FindGap per
// sibling, so a widening costs O(1) index descents regardless of how
// many siblings it absorbs. Values BETWEEN sibling values are absent
// from the atom under this path altogether, so the widened range runs
// from the nearest unverified neighbor on each side (exclusive) —
// exhausting a side extends it to ±∞. The validation is capped at
// `scan` siblings per direction (the streak allowance from noteGap),
// bounding the cost of one widening while letting a sustained grind
// earn exponentially wider boxes. The returned box (over scratch
// buffers; InsBox does not retain them) covers everything the classic
// per-path interval constraint would have, so the caller may emit it
// instead.
func tryWidenBox(a *Atom, sc *atomScratch, p int, loVal, hiVal, scan int, prefixBuf cds.Pattern) (cds.BoxConstraint, bool) {
	if ordered.OpenToRange(loVal, hiVal).Empty() {
		return cds.BoxConstraint{}, false
	}
	if loVal <= ordered.NegInf && hiVal >= ordered.PosInf {
		return cds.BoxConstraint{}, false
	}
	widx := sc.widx
	ci := widx[p-1]
	parent := widx[:p-1]
	fan := a.Tree.Fanout(parent)
	loC, hiC := ci, ci
	if up := fan - 1 - ci; up > 0 {
		if up > scan {
			up = scan
		}
		hiC += a.Tree.GapRun(parent, ci+1, ci+up, loVal, hiVal)
	}
	// Scan downward only on the streak's first widening: a continuation
	// widening sits just past the previous box of the same streak, so the
	// siblings below were already validated and covered by it — paying
	// index probes to re-include them buys nothing.
	downScan := scan
	if sc.streak > 1 {
		downScan = 0
	}
	if down := ci; down > 0 && downScan > 0 {
		if down > downScan {
			down = downScan
		}
		loC -= a.Tree.GapRun(parent, ci-1, ci-down, loVal, hiVal)
	}
	if loC == ci && hiC == ci {
		return cds.BoxConstraint{}, false
	}
	loNbr := a.Tree.Value(append(parent, loC-1))
	hiNbr := a.Tree.Value(append(parent, hiC+1))
	prefixLen := a.Positions[p-1]
	prefix := prefixBuf[:prefixLen]
	for j := range prefix {
		prefix[j] = cds.Star
	}
	for j := 0; j < p-1; j++ {
		prefix[a.Positions[j]] = cds.Eq(sc.pathVals[j])
	}
	span := a.Positions[p] - a.Positions[p-1] + 1
	dims := sc.dims[:span]
	dims[0] = ordered.OpenToRange(loNbr, hiNbr)
	for j := 1; j < span-1; j++ {
		dims[j] = ordered.Range{Lo: ordered.NegInf, Hi: ordered.PosInf}
	}
	dims[span-1] = ordered.OpenToRange(loVal, hiVal)
	return cds.BoxConstraint{Prefix: prefix, Dims: dims}, true
}

// MinesweeperAll runs Minesweeper and collects the output tuples.
func MinesweeperAll(p *Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := Minesweeper(p, stats, func(t []int) { out = append(out, t) })
	return out, err
}

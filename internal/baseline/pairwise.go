// Package baseline implements the comparison join algorithms of the
// paper: the classical pairwise operators (hash join, sort-merge join,
// left-deep plans — the "natural class of comparison-based join
// algorithms" of Section 1), Yannakakis's algorithm for α-acyclic queries
// [55], and the worst-case-optimal algorithms Leapfrog Triejoin [53] and
// NPRR-style generic join [40] that Appendix J proves are ω(|C|) on
// β-acyclic path families.
//
// All algorithms use set semantics and produce tuples over the union of
// the query's attributes in GAO order, so their outputs are directly
// comparable with Minesweeper's.
package baseline

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// table is an intermediate relation with named columns.
type table struct {
	attrs  []string
	tuples [][]int
}

func tableFromSpec(spec core.AtomSpec) *table {
	t := &table{attrs: append([]string(nil), spec.Attrs...)}
	seen := map[string]bool{}
	for _, tup := range spec.Tuples {
		k := rowKey(tup)
		if !seen[k] {
			seen[k] = true
			t.tuples = append(t.tuples, append([]int(nil), tup...))
		}
	}
	return t
}

func rowKey(tup []int) string {
	var b strings.Builder
	for _, v := range tup {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte('|')
	}
	return b.String()
}

// common returns the shared attribute names and their column indexes in
// each table.
func common(a, b *table) (names []string, ia, ib []int) {
	posB := map[string]int{}
	for j, attr := range b.attrs {
		posB[attr] = j
	}
	for i, attr := range a.attrs {
		if j, ok := posB[attr]; ok {
			names = append(names, attr)
			ia = append(ia, i)
			ib = append(ib, j)
		}
	}
	return
}

func projectKey(tup []int, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(strconv.Itoa(tup[c]))
		b.WriteByte('|')
	}
	return b.String()
}

// HashJoin computes the natural join of two tables by hashing b on the
// shared attributes and probing with a. Output columns: a's attributes
// followed by b's non-shared attributes. Counts one comparison per probe.
func HashJoin(a, b *table, stats *certificate.Stats) *table {
	_, ia, ib := common(a, b)
	return joinInto(a, b, ia, ib, stats)
}

func joinInto(a, b *table, ia, ib []int, stats *certificate.Stats) *table {
	// extra: b's columns not shared with a.
	shared := map[int]bool{}
	for _, j := range ib {
		shared[j] = true
	}
	var extraCols []int
	out := &table{attrs: append([]string(nil), a.attrs...)}
	for j, attr := range b.attrs {
		if !shared[j] {
			extraCols = append(extraCols, j)
			out.attrs = append(out.attrs, attr)
		}
	}
	idx := make(map[string][][]int, len(b.tuples))
	for _, tb := range b.tuples {
		k := projectKey(tb, ib)
		idx[k] = append(idx[k], tb)
	}
	for _, ta := range a.tuples {
		k := projectKey(ta, ia)
		if stats != nil {
			stats.Comparisons++
		}
		for _, tb := range idx[k] {
			row := make([]int, 0, len(out.attrs))
			row = append(row, ta...)
			for _, c := range extraCols {
				row = append(row, tb[c])
			}
			out.tuples = append(out.tuples, row)
		}
	}
	return out.dedup()
}

func (t *table) dedup() *table {
	seen := map[string]bool{}
	keep := t.tuples[:0]
	for _, tup := range t.tuples {
		k := rowKey(tup)
		if !seen[k] {
			seen[k] = true
			keep = append(keep, tup)
		}
	}
	t.tuples = keep
	return t
}

// SortMergeJoin computes the same natural join by sorting both sides on
// the shared attributes and merging. It exists as an independent pairwise
// oracle and to model the sort-merge member of the comparison class.
func SortMergeJoin(a, b *table, stats *certificate.Stats) *table {
	_, ia, ib := common(a, b)
	less := func(tuples [][]int, cols []int) func(i, j int) bool {
		return func(i, j int) bool {
			for _, c := range cols {
				if tuples[i][c] != tuples[j][c] {
					return tuples[i][c] < tuples[j][c]
				}
			}
			return false
		}
	}
	as := append([][]int(nil), a.tuples...)
	bs := append([][]int(nil), b.tuples...)
	sort.Slice(as, less(as, ia))
	sort.Slice(bs, less(bs, ib))
	cmp := func(ta, tb []int) int {
		if stats != nil {
			stats.Comparisons++
		}
		for x := range ia {
			if ta[ia[x]] != tb[ib[x]] {
				if ta[ia[x]] < tb[ib[x]] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	shared := map[int]bool{}
	for _, j := range ib {
		shared[j] = true
	}
	var extraCols []int
	out := &table{attrs: append([]string(nil), a.attrs...)}
	for j, attr := range b.attrs {
		if !shared[j] {
			extraCols = append(extraCols, j)
			out.attrs = append(out.attrs, attr)
		}
	}
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch c := cmp(as[i], bs[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the equal runs.
			i2 := i
			for i2 < len(as) && cmp(as[i2], bs[j]) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(bs) && cmp(as[i], bs[j2]) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					row := make([]int, 0, len(out.attrs))
					row = append(row, as[x]...)
					for _, c := range extraCols {
						row = append(row, bs[y][c])
					}
					out.tuples = append(out.tuples, row)
				}
			}
			i, j = i2, j2
		}
	}
	return out.dedup()
}

// projectTo reorders/selects columns to the given attribute order.
func (t *table) projectTo(attrs []string) (*table, error) {
	cols := make([]int, len(attrs))
	pos := map[string]int{}
	for j, a := range t.attrs {
		pos[a] = j
	}
	for i, a := range attrs {
		j, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("baseline: projection attribute %q missing from %v", a, t.attrs)
		}
		cols[i] = j
	}
	out := &table{attrs: append([]string(nil), attrs...)}
	for _, tup := range t.tuples {
		row := make([]int, len(cols))
		for i, c := range cols {
			row[i] = tup[c]
		}
		out.tuples = append(out.tuples, row)
	}
	return out.dedup(), nil
}

// LeftDeepHashJoin evaluates the query with a left-deep plan over the
// atoms in the given order using pairwise hash joins, returning tuples in
// GAO attribute order. It is the library's correctness oracle: simple,
// independent of the index machinery, and obviously correct.
func LeftDeepHashJoin(gao []string, atoms []core.AtomSpec, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := LeftDeepHashJoinStream(context.Background(), gao, atoms, stats, func(t []int) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LeftDeepHashJoinStream runs the left-deep pairwise hash plan and
// streams the sorted result. Like every materializing plan, it has no
// true anytime behaviour — the plan runs to completion before the first
// tuple appears — but the emission obeys the uniform streaming contract:
// GAO-lexicographic order, emit false stops, and the context is checked
// between pairwise joins and per emitted tuple.
func LeftDeepHashJoinStream(ctx context.Context, gao []string, atoms []core.AtomSpec, stats *certificate.Stats, emit func([]int) bool) error {
	if len(atoms) == 0 {
		return fmt.Errorf("baseline: no atoms")
	}
	acc := tableFromSpec(atoms[0])
	for _, spec := range atoms[1:] {
		if err := ctx.Err(); err != nil {
			return err
		}
		acc = HashJoin(acc, tableFromSpec(spec), stats)
	}
	final, err := acc.projectTo(gao)
	if err != nil {
		return err
	}
	SortTuples(final.tuples)
	return emitSorted(ctx, final.tuples, stats, emit)
}

// SortTuples sorts tuples lexicographically in place (canonical output
// order used to compare engines).
func SortTuples(tuples [][]int) {
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

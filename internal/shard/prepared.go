package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	minesweeper "minesweeper"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/engine"
)

// scatterBuf is the per-shard gather channel depth: deep enough to
// decouple a shard's probe loop from merge scheduling hiccups, shallow
// enough that cancellation stops wasted work quickly.
const scatterBuf = 64

// healthCheckEvery is how many substream tuples pass between replica
// health probes. Raw tuples come out of in-memory fragments, so a dead
// backend never fails the read itself — the substream has to ask.
const healthCheckEvery = 32

// Prepared is the sharded counterpart of minesweeper.PreparedQuery: it
// holds the full (gathered) prepared query — which serves planning,
// Explain and the fallback path — plus, when the plan can scatter, one
// per-shard prepared query with the query's sliced atom rebound to that
// shard's serving-replica fragment. Execution fans the per-shard raw
// streams out, merges them with a loser tree into GAO-lex order, and
// applies the shaping (projection, bounds, distinct, aggregates, limit)
// once on the gathered side, so the emitted stream is byte-identical to
// an unsharded run.
type Prepared struct {
	cat  *Catalog
	q    *minesweeper.Query
	opts minesweeper.Options
	full *minesweeper.PreparedQuery

	mu  sync.Mutex
	cur *scatterPlan
}

// scatterPlan pins one scatter decision: the GAO it was made for, the
// routing-table revision it saw, and — when scattering — the per-shard
// prepared queries (all forced to the same GAO under the
// order-preserving natural domain, so their raw streams merge by plain
// tuple comparison), plus everything a mid-run substream retry needs
// to rebuild one substream on a sibling replica: the sliced atom, the
// plan-time fragment epochs, and which replica each shard's substream
// was bound to.
type scatterPlan struct {
	gao        []string
	version    uint64
	partitions []string
	name       string                       // sliced relation
	slice      int                          // sliced atom index in q.Atoms()
	epochs     []uint64                     // plan-time fragment epoch per shard
	replica    []int                        // serving replica per shard
	shards     []*minesweeper.PreparedQuery // nil => run gathered via full
}

// substreamError is a recoverable per-substream failure: the scatter
// manager retries the substream on a sibling replica, resuming from
// the last delivered key. markDown additionally records the replica as
// failed (storage death); a recovered panic retries without marking —
// the replica's data is intact, the fault may be transient.
type substreamError struct {
	shard    int
	replica  int
	cause    error
	markDown bool
}

func (e *substreamError) Error() string {
	return fmt.Sprintf("shard %d replica %d: %v", e.shard, e.replica, e.cause)
}

func (e *substreamError) Unwrap() error { return e.cause }

// Prepare plans a query for sharded execution. The query must have been
// built against this catalog's relations (Catalog.Query). Options carry
// through to every per-shard prepare, except that the GAO is pinned to
// the full plan's choice and the domain to the order-preserving natural
// encoding — a frequency-permuted domain would give each shard its own
// code order and break the merge.
func (c *Catalog) Prepare(q *minesweeper.Query, opts *minesweeper.Options) (*Prepared, error) {
	full, err := q.Prepare(opts)
	if err != nil {
		return nil, err
	}
	p := &Prepared{cat: c, q: q, full: full}
	if opts != nil {
		p.opts = *opts
	}
	if err := p.Refresh(); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh re-plans the full query if its relations mutated, then
// rebuilds the scatter plan when the GAO or the routing table moved
// (markDownLocked bumps the same version, so plans re-bind off dead
// replicas too).
func (p *Prepared) Refresh() error {
	if err := p.full.Refresh(); err != nil {
		return err
	}
	gao := p.full.GAO()
	version := p.cat.partsVersion()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur != nil && p.cur.version == version && sameStrings(p.cur.gao, gao) {
		return nil
	}
	cur, err := p.buildPlan(gao, version)
	if err != nil {
		return err
	}
	p.cur = cur
	return nil
}

// buildPlan decides whether the query scatters and builds the per-shard
// prepared queries when it does. Scatter requires a sliceable atom: one
// bound to a partitioned view relation whose partition column carries
// the leading GAO attribute — then each shard's substream enumerates a
// restriction of the outermost domain and per-assignment work is done
// once across the shard set. With several candidates the largest
// relation wins (slicing it buys the most). Without one — or under a
// frequency-permuted domain, with one shard, or with a shard that has
// no healthy replica — execution runs gathered over the whole view.
func (p *Prepared) buildPlan(gao []string, version uint64) (*scatterPlan, error) {
	plan := &scatterPlan{gao: gao, version: version}
	if p.cat.n <= 1 {
		return plan, nil
	}
	plan.partitions = []string{"gathered"}
	if p.opts.Domain == minesweeper.DomainFreq || len(gao) == 0 {
		return plan, nil
	}
	atoms := p.q.Atoms()
	p.cat.mu.Lock()
	slice, part := -1, Partition{}
	for i, a := range atoms {
		rel, ok := p.cat.view.Get(a.Rel.Name())
		if !ok || minesweeper.Fragment(rel) != a.Rel {
			continue // not this catalog's relation (or a stale binding)
		}
		pt, ok := p.cat.parts[a.Rel.Name()]
		if !ok || pt.Column >= len(a.Vars) || a.Vars[pt.Column] != gao[0] {
			continue
		}
		if slice < 0 || a.Rel.Len() > atoms[slice].Rel.Len() {
			slice, part = i, pt
		}
	}
	if slice < 0 {
		p.cat.mu.Unlock()
		return plan, nil
	}
	name := atoms[slice].Rel.Name()
	frags := make([]*minesweeper.Relation, p.cat.n)
	epochs := make([]uint64, p.cat.n)
	reps := make([]int, p.cat.n)
	ok := true
	for s := 0; s < p.cat.n; s++ {
		rep := -1
		for jj := 0; jj < p.cat.r; jj++ {
			j := (p.cat.primary[s] + jj) % p.cat.r
			if p.cat.down[s][j] == nil && p.cat.replicas[s][j].Healthy() == nil {
				rep = j
				break
			}
		}
		if rep < 0 {
			ok = false // fully dead shard: the view still serves reads
			break
		}
		frag, have := p.cat.replicas[s][rep].Get(name)
		if !have {
			ok = false // fragment missing (partial create): run gathered
			break
		}
		frags[s], epochs[s], reps[s] = frag, frag.Epoch(), rep
	}
	p.cat.mu.Unlock()
	if !ok {
		return plan, nil
	}
	shards := make([]*minesweeper.PreparedQuery, p.cat.n)
	for s := range shards {
		pq, err := p.prepareSubstream(gao, slice, frags[s], nil)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		shards[s] = pq
	}
	plan.name, plan.slice = name, slice
	plan.shards, plan.epochs, plan.replica = shards, epochs, reps
	plan.partitions = []string{fmt.Sprintf("%s=%s/%d", name, part.String(), p.cat.n)}
	return plan, nil
}

// prepareSubstream builds one shard's prepared query: the sliced atom
// rebound to frag, the GAO pinned, the domain forced natural. A
// non-nil resume row (a full extended-GAO raw tuple, the last one the
// failed substream delivered) additionally pushes the resume key down
// as an inclusive lower bound on the leading GAO variable — the PR 4
// bounds machinery — so the replacement substream seeks straight to
// the failure frontier instead of rescanning the fragment.
func (p *Prepared) prepareSubstream(gao []string, slice int, frag minesweeper.Fragment, resume []int) (*minesweeper.PreparedQuery, error) {
	qs := p.q.CloneWithRelations(func(i int, f minesweeper.Fragment) minesweeper.Fragment {
		if i == slice {
			return frag
		}
		return f
	})
	o := p.opts
	o.GAO = gao
	o.Domain = minesweeper.DomainNatural
	if resume != nil && len(gao) > 0 {
		// nil Where means "the query's own parsed where clause": make
		// that explicit before appending, or the resume bound would
		// silently drop the query's textual filters.
		eff := o.Where
		if eff == nil {
			eff = p.q.Where()
		}
		where := make([]minesweeper.Filter, 0, len(eff)+1)
		where = append(where, eff...)
		// The raw row layout is hidden constants first, then the GAO
		// variables: gao[0]'s value sits at len(resume)-len(gao).
		where = append(where, minesweeper.Filter{
			Var: gao[0], Op: ">=", Value: resume[len(resume)-len(gao)],
		})
		o.Where = where
	}
	return qs.Prepare(&o)
}

// retrySubstream picks an untried healthy sibling replica whose
// fragment still sits at the plan's pinned epoch (a replica that moved
// past it — a concurrent mutation — cannot resume byte-identically)
// and builds the resumed substream against it.
func (p *Prepared) retrySubstream(cur *scatterPlan, s int, tried map[int]bool, resume []int) (int, *minesweeper.PreparedQuery, error) {
	type cand struct {
		rep  int
		frag *minesweeper.Relation
	}
	p.cat.mu.Lock()
	var cands []cand
	for j := 0; j < p.cat.r; j++ {
		if tried[j] || p.cat.down[s][j] != nil || p.cat.replicas[s][j].Healthy() != nil {
			continue
		}
		frag, ok := p.cat.replicas[s][j].Get(cur.name)
		if !ok || frag.Epoch() != cur.epochs[s] {
			continue
		}
		cands = append(cands, cand{j, frag})
	}
	p.cat.mu.Unlock()
	for _, cd := range cands {
		pq, err := p.prepareSubstream(cur.gao, cur.slice, cd.frag, resume)
		if err == nil {
			tried[cd.rep] = true
			return cd.rep, pq, nil
		}
	}
	return -1, nil, fmt.Errorf("shard %d: no replica can resume the substream", s)
}

// OutputVars returns the emitted column names (same as unsharded).
func (p *Prepared) OutputVars() []string { return p.full.OutputVars() }

// Engine returns the resolved engine.
func (p *Prepared) Engine() minesweeper.Engine { return p.full.Engine() }

// GAO returns the resolved global attribute order.
func (p *Prepared) GAO() []string { return p.full.GAO() }

// Explain returns the full plan annotated with the scatter decision.
func (p *Prepared) Explain() minesweeper.Explain {
	ex := p.full.Explain()
	p.mu.Lock()
	if p.cur != nil {
		ex.Partitions = append([]string(nil), p.cur.partitions...)
	}
	p.mu.Unlock()
	return ex
}

// Execute runs the query to completion (convenience over the stream).
func (p *Prepared) Execute() (*minesweeper.Result, error) {
	var tuples [][]int
	var ex minesweeper.Explain
	stats, err := p.StreamContextExplained(context.Background(), func(e minesweeper.Explain) { ex = e }, func(t []int) bool {
		tuples = append(tuples, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &minesweeper.Result{Vars: p.OutputVars(), Tuples: tuples, GAO: ex.GAO, Stats: stats}, nil
}

// StreamContextExplained re-plans if needed, reports the plan, and
// streams the shaped result: scattered across the shard set when the
// plan allows, gathered over the view otherwise. Cancellation,
// emit-false early stop and error-truncated prefixes behave exactly as
// in the unsharded stream.
func (p *Prepared) StreamContextExplained(ctx context.Context, plan func(minesweeper.Explain), yield func([]int) bool) (minesweeper.Stats, error) {
	if err := p.Refresh(); err != nil {
		return minesweeper.Stats{}, err
	}
	p.mu.Lock()
	cur := p.cur
	p.mu.Unlock()
	if cur.shards == nil {
		wrapped := plan
		if plan != nil && len(cur.partitions) > 0 {
			wrapped = func(ex minesweeper.Explain) {
				ex.Partitions = append([]string(nil), cur.partitions...)
				plan(ex)
			}
		}
		return p.full.StreamContextExplained(ctx, wrapped, yield)
	}
	return p.gather(ctx, cur, plan, yield)
}

// sub is one shard's gather-side state: the merge channel, the folded
// stats of every attempt, and the terminal error when retries ran out.
type sub struct {
	ch    chan []int
	stats minesweeper.Stats
	err   error
}

// gather is the scatter-gather executor: every shard's raw substream
// (already GAO-lex-ordered and decoded) feeds a bounded channel; a
// loser tree merges the fronts into one globally ordered raw stream,
// which flows through the query's shape exactly once. Because every
// stored copy of a sliced-atom row lives in exactly one fragment, each
// raw assignment surfaces exactly once and the merged stream is
// byte-identical to the unsharded raw stream.
//
// Each substream is its own fault domain: a replica that dies or an
// engine that panics mid-run fails only that substream, and its
// manager goroutine retries on a sibling replica with the substream's
// last delivered key pushed down as a resume bound — everything at or
// before the key is skipped, so the merged stream continues exactly
// where it stopped and stays byte-identical through the failure. Only
// when no replica can resume does the run truncate with an error.
func (p *Prepared) gather(ctx context.Context, cur *scatterPlan, plan func(minesweeper.Explain), yield func([]int) bool) (minesweeper.Stats, error) {
	_, sh, err := p.q.ShapePlan(cur.gao, &p.opts)
	if err != nil {
		return minesweeper.Stats{}, err
	}
	ex := p.full.Explain()
	ex.Partitions = append([]string(nil), cur.partitions...)
	if plan != nil {
		plan(ex)
	}

	synth := func(rctx context.Context, _ *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
		cctx, cancel := context.WithCancel(rctx)
		subs := make([]*sub, len(cur.shards))
		var wg sync.WaitGroup
		for s := range subs {
			sb := &sub{ch: make(chan []int, scatterBuf)}
			subs[s] = sb
			wg.Add(1)
			go func(s int, sb *sub) {
				defer wg.Done()
				defer close(sb.ch)
				ctr := &p.cat.counters[s]
				ctr.runs.Add(1)
				ctr.inflight.Add(1)
				defer ctr.inflight.Add(-1)
				pq := cur.shards[s]
				rep := cur.replica[s]
				tried := map[int]bool{rep: true}
				var last []int
				var resume []int
				for {
					st, err := p.runSubstream(cctx, s, rep, pq, resume, sb, &last)
					sb.stats.Add(&st)
					if err == nil {
						return
					}
					var serr *substreamError
					if !errors.As(err, &serr) || cctx.Err() != nil {
						sb.err = err
						return
					}
					if serr.markDown {
						p.cat.markReplicaDown(s, rep, serr.cause)
					}
					if last != nil {
						resume = append(resume[:0], last...)
					}
					nrep, npq, rerr := p.retrySubstream(cur, s, tried, resume)
					if rerr != nil {
						sb.err = serr.cause
						return
					}
					rep, pq = nrep, npq
					ctr.retries.Add(1)
				}
			}(s, sb)
		}
		// On every exit: stop the producers, wait them out, and fold
		// their stats into the run's — including early stops, so a
		// limited run still reports the probe work it caused.
		defer func() {
			cancel()
			wg.Wait()
			for _, sb := range subs {
				stats.Add(&sb.stats)
			}
		}()

		var firstErr error
		recv := func(s int) []int {
			t, ok := <-subs[s].ch
			if !ok {
				if subs[s].err != nil && firstErr == nil {
					firstErr = subs[s].err
				}
				return nil
			}
			return t
		}
		heads := make([][]int, len(subs))
		for s := range heads {
			heads[s] = recv(s)
		}
		lt := newLoserTree(heads)
		for firstErr == nil {
			// Check before every emit, not just when a producer fails:
			// with small fragments the substreams can already sit fully
			// buffered when the caller cancels, and draining them would
			// break the anytime contract the unsharded engines keep
			// (no tuple is yielded after the context is done).
			if err := rctx.Err(); err != nil {
				return err
			}
			t := lt.pop(recv)
			if t == nil {
				break
			}
			if !emit(t) {
				return nil
			}
		}
		// A failed shard truncates the stream at the merge frontier:
		// everything emitted so far is a correct ordered prefix.
		return firstErr
	}

	var stats minesweeper.Stats
	err = engine.RunShaped(ctx, synth, nil, sh, &stats, yield)
	stats.PlanWidth, stats.PlanCost = ex.Width, ex.EstCost
	return stats, err
}

// runSubstream runs one attempt of one shard's raw substream against
// one replica, pushing tuples into the gather channel. It is the
// per-substream fault boundary:
//
//   - a panicking engine is recovered here and surfaced as a retryable
//     substream error (counted per shard);
//   - every healthCheckEvery tuples the replica's health is probed —
//     fragments are in-memory, so a poisoned store never fails the
//     read itself, the substream has to detect it and hand over;
//   - the test-only killHook can fail the attempt at an exact tuple;
//   - on a resumed attempt, rows lexicographically at or before the
//     resume key are skipped (the coarse >= bound on gao[0] readmits
//     rows sharing the boundary value that were already delivered).
//
// last tracks the newest tuple actually handed to the gather channel
// across attempts — the resume frontier.
func (p *Prepared) runSubstream(cctx context.Context, s, rep int, pq *minesweeper.PreparedQuery, resume []int, sb *sub, last *[]int) (st minesweeper.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.cat.counters[s].panics.Add(1)
			err = &substreamError{shard: s, replica: rep, cause: fmt.Errorf("substream panic: %v", r)}
		}
	}()
	ctr := &p.cat.counters[s]
	n := 0
	var ferr error
	st, serr := pq.StreamRawContext(cctx, nil, func(t []int) bool {
		if kill := p.cat.killHook; kill != nil {
			if kerr := kill(s, rep, t); kerr != nil {
				ferr = &substreamError{shard: s, replica: rep, cause: kerr, markDown: true}
				return false
			}
		}
		if resume != nil && !lexAfter(t, resume) {
			return true
		}
		if n%healthCheckEvery == 0 {
			if h := p.cat.replicaHealth(s, rep); h != nil {
				ferr = &substreamError{shard: s, replica: rep,
					cause: fmt.Errorf("replica unhealthy: %w", h), markDown: true}
				return false
			}
		}
		n++
		ctr.emitted.Add(1)
		select {
		case sb.ch <- t:
			*last = t
			return true
		default:
		}
		// Full channel: the merge is draining a hotter shard. Park
		// visibly (the queued counter) until there is room or the run
		// is over.
		ctr.queued.Add(1)
		defer ctr.queued.Add(-1)
		select {
		case sb.ch <- t:
			*last = t
			return true
		case <-cctx.Done():
			return false
		}
	})
	if ferr != nil {
		return st, ferr
	}
	if serr != nil {
		return st, &substreamError{shard: s, replica: rep, cause: serr, markDown: true}
	}
	return st, nil
}

// lexAfter reports t > last lexicographically. Raw rows of one
// substream share an arity and are strictly increasing, so this is the
// exact already-delivered test for resumed attempts.
func lexAfter(t, last []int) bool {
	for i := range t {
		if i >= len(last) {
			return true
		}
		if t[i] != last[i] {
			return t[i] > last[i]
		}
	}
	return false
}

// loserTree merges k ordered tuple streams. Internal nodes 1..k-1 hold
// the loser of the match played there; tree[0] holds the overall
// winner; leaf s maps to node s+k. Each pop replays exactly the
// winner's root path: ceil(log2 k) comparisons per emitted tuple.
type loserTree struct {
	k    int
	tree []int
	head [][]int // current front per source; nil = exhausted
}

func newLoserTree(heads [][]int) *loserTree {
	lt := &loserTree{k: len(heads), tree: make([]int, len(heads)), head: heads}
	if lt.k > 0 {
		lt.tree[0] = lt.build(1)
	}
	return lt
}

// build computes the winner of the subtree rooted at node, parking each
// match's loser at its node.
func (lt *loserTree) build(node int) int {
	if node >= lt.k {
		return node - lt.k
	}
	a, b := lt.build(2*node), lt.build(2*node+1)
	if lt.beats(a, b) {
		lt.tree[node] = b
		return a
	}
	lt.tree[node] = a
	return b
}

// beats reports whether source a's front comes before source b's:
// exhausted streams lose to everything, ties break to the lower shard
// index so the merge is deterministic.
func (lt *loserTree) beats(a, b int) bool {
	ha, hb := lt.head[a], lt.head[b]
	if ha == nil {
		return false
	}
	if hb == nil {
		return true
	}
	for i := range ha {
		if ha[i] != hb[i] {
			return ha[i] < hb[i]
		}
	}
	return a < b
}

// pop removes and returns the smallest front, refilling its source and
// replaying its path. Returns nil when every source is exhausted.
func (lt *loserTree) pop(refill func(s int) []int) []int {
	if lt.k == 0 {
		return nil
	}
	w := lt.tree[0]
	t := lt.head[w]
	if t == nil {
		return nil
	}
	lt.head[w] = refill(w)
	s := w
	for n := (w + lt.k) / 2; n > 0; n /= 2 {
		if lt.beats(lt.tree[n], s) {
			lt.tree[n], s = s, lt.tree[n]
		}
	}
	lt.tree[0] = s
	return t
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

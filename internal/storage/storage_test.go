package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// roundTrip encodes then decodes one record.
func roundTrip(t *testing.T, rec *Record) *Record {
	t.Helper()
	buf, err := encodeRecord(nil, rec)
	if err != nil {
		t.Fatalf("encode %v: %v", rec.Op, err)
	}
	rr := newRecordReader(bytes.NewReader(buf), "test")
	got, err := rr.Read()
	if err != nil {
		t.Fatalf("decode %v: %v\nframed:\n%s", rec.Op, err, buf)
	}
	if _, err := rr.Read(); err != io.EOF {
		t.Fatalf("expected EOF after one record, got %v", err)
	}
	return got
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Op: OpCreate, Name: "R", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {0, 7}}},
		{Op: OpCreate, Name: "empty", Epoch: 3, Vars: []string{"X"}},
		{Op: OpCreate, Name: "weird name/with spaces", Vars: []string{"V ar", "W"}},
		{Op: OpInsert, Name: "R", Epoch: 12, Tuples: [][]int{{5, 6}}},
		{Op: OpDelete, Name: "R", Epoch: 13, Tuples: [][]int{{5, 6}, {1, 2}}},
		{Op: OpReplace, Name: "R", Epoch: 14, Vars: []string{"C", "D"}, Tuples: [][]int{{9, 9}}},
		{Op: OpDrop, Name: "R", Epoch: 15},
		{Op: OpPutQuery, Name: "q1", Query: &QueryDef{
			Name: "q1", Query: "R(A,B), S(B,C)", Engine: "leapfrog",
			GAO: []string{"B", "A", "C"}, Workers: 4, Select: "A, count(*)", Where: "A < 10",
		}},
		{Op: OpDropQuery, Name: "q1"},
	}
	for _, rec := range recs {
		got := roundTrip(t, rec)
		if got.Op != rec.Op || got.Name != rec.Name || got.Epoch != rec.Epoch {
			t.Fatalf("round trip header: got %+v, want %+v", got, rec)
		}
		if !reflect.DeepEqual(got.Vars, rec.Vars) {
			t.Fatalf("%v vars: got %v, want %v", rec.Op, got.Vars, rec.Vars)
		}
		if len(got.Tuples)+len(rec.Tuples) > 0 && !reflect.DeepEqual(got.Tuples, rec.Tuples) {
			t.Fatalf("%v tuples: got %v, want %v", rec.Op, got.Tuples, rec.Tuples)
		}
		if (got.Query == nil) != (rec.Query == nil) {
			t.Fatalf("%v query presence mismatch", rec.Op)
		}
		if got.Query != nil && !reflect.DeepEqual(*got.Query, *rec.Query) {
			t.Fatalf("query def: got %+v, want %+v", *got.Query, *rec.Query)
		}
	}
}

func TestRecordStreamSkipsCommentsAndBlanks(t *testing.T) {
	var buf []byte
	buf = append(buf, "# a relio-style comment\n\n"...)
	buf, _ = encodeRecord(buf, &Record{Op: OpCreate, Name: "R", Vars: []string{"A"}})
	buf = append(buf, "\n# in between\n"...)
	buf, _ = encodeRecord(buf, &Record{Op: OpDrop, Name: "R"})
	rr := newRecordReader(bytes.NewReader(buf), "test")
	for i, want := range []Op{OpCreate, OpDrop} {
		rec, err := rr.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Op != want {
			t.Fatalf("record %d: op %v, want %v", i, rec.Op, want)
		}
	}
	if _, err := rr.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRecordCRCDetectsFlippedBit(t *testing.T) {
	buf, err := encodeRecord(nil, &Record{Op: OpInsert, Name: "R", Epoch: 1, Tuples: [][]int{{41, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload digit: "41 5" -> "91 5". The line still parses, so
	// only the CRC can catch it.
	mut := bytes.Replace(buf, []byte("41 5"), []byte("91 5"), 1)
	if bytes.Equal(mut, buf) {
		t.Fatal("test setup: payload not found")
	}
	_, err = newRecordReader(bytes.NewReader(mut), "test").Read()
	var recErr *recordError
	if !errors.As(err, &recErr) || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("flipped bit not caught by CRC: %v", err)
	}
	if !strings.Contains(err.Error(), "test:1:") {
		t.Fatalf("crc error does not carry the line number: %v", err)
	}
}

// randomScript generates a valid mutation history: each record is
// stamped with the relation's pre-mutation epoch (as the catalog's WAL
// writer does) and verified to apply against a reference state.
func randomScript(rnd *rand.Rand, steps int) []*Record {
	state := &State{}
	names := []string{"R", "S", "T"}
	randTuples := func() [][]int {
		out := make([][]int, rnd.Intn(4))
		for i := range out {
			out[i] = []int{rnd.Intn(50), rnd.Intn(50)}
		}
		return out
	}
	epochOf := func(name string) (uint64, bool) {
		for i := range state.Relations {
			if state.Relations[i].Name == name {
				return state.Relations[i].Epoch, true
			}
		}
		return 0, false
	}
	var recs []*Record
	for len(recs) < steps {
		name := names[rnd.Intn(len(names))]
		epoch, exists := epochOf(name)
		var rec *Record
		switch op := rnd.Intn(10); {
		case !exists:
			rec = &Record{Op: OpCreate, Name: name, Vars: []string{"A", "B"}, Tuples: randTuples()}
		case op < 4:
			rec = &Record{Op: OpInsert, Name: name, Epoch: epoch, Tuples: randTuples()}
		case op < 6:
			rec = &Record{Op: OpDelete, Name: name, Epoch: epoch, Tuples: randTuples()}
		case op < 7:
			rec = &Record{Op: OpReplace, Name: name, Epoch: epoch, Vars: []string{"A", "B"}, Tuples: randTuples()}
		case op < 8:
			rec = &Record{Op: OpDrop, Name: name, Epoch: epoch}
		case op < 9:
			qn := fmt.Sprintf("q%d", rnd.Intn(3))
			rec = &Record{Op: OpPutQuery, Name: qn, Query: &QueryDef{Name: qn, Query: name + "(A,B)", Workers: rnd.Intn(4)}}
		default:
			qn := fmt.Sprintf("q%d", rnd.Intn(3))
			rec = &Record{Op: OpDropQuery, Name: qn}
		}
		if err := state.apply(rec); err != nil {
			// e.g. a dropquery for an absent query — not a record the
			// catalog would ever log.
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// applyAll replays records onto a fresh state.
func applyAll(t *testing.T, recs []*Record) *State {
	t.Helper()
	state := &State{}
	for i, rec := range recs {
		if err := state.apply(rec); err != nil {
			t.Fatalf("script record %d (%v %s): %v", i, rec.Op, rec.Name, err)
		}
	}
	sortState(state)
	return state
}

// TestWALTruncationEveryByte is the crash-recovery property test: a
// random mutation script is framed into a WAL, the file is cut at
// every byte offset (every torn write a kill can produce), and
// recovery must come back with exactly the state of the longest prefix
// of complete records — never an error, never a partial record applied.
func TestWALTruncationEveryByte(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	recs := randomScript(rnd, 25)

	// Frame each record; remember the cumulative end offset of each.
	var wal []byte
	ends := []int64{0}
	for i, rec := range recs {
		buf, err := encodeRecord(wal, rec)
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		wal = buf
		ends = append(ends, int64(len(wal)))
	}

	// Expected state after each complete-record prefix.
	wantAt := make([]*State, len(recs)+1)
	for k := 0; k <= len(recs); k++ {
		wantAt[k] = applyAll(t, recs[:k])
	}
	completeAt := func(cut int64) int {
		k := 0
		for k+1 < len(ends) && ends[k+1] <= cut {
			k++
		}
		return k
	}

	dir := t.TempDir()
	walPath := filepath.Join(dir, walName(0))
	step := int64(1)
	if testing.Short() {
		step = 17
	}
	for cut := int64(0); cut <= int64(len(wal)); cut += step {
		if err := os.WriteFile(walPath, wal[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		got, err := d.Recover()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		k := completeAt(cut)
		if !reflect.DeepEqual(got, wantAt[k]) {
			t.Fatalf("cut %d: recovered state != state of %d-record prefix\ngot:  %+v\nwant: %+v",
				cut, k, got, wantAt[k])
		}
		// The torn tail must be gone from disk: the file ends at the
		// last record boundary.
		if fi, err := os.Stat(walPath); err != nil || fi.Size() != ends[k] {
			t.Fatalf("cut %d: wal size %v after recovery, want %d", cut, fi, ends[k])
		}
		if st := d.Stats(); st.TruncatedBytes != cut-ends[k] {
			t.Fatalf("cut %d: TruncatedBytes = %d, want %d", cut, st.TruncatedBytes, cut-ends[k])
		}
		d.Close()
	}
}

// TestWALInteriorCorruptionIsFatal: damage in the middle of the log —
// with intact records after it — must fail recovery loudly (with the
// line number), not silently truncate away durable mutations.
func TestWALInteriorCorruptionIsFatal(t *testing.T) {
	var wal []byte
	wal, _ = encodeRecord(wal, &Record{Op: OpCreate, Name: "R", Vars: []string{"A", "B"}})
	wal, _ = encodeRecord(wal, &Record{Op: OpInsert, Name: "R", Epoch: 0, Tuples: [][]int{{1, 2}}})
	mid := len(wal)
	wal, _ = encodeRecord(wal, &Record{Op: OpInsert, Name: "R", Epoch: 1, Tuples: [][]int{{3, 4}}})

	corrupt := append([]byte(nil), wal...)
	// Flip a digit inside the second record's payload ("1 2" -> "1 6").
	corrupt[mid-2] ^= 0x04

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(0)), corrupt, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDurable(dir, Options{})
	if err == nil {
		t.Fatal("interior corruption recovered silently")
	}
	if !strings.Contains(err.Error(), walName(0)+":") {
		t.Fatalf("corruption error does not name file and line: %v", err)
	}
}

// TestWALEpochMismatchIsFatal: a record whose epoch stamp disagrees
// with the replayed state is corruption, not a torn tail.
func TestWALEpochMismatchIsFatal(t *testing.T) {
	var wal []byte
	wal, _ = encodeRecord(wal, &Record{Op: OpCreate, Name: "R", Vars: []string{"A"}})
	wal, _ = encodeRecord(wal, &Record{Op: OpInsert, Name: "R", Epoch: 5, Tuples: [][]int{{1}}})
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName(0)), wal, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, Options{}); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("epoch mismatch not fatal: %v", err)
	}
}

// TestDurableAppendRecoverCompact drives the full life cycle through
// the Backend interface: append a long script, force compactions,
// reopen, and require the same state back — with the directory holding
// exactly one generation.
func TestDurableAppendRecoverCompact(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	recs := randomScript(rnd, 200)
	want := applyAll(t, recs)

	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{CompactMinBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	state := &State{}
	for i, rec := range recs {
		if err := d.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := state.apply(rec); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if d.ShouldCompact() {
			if err := d.Compact(state); err != nil {
				t.Fatalf("compact after %d: %v", i, err)
			}
		}
	}
	if st := d.Stats(); st.Snapshots == 0 {
		t.Fatal("no compaction happened despite tiny CompactMinBytes")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly one snapshot/WAL pair remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("directory holds %v, want one snapshot + one wal", names)
	}

	d2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state after reopen:\ngot:  %+v\nwant: %+v", got, want)
	}
	if st := d2.Stats(); st.RecoveredRelations != len(want.Relations) || st.RecoveredQueries != len(want.Queries) {
		t.Fatalf("recovery stats %+v disagree with state", st)
	}
}

// TestCorruptSnapshotIsFatal: snapshots are written atomically, so a
// CRC error inside one is disk corruption and recovery must refuse.
func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A"}, Tuples: [][]int{{1}}}); err != nil {
		t.Fatal(err)
	}
	if !d.ShouldCompact() {
		t.Fatal("compaction not triggered")
	}
	if err := d.Compact(&State{Relations: []RelationState{{Name: "R", Vars: []string{"A"}, Tuples: [][]int{{1}}}}}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x04
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot recovered silently")
	}
}

// TestMemBackendIsInert: the memory backend recovers empty state and
// ignores everything else.
func TestMemBackendIsInert(t *testing.T) {
	m := NewMem()
	st, err := m.Recover()
	if err != nil || len(st.Relations)+len(st.Queries) != 0 {
		t.Fatalf("Recover = %+v, %v", st, err)
	}
	if err := m.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A"}}); err != nil {
		t.Fatal(err)
	}
	if m.ShouldCompact() {
		t.Fatal("memory backend wants compaction")
	}
	if got := m.Stats(); got.Mode != "memory" {
		t.Fatalf("Stats = %+v", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

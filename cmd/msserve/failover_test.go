package main

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"minesweeper/internal/shard"
	"minesweeper/internal/storage"
)

// The replicated-serving acceptance path from the issue: a 4-shard ×
// 2-replica server whose primary backend is killed mid-stream must
// deliver the byte-identical NDJSON stream, keep accepting mutations
// after the failover, report the failover in /stats, self-heal through
// the background reopen loop, and survive a rolling reopen of every
// replica with /readyz never leaving 200.
func TestReplicatedFailoverAcceptance(t *testing.T) {
	const shards, replicas = 4, 2
	dir := t.TempDir()
	// Every replica's durable backend is wrapped in the fault layer,
	// scripted to poison on its first explicit Sync — a kill switch the
	// test can flip per replica with zero data change.
	var faulty [shards][replicas]*storage.Faulty
	sc, err := shard.OpenWith(dir, shards, replicas, storage.Options{}, func(i, j int) (storage.Backend, error) {
		d, err := storage.OpenDurable(shard.ReplicaDir(dir, i, j), storage.Options{})
		if err != nil {
			return nil, err
		}
		f, err := storage.NewFaulty(d, "sync@1=err")
		if err != nil {
			return nil, err
		}
		faulty[i][j] = f
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })

	// A dense join so every shard's substream runs long enough for the
	// health probe to notice the poisoned replica mid-stream.
	var rT, sT [][]int
	for i := 0; i < 500; i++ {
		rT = append(rT, []int{i, (i * 3) % 50})
		sT = append(sT, []int{(i * 3) % 50, i % 20})
	}
	if _, err := sc.Create("E", []string{"a", "b"}, rT); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Create("F", []string{"b", "c"}, sT); err != nil {
		t.Fatal(err)
	}

	kill := make(chan *storage.Faulty, 1)
	cfg := defaultServerConfig()
	cfg.reopenBase = 2 * time.Millisecond
	cfg.reopenPoll = 10 * time.Millisecond
	cfg.reopenTargets = func() []reopenTarget {
		var out []reopenTarget
		for _, ref := range sc.DownReplicas() {
			ref := ref
			out = append(out, reopenTarget{
				key: fmt.Sprintf("shard-%d/replica-%d", ref.Shard, ref.Replica),
				reopen: func() error {
					return sc.ReopenReplica(ref.Shard, ref.Replica, func() (storage.Backend, error) {
						return storage.OpenDurable(shard.ReplicaDir(dir, ref.Shard, ref.Replica), storage.Options{})
					})
				},
			})
		}
		return out
	}
	emitted := 0
	cfg.emitHook = func([]int) {
		emitted++
		if emitted == 5 {
			select {
			case f := <-kill:
				f.Sync() // poisons the backend; the fragment is untouched
			default:
			}
		}
	}
	s := newServerWith(shardStore{sc}, cfg)
	t.Cleanup(s.Close)

	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"E(A,B), F(B,C)"}`), http.StatusOK)

	// Reference stream with no fault armed.
	ref := parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)

	// Kill shard 0's primary mid-stream: the substream must fail over
	// to the sibling replica and resume, byte-identically.
	victim := sc.Primary(0)
	kill <- faulty[0][victim]
	emitted = 0
	rec := do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	got := parseRun(t, rec.Body)
	if !reflect.DeepEqual(got.header, ref.header) || !reflect.DeepEqual(got.tuples, ref.tuples) {
		t.Fatalf("stream across replica kill diverges: %d tuples vs %d", len(got.tuples), len(ref.tuples))
	}
	if got := sc.Primary(0); got == victim {
		t.Fatalf("shard 0 primary still %d after its backend died", victim)
	}
	if sc.Failovers() < 1 {
		t.Fatal("no failover recorded")
	}

	// Mutations keep succeeding on the promoted primary; /readyz stays
	// ready throughout (a healthy replica remains).
	wantStatus(t, do(t, s, "POST", "/relations/E/insert", `{"tuples":[[900,1],[901,2],[902,3],[903,4]]}`), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/readyz", ""), http.StatusOK)
	health, _ := statsBody(t, s)["health"].(map[string]any)
	if n, _ := health["substream_retries"].(float64); n < 1 {
		t.Fatalf("substream_retries = %v, want >= 1", health["substream_retries"])
	}
	if n, _ := health["failovers"].(float64); n < 1 {
		t.Fatalf("failovers = %v, want >= 1", health["failovers"])
	}

	// The background reopen loop heals the killed replica on its own.
	deadline := time.Now().Add(5 * time.Second)
	for len(sc.DownReplicas()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reopen loop never healed %+v", sc.DownReplicas())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rolling reopen of every replica, /readyz polled between each swap:
	// zero read downtime.
	for i := 0; i < shards; i++ {
		for j := 0; j < replicas; j++ {
			if err := sc.ReopenReplica(i, j, func() (storage.Backend, error) {
				return storage.OpenDurable(shard.ReplicaDir(dir, i, j), storage.Options{})
			}); err != nil {
				t.Fatalf("ReopenReplica(%d, %d): %v", i, j, err)
			}
			wantStatus(t, do(t, s, "GET", "/readyz", ""), http.StatusOK)
		}
	}
	// The rolled catalog still answers with the post-insert stream.
	rec = do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	if n := len(parseRun(t, rec.Body).tuples); n <= len(ref.tuples) {
		t.Fatalf("post-roll run returned %d tuples, want > %d (insert landed)", n, len(ref.tuples))
	}
}

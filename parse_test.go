package minesweeper

import (
	"reflect"
	"testing"
)

func parserRels(t *testing.T) map[string]*Relation {
	t.Helper()
	r := rel(t, "R", 2, [][]int{{1, 2}, {2, 3}})
	s := rel(t, "S", 2, [][]int{{2, 5}})
	u := rel(t, "U", 1, [][]int{{1}})
	return map[string]*Relation{"R": r, "S": s, "U": u, "Edge": r}
}

func TestParseQueryBasic(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("R(A,B), S(B,C)", rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("Vars = %v", got)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQuerySeparators(t *testing.T) {
	rels := parserRels(t)
	exprs := []string{
		"R(A,B) ⋈ S(B,C)",
		"R(A,B) |><| S(B,C)",
		"R(A,B) join S(B,C)",
		"R(A,B)join S(B,C)",
		"R(A,B)\n\tS(B,C)",
		"R( A , B ) , S( B , C )",
	}
	for _, e := range exprs {
		q, err := ParseQuery(e, rels)
		if err != nil {
			t.Fatalf("%q: %v", e, err)
		}
		if len(q.Vars()) != 3 {
			t.Fatalf("%q: vars %v", e, q.Vars())
		}
	}
}

func TestParseQueryJoinKeywordBoundary(t *testing.T) {
	// A relation whose name starts with "join" must not be eaten by the
	// separator scanner.
	joint := rel(t, "joint", 1, [][]int{{1}})
	rels := map[string]*Relation{"joint": joint}
	q, err := ParseQuery("joint(A)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// A relation literally named "join" stays usable: followed by "(",
	// the word is an atom, not a separator.
	jn := rel(t, "join", 1, [][]int{{2}})
	q, err = ParseQuery("join(A)", map[string]*Relation{"join": jn})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Execute(q, nil); err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// And "join" used as both separator and glue around newlines.
	rels2 := parserRels(t)
	if _, err := ParseQuery("R(A,B)\njoin\nS(B,C)", rels2); err != nil {
		t.Fatal(err)
	}
}

func TestParseQuerySelfJoin(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("Edge(x,y) Edge(y,z)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Edge = {(1,2),(2,3)}: one 2-path 1→2→3.
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQueryUnary(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("U(A), R(A, B)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQueryErrors(t *testing.T) {
	rels := parserRels(t)
	cases := []string{
		"",         // no atoms
		"  , ",     // separators only
		"R",        // missing (
		"R(",       // missing var
		"R()",      // empty var list
		"R(A",      // missing )
		"R(A,)",    // trailing comma
		"Q(A)",     // unknown relation
		"R(A,B) S", // trailing junk
		"R(1A)",    // bad identifier
		"R(A,B,C)", // arity mismatch (caught by NewQuery)
		"R(A,A)",   // repeated var (caught by NewQuery)
	}
	for _, e := range cases {
		if _, err := ParseQuery(e, rels); err == nil {
			t.Errorf("%q: expected error", e)
		}
	}
}

func TestParseQueryConstants(t *testing.T) {
	rels := parserRels(t)
	// R = {(1,2),(2,3)}: R(A, 2) keeps only (1,2).
	q, err := ParseQuery("R(A, 2)", rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"A"}) {
		t.Fatalf("Vars = %v", got)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, [][]int{{1}}) {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	// Constants join through shared variables: R(A,2), S(2,C).
	q, err = ParseQuery("R(A, 2) , S(2, C)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// S = {(2,5)}: result (A,C) = (1,5).
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v over %v", res.Tuples, res.Vars)
	}
}

func TestParseQuerySelectWhere(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("R(A,B), S(B,C) select A, C where A < 10 and C >= 5", rels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Select(), []string{"A", "C"}) {
		t.Fatalf("Select = %v", q.Select())
	}
	if !reflect.DeepEqual(q.Where(), []Filter{{Var: "A", Op: "<", Value: 10}, {Var: "C", Op: ">=", Value: 5}}) {
		t.Fatalf("Where = %v", q.Where())
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, []string{"A", "C"}) {
		t.Fatalf("res.Vars = %v", res.Vars)
	}
	// R ⋈ S = {(1,2,5)}: projected (A,C) = (1,5).
	if !reflect.DeepEqual(res.Tuples, [][]int{{1, 5}}) {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	// where-before-select order parses too.
	if _, err := ParseQuery("R(A,B) where B < 5 select A", rels); err != nil {
		t.Fatal(err)
	}
	// Comma-separated conjuncts.
	if _, err := ParseQuery("R(A,B) where A < 5, B > 1", rels); err != nil {
		t.Fatal(err)
	}
}

func TestParseQueryAggregates(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("R(A,B) select A, count(*), sum(B), min(B), max(B), count(distinct B)", rels)
	if err != nil {
		t.Fatal(err)
	}
	want := []Aggregate{
		{Op: AggCount}, {Op: AggSum, Var: "B"}, {Op: AggMin, Var: "B"},
		{Op: AggMax, Var: "B"}, {Op: AggCountDistinct, Var: "B"},
	}
	if !reflect.DeepEqual(q.Aggregates(), want) {
		t.Fatalf("Aggregates = %v", q.Aggregates())
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// R = {(1,2),(2,3)}: groups A=1 and A=2.
	wantRows := [][]int{{1, 1, 2, 2, 2, 1}, {2, 1, 3, 3, 3, 1}}
	if !reflect.DeepEqual(res.Tuples, wantRows) {
		t.Fatalf("rows = %v", res.Tuples)
	}
	// Bare aggregate: whole result is one group.
	q, err = ParseQuery("R(A,B) select count(*)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, []string{"count(*)"}) || !reflect.DeepEqual(res.Tuples, [][]int{{2}}) {
		t.Fatalf("count(*): vars %v rows %v", res.Vars, res.Tuples)
	}
}

func TestParseClauseHelpers(t *testing.T) {
	sel, aggs, err := ParseSelect("x, count(*), sum(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, []string{"x"}) || len(aggs) != 2 {
		t.Fatalf("sel %v aggs %v", sel, aggs)
	}
	where, err := ParseWhere("x < 100 and y >= 3, z = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(where) != 3 || where[2] != (Filter{Var: "z", Op: "=", Value: 5}) {
		t.Fatalf("where = %v", where)
	}
	if _, _, err := ParseSelect("x,"); err == nil {
		t.Fatal("trailing comma must error")
	}
	if _, err := ParseWhere("x <"); err == nil {
		t.Fatal("missing value must error")
	}
}

func TestParseQueryClauseErrors(t *testing.T) {
	rels := parserRels(t)
	cases := []string{
		"R(A,B) select",                  // empty select
		"R(A,B) select Z",                // unknown projection var
		"R(A,B) where Z < 3",             // unknown filter var
		"R(A,B) select sum(*)",           // sum needs a variable
		"R(A,B) select count(",           // unterminated
		"R(A,B) where A ! 3",             // bad operator
		"R(A,B) garbage",                 // trailing junk
		"R(A, 999999999999999999999999)", // constant out of range
	}
	for _, e := range cases {
		if _, err := ParseQuery(e, rels); err == nil {
			t.Errorf("%q: expected error", e)
		}
	}
	// A relation literally named "select" stays usable.
	selRel := rel(t, "select", 1, [][]int{{1}})
	q, err := ParseQuery("select(A)", map[string]*Relation{"select": selRel})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Execute(q, nil); err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestParseQueryUnicodeIdent(t *testing.T) {
	rels := map[string]*Relation{"Rel_1": rel(t, "Rel_1", 1, [][]int{{7}})}
	q, err := ParseQuery("Rel_1(x_0)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

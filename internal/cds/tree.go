package cds

import (
	"minesweeper/internal/arena"
	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// node is one ConstraintTree node. A node at depth d is identified by the
// pattern of length d spelled by the labels on the path from the root
// (Section 4.2); it owns
//
//   - equalities: labelled children, one per equality value (the sorted
//     list of Figure 1), plus at most one wildcard child, and
//   - intervals: the disjoint open intervals ruled out for attribute d
//     under this pattern.
//
// Invariant: no equality child label is covered by intervals — inserting
// an interval deletes the children it swallows (Algorithm 5).
//
// The SortedList and RangeSet are embedded by value: a node is one flat
// arena slot, and its child list / interval list start in the embedded
// small-array mode with no satellite allocations. Leaf-adjacent nodes —
// the bulk of any tree — therefore never allocate beyond their key
// arrays, and never at all once those arrays have grown once.
type node struct {
	depth     int
	pattern   Pattern // path from the root; interned in the tree's arena
	eq        ordered.SortedList[*node]
	star      *node
	intervals ordered.RangeSet
}

// reset readies an arena slot for reuse, retaining the embedded lists'
// backing storage so a recycled node allocates nothing on its next fill.
func (v *node) reset(depth int, pattern Pattern) {
	v.depth = depth
	v.pattern = pattern
	v.star = nil
	v.eq.Reset()
	v.intervals.Reset()
}

// patChunkSize is the pattern-arena granularity (in components).
const patChunkSize = 512

// Tree is the ConstraintTree CDS. It supports InsConstraint (Algorithm 5)
// and GetProbePoint (Algorithms 3/4, generalized per Algorithms 6/7).
// A Tree is built for a fixed number of attributes n; probe points are
// full n-tuples in GAO order.
//
// A Tree owns all of its memory: nodes come from a chunked arena,
// node patterns are interned into a component arena (constraint
// prefixes passed to InsConstraint are never retained, so callers may
// reuse their buffers), and the probe-point machinery works in
// per-tree scratch space. On the steady-state path — probing and
// inserting constraints that only touch existing nodes — the tree
// performs zero allocations; see the AllocsPerRun regression tests.
type Tree struct {
	n     int
	root  *node
	stats *certificate.Stats
	memo  bool

	// trace, when non-nil, receives every inserted constraint
	// (outer-algorithm and internal memoization alike); used by tests to
	// verify that probe points are active w.r.t. everything stored.
	trace func(Constraint)

	// node arena; Reset rewinds it. Slots are reset at hand-out, which
	// keeps a recycled node's embedded list storage.
	nodes arena.Arena[node]

	// pattern arena: interned copies of the patterns of materialized
	// nodes, appended into fixed-capacity chunks so earlier interned
	// slices are never moved.
	patChunks [][]Comp
	patIdx    int

	// box storage: arena-backed slots indexed by the GAO position of
	// their last dimension, with dimension ranges interned into a
	// chunked range arena mirroring the pattern arena.
	boxes       arena.Arena[boxNode]
	boxByLast   [][]*boxNode
	rangeChunks [][]ordered.Range
	rangeIdx    int

	// box applicability index (see activeBoxes): per last position, the
	// buckets of boxes sharing a prefix shape and pinned values, the
	// key→bucket map, the distinct shapes to query, and the linear
	// overflow list for prefixes too long for a shape mask. Reset keeps
	// the maps and empties the buckets in place, so a re-filled tree
	// re-uses their storage.
	boxBuckets  [][]boxBucket
	boxKeyIdx   []map[boxKey]int
	boxShapesAt [][]boxShape
	boxOverflow [][]*boxNode

	// GetProbePoint scratch, reused across calls.
	tv          []int           // the probe point under construction (returned!)
	levelA      []*node         // filter frontier double buffer
	levelB      []*node         //
	chainOrder  []*node         // buildChain linearization
	chainBuf    []chainEntry    //
	suffixBuf   []Pattern       // shadow suffix meets
	meetBuf     []Comp          // backing for freshly computed meets
	boxScratch  []*boxNode      // active boxes at the current level
	eqBuf       []Comp          // backing for fully-specific backtrack prefixes
	resolveDims []ordered.Range // geometric-resolution window accumulator
}

// NewTree returns an empty CDS over n ≥ 1 attributes with inferred-
// constraint memoization enabled (the lazy-inference strategy of
// Section 4.1).
func NewTree(n int) *Tree {
	t := &Tree{n: n, memo: true}
	t.root = t.newNode(0, Pattern{})
	t.tv = make([]int, n)
	t.boxByLast = make([][]*boxNode, n)
	t.boxBuckets = make([][]boxBucket, n)
	t.boxKeyIdx = make([]map[boxKey]int, n)
	t.boxShapesAt = make([][]boxShape, n)
	t.boxOverflow = make([][]*boxNode, n)
	t.eqBuf = make([]Comp, n)
	return t
}

// Reset empties the tree in place: the node and pattern arenas rewind to
// their starts and every scratch buffer is retained, so a reset tree
// re-fills without allocating until it outgrows its previous high-water
// footprint. Stats/trace attachments and the memoization setting are
// kept. The tree serves the same attribute count as before.
func (t *Tree) Reset() {
	t.nodes.Rewind()
	for i := range t.patChunks {
		t.patChunks[i] = t.patChunks[i][:0]
	}
	t.patIdx = 0
	t.boxes.Rewind()
	for i := range t.boxByLast {
		t.boxByLast[i] = t.boxByLast[i][:0]
		t.boxOverflow[i] = t.boxOverflow[i][:0]
		for j := range t.boxBuckets[i] {
			bk := &t.boxBuckets[i][j]
			bk.boxes = bk.boxes[:0]
			bk.maxHi = bk.maxHi[:0]
		}
	}
	for i := range t.rangeChunks {
		t.rangeChunks[i] = t.rangeChunks[i][:0]
	}
	t.rangeIdx = 0
	t.root = t.newNode(0, Pattern{})
}

// newNode hands out the next arena slot, reset and ready. The pattern is
// interned so the caller's backing memory is never retained.
func (t *Tree) newNode(depth int, pattern Pattern) *node {
	v := t.nodes.Alloc()
	v.reset(depth, t.internPattern(pattern))
	return v
}

// internPattern copies p into the tree-owned pattern arena and returns
// the durable copy. Chunks are never reallocated once handed out, so
// previously interned patterns stay valid for the life of the tree.
func (t *Tree) internPattern(p Pattern) Pattern {
	if len(p) == 0 {
		return Pattern{}
	}
	if t.patIdx == len(t.patChunks) {
		size := patChunkSize
		if len(p) > size {
			size = len(p)
		}
		t.patChunks = append(t.patChunks, make([]Comp, 0, size))
	}
	cur := t.patChunks[t.patIdx]
	if cap(cur)-len(cur) < len(p) {
		t.patIdx++
		return t.internPattern(p)
	}
	start := len(cur)
	cur = append(cur, p...)
	t.patChunks[t.patIdx] = cur
	return Pattern(cur[start:len(cur):len(cur)])
}

// SetMemo toggles inferred-constraint memoization (Algorithm 4 line 13 /
// Algorithm 7 line 11). Disabling it preserves correctness but forfeits
// the amortized bounds of Lemma 4.3 — Example 4.1's Ω(N³) blow-up; it
// exists for the ablation benchmarks.
func (t *Tree) SetMemo(on bool) { t.memo = on }

// Attrs returns the number of attributes n.
func (t *Tree) Attrs() int { return t.n }

// SetStats attaches per-run cost counters (may be nil).
func (t *Tree) SetStats(s *certificate.Stats) { t.stats = s }

// SetTrace attaches a hook receiving every constraint stored (for tests).
func (t *Tree) SetTrace(fn func(Constraint)) { t.trace = fn }

func (t *Tree) countOp() {
	if t.stats != nil {
		t.stats.CDSOps++
	}
}
func (t *Tree) countOps(k int) {
	if t.stats != nil {
		t.stats.CDSOps += int64(k)
	}
}

// ensure returns the node for the given pattern, materializing the path.
// It does not check interval subsumption; see InsConstraint for that.
func (t *Tree) ensure(p Pattern) *node {
	v := t.root
	for i, c := range p {
		t.countOp()
		if c.Star {
			if v.star == nil {
				v.star = t.newNode(i+1, p[:i+1])
			}
			v = v.star
			continue
		}
		child, ok := v.eq.Find(c.Val)
		if !ok {
			child = t.newNode(i+1, p[:i+1])
			v.eq.Insert(c.Val, child)
		}
		v = child
	}
	return v
}

// insertInterval stores the open interval (lo, hi) at v and deletes the
// equality children it swallows, maintaining the node invariant.
func (t *Tree) insertInterval(v *node, lo, hi int) {
	t.countOp()
	v.intervals.InsertOpen(lo, hi)
	t.countOps(v.eq.DeleteIntervalCount(lo, hi))
}

// InsConstraint inserts a constraint vector (Algorithm 5). If a prefix
// equality value is already covered by an ancestor's intervals the
// constraint is subsumed and dropped. Empty intervals are ignored.
// Amortized O(n log W) (Proposition 3.1). The constraint's Prefix is
// not retained: new nodes intern their patterns, so callers may reuse
// the backing buffer.
func (t *Tree) InsConstraint(c Constraint) {
	if len(c.Prefix) >= t.n {
		panic("cds: constraint prefix too long for attribute count")
	}
	if c.Empty() {
		return
	}
	if t.trace != nil {
		t.trace(c)
	}
	if t.stats != nil {
		t.stats.Constraints++
	}
	v := t.root
	for i, comp := range c.Prefix {
		t.countOp()
		if !comp.Star && v.intervals.Covers(comp.Val) {
			return // subsumed by an existing broader constraint
		}
		if comp.Star {
			if v.star == nil {
				v.star = t.newNode(i+1, c.Prefix[:i+1])
			}
			v = v.star
		} else {
			child, ok := v.eq.Find(comp.Val)
			if !ok {
				child = t.newNode(i+1, c.Prefix[:i+1])
				v.eq.Insert(comp.Val, child)
			}
			v = child
		}
	}
	t.insertInterval(v, c.Lo, c.Hi)
}

// filter collects the principal filter G(t1..ti): every node at depth i
// whose pattern generalizes the prefix, keeping only nodes with at least
// one stored interval (Algorithm 3 line 3). The walk follows both the
// star child and the matching equality child at every level, over the
// tree's reusable frontier double-buffer.
func (t *Tree) filter(prefix []int) []*node {
	level := append(t.levelA[:0], t.root)
	next := t.levelB[:0]
	for _, tv := range prefix {
		next = next[:0]
		for _, u := range level {
			t.countOp()
			if u.star != nil {
				next = append(next, u.star)
			}
			if child, ok := u.eq.Find(tv); ok {
				next = append(next, child)
			}
		}
		level, next = next, level
		if len(level) == 0 {
			break
		}
	}
	t.levelA, t.levelB = level, next // retain grown capacity
	out := level[:0]
	for _, u := range level {
		if !u.intervals.Empty() {
			out = append(out, u)
		}
	}
	return out
}

// chainEntry pairs a filter node with its shadow (Appendix G). For
// β-acyclic GAOs the filter is a chain (Proposition 4.2) and every node is
// its own shadow, so the walk degenerates to Algorithm 4 exactly.
type chainEntry struct {
	orig   *node
	shadow *node
}

// buildChain linearizes G (most specialized first — sorting by equality
// count descending is a valid linearization since strict specialization
// strictly increases the count), computes the shadow patterns
// P̄(u_j) = ∧_{l ≥ j} P(u_l), and materializes shadow nodes. All
// intermediate state lives in tree scratch; the returned slice is valid
// until the next buildChain call. In the β-acyclic chain case every
// suffix meet collapses onto an existing pattern and nothing is
// computed or materialized.
func (t *Tree) buildChain(g []*node) []chainEntry {
	order := append(t.chainOrder[:0], g...)
	// Insertion sort by EqCount descending (G is small: ≤ 2^depth, in
	// practice ≤ m+1 patterns).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].pattern.EqCount() > order[j-1].pattern.EqCount(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	entries := t.chainBuf[:0]
	for _, u := range order {
		entries = append(entries, chainEntry{orig: u})
	}
	// Shadows are the suffix meets P̄(u_j) = ∧_{l ≥ j} P(u_l). When
	// P(u_j) specializes the running meet — always, on a chain — the
	// meet is P(u_j) itself and no fresh pattern is needed.
	suffix := t.suffixBuf[:0]
	for range order {
		suffix = append(suffix, nil)
	}
	t.meetBuf = t.meetBuf[:0]
	for j := len(order) - 1; j >= 0; j-- {
		switch {
		case j == len(order)-1:
			suffix[j] = order[j].pattern
		case order[j].pattern.SpecializationOf(suffix[j+1]):
			suffix[j] = order[j].pattern
		default:
			suffix[j] = t.meetInto(order[j].pattern, suffix[j+1])
		}
	}
	for j := range entries {
		if patternsEqual(suffix[j], entries[j].orig.pattern) {
			entries[j].shadow = entries[j].orig
		} else {
			entries[j].shadow = t.ensure(suffix[j])
		}
	}
	t.chainOrder, t.chainBuf, t.suffixBuf = order, entries, suffix
	return entries
}

// meetInto computes Meet(p, q) into the tree's meet scratch. The result
// is valid until the next GetProbePoint iteration; ensure() interns it
// if a shadow node is materialized from it.
func (t *Tree) meetInto(p, q Pattern) Pattern {
	start := len(t.meetBuf)
	for i := range p {
		switch {
		case p[i].Star:
			t.meetBuf = append(t.meetBuf, q[i])
		default:
			t.meetBuf = append(t.meetBuf, p[i])
		}
	}
	return Pattern(t.meetBuf[start:len(t.meetBuf):len(t.meetBuf)])
}

func patternsEqual(a, b Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nextPair returns the smallest y ≥ x not covered at the shadow node nor
// at its original node, memoizing the skipped stretch at the shadow
// (Algorithm 4 on the two-element chain {ū, u} used by Algorithm 7).
func (t *Tree) nextPair(x int, e chainEntry) int {
	if e.shadow == e.orig {
		t.countOp()
		return e.orig.intervals.Next(x)
	}
	y := x
	for {
		t.countOps(2)
		z := e.orig.intervals.Next(y)
		y = e.shadow.intervals.Next(z)
		if y == z {
			break
		}
	}
	if y > x && t.memo {
		t.insertInterval(e.shadow, x-1, y)
		if t.trace != nil {
			t.trace(Constraint{Prefix: e.shadow.pattern, Lo: x - 1, Hi: y})
		}
	}
	return y
}

// nextChainVal returns the smallest y ≥ x free at every entry of
// chain[j:], inserting inferred constraints at shadows along the way
// (Algorithms 4 and 7: nextChainVal / nextShadowChainVal).
func (t *Tree) nextChainVal(x int, chain []chainEntry, j int) int {
	if j == len(chain)-1 {
		return t.nextPair(x, chain[j])
	}
	y := x
	for {
		z := t.nextChainVal(y, chain, j+1)
		y = t.nextPair(z, chain[j])
		if y == z {
			break
		}
	}
	// Memoize at this level's shadow: everything in (x-1, y) is ruled out
	// for tuples matching the shadow pattern.
	if !t.memo {
		return y
	}
	if y > x && chain[j].shadow != chain[j].orig {
		t.insertInterval(chain[j].shadow, x-1, y)
		if t.trace != nil {
			t.trace(Constraint{Prefix: chain[j].shadow.pattern, Lo: x - 1, Hi: y})
		}
	} else if y > x {
		t.insertInterval(chain[j].orig, x-1, y)
		if t.trace != nil {
			t.trace(Constraint{Prefix: chain[j].orig.pattern, Lo: x - 1, Hi: y})
		}
	}
	return y
}

// GetProbePoint returns a tuple t active with respect to every stored
// constraint, or nil when the constraints cover the whole output space
// (Algorithm 3, generalized per Algorithm 6). Values are found
// coordinate by coordinate, backtracking with inferred constraints when a
// prefix admits no continuation.
//
// The returned slice is the tree's probe scratch: it is valid until the
// next call to GetProbePoint and must be copied by callers that retain
// it. On the steady-state path the call performs zero allocations.
func (t *Tree) GetProbePoint() []int {
	tv := t.tv
	i := 0
	for i < t.n {
		g := t.filter(tv[:i])
		act := t.activeBoxes(i)
		if len(g) == 0 && len(act) == 0 {
			tv[i] = -1
			i++
			continue
		}
		var chain []chainEntry
		if len(g) > 0 {
			chain = t.buildChain(g)
		}
		val := -1
		if chain != nil {
			val = t.nextChainVal(-1, chain, 0)
		}
		// Alternate chain advances with box skips until a value is free
		// of both, or the level is exhausted.
		usedBox := false
		for len(act) > 0 && val < ordered.PosInf {
			nv := t.boxAdvance(val, act)
			if nv == val {
				break
			}
			val, usedBox = nv, true
			if chain == nil || val >= ordered.PosInf {
				break
			}
			val = t.nextChainVal(val, chain, 0)
		}
		if val < ordered.PosInf {
			tv[i] = val
			i++
			continue
		}
		// No value available: back-track (Algorithm 3 lines 11–16).
		if chain != nil && !usedBox {
			// Interval-only cover: coverage of level i depends only on
			// the components pinned by the chain's bottom shadow
			// pattern, so the inferred constraint may keep that
			// pattern's generality.
			bottom := chain[0].shadow.pattern
			i0 := bottom.LastEqPos()
			if i0 == 0 {
				return nil
			}
			if t.stats != nil {
				t.stats.Backtracks++
			}
			pv := bottom[i0-1].Val
			t.InsConstraint(Constraint{
				Prefix: bottom[:i0-1],
				Lo:     pv - 1,
				Hi:     pv + 1,
			})
			i = i0 - 1
			continue
		}
		// Boxes contributed to the cover, so i ≥ 1 (a box's last
		// dimension is at position ≥ 1) and a box's applicability may
		// hinge on any coordinate of the current prefix. Geometric
		// resolution re-proves the exhaustion and generalizes it to the
		// whole applicability rectangle A_0×…×A_{i-1} of the proof,
		// stored as a derived box: one backtrack rules out the remainder
		// of a cluster — and, crucially, the derived box keeps covering
		// sibling prefixes, so the exhaustion is never re-derived one
		// value at a time (which would not terminate on an unbounded
		// domain). On the rare resolution failure the fully-specific
		// single-value constraint still guarantees local progress.
		if t.stats != nil {
			t.stats.Backtracks++
		}
		if dims, ok := t.boxResolve(i, g, act); ok {
			t.InsBox(BoxConstraint{Dims: dims})
		} else {
			pv := tv[i-1]
			t.InsConstraint(Constraint{
				Prefix: t.eqPrefix(i - 1),
				Lo:     pv - 1,
				Hi:     pv + 1,
			})
		}
		i--
	}
	if t.stats != nil {
		t.stats.ProbePoints++
	}
	return tv
}

// CoversTuple reports whether some stored constraint rules out the full
// tuple — i.e. the tuple is NOT active. Used by tests and debug checks;
// walks all generalization paths, O(2^n log W) worst case.
func (t *Tree) CoversTuple(tuple []int) bool {
	level := []*node{t.root}
	for i := 0; i < t.n && len(level) > 0; i++ {
		for _, u := range level {
			if u.intervals.Covers(tuple[i]) {
				return true
			}
		}
		if i == t.n-1 {
			break
		}
		next := make([]*node, 0, len(level)*2)
		for _, u := range level {
			if u.star != nil {
				next = append(next, u.star)
			}
			if child, ok := u.eq.Find(tuple[i]); ok {
				next = append(next, child)
			}
		}
		level = next
	}
	for _, list := range t.boxByLast {
		for _, v := range list {
			if v.covers(tuple) {
				return true
			}
		}
	}
	return false
}

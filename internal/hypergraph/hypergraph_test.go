package hypergraph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Queries from the paper, used throughout.
var (
	// Q∆ = R(A,B) ⋈ S(A,C) ⋈ T(B,C): α-cyclic and β-cyclic (Example A.1).
	triangle = [][]string{{"A", "B"}, {"A", "C"}, {"B", "C"}}
	// Q∆+U: adding U(A,B,C) makes it α-acyclic but still β-cyclic.
	triangleU = [][]string{{"A", "B"}, {"A", "C"}, {"B", "C"}, {"A", "B", "C"}}
	// Bow-tie R(X) ⋈ S(X,Y) ⋈ T(Y): β-acyclic (Appendix I).
	bowtie = [][]string{{"X"}, {"X", "Y"}, {"Y"}}
	// Path query R1(A1,A2) ⋈ … ⋈ R4(A4,A5): β-acyclic (Appendix J).
	path5 = [][]string{{"A1", "A2"}, {"A2", "A3"}, {"A3", "A4"}, {"A4", "A5"}}
	// Example B.7: R(A,B,C) ⋈ S(A,C) ⋈ T(B,C): β-acyclic,
	// (C,A,B) is a nested elimination order but (A,B,C) is not.
	exB7 = [][]string{{"A", "B", "C"}, {"A", "C"}, {"B", "C"}}
	// Star query of Section 5.2.
	star = [][]string{{"A"}, {"A", "B"}, {"A", "C"}, {"A", "D"}, {"B"}, {"C"}, {"D"}}
)

func TestNewNormalization(t *testing.T) {
	h := New([][]string{{"B", "A", "B"}, {"C"}})
	if !reflect.DeepEqual(h.Edges[0], []string{"A", "B"}) {
		t.Fatalf("edge 0 = %v", h.Edges[0])
	}
	if !reflect.DeepEqual(h.Vertices, []string{"B", "A", "C"}) {
		t.Fatalf("vertices = %v", h.Vertices)
	}
}

func TestAlphaAcyclicity(t *testing.T) {
	cases := []struct {
		name  string
		edges [][]string
		want  bool
	}{
		{"triangle", triangle, false},
		{"triangle+U", triangleU, true},
		{"bowtie", bowtie, true},
		{"path5", path5, true},
		{"exB7", exB7, true},
		{"star", star, true},
		{"single", [][]string{{"A", "B"}}, true},
		{"empty", nil, true},
		{"4cycle", [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "A"}}, false},
	}
	for _, c := range cases {
		if got := New(c.edges).IsAlphaAcyclic(); got != c.want {
			t.Errorf("%s: IsAlphaAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBetaAcyclicity(t *testing.T) {
	cases := []struct {
		name  string
		edges [][]string
		want  bool
	}{
		{"triangle", triangle, false},
		{"triangle+U", triangleU, false}, // α-acyclic but β-cyclic (Example A.1)
		{"bowtie", bowtie, true},
		{"path5", path5, true},
		{"exB7", exB7, true},
		{"star", star, true},
		{"tree query", [][]string{{"A", "B"}, {"B", "C"}, {"B", "D"}, {"D", "E"}, {"A"}, {"C"}, {"D"}, {"E"}}, true},
	}
	for _, c := range cases {
		if got := New(c.edges).IsBetaAcyclic(); got != c.want {
			t.Errorf("%s: IsBetaAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestJoinTreeValid(t *testing.T) {
	for _, edges := range [][][]string{triangleU, bowtie, path5, exB7, star} {
		h := New(edges)
		jt, ok := h.GYO()
		if !ok {
			t.Fatalf("GYO failed on α-acyclic %v", edges)
		}
		validateJoinTree(t, h, jt)
	}
	if _, ok := New(triangle).GYO(); ok {
		t.Fatal("GYO accepted the triangle")
	}
}

// validateJoinTree checks the running-intersection property: for every
// vertex, the set of edges containing it is connected in the tree.
func validateJoinTree(t *testing.T, h *Hypergraph, jt *JoinTree) {
	t.Helper()
	n := len(h.Edges)
	if jt.Root < 0 || jt.Root >= n {
		t.Fatalf("bad root %d", jt.Root)
	}
	// Check parents form a forest rooted at Root.
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		j := i
		for j != jt.Root {
			if seen[j] {
				t.Fatalf("cycle in join tree at %d", j)
			}
			seen[j] = true
			j = jt.Parent[j]
			if j < 0 || j >= n {
				t.Fatalf("dangling parent pointer from %d", i)
			}
		}
	}
	for _, v := range h.Vertices {
		// Collect edges containing v, check connectivity via parents:
		// walking up from any containing edge, the path to the "highest"
		// containing edge must stay within containing edges.
		var holders []int
		for i, e := range h.Edges {
			if contains(e, v) {
				holders = append(holders, i)
			}
		}
		if len(holders) <= 1 {
			continue
		}
		// depth of node
		depth := func(i int) int {
			d := 0
			for i != jt.Root {
				i = jt.Parent[i]
				d++
			}
			return d
		}
		// The topmost holder.
		top := holders[0]
		for _, i := range holders[1:] {
			if depth(i) < depth(top) {
				top = i
			}
		}
		holds := map[int]bool{}
		for _, i := range holders {
			holds[i] = true
		}
		for _, i := range holders {
			for i != top {
				if !holds[i] {
					t.Fatalf("vertex %q: connectivity broken at edge %d", v, i)
				}
				i = jt.Parent[i]
				if depth(i) < depth(top) {
					break
				}
			}
		}
	}
}

func TestNestedEliminationOrder(t *testing.T) {
	for _, edges := range [][][]string{bowtie, path5, exB7, star} {
		h := New(edges)
		gao, ok := h.NestedEliminationOrder()
		if !ok {
			t.Fatalf("no NEO for β-acyclic %v", edges)
		}
		if len(gao) != len(h.Vertices) {
			t.Fatalf("NEO %v misses vertices of %v", gao, h.Vertices)
		}
		nested, err := h.IsNestedEliminationOrder(gao)
		if err != nil || !nested {
			t.Fatalf("returned order %v is not a nested elimination order (%v)", gao, err)
		}
	}
	if _, ok := New(triangle).NestedEliminationOrder(); ok {
		t.Fatal("triangle must have no nested elimination order")
	}
	if _, ok := New(triangleU).NestedEliminationOrder(); ok {
		t.Fatal("triangle+U must have no nested elimination order")
	}
}

func TestExampleB7Orders(t *testing.T) {
	// The paper: for R(A,B,C) ⋈ S(A,C) ⋈ T(B,C), (C,A,B) is a nested
	// elimination order while (A,B,C) is not.
	h := New(exB7)
	nested, err := h.IsNestedEliminationOrder([]string{"C", "A", "B"})
	if err != nil || !nested {
		t.Fatalf("(C,A,B) should be nested: %v %v", nested, err)
	}
	nested, err = h.IsNestedEliminationOrder([]string{"A", "B", "C"})
	if err != nil || nested {
		t.Fatalf("(A,B,C) should not be nested: %v %v", nested, err)
	}
}

func TestEliminationWidth(t *testing.T) {
	// Triangle: every order has width 2.
	h := New(triangle)
	for _, gao := range [][]string{{"A", "B", "C"}, {"B", "C", "A"}, {"C", "A", "B"}} {
		w, err := h.EliminationWidth(gao)
		if err != nil || w != 2 {
			t.Fatalf("triangle width(%v) = %d, %v", gao, w, err)
		}
	}
	// Path: width 1 in the natural order.
	hp := New(path5)
	w, err := hp.EliminationWidth([]string{"A1", "A2", "A3", "A4", "A5"})
	if err != nil || w != 1 {
		t.Fatalf("path width = %d, %v", w, err)
	}
	// Example B.7 under (A,B,C): eliminating C last gives U = {A,B}, width 2.
	hb := New(exB7)
	w, err = hb.EliminationWidth([]string{"A", "B", "C"})
	if err != nil || w != 2 {
		t.Fatalf("exB7 width(A,B,C) = %d, %v", w, err)
	}
	w, err = hb.EliminationWidth([]string{"C", "A", "B"})
	if err != nil || w != 2 {
		t.Fatalf("exB7 width(C,A,B) = %d, %v", w, err)
	}
}

func TestEliminationWidthErrors(t *testing.T) {
	h := New(triangle)
	if _, err := h.EliminationWidth([]string{"A", "B"}); err == nil {
		t.Fatal("short GAO must error")
	}
	if _, err := h.EliminationWidth([]string{"A", "B", "B"}); err == nil {
		t.Fatal("duplicate GAO must error")
	}
	if _, err := h.EliminationWidth([]string{"A", "B", "X"}); err == nil {
		t.Fatal("wrong attribute must error")
	}
}

func TestGreedyWidthOrder(t *testing.T) {
	// On β-acyclic inputs the greedy order must be a nested elimination
	// order (nest points are preferred).
	for _, edges := range [][][]string{bowtie, path5, exB7, star} {
		h := New(edges)
		gao, w := h.GreedyWidthOrder()
		nested, err := h.IsNestedEliminationOrder(gao)
		if err != nil || !nested {
			t.Fatalf("greedy order %v not nested for %v", gao, edges)
		}
		wCheck, _ := h.EliminationWidth(gao)
		if w != wCheck {
			t.Fatalf("returned width %d != recomputed %d", w, wCheck)
		}
	}
	// Triangle: greedy must achieve the treewidth 2.
	gao, w := New(triangle).GreedyWidthOrder()
	if w != 2 || len(gao) != 3 {
		t.Fatalf("triangle greedy = %v width %d", gao, w)
	}
}

func TestPrefixPosetChainEquivalence(t *testing.T) {
	// Property (Proposition A.6): a random order over a β-acyclic graph is
	// nested iff our chain check of the prefix posets says so; and the
	// hypergraph is β-acyclic iff some permutation is nested. Cross-check
	// on small random hypergraphs against brute force over permutations.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		nv := 3 + rng.Intn(2) // 3..4 vertices
		ne := 2 + rng.Intn(3)
		names := []string{"A", "B", "C", "D"}[:nv]
		var edges [][]string
		for i := 0; i < ne; i++ {
			var e []string
			for _, v := range names {
				if rng.Intn(2) == 0 {
					e = append(e, v)
				}
			}
			if len(e) == 0 {
				e = append(e, names[rng.Intn(nv)])
			}
			edges = append(edges, e)
		}
		h := New(edges)
		anyNested := false
		perms := permutations(h.Vertices)
		for _, p := range perms {
			ok, err := h.IsNestedEliminationOrder(p)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				anyNested = true
				break
			}
		}
		if got := h.IsBetaAcyclic(); got != anyNested {
			t.Fatalf("trial %d edges %v: IsBetaAcyclic=%v but brute force says %v", trial, edges, got, anyNested)
		}
	}
}

func permutations(items []string) [][]string {
	if len(items) <= 1 {
		return [][]string{append([]string(nil), items...)}
	}
	var out [][]string
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{items[i]}, p...))
		}
	}
	return out
}

func TestBetaImpliesAlpha(t *testing.T) {
	// β-acyclicity is strictly stronger than α-acyclicity; verify the
	// implication on random hypergraphs.
	rng := rand.New(rand.NewSource(17))
	names := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 100; trial++ {
		var edges [][]string
		ne := 1 + rng.Intn(4)
		for i := 0; i < ne; i++ {
			var e []string
			for _, v := range names {
				if rng.Intn(3) == 0 {
					e = append(e, v)
				}
			}
			if len(e) == 0 {
				e = append(e, names[rng.Intn(len(names))])
			}
			edges = append(edges, e)
		}
		h := New(edges)
		if h.IsBetaAcyclic() && !h.IsAlphaAcyclic() {
			t.Fatalf("edges %v: β-acyclic but not α-acyclic", edges)
		}
	}
}

func TestPrefixPosetsShape(t *testing.T) {
	h := New(path5)
	gao := []string{"A1", "A2", "A3", "A4", "A5"}
	posets, universes, err := h.PrefixPosets(gao)
	if err != nil {
		t.Fatal(err)
	}
	if len(posets) != 5 || len(universes) != 5 {
		t.Fatalf("lengths: %d %d", len(posets), len(universes))
	}
	// Eliminating A5 (last): only R4(A4,A5) contains it; P = {{A4}}; U = {A4}.
	if !reflect.DeepEqual(universes[4], []string{"A4"}) {
		t.Fatalf("U(P_5) = %v", universes[4])
	}
	// U(P_1) must be empty.
	if len(universes[0]) != 0 {
		t.Fatalf("U(P_1) = %v", universes[0])
	}
	for k, u := range universes {
		if !sort.StringsAreSorted(u) {
			t.Fatalf("universe %d not sorted: %v", k, u)
		}
	}
}

// TestOrderTieBreakDeterminism is the regression test for the
// lexicographic tie-break: equal-width choices must not depend on the
// order edges (atoms) or vertices were first mentioned in. Every
// permutation of the edge list must produce the identical order, and
// symmetric vertices must come out in lexicographic position.
func TestOrderTieBreakDeterminism(t *testing.T) {
	// R(X,A) ⋈ S(X,B): A and B are fully symmetric, so only the
	// tie-break decides their relative position.
	presentations := [][][]string{
		{{"X", "A"}, {"X", "B"}},
		{{"X", "B"}, {"X", "A"}},
		{{"B", "X"}, {"A", "X"}},
	}
	var wantNEO, wantGreedy []string
	for i, edges := range presentations {
		h := New(edges)
		neo, ok := h.NestedEliminationOrder()
		if !ok {
			t.Fatalf("presentation %d: no NEO", i)
		}
		greedy, _ := h.GreedyWidthOrder()
		if i == 0 {
			wantNEO, wantGreedy = neo, greedy
			continue
		}
		if !reflect.DeepEqual(neo, wantNEO) {
			t.Errorf("presentation %d: NEO = %v, want %v", i, neo, wantNEO)
		}
		if !reflect.DeepEqual(greedy, wantGreedy) {
			t.Errorf("presentation %d: greedy = %v, want %v", i, greedy, wantGreedy)
		}
	}
	// Lexicographic within the tie: the larger of the two symmetric
	// attributes is eliminated first, i.e. placed later in the order.
	posA, posB := -1, -1
	for i, v := range wantNEO {
		switch v {
		case "A":
			posA = i
		case "B":
			posB = i
		}
	}
	if posA > posB {
		t.Errorf("NEO %v places B before A despite the lexicographic tie-break", wantNEO)
	}
	// Cyclic tie case: the triangle's three vertices are symmetric too.
	tri := [][][]string{
		{{"P", "Q"}, {"Q", "R"}, {"P", "R"}},
		{{"Q", "R"}, {"P", "R"}, {"P", "Q"}},
	}
	g0, _ := New(tri[0]).GreedyWidthOrder()
	g1, _ := New(tri[1]).GreedyWidthOrder()
	if !reflect.DeepEqual(g0, g1) {
		t.Errorf("triangle greedy orders differ across presentations: %v vs %v", g0, g1)
	}
}

package baseline

import (
	"context"
	"sort"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// hashTrie is a nested hash-map index over an atom's attributes in GAO
// order, the access structure used by our NPRR-style generic join [40].
type hashTrie struct {
	children map[int]*hashTrie
}

func buildHashTrie(tuples [][]int) *hashTrie {
	root := &hashTrie{children: map[int]*hashTrie{}}
	for _, tup := range tuples {
		n := root
		for _, v := range tup {
			child, ok := n.children[v]
			if !ok {
				child = &hashTrie{children: map[int]*hashTrie{}}
				n.children[v] = child
			}
			n = child
		}
	}
	return root
}

// NPRR evaluates the join with the generic worst-case-optimal join,
// calling emit for every output tuple.
func NPRR(p *core.Problem, stats *certificate.Stats, emit func([]int)) error {
	return NPRRStream(context.Background(), p, stats, func(t []int) bool {
		emit(t)
		return true
	})
}

// NPRRStream evaluates the join with an attribute-at-a-time generic join
// in the style of Ngo–Porat–Ré–Rudra [40]: at each GAO attribute, the
// candidate set is the distinct values of the participating atom with the
// fewest candidates (the size-based choice behind the AGM bound), and
// each candidate is hash-probed against the other participating atoms.
// Worst-case optimal, but ω(|C|) on the Appendix J families.
//
// Candidates are visited in sorted order, so tuples stream in
// GAO-lexicographic order. emit returns false to stop the enumeration;
// a cancelled context stops it with ctx.Err(), checked once per search
// level.
func NPRRStream(ctx context.Context, p *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
	n := len(p.GAO)
	levelAtoms := make([][]int, n)
	for ai := range p.Atoms {
		for _, gp := range p.Atoms[ai].Positions {
			levelAtoms[gp] = append(levelAtoms[gp], ai)
		}
	}
	tries := make([]*hashTrie, len(p.Atoms))
	for i := range p.Atoms {
		tries[i] = buildHashTrie(p.Atoms[i].Tree.Tuples())
	}
	// cursor[i]: current hash-trie node of atom i given the bound prefix.
	cursor := make([]*hashTrie, len(p.Atoms))
	copy(cursor, tries)
	t := make([]int, n)
	var rec func(level int) error
	rec = func(level int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if level == n {
			if stats != nil {
				stats.Outputs++
			}
			if !emit(append([]int(nil), t...)) {
				return errStop
			}
			return nil
		}
		parts := levelAtoms[level]
		// Smallest candidate set among the participating atoms.
		minIdx := parts[0]
		for _, ai := range parts[1:] {
			if len(cursor[ai].children) < len(cursor[minIdx].children) {
				minIdx = ai
			}
		}
		// Sorted candidate values: hash-map order is nondeterministic, and
		// the streaming contract promises lexicographic emission.
		cands := make([]int, 0, len(cursor[minIdx].children))
		for v := range cursor[minIdx].children {
			if p.Bounds != nil && !p.Bounds[level].Contains(v) {
				continue // pushed-down selection: candidate outside the bound
			}
			cands = append(cands, v)
		}
		sort.Ints(cands)
		saved := make([]*hashTrie, len(parts))
		for _, v := range cands {
			sub := cursor[minIdx].children[v]
			ok := true
			for _, ai := range parts {
				if stats != nil {
					stats.Comparisons++
				}
				if ai == minIdx {
					continue
				}
				if _, found := cursor[ai].children[v]; !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for si, ai := range parts {
				saved[si] = cursor[ai]
				if ai == minIdx {
					cursor[ai] = sub
				} else {
					cursor[ai] = cursor[ai].children[v]
				}
			}
			t[level] = v
			if err := rec(level + 1); err != nil {
				return err
			}
			for si, ai := range parts {
				cursor[ai] = saved[si]
			}
		}
		return nil
	}
	return sweep(rec(0))
}

// NPRRAll runs NPRR and collects the outputs (already sorted: NPRRStream
// visits candidates in value order).
func NPRRAll(p *core.Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := NPRR(p, stats, func(t []int) { out = append(out, t) })
	return out, err
}

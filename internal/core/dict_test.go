package core

import (
	"reflect"
	"testing"

	"minesweeper/internal/ordered"
)

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict([]int{100, 7, 100, 50}, []int{7, 3000})
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	for want, v := range []int{7, 50, 100, 3000} {
		c, ok := d.Encode(v)
		if !ok || c != want {
			t.Fatalf("Encode(%d) = %d, %v; want %d", v, c, ok, want)
		}
		if got := d.Decode(c); got != v {
			t.Fatalf("Decode(%d) = %d, want %d", c, got, v)
		}
	}
	if _, ok := d.Encode(51); ok {
		t.Fatal("Encode(51) should miss")
	}
	if got := d.Decode(-1); got != ordered.NegInf {
		t.Fatalf("Decode(-1) = %d, want NegInf", got)
	}
	if got := d.Decode(4); got != ordered.PosInf {
		t.Fatalf("Decode(4) = %d, want PosInf", got)
	}
	// Bound codes: [8, 99] covers values {50, 100}? No — 100 > 99, so
	// only 50: codes [1, 1].
	if lo, hi := d.LoCode(8), d.HiCode(99); lo != 1 || hi != 1 {
		t.Fatalf("LoCode/HiCode = %d, %d; want 1, 1", lo, hi)
	}
	// An uncovered range encodes empty (Lo > Hi).
	if lo, hi := d.LoCode(51), d.HiCode(99); lo <= hi {
		t.Fatalf("uncovered range gave non-empty codes [%d, %d]", lo, hi)
	}
}

func TestDictSetEncodeTuplesAndBounds(t *testing.T) {
	// GAO positions: 0 encoded, 1 raw.
	d := NewDict([]int{10, 20, 30})
	ds := &DictSet{ByPos: []*Dict{d, nil}}
	if !ds.Any() {
		t.Fatal("Any should be true")
	}
	tuples := [][]int{{10, 5}, {30, 6}}
	ds.EncodeTuples(tuples, []int{0, 1})
	if !reflect.DeepEqual(tuples, [][]int{{0, 5}, {2, 6}}) {
		t.Fatalf("encoded tuples = %v", tuples)
	}
	bounds := ds.EncodeBounds([]Bound{{Lo: 15, Hi: 30}, {Lo: 5, Hi: 6}})
	if bounds[0] != (Bound{Lo: 1, Hi: 2}) {
		t.Fatalf("encoded bound = %+v", bounds[0])
	}
	if bounds[1] != (Bound{Lo: 5, Hi: 6}) {
		t.Fatalf("raw bound changed: %+v", bounds[1])
	}
	tup := []int{1, 42}
	ds.DecodeInPlace(tup)
	if !reflect.DeepEqual(tup, []int{20, 42}) {
		t.Fatalf("decoded = %v", tup)
	}
	var nilSet *DictSet
	if nilSet.Any() {
		t.Fatal("nil DictSet must report Any = false")
	}
}

// TestFreqDictOrdering pins the NewFreqDict code assignment: descending
// occurrence count, ties by ascending value, with a working value→code
// lookup despite the non-monotone code space.
func TestFreqDictOrdering(t *testing.T) {
	// 500 occurs 3×, 7 twice, 90 twice, 42 once.
	d := NewFreqDict([]int{500, 7, 90, 500}, []int{500, 42, 7, 90})
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if !d.Freq() {
		t.Fatal("Freq must report true")
	}
	if d.OrderPreserving() {
		t.Fatal("a permuted code space must not report order-preserving")
	}
	want := []int{500, 7, 90, 42} // count desc, value asc
	for c, v := range want {
		if got := d.Decode(c); got != v {
			t.Fatalf("Decode(%d) = %d, want %d", c, got, v)
		}
		ec, ok := d.Encode(v)
		if !ok || ec != c {
			t.Fatalf("Encode(%d) = %d, %v; want %d", v, ec, ok, c)
		}
	}
	if _, ok := d.Encode(41); ok {
		t.Fatal("Encode(41) should miss")
	}
	if got := d.Decode(-1); got != ordered.NegInf {
		t.Fatalf("Decode(-1) = %d, want NegInf", got)
	}
	if got := d.Decode(4); got != ordered.PosInf {
		t.Fatalf("Decode(4) = %d, want PosInf", got)
	}

	// A frequency ordering that happens to coincide with value order is
	// order-preserving (counts already descending by value).
	mono := NewFreqDict([]int{1, 1, 1, 2, 2, 3})
	if !mono.OrderPreserving() {
		t.Fatal("identity permutation must stay order-preserving")
	}
	if !mono.Freq() {
		t.Fatal("identity-permutation freq dict still reports Freq")
	}
}

// TestFreqDictBoundsFallBackToFull: a non-order-preserving dictionary
// cannot express a value range as one code range, so EncodeBounds must
// widen to the full bound (the shaping net re-checks raw bounds).
func TestFreqDictBoundsFallBackToFull(t *testing.T) {
	d := NewFreqDict([]int{500, 500, 7, 90})
	ds := &DictSet{ByPos: []*Dict{d}}
	bounds := ds.EncodeBounds([]Bound{{Lo: 7, Hi: 90}})
	if !bounds[0].Full() {
		t.Fatalf("non-order-preserving bound = %+v, want full", bounds[0])
	}
}

// TestDictJoinEquivalence runs the same join raw and rank-encoded
// through the core engine and checks the decoded results agree — the
// order-preserving invariant end to end.
func TestDictJoinEquivalence(t *testing.T) {
	gao := []string{"A", "B", "C"}
	r := [][]int{{1000, 7}, {1000, 900007}, {52, 7}, {600000, 42}}
	s := [][]int{{7, 3}, {900007, 1000000000}, {42, 3}}
	rawSpecs := []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
	}
	pRaw, err := NewProblem(gao, rawSpecs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MinesweeperAll(pRaw, nil)
	if err != nil {
		t.Fatal(err)
	}

	col := func(tuples [][]int, j int) []int {
		out := make([]int, len(tuples))
		for i, tup := range tuples {
			out[i] = tup[j]
		}
		return out
	}
	ds := &DictSet{ByPos: []*Dict{
		NewDict(col(r, 0)),
		NewDict(col(r, 1), col(s, 0)),
		NewDict(col(s, 1)),
	}}
	enc := func(tuples [][]int, positions []int) [][]int {
		cp := make([][]int, len(tuples))
		for i, tup := range tuples {
			cp[i] = append([]int(nil), tup...)
		}
		ds.EncodeTuples(cp, positions)
		return cp
	}
	pEnc, err := NewProblem(gao, []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: enc(r, []int{0, 1})},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: enc(s, []int{1, 2})},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int
	err = MinesweeperStream(pEnc, nil, func(tup []int) bool {
		ds.DecodeInPlace(tup)
		got = append(got, tup)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("encoded join = %v, raw join = %v", got, want)
	}
}

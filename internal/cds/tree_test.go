package cds

import (
	"math/rand"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// tracker records every constraint handed to the tree so tests can verify
// probe points against the full stored set, including inferred ones.
type tracker struct {
	all []Constraint
}

func track(tr *Tree) *tracker {
	tk := &tracker{}
	tr.SetTrace(func(c Constraint) { tk.all = append(tk.all, c) })
	return tk
}

// activeWRT reports whether the tuple satisfies none of the constraints.
func (tk *tracker) activeWRT(t []int) bool {
	for _, c := range tk.all {
		if c.Covers(t) {
			return false
		}
	}
	return true
}

func TestEmptyTreeProbe(t *testing.T) {
	tr := NewTree(3)
	got := tr.GetProbePoint()
	if got == nil {
		t.Fatal("empty CDS must yield a probe point")
	}
	for _, v := range got {
		if v != -1 {
			t.Fatalf("expected all -1 seed, got %v", got)
		}
	}
}

func TestFullCoverTerminates(t *testing.T) {
	tr := NewTree(2)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: ordered.PosInf})
	if got := tr.GetProbePoint(); got != nil {
		t.Fatalf("fully covered space returned %v", got)
	}
}

func TestSingleAttributeSweep(t *testing.T) {
	tr := NewTree(1)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 3})
	got := tr.GetProbePoint()
	if got == nil || got[0] != 3 {
		t.Fatalf("probe = %v, want [3]", got)
	}
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 2, Hi: 4})
	got = tr.GetProbePoint()
	if got == nil || got[0] != 4 {
		t.Fatalf("probe = %v, want [4]", got)
	}
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 3, Hi: ordered.PosInf})
	if got = tr.GetProbePoint(); got != nil {
		t.Fatalf("probe = %v, want nil", got)
	}
}

func TestSubsumedConstraintDropped(t *testing.T) {
	tr := NewTree(2)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 0, Hi: 10})
	// Constraint under =5 is subsumed: 5 ∈ (0,10).
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(5)}, Lo: 0, Hi: 100})
	if tr.root.eq.Len() != 0 {
		t.Fatal("subsumed constraint created a child")
	}
	// Inserting an interval that swallows existing children deletes them.
	tr2 := NewTree(2)
	tr2.InsConstraint(Constraint{Prefix: Pattern{Eq(5)}, Lo: 0, Hi: 100})
	if tr2.root.eq.Len() != 1 {
		t.Fatal("child not created")
	}
	tr2.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 0, Hi: 10})
	if tr2.root.eq.Len() != 0 {
		t.Fatal("swallowed child not deleted")
	}
}

func TestEmptyConstraintIgnored(t *testing.T) {
	tr := NewTree(2)
	var s certificate.Stats
	tr.SetStats(&s)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 4, Hi: 5})
	if !tr.root.intervals.Empty() {
		t.Fatal("empty interval stored")
	}
}

// TestPaperExampleD1 replays the worked run of Appendix D.1 at the CDS
// level: after all constraints from the trace are inserted, the CDS must
// report that the output space is exhausted.
func TestPaperExampleD1(t *testing.T) {
	tr := NewTree(3)
	ni, pi := ordered.NegInf, ordered.PosInf
	constraints := []Constraint{
		{Prefix: Pattern{}, Lo: ni, Hi: 1},            // ⟨(-∞,1),*,*⟩ from R and S
		{Prefix: Pattern{Eq(1)}, Lo: ni, Hi: 1},       // ⟨1,(-∞,1),*⟩ from S
		{Prefix: Pattern{Star}, Lo: ni, Hi: 2},        // ⟨*,(-∞,2),*⟩ from T
		{Prefix: Pattern{Star, Eq(2)}, Lo: ni, Hi: 2}, // ⟨*,=2,(-∞,2)⟩ from T
		{Prefix: Pattern{Star, Star}, Lo: ni, Hi: 1},  // ⟨*,*,(-∞,1)⟩ from U
		{Prefix: Pattern{Star, Star}, Lo: 1, Hi: 3},   // step 2
		{Prefix: Pattern{Star, Eq(2)}, Lo: 2, Hi: 4},  // step 3
		{Prefix: Pattern{Star, Star}, Lo: 3, Hi: pi},  // step 4
		{Prefix: Pattern{Star}, Lo: 3, Hi: pi},        // step 5
		{Prefix: Pattern{Star, Eq(2)}, Lo: 4, Hi: pi}, // step 5
	}
	// After the first five constraints, (1,2,2) must be active.
	for _, c := range constraints[:5] {
		tr.InsConstraint(c)
	}
	probe := tr.GetProbePoint()
	if probe == nil {
		t.Fatal("probe should exist after step 1")
	}
	tk := track(tr) // all further constraints recorded
	for _, c := range constraints[5:] {
		tr.InsConstraint(c)
	}
	_ = tk
	// The full set covers everything: A ≥ 1 forced, B must be ≥ 2; B = 2
	// forces C ∈ {2,3} minus (-∞,2),(2,4) → nothing; B > 2 impossible
	// (B in (3,∞) ruled out, B=3 has no C: (-∞,1),(1,3),(3,∞) cover all).
	// Wait: B=3 is allowed by ⟨*,(-∞,2)⟩ and (3,∞)? 3 ∉ (3,∞). C for B=3:
	// constraints ⟨*,*,·⟩ cover (-∞,1),(1,3),(3,+∞): C=1 and C=3 remain...
	// C=1: ⟨*,*,(-∞,1)⟩ no; 1 ∈ (1,3)? no. So (1,3,1) IS active — the
	// paper's step-5 relations rule B=3 out via ⟨*,(3,∞)⟩ only for B>3.
	// The run in D.1 ends because T has no B=3 tuples: T's gap around
	// (3,·) was ⟨*,(2,4)... wait that's C. Actually D.1's step-5 inserts
	// only the two constraints above and declares termination; B=3,C∈{1,3}
	// must be covered by step-1/2/4 constraints: C=1 ∈ (1,3)? No, open.
	// C=1 is covered by... nothing? But ⟨*,*,(-∞,1)⟩ excludes C<1 and
	// ⟨*,*,(1,3)⟩ excludes C=2. Hmm — but B=3 requires (x,3) ∈ T for
	// output, and the CDS only knows inserted gaps. The paper's trace
	// includes ⟨*,(3,+∞),*⟩ covering B>3, and B=3 stays probe-able until
	// T's gap around B=3 arrives. The D.1 narrative says the algorithm
	// stops — because T's B-values are only {2}: FindGap(,3) on T gives
	// (2,+∞) i.e. constraint ⟨*,(2,+∞),*⟩, slightly wider than the listed
	// ⟨*,(3,+∞),*⟩. We follow the actual FindGap semantics.
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: 2, Hi: pi})
	if got := tr.GetProbePoint(); got != nil {
		t.Fatalf("expected exhausted space, got %v", got)
	}
}

// TestProbeActiveInvariant is the central CDS property: every returned
// probe point is active w.r.t. every constraint ever stored (including
// internally inferred ones), and after inserting a constraint covering the
// probe, the next probe differs.
func TestProbeActiveInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3) // 2..4 attributes
		tr := NewTree(n)
		tk := track(tr)
		dom := 8
		for step := 0; step < 120; step++ {
			probe := tr.GetProbePoint()
			if probe == nil {
				break
			}
			if !tk.activeWRT(probe) {
				t.Fatalf("trial %d step %d: probe %v violates a stored constraint", trial, step, probe)
			}
			// Insert a random constraint that covers the probe point, plus
			// occasionally a random unrelated one.
			c := randomCoveringConstraint(rng, probe, dom)
			tr.InsConstraint(c)
			if !c.Covers(probe) {
				t.Fatalf("generator bug: %v does not cover %v", c, probe)
			}
			if rng.Intn(3) == 0 {
				tr.InsConstraint(randomConstraint(rng, n, dom))
			}
		}
	}
}

// randomCoveringConstraint builds a constraint covering tuple t: choose a
// prefix length p, keep each prefix position as equality or star, and an
// interval around t[p].
func randomCoveringConstraint(rng *rand.Rand, t []int, dom int) Constraint {
	p := rng.Intn(len(t))
	prefix := make(Pattern, p)
	for i := 0; i < p; i++ {
		if rng.Intn(2) == 0 {
			prefix[i] = Star
		} else {
			prefix[i] = Eq(t[i])
		}
	}
	lo := t[p] - 1 - rng.Intn(2)
	hi := t[p] + 1 + rng.Intn(2)
	if rng.Intn(4) == 0 {
		lo = ordered.NegInf
	}
	if rng.Intn(4) == 0 {
		hi = ordered.PosInf
	}
	return Constraint{Prefix: prefix, Lo: lo, Hi: hi}
}

func randomConstraint(rng *rand.Rand, n, dom int) Constraint {
	p := rng.Intn(n)
	prefix := make(Pattern, p)
	for i := 0; i < p; i++ {
		if rng.Intn(2) == 0 {
			prefix[i] = Star
		} else {
			prefix[i] = Eq(rng.Intn(dom))
		}
	}
	lo := rng.Intn(dom) - 1
	return Constraint{Prefix: prefix, Lo: lo, Hi: lo + 1 + rng.Intn(4)}
}

// TestProbeProgress: repeatedly covering the probe point must terminate
// once the inserted constraints exhaust the finite sub-space the
// generator draws from. With each covering constraint at full prefix
// length, at most dom^n + slack iterations can occur.
func TestProbeProgress(t *testing.T) {
	const dom = 4
	tr := NewTree(3)
	// Keep the space finite: rule out everything outside [0,dom).
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: dom - 1, Hi: ordered.PosInf})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: dom - 1, Hi: ordered.PosInf})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: dom - 1, Hi: ordered.PosInf})
	count := 0
	for {
		probe := tr.GetProbePoint()
		if probe == nil {
			break
		}
		count++
		if count > 1000 {
			t.Fatal("CDS loops: no termination after 1000 probes")
		}
		// Cover exactly this tuple.
		pv := probe[2]
		tr.InsConstraint(Constraint{
			Prefix: Pattern{Eq(probe[0]), Eq(probe[1])}, Lo: pv - 1, Hi: pv + 1,
		})
	}
	if count != dom*dom*dom {
		t.Fatalf("enumerated %d probe points, want %d", count, dom*dom*dom)
	}
}

// TestExample41Memoization replays Example 4.1: N² constraints of the
// forms (i)–(iv) must be resolved with roughly O(N²) CDS work rather than
// the brute-force Ω(N³), thanks to inferred-constraint memoization.
func TestExample41Memoization(t *testing.T) {
	const n = 20
	tr := NewTree(3)
	var s certificate.Stats
	tr.SetStats(&s)
	// (i) ⟨a,b,(-∞,1)⟩ for all a,b ∈ [N]
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			tr.InsConstraint(Constraint{Prefix: Pattern{Eq(a), Eq(b)}, Lo: ordered.NegInf, Hi: 1})
		}
	}
	// (ii) ⟨*,b,(2i-2,2i)⟩
	for b := 1; b <= n; b++ {
		for i := 1; i <= n; i++ {
			tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(b)}, Lo: 2*i - 2, Hi: 2 * i})
		}
	}
	// (iii) ⟨*,*,(2i-1,2i+1)⟩
	for i := 1; i <= n; i++ {
		tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: 2*i - 1, Hi: 2*i + 1})
	}
	// (iv) ⟨*,*,(2N,∞)⟩
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: 2 * n, Hi: ordered.PosInf})
	// Also bound A and B so the probe space is [1,N]²:
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 1})
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: n, Hi: ordered.PosInf})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: ordered.NegInf, Hi: 1})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: n, Hi: ordered.PosInf})
	// ⟨*,*,(-∞,1)⟩ and (iii) leave only even c ≤ 2N; (ii) kills those per b.
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: ordered.NegInf, Hi: 1})

	probes := 0
	for {
		probe := tr.GetProbePoint()
		if probe == nil {
			break
		}
		probes++
		if probes > 10*n*n {
			t.Fatalf("too many probe points: memoization not effective")
		}
		// The probe must have c free; but by construction no (a,b,c) with
		// a,b ∈ [N] is active, so any returned probe would be a bug.
		if probe[0] >= 1 && probe[0] <= n && probe[1] >= 1 && probe[1] <= n {
			t.Fatalf("probe %v should be impossible", probe)
		}
	}
	// CDS work must stay near-quadratic: allow generous constant * N² log.
	if s.CDSOps > int64(600*n*n) {
		t.Fatalf("CDS ops = %d, exceeds O(N²) budget for N=%d", s.CDSOps, n)
	}
}

func TestCoversTuple(t *testing.T) {
	tr := NewTree(3)
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(1), Star}, Lo: 4, Hi: 8})
	if !tr.CoversTuple([]int{1, 99, 5}) {
		t.Fatal("should cover")
	}
	if tr.CoversTuple([]int{2, 99, 5}) || tr.CoversTuple([]int{1, 99, 8}) {
		t.Fatal("should not cover")
	}
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 10, Hi: 20})
	if !tr.CoversTuple([]int{15, 0, 0}) {
		t.Fatal("root interval should cover")
	}
}

func TestBacktrackInsertsConstraint(t *testing.T) {
	// Two attributes; constraints force backtracking: under A=5 everything
	// is covered, so the CDS must infer ⟨(4,6),*⟩-style progress and move
	// to A=6.
	tr := NewTree(2)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 5})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(5)}, Lo: ordered.NegInf, Hi: ordered.PosInf})
	var s certificate.Stats
	tr.SetStats(&s)
	probe := tr.GetProbePoint()
	if probe == nil || probe[0] != 6 {
		t.Fatalf("probe = %v, want [6, -1]", probe)
	}
	if s.Backtracks == 0 {
		t.Fatal("expected a backtrack")
	}
	// The inferred constraint must now cover (5, anything).
	if !tr.CoversTuple([]int{5, 123}) {
		t.Fatal("backtrack constraint missing")
	}
}

func TestGetProbePointStats(t *testing.T) {
	tr := NewTree(2)
	var s certificate.Stats
	tr.SetStats(&s)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 7})
	if tr.GetProbePoint() == nil {
		t.Fatal("probe expected")
	}
	if s.ProbePoints != 1 || s.Constraints != 1 || s.CDSOps == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDumpAndNodes(t *testing.T) {
	tr := NewTree(3)
	if tr.Nodes() != 1 {
		t.Fatalf("fresh tree nodes = %d", tr.Nodes())
	}
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(2), Star}, Lo: 0, Hi: 7})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(7)}, Lo: 3, Hi: 8})
	dump := tr.Dump()
	for _, want := range []string{"root", "=2", "=7", "*", "[1,6]", "[4,7]"} {
		if !containsStr(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	if tr.Nodes() != 4 { // root, =2, =2→*, =7
		t.Fatalf("nodes = %d\n%s", tr.Nodes(), dump)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

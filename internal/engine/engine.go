// Package engine is the pluggable streaming executor layer: every join
// algorithm in the library — Minesweeper itself and the comparison
// engines — runs behind one uniform interface, so limits, context
// cancellation and deadline abort behave identically regardless of which
// algorithm evaluates the query.
//
// The contract every registered engine obeys:
//
//   - Run evaluates the prepared problem and calls emit once per output
//     tuple, in GAO-lexicographic order, with a fresh slice the callback
//     may retain.
//   - emit returning false stops the enumeration; Run then returns nil.
//   - A cancelled or expired context stops the run with ctx.Err().
//   - stats may be nil; when set, the run's cost counters accumulate
//     into it (Outputs counts emitted tuples).
//   - Run attaches per-run state to the problem's trees, so concurrent
//     runs must operate on Problem.Snapshot copies.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// RunFunc evaluates a prepared join problem, streaming output tuples
// through emit.
type RunFunc func(ctx context.Context, p *core.Problem, stats *certificate.Stats, emit func([]int) bool) error

// Engine is a registered join algorithm.
type Engine struct {
	// Name is the registry key (also the CLI spelling).
	Name string
	// Streaming reports whether the first tuples arrive before the full
	// evaluation finishes (the anytime property). Materializing plans
	// (Yannakakis, hash plans) stream only their emission phase.
	Streaming bool
	// Description is a one-line summary for CLI/README listings.
	Description string
	// Run evaluates the problem under the package contract above.
	Run RunFunc
}

var (
	mu       sync.RWMutex
	registry = map[string]Engine{}
)

// Register adds an engine to the registry. Registering a duplicate name
// panics: engine names are part of the public dispatch surface.
func Register(e Engine) {
	if e.Name == "" || e.Run == nil {
		panic("engine: Register needs a name and a Run function")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
}

// Lookup returns the engine registered under name.
func Lookup(name string) (Engine, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names returns the registered engine names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

func specsFor(t *testing.T, gao []string, atoms []core.AtomSpec) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestHashJoinBasic(t *testing.T) {
	a := tableFromSpec(core.AtomSpec{Name: "R", Attrs: []string{"A", "B"},
		Tuples: [][]int{{1, 10}, {2, 20}, {3, 30}}})
	b := tableFromSpec(core.AtomSpec{Name: "S", Attrs: []string{"B", "C"},
		Tuples: [][]int{{10, 100}, {10, 101}, {30, 300}}})
	out := HashJoin(a, b, nil)
	if !reflect.DeepEqual(out.attrs, []string{"A", "B", "C"}) {
		t.Fatalf("attrs = %v", out.attrs)
	}
	SortTuples(out.tuples)
	want := [][]int{{1, 10, 100}, {1, 10, 101}, {3, 30, 300}}
	if !reflect.DeepEqual(out.tuples, want) {
		t.Fatalf("tuples = %v", out.tuples)
	}
}

func TestHashJoinCartesian(t *testing.T) {
	a := tableFromSpec(core.AtomSpec{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {2}}})
	b := tableFromSpec(core.AtomSpec{Name: "S", Attrs: []string{"B"}, Tuples: [][]int{{7}, {8}}})
	out := HashJoin(a, b, nil)
	if len(out.tuples) != 4 {
		t.Fatalf("cartesian size = %d", len(out.tuples))
	}
}

func TestSortMergeMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		mk := func(attrs []string) *table {
			n := rng.Intn(20)
			var tuples [][]int
			for i := 0; i < n; i++ {
				tup := make([]int, len(attrs))
				for j := range tup {
					tup[j] = rng.Intn(5)
				}
				tuples = append(tuples, tup)
			}
			return tableFromSpec(core.AtomSpec{Name: "X", Attrs: attrs, Tuples: tuples})
		}
		a := mk([]string{"A", "B"})
		b := mk([]string{"B", "C"})
		h := HashJoin(a, b, nil)
		m := SortMergeJoin(a, b, nil)
		SortTuples(h.tuples)
		SortTuples(m.tuples)
		if !reflect.DeepEqual(h.tuples, m.tuples) {
			t.Fatalf("trial %d: hash %v vs merge %v", trial, h.tuples, m.tuples)
		}
	}
}

func TestLeftDeepHashJoin(t *testing.T) {
	gao := []string{"A", "B", "C"}
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {3, 4}}},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: [][]int{{2, 5}, {2, 6}, {4, 7}}},
	}
	got, err := LeftDeepHashJoin(gao, atoms, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 2, 5}, {1, 2, 6}, {3, 4, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// queryShape describes a test query for the cross-engine comparison.
type queryShape struct {
	name  string
	gao   []string
	atoms [][]string
	alpha bool // α-acyclic → Yannakakis applicable
}

var shapes = []queryShape{
	{"twopath", []string{"A", "B", "C"}, [][]string{{"A", "B"}, {"B", "C"}}, true},
	{"bowtie", []string{"A", "B"}, [][]string{{"A"}, {"A", "B"}, {"B"}}, true},
	{"triangle", []string{"A", "B", "C"}, [][]string{{"A", "B"}, {"B", "C"}, {"A", "C"}}, false},
	{"path4", []string{"A", "B", "C", "D"}, [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}, true},
	{"star", []string{"A", "B", "C", "D"}, [][]string{{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B"}}, true},
	{"clique4", []string{"A", "B", "C", "D"}, [][]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}, {"C", "D"}}, false},
}

// TestAllEnginesAgree drives every engine on random instances of every
// shape and requires identical outputs: LeftDeepHashJoin is the oracle;
// Leapfrog, NPRR, Minesweeper and (for α-acyclic shapes) Yannakakis must
// match it.
func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shape := range shapes {
		for trial := 0; trial < 10; trial++ {
			dom := 2 + rng.Intn(4)
			var atoms []core.AtomSpec
			for ai, attrs := range shape.atoms {
				cnt := rng.Intn(15)
				var tuples [][]int
				for i := 0; i < cnt; i++ {
					tup := make([]int, len(attrs))
					for j := range tup {
						tup[j] = rng.Intn(dom)
					}
					tuples = append(tuples, tup)
				}
				atoms = append(atoms, core.AtomSpec{
					Name: shape.name + string(rune('R'+ai)), Attrs: attrs, Tuples: tuples})
			}
			want, err := LeftDeepHashJoin(shape.gao, atoms, nil)
			if err != nil {
				t.Fatal(err)
			}
			p := specsFor(t, shape.gao, atoms)
			p.Debug = true

			lf, err := LeapfrogAll(p, nil)
			if err != nil {
				t.Fatalf("%s/%d leapfrog: %v", shape.name, trial, err)
			}
			if !reflect.DeepEqual(lf, want) {
				t.Fatalf("%s/%d: leapfrog %v want %v", shape.name, trial, lf, want)
			}

			np, err := NPRRAll(p, nil)
			if err != nil {
				t.Fatalf("%s/%d nprr: %v", shape.name, trial, err)
			}
			if !reflect.DeepEqual(np, want) {
				t.Fatalf("%s/%d: nprr %v want %v", shape.name, trial, np, want)
			}

			ms, err := core.MinesweeperAll(p, nil)
			if err != nil {
				t.Fatalf("%s/%d minesweeper: %v", shape.name, trial, err)
			}
			SortTuples(ms)
			if !reflect.DeepEqual(ms, want) {
				t.Fatalf("%s/%d: minesweeper %v want %v", shape.name, trial, ms, want)
			}

			inl, err := IndexNestedLoopAll(p, nil)
			if err != nil {
				t.Fatalf("%s/%d inl: %v", shape.name, trial, err)
			}
			if !reflect.DeepEqual(inl, want) {
				t.Fatalf("%s/%d: index-nested-loop %v want %v", shape.name, trial, inl, want)
			}

			if shape.alpha {
				ya, err := Yannakakis(shape.gao, atoms, nil)
				if err != nil {
					t.Fatalf("%s/%d yannakakis: %v", shape.name, trial, err)
				}
				if !reflect.DeepEqual(ya, want) {
					t.Fatalf("%s/%d: yannakakis %v want %v", shape.name, trial, ya, want)
				}
			}
		}
	}
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "S", Attrs: []string{"B", "C"}},
		{Name: "T", Attrs: []string{"A", "C"}},
	}
	if _, err := Yannakakis([]string{"A", "B", "C"}, atoms, nil); err == nil {
		t.Fatal("triangle must be rejected")
	}
}

func TestYannakakisSingleAtom(t *testing.T) {
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"B", "A"}, Tuples: [][]int{{1, 2}, {3, 4}}},
	}
	got, err := Yannakakis([]string{"A", "B"}, atoms, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 1}, {4, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestYannakakisSemijoinCounts(t *testing.T) {
	// Yannakakis must touch Ω(N) tuples even when the certificate is O(1):
	// the Appendix J phenomenon in miniature.
	const n = 500
	var r, s [][]int
	for i := 0; i < n; i++ {
		r = append(r, []int{i, 2 * i})
		s = append(s, []int{2*i + 1, i})
	}
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
	}
	var stats certificate.Stats
	out, err := Yannakakis([]string{"A", "B", "C"}, atoms, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("expected empty output, got %d", len(out))
	}
	if stats.Comparisons < n {
		t.Fatalf("comparisons = %d; semijoin should scan Ω(N)", stats.Comparisons)
	}
}

func TestLeapfrogSeekStats(t *testing.T) {
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {5}, {9}}},
		{Name: "S", Attrs: []string{"A"}, Tuples: [][]int{{2}, {5}, {8}}},
	}
	p := specsFor(t, []string{"A"}, atoms)
	var stats certificate.Stats
	out, err := LeapfrogAll(p, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, [][]int{{5}}) {
		t.Fatalf("out = %v", out)
	}
	if stats.FindGaps == 0 {
		t.Fatal("seeks not counted")
	}
	if stats.Outputs != 1 {
		t.Fatalf("Outputs = %d", stats.Outputs)
	}
}

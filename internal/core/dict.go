package core

import (
	"sort"

	"minesweeper/internal/ordered"
)

// Dict is an order-preserving dictionary for one attribute: the sorted
// distinct values the attribute takes anywhere in the query, mapped to
// their ranks [0, n). Rank encoding is strictly monotone, so every
// comparison-based structure — the relation trees, the CDS interval
// lists, the certificate argument — behaves identically on codes and on
// raw values (Section 6.2: certificates are value-oblivious); what
// changes is density. A sparse, skewed domain fragments the constraint
// store into many tiny ruled-out intervals; under rank encoding,
// adjacent ruled-out values become adjacent codes whose intervals
// coalesce, which is the Kalinsky et al. domain-ordering win.
type Dict struct {
	values []int // sorted, distinct
}

// NewDict builds the dictionary of the given value lists (the columns
// the attribute binds, concatenated). Values are deduplicated; the
// inputs are not retained.
func NewDict(lists ...[]int) *Dict {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	buf := make([]int, 0, n)
	for _, l := range lists {
		buf = append(buf, l...)
	}
	sort.Ints(buf)
	out := buf[:0]
	for i, v := range buf {
		if i > 0 && v == buf[i-1] {
			continue
		}
		out = append(out, v)
	}
	// Dictionaries live as long as their prepared query; when dedup
	// shed most of the concatenated input, keeping the original backing
	// array alive would pin sum(|columns|) ints for a fraction of the
	// values. Copy down to size in that case.
	if cap(buf) > 2*len(out) {
		out = append(make([]int, 0, len(out)), out...)
	}
	return &Dict{values: out}
}

// Len returns the code-space size n (codes are [0, n)).
func (d *Dict) Len() int { return len(d.values) }

// Encode returns the rank of v, or ok=false when v is not in the
// dictionary (such a value cannot appear in any join output).
func (d *Dict) Encode(v int) (int, bool) {
	i := sort.SearchInts(d.values, v)
	if i < len(d.values) && d.values[i] == v {
		return i, true
	}
	return 0, false
}

// Decode returns the value of code c. Codes outside [0, n) clamp to the
// domain sentinels, mirroring the index convention for ±∞.
func (d *Dict) Decode(c int) int {
	switch {
	case c < 0:
		return ordered.NegInf
	case c >= len(d.values):
		return ordered.PosInf
	}
	return d.values[c]
}

// LoCode returns the smallest code whose value is ≥ v (len when none):
// the encoded form of an inclusive lower bound.
func (d *Dict) LoCode(v int) int { return sort.SearchInts(d.values, v) }

// HiCode returns the largest code whose value is ≤ v (-1 when none):
// the encoded form of an inclusive upper bound.
func (d *Dict) HiCode(v int) int { return sort.SearchInts(d.values, v+1) - 1 }

// DictSet carries one optional dictionary per GAO position (nil = the
// position stays raw). It is immutable once built; the prepared-query
// layer rebuilds it when a bound relation's epoch changes.
type DictSet struct {
	ByPos []*Dict
}

// Any reports whether at least one position is encoded.
func (ds *DictSet) Any() bool {
	if ds == nil {
		return false
	}
	for _, d := range ds.ByPos {
		if d != nil {
			return true
		}
	}
	return false
}

// EncodeTuples rank-encodes the columns of GAO-permuted tuples in
// place: column j of every tuple holds the value of GAO position
// positions[j]. Rows are assumed to be freshly permuted copies owned by
// the caller. Every value is present in its dictionary by construction
// (dictionaries are built from the same columns).
func (ds *DictSet) EncodeTuples(tuples [][]int, positions []int) {
	for j, gp := range positions {
		d := ds.ByPos[gp]
		if d == nil {
			continue
		}
		for _, row := range tuples {
			c, ok := d.Encode(row[j])
			if !ok {
				// Unreachable when the dictionary covers the column; keep
				// a defined order-preserving fallback rather than panic.
				c = d.LoCode(row[j])
			}
			row[j] = c
		}
	}
}

// EncodeBounds translates per-position inclusive bounds into code
// space. A bound that no dictionary value satisfies becomes the empty
// bound — correctly so: the dictionary holds every value the attribute
// takes anywhere, so an uncovered range cannot contribute output.
func (ds *DictSet) EncodeBounds(bounds []Bound) []Bound {
	if bounds == nil {
		return nil
	}
	out := make([]Bound, len(bounds))
	for i, b := range bounds {
		d := ds.ByPos[i]
		if d == nil {
			out[i] = b
			continue
		}
		if b.Full() {
			out[i] = FullBound()
			continue
		}
		out[i] = Bound{Lo: d.LoCode(b.Lo), Hi: d.HiCode(b.Hi)}
	}
	return out
}

// DecodeInPlace maps an emitted code tuple (one value per GAO position)
// back to raw values. Emitted tuples are owned by the receiver, so
// in-place decoding is safe and allocation-free.
func (ds *DictSet) DecodeInPlace(t []int) {
	for i, d := range ds.ByPos {
		if d != nil {
			t[i] = d.Decode(t[i])
		}
	}
}

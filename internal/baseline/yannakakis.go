package baseline

import (
	"context"
	"fmt"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/hypergraph"
)

// Yannakakis evaluates an α-acyclic query with Yannakakis's algorithm,
// returning the sorted result.
func Yannakakis(gao []string, atoms []core.AtomSpec, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := YannakakisStream(context.Background(), gao, atoms, stats, func(t []int) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// YannakakisStream evaluates an α-acyclic query with Yannakakis's
// algorithm [55]: build a join tree by GYO reduction, run a full
// semijoin reduction (leaves → root, then root → leaves), and join along
// the tree. After reduction every intermediate result is bounded by the
// final output, so the algorithm runs in Õ(N + Z) worst case — the
// classical guarantee the paper contrasts with certificate optimality
// (it is ω(|C|) on instances where a single pairwise semijoin already
// costs Ω(N), Appendix J).
//
// The reduction passes are inherently blocking — first-result latency is
// Ω(N) — so only the final enumeration streams: tuples are emitted in
// GAO-lexicographic order, emit false stops the emission, and the
// context is checked between semijoin/join steps and per emitted tuple.
func YannakakisStream(ctx context.Context, gao []string, atoms []core.AtomSpec, stats *certificate.Stats, emit func([]int) bool) error {
	edges := make([][]string, len(atoms))
	for i, a := range atoms {
		edges[i] = a.Attrs
	}
	h := hypergraph.New(edges)
	jt, ok := h.GYO()
	if !ok {
		return fmt.Errorf("baseline: Yannakakis requires an α-acyclic query")
	}
	tables := make([]*table, len(atoms))
	for i, a := range atoms {
		tables[i] = tableFromSpec(a)
	}
	if len(atoms) == 1 {
		final, err := tables[0].projectTo(gao)
		if err != nil {
			return err
		}
		SortTuples(final.tuples)
		return emitSorted(ctx, final.tuples, stats, emit)
	}
	// Children lists and a bottom-up order (children before parents).
	children := make([][]int, len(atoms))
	for i, par := range jt.Parent {
		if i != jt.Root && par >= 0 {
			children[par] = append(children[par], i)
		}
	}
	order := postOrder(jt.Root, children)

	// Pass 1 (leaves → root): semijoin-reduce each parent by its children.
	for _, i := range order {
		for _, c := range children[i] {
			if err := ctx.Err(); err != nil {
				return err
			}
			tables[i] = semijoin(tables[i], tables[c], stats)
		}
	}
	// Pass 2 (root → leaves): reduce each child by its parent.
	for j := len(order) - 1; j >= 0; j-- {
		i := order[j]
		for _, c := range children[i] {
			if err := ctx.Err(); err != nil {
				return err
			}
			tables[c] = semijoin(tables[c], tables[i], stats)
		}
	}
	// Pass 3: join bottom-up along the tree. After full reduction, all
	// intermediates are bounded by |output| · |query|.
	for _, i := range order {
		for _, c := range children[i] {
			if err := ctx.Err(); err != nil {
				return err
			}
			tables[i] = HashJoin(tables[i], tables[c], stats)
		}
	}
	final, err := tables[jt.Root].projectTo(gao)
	if err != nil {
		return err
	}
	SortTuples(final.tuples)
	return emitSorted(ctx, final.tuples, stats, emit)
}

func postOrder(root int, children [][]int) []int {
	var out []int
	var walk func(i int)
	walk = func(i int) {
		for _, c := range children[i] {
			walk(c)
		}
		out = append(out, i)
	}
	walk(root)
	return out
}

// semijoin keeps the tuples of a that join with at least one tuple of b.
// Every kept/dropped decision is one comparison (the work Yannakakis
// performs even when the certificate is tiny).
func semijoin(a, b *table, stats *certificate.Stats) *table {
	_, ia, ib := common(a, b)
	if len(ia) == 0 {
		if len(b.tuples) == 0 {
			return &table{attrs: a.attrs}
		}
		return a
	}
	keys := make(map[string]bool, len(b.tuples))
	for _, tb := range b.tuples {
		keys[projectKey(tb, ib)] = true
	}
	out := &table{attrs: a.attrs}
	for _, ta := range a.tuples {
		if stats != nil {
			stats.Comparisons++
		}
		if keys[projectKey(ta, ia)] {
			out.tuples = append(out.tuples, ta)
		}
	}
	return out
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

func mustProblem(t *testing.T, gao []string, atoms []AtomSpec) *Problem {
	t.Helper()
	p, err := NewProblem(gao, atoms)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	p.Debug = true
	return p
}

func runMS(t *testing.T, p *Problem) ([][]int, *certificate.Stats) {
	t.Helper()
	var s certificate.Stats
	out, err := MinesweeperAll(p, &s)
	if err != nil {
		t.Fatalf("Minesweeper: %v", err)
	}
	sortTuples(out)
	return out, &s
}

func sortTuples(ts [][]int) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lexLess(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// naiveJoin is an in-package brute-force oracle: enumerate the cross
// product of the candidate values per attribute drawn from the atoms'
// actual tuples, checking membership per atom. Exponential; for tiny
// tests only.
func naiveJoin(gao []string, atoms []AtomSpec) [][]int {
	pos := map[string]int{}
	for i, a := range gao {
		pos[a] = i
	}
	domains := make(map[int]map[int]bool)
	for i := range gao {
		domains[i] = map[int]bool{}
	}
	for _, spec := range atoms {
		for _, tup := range spec.Tuples {
			for j, a := range spec.Attrs {
				domains[pos[a]][tup[j]] = true
			}
		}
	}
	var out [][]int
	t := make([]int, len(gao))
	var rec func(i int)
	rec = func(i int) {
		if i == len(gao) {
			for _, spec := range atoms {
				found := false
				for _, tup := range spec.Tuples {
					match := true
					for j, a := range spec.Attrs {
						if tup[j] != t[pos[a]] {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					return
				}
			}
			out = append(out, append([]int(nil), t...))
			return
		}
		for v := range domains[i] {
			t[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	sortTuples(out)
	return out
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem([]string{"A"}, nil); err == nil {
		t.Fatal("no atoms must fail")
	}
	if _, err := NewProblem([]string{"A", "A"}, []AtomSpec{{Name: "R", Attrs: []string{"A"}}}); err == nil {
		t.Fatal("duplicate GAO must fail")
	}
	if _, err := NewProblem([]string{"A"}, []AtomSpec{{Name: "R", Attrs: []string{"B"}}}); err == nil {
		t.Fatal("unknown attribute must fail")
	}
	if _, err := NewProblem([]string{"A", "B"}, []AtomSpec{{Name: "R", Attrs: []string{"A"}}}); err == nil {
		t.Fatal("uncovered attribute must fail")
	}
	if _, err := NewProblem([]string{"A"}, []AtomSpec{{Name: "R", Attrs: []string{"A", "A"}}}); err == nil {
		t.Fatal("repeated atom attribute must fail")
	}
	if _, err := NewProblem([]string{"A"}, []AtomSpec{{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1, 2}}}}); err == nil {
		t.Fatal("ragged tuple must fail")
	}
}

func TestColumnPermutation(t *testing.T) {
	// Atom declared as R(B, A) must be indexed as (A, B) under GAO (A, B).
	p := mustProblem(t, []string{"A", "B"}, []AtomSpec{
		{Name: "R", Attrs: []string{"B", "A"}, Tuples: [][]int{{10, 1}, {20, 2}}},
	})
	got := p.Atoms[0].Tree.Tuples()
	want := [][]int{{1, 10}, {2, 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted tuples = %v", got)
	}
	if !reflect.DeepEqual(p.Atoms[0].Positions, []int{0, 1}) {
		t.Fatalf("positions = %v", p.Atoms[0].Positions)
	}
}

func TestExample21RAJoinTAB(t *testing.T) {
	// Q = R(A) ⋈ T(A,B) from Example 2.1 with N=3:
	// R = [3], T = {(1,2i)} ∪ {(2,3i)}.
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {2}, {3}}},
		{Name: "T", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {1, 4}, {1, 6}, {2, 3}, {2, 6}, {2, 9}}},
	}
	p := mustProblem(t, []string{"A", "B"}, atoms)
	got, stats := runMS(t, p)
	want := [][]int{{1, 2}, {1, 4}, {1, 6}, {2, 3}, {2, 6}, {2, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("output = %v", got)
	}
	if stats.Outputs != 6 {
		t.Fatalf("Outputs = %d", stats.Outputs)
	}
}

func TestEmptyJoinConstantCertificate(t *testing.T) {
	// Example B.1: R = [N], S = {N+1..2N} ⇒ empty output with an O(1)
	// certificate {R[N] < S[1]}. Minesweeper must finish with O(1) probes.
	const n = 1000
	var r, s [][]int
	for i := 1; i <= n; i++ {
		r = append(r, []int{i})
		s = append(s, []int{n + i})
	}
	p := mustProblem(t, []string{"A"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: r},
		{Name: "S", Attrs: []string{"A"}, Tuples: s},
	})
	got, stats := runMS(t, p)
	if len(got) != 0 {
		t.Fatalf("expected empty join, got %d tuples", len(got))
	}
	if stats.ProbePoints > 5 {
		t.Fatalf("ProbePoints = %d; constant-certificate instance should need O(1) probes", stats.ProbePoints)
	}
}

func TestBowtieViaGenericEngine(t *testing.T) {
	// R(X) ⋈ S(X,Y) ⋈ T(Y).
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"X"}, Tuples: [][]int{{1}, {2}, {5}}},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: [][]int{{1, 10}, {1, 20}, {2, 10}, {3, 30}, {5, 20}}},
		{Name: "T", Attrs: []string{"Y"}, Tuples: [][]int{{10}, {20}, {40}}},
	}
	gao := []string{"X", "Y"}
	p := mustProblem(t, gao, atoms)
	got, _ := runMS(t, p)
	want := naiveJoin(gao, atoms)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTriangleViaGenericEngine(t *testing.T) {
	// β-cyclic triangle query through the general shadow-chain CDS.
	edges := [][]int{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {2, 4}, {3, 5}}
	sym := func(es [][]int) [][]int {
		var out [][]int
		for _, e := range es {
			out = append(out, []int{e[0], e[1]}, []int{e[1], e[0]})
		}
		return out
	}
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: sym(edges)},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: sym(edges)},
		{Name: "T", Attrs: []string{"A", "C"}, Tuples: sym(edges)},
	}
	gao := []string{"A", "B", "C"}
	p := mustProblem(t, gao, atoms)
	got, _ := runMS(t, p)
	want := naiveJoin(gao, atoms)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("test graph has triangles; join must be non-empty")
	}
}

func TestHigherArityAtoms(t *testing.T) {
	// R(A,B,C) ⋈ S(A,C) ⋈ T(B,C): Example B.7's query.
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B", "C"}, Tuples: [][]int{{1, 1, 1}, {2, 2, 2}, {1, 2, 2}, {3, 1, 2}}},
		{Name: "S", Attrs: []string{"A", "C"}, Tuples: [][]int{{1, 1}, {1, 2}, {2, 2}}},
		{Name: "T", Attrs: []string{"B", "C"}, Tuples: [][]int{{1, 1}, {2, 2}}},
	}
	for _, gao := range [][]string{{"C", "A", "B"}, {"A", "B", "C"}} {
		p := mustProblem(t, gao, atoms)
		got, _ := runMS(t, p)
		want := naiveJoin(gao, atoms)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("GAO %v: got %v want %v", gao, got, want)
		}
	}
}

func TestSelfJoinSharedData(t *testing.T) {
	// Star query with the same edge data bound twice: S(A,B) ⋈ S(A,C).
	edges := [][]int{{1, 2}, {1, 3}, {2, 4}}
	atoms := []AtomSpec{
		{Name: "S1", Attrs: []string{"A", "B"}, Tuples: edges},
		{Name: "S2", Attrs: []string{"A", "C"}, Tuples: edges},
	}
	gao := []string{"A", "B", "C"}
	p := mustProblem(t, gao, atoms)
	got, _ := runMS(t, p)
	want := naiveJoin(gao, atoms)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestEmptyRelationGivesEmptyJoin(t *testing.T) {
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {2}}},
		{Name: "S", Attrs: []string{"A", "B"}, Tuples: nil},
	}
	p := mustProblem(t, []string{"A", "B"}, atoms)
	got, _ := runMS(t, p)
	if len(got) != 0 {
		t.Fatalf("expected empty join, got %v", got)
	}
}

// TestRandomQueriesAgainstOracle is the main integration property: on
// random small instances of several query shapes (β-acyclic and cyclic),
// Minesweeper must produce exactly the naive join result.
func TestRandomQueriesAgainstOracle(t *testing.T) {
	shapes := []struct {
		name  string
		gao   []string
		atoms []struct {
			name  string
			attrs []string
		}
	}{
		{"path3", []string{"A", "B", "C"}, []struct {
			name  string
			attrs []string
		}{{"R", []string{"A", "B"}}, {"S", []string{"B", "C"}}}},
		{"bowtie", []string{"A", "B"}, []struct {
			name  string
			attrs []string
		}{{"R", []string{"A"}}, {"S", []string{"A", "B"}}, {"T", []string{"B"}}}},
		{"triangle", []string{"A", "B", "C"}, []struct {
			name  string
			attrs []string
		}{{"R", []string{"A", "B"}}, {"S", []string{"B", "C"}}, {"T", []string{"A", "C"}}}},
		{"star", []string{"A", "B", "C"}, []struct {
			name  string
			attrs []string
		}{{"S1", []string{"A", "B"}}, {"S2", []string{"A", "C"}}, {"RB", []string{"B"}}}},
		{"wide", []string{"A", "B", "C", "D"}, []struct {
			name  string
			attrs []string
		}{{"R", []string{"A", "B", "C"}}, {"S", []string{"B", "C", "D"}}, {"T", []string{"A", "D"}}}},
	}
	rng := rand.New(rand.NewSource(42))
	for _, shape := range shapes {
		for trial := 0; trial < 12; trial++ {
			dom := 2 + rng.Intn(4)
			var atoms []AtomSpec
			for _, a := range shape.atoms {
				cnt := rng.Intn(12)
				var tuples [][]int
				for i := 0; i < cnt; i++ {
					tup := make([]int, len(a.attrs))
					for j := range tup {
						tup[j] = rng.Intn(dom)
					}
					tuples = append(tuples, tup)
				}
				atoms = append(atoms, AtomSpec{Name: a.name, Attrs: a.attrs, Tuples: tuples})
			}
			p := mustProblem(t, shape.gao, atoms)
			got, _ := runMS(t, p)
			want := naiveJoin(shape.gao, atoms)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d:\natoms=%v\ngot  %v\nwant %v", shape.name, trial, atoms, got, want)
			}
		}
	}
}

// TestOutputsAreDistinct verifies set semantics: no duplicate outputs even
// with duplicate input tuples.
func TestOutputsAreDistinct(t *testing.T) {
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {1}, {2}}},
		{Name: "S", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 5}, {1, 5}, {2, 6}}},
	}
	p := mustProblem(t, []string{"A", "B"}, atoms)
	got, _ := runMS(t, p)
	seen := map[string]bool{}
	for _, tup := range got {
		k := fmt.Sprint(tup)
		if seen[k] {
			t.Fatalf("duplicate output %v", tup)
		}
		seen[k] = true
	}
	if len(got) != 2 {
		t.Fatalf("output = %v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {3}}},
		{Name: "S", Attrs: []string{"A"}, Tuples: [][]int{{2}, {3}}},
	}
	p := mustProblem(t, []string{"A"}, atoms)
	_, stats := runMS(t, p)
	if stats.FindGaps == 0 || stats.ProbePoints == 0 || stats.Constraints == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.Outputs != 1 {
		t.Fatalf("Outputs = %d", stats.Outputs)
	}
}

func TestDuplicateAtomNamesRejected(t *testing.T) {
	_, err := NewProblem([]string{"A", "B"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}},
		{Name: "R", Attrs: []string{"B"}},
	})
	if err == nil {
		t.Fatal("duplicate atom names must fail")
	}
}

// TestRuledOutIntervalExtremes is the regression test for the output
// rule-out constraint at extreme domain values: the naive (v-1, v+1)
// interval wraps around at math.MinInt/math.MaxInt, which would insert
// a constraint that does NOT cover the emitted tuple (non-termination).
// Endpoints must be clamped to the ±∞ sentinels and never overflow.
func TestRuledOutIntervalExtremes(t *testing.T) {
	cases := []struct {
		v              int
		wantLo, wantHi int
	}{
		{0, -1, 1},
		{42, 41, 43},
		{ordered.NegInf, ordered.NegInf, ordered.NegInf + 1},
		{ordered.PosInf, ordered.PosInf - 1, ordered.PosInf},
		{ordered.NegInf + 1, ordered.NegInf, ordered.NegInf + 2},
		{ordered.PosInf - 1, ordered.PosInf - 2, ordered.PosInf},
		// Beyond the sentinels (math extremes): clamp, don't wrap.
		{math.MinInt, ordered.NegInf, ordered.NegInf + 1},
		{math.MaxInt, ordered.PosInf - 1, ordered.PosInf},
	}
	for _, c := range cases {
		lo, hi := ruledOutInterval(c.v)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("ruledOutInterval(%d) = (%d, %d), want (%d, %d)", c.v, lo, hi, c.wantLo, c.wantHi)
		}
		if lo > hi {
			t.Errorf("ruledOutInterval(%d) = (%d, %d): inverted interval", c.v, lo, hi)
		}
	}
}

// TestMinesweeperDomainMaxValues runs a join whose values sit at the top
// of the legal domain (PosInf-1): the rule-out constraint for such an
// output reaches the PosInf sentinel exactly, and evaluation must still
// terminate with the right answer.
func TestMinesweeperDomainMaxValues(t *testing.T) {
	top := ordered.PosInf - 1
	p := mustProblem(t, []string{"A", "B"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: [][]int{{0, top}, {top, top}}},
		{Name: "S", Attrs: []string{"B"}, Tuples: [][]int{{top}}},
	})
	var s certificate.Stats
	out, err := MinesweeperAll(p, &s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, top}, {top, top}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

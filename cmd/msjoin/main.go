// Command msjoin evaluates a natural join over relations stored in plain
// text files, using any of the library's engines.
//
// Each relation file has a header line naming the relation and its
// variables, followed by one tuple of non-negative integers per line:
//
//	R: A B
//	1 2
//	2 3
//
// The query is the natural join of all given files. Example:
//
//	msjoin -engine minesweeper -stats r.rel s.rel t.rel
//	msjoin -gao A,B,C r.rel s.rel
//	msjoin -limit 10 -timeout 2s r.rel s.rel
//	msjoin -select 'A, count(*)' -where 'B < 100' r.rel s.rel
//
// Results stream as the engine discovers them: -limit stops after k
// tuples (the anytime behaviour of probe-driven evaluation; ≤ 0 means
// no limit) and -timeout aborts the run at the deadline, printing
// whatever streamed out before it.
//
// -select projects the output onto the listed variables (set semantics)
// and/or computes grouped aggregates: count(*), count(distinct X),
// sum(X), min(X), max(X). -where conjoins per-variable range filters
// ("A < 10 and B >= 3"), pushed down into the engines' index walks.
//
// -explain prints the plan — the chosen GAO (data-aware unless -gao
// forces one), its elimination width, the cost model's estimate and any
// dictionary-encoded attributes — without evaluating the join.
//
// Lines starting with '#' and blank lines are ignored.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"minesweeper"
	"minesweeper/internal/relio"
)

func main() {
	engineFlag := flag.String("engine", "auto", "auto, minesweeper, leapfrog, nprr, yannakakis, hashplan")
	gaoFlag := flag.String("gao", "", "comma-separated global attribute order (default: recommended)")
	statsFlag := flag.Bool("stats", false, "print run statistics")
	quiet := flag.Bool("quiet", false, "suppress tuple output (count only)")
	limitFlag := flag.Int("limit", 0, "stop after this many output tuples (<= 0 = no limit)")
	timeoutFlag := flag.Duration("timeout", 0, "abort evaluation after this duration (0 = none)")
	selectFlag := flag.String("select", "", "projection/aggregate list, e.g. 'A, count(*), sum(B)'")
	whereFlag := flag.String("where", "", "range filters, e.g. 'A < 10 and B >= 3'")
	domainFlag := flag.String("domain", "natural", "dictionary domain ordering: natural (order-preserving rank codes) or freq (frequency-permuted codes on skewed attributes)")
	explainFlag := flag.Bool("explain", false, "print the chosen plan (GAO, width, estimated cost, dictionary attributes and their domain orders) without evaluating")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "msjoin: no relation files given")
		flag.Usage()
		os.Exit(2)
	}
	engine, err := minesweeper.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: unknown engine %q\n", *engineFlag)
		os.Exit(2)
	}

	var atoms []minesweeper.Atom
	for _, path := range flag.Args() {
		atom, err := loadRelation(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
			os.Exit(1)
		}
		atoms = append(atoms, atom)
	}
	q, err := minesweeper.NewQuery(atoms...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(1)
	}
	opts := &minesweeper.Options{Engine: engine}
	if *gaoFlag != "" {
		opts.GAO = strings.Split(*gaoFlag, ",")
	}
	domain, err := minesweeper.ParseDomainOrder(*domainFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(2)
	}
	opts.Domain = domain
	if *selectFlag != "" {
		sel, aggs, err := minesweeper.ParseSelect(*selectFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
			os.Exit(2)
		}
		opts.Select = sel
		opts.Aggregates = aggs
	}
	if *whereFlag != "" {
		where, err := minesweeper.ParseWhere(*whereFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
			os.Exit(2)
		}
		opts.Where = where
	}
	pq, err := q.Prepare(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(1)
	}
	if *explainFlag {
		fmt.Println(formatExplain(pq.Explain()))
		return
	}
	ctx := context.Background()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}
	fmt.Printf("-- vars: %s\n", strings.Join(pq.OutputVars(), " "))
	w := bufio.NewWriter(os.Stdout)
	count := 0
	stats, err := pq.StreamContext(ctx, func(tup []int) bool {
		count++
		if !*quiet {
			for i, v := range tup {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprint(w, v)
			}
			fmt.Fprintln(w)
		}
		return *limitFlag <= 0 || count < *limitFlag
	})
	w.Flush()
	timedOut := errors.Is(err, context.DeadlineExceeded)
	if err != nil && !timedOut {
		fmt.Fprintf(os.Stderr, "msjoin: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("-- %d tuples (engine=%s, gao=%s", count, *engineFlag, strings.Join(pq.GAO(), ","))
	if q.IsBetaAcyclic() {
		fmt.Printf(", β-acyclic")
	} else if q.IsAlphaAcyclic() {
		fmt.Printf(", α-acyclic")
	} else {
		fmt.Printf(", cyclic")
	}
	if *limitFlag > 0 && count >= *limitFlag {
		fmt.Printf(", limit reached")
	}
	if timedOut {
		fmt.Printf(", TIMED OUT after %v", *timeoutFlag)
	}
	fmt.Println(")")
	if *statsFlag {
		fmt.Printf("-- stats: %s\n", stats.String())
		fmt.Printf("-- certificate estimate |C| ≈ %d FindGap ops\n", stats.CertificateEstimate())
	}
	if timedOut {
		os.Exit(3)
	}
}

// formatExplain renders the -explain line: the chosen GAO, its
// elimination width, the planner's cost estimate, whether the data
// overrode the structural order, the engine, any dictionary-encoded
// attributes, and the domain ordering each encoded attribute's code
// space follows (attr:rank or attr:freq) — without the last part a
// stream consumer cannot tell whether the emission order and code-space
// bounds mirror raw value order.
func formatExplain(ex minesweeper.Explain) string {
	line := fmt.Sprintf("-- explain: gao=%s width=%d cost=%.4g planned=%v engine=%s",
		strings.Join(ex.GAO, ","), ex.Width, ex.EstCost, ex.Planned, ex.Engine)
	if len(ex.DictAttrs) > 0 {
		line += " dict=" + strings.Join(ex.DictAttrs, ",")
	}
	if len(ex.DictOrders) > 0 {
		line += " dictorder=" + strings.Join(ex.DictOrders, ",")
	}
	return line
}

// loadRelation parses "Name: V1 V2 ..." plus integer tuple rows.
func loadRelation(path string) (minesweeper.Atom, error) {
	f, err := os.Open(path)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	defer f.Close()
	parsed, err := relio.ReadRelation(f, path)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	rel, err := minesweeper.NewRelation(parsed.Name, len(parsed.Vars), parsed.Tuples)
	if err != nil {
		return minesweeper.Atom{}, err
	}
	return minesweeper.Atom{Rel: rel, Vars: parsed.Vars}, nil
}

package experiments

import (
	"fmt"
	"time"

	"minesweeper/internal/baseline"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
	"minesweeper/internal/hypergraph"
)

// GAOQuality (E10) runs the Figure-2 star query under its nested
// elimination order versus a deliberately poor GAO (center attribute
// last), connecting Theorem 2.7's GAO requirement to practice: the same
// β-acyclic query degrades when indexed in a non-nested order.
func GAOQuality(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E10/GAO quality",
		Title:   "Star query under nested vs non-nested attribute orders",
		Headers: []string{"vertices", "GAO", "nested?", "findgaps", "probes", "cdsops"},
		Notes: "Theorem 2.7 requires a nested elimination order; with the star " +
			"center last the filter posets stop being chains and CDS work grows.",
	}
	n := 1200
	if scale == Small {
		n = 300
	}
	g := dataset.PowerLawGraph(n, 6, true, 77)
	samples := make([][][]int, 4)
	for i := range samples {
		samples[i] = dataset.SampleVertices(n, 0.02, int64(i)+5)
	}
	_, atoms := dataset.StarQuery(g, samples)
	edges := make([][]string, len(atoms))
	for i, a := range atoms {
		edges[i] = a.Attrs
	}
	h := hypergraph.New(edges)
	for _, gao := range [][]string{
		{"A", "B", "C", "D"}, // nested: center first
		{"B", "C", "D", "A"}, // center last
	} {
		nested, err := h.IsNestedEliminationOrder(gao)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			return nil, err
		}
		var stats certificate.Stats
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%v", gao), fmt.Sprintf("%v", nested),
			fmtCount(stats.FindGaps), fmtCount(stats.ProbePoints), fmtCount(stats.CDSOps),
		})
	}
	return t, nil
}

// LayeredPathComparison (E11) measures the Section 4.4 phenomenon: on a
// layered DAG whose longest path is one edge short of the query, the
// output is empty with a small certificate, but binding-at-a-time
// worst-case-optimal algorithms enumerate all width^layers partial paths.
func LayeredPathComparison(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E11/Section 4.4",
		Title:   "ℓ-path query on a DAG with no ℓ-path: Minesweeper vs WCOJ",
		Headers: []string{"layers", "width", "N(edges)", "engine", "time", "work"},
		Notes: "Section 4.4: with no path of length ℓ the output is empty and " +
			"|C| = O(|E|); NPRR and LFTJ still explore all ω(|E|) shorter paths.",
	}
	layers := 4
	widths := []int{6, 10}
	if scale == Full {
		widths = []int{8, 16, 24}
	}
	for _, width := range widths {
		gao, atoms := dataset.LayeredPathInstance(layers, width)
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			return nil, err
		}
		n := fmtCount(int64(p.InputSize()))
		run := func(name string, fn func() (int64, int, error)) error {
			start := time.Now()
			work, z, err := fn()
			if err != nil {
				return err
			}
			if z != 0 {
				return fmt.Errorf("experiments: %s found %d tuples on an empty instance", name, z)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", layers), fmt.Sprintf("%d", width), n, name,
				time.Since(start).Round(10 * time.Microsecond).String(), fmtCount(work),
			})
			return nil
		}
		if err := run("minesweeper", func() (int64, int, error) {
			var s certificate.Stats
			out, err := core.MinesweeperAll(p, &s)
			return s.ProbePoints, len(out), err
		}); err != nil {
			return nil, err
		}
		if err := run("leapfrog", func() (int64, int, error) {
			var s certificate.Stats
			out, err := baseline.LeapfrogAll(p, &s)
			return s.FindGaps, len(out), err
		}); err != nil {
			return nil, err
		}
		if err := run("nprr", func() (int64, int, error) {
			var s certificate.Stats
			out, err := baseline.NPRRAll(p, &s)
			return s.Comparisons, len(out), err
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

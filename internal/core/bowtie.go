package core

import (
	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// bowtieCDS is the two-level constraint tree of Appendix I.2: a root
// interval list over X, a wildcard branch over Y, and one equality branch
// per X value. Inferred ⟨x,(a,b)⟩ constraints memoize the ping-pong
// between the =x branch and the *-branch.
type bowtieCDS struct {
	rootX *ordered.RangeSet
	starY *ordered.RangeSet
	eqY   map[int]*ordered.RangeSet
	stats *certificate.Stats
}

func newBowtieCDS(stats *certificate.Stats) *bowtieCDS {
	return &bowtieCDS{
		rootX: ordered.NewRangeSet(),
		starY: ordered.NewRangeSet(),
		eqY:   map[int]*ordered.RangeSet{},
		stats: stats,
	}
}

func (c *bowtieCDS) op() {
	if c.stats != nil {
		c.stats.CDSOps++
	}
}

func (c *bowtieCDS) insConstraint() {
	if c.stats != nil {
		c.stats.Constraints++
	}
}

func (c *bowtieCDS) eq(x int) *ordered.RangeSet {
	rs, ok := c.eqY[x]
	if !ok {
		rs = ordered.NewRangeSet()
		c.eqY[x] = rs
	}
	return rs
}

// getProbePoint returns an active (x, y) or ok=false when the space is
// exhausted (Appendix I.2's probe strategy with memoized merges).
func (c *bowtieCDS) getProbePoint() (x, y int, ok bool) {
	for {
		c.op()
		x = c.rootX.Next(-1)
		if x >= ordered.PosInf {
			return 0, 0, false
		}
		eq := c.eq(x)
		c.op()
		y = ordered.NextUnion(eq, c.starY, -1)
		if y < ordered.PosInf {
			// Memoize the merged prefix into the =x branch so the
			// ping-pong below y is never repeated for this x
			// (the inferred-constraint trick of Example 4.1).
			if y > 0 {
				eq.InsertOpen(-1, y)
				c.insConstraint()
			}
			if c.stats != nil {
				c.stats.ProbePoints++
			}
			return x, y, true
		}
		// No Y left under =x. If the *-branch alone covers all of Y the
		// whole output space is dead — the bottom pattern of the filter
		// is all-wildcard, i0 = 0 in Algorithm 3's backtrack — so report
		// exhaustion. Otherwise fold the dead branch into a root
		// constraint ⟨(x-1,x+1),*⟩ and move to the next x.
		c.op()
		if c.starY.Next(-1) >= ordered.PosInf {
			return 0, 0, false
		}
		c.insConstraint()
		c.rootX.InsertOpen(x-1, x+1)
		delete(c.eqY, x)
	}
}

// Bowtie evaluates Q⋈⋈ = R(X) ⋈ S(X,Y) ⋈ T(Y) with Algorithm 9
// (Appendix I). r and t are the unary relations, s the binary one
// (pairs). Output pairs are emitted in lexicographic order. Runtime is
// O((|C|+Z) log N) plus CDS time (Theorem I.4).
func Bowtie(r []int, s [][]int, t []int, stats *certificate.Stats) ([][]int, error) {
	rT, err := reltree.NewFromValues("R", r)
	if err != nil {
		return nil, err
	}
	sT, err := reltree.New("S", 2, s)
	if err != nil {
		return nil, err
	}
	tT, err := reltree.NewFromValues("T", t)
	if err != nil {
		return nil, err
	}
	rT.SetStats(stats)
	sT.SetStats(stats)
	tT.SetStats(stats)

	cds := newBowtieCDS(stats)
	var out [][]int
	for {
		x, y, ok := cds.getProbePoint()
		if !ok {
			return out, nil
		}
		// Gap exploration of Algorithm 9 (see Figure 8).
		ilR, ihR := rT.FindGap(nil, x)
		ilT, ihT := tT.FindGap(nil, y)
		ilS, ihS := sT.FindGap(nil, x)

		rHit := ilR == ihR
		sxHit := ilS == ihS
		tHit := ilT == ihT

		syHit := false
		if sT.InRange(nil, ihS) {
			ihl, ihh := sT.FindGap([]int{ihS}, y)
			syHit = ihl == ihh
			cds.insConstraint()
			cds.eq(sT.Value([]int{ihS})).InsertOpen(
				sT.Value([]int{ihS, ihl}), sT.Value([]int{ihS, ihh}))
		}
		if rHit && sxHit && tHit && syHit {
			out = append(out, []int{x, y})
			if stats != nil {
				stats.Outputs++
			}
			cds.insConstraint()
			cds.eq(x).InsertOpen(y-1, y+1)
			continue
		}
		// ⟨(R[iℓ],R[ih]),*⟩ and ⟨(S[iℓ],S[ih]),*⟩ on X.
		cds.insConstraint()
		cds.rootX.InsertOpen(rT.Value([]int{ilR}), rT.Value([]int{ihR}))
		cds.insConstraint()
		cds.rootX.InsertOpen(sT.Value([]int{ilS}), sT.Value([]int{ihS}))
		// ⟨*,(T[iℓ],T[ih])⟩ on Y.
		cds.insConstraint()
		cds.starY.InsertOpen(tT.Value([]int{ilT}), tT.Value([]int{ihT}))
		// ⟨S[iℓS], (gap around y)⟩ — the low-side exploration that keeps
		// Minesweeper aligned with certificate comparisons (see the
		// hidden-gap discussion after Algorithm 9).
		if !sxHit && sT.InRange(nil, ilS) {
			ill, ilh := sT.FindGap([]int{ilS}, y)
			cds.insConstraint()
			cds.eq(sT.Value([]int{ilS})).InsertOpen(
				sT.Value([]int{ilS, ill}), sT.Value([]int{ilS, ilh}))
		}
	}
}

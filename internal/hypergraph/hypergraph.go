// Package hypergraph implements the query-structure theory of Appendix A
// of the paper: α-acyclicity via GYO reduction with join-tree extraction,
// β-acyclicity via Brouwer–Kolen nest points, nested elimination orders
// (Definition A.5, Proposition A.6), prefix posets, and the elimination
// width of a global attribute order (Proposition A.7), together with a
// greedy search for low-width GAOs.
//
// Vertices are attribute names (strings); hyperedges are the attribute
// sets of the query's atoms.
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph is a query hypergraph: Vertices lists all attributes in a
// canonical order, Edges holds one attribute set per atom (parallel to the
// query's atom list; duplicates allowed).
type Hypergraph struct {
	Vertices []string
	Edges    [][]string // each edge: sorted, distinct attribute names
}

// New builds a hypergraph from the given edges. Vertex order is the order
// of first appearance. Edges are normalized (sorted, deduplicated) but
// edge multiplicity and order are preserved.
func New(edges [][]string) *Hypergraph {
	h := &Hypergraph{}
	seen := map[string]bool{}
	for _, e := range edges {
		set := map[string]bool{}
		var norm []string
		for _, v := range e {
			if !set[v] {
				set[v] = true
				norm = append(norm, v)
			}
			if !seen[v] {
				seen[v] = true
				h.Vertices = append(h.Vertices, v)
			}
		}
		sort.Strings(norm)
		h.Edges = append(h.Edges, norm)
	}
	return h
}

func contains(edge []string, v string) bool {
	i := sort.SearchStrings(edge, v)
	return i < len(edge) && edge[i] == v
}

// subset reports a ⊆ b for sorted slices.
func subset(a, b []string) bool {
	i := 0
	for _, v := range a {
		for i < len(b) && b[i] < v {
			i++
		}
		if i >= len(b) || b[i] != v {
			return false
		}
	}
	return true
}

func without(edge []string, v string) []string {
	out := make([]string, 0, len(edge))
	for _, u := range edge {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// JoinTree is the result of a successful GYO reduction: Parent[i] is the
// atom index that atom i was folded into (-1 for the root). It is a valid
// join tree: for every attribute, the atoms containing it form a connected
// subtree.
type JoinTree struct {
	Parent []int
	Root   int
}

// GYO runs the Graham–Yu–Özsoyoğlu reduction (Abiteboul et al., p.128).
// It reports whether the hypergraph is α-acyclic and, if so, returns a
// join tree over the original edge indexes.
//
// The reduction repeatedly removes an "ear": an edge E such that every
// vertex of E is either exclusive to E or contained in a single witness
// edge F ≠ E. E's tree parent is F. The hypergraph is α-acyclic iff the
// reduction ends with at most one edge.
func (h *Hypergraph) GYO() (*JoinTree, bool) {
	n := len(h.Edges)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	// count[v] = number of alive edges containing v.
	count := map[string]int{}
	for i, e := range h.Edges {
		_ = i
		for _, v := range e {
			count[v]++
		}
	}
	removeEdge := func(i, witness int) {
		alive[i] = false
		parent[i] = witness
		remaining--
		for _, v := range h.Edges[i] {
			count[v]--
		}
	}
	for remaining > 1 {
		progressed := false
		for i := 0; i < n && remaining > 1; i++ {
			if !alive[i] {
				continue
			}
			// Non-exclusive part of edge i.
			var core []string
			for _, v := range h.Edges[i] {
				if count[v] > 1 {
					core = append(core, v)
				}
			}
			// Find a witness edge containing core.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if subset(core, h.Edges[j]) {
					removeEdge(i, j)
					progressed = true
					break
				}
			}
		}
		if !progressed {
			return nil, false
		}
	}
	root := -1
	for i := 0; i < n; i++ {
		if alive[i] {
			root = i
			break
		}
	}
	if root == -1 { // no edges at all
		root = 0
		if n == 0 {
			return &JoinTree{Parent: parent, Root: -1}, true
		}
	}
	// Edges folded into dead edges: path-compress to alive ancestors is not
	// needed — parents recorded at removal time are alive at that moment,
	// and the removal order makes the parent pointers acyclic.
	return &JoinTree{Parent: parent, Root: root}, true
}

// IsAlphaAcyclic reports whether the hypergraph is α-acyclic.
func (h *Hypergraph) IsAlphaAcyclic() bool {
	_, ok := h.GYO()
	return ok
}

// isNestPoint reports whether vertex v is a nest point: the edges
// containing v form a chain under ⊆ (Brouwer–Kolen).
func (h *Hypergraph) isNestPoint(edges [][]string, v string) bool {
	var incident [][]string
	for _, e := range edges {
		if contains(e, v) {
			incident = append(incident, e)
		}
	}
	sort.Slice(incident, func(i, j int) bool { return len(incident[i]) < len(incident[j]) })
	for i := 1; i < len(incident); i++ {
		if !subset(incident[i-1], incident[i]) {
			return false
		}
	}
	return true
}

// NestedEliminationOrder returns a GAO v1,…,vn whose prefix posets are all
// chains (Definition A.5), or ok=false when none exists. By
// Proposition A.6 such an order exists iff the hypergraph is β-acyclic;
// the order is built back-to-front by repeatedly extracting a nest point
// (Brouwer–Kolen guarantees β-acyclic hypergraphs have one).
//
// The choice among several nest points is canonical: the
// lexicographically largest one is eliminated first (i.e. placed
// latest), so the returned order depends only on the hypergraph — not
// on the order atoms or attributes were first mentioned in.
func (h *Hypergraph) NestedEliminationOrder() (order []string, ok bool) {
	edges := make([][]string, len(h.Edges))
	copy(edges, h.Edges)
	vertices := append([]string(nil), h.Vertices...)
	rev := make([]string, 0, len(vertices))
	for len(vertices) > 0 {
		found := -1
		for i, v := range vertices {
			if (found == -1 || v > vertices[found]) && h.isNestPoint(edges, v) {
				found = i
			}
		}
		if found == -1 {
			return nil, false
		}
		v := vertices[found]
		rev = append(rev, v)
		vertices = append(vertices[:found], vertices[found+1:]...)
		for i, e := range edges {
			edges[i] = without(e, v)
		}
	}
	order = make([]string, len(rev))
	for i, v := range rev {
		order[len(rev)-1-i] = v
	}
	return order, true
}

// IsBetaAcyclic reports whether the hypergraph is β-acyclic
// (every sub-hypergraph is α-acyclic; equivalently a nested elimination
// order exists, Proposition A.6).
func (h *Hypergraph) IsBetaAcyclic() bool {
	_, ok := h.NestedEliminationOrder()
	return ok
}

// PrefixPosets computes, for the given GAO, the prefix posets P_k and
// their universes U(P_k) of Appendix A.2. The returned posets[k] is the
// list of sets F∩{v1..vk−1} (with v_k removed) for edges F of H_k
// containing v_k; universes[k] is their union. Index 0 corresponds to v1.
func (h *Hypergraph) PrefixPosets(gao []string) (posets [][][]string, universes [][]string, err error) {
	n := len(gao)
	pos := make(map[string]int, n)
	for i, v := range gao {
		if _, dup := pos[v]; dup {
			return nil, nil, fmt.Errorf("hypergraph: GAO repeats attribute %q", v)
		}
		pos[v] = i
	}
	for _, v := range h.Vertices {
		if _, ok := pos[v]; !ok {
			return nil, nil, fmt.Errorf("hypergraph: GAO missing attribute %q", v)
		}
	}
	if n != len(h.Vertices) {
		return nil, nil, fmt.Errorf("hypergraph: GAO has %d attributes, hypergraph has %d", n, len(h.Vertices))
	}
	// Work on the recursive hypergraph sequence H_n … H_1.
	edges := make([][]string, len(h.Edges))
	copy(edges, h.Edges)
	posets = make([][][]string, n)
	universes = make([][]string, n)
	for j := n - 1; j >= 0; j-- {
		vj := gao[j]
		var pj [][]string
		uset := map[string]bool{}
		for _, e := range edges {
			if contains(e, vj) {
				f := without(e, vj)
				pj = append(pj, f)
				for _, u := range f {
					uset[u] = true
				}
			}
		}
		var universe []string
		for u := range uset {
			universe = append(universe, u)
		}
		sort.Strings(universe)
		posets[j] = pj
		universes[j] = universe
		// H_{j-1}: drop vj from every edge and add U(P_j).
		next := make([][]string, 0, len(edges)+1)
		for _, e := range edges {
			next = append(next, without(e, vj))
		}
		next = append(next, universe)
		edges = next
	}
	return posets, universes, nil
}

// EliminationWidth returns max_k |U(P_k)| for the given GAO
// (Proposition A.7: minimizing this over GAOs gives the treewidth).
func (h *Hypergraph) EliminationWidth(gao []string) (int, error) {
	_, universes, err := h.PrefixPosets(gao)
	if err != nil {
		return 0, err
	}
	w := 0
	for _, u := range universes {
		if len(u) > w {
			w = len(u)
		}
	}
	return w, nil
}

// IsNestedEliminationOrder reports whether the GAO's prefix posets are all
// chains (Definition A.5).
func (h *Hypergraph) IsNestedEliminationOrder(gao []string) (bool, error) {
	posets, _, err := h.PrefixPosets(gao)
	if err != nil {
		return false, err
	}
	for _, p := range posets {
		if !isChain(p) {
			return false, nil
		}
	}
	return true, nil
}

func isChain(sets [][]string) bool {
	sorted := make([][]string, len(sets))
	copy(sorted, sets)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if !subset(sorted[i-1], sorted[i]) {
			return false
		}
	}
	return true
}

// GreedyWidthOrder returns a GAO found by the min-width greedy heuristic:
// the order is built back-to-front, at each step eliminating the vertex
// whose current U(P) is smallest, preferring nest points (so β-acyclic
// hypergraphs automatically get a nested elimination order). The returned
// width is the order's elimination width.
//
// Ties — equal nest-point status and equal |U(P)| — break to the
// lexicographically largest vertex (eliminated first, so placed
// latest), making the result a function of the hypergraph alone rather
// than of the attribute first-appearance order.
func (h *Hypergraph) GreedyWidthOrder() (gao []string, width int) {
	edges := make([][]string, len(h.Edges))
	copy(edges, h.Edges)
	vertices := append([]string(nil), h.Vertices...)
	rev := make([]string, 0, len(vertices))
	for len(vertices) > 0 {
		best, bestCost := -1, 1<<30
		bestNest := false
		for i, v := range vertices {
			uset := map[string]bool{}
			for _, e := range edges {
				if contains(e, v) {
					for _, u := range e {
						if u != v {
							uset[u] = true
						}
					}
				}
			}
			nest := h.isNestPoint(edges, v)
			cost := len(uset)
			better := best == -1 || (nest && !bestNest) ||
				(nest == bestNest && (cost < bestCost || (cost == bestCost && v > vertices[best])))
			if better {
				best, bestCost, bestNest = i, cost, nest
			}
		}
		v := vertices[best]
		rev = append(rev, v)
		vertices = append(vertices[:best], vertices[best+1:]...)
		// Add the fill edge U(P) before deleting v, as in PrefixPosets.
		uset := map[string]bool{}
		for _, e := range edges {
			if contains(e, v) {
				for _, u := range e {
					if u != v {
						uset[u] = true
					}
				}
			}
		}
		var fill []string
		for u := range uset {
			fill = append(fill, u)
		}
		sort.Strings(fill)
		next := make([][]string, 0, len(edges)+1)
		for _, e := range edges {
			next = append(next, without(e, v))
		}
		next = append(next, fill)
		edges = next
	}
	gao = make([]string, len(rev))
	for i, v := range rev {
		gao[len(rev)-1-i] = v
	}
	w, err := h.EliminationWidth(gao)
	if err != nil {
		panic(err) // unreachable: gao is a permutation of h.Vertices
	}
	return gao, w
}

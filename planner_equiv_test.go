package minesweeper

import (
	"math/rand"
	"reflect"
	"testing"

	"minesweeper/internal/reltree"
)

// sparseSkewRelations builds a deterministic skewed pair over a sparse,
// strided domain: R small, S large, sharing attribute b with partial
// overlap and one heavy b value. This is the regime where the planner
// overrides the structural order and DictAuto kicks in.
func sparseSkewRelations(t *testing.T, seed int64, nBig, nSmall int) (*Relation, *Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const stride = 9973
	var sT [][]int
	for i := 0; i < nBig; i++ {
		b := i * stride
		if rng.Intn(4) == 0 {
			b = 77 * stride // heavy value
		}
		sT = append(sT, []int{b, rng.Intn(nBig) * stride})
	}
	var rT [][]int
	for j := 0; j < nSmall; j++ {
		b := (j*17 + 3) * stride // mostly misses S
		if j%4 == 0 {
			b = j * 17 * stride // sometimes hits
		}
		if j == 1 {
			b = 77 * stride // join the heavy value too
		}
		rT = append(rT, []int{j * stride, b})
	}
	r := rel(t, "R", 2, rT)
	s := rel(t, "S", 2, sT)
	return r, s
}

// TestPlannedGAOEngineEquivalence runs the planned (data-aware) path
// across all five engines, sequential and parallel, under every
// dictionary mode, over plain and shaped (select/where/aggregate)
// executions, and demands identical results. The planner is
// deterministic, so every run shares one GAO and the comparison is
// exact including emission order.
func TestPlannedGAOEngineEquivalence(t *testing.T) {
	for _, shape := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"select", Options{Select: []string{"c", "a"}}},
		{"where", Options{Where: []Filter{{Var: "b", Op: "<", Value: 400 * 9973}}}},
		{"aggregate", Options{Select: []string{"a"}, Aggregates: []Aggregate{{Op: AggCount}, {Op: AggMax, Var: "c"}}}},
		{"constant+where", Options{Where: []Filter{{Var: "a", Op: ">=", Value: 9973}}}},
	} {
		t.Run(shape.name, func(t *testing.T) {
			r, s := sparseSkewRelations(t, 11, 400, 24)
			q, err := NewQuery(
				Atom{Rel: r, Vars: []string{"a", "b"}},
				Atom{Rel: s, Vars: []string{"b", "c"}},
			)
			if err != nil {
				t.Fatal(err)
			}
			var ref *Result
			for _, dict := range []DictMode{DictAuto, DictOff, DictOn} {
				for _, eng := range allEngines {
					for _, workers := range []int{1, 4} {
						if workers > 1 && eng != EngineMinesweeper {
							continue
						}
						opts := shape.opts
						opts.Engine = eng
						opts.Workers = workers
						opts.Dict = dict
						res, err := Execute(q, &opts)
						if err != nil {
							t.Fatalf("dict=%v engine=%v workers=%d: %v", dict, eng, workers, err)
						}
						if ref == nil {
							ref = res
							if len(res.Tuples) == 0 {
								t.Fatal("equivalence fixture produced an empty result; join must be non-empty")
							}
							continue
						}
						if !reflect.DeepEqual(res.Vars, ref.Vars) {
							t.Fatalf("dict=%v engine=%v workers=%d: vars %v != %v", dict, eng, workers, res.Vars, ref.Vars)
						}
						if !reflect.DeepEqual(res.Tuples, ref.Tuples) {
							t.Fatalf("dict=%v engine=%v workers=%d: %d tuples != %d reference tuples (first diff: %v vs %v)",
								dict, eng, workers, len(res.Tuples), len(ref.Tuples), firstDiff(res.Tuples, ref.Tuples), "")
						}
					}
				}
			}
		})
	}
}

func firstDiff(a, b [][]int) [][]int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return [][]int{a[i], b[i]}
		}
	}
	return nil
}

// TestAutoDictActivatesOnSparseDomains pins the auto gate: the sparse
// fixture must actually be dictionary-encoded under DictAuto (otherwise
// the equivalence suite exercises nothing), while small dense data must
// not be.
func TestAutoDictActivatesOnSparseDomains(t *testing.T) {
	r, s := sparseSkewRelations(t, 3, 400, 24)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := q.Explain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.DictAttrs) == 0 {
		t.Fatalf("sparse fixture not dictionary-encoded: %+v", ex)
	}
	if ex.EstCost <= 0 {
		t.Fatalf("explain must carry a cost estimate: %+v", ex)
	}

	dense := rel(t, "D", 2, [][]int{{1, 2}, {2, 3}, {3, 4}})
	dq, err := NewQuery(Atom{Rel: dense, Vars: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	dex, err := dq.Explain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dex.DictAttrs) != 0 {
		t.Fatalf("dense fixture must stay raw: %+v", dex)
	}
}

// TestPreparedReplansAfterMutation: a prepared query bound to small
// data re-plans when the data changes shape. The fixture starts with R
// tiny and S tiny; S then grows huge and sparse, which must (a) serve
// correct fresh results through the already-prepared query on every
// engine, and (b) refresh the reported plan (the planner sees the new
// statistics).
func TestPreparedReplansAfterMutation(t *testing.T) {
	const stride = 10007
	rT := [][]int{{1 * stride, 5 * stride}, {2 * stride, 6 * stride}}
	var sT [][]int
	for j := 0; j < 4; j++ {
		sT = append(sT, []int{(5 + j) * stride, j * stride})
	}
	r := rel(t, "R", 2, rT)
	s := rel(t, "S", 2, sT)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}

	var pqs []*PreparedQuery
	for _, eng := range allEngines {
		pq, err := q.Prepare(&Options{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		pqs = append(pqs, pq)
	}
	before, err := pqs[0].Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Tuples) == 0 {
		t.Fatal("pre-mutation join empty")
	}

	// S grows by four orders of magnitude; most new B values miss R.
	var grown [][]int
	for j := 0; j < 20000; j++ {
		grown = append(grown, []int{(j*13 + 1) * stride, j * stride})
	}
	grown = append(grown, sT...) // keep the original matches
	if err := s.Replace(grown); err != nil {
		t.Fatal(err)
	}

	var ref *Result
	for i, pq := range pqs {
		res, err := pq.Execute()
		if err != nil {
			t.Fatalf("%v after mutation: %v", allEngines[i], err)
		}
		if ref == nil {
			ref = res
			if len(res.Tuples) != len(before.Tuples) {
				t.Fatalf("post-mutation result has %d tuples, want the original %d matches", len(res.Tuples), len(before.Tuples))
			}
			continue
		}
		if !reflect.DeepEqual(res.Tuples, ref.Tuples) {
			t.Fatalf("%v after mutation: tuples diverge from reference", allEngines[i])
		}
	}
	// The minesweeper variant must have re-planned against the new
	// statistics: huge sparse S flips the auto dictionary on.
	ex := pqs[0].Explain()
	if len(ex.DictAttrs) == 0 {
		t.Fatalf("plan not refreshed after mutation: %+v", ex)
	}

	// A forced GAO survives re-binding verbatim.
	forced, err := q.Prepare(&Options{GAO: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := forced.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]int{999999 * 13 * stride, 999999}); err != nil {
		t.Fatal(err)
	}
	if _, err := forced.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := forced.GAO(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("forced GAO changed across mutation: %v", got)
	}
	if forced.Explain().Planned {
		t.Fatal("forced GAO must not be marked planned")
	}
}

// TestPreparedShapeSurvivesReplan: pushed-down constants and filters
// carry across a re-plan (the PR 4 behaviours on the new pipeline).
func TestPreparedShapeSurvivesReplan(t *testing.T) {
	const stride = 10007
	var rT [][]int
	for i := 0; i < 50; i++ {
		rT = append(rT, []int{i * stride, (i % 7) * stride})
	}
	r := rel(t, "R", 2, rT)
	q, err := NewQuery(Atom{Rel: r, Vars: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&Options{Where: []Filter{{Var: "a", Op: "<", Value: 10 * stride}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 10 {
		t.Fatalf("filtered result = %d tuples, want 10", len(res.Tuples))
	}
	if err := r.Insert([]int{3*stride + 1, 0}); err != nil { // inside the filter range
		t.Fatal(err)
	}
	res, err = pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 11 {
		t.Fatalf("post-mutation filtered result = %d tuples, want 11", len(res.Tuples))
	}
	for _, tup := range res.Tuples {
		if tup[0] >= 10*stride {
			t.Fatalf("filter violated after re-plan: %v", tup)
		}
	}
}

// TestDictRebindReusesUntouchedIndexes: on a re-plan triggered by
// mutating one relation, dictionaries whose participating relations
// are unmutated — and the encoded trees built under them — are reused,
// not rebuilt. G shares no attribute with the mutated E/F pair, so its
// (huge) encoded index must survive the re-bind.
func TestDictRebindReusesUntouchedIndexes(t *testing.T) {
	const stride = 10007
	var gT [][]int
	for i := 0; i < 5000; i++ {
		gT = append(gT, []int{i * stride, i*stride + 1})
	}
	g := rel(t, "G", 2, gT)
	var eT, fT [][]int
	for i := 0; i < 300; i++ {
		eT = append(eT, []int{i * stride, (i % 40) * stride})
	}
	for j := 0; j < 40; j++ {
		fT = append(fT, []int{j * stride, j})
	}
	e := rel(t, "E", 2, eT)
	f := rel(t, "F", 2, fT)
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"a", "b"}},
		Atom{Rel: f, Vars: []string{"b", "c"}},
		Atom{Rel: g, Vars: []string{"d", "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&Options{Dict: DictOn})
	if err != nil {
		t.Fatal(err)
	}
	before, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}

	builds0 := reltree.Builds()
	if err := f.Insert([]int{7*stride + 1, 999}); err != nil { // misses E: join unchanged
		t.Fatal(err)
	}
	after, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := reltree.Builds() - builds0
	// F mutated: F rebuilds; the shared b/c dictionaries changed, so E
	// (sharing b) rebuilds too. G shares nothing with F and must be
	// reused — so strictly fewer builds than the full three atoms.
	if rebuilt > 2 {
		t.Fatalf("re-bind rebuilt %d indexes; G's untouched index must be reused", rebuilt)
	}
	if rebuilt < 1 {
		t.Fatalf("re-bind rebuilt %d indexes; the mutated F must rebuild", rebuilt)
	}
	if len(after.Tuples) != len(before.Tuples) {
		t.Fatalf("join changed: %d -> %d tuples", len(before.Tuples), len(after.Tuples))
	}
}

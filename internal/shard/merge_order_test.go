package shard

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	minesweeper "minesweeper"
)

// Property tests for the merge layer: the loser tree must behave as a
// stable k-way merge (ties break to the lower shard index), and the
// gathered stream must equal the unsharded GAO-lex stream byte-for-byte
// at every prefix, for arbitrary data and shard counts.

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestLoserTreeMergeProperty drives the tree directly over random
// sorted substreams — including empty streams, heavy duplication across
// streams, and k=1 — and checks the merge against a stable sort of the
// concatenation (which is exactly "sorted, ties by stream index").
func TestLoserTreeMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(9)
		width := 1 + rng.Intn(3)
		streams := make([][][]int, k)
		type tagged struct {
			tup []int
			src int
		}
		var all []tagged
		for s := 0; s < k; s++ {
			n := rng.Intn(30) // 0 is a legal (empty) substream
			for i := 0; i < n; i++ {
				tup := make([]int, width)
				for j := range tup {
					tup[j] = rng.Intn(8) // small domain forces ties
				}
				streams[s] = append(streams[s], tup)
			}
			sort.Slice(streams[s], func(i, j int) bool { return lexLess(streams[s][i], streams[s][j]) })
			for _, tup := range streams[s] {
				all = append(all, tagged{tup, s})
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			if lexLess(all[i].tup, all[j].tup) {
				return true
			}
			if lexLess(all[j].tup, all[i].tup) {
				return false
			}
			return all[i].src < all[j].src
		})

		pos := make([]int, k)
		next := func(s int) []int {
			if pos[s] >= len(streams[s]) {
				return nil
			}
			tup := streams[s][pos[s]]
			pos[s]++
			return tup
		}
		heads := make([][]int, k)
		for s := range heads {
			heads[s] = next(s)
		}
		lt := newLoserTree(heads)
		var got [][]int
		for {
			tup := lt.pop(next)
			if tup == nil {
				break
			}
			got = append(got, tup)
		}
		if len(got) != len(all) {
			t.Fatalf("trial %d: merged %d tuples, want %d", trial, len(got), len(all))
		}
		for i := range all {
			if !reflect.DeepEqual(got[i], all[i].tup) {
				t.Fatalf("trial %d: position %d: got %v, want %v (stable-merge order violated)",
					trial, i, got[i], all[i].tup)
			}
		}
		if extra := lt.pop(next); extra != nil {
			t.Fatalf("trial %d: pop after exhaustion returned %v", trial, extra)
		}
	}
}

// TestMergeOrderProperty is the end-to-end property: for random
// two-atom joins, random shard counts and every engine, the sharded
// stream equals the unsharded stream at every randomly chosen prefix —
// so GAO-lex emission order survives scatter-gather exactly.
func TestMergeOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const expr = "R(A,B), S(B,C)"
	for trial := 0; trial < 6; trial++ {
		dom := 10 + rng.Intn(40)
		var rT, sT [][]int
		seenR, seenS := map[[2]int]bool{}, map[[2]int]bool{}
		for i := 0; i < 150+rng.Intn(150); i++ {
			k := [2]int{rng.Intn(dom), rng.Intn(dom)}
			if !seenR[k] {
				seenR[k] = true
				rT = append(rT, []int{k[0], k[1]})
			}
		}
		for i := 0; i < 150+rng.Intn(150); i++ {
			k := [2]int{rng.Intn(dom), rng.Intn(dom)}
			if !seenS[k] {
				seenS[k] = true
				sT = append(sT, []int{k[0], k[1]})
			}
		}
		n := []int{2, 4, 8}[rng.Intn(3)]
		c := buildSharded(t, n, []relSpec{
			{"R", []string{"a", "b"}, rT},
			{"S", []string{"b", "c"}, sT},
		})
		for _, eng := range allEngines {
			opts := &minesweeper.Options{Engine: eng}
			ref := reference(t, c, expr, opts)
			q, err := c.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := c.Prepare(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pq.Execute()
			if err != nil {
				t.Fatalf("trial %d shards=%d engine=%v: %v", trial, n, eng, err)
			}
			if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
				t.Fatalf("trial %d shards=%d engine=%v: full stream diverges (%d vs %d tuples)",
					trial, n, eng, len(res.Tuples), len(ref.Tuples))
			}
			if len(ref.Tuples) == 0 {
				continue
			}
			limit := 1 + rng.Intn(len(ref.Tuples))
			var got [][]int
			if _, err := pq.StreamContextExplained(context.Background(), nil, func(tu []int) bool {
				got = append(got, append([]int(nil), tu...))
				return len(got) < limit
			}); err != nil {
				t.Fatalf("trial %d shards=%d engine=%v limit=%d: %v", trial, n, eng, limit, err)
			}
			if !reflect.DeepEqual(got, ref.Tuples[:limit]) {
				t.Fatalf("trial %d shards=%d engine=%v: limit-%d prefix diverges from unsharded order",
					trial, n, eng, limit)
			}
		}
	}
}

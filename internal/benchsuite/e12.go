package benchsuite

import (
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
	"minesweeper/internal/planner"
)

// --- E12: data-aware planning + dense-domain dictionaries ------------
//
// The E12 benchmarks mirror the public Prepare pipeline with internal
// pieces (benchsuite cannot import the root package — bench_test.go
// lives inside it): planner.Choose over Collect'ed statistics picks the
// GAO, and the dictionary variants rank-encode every attribute before
// index build and decode on emit, exactly like the prepared-query
// layer. Default variants run the structural order on raw values — the
// PR 4 behaviour — so each pair measures what the planning layer buys.

func e12PlannerAtoms(specs []core.AtomSpec) []planner.Atom {
	atoms := make([]planner.Atom, len(specs))
	for i, s := range specs {
		st := planner.Collect(s.Tuples, len(s.Attrs))
		atoms[i] = planner.Atom{Attrs: s.Attrs, Rows: st.Rows, Cols: st.Cols}
	}
	return atoms
}

// e12Dicts builds one order-preserving dictionary per GAO attribute
// from the participating spec columns.
func e12Dicts(gao []string, specs []core.AtomSpec) *core.DictSet {
	ds := &core.DictSet{ByPos: make([]*core.Dict, len(gao))}
	for p, attr := range gao {
		var lists [][]int
		for _, s := range specs {
			for j, a := range s.Attrs {
				if a == attr {
					col := make([]int, len(s.Tuples))
					for i, tup := range s.Tuples {
						col[i] = tup[j]
					}
					lists = append(lists, col)
				}
			}
		}
		ds.ByPos[p] = core.NewDict(lists...)
	}
	return ds
}

// e12Encode returns specs with every column rank-encoded under the
// dictionaries (column-wise, before the per-atom GAO permutation —
// equivalent to encoding after, and simpler).
func e12Encode(gao []string, specs []core.AtomSpec, ds *core.DictSet) []core.AtomSpec {
	pos := map[string]int{}
	for p, a := range gao {
		pos[a] = p
	}
	out := make([]core.AtomSpec, len(specs))
	for i, s := range specs {
		enc := core.AtomSpec{Name: s.Name, Attrs: s.Attrs}
		enc.Tuples = make([][]int, len(s.Tuples))
		for r, tup := range s.Tuples {
			row := make([]int, len(tup))
			for j, v := range tup {
				d := ds.ByPos[pos[s.Attrs[j]]]
				c, ok := d.Encode(v)
				if !ok {
					panic("benchsuite: dictionary misses its own column value")
				}
				row[j] = c
			}
			enc.Tuples[r] = row
		}
		out[i] = enc
	}
	return out
}

func e12Run(b *testing.B, gao []string, specs []core.AtomSpec, dict bool) {
	var ds *core.DictSet
	if dict {
		ds = e12Dicts(gao, specs)
		specs = e12Encode(gao, specs, ds)
	}
	p, err := core.NewProblem(gao, specs)
	if err != nil {
		b.Fatal(err)
	}
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := 0
		err := core.MinesweeperStream(p, &stats, func(t []int) bool {
			if ds != nil {
				ds.DecodeInPlace(t) // decode cost belongs to the measurement
			}
			out++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if out == 0 && i == 0 {
			b.Log("warning: E12 join is empty")
		}
	}
	report(b, &stats, b.N)
}

func sparseSkewSpecs() []core.AtomSpec {
	e, f := dataset.SparseSkewJoin(20000, 64, 10007)
	return []core.AtomSpec{
		{Name: "E", Attrs: []string{"A", "B"}, Tuples: e},
		{Name: "F", Attrs: []string{"B", "C"}, Tuples: f},
	}
}

func sparseHeavySpecs() []core.AtomSpec {
	e, f := dataset.SparseHeavyEnum(64, 32, 20000, 9973)
	return []core.AtomSpec{
		{Name: "E", Attrs: []string{"A", "B"}, Tuples: e},
		{Name: "F", Attrs: []string{"B", "C"}, Tuples: f},
	}
}

// SparseSkewDefault runs the skewed-size instance under the structural
// default order on raw values — what PR 4's EngineAuto did.
func SparseSkewDefault(b *testing.B) {
	specs := sparseSkewSpecs()
	gao, _ := planner.Structural(e12PlannerAtoms(specs))
	e12Run(b, gao, specs, false)
}

// SparseSkewPlanned runs the same instance under the cost-based plan
// with dictionary encoding — what EngineAuto does now.
func SparseSkewPlanned(b *testing.B) {
	specs := sparseSkewSpecs()
	gao := planner.Choose(e12PlannerAtoms(specs), planner.Config{}).GAO
	e12Run(b, gao, specs, true)
}

// SparseHeavyEnumDefault: output-heavy sparse enumeration, structural
// order, raw values.
func SparseHeavyEnumDefault(b *testing.B) {
	specs := sparseHeavySpecs()
	gao, _ := planner.Structural(e12PlannerAtoms(specs))
	e12Run(b, gao, specs, false)
}

// SparseHeavyEnumPlannedRaw isolates the planner: chosen order, raw
// values (the delta to SparseHeavyEnumPlanned is the dictionary).
func SparseHeavyEnumPlannedRaw(b *testing.B) {
	specs := sparseHeavySpecs()
	gao := planner.Choose(e12PlannerAtoms(specs), planner.Config{}).GAO
	e12Run(b, gao, specs, false)
}

// SparseHeavyEnumPlanned: chosen order plus dictionaries — phantom
// successor probes disappear and the per-output rule-out intervals
// coalesce.
func SparseHeavyEnumPlanned(b *testing.B) {
	specs := sparseHeavySpecs()
	gao := planner.Choose(e12PlannerAtoms(specs), planner.Config{}).GAO
	e12Run(b, gao, specs, true)
}

package core

import (
	"sort"

	"minesweeper/internal/ordered"
)

// Dict is a dictionary for one attribute: the distinct values the
// attribute takes anywhere in the query, mapped to codes [0, n). The
// default rank encoding (NewDict) is strictly monotone, so every
// comparison-based structure — the relation trees, the CDS interval
// lists, the certificate argument — behaves identically on codes and on
// raw values (Section 6.2: certificates are value-oblivious); what
// changes is density. A sparse, skewed domain fragments the constraint
// store into many tiny ruled-out intervals; under rank encoding,
// adjacent ruled-out values become adjacent codes whose intervals
// coalesce, which is the Kalinsky et al. domain-ordering win.
//
// NewFreqDict instead assigns codes in descending frequency order (the
// data-driven domain permutation of the same line of work): the values
// that participate in the most tuples become adjacent low codes, so on
// skewed data the rule-outs around the heavy hitters coalesce even when
// the raw values are scattered across the domain. A frequency encoding
// is generally NOT order-preserving — see OrderPreserving — so emitted
// tuples stream in permuted-domain order and range bounds cannot be
// translated into one contiguous code interval.
type Dict struct {
	values []int // code -> value; sorted ascending iff order-preserving
	freq   bool  // built by NewFreqDict (frequency-permuted code space)

	// Lookup index for non-monotone code spaces: byValue is the sorted
	// value list and codeOf[i] the code of byValue[i]. nil when values
	// itself is sorted (rank dictionaries binary-search values directly).
	byValue []int
	codeOf  []int
}

// NewDict builds the dictionary of the given value lists (the columns
// the attribute binds, concatenated). Values are deduplicated; the
// inputs are not retained.
func NewDict(lists ...[]int) *Dict {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	buf := make([]int, 0, n)
	for _, l := range lists {
		buf = append(buf, l...)
	}
	sort.Ints(buf)
	out := buf[:0]
	for i, v := range buf {
		if i > 0 && v == buf[i-1] {
			continue
		}
		out = append(out, v)
	}
	// Dictionaries live as long as their prepared query; when dedup
	// shed most of the concatenated input, keeping the original backing
	// array alive would pin sum(|columns|) ints for a fraction of the
	// values. Copy down to size in that case.
	if cap(buf) > 2*len(out) {
		out = append(make([]int, 0, len(out)), out...)
	}
	return &Dict{values: out}
}

// NewFreqDict builds the frequency-permuted dictionary of the given
// value lists: codes are assigned by descending total occurrence count,
// ties broken by ascending value (so the permutation is deterministic).
// When the resulting code order happens to coincide with value order
// the dictionary is order-preserving like a rank dictionary; otherwise
// Encode goes through a sorted lookup index.
func NewFreqDict(lists ...[]int) *Dict {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	buf := make([]int, 0, n)
	for _, l := range lists {
		buf = append(buf, l...)
	}
	sort.Ints(buf)
	type vc struct{ val, count int }
	var counts []vc
	for i, v := range buf {
		if i > 0 && v == buf[i-1] {
			counts[len(counts)-1].count++
			continue
		}
		counts = append(counts, vc{val: v, count: 1})
	}
	sort.SliceStable(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].val < counts[j].val
	})
	d := &Dict{values: make([]int, len(counts)), freq: true}
	monotone := true
	for c, e := range counts {
		d.values[c] = e.val
		if c > 0 && e.val < d.values[c-1] {
			monotone = false
		}
	}
	if !monotone {
		// codeOf mirrors the sorted value list: byValue[i] has code
		// codeOf[i]. Built by sorting code indexes by their value.
		d.codeOf = make([]int, len(d.values))
		for c := range d.codeOf {
			d.codeOf[c] = c
		}
		sort.Slice(d.codeOf, func(i, j int) bool {
			return d.values[d.codeOf[i]] < d.values[d.codeOf[j]]
		})
		d.byValue = make([]int, len(d.values))
		for i, c := range d.codeOf {
			d.byValue[i] = d.values[c]
		}
	}
	return d
}

// Len returns the code-space size n (codes are [0, n)).
func (d *Dict) Len() int { return len(d.values) }

// Freq reports whether the dictionary was built by NewFreqDict (codes
// follow descending frequency, not value order).
func (d *Dict) Freq() bool { return d.freq }

// OrderPreserving reports whether the code order is monotone in value
// order — true for rank dictionaries, and for frequency dictionaries
// only when the permutation degenerates to the identity. Only
// order-preserving dictionaries can translate a value range into one
// contiguous code range (EncodeBounds falls back to the full bound
// otherwise; the shaping net re-checks raw bounds on emit).
func (d *Dict) OrderPreserving() bool { return d.byValue == nil }

// Encode returns the code of v, or ok=false when v is not in the
// dictionary (such a value cannot appear in any join output).
func (d *Dict) Encode(v int) (int, bool) {
	if d.byValue != nil {
		i := sort.SearchInts(d.byValue, v)
		if i < len(d.byValue) && d.byValue[i] == v {
			return d.codeOf[i], true
		}
		return 0, false
	}
	i := sort.SearchInts(d.values, v)
	if i < len(d.values) && d.values[i] == v {
		return i, true
	}
	return 0, false
}

// Decode returns the value of code c. Codes outside [0, n) clamp to the
// domain sentinels, mirroring the index convention for ±∞.
func (d *Dict) Decode(c int) int {
	switch {
	case c < 0:
		return ordered.NegInf
	case c >= len(d.values):
		return ordered.PosInf
	}
	return d.values[c]
}

// LoCode returns the smallest code whose value is ≥ v (len when none):
// the encoded form of an inclusive lower bound. Only meaningful for
// order-preserving dictionaries (a permuted code space has no
// contiguous code image of a value range).
func (d *Dict) LoCode(v int) int { return sort.SearchInts(d.values, v) }

// HiCode returns the largest code whose value is ≤ v (-1 when none):
// the encoded form of an inclusive upper bound. Order-preserving
// dictionaries only, like LoCode.
func (d *Dict) HiCode(v int) int { return sort.SearchInts(d.values, v+1) - 1 }

// DictSet carries one optional dictionary per GAO position (nil = the
// position stays raw). It is immutable once built; the prepared-query
// layer rebuilds it when a bound relation's epoch changes.
type DictSet struct {
	ByPos []*Dict
}

// Any reports whether at least one position is encoded.
func (ds *DictSet) Any() bool {
	if ds == nil {
		return false
	}
	for _, d := range ds.ByPos {
		if d != nil {
			return true
		}
	}
	return false
}

// EncodeTuples rank-encodes the columns of GAO-permuted tuples in
// place: column j of every tuple holds the value of GAO position
// positions[j]. Rows are assumed to be freshly permuted copies owned by
// the caller. Every value is present in its dictionary by construction
// (dictionaries are built from the same columns).
func (ds *DictSet) EncodeTuples(tuples [][]int, positions []int) {
	for j, gp := range positions {
		d := ds.ByPos[gp]
		if d == nil {
			continue
		}
		for _, row := range tuples {
			c, ok := d.Encode(row[j])
			if !ok && d.OrderPreserving() {
				// Unreachable when the dictionary covers the column; keep
				// a defined order-preserving fallback rather than panic.
				c = d.LoCode(row[j])
			}
			row[j] = c
		}
	}
}

// EncodeBounds translates per-position inclusive bounds into code
// space. A bound that no dictionary value satisfies becomes the empty
// bound — correctly so: the dictionary holds every value the attribute
// takes anywhere, so an uncovered range cannot contribute output.
func (ds *DictSet) EncodeBounds(bounds []Bound) []Bound {
	if bounds == nil {
		return nil
	}
	out := make([]Bound, len(bounds))
	for i, b := range bounds {
		d := ds.ByPos[i]
		if d == nil {
			out[i] = b
			continue
		}
		if b.Full() {
			out[i] = FullBound()
			continue
		}
		if !d.OrderPreserving() {
			// A permuted code space has no contiguous image of the value
			// range, so nothing can be pushed down here; the shaping net
			// re-checks the raw bound on every emitted tuple, so the full
			// bound stays correct. The prepared layer avoids frequency
			// dictionaries on bounded positions precisely to keep the
			// pushdown — this branch is its defensive backstop.
			out[i] = FullBound()
			continue
		}
		out[i] = Bound{Lo: d.LoCode(b.Lo), Hi: d.HiCode(b.Hi)}
	}
	return out
}

// DecodeInPlace maps an emitted code tuple (one value per GAO position)
// back to raw values. Emitted tuples are owned by the receiver, so
// in-place decoding is safe and allocation-free.
func (ds *DictSet) DecodeInPlace(t []int) {
	for i, d := range ds.ByPos {
		if d != nil {
			t[i] = d.Decode(t[i])
		}
	}
}

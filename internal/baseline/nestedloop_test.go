package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

func TestIndexNestedLoopBasic(t *testing.T) {
	p := specsFor(t, []string{"A", "B", "C"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {3, 4}}},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: [][]int{{2, 5}, {2, 6}, {4, 7}}},
	})
	got, err := IndexNestedLoopAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 2, 5}, {1, 2, 6}, {3, 4, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestIndexNestedLoopAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, shape := range shapes {
		for trial := 0; trial < 6; trial++ {
			dom := 2 + rng.Intn(4)
			var atoms []core.AtomSpec
			for ai, attrs := range shape.atoms {
				cnt := rng.Intn(12)
				var tuples [][]int
				for i := 0; i < cnt; i++ {
					tup := make([]int, len(attrs))
					for j := range tup {
						tup[j] = rng.Intn(dom)
					}
					tuples = append(tuples, tup)
				}
				atoms = append(atoms, core.AtomSpec{
					Name: shape.name + string(rune('R'+ai)), Attrs: attrs, Tuples: tuples})
			}
			want, err := LeftDeepHashJoin(shape.gao, atoms, nil)
			if err != nil {
				t.Fatal(err)
			}
			p := specsFor(t, shape.gao, atoms)
			got, err := IndexNestedLoopAll(p, nil)
			if err != nil {
				t.Fatalf("%s/%d: %v", shape.name, trial, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%d: got %v want %v", shape.name, trial, got, want)
			}
		}
	}
}

func TestIndexNestedLoopStats(t *testing.T) {
	p := specsFor(t, []string{"A"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {2}, {3}}},
		{Name: "S", Attrs: []string{"A"}, Tuples: [][]int{{2}}},
	})
	var stats certificate.Stats
	out, err := IndexNestedLoopAll(p, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0] != 2 {
		t.Fatalf("out = %v", out)
	}
	// Probes into S for each R tuple: the Ω(N) behaviour of the class.
	if stats.FindGaps < 3 {
		t.Fatalf("FindGaps = %d, want one probe per outer tuple", stats.FindGaps)
	}
}

func TestBlockNestedLoopMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		mk := func(attrs []string) *table {
			n := rng.Intn(30)
			var tuples [][]int
			for i := 0; i < n; i++ {
				tup := make([]int, len(attrs))
				for j := range tup {
					tup[j] = rng.Intn(6)
				}
				tuples = append(tuples, tup)
			}
			return tableFromSpec(core.AtomSpec{Name: "X", Attrs: attrs, Tuples: tuples})
		}
		a := mk([]string{"A", "B"})
		b := mk([]string{"B", "C"})
		h := HashJoin(a, b, nil)
		for _, bs := range []int{0, 1, 4, 1000} {
			m := BlockNestedLoopJoin(a, b, bs, nil)
			SortTuples(h.tuples)
			SortTuples(m.tuples)
			if !reflect.DeepEqual(h.tuples, m.tuples) {
				t.Fatalf("trial %d bs=%d: %v vs %v", trial, bs, m.tuples, h.tuples)
			}
		}
	}
}

func TestBlockNestedLoopComparisons(t *testing.T) {
	// Block NL performs |A|·|B| comparisons regardless of selectivity —
	// the canonical Ω(N²) member of the comparison class.
	a := tableFromSpec(core.AtomSpec{Name: "A", Attrs: []string{"A", "B"},
		Tuples: [][]int{{1, 1}, {2, 2}, {3, 3}}})
	b := tableFromSpec(core.AtomSpec{Name: "B", Attrs: []string{"B", "C"},
		Tuples: [][]int{{9, 9}, {8, 8}}})
	var stats certificate.Stats
	BlockNestedLoopJoin(a, b, 2, &stats)
	if stats.Comparisons != 6 {
		t.Fatalf("comparisons = %d, want 6", stats.Comparisons)
	}
}

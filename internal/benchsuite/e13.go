package benchsuite

import (
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
)

// --- E13: clustered joins, box-cover vs interval-only CDS ------------
//
// The E13 pairs run the same clustered instance twice: once with the
// box-cover CDS (the default) and once with box emission disabled
// (p.DisableBoxes), isolating what multi-dimensional gap certificates
// buy. The GAO is pinned to the clustered X-first order — the
// data-aware planner would put the two-value Y attribute first and
// empty the band join from the bands alone, which is a fine plan but
// not the CDS mechanism these benchmarks measure.

func e13Run(b *testing.B, r, s [][]int, boxes bool) {
	p, err := core.NewProblem([]string{"X", "Y"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"X", "Y"}, Tuples: r},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: s},
	})
	if err != nil {
		b.Fatal(err)
	}
	p.DisableBoxes = !boxes
	var stats certificate.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// ClusteredBandBoxes / ClusteredBandIntervalOnly: disjoint Y-bands, an
// empty join whose ruling-out is the whole cost. Interval-only pays one
// probe round per cluster member; boxes retire each cluster's X-range ×
// Y-band rectangle after a short widening streak.
func ClusteredBandBoxes(b *testing.B) {
	r, s := dataset.ClusteredBandJoin(8, 1024)
	e13Run(b, r, s, true)
}

func ClusteredBandIntervalOnly(b *testing.B) {
	r, s := dataset.ClusteredBandJoin(8, 1024)
	e13Run(b, r, s, false)
}

// ClusteredOverlapBoxes / ClusteredOverlapIntervalOnly: the non-empty
// variant — every 256th cluster member emits one tuple, the rest is
// ruled out. The box win persists with real output in the stream; the
// hit spacing leaves widening streaks long enough for boxes to pay
// (dense hits would fragment every box at the streak gate's scan
// horizon and the narrow boxes' scan cost would dominate).
func ClusteredOverlapBoxes(b *testing.B) {
	r, s := dataset.ClusteredOverlapJoin(8, 1024, 256)
	e13Run(b, r, s, true)
}

func ClusteredOverlapIntervalOnly(b *testing.B) {
	r, s := dataset.ClusteredOverlapJoin(8, 1024, 256)
	e13Run(b, r, s, false)
}

package dataset

// The E12 instances: skewed relation sizes over sparse value domains.
// Both stress what the structural GAO heuristics cannot see — the data.

// SparseSkewJoin builds the E12 planning instance: Q = E(A,B) ⋈ F(B,C)
// where E is big (n tuples, every value strided by `stride` so the
// domain is sparse) and F is tiny (k tuples) with B values that almost
// all miss E's. The structural default order leads with A — the huge
// relation's private attribute — and pays Θ(n) probe points; an order
// leading with F's attributes pays Θ(k). Every k/8-th F tuple hits a
// B value of E so the join is non-empty (the planner must not win by
// emptiness alone).
func SparseSkewJoin(n, k, stride int) (e, f [][]int) {
	for i := 0; i < n; i++ {
		e = append(e, []int{i*stride + 7, i*stride + 3})
	}
	for j := 0; j < k; j++ {
		b := (j*11+5)*stride + 1 // interleaves E's B range, misses it
		if j%8 == 0 {
			b = (j*11)*stride + 3 // hits E tuple i = j*11
		}
		f = append(f, []int{b, j * stride})
	}
	return e, f
}

// SparseHeavyEnum builds the E12 skew+output instance: one heavy join
// value b* with h sparse A partners in E and w sparse C partners in F
// (an enumeration of h·w output tuples over stride-sparse values), plus
// `filler` E tuples of unique sparse (A, B) pairs that never join. The
// structural default order leads with A and pays a probe round per
// filler tuple; a data-aware order leads with F's small B domain and
// pays only for the real output. The sparse values also exercise the
// dictionary's interval coalescing on the per-output rule-outs.
func SparseHeavyEnum(h, w, filler, stride int) (e, f [][]int) {
	const bstar = 1_000_003
	for i := 0; i < h; i++ {
		e = append(e, []int{i*stride + 11, bstar})
	}
	// Filler lives above the heavy block in A and away from b* in B.
	aBase := h*stride + 1_000_000_007
	bBase := 2_000_000_003
	for i := 0; i < filler; i++ {
		e = append(e, []int{aBase + i*stride, bBase + i*stride})
	}
	for j := 0; j < w; j++ {
		f = append(f, []int{bstar, j*stride + 13})
	}
	return e, f
}

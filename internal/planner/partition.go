package planner

// PartitionChoice is the planner's verdict on how to shard one
// relation: which column to partition on and whether contiguous range
// slices (order-preserving, so each shard owns an interval of the
// column's domain) are preferable to hash buckets.
type PartitionChoice struct {
	Col   int    // column index into the relation's binding
	Attr  string // attribute name at Col
	Range bool   // range-partition instead of hash
}

// rangeGateDistinct and rangeGateSkew gate range partitioning: the
// column needs at least rangeGateDistinct distinct values per shard for
// quantile splits to exist, and its heaviest value must stay under
// 1/rangeGateSkew of the rows — a dominant value cannot be split across
// range boundaries and would turn one shard into the hot shard.
const (
	rangeGateDistinct = 4
	rangeGateSkew     = 4
)

// ChoosePartition picks the partition column for splitting a relation
// across the given number of shards. The choice reuses the GAO search:
// the relation is planned as a single-atom query and the leading
// attribute of the winning order — the column the cost model wants
// outermost — becomes the partition column, so a query driven by that
// attribute restricts its leading domain to one shard's slice. Mode is
// range when the column's statistics pass the skew gate, hash
// otherwise. The choice is deterministic in (attrs, stats, shards).
func ChoosePartition(attrs []string, st *RelStats, shards int) PartitionChoice {
	choice := PartitionChoice{Col: 0}
	if len(attrs) == 0 {
		return choice
	}
	choice.Attr = attrs[0]
	if st == nil || st.Rows == 0 || len(st.Cols) < len(attrs) {
		return choice
	}
	plan := Choose([]Atom{{Attrs: attrs, Rows: st.Rows, Cols: st.Cols[:len(attrs)]}}, Config{})
	if len(plan.GAO) > 0 {
		for i, a := range attrs {
			if a == plan.GAO[0] {
				choice.Col, choice.Attr = i, a
				break
			}
		}
	}
	c := st.Cols[choice.Col]
	choice.Range = shards > 1 &&
		c.Distinct >= rangeGateDistinct*shards &&
		c.MaxFreq*rangeGateSkew <= st.Rows
	return choice
}

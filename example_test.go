package minesweeper_test

import (
	"fmt"
	"log"

	"minesweeper"
)

// Joining two relations with the default (Minesweeper) engine.
func ExampleExecute() {
	r, err := minesweeper.NewRelation("R", 2, [][]int{{1, 10}, {3, 20}})
	if err != nil {
		log.Fatal(err)
	}
	s, err := minesweeper.NewRelation("S", 2, [][]int{{10, 100}, {20, 200}, {55, 5}})
	if err != nil {
		log.Fatal(err)
	}
	q, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: r, Vars: []string{"A", "B"}},
		minesweeper.Atom{Rel: s, Vars: []string{"B", "C"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := minesweeper.Execute(q, &minesweeper.Options{GAO: []string{"A", "B", "C"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Vars)
	for _, tup := range res.Tuples {
		fmt.Println(tup)
	}
	// Output:
	// [A B C]
	// [1 10 100]
	// [3 20 200]
}

// Adaptive set intersection skips over provably empty regions: disjoint
// inputs cost O(1) probes regardless of size.
func ExampleIntersect() {
	a := []int{1, 2, 3, 4, 5}
	b := []int{3, 5, 7}
	out, stats, err := minesweeper.Intersect(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println(stats.Outputs)
	// Output:
	// [3 5]
	// 2
}

// Queries can be written as text.
func ExampleParseQuery() {
	edge, err := minesweeper.NewRelation("Edge", 2, [][]int{{1, 2}, {2, 3}, {3, 1}})
	if err != nil {
		log.Fatal(err)
	}
	q, err := minesweeper.ParseQuery("Edge(x,y) ⋈ Edge(y,z) ⋈ Edge(x,z)", map[string]*minesweeper.Relation{"Edge": edge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.IsBetaAcyclic())
	res, err := minesweeper.Execute(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Tuples))
	// Output:
	// false
	// 0
}

// Structure analysis guides the choice of attribute order.
func ExampleQuery_RecommendGAO() {
	r, _ := minesweeper.NewRelation("R", 1, nil)
	s, _ := minesweeper.NewRelation("S", 2, nil)
	t, _ := minesweeper.NewRelation("T", 1, nil)
	q, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: r, Vars: []string{"X"}},
		minesweeper.Atom{Rel: s, Vars: []string{"X", "Y"}},
		minesweeper.Atom{Rel: t, Vars: []string{"Y"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	_, width := q.RecommendGAO()
	fmt.Println(q.IsBetaAcyclic(), width)
	// Output:
	// true 1
}

// Triangle listing with the Õ(|C|^{3/2}+Z) specialized engine.
func ExampleListTriangles() {
	edges := [][]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}
	tris, _, err := minesweeper.ListTriangles(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(tris))
	// Output:
	// 6
}

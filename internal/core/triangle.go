package core

import (
	"fmt"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// triangleCDS is the constraint data structure of Appendix L for
// Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) under the GAO (A,B,C): the ordinary
// two-level lists for A and B constraints, with the ⟨*,b,(c1,c2)⟩
// constraints held in a dyadic tree over B whose nodes store C-interval
// lists satisfying I(*,x) = I(*,x∘0) ∩ I(*,x∘1); per-(a,node) caches
// memoize the NextUnion walks (Algorithm 10).
type triangleCDS struct {
	ia     *ordered.RangeSet         // ⟨(a1,a2),*,*⟩
	ibStar *ordered.RangeSet         // ⟨*,(b1,b2),*⟩
	ibEq   map[int]*ordered.RangeSet // ⟨a,(b1,b2),*⟩
	icEq   map[int]*ordered.RangeSet // ⟨a,*,(c1,c2)⟩
	dy     *ordered.DyadicTree       // ⟨*,b,(c1,c2)⟩
	// oob holds NextUnion caches for probe B-values outside the dyadic
	// key space (they occur only before the wildcard B-gaps arrive).
	oob   map[[2]int]int
	stats *certificate.Stats
}

func newTriangleCDS(maxB int, stats *certificate.Stats) *triangleCDS {
	return &triangleCDS{
		ia:     ordered.NewRangeSet(),
		ibStar: ordered.NewRangeSet(),
		ibEq:   map[int]*ordered.RangeSet{},
		icEq:   map[int]*ordered.RangeSet{},
		dy:     ordered.NewDyadicTree(maxB + 2),
		oob:    map[[2]int]int{},
		stats:  stats,
	}
}

func (c *triangleCDS) op() {
	if c.stats != nil {
		c.stats.CDSOps++
	}
}

func (c *triangleCDS) cons() {
	if c.stats != nil {
		c.stats.Constraints++
	}
}

func (c *triangleCDS) bEq(a int) *ordered.RangeSet {
	rs, ok := c.ibEq[a]
	if !ok {
		rs = ordered.NewRangeSet()
		c.ibEq[a] = rs
	}
	return rs
}

func (c *triangleCDS) cEq(a int) *ordered.RangeSet {
	rs, ok := c.icEq[a]
	if !ok {
		rs = ordered.NewRangeSet()
		c.icEq[a] = rs
	}
	return rs
}

// insertBStar records a wildcard B-interval ⟨*,(l,r),*⟩ and, per
// footnote 15 of the paper, marks the dyadic nodes inside it as fully
// covered so subtree pruning sees them.
func (c *triangleCDS) insertBStar(l, r int) {
	c.cons()
	c.ibStar.InsertOpen(l, r)
	rg := ordered.OpenToRange(l, r)
	c.dy.MarkKeyRangeFull(rg.Lo, rg.Hi)
}

// getProbePoint returns an active (a,b,c) or ok=false. The walk follows
// Algorithm 10: pick a, pick a candidate b from the B-lists, then descend
// the dyadic tree toward b's leaf, pruning any node whose C-space is
// exhausted (inserting the inferred constraint ⟨a, node-range, *⟩) and
// memoizing NextUnion progress per (a, node).
func (c *triangleCDS) getProbePoint() (a, b, cv int, ok bool) {
	for {
		c.op()
		a = c.ia.Next(-1)
		if a >= ordered.PosInf {
			return 0, 0, 0, false
		}
		bEq, cEq := c.bEq(a), c.cEq(a)
		b = -1
		for {
			c.op()
			b = ordered.NextUnion(bEq, c.ibStar, b)
			if b >= ordered.PosInf {
				// No viable B for this a. If the wildcard B-list alone
				// covers everything, no a can ever succeed (the
				// all-wildcard bottom-pattern case of Algorithm 3):
				// report exhaustion. Otherwise rule out just this a.
				c.op()
				if c.ibStar.Next(-1) >= ordered.PosInf {
					return 0, 0, 0, false
				}
				c.cons()
				c.ia.InsertOpen(a-1, a+1)
				break
			}
			if b < 0 || b >= c.dy.Capacity() {
				// Outside the dyadic key space: no ⟨*,b,·⟩ constraints
				// apply; only the ⟨a,*,·⟩ list constrains C.
				key := [2]int{a, b}
				z := -1
				if v, hit := c.oob[key]; hit {
					z = v
				}
				c.op()
				cv = cEq.Next(z)
				if cv >= ordered.PosInf {
					c.cons()
					bEq.InsertOpen(b-1, b+1)
					continue
				}
				c.oob[key] = cv
				if c.stats != nil {
					c.stats.ProbePoints++
				}
				return a, b, cv, true
			}
			// Descend the dyadic tree toward leaf b.
			x := c.dy.Root()
			pruned := false
			for {
				z := x.Cache(a, -1)
				c.op()
				cv = ordered.NextUnion(cEq, x.Set, z)
				x.SetCache(a, cv)
				if cv >= ordered.PosInf {
					// Every C is ruled out for all b in x's range:
					// inferred constraint ⟨a, (x.Lo-1, x.Hi+1), *⟩.
					c.cons()
					bEq.InsertOpen(x.Lo-1, x.Hi+1)
					pruned = true
					break
				}
				if x.IsLeaf() {
					if c.stats != nil {
						c.stats.ProbePoints++
					}
					return a, b, cv, true
				}
				x = c.dy.Descend(x, b)
			}
			if pruned {
				continue // recompute b past the pruned block
			}
		}
	}
}

// Triangle evaluates the triangle query Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)
// with the specialized Minesweeper of Theorem 5.4, running in
// Õ(|C|^{3/2} + Z) instead of the Õ(|C|²+Z) of the generic CDS.
// r, s, t are lists of pairs. Outputs (a,b,c) triples.
func Triangle(r, s, t [][]int, stats *certificate.Stats) ([][]int, error) {
	rT, sT, tT, err := TriangleIndexes(r, s, t)
	if err != nil {
		return nil, err
	}
	return TriangleIndexed(rT, sT, tT, stats)
}

// TriangleIndexes builds the three search trees of the triangle query
// once; TriangleIndexed (and the range-parallel driver, via SliceTop
// views) can then run against them repeatedly without re-sorting.
func TriangleIndexes(r, s, t [][]int) (rT, sT, tT *reltree.Tree, err error) {
	if rT, err = reltree.New("R", 2, r); err != nil {
		return nil, nil, nil, err
	}
	if sT, err = reltree.New("S", 2, s); err != nil {
		return nil, nil, nil, err
	}
	if tT, err = reltree.New("T", 2, t); err != nil {
		return nil, nil, nil, err
	}
	return rT, sT, tT, nil
}

// maxSecond returns the largest second-attribute value of an arity-2
// tree (0 when empty) by scanning the last value of each second-level
// node — O(#distinct first values), no tuple materialization.
func maxSecond(t *reltree.Tree) int {
	max := 0
	root := t.Root()
	if root == nil {
		return 0
	}
	for _, child := range root.Children {
		if n := len(child.Values); n > 0 && child.Values[n-1] > max {
			max = child.Values[n-1]
		}
	}
	return max
}

// TriangleIndexed runs the dyadic-CDS triangle engine over prebuilt
// indexes. The trees' stats receivers are set for the duration of the
// run, so callers sharing trees across goroutines must hand each run its
// own Clone/SliceTop views.
func TriangleIndexed(rT, sT, tT *reltree.Tree, stats *certificate.Stats) ([][]int, error) {
	rT.SetStats(stats)
	sT.SetStats(stats)
	tT.SetStats(stats)
	defer rT.SetStats(nil)
	defer sT.SetStats(nil)
	defer tT.SetStats(nil)
	// The dyadic key space must cover every B value of R or S.
	maxB := maxSecond(rT)
	if sT.Size() > 0 {
		if v := sT.Value([]int{sT.Fanout(nil) - 1}); v > maxB {
			maxB = v
		}
	}
	cds := newTriangleCDS(maxB, stats)

	var out [][]int
	var lastA, lastB, lastC = -2, -2, -2
	for {
		a, b, cv, ok := cds.getProbePoint()
		if !ok {
			return out, nil
		}
		if a == lastA && b == lastB && cv == lastC {
			return nil, fmt.Errorf("core: triangle CDS made no progress at probe (%d,%d,%d)", a, b, cv)
		}
		lastA, lastB, lastC = a, b, cv

		// Explore R(A,B) around (a,b).
		ilR, ihR := rT.FindGap(nil, a)
		aInR := ilR == ihR
		cds.cons()
		cds.ia.InsertOpen(rT.Value([]int{ilR}), rT.Value([]int{ihR}))
		abInR := false
		if aInR {
			jl, jh := rT.FindGap([]int{ihR}, b)
			abInR = jl == jh
			cds.cons()
			cds.bEq(a).InsertOpen(rT.Value([]int{ihR, jl}), rT.Value([]int{ihR, jh}))
		}
		// Explore S(B,C) around (b,c).
		ilS, ihS := sT.FindGap(nil, b)
		bInS := ilS == ihS
		cds.insertBStar(sT.Value([]int{ilS}), sT.Value([]int{ihS}))
		bcInS := false
		if bInS {
			jl, jh := sT.FindGap([]int{ihS}, cv)
			bcInS = jl == jh
			cds.cons()
			cds.dy.InsertOpenAtKey(b, sT.Value([]int{ihS, jl}), sT.Value([]int{ihS, jh}))
		}
		// Explore T(A,C) around (a,c).
		ilT, ihT := tT.FindGap(nil, a)
		aInT := ilT == ihT
		cds.cons()
		cds.ia.InsertOpen(tT.Value([]int{ilT}), tT.Value([]int{ihT}))
		acInT := false
		if aInT {
			jl, jh := tT.FindGap([]int{ihT}, cv)
			acInT = jl == jh
			cds.cons()
			cds.cEq(a).InsertOpen(tT.Value([]int{ihT, jl}), tT.Value([]int{ihT, jh}))
		}

		if abInR && bcInS && acInT {
			out = append(out, []int{a, b, cv})
			if stats != nil {
				stats.Outputs++
			}
			// Advance past the output: the paper's Cache(a,b,c+1).
			if b >= 0 && b < cds.dy.Capacity() {
				leaf := cds.dy.Leaf(b)
				if leaf.Cache(a, -1) < cv+1 {
					leaf.SetCache(a, cv+1)
				}
			} else {
				cds.oob[[2]int{a, b}] = cv + 1
			}
		}
	}
}

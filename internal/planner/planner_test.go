package planner

import (
	"reflect"
	"testing"
)

func TestCollect(t *testing.T) {
	st := Collect([][]int{{5, 1}, {5, 2}, {7, 2}, {9, 2}}, 2)
	if st.Rows != 4 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	want := []ColStat{
		{Distinct: 3, Min: 5, Max: 9, MaxFreq: 2},
		{Distinct: 2, Min: 1, Max: 2, MaxFreq: 3},
	}
	if !reflect.DeepEqual(st.Cols, want) {
		t.Fatalf("Cols = %+v, want %+v", st.Cols, want)
	}
	if st.Cols[0].Span() != 5 {
		t.Fatalf("Span = %d, want 5", st.Cols[0].Span())
	}
	empty := Collect(nil, 3)
	if empty.Rows != 0 || len(empty.Cols) != 3 || empty.Cols[1].Span() != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

// skewedPath builds the planner's bread-and-butter instance: a big
// relation E(A, B) with N rows and a small F(B, C) with K rows. Leading
// the order with A costs ~N candidate probes, leading with C costs ~K.
func skewedPath(n, k int) []Atom {
	return []Atom{
		{
			Attrs: []string{"A", "B"},
			Rows:  n,
			Cols: []ColStat{
				{Distinct: n, Min: 0, Max: 10 * n, MaxFreq: 1},
				{Distinct: n, Min: 0, Max: 10 * n, MaxFreq: 1},
			},
		},
		{
			Attrs: []string{"B", "C"},
			Rows:  k,
			Cols: []ColStat{
				{Distinct: k, Min: 0, Max: 10 * n, MaxFreq: 1},
				{Distinct: k, Min: 0, Max: k, MaxFreq: 1},
			},
		},
	}
}

func TestCostOfPrefersSmallLead(t *testing.T) {
	atoms := skewedPath(100000, 50)
	big := CostOf(atoms, []string{"A", "B", "C"})
	small := CostOf(atoms, []string{"C", "B", "A"})
	if small >= big {
		t.Fatalf("CostOf small-lead %.0f !< big-lead %.0f", small, big)
	}
}

func TestChooseDataAware(t *testing.T) {
	atoms := skewedPath(100000, 50)
	plan := Choose(atoms, Config{})
	if plan.Width != 1 {
		t.Fatalf("width = %d, want 1", plan.Width)
	}
	if plan.GAO[0] == "A" {
		t.Fatalf("plan %v leads with the huge relation's attribute", plan.GAO)
	}
	if !plan.Planned {
		t.Fatal("plan should be data-aware (structural default leads with A)")
	}
	if plan.Considered < 2 {
		t.Fatalf("Considered = %d, want several candidates", plan.Considered)
	}
	// The chosen order must be a permutation of all attributes.
	seen := map[string]bool{}
	for _, v := range plan.GAO {
		seen[v] = true
	}
	if len(plan.GAO) != 3 || !seen["A"] || !seen["B"] || !seen["C"] {
		t.Fatalf("plan GAO %v is not a permutation", plan.GAO)
	}
}

func TestChooseKeepsStructuralOnUniformData(t *testing.T) {
	// Symmetric uniform relations: no candidate can model meaningfully
	// cheaper than the structural order, so the structural order stays.
	uniform := []Atom{
		{Attrs: []string{"A", "B"}, Rows: 100, Cols: []ColStat{{Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}, {Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}}},
		{Attrs: []string{"B", "C"}, Rows: 100, Cols: []ColStat{{Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}, {Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}}},
	}
	plan := Choose(uniform, Config{})
	structural, width := Structural(uniform)
	if !reflect.DeepEqual(plan.GAO, structural) {
		t.Fatalf("uniform data: plan %v != structural %v", plan.GAO, structural)
	}
	if plan.Planned {
		t.Fatal("uniform data must not report a data-aware override")
	}
	if plan.Width != width {
		t.Fatalf("width %d != structural %d", plan.Width, width)
	}
}

func TestChooseDeterministic(t *testing.T) {
	atoms := skewedPath(50000, 20)
	first := Choose(atoms, Config{})
	for i := 0; i < 5; i++ {
		if got := Choose(atoms, Config{}); !reflect.DeepEqual(got.GAO, first.GAO) {
			t.Fatalf("run %d: plan %v != %v", i, got.GAO, first.GAO)
		}
	}
	// Atom order must not matter.
	swapped := []Atom{atoms[1], atoms[0]}
	if got := Choose(swapped, Config{}); !reflect.DeepEqual(got.GAO, first.GAO) {
		t.Fatalf("swapped atoms: plan %v != %v", got.GAO, first.GAO)
	}
}

func TestChooseCyclic(t *testing.T) {
	// Triangle with one tiny relation: the forward beam should lead with
	// the tiny relation's attributes, and the width must stay 2 (the
	// triangle's treewidth — every order achieves it).
	tri := []Atom{
		{Attrs: []string{"A", "B"}, Rows: 10000, Cols: []ColStat{{Distinct: 10000, Min: 0, Max: 99999, MaxFreq: 1}, {Distinct: 10000, Min: 0, Max: 99999, MaxFreq: 1}}},
		{Attrs: []string{"B", "C"}, Rows: 10000, Cols: []ColStat{{Distinct: 10000, Min: 0, Max: 99999, MaxFreq: 1}, {Distinct: 10000, Min: 0, Max: 99999, MaxFreq: 1}}},
		{Attrs: []string{"A", "C"}, Rows: 10, Cols: []ColStat{{Distinct: 10, Min: 0, Max: 99999, MaxFreq: 1}, {Distinct: 10, Min: 0, Max: 99999, MaxFreq: 1}}},
	}
	plan := Choose(tri, Config{})
	if plan.Width != 2 {
		t.Fatalf("triangle width = %d, want 2", plan.Width)
	}
	if plan.GAO[0] != "A" && plan.GAO[0] != "C" {
		t.Fatalf("plan %v should lead with an attribute of the tiny relation", plan.GAO)
	}
	if len(plan.GAO) != 3 {
		t.Fatalf("plan %v not a full order", plan.GAO)
	}
}

func TestChooseBeyondBruteForceLimit(t *testing.T) {
	// 12-attribute path query: beyond the 9-variable exhaustive-width
	// wall. The beam must still return a full width-1 order.
	var atoms []Atom
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i := 0; i+1 < len(names); i++ {
		atoms = append(atoms, Atom{
			Attrs: []string{names[i], names[i+1]},
			Rows:  100,
			Cols:  []ColStat{{Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}, {Distinct: 100, Min: 0, Max: 99, MaxFreq: 1}},
		})
	}
	plan := Choose(atoms, Config{})
	if len(plan.GAO) != len(names) {
		t.Fatalf("plan %v incomplete", plan.GAO)
	}
	if plan.Width != 1 {
		t.Fatalf("path width = %d, want 1", plan.Width)
	}
}

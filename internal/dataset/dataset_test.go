package dataset

import (
	"reflect"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/hypergraph"
)

func TestPowerLawGraphShape(t *testing.T) {
	g := PowerLawGraph(500, 4, false, 1)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
	deg := map[int]int{}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			t.Fatal("self loop")
		}
		k := [2]int{e[0], e[1]}
		if seen[k] {
			t.Fatal("duplicate edge")
		}
		seen[k] = true
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			t.Fatal("vertex out of range")
		}
		deg[e[1]]++
	}
	// Heavy tail: the max in-degree should far exceed the average.
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 3*avg {
		t.Fatalf("degree distribution too flat: max %d avg %.1f", maxDeg, avg)
	}
}

func TestPowerLawSymmetric(t *testing.T) {
	g := PowerLawGraph(200, 3, true, 2)
	set := map[[2]int]bool{}
	for _, e := range g.Edges {
		set[[2]int{e[0], e[1]}] = true
	}
	for _, e := range g.Edges {
		if !set[[2]int{e[1], e[0]}] {
			t.Fatalf("missing reverse of %v", e)
		}
	}
}

func TestGraphDeterminism(t *testing.T) {
	a := PowerLawGraph(300, 5, false, 7)
	b := PowerLawGraph(300, 5, false, 7)
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatal("same seed must give same graph")
	}
	c := PowerLawGraph(300, 5, false, 8)
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seed should differ")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyiGraph(100, 400, 3)
	if len(g.Edges) != 400 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
}

func TestSampleVertices(t *testing.T) {
	s := SampleVertices(10000, 0.01, 5)
	if len(s) < 50 || len(s) > 200 {
		t.Fatalf("sample size %d implausible for p=0.01", len(s))
	}
	if len(SampleVertices(100, 0, 5)) != 0 {
		t.Fatal("p=0 must be empty")
	}
	if got := len(SampleVertices(100, 1, 5)); got != 100 {
		t.Fatalf("p=1 must keep all, got %d", got)
	}
}

func TestFigure2QueriesAreWellFormedAndBetaAcyclic(t *testing.T) {
	g := PowerLawGraph(300, 4, true, 9)
	samples := make([][][]int, 4)
	for i := range samples {
		samples[i] = SampleVertices(g.N, 0.05, int64(i))
	}
	builders := []func(*Graph, [][][]int) ([]string, []core.AtomSpec){
		StarQuery, PathQuery, TreeQuery,
	}
	for bi, build := range builders {
		gao, atoms := build(g, samples)
		if _, err := core.NewProblem(gao, atoms); err != nil {
			t.Fatalf("builder %d: %v", bi, err)
		}
		edges := make([][]string, len(atoms))
		for i, a := range atoms {
			edges[i] = a.Attrs
		}
		h := hypergraph.New(edges)
		if !h.IsBetaAcyclic() {
			t.Fatalf("builder %d: query not β-acyclic", bi)
		}
		neo, ok := h.NestedEliminationOrder()
		if !ok {
			t.Fatalf("builder %d: no nested elimination order", bi)
		}
		if len(neo) != len(gao) {
			t.Fatalf("builder %d: NEO %v", bi, neo)
		}
	}
}

func TestAppendixJPathInstance(t *testing.T) {
	const m, M = 5, 6
	gao, atoms := AppendixJPath(m, M)
	if len(gao) != m+1 || len(atoms) != m {
		t.Fatalf("shape: %d attrs %d atoms", len(gao), len(atoms))
	}
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		t.Fatal(err)
	}
	// The query is β-acyclic and the natural order is a nested
	// elimination order.
	edges := make([][]string, len(atoms))
	for i, a := range atoms {
		edges[i] = a.Attrs
	}
	h := hypergraph.New(edges)
	if ok, err := h.IsNestedEliminationOrder(gao); err != nil || !ok {
		t.Fatalf("natural order not nested: %v %v", ok, err)
	}
	// The join must be empty (the certificate inference of Appendix J).
	out, err := core.MinesweeperAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("Appendix J instance must have empty join, got %d tuples", len(out))
	}
	// Each relation has ~ (m-2)·(M-1)² + 1 tuples.
	want := (m-2)*(M-1)*(M-1) + 1
	for _, a := range p.Atoms {
		if a.Tree.Size() != want {
			t.Fatalf("relation %s has %d tuples, want %d", a.Name, a.Tree.Size(), want)
		}
	}
}

func TestCliqueInstance(t *testing.T) {
	gao, atoms := CliqueInstance(2, 4)
	if len(gao) != 3 || len(atoms) != 3 {
		t.Fatalf("w=2 shape wrong: %d %d", len(gao), len(atoms))
	}
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.MinesweeperAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("clique instance must be empty, got %v", out)
	}
}

func TestExampleB3BothGAOs(t *testing.T) {
	atoms := ExampleB3(4)
	for _, gao := range [][]string{{"A", "B", "C"}, {"C", "A", "B"}} {
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.MinesweeperAll(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("GAO %v: join must be empty (even vs odd C)", gao)
		}
	}
}

func TestSetFamilies(t *testing.T) {
	inter := InterleavedSets(3, 5)
	if len(inter) != 3 || len(inter[0]) != 5 {
		t.Fatal("interleaved shape wrong")
	}
	if inter[0][1] != 3 || inter[1][0] != 1 {
		t.Fatalf("interleaving wrong: %v", inter)
	}
	blocks := BlockSets(3, 5)
	if blocks[1][0] != 5 || blocks[2][4] != 14 {
		t.Fatalf("blocks wrong: %v", blocks)
	}
}

func TestTriangleHard(t *testing.T) {
	r, s, ty := TriangleHard(10)
	if len(r) != 100 || len(s) != 10 || len(ty) != 10 {
		t.Fatal("shape wrong")
	}
	out, err := core.Triangle(r, s, ty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("hard triangle instance must be empty, got %v", out)
	}
}

func TestTriangleGraphSymmetric(t *testing.T) {
	g := &Graph{N: 4, Edges: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	r, s, ty := TriangleGraph(g)
	if len(r) != 6 {
		t.Fatalf("symmetric closure size = %d", len(r))
	}
	out, err := core.Triangle(r, s, ty, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle {0,1,2} appears as 6 ordered witnesses.
	if len(out) != 6 {
		t.Fatalf("got %d ordered triangles, want 6", len(out))
	}
	_ = s
}

func TestPresetsBuild(t *testing.T) {
	for _, preset := range Presets {
		small := preset
		small.N = 400 // keep unit tests fast
		g, samples := small.Build()
		if g.N != 400 || len(g.Edges) == 0 {
			t.Fatalf("%s: bad graph", preset.Name)
		}
		if len(samples) != 4 {
			t.Fatalf("%s: %d samples", preset.Name, len(samples))
		}
	}
}

func TestExampleB6(t *testing.T) {
	atoms := ExampleB6(5)
	for _, gao := range [][]string{{"A", "B"}, {"B", "A"}} {
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.MinesweeperAll(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("GAO %v: join must be empty (A-ranges disjoint)", gao)
		}
	}
}

func TestLayeredPathInstance(t *testing.T) {
	gao, atoms := LayeredPathInstance(3, 4)
	if len(gao) != 4 || len(atoms) != 3 {
		t.Fatalf("shape: %d attrs %d atoms", len(gao), len(atoms))
	}
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		t.Fatal(err)
	}
	// 3-edge path query on a 3-layer DAG: empty.
	out, err := core.MinesweeperAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("expected empty, got %d", len(out))
	}
	// The 2-edge query on the same graph is NOT empty.
	gao2, atoms2 := LayeredPathInstance(3, 4)
	p2, err := core.NewProblem(gao2[:3], atoms2[:2])
	if err != nil {
		t.Fatal(err)
	}
	out2, err := core.MinesweeperAll(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 4*4*4 {
		t.Fatalf("2-edge paths = %d, want 64", len(out2))
	}
}

func TestClusteredBandJoinEmpty(t *testing.T) {
	r, s := ClusteredBandJoin(4, 32)
	if len(r) != 4*32*2 || len(s) != 4*32*2 {
		t.Fatalf("sizes: r %d s %d", len(r), len(s))
	}
	p, err := core.NewProblem([]string{"X", "Y"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"X", "Y"}, Tuples: r},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: s},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.MinesweeperAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("band join must be empty, got %d tuples", len(out))
	}
}

func TestClusteredOverlapJoinOutputs(t *testing.T) {
	const clusters, width, hit = 3, 16, 4
	r, s := ClusteredOverlapJoin(clusters, width, hit)
	p, err := core.NewProblem([]string{"X", "Y"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"X", "Y"}, Tuples: r},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: s},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.MinesweeperAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := clusters * ((width + hit - 1) / hit) // one output per hit member
	if len(out) != want {
		t.Fatalf("got %d outputs, want %d", len(out), want)
	}
	for _, tup := range out {
		if tup[1] != 5 {
			t.Fatalf("output %v not on the overlap value", tup)
		}
	}
}

// TestClusteredBoxAdvantage pins the E13 mechanism itself: with boxes
// the empty band join needs far fewer probe rounds than the
// interval-only CDS, which pays one per cluster member.
func TestClusteredBoxAdvantage(t *testing.T) {
	r, s := ClusteredBandJoin(2, 256)
	atoms := []core.AtomSpec{
		{Name: "R", Attrs: []string{"X", "Y"}, Tuples: r},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: s},
	}
	run := func(disable bool) certificate.Stats {
		p, err := core.NewProblem([]string{"X", "Y"}, atoms)
		if err != nil {
			t.Fatal(err)
		}
		p.DisableBoxes = disable
		var stats certificate.Stats
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			t.Fatal(err)
		}
		return stats
	}
	boxed, plain := run(false), run(true)
	if boxed.Boxes == 0 || boxed.BoxSkips == 0 {
		t.Fatalf("no box activity: %+v", boxed)
	}
	if plain.Boxes != 0 {
		t.Fatalf("DisableBoxes leaked boxes: %+v", plain)
	}
	if boxed.ProbePoints*10 > plain.ProbePoints {
		t.Fatalf("box CDS should cut probe rounds ≥10x: boxed %d vs interval %d",
			boxed.ProbePoints, plain.ProbePoints)
	}
}

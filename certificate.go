package minesweeper

import (
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// Comparison re-exports the symbolic comparison type of the certificate
// machinery: one relation R[x] θ S[y] between index-tuple variables
// (Section 2.2 of the paper).
type Comparison = certificate.Comparison

// Certificate is an argument — a set of symbolic comparisons — that is a
// certificate by construction: every database instance satisfying it has
// exactly the same witness set (Definition 2.3).
type Certificate struct {
	arg certificate.Argument
	q   *Query
	gao []string
}

// FullCertificate builds the explicit worst-case certificate of
// Proposition 2.6 for the query's current data under the given GAO
// (empty = recommended): at most r·N comparisons pinning down the entire
// relative order of the indexed values. Instance-optimal certificates can
// be far smaller; this is the universal upper bound that Minesweeper's
// |C|-sensitive runtime is measured against.
func FullCertificate(q *Query, gao []string) (*Certificate, error) {
	if len(gao) == 0 {
		gao, _ = q.RecommendGAO()
	}
	// The certificate machinery works over the internal evaluation order,
	// which leads with the hidden constant attributes (if any).
	gao = q.extendGAO(gao)
	p, err := core.NewProblem(gao, q.atomSpecs())
	if err != nil {
		return nil, err
	}
	return &Certificate{arg: core.BuildFullCertificate(p), q: q, gao: gao}, nil
}

// Size returns the number of comparisons — the |C| of the analysis.
func (c *Certificate) Size() int { return c.arg.Size() }

// Comparisons returns the underlying comparisons.
func (c *Certificate) Comparisons() []Comparison {
	return append([]Comparison(nil), c.arg...)
}

// String renders the comparison set.
func (c *Certificate) String() string { return c.arg.String() }

// SatisfiedByTransform re-evaluates the certificate against the query's
// own data with every value passed through transform (nil = identity).
// Order-preserving transforms must satisfy the certificate — certificates
// are value-oblivious (Section 6.2) — while order-breaking ones must not.
func (c *Certificate) SatisfiedByTransform(transform func(int) int) (bool, error) {
	p, err := core.NewProblem(c.gao, c.q.atomSpecs())
	if err != nil {
		return false, err
	}
	return c.arg.SatisfiedBy(core.ProblemInstance(p, transform))
}

package shard

import (
	"errors"
	"sync/atomic"
	"testing"

	minesweeper "minesweeper"
)

// GAO-resumable retry coverage (the read half of replication): a
// substream whose serving replica dies — or panics — mid-stream resumes
// on a sibling replica from the last delivered key, and the fused
// NDJSON stream stays byte-identical to the unsharded reference across
// engines, shard counts and kill points.

// killer arms c.killHook to fail the serving attempt of one shard at an
// exact output tuple, once per arm.
type killer struct {
	shard   int
	at      int64 // fail before the (at+1)-th tuple of the substream
	armed   atomic.Bool
	seen    atomic.Int64
	fired   atomic.Int64
	doPanic bool
}

func (k *killer) arm() {
	k.seen.Store(0)
	k.armed.Store(true)
}

func (k *killer) hook(shard, replica int, tuple []int) error {
	if shard != k.shard || !k.armed.Load() {
		return nil
	}
	if k.seen.Add(1) != k.at+1 {
		return nil
	}
	if !k.armed.CompareAndSwap(true, false) {
		return nil
	}
	k.fired.Add(1)
	if k.doPanic {
		panic("injected substream panic")
	}
	return errors.New("injected replica death")
}

// retryRels is a dense equi-join (~500 output tuples, spread over every
// shard) so each shard's substream is long enough to kill mid-stream.
func retryRels() []relSpec {
	var rT, sT [][]int
	for i := 0; i < 160; i++ {
		rT = append(rT, []int{i, (i * 3) % 50})
		sT = append(sT, []int{(i * 3) % 50, i % 20})
	}
	return []relSpec{
		{"E", []string{"a", "b"}, rT},
		{"F", []string{"b", "c"}, sT},
	}
}

func retryFixture(t *testing.T, n, r int) (*Catalog, string) {
	t.Helper()
	c := NewReplicated(n, r)
	for _, rs := range retryRels() {
		if _, err := c.Create(rs.name, rs.vars, rs.tuples); err != nil {
			t.Fatalf("Create %s: %v", rs.name, err)
		}
	}
	return c, "E(A,B), F(B,C)"
}

func sumRetries(c *Catalog) (retries, panics int64) {
	for _, st := range c.ShardStats() {
		retries += st.Retries
		panics += st.Panics
	}
	return
}

// TestSubstreamRetryByteIdentical is the property matrix: every engine
// × shard count × kill point delivers the exact unsharded stream even
// though one substream was killed mid-run and resumed on a sibling.
func TestSubstreamRetryByteIdentical(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, at := range []int64{0, 1, 5} {
			for _, eng := range allEngines {
				// Fresh catalog per case: the killed replica is marked
				// down, and reusing it would drain the sibling pool.
				c, expr := retryFixture(t, n, 2)
				opts := &minesweeper.Options{Engine: eng}
				ref := reference(t, c, expr, opts)
				q, err := c.Query(expr)
				if err != nil {
					t.Fatal(err)
				}
				pq, err := c.Prepare(q, opts)
				if err != nil {
					t.Fatalf("prepare engine=%v: %v", eng, err)
				}
				if ex := pq.Explain(); len(ex.Partitions) != 1 || ex.Partitions[0] == "gathered" {
					t.Fatalf("n=%d engine=%v: plan did not scatter: %v", n, eng, ex.Partitions)
				}
				k := &killer{shard: 0, at: at}
				c.killHook = k.hook
				k.arm()
				res, err := pq.Execute()
				if err != nil {
					t.Fatalf("n=%d at=%d engine=%v: %v", n, at, eng, err)
				}
				if k.fired.Load() != 1 {
					t.Fatalf("n=%d at=%d engine=%v: kill hook fired %d times, want 1 (substream too short?)",
						n, at, eng, k.fired.Load())
				}
				if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
					t.Fatalf("n=%d at=%d engine=%v: resumed stream diverges (%d vs %d tuples)",
						n, at, eng, len(res.Tuples), len(ref.Tuples))
				}
				if r, _ := sumRetries(c); r != 1 {
					t.Fatalf("n=%d at=%d engine=%v: retries counter = %d, want 1", n, at, eng, r)
				}
				// The killed replica was demoted: the shard's serving
				// copy moved and the death is reported for reopen.
				if len(c.DownReplicas()) != 1 {
					t.Fatalf("n=%d at=%d engine=%v: DownReplicas = %+v", n, at, eng, c.DownReplicas())
				}
			}
		}
	}
}

// TestSubstreamPanicIsolation: a panic inside a substream goroutine is
// recovered at the substream boundary, counted, and retried on a
// sibling replica — the run output is still byte-identical and the
// panicking replica is NOT marked down (its storage is fine).
func TestSubstreamPanicIsolation(t *testing.T) {
	c, expr := retryFixture(t, 4, 2)
	ref := reference(t, c, expr, nil)
	q, err := c.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := c.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := &killer{shard: 1, at: 3, doPanic: true}
	c.killHook = k.hook
	k.arm()
	res, err := pq.Execute()
	if err != nil {
		t.Fatalf("execute across panic: %v", err)
	}
	if k.fired.Load() != 1 {
		t.Fatalf("panic hook fired %d times, want 1", k.fired.Load())
	}
	if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
		t.Fatal("stream after substream panic diverges from reference")
	}
	retries, panics := sumRetries(c)
	if retries != 1 || panics != 1 {
		t.Fatalf("retries=%d panics=%d, want 1 and 1", retries, panics)
	}
	if got := c.DownReplicas(); len(got) != 0 {
		t.Fatalf("panic marked replicas down: %+v (storage was healthy)", got)
	}
}

// TestRetryExhaustion: when no sibling can resume (single replica), the
// substream failure surfaces as the run error instead of hanging.
func TestRetryExhaustion(t *testing.T) {
	c, expr := retryFixture(t, 2, 1) // one replica per shard: nowhere to retry
	q, err := c.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := c.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := &killer{shard: 0, at: 2}
	c.killHook = k.hook
	k.arm()
	if _, err := pq.Execute(); err == nil {
		t.Fatal("execute succeeded though the only replica died mid-stream")
	}
}

package shard

import (
	"strings"
	"testing"
)

// BenchmarkShardedScaling exposes the E15 suite to `go test -bench` —
// the read scaling curve plus the replicated write fan-out (msbench
// registers the same bodies for the BENCH_<n>.json trajectory).
func BenchmarkShardedScaling(b *testing.B) {
	for _, e := range ScalingSuite() {
		b.Run(strings.TrimPrefix(e.Name, "ShardedScaling/"), e.F)
	}
}

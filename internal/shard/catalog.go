package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	minesweeper "minesweeper"
	"minesweeper/internal/catalog"
	"minesweeper/internal/ordered"
	"minesweeper/internal/relio"
	"minesweeper/internal/storage"
)

// manifestName is the routing manifest at the data-dir root. The
// manifest is authoritative for how stored tuples were physically
// routed: re-deriving a partition from statistics after recovery could
// disagree with the placement the fragments actually hold, which would
// silently break the colocation invariant the scatter executor needs.
const manifestName = "shards.json"

// manifest is the durable routing state: the shard count the directory
// is laid out for and the partition of every relation. The replica
// count is recorded for introspection but not enforced — growing or
// shrinking the replica set is a resync, not a data migration, so a
// directory opens at any replica count.
type manifest struct {
	Shards    int                  `json:"shards"`
	Replicas  int                  `json:"replicas,omitempty"`
	Relations map[string]Partition `json:"relations"`
}

// shardCounters is one shard's serving-side telemetry: scatter runs
// started, substream tuples emitted, currently running substreams,
// substream producers currently blocked on a full gather channel (the
// hot-shard signal), substream retries on a sibling replica, and
// substream panics recovered.
type shardCounters struct {
	runs     atomic.Int64
	emitted  atomic.Int64
	inflight atomic.Int64
	queued   atomic.Int64
	retries  atomic.Int64
	panics   atomic.Int64
}

// ReplicaStat describes one replica of a shard for /stats.
type ReplicaStat struct {
	Replica int           `json:"replica"`
	Primary bool          `json:"primary"`
	Down    string        `json:"down,omitempty"`
	Storage storage.Stats `json:"storage"`
}

// ShardStat describes one shard for /stats.
type ShardStat struct {
	Shard     int           `json:"shard"`
	Primary   int           `json:"primary"`
	Relations int           `json:"relations"`
	Tuples    int           `json:"tuples"`
	Runs      int64         `json:"runs"`
	Inflight  int64         `json:"inflight"`
	Queued    int64         `json:"queued"`
	Emitted   int64         `json:"emitted"`
	Retries   int64         `json:"retries,omitempty"`
	Panics    int64         `json:"panics,omitempty"`
	Degraded  string        `json:"degraded,omitempty"`
	Storage   storage.Stats `json:"storage"`
	Replicas  []ReplicaStat `json:"replicas,omitempty"`
}

// ReplicaRef names one down replica and why, for targeted reopening.
type ReplicaRef struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Err     string `json:"error"`
}

// Catalog owns N per-shard fragment sets, each carried by R replicas
// (every replica a full catalog.Catalog over its own storage.Backend
// and WAL directory), plus a gathered in-memory view holding every
// relation whole. The view serves parses, reads and plans — a query is
// built against view relations exactly as against an unsharded
// catalog — while the fragments serve scatter execution and
// durability.
//
// Mutations route tuples by each relation's Partition, log-then-apply
// on the shard's primary replica first, then synchronously fan out to
// the healthy followers with a divergence check on the mutated
// relation's epoch stamp. A primary whose store is poisoned is marked
// down and a healthy follower is promoted in its place — the mutation
// retries there, so a single replica failure never flips the shard
// read-only. The API mirrors catalog.Catalog so the serving layer
// treats the two uniformly.
type Catalog struct {
	n    int
	r    int
	dir  string // "" for in-memory
	opts storage.Options

	// mu serializes mutations, replica-set changes and partition
	// changes; reads go straight to the view (which has its own lock).
	mu       sync.Mutex
	replicas [][]*catalog.Catalog // [shard][replica]
	primary  []int                // serving replica per shard
	down     [][]error            // non-nil marks a failed replica
	view     *catalog.Catalog
	parts    map[string]Partition
	version  uint64 // bumped on parts/replica-set changes; scatter plans pin it
	counters []shardCounters

	failovers atomic.Int64

	// killHook, when set (tests only), is consulted before each
	// substream tuple with the serving (shard, replica); a non-nil
	// return fails the substream as if the replica died mid-stream.
	killHook func(shard, replica int, tuple []int) error
}

func newCatalog(shards, replicas int, dir string, opts storage.Options) *Catalog {
	c := &Catalog{
		n:        shards,
		r:        replicas,
		dir:      dir,
		opts:     opts,
		view:     catalog.New(),
		replicas: make([][]*catalog.Catalog, shards),
		primary:  make([]int, shards),
		down:     make([][]error, shards),
		parts:    make(map[string]Partition),
		counters: make([]shardCounters, shards),
	}
	for i := range c.replicas {
		c.replicas[i] = make([]*catalog.Catalog, replicas)
		c.down[i] = make([]error, replicas)
	}
	return c
}

// New returns an in-memory sharded catalog (no durability, one replica
// per shard), for tests and -data-dir-less serving.
func New(shards int) *Catalog { return NewReplicated(shards, 1) }

// NewReplicated returns an in-memory sharded catalog with R replicas
// per shard. Without durable backends a down replica cannot be
// reopened from disk, but failover, fan-out and divergence checks
// behave exactly as over durable stores.
func NewReplicated(shards, replicas int) *Catalog {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	c := newCatalog(shards, replicas, "", storage.Options{})
	for i := range c.replicas {
		for j := range c.replicas[i] {
			c.replicas[i][j] = catalog.New()
		}
	}
	return c
}

// ShardDir returns the directory of one shard under the data dir.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", shard))
}

// ReplicaDir returns the WAL directory of one replica of one shard.
func ReplicaDir(dir string, shard, replica int) string {
	return filepath.Join(ShardDir(dir, shard), fmt.Sprintf("replica-%d", replica))
}

// Open recovers a single-replica sharded catalog from dir — the
// pre-replication entry point, kept for callers that don't replicate.
func Open(dir string, shards int, opts storage.Options) (*Catalog, error) {
	return OpenReplicated(dir, shards, 1, opts)
}

// OpenReplicated recovers a sharded catalog from dir with R replicas
// per shard: each replica replays its own WAL+snapshot under
// shard-<i>/replica-<j>/ (restoring exact per-fragment epochs), the
// furthest-along replica of each shard is elected primary and its
// siblings are resynced from it, the gathered view is rebuilt from the
// primaries, and routing comes from the manifest. Relations missing a
// manifest entry (a crash between fragment writes and the manifest
// write) are deterministically repartitioned and redistributed.
// Opening a directory laid out for a different shard count is refused
// — re-routing existing placements across a new count is a data
// migration, not a recovery. A different replica count is fine: new
// replica directories start empty and resync from the elected primary.
func OpenReplicated(dir string, shards, replicas int, opts storage.Options) (*Catalog, error) {
	return OpenWith(dir, shards, replicas, opts, func(shard, replica int) (storage.Backend, error) {
		return storage.OpenDurable(ReplicaDir(dir, shard, replica), opts)
	})
}

// OpenWith is OpenReplicated with an explicit backend factory — the
// seam for wrapping replicas in instrumented or fault-injecting
// backends (storage.Faulty) without changing the recovery path.
func OpenWith(dir string, shards, replicas int, opts storage.Options, backend func(shard, replica int) (storage.Backend, error)) (*Catalog, error) {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	m, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	if m != nil && m.Shards != shards {
		return nil, fmt.Errorf("shard: %s is laid out for %d shards, cannot open with %d", dir, m.Shards, shards)
	}
	for i := 0; i < shards; i++ {
		if err := migrateLegacyShardDir(ShardDir(dir, i)); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	c := newCatalog(shards, replicas, dir, opts)
	for i := 0; i < shards; i++ {
		for j := 0; j < replicas; j++ {
			b, err := backend(i, j)
			if err != nil {
				c.closeOpened()
				return nil, fmt.Errorf("shard %d replica %d: %w", i, j, err)
			}
			cat, err := catalog.Open(b)
			if err != nil {
				b.Close()
				c.closeOpened()
				return nil, fmt.Errorf("shard %d replica %d: %w", i, j, err)
			}
			c.replicas[i][j] = cat
		}
	}
	if err := c.recover(m); err != nil {
		c.closeOpened()
		return nil, err
	}
	return c, nil
}

// migrateLegacyShardDir moves a pre-replication shard layout (WAL and
// snapshot files directly under shard-<i>/) into replica-0/, so a
// store written before replication opens cleanly at any replica count.
func migrateLegacyShardDir(sd string) error {
	if _, err := os.Stat(filepath.Join(sd, "replica-0")); err == nil {
		return nil
	}
	entries, err := os.ReadDir(sd)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && (strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snapshot-")) {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil
	}
	r0 := filepath.Join(sd, "replica-0")
	if err := os.MkdirAll(r0, 0o755); err != nil {
		return err
	}
	for _, name := range files {
		if err := os.Rename(filepath.Join(sd, name), filepath.Join(r0, name)); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) closeOpened() {
	for i := range c.replicas {
		for _, cc := range c.replicas[i] {
			if cc != nil {
				cc.Close()
			}
		}
	}
}

// replicaScore ranks a recovered replica for primary election:
// epoch sum first (the furthest-along mutation history), then relation
// and tuple counts as tie-breaks so an empty new replica directory
// never outranks real data.
type replicaScore struct {
	epochs uint64
	rels   int
	tuples int
}

func (s replicaScore) beats(o replicaScore) bool {
	if s.epochs != o.epochs {
		return s.epochs > o.epochs
	}
	if s.rels != o.rels {
		return s.rels > o.rels
	}
	return s.tuples > o.tuples
}

func scoreReplica(cc *catalog.Catalog) replicaScore {
	var s replicaScore
	for _, info := range cc.Relations() {
		s.epochs += info.Epoch
		s.rels++
		s.tuples += info.Tuples
	}
	return s
}

// resyncFrom brings tgt to src's exact state: relations diverging by
// epoch are force-restored (exact epoch stamp included, so later
// divergence checks hold), relations src lacks are dropped, and — for
// the control-plane shard — the query-definition registry is mirrored.
func resyncFrom(tgt, src *catalog.Catalog, defs bool) error {
	for _, info := range src.Relations() {
		srel, ok := src.Get(info.Name)
		if !ok {
			continue
		}
		if trel, ok := tgt.Get(info.Name); ok && trel.Epoch() == info.Epoch {
			continue
		}
		if err := tgt.Restore(info.Name, info.Vars, info.Epoch, srel.Tuples()); err != nil {
			return err
		}
	}
	for _, name := range tgt.Names() {
		if _, ok := src.Get(name); !ok {
			if err := tgt.Drop(name); err != nil {
				return err
			}
		}
	}
	if defs {
		want := map[string]storage.QueryDef{}
		for _, def := range src.QueryDefs() {
			want[def.Name] = def
		}
		for _, def := range tgt.QueryDefs() {
			if w, ok := want[def.Name]; ok && reflect.DeepEqual(w, def) {
				delete(want, def.Name)
				continue
			}
			if _, ok := want[def.Name]; !ok {
				if err := tgt.DropQueryDef(def.Name); err != nil {
					return err
				}
			}
		}
		names := make([]string, 0, len(want))
		for n := range want {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := tgt.PutQueryDef(want[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// recover elects each shard's primary, resyncs its siblings, rebuilds
// the gathered view and routing table from the primaries plus the
// manifest.
func (c *Catalog) recover(m *manifest) error {
	for i := range c.replicas {
		best, bs := 0, scoreReplica(c.replicas[i][0])
		for j := 1; j < c.r; j++ {
			if s := scoreReplica(c.replicas[i][j]); s.beats(bs) {
				best, bs = j, s
			}
		}
		c.primary[i] = best
		for j := range c.replicas[i] {
			if j == best {
				continue
			}
			if err := resyncFrom(c.replicas[i][j], c.replicas[i][best], i == 0); err != nil {
				return fmt.Errorf("shard %d: resyncing replica %d: %w", i, j, err)
			}
		}
	}
	names := map[string]bool{}
	for i := range c.replicas {
		for _, n := range c.leaderLocked(i).Names() {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		var vars []string
		var gathered [][]int
		var epochSum uint64
		for i := range c.replicas {
			lead := c.leaderLocked(i)
			rel, ok := lead.Get(name)
			if !ok {
				continue
			}
			if vars == nil {
				vars, _ = lead.Vars(name)
			}
			gathered = append(gathered, rel.Tuples()...)
			epochSum += rel.Epoch()
		}
		rel, err := c.view.Create(name, vars, gathered)
		if err != nil {
			return fmt.Errorf("shard: gathering relation %q: %w", name, err)
		}
		if err := rel.RestoreEpoch(epochSum); err != nil {
			return fmt.Errorf("shard: gathering relation %q: %w", name, err)
		}
		if m != nil {
			if p, ok := m.Relations[name]; ok && p.Column < len(vars) {
				c.parts[name] = p
				continue
			}
		}
		// No (usable) manifest entry: repartition deterministically and
		// redistribute the gathered tuples so the colocation invariant
		// holds again.
		p := choosePartition(vars, gathered, c.n)
		if err := c.redistribute(name, vars, gathered, p); err != nil {
			return fmt.Errorf("shard: repartitioning relation %q: %w", name, err)
		}
		c.parts[name] = p
	}
	return c.writeManifest()
}

// redistribute replaces every replica's fragment of name with its
// bucket under p, creating the relation where it is missing. Recovery
// only — it assumes every replica is healthy and in lockstep, which
// holds right after resyncFrom.
func (c *Catalog) redistribute(name string, vars []string, tuples [][]int, p Partition) error {
	buckets := p.split(tuples, c.n)
	for i := range c.replicas {
		for _, cc := range c.replicas[i] {
			if _, ok := cc.Get(name); ok {
				if _, err := cc.Replace(name, buckets[i]); err != nil {
					return err
				}
				continue
			}
			if _, err := cc.Create(name, vars, buckets[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeManifest persists the routing table atomically (temp + rename).
// In-memory catalogs skip it.
func (c *Catalog) writeManifest() error {
	if c.dir == "" {
		return nil
	}
	m := manifest{Shards: c.n, Replicas: c.r, Relations: c.parts}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: reading %s: %w", path, err)
	}
	if m.Relations == nil {
		m.Relations = map[string]Partition{}
	}
	return &m, nil
}

// checkTuples mirrors the catalog's pre-mutation validation: routing
// indexes into tuples by the partition column, so arity and domain must
// hold before any tuple is routed.
func checkTuples(name string, arity int, tuples [][]int) error {
	for i, tup := range tuples {
		if len(tup) != arity {
			return fmt.Errorf("catalog: relation %q: tuple %d has %d values, want %d", name, i, len(tup), arity)
		}
		for j, v := range tup {
			if v < 0 || v >= ordered.PosInf {
				return fmt.Errorf("catalog: relation %q: tuple %d component %d = %d out of domain [0, %d)",
					name, i, j, v, ordered.PosInf)
			}
		}
	}
	return nil
}

// --- replica health and failover --------------------------------------

// leaderLocked returns shard i's serving replica. Callers hold c.mu.
func (c *Catalog) leaderLocked(i int) *catalog.Catalog { return c.replicas[i][c.primary[i]] }

// markDownLocked records a replica failure (first cause wins) and bumps
// the plan version so scatter plans re-bind off the dead replica.
func (c *Catalog) markDownLocked(shard, replica int, cause error) {
	if c.down[shard][replica] == nil {
		c.down[shard][replica] = cause
	}
	c.version++
}

// promoteLocked points the shard's leadership at the first healthy
// replica, reporting whether one exists. Promoting away from the
// current leader counts as a failover.
func (c *Catalog) promoteLocked(shard int) bool {
	for j, cc := range c.replicas[shard] {
		if c.down[shard][j] == nil && cc.Healthy() == nil {
			if c.primary[shard] != j {
				c.primary[shard] = j
				c.failovers.Add(1)
			}
			c.version++
			return true
		}
	}
	return false
}

// markReplicaDown is the scatter executor's failure-detection entry:
// a substream that found its replica dead mid-run marks it here, and
// leadership moves if the dead replica was serving.
func (c *Catalog) markReplicaDown(shard, replica int, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDownLocked(shard, replica, cause)
	if c.primary[shard] == replica {
		c.promoteLocked(shard)
	}
}

// replicaHealth reports whether a replica can keep serving a
// substream: its down marker if set, else its catalog's health (which
// asks the backend directly, so out-of-band poisoning — an injected
// sync failure with no intervening mutation — is caught too).
func (c *Catalog) replicaHealth(shard, replica int) error {
	c.mu.Lock()
	if err := c.down[shard][replica]; err != nil {
		c.mu.Unlock()
		return err
	}
	cc := c.replicas[shard][replica]
	c.mu.Unlock()
	return cc.Healthy()
}

// shardDegradedLocked returns nil while the shard has at least one
// healthy replica; otherwise the first replica's failure.
func (c *Catalog) shardDegradedLocked(i int) error {
	var firstErr error
	for j, cc := range c.replicas[i] {
		err := c.down[i][j]
		if err == nil {
			err = cc.Healthy()
		}
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("shard %d: no healthy replica: %w", i, firstErr)
}

// applyShardLocked runs one mutation against shard i: log-then-apply on
// the primary (failing over to a healthy follower when the primary's
// store is poisoned), then synchronous fan-out to the healthy
// followers with a divergence check on rel's epoch stamp (skipped for
// control-plane mutations, rel == ""). A follower that fails to apply
// or diverges is marked down — the mutation still succeeds. Only when
// no replica can accept the mutation does the shard surface an error
// (which wraps the primary's ErrReadOnly, so the serving layer still
// classifies it as 503 read-only).
func (c *Catalog) applyShardLocked(i int, rel string, apply func(cc *catalog.Catalog) error) error {
	for {
		lead := c.primary[i]
		cc := c.replicas[i][lead]
		if c.down[i][lead] != nil {
			if !c.promoteLocked(i) {
				return fmt.Errorf("shard %d: no healthy replica: %w", i, c.down[i][lead])
			}
			continue
		}
		err := apply(cc)
		if err == nil {
			break
		}
		if cc.Healthy() != nil {
			// Storage fault: the primary poisoned itself. Mark it down,
			// promote a follower, retry there.
			c.markDownLocked(i, lead, err)
			if !c.promoteLocked(i) {
				return fmt.Errorf("shard %d: no healthy replica: %w", i, err)
			}
			continue
		}
		// Validation failure — deterministic, would fail identically on
		// every replica. Not a failover trigger.
		return err
	}
	lead := c.primary[i]
	for j, cc := range c.replicas[i] {
		if j == lead || c.down[i][j] != nil {
			continue
		}
		if err := apply(cc); err != nil {
			c.markDownLocked(i, j, fmt.Errorf("follower apply: %w", err))
			continue
		}
		if rel == "" {
			continue
		}
		lr, lok := c.replicas[i][lead].Get(rel)
		fr, fok := cc.Get(rel)
		if lok != fok || (lok && fok && lr.Epoch() != fr.Epoch()) {
			c.markDownLocked(i, j, fmt.Errorf("replica diverged from primary on %q", rel))
		}
	}
	return nil
}

// rebuildViewLocked resynchronizes the view of one relation with the
// union of its primary fragments — the generic repair after a mutation
// applied to only part of the shard set.
func (c *Catalog) rebuildViewLocked(name string) {
	var vars []string
	var gathered [][]int
	found := false
	for i := range c.replicas {
		lead := c.leaderLocked(i)
		rel, ok := lead.Get(name)
		if !ok {
			continue
		}
		if vars == nil {
			vars, _ = lead.Vars(name)
		}
		found = true
		gathered = append(gathered, rel.Tuples()...)
	}
	if !found {
		c.view.Drop(name)
		return
	}
	if _, ok := c.view.Get(name); ok {
		c.view.Replace(name, gathered)
		return
	}
	c.view.Create(name, vars, gathered)
}

// Shards returns the shard count.
func (c *Catalog) Shards() int { return c.n }

// ReplicaCount returns the per-shard replica count.
func (c *Catalog) ReplicaCount() int { return c.r }

// Primary returns the shard's current serving replica index.
func (c *Catalog) Primary(shard int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary[shard]
}

// Failovers returns how many times leadership moved off a failed
// primary.
func (c *Catalog) Failovers() int64 { return c.failovers.Load() }

// PartitionOf returns the relation's current partition. ok is false for
// unknown relations and for relations left unpartitioned by a partial
// replace failure (those are excluded from scatter until repaired).
func (c *Catalog) PartitionOf(name string) (Partition, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parts[name]
	return p, ok
}

// partsVersion pins the routing table's revision for scatter plans.
func (c *Catalog) partsVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Create splits the tuples under a planner-chosen partition, creates
// the owning fragment on every shard (all replicas), then the gathered
// view relation, which it returns.
func (c *Catalog) Create(name string, vars []string, tuples [][]int) (*minesweeper.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.validateNew(name, vars, tuples); err != nil {
		return nil, err
	}
	p := choosePartition(vars, tuples, c.n)
	buckets := p.split(tuples, c.n)
	for i := 0; i < c.n; i++ {
		b := buckets[i]
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			_, err := cc.Create(name, vars, b)
			return err
		}); err != nil {
			c.dropEverywhereLocked(name)
			return nil, err
		}
	}
	rel, err := c.view.Create(name, vars, tuples)
	if err != nil {
		c.dropEverywhereLocked(name)
		return nil, err
	}
	c.parts[name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return nil, err
	}
	return rel, nil
}

// dropEverywhereLocked rolls a partially created relation back off
// every healthy replica (best effort — failures just leave a dangling
// fragment that recovery's resync will reconcile).
func (c *Catalog) dropEverywhereLocked(name string) {
	for i := range c.replicas {
		for j, cc := range c.replicas[i] {
			if c.down[i][j] != nil {
				continue
			}
			if _, ok := cc.Get(name); ok {
				cc.Drop(name)
			}
		}
	}
}

// validateNew pre-checks a Create before any tuple is routed.
func (c *Catalog) validateNew(name string, vars []string, tuples [][]int) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if len(vars) == 0 {
		return fmt.Errorf("catalog: relation %q: empty variable list", name)
	}
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			return fmt.Errorf("catalog: relation %q: repeated variable %q", name, v)
		}
		seen[v] = true
	}
	if _, dup := c.view.Get(name); dup {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	return checkTuples(name, len(vars), tuples)
}

// Insert routes the tuples to their owning fragments, applies the
// per-shard inserts (primary first, fan-out to followers), then the
// view insert, whose gathered Info it returns. On a shard-wide failure
// the view is rebuilt from the fragments so reads stay consistent with
// what was durably applied; the colocation invariant is unaffected
// (every applied copy was routed).
func (c *Catalog) Insert(name string, tuples ...[]int) (catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return catalog.Info{}, err
	}
	p, partitioned := c.parts[name]
	var buckets [][][]int
	if partitioned {
		buckets = p.split(tuples, c.n)
	} else {
		// Unpartitioned fallback (after a partial replace failure): park
		// new rows on shard 0; the relation is excluded from scatter
		// until recovery repartitions it, so placement is free.
		buckets = make([][][]int, c.n)
		buckets[0] = tuples
	}
	for i, b := range buckets {
		if len(b) == 0 && !(i == 0 && len(tuples) == 0) {
			continue
		}
		b := b
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			_, err := cc.Insert(name, b...)
			return err
		}); err != nil {
			c.rebuildViewLocked(name)
			return catalog.Info{}, err
		}
	}
	return c.view.Insert(name, tuples...)
}

// Delete removes every stored copy of each tuple. Partitioned relations
// route the deletes (copies colocate); unpartitioned ones broadcast to
// every shard, which is correct under any placement.
func (c *Catalog) Delete(name string, tuples ...[]int) (int, catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return 0, catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return 0, catalog.Info{}, err
	}
	p, partitioned := c.parts[name]
	buckets := make([][][]int, c.n)
	if partitioned {
		buckets = p.split(tuples, c.n)
	} else {
		for i := range buckets {
			buckets[i] = tuples
		}
	}
	for i, b := range buckets {
		if len(b) == 0 && !(i == 0 && len(tuples) == 0) {
			continue
		}
		b := b
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			_, _, err := cc.Delete(name, b...)
			return err
		}); err != nil {
			c.rebuildViewLocked(name)
			return 0, catalog.Info{}, err
		}
	}
	return c.view.Delete(name, tuples...)
}

// Replace swaps the relation's contents, re-choosing its partition for
// the new data and rewriting every fragment. A shard-wide failure
// leaves fragments under two different layouts, which breaks the
// colocation invariant — the relation is demoted to unpartitioned
// (gathered execution only, no scatter) until a restart repartitions
// it.
func (c *Catalog) Replace(name string, tuples [][]int) (catalog.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return catalog.Info{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := checkTuples(name, rel.Arity(), tuples); err != nil {
		return catalog.Info{}, err
	}
	vars, _ := c.view.Vars(name)
	p := choosePartition(vars, tuples, c.n)
	buckets := p.split(tuples, c.n)
	for i := 0; i < c.n; i++ {
		b := buckets[i]
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			_, err := cc.Replace(name, b)
			return err
		}); err != nil {
			delete(c.parts, name)
			c.version++
			c.rebuildViewLocked(name)
			c.writeManifest()
			return catalog.Info{}, err
		}
	}
	c.parts[name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return catalog.Info{}, err
	}
	return c.view.Replace(name, tuples)
}

// ForcePartition rewrites the relation's fragments under an explicitly
// given partition — an administrative/testing hook for exercising a
// routing mode the statistics would not choose. Splits must be strictly
// increasing for range mode.
func (c *Catalog) ForcePartition(name string, p Partition) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.view.Get(name)
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if p.Column < 0 || p.Column >= rel.Arity() {
		return fmt.Errorf("shard: partition column %d out of range for arity %d", p.Column, rel.Arity())
	}
	if p.Mode != ModeHash && p.Mode != ModeRange {
		return fmt.Errorf("shard: unknown partition mode %q", p.Mode)
	}
	for i := 1; i < len(p.Splits); i++ {
		if p.Splits[i] <= p.Splits[i-1] {
			return fmt.Errorf("shard: range splits must be strictly increasing")
		}
	}
	vars, _ := c.view.Vars(name)
	buckets := p.split(rel.Tuples(), c.n)
	for i := 0; i < c.n; i++ {
		b := buckets[i]
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			if _, ok := cc.Get(name); ok {
				_, err := cc.Replace(name, b)
				return err
			}
			_, err := cc.Create(name, vars, b)
			return err
		}); err != nil {
			delete(c.parts, name)
			c.version++
			c.rebuildViewLocked(name)
			c.writeManifest()
			return err
		}
	}
	c.parts[name] = p
	c.version++
	return c.writeManifest()
}

// Drop removes the relation from every shard and the view.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.view.Get(name); !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	for i := 0; i < c.n; i++ {
		if err := c.applyShardLocked(i, name, func(cc *catalog.Catalog) error {
			if _, ok := cc.Get(name); !ok {
				return nil
			}
			return cc.Drop(name)
		}); err != nil {
			c.rebuildViewLocked(name)
			return err
		}
	}
	delete(c.parts, name)
	c.version++
	if err := c.writeManifest(); err != nil {
		return err
	}
	return c.view.Drop(name)
}

// Load reads a relation in the relio interchange format and
// creates-or-replaces it, splitting the rows across the shard set under
// a freshly chosen partition.
func (c *Catalog) Load(r io.Reader, source string) (catalog.Info, error) {
	parsed, err := relio.ReadRelation(r, source)
	if err != nil {
		return catalog.Info{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rel, exists := c.view.Get(parsed.Name); exists && rel.Arity() != len(parsed.Vars) {
		return catalog.Info{}, fmt.Errorf("catalog: relation %q exists with arity %d, load has arity %d (drop it first)",
			parsed.Name, rel.Arity(), len(parsed.Vars))
	}
	if err := checkTuples(parsed.Name, len(parsed.Vars), parsed.Tuples); err != nil {
		return catalog.Info{}, err
	}
	p := choosePartition(parsed.Vars, parsed.Tuples, c.n)
	buckets := p.split(parsed.Tuples, c.n)
	for i := 0; i < c.n; i++ {
		b := buckets[i]
		if err := c.applyShardLocked(i, parsed.Name, func(cc *catalog.Catalog) error {
			return loadInto(cc, parsed.Name, parsed.Vars, b, source)
		}); err != nil {
			delete(c.parts, parsed.Name)
			c.version++
			c.rebuildViewLocked(parsed.Name)
			c.writeManifest()
			return catalog.Info{}, err
		}
	}
	var buf bytes.Buffer
	if err := relio.WriteRelation(&buf, parsed); err != nil {
		return catalog.Info{}, err
	}
	info, err := c.view.Load(&buf, source)
	if err != nil {
		return info, err
	}
	c.parts[parsed.Name] = p
	c.version++
	if err := c.writeManifest(); err != nil {
		return info, err
	}
	return info, nil
}

// loadInto create-or-replaces one fragment through the catalog's Load
// path, so the fragment's default binding tracks the upload's vars.
func loadInto(inner *catalog.Catalog, name string, vars []string, tuples [][]int, source string) error {
	var buf bytes.Buffer
	if err := relio.WriteRelation(&buf, &relio.Relation{Name: name, Vars: vars, Tuples: tuples}); err != nil {
		return err
	}
	_, err := inner.Load(&buf, source)
	return err
}

// Get returns the gathered view relation: queries parse and plan
// against whole relations; fragments surface only through scatter.
func (c *Catalog) Get(name string) (*minesweeper.Relation, bool) { return c.view.Get(name) }

// Fragment returns the primary replica's fragment of the relation on
// one shard.
func (c *Catalog) Fragment(shard int, name string) (*minesweeper.Relation, bool) {
	c.mu.Lock()
	cc := c.leaderLocked(shard)
	c.mu.Unlock()
	return cc.Get(name)
}

// ReplicaFragment returns one specific replica's fragment.
func (c *Catalog) ReplicaFragment(shard, replica int, name string) (*minesweeper.Relation, bool) {
	c.mu.Lock()
	cc := c.replicas[shard][replica]
	c.mu.Unlock()
	return cc.Get(name)
}

// Vars returns the relation's default variable binding.
func (c *Catalog) Vars(name string) ([]string, bool) { return c.view.Vars(name) }

// Len returns the number of cataloged relations.
func (c *Catalog) Len() int { return c.view.Len() }

// Names returns the sorted relation names.
func (c *Catalog) Names() []string { return c.view.Names() }

// Relations describes every cataloged relation (gathered totals).
func (c *Catalog) Relations() []catalog.Info { return c.view.Relations() }

// Dump writes the gathered relation in the relio interchange format.
func (c *Catalog) Dump(w io.Writer, name string) error { return c.view.Dump(w, name) }

// DumpFile writes the gathered relation to a file atomically.
func (c *Catalog) DumpFile(path, name string) error { return c.view.DumpFile(path, name) }

// Query parses a textual join expression against the gathered view.
func (c *Catalog) Query(expr string) (*minesweeper.Query, error) { return c.view.Query(expr) }

// PutQueryDef stores a prepared-query definition durably (on shard 0 —
// definitions are control-plane state, not partitioned data — with the
// usual primary-then-followers fan-out).
func (c *Catalog) PutQueryDef(def storage.QueryDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyShardLocked(0, "", func(cc *catalog.Catalog) error { return cc.PutQueryDef(def) })
}

// DropQueryDef removes a stored definition.
func (c *Catalog) DropQueryDef(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyShardLocked(0, "", func(cc *catalog.Catalog) error { return cc.DropQueryDef(name) })
}

// QueryDefs returns the stored definitions.
func (c *Catalog) QueryDefs() []storage.QueryDef {
	c.mu.Lock()
	cc := c.leaderLocked(0)
	c.mu.Unlock()
	return cc.QueryDefs()
}

// Degraded reports the first shard with no healthy replica, if any:
// with replication a single dead replica is survivable (failover keeps
// the shard writable), so only a fully dead shard makes the store
// read-only and /readyz unready.
func (c *Catalog) Degraded() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.replicas {
		if err := c.shardDegradedLocked(i); err != nil {
			return err
		}
	}
	return nil
}

// DownReplicas lists every replica currently unable to serve — marked
// down by failover/divergence/substream detection, or with a poisoned
// backend — for the serving layer to reopen on independent schedules.
func (c *Catalog) DownReplicas() []ReplicaRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ReplicaRef
	for i := range c.replicas {
		for j, cc := range c.replicas[i] {
			err := c.down[i][j]
			if err == nil {
				err = cc.Healthy()
			}
			if err != nil {
				out = append(out, ReplicaRef{Shard: i, Replica: j, Err: err.Error()})
			}
		}
	}
	return out
}

// ReopenReplica restarts one replica on a fresh backend from open and
// resyncs it from the shard's authoritative in-memory state. While it
// runs, mutations pause (c.mu) but reads never do: the view is
// untouched and in-flight scatter substreams keep their bound fragment
// objects. The authority is the current primary's in-memory catalog —
// by log-then-apply it is exactly the applied mutation prefix, and it
// stays the authority even when the primary's own store is poisoned
// (its memory still holds the served state). Reopening the primary
// itself therefore resyncs it from its own memory: relations whose
// recovered epoch already matches are left alone, anything else
// (including a torn or half-applied tail) is force-restored. If the
// shard's leadership sits on a down replica afterwards, the freshly
// reopened one is promoted.
func (c *Catalog) ReopenReplica(shard, replica int, open func() (storage.Backend, error)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reopenReplicaLocked(shard, replica, open)
}

func (c *Catalog) reopenReplicaLocked(i, j int, open func() (storage.Backend, error)) error {
	if i < 0 || i >= c.n || j < 0 || j >= c.r {
		return fmt.Errorf("shard: no replica %d/%d", i, j)
	}
	src := c.leaderLocked(i)
	old := c.replicas[i][j]
	// Release the old backend before the fresh one opens: two Durable
	// instances over one directory would fight over WAL files.
	old.Close()
	fail := func(err error) error {
		err = fmt.Errorf("shard %d replica %d: reopen: %w", i, j, err)
		c.markDownLocked(i, j, err)
		return err
	}
	nb, err := open()
	if err != nil {
		return fail(err)
	}
	cc, err := catalog.Open(nb)
	if err != nil {
		nb.Close()
		return fail(err)
	}
	c.replicas[i][j] = cc
	c.down[i][j] = nil
	c.version++
	if err := resyncFrom(cc, src, i == 0); err != nil {
		err = fmt.Errorf("shard %d replica %d: resync: %w", i, j, err)
		c.markDownLocked(i, j, err)
		return err
	}
	lead := c.primary[i]
	if c.down[i][lead] != nil || c.replicas[i][lead].Healthy() != nil {
		c.promoteLocked(i)
	}
	return nil
}

// RollingReopen restarts every replica one at a time — shard by shard,
// replica by replica — while each one's siblings keep serving. With
// R > 1 the store never loses a healthy replica set, so /readyz stays
// ready throughout; reads are never interrupted in any case (the view
// and bound fragments survive replica swaps).
func (c *Catalog) RollingReopen(open func(shard, replica int) (storage.Backend, error)) error {
	var first error
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.r; j++ {
			i, j := i, j
			if err := c.ReopenReplica(i, j, func() (storage.Backend, error) { return open(i, j) }); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Sync flushes every healthy replica's backend.
func (c *Catalog) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i := range c.replicas {
		for j, cc := range c.replicas[i] {
			if c.down[i][j] != nil {
				continue
			}
			if err := cc.Sync(); err != nil && first == nil {
				first = fmt.Errorf("shard %d replica %d: %w", i, j, err)
			}
		}
	}
	return first
}

// Close releases every replica's backend and the view.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i := range c.replicas {
		for j, cc := range c.replicas[i] {
			if err := cc.Close(); err != nil && first == nil {
				first = fmt.Errorf("shard %d replica %d: %w", i, j, err)
			}
		}
	}
	if err := c.view.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// StorageStats aggregates the primaries' storage statistics (counters
// summed, mode and sequence from shard 0's primary, Dir the data-dir
// root) — one copy of the data, matching the unreplicated meaning.
func (c *Catalog) StorageStats() storage.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := c.leaderLocked(0).StorageStats()
	agg.Dir = c.dir
	for i := 1; i < c.n; i++ {
		s := c.leaderLocked(i).StorageStats()
		agg.WALRecords += s.WALRecords
		agg.WALBytes += s.WALBytes
		agg.Snapshots += s.Snapshots
		agg.SnapshotBytes += s.SnapshotBytes
		agg.Syncs += s.Syncs
		agg.RecoveredRelations += s.RecoveredRelations
		agg.RecoveredQueries += s.RecoveredQueries
		agg.ReplayedRecords += s.ReplayedRecords
		agg.TruncatedBytes += s.TruncatedBytes
		if agg.LastError == "" {
			agg.LastError = s.LastError
		}
	}
	return agg
}

// ShardStats describes every shard for /stats: per-shard data volume,
// scatter activity (the hot-shard signal), failover/retry counters and
// per-replica storage health.
func (c *Catalog) ShardStats() []ShardStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardStat, c.n)
	for i := range out {
		lead := c.primary[i]
		cc := c.replicas[i][lead]
		st := ShardStat{
			Shard:    i,
			Primary:  lead,
			Runs:     c.counters[i].runs.Load(),
			Inflight: c.counters[i].inflight.Load(),
			Queued:   c.counters[i].queued.Load(),
			Emitted:  c.counters[i].emitted.Load(),
			Retries:  c.counters[i].retries.Load(),
			Panics:   c.counters[i].panics.Load(),
			Storage:  cc.StorageStats(),
		}
		for _, info := range cc.Relations() {
			st.Relations++
			st.Tuples += info.Tuples
		}
		if err := c.shardDegradedLocked(i); err != nil {
			st.Degraded = err.Error()
		}
		st.Replicas = make([]ReplicaStat, c.r)
		for j, rc := range c.replicas[i] {
			rs := ReplicaStat{Replica: j, Primary: j == lead, Storage: rc.StorageStats()}
			if err := c.down[i][j]; err != nil {
				rs.Down = err.Error()
			} else if err := rc.Healthy(); err != nil {
				rs.Down = err.Error()
			}
			st.Replicas[j] = rs
		}
		out[i] = st
	}
	return out
}

package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"minesweeper/internal/catalog"
	"minesweeper/internal/reltree"
	"minesweeper/internal/storage"
)

// openDurableServer recovers a server from dir the way main does:
// backend, catalog, then restoreQueries.
func openDurableServer(t *testing.T, dir string) *server {
	t.Helper()
	b, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := catalog.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := newServer(singleStore{c})
	if _, failed := s.restoreQueries(); len(failed) > 0 {
		t.Fatalf("restoreQueries: %v", failed)
	}
	return s
}

// TestServerKillAndRestartRecovers is the issue's acceptance test: an
// msserve with -data-dir, killed without any shutdown (the catalog is
// simply abandoned, then garbage is appended to the WAL to simulate a
// record torn mid-write), must come back with all relations, their
// epochs, and every named prepared query — and the recovered prepared
// query must re-plan, serve the same rows, and go warm (zero index
// rebuilds) after its first run.
func TestServerKillAndRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openDurableServer(t, dir)
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries",
		`{"name":"rs","query":"R(A,B), S(B,C)","workers":2}`), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[9,2]]}`), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations/R/delete", `{"tuples":[[1,2]]}`), http.StatusOK)

	rec := do(t, s, "GET", "/relations", "")
	wantStatus(t, rec, http.StatusOK)
	var wantRels []catalog.Info
	if err := json.Unmarshal(rec.Body.Bytes(), &wantRels); err != nil {
		t.Fatal(err)
	}
	wantRun := parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)

	// Unclean kill: no Close, no Sync — and a half-written record at the
	// WAL tail.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files: %v, %v", wals, err)
	}
	f, err := os.OpenFile(wals[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("#!ms insert R 2 1 00000000\n7 "); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openDurableServer(t, dir)
	rec = do(t, s2, "GET", "/relations", "")
	wantStatus(t, rec, http.StatusOK)
	var gotRels []catalog.Info
	if err := json.Unmarshal(rec.Body.Bytes(), &gotRels); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRels, wantRels) {
		t.Fatalf("recovered relations:\ngot:  %+v\nwant: %+v", gotRels, wantRels)
	}
	if gotRels[0].Name != "R" || gotRels[0].Epoch != 2 {
		t.Fatalf("R's epoch did not survive: %+v", gotRels[0])
	}

	// The prepared query came back by name with its options intact and
	// serves the same rows.
	got := parseRun(t, do(t, s2, "GET", "/queries/rs/run", "").Body)
	if !reflect.DeepEqual(got.tuples, wantRun.tuples) {
		t.Fatalf("recovered query rows %v, want %v", got.tuples, wantRun.tuples)
	}
	if defs := s2.cat.QueryDefs(); len(defs) != 1 || defs[0].Name != "rs" || defs[0].Workers != 2 {
		t.Fatalf("recovered query defs = %+v", defs)
	}

	// Warm-path invariant: the run above rebuilt indexes lazily; another
	// run must build none.
	before := reltree.Builds()
	wantStatus(t, do(t, s2, "GET", "/queries/rs/run", ""), http.StatusOK)
	if builds := reltree.Builds() - before; builds != 0 {
		t.Fatalf("warm re-execution after recovery rebuilt %d indexes", builds)
	}

	// /stats reports the durable backend, including the torn-tail
	// truncation.
	rec = do(t, s2, "GET", "/stats", "")
	wantStatus(t, rec, http.StatusOK)
	var stats struct {
		Storage storage.Stats `json:"storage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Storage.Mode != "durable" || stats.Storage.RecoveredRelations != 2 ||
		stats.Storage.RecoveredQueries != 1 || stats.Storage.TruncatedBytes == 0 {
		t.Fatalf("storage stats = %+v", stats.Storage)
	}
}

// TestServerDropQueryIsDurable: dropping a registered query must
// persist — a restart must not resurrect it.
func TestServerDropQueryIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := openDurableServer(t, dir)
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"q","query":"R(A,B)"}`), http.StatusOK)
	wantStatus(t, do(t, s, "DELETE", "/queries/q", ""), http.StatusOK)

	s2 := openDurableServer(t, dir)
	wantStatus(t, do(t, s2, "GET", "/queries/q/run", ""), http.StatusNotFound)
	if defs := s2.cat.QueryDefs(); len(defs) != 0 {
		t.Fatalf("dropped query resurrected: %+v", defs)
	}
}

// TestServerRestoreSkipsUnplannableQuery: a persisted definition whose
// relation no longer exists must not block boot; it is skipped and
// reported.
func TestServerRestoreSkipsUnplannableQuery(t *testing.T) {
	dir := t.TempDir()
	b, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := catalog.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("R", []string{"A", "B"}, [][]int{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := c.PutQueryDef(storage.QueryDef{Name: "q", Query: "R(A,B)"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("R"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	b2, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := catalog.Open(b2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s := newServer(singleStore{c2})
	restored, failed := s.restoreQueries()
	if restored != 0 || len(failed) != 1 {
		t.Fatalf("restoreQueries = %d restored, %v", restored, failed)
	}
	wantStatus(t, do(t, s, "GET", "/queries/q/run", ""), http.StatusNotFound)
}

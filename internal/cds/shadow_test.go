package cds

import (
	"math/rand"
	"testing"

	"minesweeper/internal/ordered"
)

// TestShadowChainIncomparablePatterns exercises the Appendix G shadow
// construction directly: constraints whose patterns are pairwise
// incomparable (the situation that cannot arise for β-acyclic GAOs).
func TestShadowChainIncomparablePatterns(t *testing.T) {
	tr := NewTree(3)
	tk := track(tr)
	// ⟨a,*,·⟩ and ⟨*,b,·⟩ are incomparable at depth 2.
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(1), Star}, Lo: ordered.NegInf, Hi: 5})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(2)}, Lo: 4, Hi: ordered.PosInf})
	// For prefix (1,2): union covers (-∞,5) ∪ (4,∞) = everything.
	// For any other prefix at most one applies.
	probe := tr.GetProbePoint()
	if probe == nil {
		t.Fatal("space not exhausted")
	}
	if !tk.activeWRT(probe) {
		t.Fatalf("probe %v violates constraints", probe)
	}
	if probe[0] == 1 && probe[1] == 2 {
		t.Fatalf("prefix (1,2) should be dead, got %v", probe)
	}
}

// TestShadowChainMergesAcrossThreePatterns: the Prop 5.3 depth-pattern —
// three incomparable single-equality patterns whose union kills the
// prefix — must backtrack with the meet pattern ⟨a,b⟩... and then rule
// out (a,b) wholesale.
func TestShadowChainMergesAcrossThreePatterns(t *testing.T) {
	tr := NewTree(4)
	tk := track(tr)
	ni, pi := ordered.NegInf, ordered.PosInf
	// Bound every attribute to {0,1,2}.
	for d := 0; d < 4; d++ {
		prefix := make(Pattern, d)
		for j := range prefix {
			prefix[j] = Star
		}
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: ni, Hi: 0})
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: 2, Hi: pi})
	}
	// Under prefix (0,1,2): three incomparable constraint sources whose
	// union covers the whole v4 axis.
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(0), Star, Star}, Lo: ni, Hi: 1})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(1), Star}, Lo: 0, Hi: 2})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star, Eq(2)}, Lo: 1, Hi: pi})
	probes := 0
	for i := 0; i < 200; i++ {
		probe := tr.GetProbePoint()
		if probe == nil {
			if probes == 0 {
				t.Fatal("no probes at all")
			}
			return
		}
		probes++
		if !tk.activeWRT(probe) {
			t.Fatalf("probe %v violates constraints", probe)
		}
		if probe[0] == 0 && probe[1] == 1 && probe[2] == 2 {
			t.Fatalf("dead prefix probed: %v", probe)
		}
		// Kill the probe to force progress.
		tr.InsConstraint(Constraint{
			Prefix: Pattern{Eq(probe[0]), Eq(probe[1]), Eq(probe[2])},
			Lo:     probe[3] - 1, Hi: probe[3] + 1,
		})
	}
	t.Fatal("no convergence after 200 probes")
}

// TestShadowMemoIsSound: memo constraints inserted at shadow patterns
// must never rule out genuinely active tuples. We run randomized
// workloads twice — memo on and off — and the sets of probe points seen
// (after killing each probe identically) must be identical.
func TestShadowMemoIsSound(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seqOn := enumerateProbes(t, trial, true)
		seqOff := enumerateProbes(t, trial, false)
		if len(seqOn) != len(seqOff) {
			t.Fatalf("trial %d: memo=on saw %d probes, memo=off %d", trial, len(seqOn), len(seqOff))
		}
		for i := range seqOn {
			for j := range seqOn[i] {
				if seqOn[i][j] != seqOff[i][j] {
					t.Fatalf("trial %d: probe %d differs: %v vs %v", trial, i, seqOn[i], seqOff[i])
				}
			}
		}
	}
}

// enumerateProbes seeds a tree with random constraints, then exhausts the
// probe space (killing each probe point-wise), returning the sequence.
func enumerateProbes(t *testing.T, seed int, memo bool) [][]int {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	const n, dom = 3, 5
	tr := NewTree(n)
	tr.SetMemo(memo)
	ni, pi := ordered.NegInf, ordered.PosInf
	// Bound the space.
	for d := 0; d < n; d++ {
		prefix := make(Pattern, d)
		for j := range prefix {
			prefix[j] = Star
		}
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: ni, Hi: 0})
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: dom - 1, Hi: pi})
	}
	// Random constraints.
	for i := 0; i < 25; i++ {
		p := rng.Intn(n)
		prefix := make(Pattern, p)
		for j := range prefix {
			if rng.Intn(2) == 0 {
				prefix[j] = Star
			} else {
				prefix[j] = Eq(rng.Intn(dom))
			}
		}
		lo := rng.Intn(dom) - 1
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: lo, Hi: lo + 1 + rng.Intn(3)})
	}
	var seq [][]int
	for len(seq) < 1000 {
		probe := tr.GetProbePoint()
		if probe == nil {
			return seq
		}
		seq = append(seq, probe)
		prefix := make(Pattern, n-1)
		for j := range prefix {
			prefix[j] = Eq(probe[j])
		}
		tr.InsConstraint(Constraint{Prefix: prefix, Lo: probe[n-1] - 1, Hi: probe[n-1] + 1})
	}
	t.Fatal("probe enumeration did not converge")
	return nil
}

// TestChainCaseIsExactAlgorithm4: when all filter patterns form a chain
// (β-acyclic situation), every node must be its own shadow — no shadow
// nodes materialized.
func TestChainCaseIsExactAlgorithm4(t *testing.T) {
	tr := NewTree(3)
	// Chain at depth 2: ⟨*,*⟩ ⊐ ⟨*,5⟩ ⊐ ⟨4,5⟩. Open intervals:
	// (-2,2) covers {-1,0,1}, (1,3) covers {2}, (2,4) covers {3}.
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Star}, Lo: -2, Hi: 2})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(5)}, Lo: 1, Hi: 3})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(4), Eq(5)}, Lo: 2, Hi: 4})
	g := tr.filter([]int{4, 5})
	if len(g) != 3 {
		t.Fatalf("filter size = %d", len(g))
	}
	chain := tr.buildChain(g)
	for _, e := range chain {
		if e.shadow != e.orig {
			t.Fatalf("chain case materialized shadow for %v", e.orig.pattern)
		}
	}
	// Bottom must be the most specialized pattern.
	if got := chain[0].orig.pattern; !patternsEqual(got, Pattern{Eq(4), Eq(5)}) {
		t.Fatalf("bottom = %v", got)
	}
	// The walk must return 4 (0,1 covered by ⟨*,*⟩; 2 by ⟨*,5⟩; 3 by ⟨4,5⟩).
	if v := tr.nextChainVal(-1, chain, 0); v != 4 {
		t.Fatalf("nextChainVal = %d, want 4", v)
	}
}

// TestShadowNodesMaterialized: incomparable patterns must produce shadow
// nodes distinct from the originals.
func TestShadowNodesMaterialized(t *testing.T) {
	tr := NewTree(3)
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(1), Star}, Lo: 0, Hi: 9})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(2)}, Lo: 5, Hi: 20})
	g := tr.filter([]int{1, 2})
	if len(g) != 2 {
		t.Fatalf("filter = %d nodes", len(g))
	}
	chain := tr.buildChain(g)
	// Bottom entry's shadow must be the meet ⟨1,2⟩, a fresh node.
	bottom := chain[0]
	if !patternsEqual(bottom.shadow.pattern, Pattern{Eq(1), Eq(2)}) {
		t.Fatalf("bottom shadow = %v", bottom.shadow.pattern)
	}
	if bottom.shadow == bottom.orig {
		t.Fatal("bottom shadow should be a distinct node")
	}
	// Top entry is its own shadow.
	top := chain[len(chain)-1]
	if top.shadow != top.orig {
		t.Fatal("top of the chain must be self-shadowed")
	}
}

package core

import (
	"math/rand"
	"testing"

	"minesweeper/internal/certificate"
)

func TestBuildFullCertificateSizeBound(t *testing.T) {
	// Proposition 2.6: |C| ≤ r·N for the constructed certificate.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		var r, s [][]int
		for i := 0; i < 30; i++ {
			r = append(r, []int{rng.Intn(10), rng.Intn(10)})
			s = append(s, []int{rng.Intn(10), rng.Intn(10)})
		}
		p := mustProblem(t, []string{"A", "B", "C"}, []AtomSpec{
			{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
			{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
		})
		arg := BuildFullCertificate(p)
		rMax := 2
		n := p.InputSize()
		if arg.Size() > rMax*n {
			t.Fatalf("trial %d: |C| = %d exceeds r·N = %d", trial, arg.Size(), rMax*n)
		}
	}
}

func TestFullCertificateSatisfiedAndOrderOblivious(t *testing.T) {
	p := mustProblem(t, []string{"A", "B"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{1}, {4}, {7}}},
		{Name: "S", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 5}, {4, 2}, {9, 9}}},
	})
	arg := BuildFullCertificate(p)
	// The instance satisfies its own certificate.
	ok, err := arg.SatisfiedBy(ProblemInstance(p, nil))
	if err != nil || !ok {
		t.Fatalf("own instance: %v %v", ok, err)
	}
	// Any order-preserving transform still satisfies it — certificates are
	// value-oblivious (the 2v+1 perturbation of Proposition 2.5's proof).
	ok, err = arg.SatisfiedBy(ProblemInstance(p, func(v int) int { return 2*v + 1 }))
	if err != nil || !ok {
		t.Fatalf("order-preserving transform: %v %v", ok, err)
	}
	// An order-breaking transform must violate it.
	ok, err = arg.SatisfiedBy(ProblemInstance(p, func(v int) int { return -v }))
	if err != nil || ok {
		t.Fatalf("order-breaking transform should violate: %v %v", ok, err)
	}
}

func TestFullCertificateCrossRelationEqualities(t *testing.T) {
	// Shared values across relations must be linked by equalities: the
	// certificate must mention both relations.
	p := mustProblem(t, []string{"A"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{3}}},
		{Name: "S", Attrs: []string{"A"}, Tuples: [][]int{{3}}},
	})
	arg := BuildFullCertificate(p)
	if arg.Size() != 1 {
		t.Fatalf("want exactly one equality, got %v", arg)
	}
	c := arg[0]
	if c.Op != certificate.Eq {
		t.Fatalf("want equality, got %v", c)
	}
	rels := map[string]bool{c.Left.Rel: true, c.Right.Rel: true}
	if len(rels) != 2 {
		t.Fatalf("equality should span relations: %v", c)
	}
}

func TestProblemInstanceMissingVar(t *testing.T) {
	p := mustProblem(t, []string{"A"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{3}}},
	})
	inst := ProblemInstance(p, nil)
	if _, ok := inst.VarValue(certificate.Var{Rel: "R", Index: []int{5}}); ok {
		t.Fatal("out-of-range index must be undefined")
	}
	if _, ok := inst.VarValue(certificate.Var{Rel: "X", Index: []int{0}}); ok {
		t.Fatal("unknown relation must be undefined")
	}
	if _, ok := inst.VarValue(certificate.Var{Rel: "R", Index: nil}); ok {
		t.Fatal("empty index tuple must be undefined")
	}
	if v, ok := inst.VarValue(certificate.Var{Rel: "R", Index: []int{0}}); !ok || v != 3 {
		t.Fatalf("R[0] = %d, %v", v, ok)
	}
}

// TestCertificateDistinguishesWitnessChanges: perturbing a single value
// in a way that changes the witness set must break certificate
// satisfaction (the soundness direction tested concretely).
func TestCertificateDistinguishesWitnessChanges(t *testing.T) {
	p := mustProblem(t, []string{"A"}, []AtomSpec{
		{Name: "R", Attrs: []string{"A"}, Tuples: [][]int{{2}, {5}}},
		{Name: "S", Attrs: []string{"A"}, Tuples: [][]int{{5}}},
	})
	arg := BuildFullCertificate(p)
	// Instance J: move S[0] from 5 to 2 — now the witness is (R[0],S[0])
	// instead of (R[1],S[0]).
	inst := certificate.InstanceFunc(func(v certificate.Var) (int, bool) {
		base := ProblemInstance(p, nil)
		if v.Rel == "S" && len(v.Index) == 1 && v.Index[0] == 0 {
			return 2, true
		}
		return base.VarValue(v)
	})
	ok, err := arg.SatisfiedBy(inst)
	if err != nil || ok {
		t.Fatalf("witness-changing perturbation must violate certificate: %v %v", ok, err)
	}
}

package benchsuite

import (
	"os"
	"testing"

	"minesweeper/internal/storage"
)

// --- E14: durability micro-benchmarks ---------------------------------
//
// The serving tier's data plane: what one logged mutation costs over
// each backend (the WAL write is on every msserve mutation's path), and
// how recovery time scales with WAL length. These run at the storage
// layer — the catalog adds only validation and a map update on top.

// appendRecord is the mutation every append benchmark logs: a
// mid-sized insert, two tuples of two values.
var appendRecord = &storage.Record{
	Op: storage.OpInsert, Name: "R", Epoch: 0,
	Tuples: [][]int{{12345, 67890}, {13, 7}},
}

func benchAppend(b *testing.B, open func(dir string) (storage.Backend, error)) {
	dir, err := os.MkdirTemp("", "msbench-wal-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	be, err := open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	if _, err := be.Recover(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.Append(appendRecord); err != nil {
			b.Fatal(err)
		}
	}
}

// DurableAppendMem is the no-durability baseline: the same call path
// with the in-memory backend (a no-op append).
func DurableAppendMem(b *testing.B) {
	benchAppend(b, func(string) (storage.Backend, error) { return storage.NewMem(), nil })
}

// DurableAppendWAL logs each mutation to the WAL with the default
// write-no-fsync setting.
func DurableAppendWAL(b *testing.B) {
	benchAppend(b, func(dir string) (storage.Backend, error) {
		return storage.OpenDurable(dir, storage.Options{})
	})
}

// DurableAppendWALFsync logs and fsyncs each mutation — the safest and
// slowest setting (msserve -fsync).
func DurableAppendWALFsync(b *testing.B) {
	benchAppend(b, func(dir string) (storage.Backend, error) {
		return storage.OpenDurable(dir, storage.Options{FsyncEach: true})
	})
}

// DurableRecovery measures a cold open — scan, replay, reopen — of a
// WAL holding n records, the restart cost msserve pays after a kill.
func DurableRecovery(b *testing.B, n int) {
	dir, err := os.MkdirTemp("", "msbench-recover-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Recover(); err != nil {
		b.Fatal(err)
	}
	if err := d.Append(&storage.Record{Op: storage.OpCreate, Name: "R", Vars: []string{"A", "B"}}); err != nil {
		b.Fatal(err)
	}
	epoch := uint64(0)
	for i := 1; i < n; i++ {
		if err := d.Append(&storage.Record{
			Op: storage.OpInsert, Name: "R", Epoch: epoch, Tuples: [][]int{{i, i * 2}},
		}); err != nil {
			b.Fatal(err)
		}
		epoch++
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := storage.OpenDurable(dir, storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		st, err := d.Recover()
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Relations) != 1 || len(st.Relations[0].Tuples) != n-1 {
			b.Fatalf("recovered %d relations", len(st.Relations))
		}
		d.Close()
	}
	b.ReportMetric(float64(n), "walrecs/op")
}

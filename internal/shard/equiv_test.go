package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	minesweeper "minesweeper"
	"minesweeper/internal/dataset"
)

// The scatter-gather acceptance suite: sharded execution must be
// indistinguishable from unsharded execution — byte-for-byte identical
// NDJSON streams — across shard counts, routing modes, engines and query
// shapes, including after mutations retarget a prepared plan.

var allEngines = []minesweeper.Engine{
	minesweeper.EngineMinesweeper,
	minesweeper.EngineLeapfrog,
	minesweeper.EngineNPRR,
	minesweeper.EngineYannakakis,
	minesweeper.EngineHashPlan,
}

// relSpec declares one catalog relation of a fixture.
type relSpec struct {
	name   string
	vars   []string
	tuples [][]int
}

// fixture is one dataset + a set of query shapes over it. The queries
// deliberately walk the shape grammar: bare joins, projections, range
// filters, grouped aggregates and distinct counts all ride the same
// scatter-gather path (shaping happens once, on the gathered stream).
type fixture struct {
	name    string
	rels    []relSpec
	queries []string
	acyclic bool // false skips EngineYannakakis (α-acyclic only)
}

func fixtures() []fixture {
	g := dataset.PowerLawGraph(160, 3, false, 7)
	e12e, e12f := dataset.SparseSkewJoin(300, 16, 97)
	e13r, e13s := dataset.ClusteredOverlapJoin(4, 32, 8)
	tr, ts, tt := dataset.TriangleHard(5)
	return []fixture{
		{
			name: "e1-graph",
			rels: []relSpec{{"E", []string{"src", "dst"}, g.Edges}},
			queries: []string{
				"E(A,B), E(B,C)",
				"E(A,B), E(B,C) select A, C where A < 40",
				"E(A,B), E(B,C) select A, count(*), max(C)",
			},
			acyclic: true,
		},
		{
			name: "e12-sparse-skew",
			rels: []relSpec{
				{"E", []string{"a", "b"}, e12e},
				{"F", []string{"b", "c"}, e12f},
			},
			queries: []string{
				"E(A,B), F(B,C)",
				"E(A,B), F(B,C) select B, C where C >= 0",
				"E(A,B), F(B,C) select count(distinct B)",
			},
			acyclic: true,
		},
		{
			name: "e13-clustered-overlap",
			rels: []relSpec{
				{"R", []string{"x", "y"}, e13r},
				{"S", []string{"x", "y"}, e13s},
			},
			queries: []string{
				"R(X,Y), S(X,Y)",
				"R(X,Y), S(X,Y) select X",
			},
			acyclic: true,
		},
		{
			name: "triangle",
			rels: []relSpec{
				{"R", []string{"a", "b"}, tr},
				{"S", []string{"b", "c"}, ts},
				{"T", []string{"a", "c"}, tt},
			},
			queries: []string{
				"R(A,B), S(B,C), T(A,C)",
			},
			acyclic: false,
		},
	}
}

func buildSharded(t *testing.T, n int, rels []relSpec) *Catalog {
	t.Helper()
	c := New(n)
	for _, r := range rels {
		if _, err := c.Create(r.name, r.vars, r.tuples); err != nil {
			t.Fatalf("Create %s: %v", r.name, err)
		}
	}
	return c
}

// ndjson renders a result the way msserve streams it: a header line with
// the output variable order, then one JSON array per tuple in emission
// order. Comparing these strings is the byte-for-byte acceptance check.
func ndjson(t *testing.T, vars []string, tuples [][]int) string {
	t.Helper()
	var b strings.Builder
	hdr, err := json.Marshal(vars)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(hdr)
	b.WriteByte('\n')
	for _, tup := range tuples {
		line, err := json.Marshal(tup)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// reference executes the query unsharded over the catalog's gathered
// view with the same options.
func reference(t *testing.T, c *Catalog, expr string, opts *minesweeper.Options) *minesweeper.Result {
	t.Helper()
	q, err := c.view.Query(expr)
	if err != nil {
		t.Fatalf("reference query %q: %v", expr, err)
	}
	res, err := minesweeper.Execute(q, opts)
	if err != nil {
		t.Fatalf("reference execute %q: %v", expr, err)
	}
	return res
}

// TestScatterGatherEquivalence is the core acceptance matrix: every
// fixture × query shape × shard count × engine produces the exact
// unsharded NDJSON stream.
func TestScatterGatherEquivalence(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 4, 8} {
				c := buildSharded(t, n, fx.rels)
				for _, expr := range fx.queries {
					for _, eng := range allEngines {
						if eng == minesweeper.EngineYannakakis && !fx.acyclic {
							continue
						}
						opts := &minesweeper.Options{Engine: eng}
						ref := reference(t, c, expr, &minesweeper.Options{Engine: eng})
						q, err := c.Query(expr)
						if err != nil {
							t.Fatalf("query %q: %v", expr, err)
						}
						pq, err := c.Prepare(q, opts)
						if err != nil {
							t.Fatalf("prepare %q engine=%v: %v", expr, eng, err)
						}
						res, err := pq.Execute()
						if err != nil {
							t.Fatalf("execute %q engine=%v shards=%d: %v", expr, eng, n, err)
						}
						got := ndjson(t, res.Vars, res.Tuples)
						want := ndjson(t, ref.Vars, ref.Tuples)
						if got != want {
							t.Fatalf("shards=%d engine=%v query=%q: sharded stream diverges\ngot  %d tuples\nwant %d tuples",
								n, eng, expr, len(res.Tuples), len(ref.Tuples))
						}
					}
				}
			}
		})
	}
}

// TestRoutingModeEquivalence forces both routing modes onto the
// scattered relation — including splits the statistics would never pick
// — and demands the identical stream from every shard count.
func TestRoutingModeEquivalence(t *testing.T) {
	e12e, e12f := dataset.SparseSkewJoin(300, 16, 97)
	rels := []relSpec{
		{"E", []string{"a", "b"}, e12e},
		{"F", []string{"b", "c"}, e12f},
	}
	const expr = "E(A,B), F(B,C)"
	// Pin the GAO so the scatter choice is deterministic: E's column 0
	// carries gao[0], so a forced partition there always scatters.
	opts := &minesweeper.Options{GAO: []string{"A", "B", "C"}}
	for _, n := range []int{2, 4, 8} {
		for _, mode := range []string{ModeHash, ModeRange} {
			c := buildSharded(t, n, rels)
			p := Partition{Column: 0, Attr: "a", Mode: mode}
			if mode == ModeRange {
				// Deliberately lopsided splits: correctness must not
				// depend on balance.
				for i := 1; i < n; i++ {
					p.Splits = append(p.Splits, i*13)
				}
			}
			if err := c.ForcePartition("E", p); err != nil {
				t.Fatalf("ForcePartition E %s: %v", mode, err)
			}
			ref := reference(t, c, expr, opts)
			q, err := c.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := c.Prepare(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ex := pq.Explain(); len(ex.Partitions) != 1 || ex.Partitions[0] == "gathered" {
				t.Fatalf("shards=%d mode=%s: plan did not scatter: %v", n, mode, ex.Partitions)
			}
			res, err := pq.Execute()
			if err != nil {
				t.Fatalf("shards=%d mode=%s: %v", n, mode, err)
			}
			if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
				t.Fatalf("shards=%d mode=%s: stream diverges (%d vs %d tuples)",
					n, mode, len(res.Tuples), len(ref.Tuples))
			}
			if got, _ := c.PartitionOf("E"); got.Mode != mode {
				t.Fatalf("shards=%d: forced mode did not stick: %+v", n, got)
			}
		}
	}
}

// TestPreparedAfterMutation drives one prepared query through the full
// mutation alphabet — insert, delete, replace, forced repartition, load
// — re-executing after each step against a fresh unsharded reference.
// This is the Refresh path: epoch bumps rebuild per-shard plans, and
// partition-version bumps rebuild the scatter choice itself.
func TestPreparedAfterMutation(t *testing.T) {
	for _, n := range []int{2, 4} {
		var rT, sT [][]int
		for i := 0; i < 200; i++ {
			rT = append(rT, []int{i, (i * 7) % 120})
			sT = append(sT, []int{(i * 7) % 120, i % 40})
		}
		c := buildSharded(t, n, []relSpec{
			{"R", []string{"a", "b"}, rT},
			{"S", []string{"b", "c"}, sT},
		})
		const expr = "R(A,B), S(B,C)"
		q, err := c.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := c.Prepare(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		check := func(stage string) {
			t.Helper()
			ref := reference(t, c, expr, nil)
			res, err := pq.Execute()
			if err != nil {
				t.Fatalf("shards=%d %s: %v", n, stage, err)
			}
			if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
				t.Fatalf("shards=%d %s: prepared stream diverges (%d vs %d tuples)",
					n, stage, len(res.Tuples), len(ref.Tuples))
			}
		}
		check("initial")

		if _, err := c.Insert("R", []int{500, 7}, []int{501, 14}); err != nil {
			t.Fatal(err)
		}
		check("after insert")

		if _, _, err := c.Delete("R", []int{0, 0}, []int{500, 7}); err != nil {
			t.Fatal(err)
		}
		check("after delete")

		if _, err := c.Replace("S", sT[:150]); err != nil {
			t.Fatal(err)
		}
		check("after replace")

		p, _ := c.PartitionOf("R")
		p.Mode = ModeHash
		p.Splits = nil
		if err := c.ForcePartition("R", p); err != nil {
			t.Fatal(err)
		}
		check("after repartition")

		var buf strings.Builder
		buf.WriteString("S: b c\n")
		for i := 0; i < 100; i++ {
			fmt.Fprintf(&buf, "%d %d\n", (i*7)%120, i%25)
		}
		if _, err := c.Load(strings.NewReader(buf.String()), "test"); err != nil {
			t.Fatal(err)
		}
		check("after load")
	}
}

// TestLimitAndCancellation: the anytime contract survives sharding — a
// yield that stops early gets exactly the unsharded prefix, and a
// cancelled context stops the gather with the context's error while
// counters drain cleanly.
func TestLimitAndCancellation(t *testing.T) {
	e13r, e13s := dataset.ClusteredOverlapJoin(4, 32, 8)
	c := buildSharded(t, 4, []relSpec{
		{"R", []string{"x", "y"}, e13r},
		{"S", []string{"x", "y"}, e13s},
	})
	const expr = "R(X,Y), S(X,Y)"
	ref := reference(t, c, expr, nil)
	q, err := c.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := c.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 3, len(ref.Tuples)} {
		var got [][]int
		if _, err := pq.StreamContextExplained(context.Background(), nil, func(tu []int) bool {
			got = append(got, append([]int(nil), tu...))
			return len(got) < limit
		}); err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		if !reflect.DeepEqual(got, ref.Tuples[:limit]) {
			t.Fatalf("limit=%d: prefix diverges from unsharded stream", limit)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n, sawAfterCancel := 0, false
	_, err = pq.StreamContextExplained(ctx, nil, func([]int) bool {
		if ctx.Err() != nil {
			sawAfterCancel = true
		}
		n++
		if n == 2 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled gather returned %v, want context.Canceled", err)
	}
	if sawAfterCancel {
		t.Fatal("gather yielded a tuple after cancellation")
	}
	if n >= len(ref.Tuples) {
		t.Fatalf("gather enumerated all %d tuples despite cancellation", n)
	}
}

// TestExplainPartitionsAndStats: the plan annotation names the scattered
// relation and routing mode, gathered fallbacks say so, and the
// per-shard counters in ShardStats record the fan-out.
func TestExplainPartitionsAndStats(t *testing.T) {
	var rT, sT [][]int
	for i := 0; i < 160; i++ {
		rT = append(rT, []int{i, i % 40})
		sT = append(sT, []int{i % 40, i})
	}
	c := buildSharded(t, 4, []relSpec{
		{"R", []string{"a", "b"}, rT},
		{"S", []string{"b", "c"}, sT},
	})
	if err := c.ForcePartition("R", Partition{Column: 0, Attr: "a", Mode: ModeHash}); err != nil {
		t.Fatal(err)
	}
	q, err := c.Query("R(A,B), S(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	gao := []string{"A", "B", "C"}
	pq, err := c.Prepare(q, &minesweeper.Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	ex := pq.Explain()
	if len(ex.Partitions) != 1 || !strings.Contains(ex.Partitions[0], "=") {
		t.Fatalf("Explain.Partitions = %v, want one rel=attr:mode entry", ex.Partitions)
	}
	if !strings.HasSuffix(ex.Partitions[0], "/4") {
		t.Fatalf("Partitions entry %q does not carry the shard count", ex.Partitions[0])
	}
	if _, err := pq.Execute(); err != nil {
		t.Fatal(err)
	}
	stats := c.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(stats))
	}
	runs, emitted := int64(0), int64(0)
	for _, st := range stats {
		runs += st.Runs
		emitted += st.Emitted
		if st.Inflight != 0 {
			t.Fatalf("shard %d still reports %d inflight after the run", st.Shard, st.Inflight)
		}
	}
	if runs != 4 {
		t.Fatalf("per-shard runs sum to %d, want 4 (one per shard)", runs)
	}
	if emitted == 0 {
		t.Fatal("no shard reported emitted tuples")
	}

	// A frequency-permuted domain cannot merge sub-streams in raw value
	// order: the plan must fall back to gathered execution and say so.
	pqf, err := c.Prepare(q, &minesweeper.Options{GAO: gao, Domain: minesweeper.DomainFreq})
	if err != nil {
		t.Fatal(err)
	}
	exf := pqf.Explain()
	if len(exf.Partitions) != 1 || exf.Partitions[0] != "gathered" {
		t.Fatalf("freq-domain Partitions = %v, want [gathered]", exf.Partitions)
	}
	ref := reference(t, c, "R(A,B), S(B,C)", &minesweeper.Options{GAO: gao, Domain: minesweeper.DomainFreq})
	res, err := pqf.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
		t.Fatal("gathered fallback diverges from unsharded stream")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"minesweeper/internal/catalog"
	"minesweeper/internal/shard"
	"minesweeper/internal/storage"
)

// newTestCatalog builds the store on the backend selected by
// MS_TEST_BACKEND, so the whole HTTP suite also runs with every
// mutation flowing through a WAL ("durable") as in CI's durable pass,
// or through the fault-injection wrapper with a benign chaos script
// ("faulty": fail-soft compaction errors plus op delays the serving
// layer must absorb without any expectation changing). MS_SHARDS >= 2
// additionally runs the whole suite over a sharded store (in-memory or
// per-shard durable, matching MS_TEST_BACKEND) — every handler
// expectation must hold unchanged under scatter-gather execution.
func newTestCatalog(t testing.TB) store {
	t.Helper()
	mode := os.Getenv("MS_TEST_BACKEND")
	n, _ := strconv.Atoi(os.Getenv("MS_SHARDS"))
	r, _ := strconv.Atoi(os.Getenv("MS_REPLICAS"))
	if r < 1 {
		r = 1
	}
	if n >= 2 || r >= 2 {
		if n < 1 {
			n = 1
		}
		sopts := storage.Options{CompactMinBytes: 256}
		switch mode {
		case "durable":
			sc, err := shard.OpenReplicated(t.TempDir(), n, r, sopts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sc.Close() })
			return shardStore{sc}
		case "faulty":
			// Benign chaos on every replica's WAL: fail-soft compaction
			// errors and op delays no handler expectation may notice.
			dir := t.TempDir()
			sc, err := shard.OpenWith(dir, n, r, sopts, func(shardIdx, rep int) (storage.Backend, error) {
				d, err := storage.OpenDurable(shard.ReplicaDir(dir, shardIdx, rep), sopts)
				if err != nil {
					return nil, err
				}
				return storage.NewFaulty(d, "compact@1/2=err; sync@1/3=delay:100us; append@1/7=delay:50us")
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sc.Close() })
			return shardStore{sc}
		}
		return shardStore{shard.NewReplicated(n, r)}
	}
	if mode != "durable" && mode != "faulty" {
		return singleStore{catalog.New()}
	}
	var b storage.Backend
	db, err := storage.OpenDurable(t.TempDir(), storage.Options{CompactMinBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	b = db
	if mode == "faulty" {
		f, err := storage.NewFaulty(db, "compact@1/2=err; sync@1/3=delay:100us; append@1/7=delay:50us")
		if err != nil {
			t.Fatal(err)
		}
		b = f
	}
	c, err := catalog.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return singleStore{c}
}

// do issues one request against the handler and returns the response.
func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func wantStatus(t *testing.T, rec *httptest.ResponseRecorder, status int) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d; body: %s", rec.Code, status, rec.Body.String())
	}
}

// runResponse is one parsed NDJSON run: header, tuples, footer.
type runResponse struct {
	header map[string]any
	tuples [][]int
	footer map[string]any
}

func parseRun(t *testing.T, body *bytes.Buffer) runResponse {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON response has %d lines: %q", len(lines), body.String())
	}
	var out runResponse
	if err := json.Unmarshal([]byte(lines[0]), &out.header); err != nil {
		t.Fatalf("bad header line %q: %v", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &out.footer); err != nil {
		t.Fatalf("bad footer line %q: %v", lines[len(lines)-1], err)
	}
	if done, _ := out.footer["done"].(bool); !done {
		t.Fatalf("footer not done: %v", out.footer)
	}
	for _, l := range lines[1 : len(lines)-1] {
		var tup []int
		if err := json.Unmarshal([]byte(l), &tup); err != nil {
			t.Fatalf("bad tuple line %q: %v", l, err)
		}
		out.tuples = append(out.tuples, tup)
	}
	if n, _ := out.footer["tuples"].(float64); int(n) != len(out.tuples) {
		t.Fatalf("footer counts %v tuples, body has %d", out.footer["tuples"], len(out.tuples))
	}
	return out
}

// newTestServer loads the R ⋈ S fixture and registers query "rs".
func newTestServer(t *testing.T) *server {
	t.Helper()
	s := newServer(newTestCatalog(t))
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B\n1 2\n2 3\n4 1\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n3 7\n3 9\n"), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries",
		`{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)
	return s
}

func TestRelationEndpoints(t *testing.T) {
	s := newTestServer(t)

	rec := do(t, s, "GET", "/relations", "")
	wantStatus(t, rec, http.StatusOK)
	var infos []catalog.Info
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "R" || infos[0].Tuples != 3 {
		t.Fatalf("relations = %+v", infos)
	}

	// Dump round-trips through load.
	rec = do(t, s, "GET", "/relations/R", "")
	wantStatus(t, rec, http.StatusOK)
	if !strings.HasPrefix(rec.Body.String(), "R: A B\n") {
		t.Fatalf("dump = %q", rec.Body.String())
	}
	wantStatus(t, do(t, s, "POST", "/relations", rec.Body.String()), http.StatusOK)

	// Errors: bad body, unknown relation, arity-changing reload.
	wantStatus(t, do(t, s, "POST", "/relations", "no header here"), http.StatusBadRequest)
	wantStatus(t, do(t, s, "GET", "/relations/missing", ""), http.StatusNotFound)
	wantStatus(t, do(t, s, "POST", "/relations", "R: A B C\n1 2 3\n"), http.StatusBadRequest)

	wantStatus(t, do(t, s, "DELETE", "/relations/S", ""), http.StatusOK)
	wantStatus(t, do(t, s, "DELETE", "/relations/S", ""), http.StatusNotFound)
}

func TestQueryRegisterAndRun(t *testing.T) {
	s := newTestServer(t)

	rec := do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	run := parseRun(t, rec.Body)
	want := [][]int{{1, 2, 5}, {2, 3, 7}, {2, 3, 9}} // over GAO A,B,C? header says
	vars, _ := run.header["vars"].([]any)
	if len(vars) != 3 {
		t.Fatalf("header vars = %v", run.header)
	}
	// The GAO may order variables differently; check tuple count and
	// footer flags instead of exact tuples, then pin one known join row.
	if len(run.tuples) != len(want) {
		t.Fatalf("tuples = %v, want %d rows", run.tuples, len(want))
	}
	if run.footer["timed_out"] != false || run.footer["limited"] != false {
		t.Fatalf("footer = %v", run.footer)
	}

	// limit applies and is reported.
	rec = do(t, s, "GET", "/queries/rs/run?limit=2", "")
	wantStatus(t, rec, http.StatusOK)
	run = parseRun(t, rec.Body)
	if len(run.tuples) != 2 || run.footer["limited"] != true {
		t.Fatalf("limited run: %d tuples, footer %v", len(run.tuples), run.footer)
	}

	// Engine override: every engine returns the same rows.
	for _, eng := range []string{"minesweeper", "leapfrog", "nprr", "yannakakis", "hashplan"} {
		rec = do(t, s, "GET", "/queries/rs/run?engine="+eng, "")
		wantStatus(t, rec, http.StatusOK)
		r := parseRun(t, rec.Body)
		if len(r.tuples) != 3 {
			t.Fatalf("engine %s: tuples = %v", eng, r.tuples)
		}
		if got := r.header["engine"]; got != eng {
			t.Fatalf("engine %s: header says %v", eng, got)
		}
	}
	wantStatus(t, do(t, s, "GET", "/queries/rs/run?engine=nope", ""), http.StatusBadRequest)
	wantStatus(t, do(t, s, "GET", "/queries/missing/run", ""), http.StatusNotFound)

	// Registration errors.
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B)"}`), http.StatusConflict)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"bad","query":"Nope(A)"}`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "POST", "/queries", `{"query":"R(A,B)"}`), http.StatusBadRequest)

	// Listing and dropping.
	rec = do(t, s, "GET", "/queries", "")
	wantStatus(t, rec, http.StatusOK)
	if !strings.Contains(rec.Body.String(), `"rs"`) {
		t.Fatalf("queries list = %s", rec.Body.String())
	}
	wantStatus(t, do(t, s, "DELETE", "/queries/rs", ""), http.StatusOK)
	wantStatus(t, do(t, s, "DELETE", "/queries/rs", ""), http.StatusNotFound)
}

// TestMutationFlowsThroughRegisteredQuery is the serving-layer face of
// the PR's acceptance criterion: insert/delete through the HTTP API and
// the already-registered prepared query serves the new data on its next
// run, with no re-registration.
func TestMutationFlowsThroughRegisteredQuery(t *testing.T) {
	s := newTestServer(t)

	run := parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)
	if len(run.tuples) != 3 {
		t.Fatalf("initial run: %v", run.tuples)
	}

	rec := do(t, s, "POST", "/relations/R/insert", `{"tuples":[[9,2]]}`)
	wantStatus(t, rec, http.StatusOK)
	var mut map[string]any
	json.Unmarshal(rec.Body.Bytes(), &mut)
	if mut["inserted"] != float64(1) || mut["epoch"] != float64(1) {
		t.Fatalf("insert response = %v", mut)
	}

	run = parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)
	if len(run.tuples) != 4 {
		t.Fatalf("after insert: %v", run.tuples)
	}

	rec = do(t, s, "POST", "/relations/R/delete", `{"tuples":[[9,2],[1,2]]}`)
	wantStatus(t, rec, http.StatusOK)
	json.Unmarshal(rec.Body.Bytes(), &mut)
	if mut["deleted"] != float64(2) {
		t.Fatalf("delete response = %v", mut)
	}
	run = parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)
	if len(run.tuples) != 2 {
		t.Fatalf("after delete: %v", run.tuples)
	}

	wantStatus(t, do(t, s, "POST", "/relations/missing/insert", `{"tuples":[[1,2]]}`), http.StatusNotFound)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `not json`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[1]]}`), http.StatusBadRequest)
}

// TestDroppedRelationRefusesStaleQuery: a registered query whose
// relation was dropped (or dropped and re-created) must refuse to run
// rather than silently serve the stale pre-drop data.
func TestDroppedRelationRefusesStaleQuery(t *testing.T) {
	s := newTestServer(t)
	wantStatus(t, do(t, s, "DELETE", "/relations/S", ""), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/queries/rs/run", ""), http.StatusGone)
	// Re-creating under the same name is a different relation object:
	// still refused until the query is re-registered.
	wantStatus(t, do(t, s, "POST", "/relations", "S: B C\n2 5\n"), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/queries/rs/run", ""), http.StatusGone)
	wantStatus(t, do(t, s, "DELETE", "/queries/rs", ""), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/queries", `{"name":"rs","query":"R(A,B), S(B,C)"}`), http.StatusOK)
	run := parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)
	if len(run.tuples) != 1 {
		t.Fatalf("re-registered run: %v", run.tuples)
	}
}

func TestAdhocQueryAndTimeout(t *testing.T) {
	s := newTestServer(t)

	rec := do(t, s, "POST", "/query", `{"query":"R(A,B), S(B,C)","limit":1,"engine":"leapfrog"}`)
	wantStatus(t, rec, http.StatusOK)
	run := parseRun(t, rec.Body)
	if len(run.tuples) != 1 || run.footer["limited"] != true {
		t.Fatalf("adhoc run: %v footer %v", run.tuples, run.footer)
	}

	// An already-expired deadline dies before the first tuple, so the
	// status line can still carry the outcome: 504, not a 200 stream
	// with an empty page.
	rec = do(t, s, "POST", "/query", `{"query":"R(A,B), S(B,C)","timeout":"1ns"}`)
	wantStatus(t, rec, http.StatusGatewayTimeout)

	wantStatus(t, do(t, s, "POST", "/query", `{"query":"R(A,B)","timeout":"bogus"}`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "POST", "/query", `{}`), http.StatusBadRequest)
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 3; i++ {
		wantStatus(t, do(t, s, "GET", "/queries/rs/run", ""), http.StatusOK)
	}
	rec := do(t, s, "GET", "/stats", "")
	wantStatus(t, rec, http.StatusOK)
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["executions"] != float64(3) || stats["tuples_served"] != float64(9) {
		t.Fatalf("stats = %v", stats)
	}
	if stats["relations"] != float64(2) || stats["queries"] != float64(1) {
		t.Fatalf("stats = %v", stats)
	}
	inner, _ := stats["stats"].(map[string]any)
	if inner == nil || inner["Outputs"] != float64(9) {
		t.Fatalf("inner stats = %v", inner)
	}
	if ce, _ := stats["certificate_estimate"].(float64); ce <= 0 {
		t.Fatalf("certificate_estimate = %v", stats["certificate_estimate"])
	}
}

// TestRunStreamsInOrder pins the NDJSON tuple order to the GAO-lex
// order shared by every engine.
func TestRunStreamsInOrder(t *testing.T) {
	s := newTestServer(t)
	var runs [][][]int
	for _, eng := range []string{"minesweeper", "leapfrog"} {
		run := parseRun(t, do(t, s, "GET", fmt.Sprintf("/queries/rs/run?engine=%s", eng), "").Body)
		runs = append(runs, run.tuples)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("engines disagree:\n%v\n%v", runs[0], runs[1])
	}
	for i := 1; i < len(runs[0]); i++ {
		a, b := runs[0][i-1], runs[0][i]
		for j := range a {
			if a[j] != b[j] {
				if a[j] > b[j] {
					t.Fatalf("tuples out of order: %v before %v", a, b)
				}
				break
			}
		}
	}
}

// TestQueryShapingOverHTTP covers the select/where/constant surface:
// textual clauses in the query expression, the spec-level select/where
// fields, the vars-vs-gao header invariant, and negative limits.
func TestQueryShapingOverHTTP(t *testing.T) {
	s := newTestServer(t)

	// Constants + clauses inside the query expression. R ⋈ S joins to
	// (A,B,C) ∈ {(1,2,5),(2,3,7),(2,3,9)}; B = 3 keeps the last two.
	rec := do(t, s, "POST", "/query", `{"query":"R(A, 3), S(3, C)"}`)
	wantStatus(t, rec, http.StatusOK)
	run := parseRun(t, rec.Body)
	if len(run.tuples) != 2 {
		t.Fatalf("constant query tuples = %v", run.tuples)
	}
	vars, _ := run.header["vars"].([]any)
	if !reflect.DeepEqual(vars, []any{"A", "C"}) {
		t.Fatalf("constant query vars = %v", vars)
	}

	// Aggregates through the expression text.
	rec = do(t, s, "POST", "/query", `{"query":"R(A,B), S(B,C) select B, count(*)"}`)
	wantStatus(t, rec, http.StatusOK)
	run = parseRun(t, rec.Body)
	if !reflect.DeepEqual(run.tuples, [][]int{{2, 1}, {3, 2}}) {
		t.Fatalf("aggregate rows = %v", run.tuples)
	}

	// Spec-level select/where fields.
	rec = do(t, s, "POST", "/query", `{"query":"R(A,B), S(B,C)","select":"C","where":"C >= 7"}`)
	wantStatus(t, rec, http.StatusOK)
	run = parseRun(t, rec.Body)
	if !reflect.DeepEqual(run.tuples, [][]int{{7}, {9}}) {
		t.Fatalf("select/where rows = %v", run.tuples)
	}

	// The header carries both column order and evaluation order.
	rec = do(t, s, "GET", "/queries/rs/run", "")
	run = parseRun(t, rec.Body)
	if _, ok := run.header["gao"].([]any); !ok {
		t.Fatalf("header missing gao: %v", run.header)
	}
	if _, ok := run.header["vars"].([]any); !ok {
		t.Fatalf("header missing vars: %v", run.header)
	}

	// Negative limit means unlimited.
	rec = do(t, s, "GET", "/queries/rs/run?limit=-1", "")
	wantStatus(t, rec, http.StatusOK)
	run = parseRun(t, rec.Body)
	if len(run.tuples) != 3 || run.footer["limited"] != false {
		t.Fatalf("limit=-1: %d tuples, footer %v", len(run.tuples), run.footer)
	}

	// Bad clauses are 400s.
	wantStatus(t, do(t, s, "POST", "/query", `{"query":"R(A,B)","where":"Z < 1"}`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "POST", "/query", `{"query":"R(A,B)","select":"sum(*)"}`), http.StatusBadRequest)

	// Registration echoes the output vars of a shaped query.
	rec = do(t, s, "POST", "/queries", `{"name":"counts","query":"R(A,B) select A, count(*)"}`)
	wantStatus(t, rec, http.StatusOK)
	var reg map[string]any
	json.Unmarshal(rec.Body.Bytes(), &reg)
	if !reflect.DeepEqual(reg["vars"], []any{"A", "count(*)"}) {
		t.Fatalf("registration vars = %v", reg)
	}
}

// TestExplainInQueryResponses: registration and the query listing both
// carry the plan — GAO, width, cost estimate and planned flag — so
// clients can see what order a served query runs under without an
// extra round trip.
func TestExplainInQueryResponses(t *testing.T) {
	s := newTestServer(t)

	rec := do(t, s, "POST", "/queries", `{"name":"rs2","query":"R(x, y), S(y, z)"}`)
	wantStatus(t, rec, http.StatusOK)
	var reg struct {
		Name    string `json:"name"`
		Explain struct {
			GAO     []string `json:"gao"`
			Width   int      `json:"width"`
			EstCost float64  `json:"est_cost"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Explain.GAO) != 3 || reg.Explain.Width != 1 || reg.Explain.EstCost <= 0 {
		t.Fatalf("register explain = %+v", reg.Explain)
	}

	rec = do(t, s, "GET", "/queries", "")
	wantStatus(t, rec, http.StatusOK)
	var infos []struct {
		Name    string `json:"name"`
		Explain struct {
			GAO   []string `json:"gao"`
			Width int      `json:"width"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("queries = %+v", infos)
	}
	for _, info := range infos {
		if len(info.Explain.GAO) != 3 {
			t.Fatalf("query %q explain = %+v", info.Name, info.Explain)
		}
	}
}

// TestRunHeaderGAOMatchesEmissionOrder: a mutation between runs can
// re-plan the evaluation order; the NDJSON header's "gao" must name
// the order the stream is actually sorted by (the run refreshes the
// plan before writing the header).
func TestRunHeaderGAOMatchesEmissionOrder(t *testing.T) {
	s := newTestServer(t)
	// Mutate R so the next run re-plans against fresh statistics.
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[9,2],[7,3],[8,2]]}`), http.StatusOK)
	rec := do(t, s, "GET", "/queries/rs/run", "")
	wantStatus(t, rec, http.StatusOK)
	run := parseRun(t, rec.Body)

	vars, _ := run.header["vars"].([]any)
	gao, _ := run.header["gao"].([]any)
	if len(vars) == 0 || len(gao) == 0 {
		t.Fatalf("header = %v", run.header)
	}
	pos := map[string]int{}
	for i, v := range vars {
		pos[v.(string)] = i
	}
	perm := make([]int, len(gao)) // gao position -> tuple column
	for i, g := range gao {
		perm[i] = pos[g.(string)]
	}
	for i := 1; i < len(run.tuples); i++ {
		prev, cur := run.tuples[i-1], run.tuples[i]
		less := false
		for _, c := range perm {
			if prev[c] != cur[c] {
				less = prev[c] < cur[c]
				break
			}
		}
		if !less {
			t.Fatalf("tuples not sorted by header gao %v: %v then %v", gao, prev, cur)
		}
	}
}

// TestListQueriesExplainTracksMutations: GET /queries reports the live
// plan — after a mutation re-plans the prepared query, the listing's
// gao must match what the next run's stream header says, not the
// registration-time copy.
func TestListQueriesExplainTracksMutations(t *testing.T) {
	s := newTestServer(t)
	wantStatus(t, do(t, s, "POST", "/relations/R/insert", `{"tuples":[[9,2],[7,3],[8,2]]}`), http.StatusOK)

	rec := do(t, s, "GET", "/queries", "")
	wantStatus(t, rec, http.StatusOK)
	var infos []struct {
		Explain struct {
			GAO []string `json:"gao"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("queries = %+v", infos)
	}
	listed := infos[0].Explain.GAO

	run := parseRun(t, do(t, s, "GET", "/queries/rs/run", "").Body)
	headerGAO, _ := run.header["gao"].([]any)
	if len(headerGAO) != len(listed) {
		t.Fatalf("listing gao %v vs run header gao %v", listed, headerGAO)
	}
	for i, g := range headerGAO {
		if g.(string) != listed[i] {
			t.Fatalf("listing gao %v diverges from run header gao %v", listed, headerGAO)
		}
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation, plus one measured experiment per quantitative theorem
// (see DESIGN.md's experiment index E1–E9). Each experiment returns a
// Table so the msbench command can print it and the benchmark suite can
// assert on its shape.
package experiments

import (
	"fmt"
	"time"

	"minesweeper/internal/baseline"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
)

// Table is one experiment's result in paper-style rows.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   string
}

// Registry maps experiment names to their runners. Scale ∈ {Small, Full}
// lets tests run the same code cheaply.
type Scale int

// Experiment scales.
const (
	Small Scale = iota // unit-test sized
	Full               // msbench sized
)

// Runner computes one experiment.
type Runner func(scale Scale) (*Table, error)

// All lists every experiment in DESIGN.md order.
func All() []struct {
	Name string
	Run  Runner
} {
	return []struct {
		Name string
		Run  Runner
	}{
		{"fig2", Figure2},
		{"betaacyclic", BetaAcyclicScaling},
		{"appj", AppendixJComparison},
		{"intersect", IntersectionAdaptivity},
		{"bowtie", BowtieAdaptivity},
		{"triangle", TriangleCDSComparison},
		{"treewidth", TreewidthFamily},
		{"memo", MemoizationEffect},
		{"gao", GAODependence},
		{"gaoquality", GAOQuality},
		{"longpath", LayeredPathComparison},
	}
}

func fmtCount(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

// Figure2 reproduces Figure 2 of the paper: input size N versus measured
// certificate size |C| (the number of FindGap operations) for the star,
// 3-path and tree queries over the three (simulated) graph datasets.
// The paper's phenomenon: |C| is orders of magnitude smaller than N.
func Figure2(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E1/Figure 2",
		Title:   "Input size (N) versus certificate size (|C|, FindGap count)",
		Headers: []string{"query", "dataset", "N", "|C|", "N/|C|", "Z"},
		Notes: "Paper reports e.g. star/Orkut N=352M vs |C|=214K (ratio ~1600x). " +
			"Datasets here are synthetic scaled stand-ins; the shape to check is |C| << N.",
	}
	presets := dataset.Presets
	if scale == Small {
		presets = append([]dataset.GraphPreset(nil), presets...)
		for i := range presets {
			presets[i].N /= 20
			presets[i].SampleP *= 4
		}
	}
	type builder struct {
		name string
		fn   func(*dataset.Graph, [][][]int) ([]string, []core.AtomSpec)
	}
	builders := []builder{{"Star", dataset.StarQuery}, {"3-path", dataset.PathQuery}, {"Tree", dataset.TreeQuery}}
	for _, b := range builders {
		for _, preset := range presets {
			g, samples := preset.Build()
			gao, atoms := b.fn(g, samples)
			p, err := core.NewProblem(gao, atoms)
			if err != nil {
				return nil, err
			}
			var stats certificate.Stats
			out, err := core.MinesweeperAll(p, &stats)
			if err != nil {
				return nil, err
			}
			n := int64(p.InputSize())
			c := stats.CertificateEstimate()
			ratio := float64(n) / float64(max64(c, 1))
			t.Rows = append(t.Rows, []string{
				b.name, preset.Name, fmtCount(n), fmtCount(c),
				fmt.Sprintf("%.0fx", ratio), fmtCount(int64(len(out))),
			})
		}
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BetaAcyclicScaling demonstrates Theorem 2.7: on the Appendix J path
// family (β-acyclic, nested elimination order), Minesweeper's probe and
// FindGap counts grow linearly with the certificate (~mM) while the input
// grows quadratically (~mM²).
func BetaAcyclicScaling(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E2/Theorem 2.7",
		Title:   "Minesweeper cost vs certificate size on β-acyclic paths",
		Headers: []string{"m", "M", "N(input)", "~|C|(=mM)", "probes", "findgaps", "probes/M"},
		Notes: "Theorem 2.7: Õ(|C|+Z) for β-acyclic queries. probes/M should stay " +
			"near-constant as M doubles while N grows 4x.",
	}
	const m = 5
	sizes := []int{8, 16, 32, 64}
	if scale == Full {
		sizes = []int{16, 32, 64, 128, 256}
	}
	for _, M := range sizes {
		gao, atoms := dataset.AppendixJPath(m, M)
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			return nil, err
		}
		var stats certificate.Stats
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), fmt.Sprintf("%d", M),
			fmtCount(int64(p.InputSize())), fmtCount(int64(m * M)),
			fmtCount(stats.ProbePoints), fmtCount(stats.FindGaps),
			fmt.Sprintf("%.2f", float64(stats.ProbePoints)/float64(M)),
		})
	}
	return t, nil
}

// AppendixJComparison runs Minesweeper against Yannakakis, Leapfrog and
// NPRR on the Appendix J family, reporting wall time and comparison
// counts: the worst-case-optimal algorithms are ω(|C|) here.
func AppendixJComparison(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E3/Appendix J",
		Title:   "Minesweeper vs worst-case-optimal algorithms on the hard path family",
		Headers: []string{"M", "N(input)", "engine", "time", "probes/cmps"},
		Notes: "Appendix J: Yannakakis/NPRR/LFTJ take Ω(mM²) while Minesweeper is Õ(mM). " +
			"Expect the Minesweeper column to grow ~M and the others ~M².",
	}
	const m = 5
	sizes := []int{16, 32, 64}
	if scale == Full {
		sizes = []int{32, 64, 128, 256}
	}
	for _, M := range sizes {
		gao, atoms := dataset.AppendixJPath(m, M)
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			return nil, err
		}
		n := fmtCount(int64(p.InputSize()))
		run := func(name string, fn func() (int64, error)) error {
			start := time.Now()
			work, err := fn()
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", M), n, name,
				time.Since(start).Round(10 * time.Microsecond).String(), fmtCount(work),
			})
			return nil
		}
		if err := run("minesweeper", func() (int64, error) {
			var s certificate.Stats
			_, err := core.MinesweeperAll(p, &s)
			return s.ProbePoints, err
		}); err != nil {
			return nil, err
		}
		if err := run("leapfrog", func() (int64, error) {
			var s certificate.Stats
			_, err := baseline.LeapfrogAll(p, &s)
			return s.FindGaps, err
		}); err != nil {
			return nil, err
		}
		if err := run("nprr", func() (int64, error) {
			var s certificate.Stats
			_, err := baseline.NPRRAll(p, &s)
			return s.Comparisons, err
		}); err != nil {
			return nil, err
		}
		if err := run("yannakakis", func() (int64, error) {
			var s certificate.Stats
			_, err := baseline.Yannakakis(gao, atoms, &s)
			return s.Comparisons, err
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// IntersectionAdaptivity contrasts a constant-certificate intersection
// instance (disjoint blocks) with a Θ(N)-certificate one (interleaved):
// Appendix H / Theorem H.4.
func IntersectionAdaptivity(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E4/Appendix H",
		Title:   "Set intersection: probes track certificate size, not input size",
		Headers: []string{"family", "m", "N(per set)", "probes", "findgaps", "Z"},
		Notes:   "Block family has |C|=O(m); interleaved has |C|=Θ(mN).",
	}
	n := 20000
	if scale == Small {
		n = 2000
	}
	for _, m := range []int{2, 4, 8} {
		for _, fam := range []string{"blocks", "interleaved"} {
			var sets [][]int
			if fam == "blocks" {
				sets = dataset.BlockSets(m, n)
			} else {
				sets = dataset.InterleavedSets(m, n)
			}
			var stats certificate.Stats
			out, err := core.IntersectSets(sets, &stats)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam, fmt.Sprintf("%d", m), fmtCount(int64(n)),
				fmtCount(stats.ProbePoints), fmtCount(stats.FindGaps), fmt.Sprintf("%d", len(out)),
			})
		}
	}
	return t, nil
}

// BowtieAdaptivity sweeps the hidden-gap bow-tie instance of Appendix I:
// the certificate is O(1) regardless of N, so probe counts must stay flat.
func BowtieAdaptivity(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E5/Appendix I",
		Title:   "Bow-tie query: near instance-optimal probes on the hidden-gap family",
		Headers: []string{"N", "input", "probes", "findgaps", "Z"},
		Notes:   "Theorem I.4: O((|C|+Z) log N); this family has |C|=O(1).",
	}
	sizes := []int{1000, 4000, 16000}
	if scale == Small {
		sizes = []int{200, 800}
	}
	for _, n := range sizes {
		var s [][]int
		for i := 1; i <= n; i++ {
			s = append(s, []int{1, n + 1 + i}, []int{3, i})
		}
		var stats certificate.Stats
		out, err := core.Bowtie([]int{2}, s, []int{n + 1}, &stats)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmtCount(int64(n)), fmtCount(int64(2 * n)),
			fmt.Sprintf("%d", stats.ProbePoints), fmt.Sprintf("%d", stats.FindGaps),
			fmt.Sprintf("%d", len(out)),
		})
	}
	return t, nil
}

// TriangleCDSComparison contrasts the dyadic-CDS triangle engine
// (Theorem 5.4, Õ(|C|^{3/2})) with generic Minesweeper (Õ(|C|²) here) on
// the family where the generic CDS must enumerate Ω(K²) (a,b) pairs.
func TriangleCDSComparison(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E6/Theorem 5.4",
		Title:   "Triangle query: dyadic CDS vs generic CDS work",
		Headers: []string{"K", "N(input)", "special cdsops", "generic cdsops", "generic/special"},
		Notes: "On TriangleHard(K): |C|=O(K); the generic CDS iterates Θ(K²) (a,b) " +
			"pairs (visible as CDS ops/backtracks), the dyadic CDS prunes whole " +
			"B-subtrees and stays Õ(K). Expect the ratio column to double with K.",
	}
	sizes := []int{16, 32, 64}
	if scale == Full {
		sizes = []int{32, 64, 128}
	}
	for _, k := range sizes {
		r, s, ty := dataset.TriangleHard(k)
		var sp certificate.Stats
		if _, err := core.Triangle(r, s, ty, &sp); err != nil {
			return nil, err
		}
		p, err := core.NewProblem([]string{"A", "B", "C"}, []core.AtomSpec{
			{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
			{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
			{Name: "T", Attrs: []string{"A", "C"}, Tuples: ty},
		})
		if err != nil {
			return nil, err
		}
		var gp certificate.Stats
		if _, err := core.MinesweeperAll(p, &gp); err != nil {
			return nil, err
		}
		ratio := float64(gp.CDSOps) / float64(max64(sp.CDSOps, 1))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), fmtCount(int64(len(r) + len(s) + len(ty))),
			fmtCount(sp.CDSOps), fmtCount(gp.CDSOps), fmt.Sprintf("%.1fx", ratio),
		})
	}
	return t, nil
}

// TreewidthFamily demonstrates Proposition 5.3: on the clique family Q_w,
// Minesweeper's probe count grows ~m^w although |C| = O(wm).
func TreewidthFamily(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E7/Proposition 5.3",
		Title:   "Treewidth lower bound: CDS backtracks grow as m^w while |C| = O(wm)",
		Headers: []string{"w", "m", "N(input)", "~|C|(=wm)", "probes", "backtracks", "backtracks/m^w"},
		Notes: "Proposition 5.3 counts executions of the chain-merge step (Algorithm 6 " +
			"line 17): each doomed prefix dies inside getProbePoint with one back-track. " +
			"For w=2 the backtracks/m^w column stays near-constant (the Ω(m²) bound is " +
			"exact). For w=3 this implementation's shadow memoization caches merged " +
			"wildcard coverage across sibling prefixes and lands near ~3m², beating the " +
			"paper's Ω(m³) bound for their CDS variant — see EXPERIMENTS.md. Runs with " +
			"DisableBoxes: the box-cover CDS sidesteps this lower bound altogether " +
			"(geometric resolution retires each doomed prefix family in one backtrack), " +
			"so the m^w growth only shows on the paper's interval-only CDS.",
	}
	var cases [][2]int
	if scale == Small {
		cases = [][2]int{{2, 8}, {2, 16}, {2, 32}, {3, 6}, {3, 10}}
	} else {
		cases = [][2]int{{2, 16}, {2, 32}, {2, 64}, {3, 8}, {3, 16}, {3, 24}}
	}
	for _, c := range cases {
		w, m := c[0], c[1]
		gao, atoms := dataset.CliqueInstance(w, m)
		p, err := core.NewProblem(gao, atoms)
		if err != nil {
			return nil, err
		}
		p.DisableBoxes = true // the Ω(m^w) bound targets the interval-only CDS
		var stats certificate.Stats
		if _, err := core.MinesweeperAll(p, &stats); err != nil {
			return nil, err
		}
		mw := 1
		for i := 0; i < w; i++ {
			mw *= m
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), fmt.Sprintf("%d", m),
			fmtCount(int64(p.InputSize())), fmtCount(int64(w * m)),
			fmtCount(stats.ProbePoints), fmtCount(stats.Backtracks),
			fmt.Sprintf("%.3f", float64(stats.Backtracks)/float64(mw)),
		})
	}
	return t, nil
}

// MemoizationEffect replays Example 4.1 at growing N and reports total
// CDS work, which must scale ~N² (with memoization) rather than the
// brute-force N³.
func MemoizationEffect(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E8/Example 4.1",
		Title:   "Lazy constraint inference: CDS work is ~N² with memoization, superquadratic without",
		Headers: []string{"N", "memo ops", "memo ops/N²", "no-memo ops", "no-memo ops/N²"},
		Notes: "With memoization (Section 4.1) the ops/N² column stays constant; the " +
			"ablated CDS re-derives every inference and drifts toward the brute-force N³.",
	}
	sizes := []int{8, 16, 32}
	if scale == Full {
		sizes = []int{16, 32, 64, 128}
	}
	for _, n := range sizes {
		withMemo, err := runExample41(n, true)
		if err != nil {
			return nil, err
		}
		noMemo, err := runExample41(n, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtCount(withMemo.CDSOps),
			fmt.Sprintf("%.1f", float64(withMemo.CDSOps)/float64(n*n)),
			fmtCount(noMemo.CDSOps),
			fmt.Sprintf("%.1f", float64(noMemo.CDSOps)/float64(n*n)),
		})
	}
	return t, nil
}

// GAODependence measures Examples B.3/B.4: the same data under GAO
// (A,B,C) needs a Θ(n²) certificate while (C,A,B) needs only Θ(n).
func GAODependence(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E9/Examples B.3-B.4",
		Title:   "Certificate size depends on the GAO (same data, two orders)",
		Headers: []string{"n", "N(input)", "GAO", "findgaps", "probes"},
		Notes:   "Expect findgaps ~n² under (A,B,C) and ~n under (C,A,B).",
	}
	sizes := []int{8, 16, 32}
	if scale == Full {
		sizes = []int{16, 32, 64}
	}
	for _, n := range sizes {
		atoms := dataset.ExampleB3(n)
		for _, gao := range [][]string{{"A", "B", "C"}, {"C", "A", "B"}} {
			p, err := core.NewProblem(gao, atoms)
			if err != nil {
				return nil, err
			}
			var stats certificate.Stats
			if _, err := core.MinesweeperAll(p, &stats); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmtCount(int64(p.InputSize())),
				fmt.Sprintf("%v", gao), fmtCount(stats.FindGaps), fmtCount(stats.ProbePoints),
			})
		}
	}
	return t, nil
}

package catalog

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"minesweeper/internal/reltree"
	"minesweeper/internal/storage"
)

// reopen abandons the catalog without Close — the moral equivalent of
// a kill — and recovers a fresh catalog from the same directory.
func reopen(t *testing.T, dir string) *Catalog {
	t.Helper()
	b, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCatalogDurableRecovery: mutate a durable catalog, abandon it
// mid-flight, and recover. Relations must come back with their tuples,
// variable bindings and exact mutation epochs; query definitions must
// come back re-registrable; queries prepared against the recovered
// catalog must go warm (zero index rebuilds) after their first run.
func TestCatalogDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, c, "R", []string{"A", "B"}, [][]int{{1, 2}, {2, 3}})
	mustCreate(t, c, "S", []string{"B", "C"}, [][]int{{2, 5}, {3, 7}})
	if _, err := c.Insert("R", []int{9, 2}); err != nil { // epoch 1
		t.Fatal(err)
	}
	if _, _, err := c.Delete("R", []int{1, 2}); err != nil { // epoch 2
		t.Fatal(err)
	}
	// A replace through the Load path, changing the binding.
	if _, err := c.Load(strings.NewReader("S: B D\n2 5\n3 7\n4 8\n"), "reload"); err != nil { // epoch 1
		t.Fatal(err)
	}
	for _, def := range []storage.QueryDef{
		{Name: "rs", Query: "R(A,B), S(B,D)", Workers: 2},
		{Name: "gone", Query: "R(A,B)"},
	} {
		if err := c.PutQueryDef(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DropQueryDef("gone"); err != nil {
		t.Fatal(err)
	}
	want := c.Relations()
	// No Close: the WAL tail is whatever the appends wrote.

	c2 := reopen(t, dir)
	if got := c2.Relations(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered relations:\ngot:  %+v\nwant: %+v", got, want)
	}
	if want[0].Epoch != 2 || want[1].Epoch != 1 {
		t.Fatalf("test setup drifted: epochs %+v", want)
	}
	defs := c2.QueryDefs()
	if len(defs) != 1 || defs[0].Name != "rs" || defs[0].Workers != 2 {
		t.Fatalf("recovered query defs = %+v", defs)
	}

	// Recovered tuples match, not just the counts.
	r1, _ := c.Get("R")
	r2, _ := c2.Get("R")
	if !reflect.DeepEqual(r1.Tuples(), r2.Tuples()) {
		t.Fatalf("recovered R tuples %v, want %v", r2.Tuples(), r1.Tuples())
	}

	// Re-plan the persisted query against the recovered data and check
	// the warm-path invariant: the first execution builds indexes
	// lazily, the second builds none.
	q, err := c2.Query(defs[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// R = {(2,3),(9,2)}, S = {(2,5),(3,7),(4,8)}: joins (2,3,7), (9,2,5).
	if len(res.Tuples) != 2 {
		t.Fatalf("recovered join result %v", res.Tuples)
	}
	before := reltree.Builds()
	if _, err := pq.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := reltree.Builds(); got != before {
		t.Fatalf("warm re-execution after recovery rebuilt %d indexes", got-before)
	}
}

// TestCatalogDurableTornTail: garbage appended to the WAL — a record
// torn by a crash — is truncated at recovery, keeping everything
// durably logged before it.
func TestCatalogDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	b, err := storage.OpenDurable(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, c, "R", []string{"A", "B"}, [][]int{{1, 2}})
	if _, err := c.Insert("R", []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	want := c.Relations()

	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files: %v, %v", wals, err)
	}
	f, err := os.OpenFile(wals[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("#!ms insert R 2 1 0f0f0f0f\n5 "); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := reopen(t, dir)
	if got := c2.Relations(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery with torn tail:\ngot:  %+v\nwant: %+v", got, want)
	}
	if st := c2.StorageStats(); st.TruncatedBytes == 0 {
		t.Fatalf("stats report no truncation: %+v", st)
	}
}

// TestCatalogDurableCompactionSurvivesReopen: force snapshot rotation
// through catalog mutations and verify recovery from snapshot + short
// WAL matches the live state.
func TestCatalogDurableCompactionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := storage.OpenDurable(dir, storage.Options{CompactMinBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, c, "R", []string{"A", "B"}, nil)
	for i := 0; i < 200; i++ {
		if _, err := c.Insert("R", []int{i, i * 2}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.StorageStats(); st.Snapshots == 0 {
		t.Fatalf("no compaction after 200 mutations with CompactMinBytes=256: %+v", st)
	}
	want := c.Relations()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := reopen(t, dir)
	if got := c2.Relations(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered after compaction:\ngot:  %+v\nwant: %+v", got, want)
	}
	r, _ := c2.Get("R")
	if r.Len() != 200 || r.Epoch() != 200 {
		t.Fatalf("recovered R: %d tuples at epoch %d, want 200 at 200", r.Len(), r.Epoch())
	}
}

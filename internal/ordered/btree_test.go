package ordered

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasic(t *testing.T) {
	b := NewBTree[string]()
	if b.Len() != 0 {
		t.Fatal("empty tree has keys")
	}
	if !b.Insert(5, "five") || !b.Insert(1, "one") || !b.Insert(9, "nine") {
		t.Fatal("fresh inserts must report true")
	}
	if b.Insert(5, "FIVE") {
		t.Fatal("replace must report false")
	}
	if v, ok := b.Find(5); !ok || v != "FIVE" {
		t.Fatalf("Find(5) = %q %v", v, ok)
	}
	if _, ok := b.Find(7); ok {
		t.Fatal("Find(7) must miss")
	}
	if k, _, ok := b.FindLub(2); !ok || k != 5 {
		t.Fatalf("FindLub(2) = %d %v", k, ok)
	}
	if k, _, ok := b.FindGlb(8); !ok || k != 5 {
		t.Fatalf("FindGlb(8) = %d %v", k, ok)
	}
	if _, _, ok := b.FindLub(10); ok {
		t.Fatal("FindLub(10) must miss")
	}
	if _, _, ok := b.FindGlb(0); ok {
		t.Fatal("FindGlb(0) must miss")
	}
	if got := b.Keys(); len(got) != 3 || got[0] != 1 || got[2] != 9 {
		t.Fatalf("Keys = %v", got)
	}
}

// TestBTreeAgainstSortedList drives both ordered maps with identical
// random operations; all queries must agree.
func TestBTreeAgainstSortedList(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	b := NewBTree[int]()
	s := NewSortedList[int]()
	for step := 0; step < 20000; step++ {
		k := rng.Intn(5000)
		switch rng.Intn(3) {
		case 0:
			vb := b.Insert(k, step)
			vs := s.Insert(k, step)
			if vb != vs {
				t.Fatalf("step %d: Insert(%d) disagree", step, k)
			}
		case 1:
			vb, okb := b.Find(k)
			vs, oks := s.Find(k)
			if okb != oks || (okb && vb != vs) {
				t.Fatalf("step %d: Find(%d) = %d,%v vs %d,%v", step, k, vb, okb, vs, oks)
			}
		case 2:
			kb, _, okb := b.FindLub(k)
			ks, _, oks := s.FindLub(k)
			if okb != oks || (okb && kb != ks) {
				t.Fatalf("step %d: FindLub(%d) = %d,%v vs %d,%v", step, k, kb, okb, ks, oks)
			}
			kb, _, okb = b.FindGlb(k)
			ks, _, oks = s.FindGlb(k)
			if okb != oks || (okb && kb != ks) {
				t.Fatalf("step %d: FindGlb(%d) disagree", step, k)
			}
		}
		if b.Len() != s.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, b.Len(), s.Len())
		}
	}
}

// TestBTreeNodeInvariants checks B-tree structural invariants after bulk
// insertion: sorted keys in every node, key-count bounds, uniform depth.
func TestBTreeNodeInvariants(t *testing.T) {
	b := NewBTree[struct{}]()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b.Insert(rng.Intn(200000), struct{}{})
	}
	depths := map[int]bool{}
	var walk func(n *btreeNode[struct{}], depth int, isRoot bool)
	walk = func(n *btreeNode[struct{}], depth int, isRoot bool) {
		if !sort.IntsAreSorted(n.keys) {
			t.Fatal("node keys unsorted")
		}
		if len(n.keys) > 2*BTreeDegree-1 {
			t.Fatalf("node overfull: %d keys", len(n.keys))
		}
		if !isRoot && len(n.keys) < BTreeDegree-1 {
			t.Fatalf("node underfull: %d keys", len(n.keys))
		}
		if n.leaf() {
			depths[depth] = true
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("child count %d for %d keys", len(n.children), len(n.keys))
		}
		for _, c := range n.children {
			walk(c, depth+1, false)
		}
	}
	walk(b.root, 0, true)
	if len(depths) != 1 {
		t.Fatalf("leaves at multiple depths: %v", depths)
	}
	if got := b.Keys(); !sort.IntsAreSorted(got) || len(got) != b.Len() {
		t.Fatal("Keys() inconsistent")
	}
}

func TestBTreeQuickSorted(t *testing.T) {
	f := func(keys []int16) bool {
		b := NewBTree[struct{}]()
		seen := map[int]bool{}
		for _, k := range keys {
			b.Insert(int(k), struct{}{})
			seen[int(k)] = true
		}
		got := b.Keys()
		if len(got) != len(seen) {
			return false
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !seen[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAscendEarlyStop(t *testing.T) {
	b := NewBTree[int]()
	for i := 0; i < 100; i++ {
		b.Insert(i, i)
	}
	var got []int
	b.Ascend(func(k, _ int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	if len(got) != 5 || got[4] != 4 {
		t.Fatalf("early stop: %v", got)
	}
}

package reltree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

func mustNew(t *testing.T, name string, arity int, tuples [][]int) *Tree {
	t.Helper()
	tr, err := New(name, arity, tuples)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New("R", 0, nil); err == nil {
		t.Fatal("arity 0 must fail")
	}
	if _, err := New("R", 2, [][]int{{1}}); err == nil {
		t.Fatal("short tuple must fail")
	}
	if _, err := New("R", 1, [][]int{{-3}}); err == nil {
		t.Fatal("negative value must fail")
	}
	if _, err := New("R", 1, [][]int{{ordered.PosInf}}); err == nil {
		t.Fatal("sentinel value must fail")
	}
	if _, err := New("R", 2, nil); err != nil {
		t.Fatalf("empty relation should build: %v", err)
	}
}

func TestPaperFigure3Example(t *testing.T) {
	// Relation R(A2, A4, A5) from Figure 3 of the paper.
	tuples := [][]int{
		{1, 2, 4}, {1, 2, 7}, {1, 3, 5}, {7, 4, 2}, {10, 4, 1},
	}
	r := mustNew(t, "R", 3, tuples)
	if r.Size() != 5 {
		t.Fatalf("Size = %d", r.Size())
	}
	// |R[*]| = 3, |R[0,*]| = 2 (paper's R[1,*]), |R[1,*]| = 1.
	if got := r.Fanout(nil); got != 3 {
		t.Fatalf("Fanout() = %d", got)
	}
	if got := r.Fanout([]int{0}); got != 2 {
		t.Fatalf("Fanout(0) = %d", got)
	}
	if got := r.Fanout([]int{1}); got != 1 {
		t.Fatalf("Fanout(1) = %d", got)
	}
	// Paper (1-based): R[3] = 10, R[1,2] = 3, R[1,1,2] = 7, R[2,1] = 4,
	// R[3,1,1] = 1, R[1,2,1] = 5. Our 0-based equivalents:
	cases := []struct {
		x    []int
		want int
	}{
		{[]int{2}, 10},
		{[]int{0, 1}, 3},
		{[]int{0, 0, 1}, 7},
		{[]int{1, 0}, 4},
		{[]int{2, 0, 0}, 1},
		{[]int{0, 1, 0}, 5},
	}
	for _, c := range cases {
		if got := r.Value(c.x); got != c.want {
			t.Errorf("Value(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	// Out-of-range conventions (1) and (2).
	if got := r.Value([]int{-1}); got != ordered.NegInf {
		t.Errorf("Value(-1) = %d, want NegInf", got)
	}
	if got := r.Value([]int{3}); got != ordered.PosInf {
		t.Errorf("Value(3) = %d, want PosInf", got)
	}
	if got := r.Value([]int{0, 2}); got != ordered.PosInf {
		t.Errorf("Value(0,2) = %d, want PosInf", got)
	}
}

func TestSectionTwoTupleOrderExample(t *testing.T) {
	// R(A1,A2) = {(1,1),(1,8),(2,3),(2,4)}: R[*]={1,2}, R[1,*]={1,8},
	// R[2]=2, R[2,1]=3 (paper, 1-based).
	r := mustNew(t, "R", 2, [][]int{{1, 1}, {1, 8}, {2, 3}, {2, 4}})
	if got := r.Fanout(nil); got != 2 {
		t.Fatalf("Fanout = %d", got)
	}
	if got := r.Value([]int{1}); got != 2 {
		t.Fatalf("R[2] = %d", got)
	}
	if got := r.Value([]int{1, 0}); got != 3 {
		t.Fatalf("R[2,1] = %d", got)
	}
	if got := r.Value([]int{0, 1}); got != 8 {
		t.Fatalf("R[1,2] = %d", got)
	}
}

func TestDuplicateCollapse(t *testing.T) {
	r := mustNew(t, "R", 2, [][]int{{1, 2}, {1, 2}, {1, 2}, {3, 4}})
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	want := [][]int{{1, 2}, {3, 4}}
	if got := r.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tuples = %v", got)
	}
}

func TestFindGap(t *testing.T) {
	r := mustNew(t, "R", 1, [][]int{{10}, {20}, {30}})
	cases := []struct {
		a      int
		lo, hi int
	}{
		{5, -1, 0},  // below everything: (-inf, 10)
		{10, 0, 0},  // exact hit
		{15, 0, 1},  // between 10 and 20
		{20, 1, 1},  // exact hit
		{25, 1, 2},  // between
		{30, 2, 2},  // exact
		{35, 2, 3},  // above: (30, +inf)
		{-1, -1, 0}, // probe seed
	}
	for _, c := range cases {
		lo, hi := r.FindGap(nil, c.a)
		if lo != c.lo || hi != c.hi {
			t.Errorf("FindGap(%d) = (%d,%d), want (%d,%d)", c.a, lo, hi, c.lo, c.hi)
		}
	}
}

func TestFindGapNested(t *testing.T) {
	r := mustNew(t, "R", 2, [][]int{{1, 5}, {1, 9}, {4, 2}})
	lo, hi := r.FindGap([]int{0}, 7) // under value 1: {5, 9}
	if lo != 0 || hi != 1 {
		t.Fatalf("FindGap([1],7) = (%d,%d)", lo, hi)
	}
	if v := r.Value([]int{0, lo}); v != 5 {
		t.Fatalf("low value = %d", v)
	}
	if v := r.Value([]int{0, hi}); v != 9 {
		t.Fatalf("high value = %d", v)
	}
	lo, hi = r.FindGap([]int{1}, 2) // under value 4: {2}
	if lo != 0 || hi != 0 {
		t.Fatalf("FindGap([4],2) = (%d,%d)", lo, hi)
	}
}

func TestFindGapEmptyRelation(t *testing.T) {
	r := mustNew(t, "R", 1, nil)
	lo, hi := r.FindGap(nil, 5)
	if lo != -1 || hi != 0 {
		t.Fatalf("FindGap on empty = (%d,%d)", lo, hi)
	}
	if r.Value([]int{-1}) != ordered.NegInf || r.Value([]int{0}) != ordered.PosInf {
		t.Fatal("sentinels on empty relation wrong")
	}
}

func TestFindGapStats(t *testing.T) {
	r := mustNew(t, "R", 1, [][]int{{1}, {2}, {3}})
	var s certificate.Stats
	r.SetStats(&s)
	r.FindGap(nil, 2)
	r.FindGap(nil, 9)
	if s.FindGaps != 2 {
		t.Fatalf("FindGaps = %d", s.FindGaps)
	}
	if s.Comparisons == 0 {
		t.Fatal("comparisons not counted")
	}
	r.SetStats(nil)
	r.FindGap(nil, 2)
	if s.FindGaps != 2 {
		t.Fatal("detached stats still counted")
	}
}

func TestContains(t *testing.T) {
	r := mustNew(t, "R", 3, [][]int{{1, 2, 3}, {1, 2, 5}, {7, 0, 0}})
	if !r.Contains([]int{1, 2, 3}) || !r.Contains([]int{7, 0, 0}) {
		t.Fatal("Contains misses present tuple")
	}
	if r.Contains([]int{1, 2, 4}) || r.Contains([]int{2, 2, 3}) || r.Contains([]int{1, 2}) {
		t.Fatal("Contains accepts absent tuple")
	}
}

func TestTuplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(60)
		tuples := make([][]int, n)
		seen := map[string]bool{}
		for i := range tuples {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(8)
			}
			tuples[i] = tup
			seen[key(tup)] = true
		}
		r := mustNew(t, "R", arity, tuples)
		got := r.Tuples()
		if len(got) != len(seen) {
			t.Fatalf("round trip size %d, want %d", len(got), len(seen))
		}
		for i := 1; i < len(got); i++ {
			if !lexLess(got[i-1], got[i]) {
				t.Fatalf("Tuples not strictly sorted at %d: %v %v", i, got[i-1], got[i])
			}
		}
		for _, tup := range got {
			if !seen[key(tup)] {
				t.Fatalf("unexpected tuple %v", tup)
			}
			if !r.Contains(tup) {
				t.Fatalf("Contains(%v) = false", tup)
			}
		}
	}
}

func key(tup []int) string {
	b := make([]byte, 0, len(tup)*3)
	for _, v := range tup {
		b = append(b, byte('0'+v), ',')
	}
	return string(b)
}

// TestFindGapQuick property-tests FindGap against a brute-force scan:
// lo is the max index with value ≤ a, hi the min index with value ≥ a.
func TestFindGapQuick(t *testing.T) {
	f := func(vals []uint8, a uint8) bool {
		tuples := make([][]int, len(vals))
		for i, v := range vals {
			tuples[i] = []int{int(v)}
		}
		r, err := New("R", 1, tuples)
		if err != nil {
			return false
		}
		distinct := map[int]bool{}
		for _, v := range vals {
			distinct[int(v)] = true
		}
		var sortedVals []int
		for v := range distinct {
			sortedVals = append(sortedVals, v)
		}
		sort.Ints(sortedVals)
		lo, hi := r.FindGap(nil, int(a))
		wantLo, wantHi := -1, len(sortedVals)
		for i, v := range sortedVals {
			if v <= int(a) {
				wantLo = i
			}
			if v >= int(a) && wantHi == len(sortedVals) {
				wantHi = i
			}
		}
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestFindGapValueSandwich checks the defining property of FindGap:
// Value(x,lo) ≤ a ≤ Value(x,hi) with maximal lo / minimal hi, at every
// depth of a random ternary relation.
func TestFindGapValueSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tuples := make([][]int, 200)
	for i := range tuples {
		tuples[i] = []int{rng.Intn(10), rng.Intn(10), rng.Intn(10)}
	}
	r := mustNew(t, "R", 3, tuples)
	var probe func(x []int, depth int)
	probe = func(x []int, depth int) {
		if depth == 3 {
			return
		}
		for a := -1; a <= 10; a++ {
			lo, hi := r.FindGap(x, a)
			lv := r.Value(append(append([]int{}, x...), lo))
			hv := r.Value(append(append([]int{}, x...), hi))
			if !(lv <= a && a <= hv) {
				t.Fatalf("FindGap(%v,%d): %d ≤ %d ≤ %d fails", x, a, lv, a, hv)
			}
			if lo+1 <= hi-1 {
				t.Fatalf("FindGap(%v,%d): gap (%d,%d) too wide", x, a, lo, hi)
			}
			if lo == hi && lv != a {
				t.Fatalf("FindGap(%v,%d): lo==hi but value %d", x, a, lv)
			}
		}
		n := r.Fanout(x)
		for i := 0; i < n; i++ {
			probe(append(append([]int{}, x...), i), depth+1)
		}
	}
	probe(nil, 0)
}

// TestSliceTopAndClone checks the shared-node view primitives that back
// cached-index reuse: SliceTop restricts to a first-attribute range
// without rebuilding, Clone isolates stats receivers, and both agree
// with a tree built from the filtered tuples.
func TestSliceTopAndClone(t *testing.T) {
	tuples := [][]int{{1, 5}, {1, 9}, {3, 2}, {4, 2}, {4, 7}, {8, 1}}
	r := mustNew(t, "R", 2, tuples)
	for _, tc := range []struct {
		lo, hi, size int
	}{
		{0, 100, 6}, {1, 4, 5}, {3, 4, 3}, {4, 4, 2}, {5, 7, 0}, {9, 100, 0},
	} {
		v := r.SliceTop(tc.lo, tc.hi)
		if v.Size() != tc.size {
			t.Fatalf("SliceTop(%d,%d).Size = %d, want %d", tc.lo, tc.hi, v.Size(), tc.size)
		}
		var want [][]int
		for _, tup := range tuples {
			if tc.lo <= tup[0] && tup[0] <= tc.hi {
				want = append(want, tup)
			}
		}
		got := v.Tuples()
		if len(got) != len(want) {
			t.Fatalf("SliceTop(%d,%d) tuples %v, want %v", tc.lo, tc.hi, got, want)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("SliceTop(%d,%d) tuples %v, want %v", tc.lo, tc.hi, got, want)
			}
		}
	}
	// Clone has its own stats receiver; the original stays untouched.
	before := Builds()
	var s certificate.Stats
	c := r.Clone()
	c.SetStats(&s)
	c.FindGap(nil, 4)
	if s.FindGaps != 1 {
		t.Fatalf("clone stats = %d FindGaps, want 1", s.FindGaps)
	}
	var orig certificate.Stats
	r.SetStats(&orig)
	r.FindGap(nil, 4)
	r.SetStats(nil)
	if orig.FindGaps != 1 || s.FindGaps != 1 {
		t.Fatalf("stats not isolated: orig=%d clone=%d", orig.FindGaps, s.FindGaps)
	}
	// Neither Clone nor SliceTop counts as an index build.
	if Builds() != before {
		t.Fatalf("views counted as builds: %d -> %d", before, Builds())
	}
	// Unary relations slice at the leaf level.
	u := mustNew(t, "U", 1, [][]int{{2}, {4}, {6}})
	if v := u.SliceTop(3, 6); v.Size() != 2 {
		t.Fatalf("unary SliceTop size = %d, want 2", v.Size())
	}
}

// TestGapRun: the range form of FindGap validates a run of siblings in
// one descent, stops at the first violator, and walks either direction.
func TestGapRun(t *testing.T) {
	// Children of the root (depth-0 values 0..4); second attribute holds
	// the gap (10, 20) under every child except child 3 (which has 15).
	r := mustNew(t, "R", 2, [][]int{
		{0, 5}, {0, 25},
		{1, 10}, {1, 20},
		{2, 8}, {2, 30},
		{3, 15},
		{4, 9}, {4, 21},
	})
	var s certificate.Stats
	r.SetStats(&s)
	if n := r.GapRun(nil, 0, 4, 10, 20); n != 3 {
		t.Fatalf("upward GapRun = %d, want 3 (child 3 holds 15)", n)
	}
	if s.FindGaps != 1 {
		t.Fatalf("GapRun counted %d FindGaps, want 1 (a single descent)", s.FindGaps)
	}
	if s.Comparisons == 0 {
		t.Fatal("GapRun must account for its probe comparisons")
	}
	if n := r.GapRun(nil, 2, 0, 10, 20); n != 3 {
		t.Fatalf("downward GapRun = %d, want 3", n)
	}
	if n := r.GapRun(nil, 3, 3, 10, 20); n != 0 {
		t.Fatalf("violating child alone = %d, want 0", n)
	}
	// Sentinel endpoints: (NegInf, 9) is empty under child 0 only when no
	// value is below 9.
	if n := r.GapRun(nil, 0, 1, ordered.NegInf, 9); n != 0 {
		t.Fatalf("GapRun below 9 under child 0 = %d, want 0 (value 5)", n)
	}
	if n := r.GapRun(nil, 1, 2, 21, ordered.PosInf); n != 1 {
		t.Fatalf("GapRun above 21 = %d, want 1 (child 1 holds, child 2 has 30)", n)
	}
	if n := r.GapRun(nil, 1, 1, 20, ordered.PosInf); n != 1 {
		t.Fatalf("GapRun above 20 under child 1 = %d, want 1", n)
	}
	// A GapRun answer must agree with per-sibling FindGap validation.
	for lo, hi := 10, 20; ; {
		want := 0
		for c := 0; c <= 4; c++ {
			l, h := r.FindGap([]int{c}, 15)
			if l == h || r.Value([]int{c, l}) > lo || r.Value([]int{c, h}) < hi {
				break
			}
			want++
		}
		if got := r.GapRun(nil, 0, 4, lo, hi); got != want {
			t.Fatalf("GapRun = %d, FindGap-per-sibling says %d", got, want)
		}
		break
	}
}

package cds

import (
	"fmt"
	"sort"
	"strings"

	"minesweeper/internal/ordered"
)

// BoxConstraint is the multi-dimensional generalization of a constraint
// vector: a rectangle of ruled-out space spanning a contiguous run of
// GAO positions. A tuple t is ruled out when its first len(Prefix)
// coordinates match Prefix and, for every k, t[len(Prefix)+k] lies in
// the closed range Dims[k]. Trailing positions beyond the box are
// implicit wildcards, exactly as for Constraint.
//
// A one-dimensional box is the closed-range form of an ordinary
// interval constraint; InsBox delegates that case to InsConstraint, so
// stored boxes always span at least two positions. This is the box
// form of the certificate from "Box Covers and Domain Orderings" /
// "Joins via Geometric Resolutions": one box replaces the
// per-value family of interval constraints an interval-only CDS
// derives across the box's earlier dimensions.
type BoxConstraint struct {
	Prefix Pattern
	Dims   []ordered.Range
}

// Empty reports whether the box rules out no tuple.
func (b BoxConstraint) Empty() bool {
	if len(b.Dims) == 0 {
		return true
	}
	for _, d := range b.Dims {
		if d.Empty() {
			return true
		}
	}
	return false
}

// Covers reports whether the tuple (its first len(Prefix)+len(Dims)
// coordinates) is ruled out by the box.
func (b BoxConstraint) Covers(t []int) bool {
	if len(t) < len(b.Prefix)+len(b.Dims) {
		return false
	}
	if !b.Prefix.Matches(t[:len(b.Prefix)]) {
		return false
	}
	for k, d := range b.Dims {
		if !d.Contains(t[len(b.Prefix)+k]) {
			return false
		}
	}
	return true
}

func (b BoxConstraint) String() string {
	parts := make([]string, len(b.Dims))
	for i, d := range b.Dims {
		parts[i] = d.String()
	}
	return fmt.Sprintf("%s%s", b.Prefix, strings.Join(parts, "x"))
}

// closedToOpenLo / closedToOpenHi convert a closed range endpoint to the
// equivalent open-interval endpoint, keeping the ±∞ sentinels in place.
func closedToOpenLo(lo int) int {
	if lo <= ordered.NegInf {
		return ordered.NegInf
	}
	return lo - 1
}

func closedToOpenHi(hi int) int {
	if hi >= ordered.PosInf {
		return ordered.PosInf
	}
	return hi + 1
}

// boxNode is one stored box: an arena slot holding the interned prefix
// and interned dimension ranges. Boxes are indexed by the GAO position
// of their last dimension (the only level at which they can advance a
// probe point).
type boxNode struct {
	prefix Pattern
	dims   []ordered.Range
}

func (v *boxNode) covers(tuple []int) bool {
	if len(tuple) < len(v.prefix)+len(v.dims) {
		return false
	}
	if !v.prefix.Matches(tuple[:len(v.prefix)]) {
		return false
	}
	for k, d := range v.dims {
		if !d.Contains(tuple[len(v.prefix)+k]) {
			return false
		}
	}
	return true
}

// window returns the set of values at GAO position pos for which the
// box is applicable: the dimension range when pos lies inside the box,
// the pinned value for a prefix equality, everything for a wildcard.
func (v *boxNode) window(pos int) ordered.Range {
	if pos < len(v.prefix) {
		c := v.prefix[pos]
		if c.Star {
			return ordered.Range{Lo: ordered.NegInf, Hi: ordered.PosInf}
		}
		return ordered.Range{Lo: c.Val, Hi: c.Val}
	}
	return v.dims[pos-len(v.prefix)]
}

// rangeChunkSize is the range-arena granularity (in ranges).
const rangeChunkSize = 256

// boxShape is the applicability signature of a box prefix: its length
// and the bitmask of pinned (Eq) positions. Boxes sharing a shape and
// the same pinned values land in one boxBucket, so activeBoxes can find
// every candidate with one hash lookup per distinct shape instead of a
// scan over all stored boxes. Prefixes longer than 64 positions (never
// seen in practice — GAO arity is small) fall back to a linear overflow
// list.
type boxShape struct {
	plen int
	mask uint64
}

// boxKey identifies one bucket: a shape plus the hash of the pinned
// prefix values. Hash collisions are harmless — candidates are
// re-verified with prefix.Matches before use.
type boxKey struct {
	sh boxShape
	h  uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h uint64, v int) uint64 {
	h ^= uint64(v)
	return h * fnvPrime64
}

// hashPrefix / hashTuple hash the pinned positions of a box prefix /
// the corresponding coordinates of a probe tuple; a box is applicable
// only under tuples hashing identically.
func (sh boxShape) hashPrefix(p Pattern) uint64 {
	h := uint64(fnvOffset64)
	for j := 0; j < sh.plen; j++ {
		if sh.mask&(1<<uint(j)) != 0 {
			h = fnvMix(h, p[j].Val)
		}
	}
	return h
}

func (sh boxShape) hashTuple(tv []int) uint64 {
	h := uint64(fnvOffset64)
	for j := 0; j < sh.plen; j++ {
		if sh.mask&(1<<uint(j)) != 0 {
			h = fnvMix(h, tv[j])
		}
	}
	return h
}

func eqMask(p Pattern) (uint64, bool) {
	if len(p) > 64 {
		return 0, false
	}
	var m uint64
	for j, c := range p {
		if !c.Star {
			m |= 1 << uint(j)
		}
	}
	return m, true
}

// boxBucket holds the boxes of one (shape, pinned-values) class, sorted
// ascending by their first middle-dimension Lo, with maxHi[j] the
// running maximum of dims[0].Hi over boxes[0..j]. The pair supports
// stabbing queries — all boxes whose dims[0] contains a value — in
// O(log n + answers): binary-search the last Lo ≤ x, then walk left
// while the running max still reaches x.
type boxBucket struct {
	boxes []*boxNode
	maxHi []int
}

// insert places v into the bucket keeping the sort and running max.
func (bk *boxBucket) insert(v *boxNode) {
	lo := v.dims[0].Lo
	pos := sort.Search(len(bk.boxes), func(j int) bool { return bk.boxes[j].dims[0].Lo > lo })
	bk.boxes = append(bk.boxes, nil)
	copy(bk.boxes[pos+1:], bk.boxes[pos:])
	bk.boxes[pos] = v
	bk.maxHi = append(bk.maxHi, 0)
	for j := pos; j < len(bk.boxes); j++ {
		hi := bk.boxes[j].dims[0].Hi
		if j > 0 && bk.maxHi[j-1] > hi {
			hi = bk.maxHi[j-1]
		}
		bk.maxHi[j] = hi
	}
}

// removeAt deletes the box at index j, keeping the sort and running max,
// and returns it.
func (bk *boxBucket) removeAt(j int) *boxNode {
	v := bk.boxes[j]
	bk.boxes = append(bk.boxes[:j], bk.boxes[j+1:]...)
	bk.maxHi = bk.maxHi[:len(bk.maxHi)-1]
	for i := j; i < len(bk.boxes); i++ {
		hi := bk.boxes[i].dims[0].Hi
		if i > 0 && bk.maxHi[i-1] > hi {
			hi = bk.maxHi[i-1]
		}
		bk.maxHi[i] = hi
	}
	return v
}

// internRanges copies dims into the tree-owned range arena and returns
// the durable copy; chunks are never reallocated once handed out, so
// previously interned slices stay valid for the life of the tree.
func (t *Tree) internRanges(dims []ordered.Range) []ordered.Range {
	if t.rangeIdx == len(t.rangeChunks) {
		size := rangeChunkSize
		if len(dims) > size {
			size = len(dims)
		}
		t.rangeChunks = append(t.rangeChunks, make([]ordered.Range, 0, size))
	}
	cur := t.rangeChunks[t.rangeIdx]
	if cap(cur)-len(cur) < len(dims) {
		t.rangeIdx++
		return t.internRanges(dims)
	}
	start := len(cur)
	cur = append(cur, dims...)
	t.rangeChunks[t.rangeIdx] = cur
	return cur[start:len(cur):len(cur)]
}

// InsBox inserts a box constraint. Empty boxes are dropped;
// one-dimensional boxes delegate to InsConstraint (they are plain
// interval constraints); a box subsumed dimension-wise by an
// already-stored box with the same prefix is dropped. Like
// InsConstraint, neither the Prefix nor the Dims slice is retained —
// callers may reuse their buffers. On the steady-state path the call
// performs zero allocations.
func (t *Tree) InsBox(b BoxConstraint) {
	if len(b.Prefix)+len(b.Dims) > t.n {
		panic("cds: box constraint extends past attribute count")
	}
	if b.Empty() {
		return
	}
	if len(b.Dims) == 1 {
		d := b.Dims[0]
		t.InsConstraint(Constraint{Prefix: b.Prefix, Lo: closedToOpenLo(d.Lo), Hi: closedToOpenHi(d.Hi)})
		return
	}
	last := len(b.Prefix) + len(b.Dims) - 1
	mask, ok := eqMask(b.Prefix)
	if !ok {
		// Oversized prefix: linear overflow path.
		for _, v := range t.boxOverflow[last] {
			t.countOp()
			if boxSubsumes(v, b) {
				return
			}
		}
		for _, v := range t.boxOverflow[last] {
			t.countOp()
			if boxMergeable(v, b) {
				mergeDim0(v, b.Dims[0])
				return
			}
		}
		v := t.storeBox(b, last)
		t.boxOverflow[last] = append(t.boxOverflow[last], v)
		return
	}
	sh := boxShape{plen: len(b.Prefix), mask: mask}
	key := boxKey{sh: sh, h: sh.hashPrefix(b.Prefix)}
	if t.boxKeyIdx[last] == nil {
		t.boxKeyIdx[last] = make(map[boxKey]int)
	}
	bi, seen := t.boxKeyIdx[last][key]
	if !seen {
		shapeKnown := false
		for _, s := range t.boxShapesAt[last] {
			if s == sh {
				shapeKnown = true
				break
			}
		}
		if !shapeKnown {
			t.boxShapesAt[last] = append(t.boxShapesAt[last], sh)
		}
		bi = len(t.boxBuckets[last])
		t.boxBuckets[last] = append(t.boxBuckets[last], boxBucket{})
		t.boxKeyIdx[last][key] = bi
	}
	bk := &t.boxBuckets[last][bi]
	// A subsuming box must contain b.Dims[0].Lo in its first middle
	// dimension, so a stab query bounds the subsumption scan.
	x := b.Dims[0].Lo
	idx := sort.Search(len(bk.boxes), func(j int) bool { return bk.boxes[j].dims[0].Lo > x })
	for j := idx - 1; j >= 0 && bk.maxHi[j] >= x; j-- {
		v := bk.boxes[j]
		t.countOp()
		if boxSubsumes(v, b) {
			return
		}
	}
	// Merge: a stored box with the same prefix and identical trailing
	// dimensions whose first middle dimension overlaps or abuts b's
	// absorbs b in place — the union of two such rectangles is itself a
	// rectangle, so a widening streak grows one stored box instead of
	// accumulating one per widening. The stab range is widened by one on
	// each side to catch exactly-adjacent neighbors.
	xlo := b.Dims[0].Lo
	if xlo > ordered.NegInf {
		xlo--
	}
	xhi := b.Dims[0].Hi
	if xhi < ordered.PosInf {
		xhi++
	}
	idx = sort.Search(len(bk.boxes), func(j int) bool { return bk.boxes[j].dims[0].Lo > xhi })
	for j := idx - 1; j >= 0 && bk.maxHi[j] >= xlo; j-- {
		v := bk.boxes[j]
		t.countOp()
		if v.dims[0].Hi < xlo || !boxMergeable(v, b) {
			continue
		}
		v = bk.removeAt(j)
		mergeDim0(v, b.Dims[0])
		bk.insert(v)
		return
	}
	v := t.storeBox(b, last)
	bk.insert(v)
}

// boxMergeable reports whether stored box v and candidate b combine into
// a single rectangle: identical prefix, identical trailing dimensions,
// and first middle dimensions that overlap or abut, so the union of the
// two closed ranges is one closed range and the merged box rules out
// exactly the union of the two.
func boxMergeable(v *boxNode, b BoxConstraint) bool {
	if len(v.dims) != len(b.Dims) || len(v.prefix) != len(b.Prefix) || !patternsEqual(v.prefix, b.Prefix) {
		return false
	}
	for k := 1; k < len(b.Dims); k++ {
		if v.dims[k] != b.Dims[k] {
			return false
		}
	}
	lo := v.dims[0].Lo
	if lo > ordered.NegInf {
		lo--
	}
	hi := v.dims[0].Hi
	if hi < ordered.PosInf {
		hi++
	}
	return b.Dims[0].Lo <= hi && b.Dims[0].Hi >= lo
}

// mergeDim0 widens v's first middle dimension to the union with d. The
// dims slice is an arena region owned by v alone, so the extension is
// visible to every index that points at v without re-interning.
func mergeDim0(v *boxNode, d ordered.Range) {
	if d.Lo < v.dims[0].Lo {
		v.dims[0].Lo = d.Lo
	}
	if d.Hi > v.dims[0].Hi {
		v.dims[0].Hi = d.Hi
	}
}

// boxSubsumes reports whether stored box v rules out everything the
// candidate b would: identical prefix and dimension-wise containment.
func boxSubsumes(v *boxNode, b BoxConstraint) bool {
	if len(v.prefix) != len(b.Prefix) || !patternsEqual(v.prefix, b.Prefix) {
		return false
	}
	for k, d := range b.Dims {
		if v.dims[k].Intersect(d) != d {
			return false
		}
	}
	return true
}

// storeBox interns the box into the arena and registers it in the flat
// per-position list (Dump / BoxCount iterate it).
func (t *Tree) storeBox(b BoxConstraint, last int) *boxNode {
	v := t.boxes.Alloc()
	v.prefix = t.internPattern(b.Prefix)
	v.dims = t.internRanges(b.Dims)
	t.boxByLast[last] = append(t.boxByLast[last], v)
	if t.stats != nil {
		t.stats.Boxes++
	}
	return v
}

// BoxCount returns the number of stored (multi-dimensional) boxes.
func (t *Tree) BoxCount() int {
	n := 0
	for _, list := range t.boxByLast {
		n += len(list)
	}
	return n
}

// activeBoxes collects, into tree scratch, the stored boxes whose last
// dimension lies at GAO position i and which are applicable under the
// current probe prefix t.tv[:i]: the prefix pattern matches and every
// earlier dimension range contains its prefix coordinate. The returned
// slice is valid until the next call.
//
// The lookup is sublinear in the number of stored boxes: one bucket
// lookup per distinct prefix shape (hash of the pinned prefix values),
// then a stab query over the bucket's first-middle-dimension sort for
// the boxes whose dims[0] contains the probe coordinate. Only those
// candidates are verified in full.
func (t *Tree) activeBoxes(i int) []*boxNode {
	if len(t.boxByLast[i]) == 0 {
		return nil
	}
	out := t.boxScratch[:0]
	tv := t.tv
	for _, sh := range t.boxShapesAt[i] {
		t.countOp()
		bi, ok := t.boxKeyIdx[i][boxKey{sh: sh, h: sh.hashTuple(tv)}]
		if !ok {
			continue
		}
		bk := &t.boxBuckets[i][bi]
		x := tv[sh.plen] // the first middle-dimension coordinate
		idx := sort.Search(len(bk.boxes), func(j int) bool { return bk.boxes[j].dims[0].Lo > x })
		for j := idx - 1; j >= 0 && bk.maxHi[j] >= x; j-- {
			v := bk.boxes[j]
			t.countOp()
			if v.dims[0].Hi < x {
				continue
			}
			if !v.prefix.Matches(tv[:len(v.prefix)]) {
				continue // hash collision
			}
			ok := true
			for k := 1; k < len(v.dims)-1; k++ {
				if !v.dims[k].Contains(tv[len(v.prefix)+k]) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, v)
			}
		}
	}
	for _, v := range t.boxOverflow[i] {
		t.countOp()
		if !v.prefix.Matches(tv[:len(v.prefix)]) {
			continue
		}
		ok := true
		for k := 0; k < len(v.dims)-1; k++ {
			if !v.dims[k].Contains(tv[len(v.prefix)+k]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	t.boxScratch = out
	return out
}

// boxAdvance returns the smallest y ≥ val not covered by the last
// dimension of any active box, counting one BoxSkip per box jumped
// over. Runs to a fixpoint over the (small) active set.
func (t *Tree) boxAdvance(val int, act []*boxNode) int {
	for {
		advanced := false
		for _, v := range act {
			t.countOp()
			d := v.dims[len(v.dims)-1]
			if d.Contains(val) {
				if t.stats != nil {
					t.stats.BoxSkips++
				}
				if d.Hi >= ordered.PosInf {
					return ordered.PosInf
				}
				val = d.Hi + 1
				advanced = true
			}
		}
		if !advanced || val >= ordered.PosInf {
			return val
		}
	}
}

// boxResolve is the geometric-resolution step of the backtrack: it
// re-proves that level i admits no value, and returns the applicability
// rectangle of the proof — for every position j < i, the intersection
// A_j of the contributing constraints' windows at j. Every tuple prefix
// inside A_0×…×A_{i-1} leads to the same covered level, so the caller
// rules out the whole rectangle with one derived box instead of one
// value per probe. The rectangle always contains t.tv[:i] because every
// active box and filter node matched the current prefix.
//
// Generality matters for termination: a proof pinned to the current
// prefix re-derives itself for every sibling value, so each round
// consults the most general contributors first — boxes, then all-star
// filter nodes — and falls back to prefix-pinned filter nodes (whose Eq
// components collapse A_j to a point) only when nothing else covers the
// current value. The dims slice is tree scratch, valid until the next
// call; InsBox interns what it keeps.
func (t *Tree) boxResolve(i int, g []*node, act []*boxNode) ([]ordered.Range, bool) {
	if cap(t.resolveDims) < t.n {
		t.resolveDims = make([]ordered.Range, t.n)
	}
	dims := t.resolveDims[:i]
	for j := range dims {
		dims[j] = ordered.Range{Lo: ordered.NegInf, Hi: ordered.PosInf}
	}
	meet := func(v *boxNode) {
		for j := 0; j < i; j++ {
			dims[j] = dims[j].Intersect(v.window(j))
		}
	}
	pin := func(u *node) {
		for j := 0; j < i; j++ {
			if c := u.pattern[j]; !c.Star {
				dims[j] = dims[j].Intersect(ordered.Range{Lo: c.Val, Hi: c.Val})
			}
		}
	}
	y := -1
	for y < ordered.PosInf {
		advanced := false
		for _, v := range act {
			t.countOp()
			d := v.dims[len(v.dims)-1]
			if d.Contains(y) {
				meet(v)
				if d.Hi >= ordered.PosInf {
					return dims, true
				}
				y = d.Hi + 1
				advanced = true
			}
		}
		if !advanced {
			for _, u := range g {
				if u.pattern.EqCount() > 0 {
					continue
				}
				t.countOp()
				if ny := u.intervals.Next(y); ny > y {
					y = ny
					advanced = true
				}
			}
		}
		if !advanced {
			for _, u := range g {
				if u.pattern.EqCount() == 0 {
					continue
				}
				t.countOp()
				if ny := u.intervals.Next(y); ny > y {
					pin(u)
					y = ny
					advanced = true
				}
			}
		}
		if !advanced {
			return dims, false
		}
	}
	return dims, true
}

// eqPrefix builds, in tree scratch, the fully-specific pattern
// Eq(tv[0])…Eq(tv[n-1]). InsConstraint interns its prefix, so the
// scratch is safe to reuse.
func (t *Tree) eqPrefix(n int) Pattern {
	p := t.eqBuf[:n]
	for j := 0; j < n; j++ {
		p[j] = Eq(t.tv[j])
	}
	return p
}

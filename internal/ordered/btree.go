package ordered

// BTree is a B-tree keyed by int with payloads of type V — the index
// organization the paper's model is phrased around (Section 2.1 cites
// B-trees; Ramakrishnan & Gehrke ch. 10). It offers the same operations
// as SortedList so either can back an ordered index; the B-tree trades
// pointer-chasing for wide, cache-friendly nodes.
//
// The implementation is a classic preemptive-split B-tree of minimum
// degree BTreeDegree: every node except the root holds between
// BTreeDegree-1 and 2*BTreeDegree-1 keys.
type BTree[V any] struct {
	root *btreeNode[V]
	size int
}

// BTreeDegree is the minimum degree t of the tree (max 2t-1 keys/node).
const BTreeDegree = 16

type btreeNode[V any] struct {
	keys     []int
	vals     []V
	children []*btreeNode[V] // nil for leaves
}

// NewBTree returns an empty B-tree.
func NewBTree[V any]() *BTree[V] {
	return &BTree[V]{root: &btreeNode[V]{}}
}

// Len returns the number of stored keys.
func (t *BTree[V]) Len() int { return t.size }

func (n *btreeNode[V]) leaf() bool { return n.children == nil }

// search returns the index of the first key ≥ k.
func (n *btreeNode[V]) search(k int) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Find returns the payload stored under key.
func (t *BTree[V]) Find(key int) (V, bool) {
	n := t.root
	for {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			return n.vals[i], true
		}
		if n.leaf() {
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// FindLub returns the smallest key ≥ v with its payload.
func (t *BTree[V]) FindLub(v int) (key int, val V, ok bool) {
	n := t.root
	var bestKey int
	var bestVal V
	found := false
	for {
		i := n.search(v)
		if i < len(n.keys) {
			bestKey, bestVal, found = n.keys[i], n.vals[i], true
			if n.keys[i] == v {
				return bestKey, bestVal, true
			}
		}
		if n.leaf() {
			if found {
				return bestKey, bestVal, true
			}
			var zero V
			return 0, zero, false
		}
		n = n.children[i]
	}
}

// FindGlb returns the largest key ≤ v with its payload.
func (t *BTree[V]) FindGlb(v int) (key int, val V, ok bool) {
	n := t.root
	var bestKey int
	var bestVal V
	found := false
	for {
		i := n.search(v)
		if i < len(n.keys) && n.keys[i] == v {
			return v, n.vals[i], true
		}
		if i > 0 {
			bestKey, bestVal, found = n.keys[i-1], n.vals[i-1], true
		}
		if n.leaf() {
			if found {
				return bestKey, bestVal, true
			}
			var zero V
			return 0, zero, false
		}
		n = n.children[i]
	}
}

// Insert stores val under key, replacing any existing payload; reports
// whether the key is new.
func (t *BTree[V]) Insert(key int, val V) bool {
	if len(t.root.keys) == 2*BTreeDegree-1 {
		old := t.root
		t.root = &btreeNode[V]{children: []*btreeNode[V]{old}}
		t.root.splitChild(0)
	}
	added := t.root.insertNonFull(key, val)
	if added {
		t.size++
	}
	return added
}

// splitChild splits the full child at index i of n.
func (n *btreeNode[V]) splitChild(i int) {
	child := n.children[i]
	mid := BTreeDegree - 1
	right := &btreeNode[V]{
		keys: append([]int(nil), child.keys[mid+1:]...),
		vals: append([]V(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode[V](nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, 0)
	n.vals = append(n.vals, upVal)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = upKey
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode[V]) insertNonFull(key int, val V) bool {
	for {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, 0)
			var zero V
			n.vals = append(n.vals, zero)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = val
			return true
		}
		if len(n.children[i].keys) == 2*BTreeDegree-1 {
			n.splitChild(i)
			if key == n.keys[i] {
				n.vals[i] = val
				return false
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Ascend calls fn in ascending key order until it returns false.
func (t *BTree[V]) Ascend(fn func(key int, val V) bool) {
	t.root.ascend(fn)
}

func (n *btreeNode[V]) ascend(fn func(int, V) bool) bool {
	for i := range n.keys {
		if !n.leaf() {
			if !n.children[i].ascend(fn) {
				return false
			}
		}
		if !fn(n.keys[i], n.vals[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.keys)].ascend(fn)
	}
	return true
}

// Keys returns all keys ascending.
func (t *BTree[V]) Keys() []int {
	out := make([]int, 0, t.size)
	t.Ascend(func(k int, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Package reltree implements the paper's model of indexed relations
// (Section 2.1 and Figure 3): every relation is stored in an ordered
// search tree whose search key is consistent with the global attribute
// order (GAO). Tuples inside the tree are addressed by index tuples
// x = (x1, …, xj): R[x1] is the x1-th smallest value in the first
// attribute, R[x1, x2] the x2-th smallest second-attribute value among
// tuples whose first attribute equals R[x1], and so on.
//
// The structure supports the single access primitive the Minesweeper
// analysis relies on:
//
//	R.FindGap(x, a) → (lo, hi)
//
// which runs in O(k log |R|) and returns the tightest pair of child
// indexes around the value a under prefix x (Section 2.1).
//
// Index convention: indexes are 0-based; following the paper's
// conventions (1) and (2), the out-of-range index -1 denotes the value
// -∞ and the out-of-range index len denotes +∞.
package reltree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// Node is an internal node of the relation search tree. Values holds the
// sorted distinct values of one attribute under a fixed prefix; for
// non-leaf levels, Children[i] refines Values[i]. Counts[i] is the
// number of tuples stored under Values[i]; it is recorded only at the
// root level (its sole consumer is SliceTop's size computation) and only
// when the root is not a leaf (leaves hold one tuple per value).
type Node struct {
	Values   []int
	Children []*Node // nil at the deepest level
	Counts   []int   // root level only, nil at leaves
}

// builds counts every index constructed by New since process start.
// Clone and SliceTop views are not counted: tests and benchmarks use the
// counter to assert that prepared queries reuse cached indexes instead of
// rebuilding them.
var builds atomic.Int64

// Builds returns the process-wide count of New calls.
func Builds() int64 { return builds.Load() }

// Tree is an indexed relation: a search tree over tuples of fixed arity
// whose level order equals the (GAO-consistent) attribute order used to
// build it.
type Tree struct {
	name  string
	arity int
	size  int // number of tuples
	root  *Node
	stats *certificate.Stats
}

// New builds the search tree for the given tuples. All tuples must have
// length arity and non-negative components (the paper's ℕ domain).
// Duplicate tuples are collapsed (relations are sets). The tuple slice is
// not retained. The stats receiver may be nil; use SetStats to attach one
// per run.
func New(name string, arity int, tuples [][]int) (*Tree, error) {
	if arity < 1 {
		return nil, fmt.Errorf("reltree: relation %q: arity must be ≥ 1, got %d", name, arity)
	}
	sorted := make([][]int, 0, len(tuples))
	for i, tup := range tuples {
		if len(tup) != arity {
			return nil, fmt.Errorf("reltree: relation %q: tuple %d has %d components, want %d", name, i, len(tup), arity)
		}
		for j, v := range tup {
			if v < 0 || v >= ordered.PosInf {
				return nil, fmt.Errorf("reltree: relation %q: tuple %d component %d = %d out of domain [0, PosInf)", name, i, j, v)
			}
		}
		sorted = append(sorted, tup)
	}
	sort.Slice(sorted, func(i, j int) bool { return lexLess(sorted[i], sorted[j]) })
	sorted = dedup(sorted)
	t := &Tree{name: name, arity: arity, size: len(sorted)}
	t.root = build(sorted, 0, arity)
	builds.Add(1)
	return t, nil
}

// NewFromValues builds the arity-1 search tree for a plain value list —
// the shape the set-intersection solvers use — without wrapping every
// element in a one-int tuple: three allocations total instead of one
// per element. Duplicates collapse; the input slice is not retained.
func NewFromValues(name string, values []int) (*Tree, error) {
	vs := make([]int, len(values))
	copy(vs, values)
	sort.Ints(vs)
	out := vs[:0]
	for i, v := range vs {
		if v < 0 || v >= ordered.PosInf {
			return nil, fmt.Errorf("reltree: relation %q: value %d out of domain [0, PosInf)", name, v)
		}
		if i > 0 && v == vs[i-1] {
			continue
		}
		out = append(out, v)
	}
	t := &Tree{name: name, arity: 1, size: len(out), root: &Node{Values: out}}
	builds.Add(1)
	return t, nil
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func dedup(sorted [][]int) [][]int {
	out := sorted[:0]
	for i, tup := range sorted {
		if i > 0 && equal(tup, sorted[i-1]) {
			continue
		}
		out = append(out, tup)
	}
	return out
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// build constructs the level for attribute position depth from the sorted,
// deduplicated tuple block.
func build(block [][]int, depth, arity int) *Node {
	n := &Node{}
	if len(block) == 0 {
		return n
	}
	leaf := depth == arity-1
	if !leaf {
		n.Children = n.Children[:0]
	}
	i := 0
	for i < len(block) {
		v := block[i][depth]
		j := i
		for j < len(block) && block[j][depth] == v {
			j++
		}
		n.Values = append(n.Values, v)
		if !leaf {
			n.Children = append(n.Children, build(block[i:j], depth+1, arity))
			if depth == 0 {
				n.Counts = append(n.Counts, j-i)
			}
		}
		i = j
	}
	return n
}

// Name returns the relation's name.
func (t *Tree) Name() string { return t.name }

// Arity returns the number of attributes.
func (t *Tree) Arity() int { return t.arity }

// Size returns the number of (distinct) tuples.
func (t *Tree) Size() int { return t.size }

// SetStats attaches the per-run cost counters; nil detaches.
func (t *Tree) SetStats(s *certificate.Stats) { t.stats = s }

// Clone returns a shallow per-run view of the tree: it shares the
// immutable node structure but carries its own stats receiver, so
// concurrent executions over a cached index can each attach their own
// counters without racing. O(1).
func (t *Tree) Clone() *Tree {
	cp := t.View()
	return &cp
}

// View is Clone by value: a detached copy sharing the immutable node
// structure, with no stats receiver. Callers that clone many trees per
// run (Problem.Snapshot, the parallel workers) store Views in one
// block instead of paying one heap allocation per Clone.
func (t *Tree) View() Tree {
	cp := *t
	cp.stats = nil
	return cp
}

// sliceView packs a sliced tree and its root node into one allocation;
// SliceTop runs once per worker per atom per parallel execution, so the
// saved allocation is on a served workload's steady-state path.
type sliceView struct {
	tree Tree
	node Node
}

// SliceTop returns a view of the tree restricted to the tuples whose
// first attribute lies in [lo, hi]. The view shares all nodes with the
// receiver (nothing is re-sorted or rebuilt), which is how range-parallel
// executions hand each worker its partition of a cached index. The view
// carries no stats receiver. O(log fanout), one allocation.
func (t *Tree) SliceTop(lo, hi int) *Tree {
	root := t.root
	i := sort.SearchInts(root.Values, lo)
	j := sort.SearchInts(root.Values, hi+1)
	v := &sliceView{}
	v.node.Values = root.Values[i:j]
	size := j - i // leaf level: one tuple per value
	if root.Children != nil {
		v.node.Children = root.Children[i:j]
		v.node.Counts = root.Counts[i:j]
		size = 0
		for _, c := range v.node.Counts {
			size += c
		}
	}
	v.tree = Tree{name: t.name, arity: t.arity, size: size, root: &v.node}
	return &v.tree
}

// node returns the node addressed by the index tuple x (all components
// must be in range), or nil when x is out of range. len(x) must be
// < arity for a node to exist below it; len(x) == 0 returns the root.
func (t *Tree) node(x []int) *Node {
	n := t.root
	for _, xi := range x {
		if n == nil || xi < 0 || xi >= len(n.Values) || n.Children == nil {
			return nil
		}
		n = n.Children[xi]
	}
	return n
}

// Fanout returns |R[x, *]|: the number of distinct values below prefix x.
// It panics if x is out of range or longer than arity-1.
func (t *Tree) Fanout(x []int) int {
	n := t.node(x)
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: Fanout of invalid index tuple %v", t.name, x))
	}
	return len(n.Values)
}

// Value returns R[x]: the value addressed by the non-empty index tuple x.
// All components except the last must be in range; the last component may
// be the out-of-range -1 (returns NegInf) or len (returns PosInf),
// following conventions (1) and (2) of the paper.
func (t *Tree) Value(x []int) int {
	if len(x) == 0 {
		panic("reltree: Value of empty index tuple")
	}
	n := t.node(x[:len(x)-1])
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: Value of invalid index tuple %v", t.name, x))
	}
	last := x[len(x)-1]
	switch {
	case last <= -1:
		return ordered.NegInf
	case last >= len(n.Values):
		return ordered.PosInf
	}
	return n.Values[last]
}

// InRange reports whether index i is a real coordinate under prefix x.
func (t *Tree) InRange(x []int, i int) bool {
	n := t.node(x)
	return n != nil && i >= 0 && i < len(n.Values)
}

// FindGap implements the index primitive of Section 2.1: given an in-range
// index tuple x with len(x) < arity and a value a, it returns indexes
// (lo, hi) such that R[(x, lo)] ≤ a ≤ R[(x, hi)], lo maximal and hi
// minimal. lo may be -1 (value -∞) and hi may be Fanout(x) (value +∞).
// When a occurs under x, lo == hi. Runs in O(log |R|) via binary search
// and counts one FindGap plus its comparisons in the attached Stats.
func (t *Tree) FindGap(x []int, a int) (lo, hi int) {
	n := t.node(x)
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: FindGap under invalid index tuple %v", t.name, x))
	}
	if t.stats != nil {
		t.stats.FindGaps++
		steps := 1
		for m := len(n.Values); m > 1; m /= 2 {
			steps++
		}
		t.stats.Comparisons += int64(steps)
	}
	// hi = first index with value ≥ a.
	hi = sort.SearchInts(n.Values, a)
	if hi < len(n.Values) && n.Values[hi] == a {
		return hi, hi
	}
	return hi - 1, hi
}

// Contains reports whether the full tuple is present in the relation.
func (t *Tree) Contains(tuple []int) bool {
	if len(tuple) != t.arity {
		return false
	}
	n := t.root
	for d, v := range tuple {
		i := sort.SearchInts(n.Values, v)
		if i >= len(n.Values) || n.Values[i] != v {
			return false
		}
		if d < t.arity-1 {
			n = n.Children[i]
		}
	}
	return true
}

// Tuples materializes all tuples in lexicographic order (mainly for tests
// and baseline algorithms).
func (t *Tree) Tuples() [][]int {
	out := make([][]int, 0, t.size)
	cur := make([]int, 0, t.arity)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for i, v := range n.Values {
			cur = append(cur, v)
			if depth == t.arity-1 {
				tup := make([]int, len(cur))
				copy(tup, cur)
				out = append(out, tup)
			} else {
				walk(n.Children[i], depth+1)
			}
			cur = cur[:len(cur)-1]
		}
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return out
}

// Root exposes the root node for iterator-based algorithms (leapfrog).
func (t *Tree) Root() *Node { return t.root }

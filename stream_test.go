package minesweeper

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"minesweeper/internal/reltree"
)

var allEngines = []Engine{EngineMinesweeper, EngineLeapfrog, EngineNPRR, EngineYannakakis, EngineHashPlan}

// streamQuery builds the α-acyclic test query R(A,B) ⋈ S(B,C) ⋈ U(B)
// over pseudo-random data (α-acyclic so Yannakakis participates too).
func streamQuery(t *testing.T, seed int64) *Query {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(name string, arity, n, dom int) *Relation {
		var tuples [][]int
		for i := 0; i < n; i++ {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(dom)
			}
			tuples = append(tuples, tup)
		}
		return rel(t, name, arity, tuples)
	}
	r := mk("R", 2, 60, 8)
	s := mk("S", 2, 60, 8)
	u := mk("U", 1, 6, 8)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: s, Vars: []string{"B", "C"}},
		Atom{Rel: u, Vars: []string{"B"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestExecuteLimitAllEngines asserts the uniform limit semantics of the
// streaming executor: every engine returns exactly min(k, Z) tuples, and
// because all engines emit in GAO-lexicographic order, the prefixes are
// identical across engines.
func TestExecuteLimitAllEngines(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		q := streamQuery(t, seed)
		gao, _ := q.RecommendGAO()
		full, err := Execute(q, &Options{Engine: EngineHashPlan, GAO: gao})
		if err != nil {
			t.Fatal(err)
		}
		z := len(full.Tuples)
		if z < 4 {
			t.Fatalf("seed %d: want a non-trivial result, got Z=%d", seed, z)
		}
		for _, k := range []int{0, 1, 3, z - 1, z, z + 17} {
			want := k
			if want > z {
				want = z
			}
			for _, eng := range allEngines {
				res, err := ExecuteLimit(q, &Options{Engine: eng, GAO: gao}, k)
				if err != nil {
					t.Fatalf("seed %d engine %v k=%d: %v", seed, eng, k, err)
				}
				if len(res.Tuples) != want {
					t.Fatalf("seed %d engine %v k=%d: got %d tuples, want %d",
						seed, eng, k, len(res.Tuples), want)
				}
				if want > 0 && !reflect.DeepEqual(res.Tuples, full.Tuples[:want]) {
					t.Fatalf("seed %d engine %v k=%d: prefix diverges\ngot  %v\nwant %v",
						seed, eng, k, res.Tuples, full.Tuples[:want])
				}
			}
		}
	}
}

// TestExecuteStreamOrdered asserts that every engine streams the full
// result in GAO-lexicographic order, matching the materialized Execute.
func TestExecuteStreamOrdered(t *testing.T) {
	q := streamQuery(t, 7)
	gao, _ := q.RecommendGAO()
	ref, err := Execute(q, &Options{Engine: EngineHashPlan, GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines {
		var got [][]int
		stats, err := ExecuteStream(q, &Options{Engine: eng, GAO: gao}, func(tup []int) bool {
			got = append(got, tup)
			return true
		})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if !reflect.DeepEqual(got, ref.Tuples) {
			t.Fatalf("engine %v: stream diverges from oracle", eng)
		}
		if stats.Outputs != int64(len(got)) {
			t.Fatalf("engine %v: stats.Outputs = %d, emitted %d", eng, stats.Outputs, len(got))
		}
	}
}

// TestExecuteStreamCancellation cancels the context from inside the
// yield callback and asserts that every engine stops mid-enumeration
// with ctx.Err() and never yields again after the cancellation takes
// effect.
func TestExecuteStreamCancellation(t *testing.T) {
	q := streamQuery(t, 11)
	gao, _ := q.RecommendGAO()
	full, err := Execute(q, &Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) < 5 {
		t.Fatalf("want ≥5 tuples, got %d", len(full.Tuples))
	}
	for _, eng := range allEngines {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		sawAfterCancel := false
		_, err := ExecuteStreamContext(ctx, q, &Options{Engine: eng, GAO: gao}, func([]int) bool {
			if ctx.Err() != nil {
				sawAfterCancel = true
			}
			seen++
			if seen == 2 {
				cancel()
			}
			return true
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: err = %v, want context.Canceled", eng, err)
		}
		if sawAfterCancel {
			t.Fatalf("engine %v: yielded after cancellation", eng)
		}
		if seen >= len(full.Tuples) {
			t.Fatalf("engine %v: enumerated all %d tuples despite cancellation", eng, seen)
		}
	}
}

// TestExecuteContextExpired asserts that an already-expired context
// aborts every engine before any tuple is emitted.
func TestExecuteContextExpired(t *testing.T) {
	q := streamQuery(t, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range allEngines {
		res, err := ExecuteContext(ctx, q, &Options{Engine: eng})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: err = %v (res=%v), want context.Canceled", eng, err, res)
		}
	}
}

// TestPreparedSkipsIndexRebuild is the heart of the prepared-query API:
// after Prepare, re-executions must not construct any new reltree index,
// across every engine and including range-parallel runs.
func TestPreparedSkipsIndexRebuild(t *testing.T) {
	q := streamQuery(t, 17)
	gao, _ := q.RecommendGAO()
	cold, err := Execute(q, &Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines {
		pq, err := q.Prepare(&Options{Engine: eng, GAO: gao})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		before := reltree.Builds()
		for i := 0; i < 3; i++ {
			res, err := pq.Execute()
			if err != nil {
				t.Fatalf("engine %v run %d: %v", eng, i, err)
			}
			if !reflect.DeepEqual(res.Tuples, cold.Tuples) {
				t.Fatalf("engine %v run %d: result diverges from cold run", eng, i)
			}
		}
		if got := reltree.Builds(); got != before {
			t.Fatalf("engine %v: %d indexes rebuilt after Prepare", eng, got-before)
		}
	}
	// Parallel Minesweeper re-execution shares the cached indexes via
	// SliceTop views — still no rebuilds.
	pq, err := q.Prepare(&Options{GAO: gao, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := reltree.Builds()
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, cold.Tuples) {
		t.Fatal("parallel prepared run diverges from cold run")
	}
	if got := reltree.Builds(); got != before {
		t.Fatalf("parallel prepared run rebuilt %d indexes", got-before)
	}
}

// TestPreparedConcurrentUse runs one PreparedQuery from many goroutines;
// snapshots keep per-run state isolated, so results and stats must be
// identical and independent.
func TestPreparedConcurrentUse(t *testing.T) {
	q := streamQuery(t, 19)
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pq.Execute()
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(res.Tuples, ref.Tuples) {
				errs[i] = errors.New("concurrent result diverges")
			}
			if res.Stats.FindGaps != ref.Stats.FindGaps {
				errs[i] = errors.New("concurrent stats diverge: runs are not isolated")
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestIndexCacheSharing: two queries binding the same relation under the
// same column order share one cached index; a different column order
// adds a second entry.
func TestIndexCacheSharing(t *testing.T) {
	e := rel(t, "E", 2, [][]int{{1, 2}, {2, 3}, {3, 1}})
	q1, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q1.Prepare(&Options{GAO: []string{"A", "B", "C"}}); err != nil {
		t.Fatal(err)
	}
	// Under GAO (A,B,C): atom 1 keeps column order (identity), atom 2
	// also keeps it (B before C) — one permutation, one index.
	if got := e.CachedIndexes(); got != 1 {
		t.Fatalf("CachedIndexes = %d, want 1", got)
	}
	// GAO (C,B,A) reverses both atoms' column order — one more index.
	if _, err := q1.Prepare(&Options{GAO: []string{"C", "B", "A"}}); err != nil {
		t.Fatal(err)
	}
	if got := e.CachedIndexes(); got != 2 {
		t.Fatalf("CachedIndexes = %d, want 2", got)
	}
	// Re-preparing adds nothing.
	if _, err := q1.Prepare(&Options{GAO: []string{"A", "B", "C"}}); err != nil {
		t.Fatal(err)
	}
	if got := e.CachedIndexes(); got != 2 {
		t.Fatalf("CachedIndexes after re-prepare = %d, want 2", got)
	}
}

// TestExecuteLimitParallelWorkers: the limit prefix is preserved when
// the Minesweeper engine runs range-parallel.
func TestExecuteLimitParallelWorkers(t *testing.T) {
	q := streamQuery(t, 23)
	gao, _ := q.RecommendGAO()
	full, err := Execute(q, &Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) < 4 {
		t.Fatalf("want ≥4 tuples, got %d", len(full.Tuples))
	}
	k := len(full.Tuples) / 2
	res, err := ExecuteLimit(q, &Options{GAO: gao, Workers: 3}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, full.Tuples[:k]) {
		t.Fatalf("parallel limit prefix diverges:\ngot  %v\nwant %v", res.Tuples, full.Tuples[:k])
	}
}

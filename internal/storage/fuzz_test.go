package storage

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the record reader: it must
// never panic, and every record it does accept must survive an
// encode/decode round trip unchanged (the CRC recomputation proves the
// accepted record is internally consistent).
func FuzzWALRecord(f *testing.F) {
	seeds := []*Record{
		{Op: OpCreate, Name: "R", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {3, 4}}},
		{Op: OpInsert, Name: "R", Epoch: 7, Tuples: [][]int{{10, 20}}},
		{Op: OpDelete, Name: "S", Epoch: 1, Tuples: [][]int{{5}}},
		{Op: OpReplace, Name: "S", Epoch: 2, Vars: []string{"X"}, Tuples: nil},
		{Op: OpDrop, Name: "T", Epoch: 3},
		{Op: OpPutQuery, Name: "q", Query: &QueryDef{Name: "q", Query: "R(A,B)", Workers: 2}},
		{Op: OpDropQuery, Name: "q"},
	}
	for _, rec := range seeds {
		buf, err := encodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte("#!ms insert R 0 1 00000000\n1 2\n"))
	f.Add([]byte("# comment\n\n#!ms drop R 5 0 deadbeef\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rr := newRecordReader(bytes.NewReader(data), "fuzz")
		for {
			rec, err := rr.Read()
			if err != nil {
				// Any error is acceptable; the reader just must not
				// panic or loop forever.
				if err != io.EOF && err != errUnterminated {
					if _, ok := err.(*recordError); !ok {
						t.Fatalf("unexpected error type %T: %v", err, err)
					}
				}
				return
			}
			// Accepted records must round-trip.
			buf, err := encodeRecord(nil, rec)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v (%+v)", err, rec)
			}
			again, err := newRecordReader(bytes.NewReader(buf), "fuzz2").Read()
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v\n%s", err, buf)
			}
			if again.Op != rec.Op || again.Name != rec.Name || again.Epoch != rec.Epoch ||
				!reflect.DeepEqual(again.Vars, rec.Vars) ||
				(len(again.Tuples)+len(rec.Tuples) > 0 && !reflect.DeepEqual(again.Tuples, rec.Tuples)) {
				t.Fatalf("round trip changed the record:\nfirst:  %+v\nsecond: %+v", rec, again)
			}
		}
	})
}

package engine

import (
	"context"
	"sort"

	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// AggOp selects a streaming aggregate function.
type AggOp int

const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggCountDistinct
)

// Aggregate is one aggregate output column: the operation applied to the
// value at one GAO position of each raw join tuple (Col < 0 for
// COUNT(*), which needs no column).
type Aggregate struct {
	Op  AggOp
	Col int
}

// Shape is the query-shaping plan the adapter applies on top of an
// engine's raw GAO-ordered emissions: per-position bound filtering (a
// safety net behind the engines' own pushdown), column projection with
// optional set-semantics dedup, and grouped streaming aggregation. All
// five engines run through the same adapter, so selection, projection
// and aggregation semantics are engine-independent by construction.
type Shape struct {
	// Cols are the projected GAO positions in presentation order. The
	// shaped tuple i-th column is rawTuple[Cols[i]].
	Cols []int
	// Distinct dedups projected tuples. Set when the projection drops a
	// (non-constant) GAO column, so the set semantics of the join result
	// survive projection.
	Distinct bool
	// Aggregates, when non-empty, turn the run into a grouped
	// aggregation: raw tuples are folded into one group per distinct
	// Cols-projection, and the shaped output is one row per non-empty
	// group — the group key followed by one value per aggregate — sorted
	// by group key. No raw tuples are materialized.
	Aggregates []Aggregate
	// Bounds filters raw tuples per GAO position (nil = unbounded). The
	// engines already push the same bounds into their search, so for
	// them this check never fires; it is the uniform-semantics guarantee
	// for any engine whose pushdown is partial.
	Bounds []core.Bound
	// Empty marks a contradictory selection (some bound allows no
	// value): the run emits nothing and skips evaluation entirely.
	Empty bool
}

// Identity reports whether the shape changes nothing about the raw
// emission (nil receiver included): engines can then stream straight to
// the caller.
func (sh *Shape) Identity() bool {
	if sh == nil {
		return true
	}
	if sh.Empty || sh.Distinct || len(sh.Aggregates) > 0 || sh.Bounds != nil {
		return false
	}
	if sh.Cols == nil {
		return true
	}
	for i, c := range sh.Cols {
		if c != i {
			return false
		}
	}
	return true
}

// inBounds reports whether the raw tuple satisfies every per-position
// bound.
func (sh *Shape) inBounds(t []int) bool {
	for i, b := range sh.Bounds {
		if !b.Contains(t[i]) {
			return false
		}
	}
	return true
}

// appendKey renders the projected columns of t as a byte key for group
// and dedup maps. Domain values fit in 8 bytes; fixed-width encoding
// keeps distinct tuples at distinct keys.
func appendKey(buf []byte, t []int, cols []int) []byte {
	for _, c := range cols {
		v := t[c]
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(uint64(v)>>uint(s)))
		}
	}
	return buf
}

// aggState is the running state of one aggregate in one group.
type aggState struct {
	count    int64
	sum      int64
	min, max int
	distinct map[int]struct{}
}

// group is one aggregation group: its key values plus one state per
// aggregate.
type group struct {
	key  []int
	aggs []aggState
}

// RunShaped evaluates the problem through run and streams the shaped
// output to emit. For plain (non-aggregate) shapes, shaped tuples are
// emitted in the engines' GAO-lexicographic discovery order — identical
// across engines — with fresh slices the callback may retain; emit
// returning false stops the run. For aggregate shapes the evaluation
// runs to completion first (aggregation needs every raw tuple), then
// the group rows stream sorted by group key. stats counts the raw run:
// stats.Outputs is the number of raw join tuples the engine emitted,
// which may exceed the shaped rows delivered.
func RunShaped(ctx context.Context, run RunFunc, p *core.Problem, sh *Shape, stats *certificate.Stats, emit func([]int) bool) error {
	if sh.Identity() {
		return run(ctx, p, stats, emit)
	}
	if sh.Empty {
		return nil
	}
	if len(sh.Aggregates) > 0 {
		return runAggregated(ctx, run, p, sh, stats, emit)
	}
	var seen map[string]struct{}
	if sh.Distinct {
		seen = map[string]struct{}{}
	}
	var keyBuf []byte
	return run(ctx, p, stats, func(t []int) bool {
		if sh.Bounds != nil && !sh.inBounds(t) {
			return true
		}
		if seen != nil {
			keyBuf = appendKey(keyBuf[:0], t, sh.Cols)
			if _, dup := seen[string(keyBuf)]; dup {
				return true
			}
			seen[string(keyBuf)] = struct{}{}
		}
		out := make([]int, len(sh.Cols))
		for i, c := range sh.Cols {
			out[i] = t[c]
		}
		return emit(out)
	})
}

// runAggregated folds the raw emission into per-group aggregate states
// and emits one row per non-empty group, sorted by group key.
func runAggregated(ctx context.Context, run RunFunc, p *core.Problem, sh *Shape, stats *certificate.Stats, emit func([]int) bool) error {
	groups := map[string]*group{}
	var keyBuf []byte
	err := run(ctx, p, stats, func(t []int) bool {
		if sh.Bounds != nil && !sh.inBounds(t) {
			return true
		}
		keyBuf = appendKey(keyBuf[:0], t, sh.Cols)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{key: make([]int, len(sh.Cols)), aggs: make([]aggState, len(sh.Aggregates))}
			for i, c := range sh.Cols {
				g.key[i] = t[c]
			}
			groups[string(keyBuf)] = g
		}
		for i, a := range sh.Aggregates {
			st := &g.aggs[i]
			v := 0
			if a.Col >= 0 {
				v = t[a.Col]
			}
			switch a.Op {
			case AggCount:
				st.count++
			case AggSum:
				st.sum += int64(v)
			case AggMin:
				if st.count == 0 || v < st.min {
					st.min = v
				}
				st.count++
			case AggMax:
				if st.count == 0 || v > st.max {
					st.max = v
				}
				st.count++
			case AggCountDistinct:
				if st.distinct == nil {
					st.distinct = map[int]struct{}{}
				}
				st.distinct[v] = struct{}{}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	rows := make([]*group, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, g)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].key, rows[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, g := range rows {
		out := make([]int, 0, len(g.key)+len(sh.Aggregates))
		out = append(out, g.key...)
		for i, a := range sh.Aggregates {
			st := &g.aggs[i]
			switch a.Op {
			case AggCount:
				out = append(out, int(st.count))
			case AggSum:
				out = append(out, int(st.sum))
			case AggMin:
				out = append(out, st.min)
			case AggMax:
				out = append(out, st.max)
			case AggCountDistinct:
				out = append(out, len(st.distinct))
			}
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

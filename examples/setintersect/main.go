// Adaptive set intersection (Appendix H): Minesweeper's intersection
// runs in time proportional to the instance's certificate, not its size.
// Document-search engines intersect posting lists exactly like this:
// when the lists barely overlap, the algorithm gallops over huge ranges.
//
//	go run ./examples/setintersect
package main

import (
	"fmt"
	"log"

	"minesweeper"
)

func main() {
	const n = 100000

	// Posting lists for three "terms". Term A appears in documents
	// 0..n-1, term B in n..2n-1 (disjoint eras), term C everywhere.
	listA := make([]int, n)
	listB := make([]int, n)
	listC := make([]int, 2*n)
	for i := 0; i < n; i++ {
		listA[i] = i
		listB[i] = n + i
	}
	for i := range listC {
		listC[i] = i
	}

	// Disjoint lists: certificate is a single comparison.
	out, stats, err := minesweeper.Intersect(listA, listB, listC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disjoint eras:   |result| = %d, probes = %d, findgaps = %d  (N = %d)\n",
		len(out), stats.ProbePoints, stats.FindGaps, 4*n)

	// Overlapping block: certificate still tiny.
	shifted := make([]int, n)
	for i := range shifted {
		shifted[i] = n/2 + i // overlaps listA on [n/2, n)
	}
	out, stats, err = minesweeper.Intersect(listA, shifted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("half overlap:    |result| = %d, probes = %d, findgaps = %d\n",
		len(out), stats.ProbePoints, stats.FindGaps)

	// Fully interleaved lists: the certificate is Θ(N) — no algorithm in
	// the comparison model can do better than linear here.
	evens := make([]int, n)
	odds := make([]int, n)
	for i := 0; i < n; i++ {
		evens[i] = 2 * i
		odds[i] = 2*i + 1
	}
	out, stats, err = minesweeper.Intersect(evens, odds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved:     |result| = %d, probes = %d, findgaps = %d\n",
		len(out), stats.ProbePoints, stats.FindGaps)

	fmt.Println("\nProbe counts track the certificate (instance difficulty), not N:")
	fmt.Println("disjoint O(1), half-overlap O(Z), interleaved Θ(N) — Theorem H.4.")
}

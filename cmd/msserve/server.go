package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper"
	"minesweeper/internal/catalog"
	"minesweeper/internal/certificate"
	"minesweeper/internal/shard"
	"minesweeper/internal/storage"
)

// serverConfig is the resilience tuning for one server: admission
// caps, the default server-side run deadline, and the degraded-mode
// reopen policy.
type serverConfig struct {
	// maxRuns / maxMutations cap concurrent query executions and
	// catalog mutations; <= 0 means unlimited. queueDepth is how many
	// requests may wait for a slot beyond the cap before new arrivals
	// are shed with 429 + Retry-After.
	maxRuns      int
	maxMutations int
	queueDepth   int
	// runTimeout is the server-side deadline applied to every run: a
	// client timeout longer than it (or absent) is clamped down to it.
	// Zero disables the default deadline.
	runTimeout time.Duration
	// reopenTargets, when set, enumerates the store's currently
	// degraded units — one per down replica for a sharded store, a
	// single entry for a plain catalog — each with its own reopen
	// closure. The background loop retries every listed target on an
	// independent capped-exponential schedule (reopenBase doubling up
	// to reopenMax), so one stubbornly failing replica never delays
	// the recovery of the others.
	reopenTargets func() []reopenTarget
	reopenBase    time.Duration
	reopenMax     time.Duration
	// reopenPoll is the idle re-scan cadence of the reopen loop:
	// degradations detected out-of-band (a substream health probe, an
	// injected fault with no mutation behind it) have no 503 to ring
	// degradedCh, so the loop re-enumerates targets at this interval
	// too.
	reopenPoll time.Duration
	// emitHook is a test seam invoked with each output tuple before it
	// is written to the stream (nil in production).
	emitHook func([]int)
}

func defaultServerConfig() serverConfig {
	n := runtime.GOMAXPROCS(0)
	return serverConfig{
		maxRuns:      4 * n,
		maxMutations: 2 * n,
		queueDepth:   8 * n,
		runTimeout:   time.Minute,
		reopenBase:   250 * time.Millisecond,
		reopenMax:    30 * time.Second,
		reopenPoll:   time.Second,
	}
}

// reopenTarget is one independently recoverable storage unit: a down
// replica of a sharded store, or the whole backend of a plain one. The
// key identifies the unit across enumerations so its backoff schedule
// survives re-scans.
type reopenTarget struct {
	key    string
	reopen func() error
}

// server is the msserve HTTP handler: a relation store (plain or
// sharded catalog) plus a registry of named prepared queries and
// aggregate run counters.
type server struct {
	cat store
	mux *http.ServeMux
	cfg serverConfig

	runGate *gate // concurrent query executions
	mutGate *gate // concurrent catalog mutations

	mu      sync.Mutex
	queries map[string]*registeredQuery

	statsMu  sync.Mutex
	agg      certificate.Stats // accumulated across every run
	runs     int64             // completed executions
	served   int64             // tuples written to clients
	expired  int64             // runs cut short by limit/timeout/cancel
	deadline int64             // runs cut by the server-side deadline (504-class)
	canceled int64             // runs cut by the client going away (499-class)
	aborted  int64             // streams force-ended at shutdown drain timeout
	panics   int64             // engine panics converted to errors

	// Active NDJSON streams, so the drain path can end each one with a
	// terminal error record instead of silently truncating it.
	streamMu sync.Mutex
	streams  map[*streamHandle]struct{}

	draining atomic.Bool

	// Degraded-mode reopen machinery (active when cfg.reopen != nil).
	degradedCh     chan struct{}
	done           chan struct{}
	closeOnce      sync.Once
	reopenMu       sync.Mutex
	reopenAttempts int64
	lastReopenErr  string

	// Heap-allocation counters at server start; /stats reports the
	// process-lifetime delta. A single baseline read cannot double-count
	// under concurrent runs the way per-run windows would.
	allocObjs0, allocBytes0 uint64
}

// streamHandle lets the drain path abort one in-flight NDJSON stream
// with a cause its handler turns into a terminal error record.
type streamHandle struct {
	abort context.CancelCauseFunc
}

// errDraining is the cancellation cause used when -drain-timeout
// expires: the handler sees it and writes a terminal error record so
// the client can tell truncation from a complete result set.
var errDraining = errors.New("server draining: drain timeout exceeded")

// registeredQuery is one named query: its textual form, default options,
// and a cache of prepared variants keyed by (engine, workers). The
// variants stay bound across catalog mutations — PreparedQuery re-binds
// itself on epoch changes — so registration is a one-time cost.
type registeredQuery struct {
	name    string
	expr    string
	opts    minesweeper.Options
	q       *minesweeper.Query
	st      store    // prepares variants (scatter plans on a sharded store)
	outVars []string // output column names of the default variant

	mu       sync.Mutex // guards prepared only
	prepared map[string]prepared
	runs     atomic.Int64
}

// defaultVariant returns the prepared query registration built eagerly
// (default engine and workers resolution).
func (rq *registeredQuery) defaultVariant() (prepared, error) {
	eng := rq.opts.Engine
	if eng == minesweeper.EngineAuto {
		eng = minesweeper.EngineMinesweeper
	}
	return rq.variant(eng, rq.opts.Workers)
}

// liveExplain reports the default variant's current plan. Mutations
// re-plan prepared queries transparently, so this is the plan the next
// run will use (refreshed first) — never the stale registration-time
// copy.
func (rq *registeredQuery) liveExplain() (minesweeper.Explain, error) {
	pq, err := rq.defaultVariant()
	if err != nil {
		return minesweeper.Explain{}, err
	}
	if err := pq.Refresh(); err != nil {
		return minesweeper.Explain{}, err
	}
	return pq.Explain(), nil
}

// variant returns the prepared query for the given engine/workers
// combination, preparing and caching it on first use. Workers are
// clamped to GOMAXPROCS on every path — beyond that parallelism buys
// nothing, and the clamp bounds this client-keyed cache.
func (rq *registeredQuery) variant(eng minesweeper.Engine, workers int) (prepared, error) {
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	key := fmt.Sprintf("%s/%d", eng, workers)
	rq.mu.Lock()
	defer rq.mu.Unlock()
	if pq, ok := rq.prepared[key]; ok {
		return pq, nil
	}
	opts := rq.opts
	opts.Engine = eng
	opts.Workers = workers
	pq, err := rq.st.Prepare(rq.q, &opts)
	if err != nil {
		return nil, err
	}
	if rq.prepared == nil {
		rq.prepared = map[string]prepared{}
	}
	rq.prepared[key] = pq
	return pq, nil
}

func newServer(cat store) *server {
	return newServerWith(cat, defaultServerConfig())
}

func newServerWith(cat store, cfg serverConfig) *server {
	s := &server{
		cat: cat, cfg: cfg,
		queries: map[string]*registeredQuery{},
		mux:     http.NewServeMux(),
		runGate: newGate(cfg.maxRuns, cfg.queueDepth),
		mutGate: newGate(cfg.maxMutations, cfg.queueDepth),
		streams: map[*streamHandle]struct{}{},
		done:    make(chan struct{}),
	}
	s.allocObjs0, s.allocBytes0 = readHeapAllocs()
	s.mux.HandleFunc("GET /relations", s.handleListRelations)
	s.mux.HandleFunc("POST /relations", s.admitMutation(s.handleLoadRelation))
	s.mux.HandleFunc("GET /relations/{name}", s.handleDumpRelation)
	s.mux.HandleFunc("DELETE /relations/{name}", s.admitMutation(s.handleDropRelation))
	s.mux.HandleFunc("POST /relations/{name}/insert", s.admitMutation(s.handleMutateRelation))
	s.mux.HandleFunc("POST /relations/{name}/delete", s.admitMutation(s.handleMutateRelation))
	s.mux.HandleFunc("GET /queries", s.handleListQueries)
	s.mux.HandleFunc("POST /queries", s.admitMutation(s.handleRegisterQuery))
	s.mux.HandleFunc("DELETE /queries/{name}", s.admitMutation(s.handleDropQuery))
	s.mux.HandleFunc("GET /queries/{name}/run", s.handleRunQuery)
	s.mux.HandleFunc("POST /query", s.handleAdhocQuery)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.reopenTargets != nil {
		s.degradedCh = make(chan struct{}, 1)
		go s.reopenLoop()
	}
	return s
}

// Close stops the background reopen loop (a no-op when none runs).
func (s *server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// --- admission -------------------------------------------------------

// admitMutation wraps a mutation handler with the mutation gate: over
// capacity + queue depth, the request is shed with 429 + Retry-After
// instead of letting goroutines pile onto the catalog lock.
func (s *server) admitMutation(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.mutGate.acquire(r.Context())
		if err != nil {
			admissionError(w, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// admissionError renders a gate refusal: 429 + Retry-After for a shed
// request, 503 otherwise (the client gave up while queued, so the
// status is mostly moot).
func admissionError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShed) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "%v", err)
}

// --- degraded mode ---------------------------------------------------

// noteDegraded wakes the reopen loop after a mutation hit read-only
// mode.
func (s *server) noteDegraded() {
	if s.degradedCh == nil {
		return
	}
	select {
	case s.degradedCh <- struct{}{}:
	default:
	}
}

// reopenLoop recovers degraded storage units in the background. Every
// wake-up — a 503'd mutation ringing degradedCh, a due retry, or the
// idle poll — re-enumerates cfg.reopenTargets and attempts each due
// target. Each target backs off on its own capped-exponential schedule
// keyed by its identity, so one shard's replica that keeps failing its
// reopen never gates the recovery of the others; a target that
// disappears from the enumeration (recovered out of band, superseded)
// drops its schedule.
func (s *server) reopenLoop() {
	base := s.cfg.reopenBase
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	poll := s.cfg.reopenPoll
	if poll <= 0 {
		poll = time.Second
	}
	type sched struct {
		delay time.Duration
		next  time.Time
	}
	pending := map[string]*sched{}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.degradedCh:
		case <-timer.C:
		}
		seen := map[string]bool{}
		now := time.Now()
		for _, t := range s.cfg.reopenTargets() {
			seen[t.key] = true
			sc := pending[t.key]
			if sc == nil {
				sc = &sched{delay: base}
				pending[t.key] = sc
			}
			if now.Before(sc.next) {
				continue
			}
			err := t.reopen()
			s.reopenMu.Lock()
			s.reopenAttempts++
			if err != nil {
				s.lastReopenErr = err.Error()
			} else {
				s.lastReopenErr = ""
			}
			s.reopenMu.Unlock()
			if err == nil {
				log.Printf("storage %s reopened", t.key)
				delete(pending, t.key)
				continue
			}
			log.Printf("storage %s reopen failed (next try in %s): %v", t.key, sc.delay, err)
			sc.next = now.Add(sc.delay)
			if sc.delay *= 2; s.cfg.reopenMax > 0 && sc.delay > s.cfg.reopenMax {
				sc.delay = s.cfg.reopenMax
			}
		}
		for key := range pending {
			if !seen[key] {
				delete(pending, key)
			}
		}
		// Sleep until the earliest scheduled retry, or the idle poll.
		wake := poll
		for _, sc := range pending {
			if d := time.Until(sc.next); d < wake {
				wake = d
			}
		}
		if wake < time.Millisecond {
			wake = time.Millisecond
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wake)
	}
}

// mutationStatus maps a catalog mutation error to its HTTP status,
// flagging degradation for the reopen loop on the way.
func (s *server) mutationStatus(err error) int {
	if errors.Is(err, catalog.ErrReadOnly) {
		s.noteDegraded()
		return http.StatusServiceUnavailable
	}
	if strings.Contains(err.Error(), "unknown relation") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// --- streams ---------------------------------------------------------

func (s *server) addStream(h *streamHandle) {
	s.streamMu.Lock()
	s.streams[h] = struct{}{}
	s.streamMu.Unlock()
}

func (s *server) removeStream(h *streamHandle) {
	s.streamMu.Lock()
	delete(s.streams, h)
	s.streamMu.Unlock()
}

// abortStreams force-ends every in-flight NDJSON stream with the
// errDraining cause; each handler writes a terminal error record and
// returns, letting a stuck Shutdown complete. Returns how many streams
// were aborted.
func (s *server) abortStreams() int {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for h := range s.streams {
		h.abort(errDraining)
	}
	return len(s.streams)
}

// --- health ----------------------------------------------------------

// handleHealthz is the liveness probe: the process is up and the
// handler runs. Degraded storage does not make the process unhealthy —
// that is /readyz's job.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz is the readiness probe: recovery is complete (the
// server would not be serving otherwise), the storage backend is
// healthy, and the server is not draining. Not-ready is 503, so a load
// balancer stops routing mutations here while queries stay available
// to clients that still ask.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if err := s.cat.Degraded(); err != nil {
		w.Header().Set("Retry-After", "1")
		body := map[string]any{
			"ready": false, "reason": "storage degraded: read-only", "error": err.Error(),
		}
		if sh := s.shardStats(); sh != nil {
			// Per-shard detail: which fragment owners are poisoned and
			// which are still healthy (reads keep serving from all).
			body["shards"] = shardHealth(sh)
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body := map[string]any{"ready": true}
	if sh := s.shardStats(); sh != nil {
		body["shards"] = shardHealth(sh)
	}
	writeJSON(w, http.StatusOK, body)
}

// shardStats returns the per-shard telemetry when the store is sharded,
// nil otherwise.
func (s *server) shardStats() []shard.ShardStat {
	if ss, ok := s.cat.(interface{ ShardStats() []shard.ShardStat }); ok {
		return ss.ShardStats()
	}
	return nil
}

// shardHealth summarizes shard readiness for /readyz: a shard is ready
// while any replica is healthy, and each replica reports its own state
// (so an operator sees which copy a failover abandoned).
func shardHealth(stats []shard.ShardStat) []map[string]any {
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		h := map[string]any{"shard": st.Shard, "ready": st.Degraded == "", "primary": st.Primary}
		if st.Degraded != "" {
			h["error"] = st.Degraded
		}
		if len(st.Replicas) > 0 {
			reps := make([]map[string]any, len(st.Replicas))
			for j, r := range st.Replicas {
				rh := map[string]any{"replica": r.Replica, "ready": r.Down == "", "primary": r.Primary}
				if r.Down != "" {
					rh["error"] = r.Down
				}
				reps[j] = rh
			}
			h["replicas"] = reps
		}
		out[i] = h
	}
	return out
}

// Request-body caps: relio uploads may be bulk data, everything else is
// small JSON. MaxBytesReader turns an oversized body into a clean read
// error instead of letting one request grow server memory unboundedly.
const (
	maxUploadBody = 256 << 20 // POST /relations
	maxJSONBody   = 16 << 20  // mutation and query bodies
)

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		limit := int64(maxJSONBody)
		if r.Method == http.MethodPost && r.URL.Path == "/relations" {
			limit = maxUploadBody
		}
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	s.mux.ServeHTTP(w, r)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// --- relations -------------------------------------------------------

func (s *server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cat.Relations())
}

// handleLoadRelation accepts a relio-format body and creates the named
// relation (or replaces an existing one of the same arity).
func (s *server) handleLoadRelation(w http.ResponseWriter, r *http.Request) {
	info, err := s.cat.Load(r.Body, "request body")
	if err != nil {
		if errors.Is(err, catalog.ErrReadOnly) {
			s.noteDegraded()
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleDumpRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.cat.Dump(w, name); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
	}
}

func (s *server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	if err := s.cat.Drop(r.PathValue("name")); err != nil {
		status := http.StatusNotFound
		if errors.Is(err, catalog.ErrReadOnly) {
			s.noteDegraded()
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"dropped": true})
}

// handleMutateRelation serves both /insert and /delete: the JSON body
// carries the tuples, the path's last element picks the mutation. The
// catalog mutators return the post-mutation state atomically, so the
// reported epoch/tuple count are exactly what this request produced.
func (s *server) handleMutateRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body struct {
		Tuples [][]int `json:"tuples"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	deleting := r.URL.Path[len(r.URL.Path)-len("/delete"):] == "/delete"
	if deleting {
		n, info, err := s.cat.Delete(name, body.Tuples...)
		if err != nil {
			httpError(w, s.mutationStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": n, "epoch": info.Epoch, "tuples": info.Tuples})
		return
	}
	info, err := s.cat.Insert(name, body.Tuples...)
	if err != nil {
		httpError(w, s.mutationStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"inserted": len(body.Tuples), "epoch": info.Epoch, "tuples": info.Tuples})
}

// --- queries ---------------------------------------------------------

// querySpec is the JSON body of POST /queries and POST /query. The
// query expression itself may carry select/where clauses ("R(x, 7),
// S(x, y) select x, count(*) where y < 100"); the optional Select and
// Where fields take the same clause syntax and override the expression's
// clauses when set.
type querySpec struct {
	Name    string   `json:"name,omitempty"`
	Query   string   `json:"query"`
	Engine  string   `json:"engine,omitempty"`
	GAO     []string `json:"gao,omitempty"`
	Workers int      `json:"workers,omitempty"`
	// Domain selects the dictionary domain ordering: "natural" (default,
	// order-preserving rank codes) or "freq" (frequency-permuted codes
	// on skewed attributes). The register/list responses' explain block
	// reports the ordering actually applied per attribute (dict_orders).
	Domain string `json:"domain,omitempty"`
	// Select is a projection/aggregate list, e.g. "x, count(*), sum(y)".
	Select string `json:"select,omitempty"`
	// Where is a filter list, e.g. "x < 100 and y >= 3".
	Where string `json:"where,omitempty"`
	// Limit and Timeout apply to ad-hoc POST /query runs; registered
	// queries take them per run as URL parameters. A negative limit
	// means unlimited, like limit 0.
	Limit   int    `json:"limit,omitempty"`
	Timeout string `json:"timeout,omitempty"`
}

// def renders the spec as the durable prepared-query definition: the
// textual query plus the registration options, exactly what recovery
// needs to re-register and re-plan it.
func (spec *querySpec) def() storage.QueryDef {
	return storage.QueryDef{
		Name:    spec.Name,
		Query:   spec.Query,
		Engine:  spec.Engine,
		GAO:     spec.GAO,
		Workers: spec.Workers,
		Domain:  spec.Domain,
		Select:  spec.Select,
		Where:   spec.Where,
	}
}

// specFromDef is the inverse of querySpec.def, used at recovery.
func specFromDef(def storage.QueryDef) *querySpec {
	return &querySpec{
		Name:    def.Name,
		Query:   def.Query,
		Engine:  def.Engine,
		GAO:     def.GAO,
		Workers: def.Workers,
		Domain:  def.Domain,
		Select:  def.Select,
		Where:   def.Where,
	}
}

// restoreQueries re-registers every prepared-query definition the
// catalog recovered, re-planning each against the recovered data (the
// eager default-variant Prepare inside buildQuery). A definition that
// no longer builds — its relation was dropped after registration and
// never recreated — is skipped and reported rather than keeping the
// whole server from booting; its definition stays in the catalog.
func (s *server) restoreQueries() (restored int, failed []error) {
	for _, def := range s.cat.QueryDefs() {
		rq, err := s.buildQuery(specFromDef(def))
		if err != nil {
			failed = append(failed, fmt.Errorf("query %q: %w", def.Name, err))
			continue
		}
		s.mu.Lock()
		s.queries[def.Name] = rq
		s.mu.Unlock()
		restored++
	}
	return restored, failed
}

// buildQuery parses and validates a spec against the catalog.
func (s *server) buildQuery(spec *querySpec) (*registeredQuery, error) {
	if spec.Query == "" {
		return nil, fmt.Errorf("missing query expression")
	}
	eng, err := minesweeper.ParseEngine(spec.Engine)
	if err != nil {
		return nil, err
	}
	q, err := s.cat.Query(spec.Query)
	if err != nil {
		return nil, err
	}
	domain, err := minesweeper.ParseDomainOrder(spec.Domain)
	if err != nil {
		return nil, err
	}
	opts := minesweeper.Options{Engine: eng, GAO: spec.GAO, Workers: spec.Workers, Domain: domain}
	if spec.Select != "" {
		sel, aggs, err := minesweeper.ParseSelect(spec.Select)
		if err != nil {
			return nil, err
		}
		opts.Select = sel
		opts.Aggregates = aggs
	}
	if spec.Where != "" {
		where, err := minesweeper.ParseWhere(spec.Where)
		if err != nil {
			return nil, err
		}
		opts.Where = where
	}
	rq := &registeredQuery{
		name: spec.Name,
		expr: spec.Query,
		q:    q,
		st:   s.cat,
		opts: opts,
	}
	// Prepare the default variant eagerly so registration surfaces GAO,
	// clause and engine errors immediately.
	resolved := eng
	if resolved == minesweeper.EngineAuto {
		resolved = minesweeper.EngineMinesweeper
	}
	pq, err := rq.variant(resolved, spec.Workers)
	if err != nil {
		return nil, err
	}
	rq.outVars = pq.OutputVars()
	return rq, nil
}

func (s *server) handleRegisterQuery(w http.ResponseWriter, r *http.Request) {
	var spec querySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	if spec.Name == "" {
		httpError(w, http.StatusBadRequest, "missing query name")
		return
	}
	rq, err := s.buildQuery(&spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	_, dup := s.queries[spec.Name]
	if !dup {
		s.queries[spec.Name] = rq
	}
	s.mu.Unlock()
	if dup {
		httpError(w, http.StatusConflict, "query %q already registered", spec.Name)
		return
	}
	// Persist the definition so recovery re-registers it. On failure the
	// registration is rolled back: a query that exists in memory but not
	// in the log would silently vanish at the next restart.
	if err := s.cat.PutQueryDef(spec.def()); err != nil {
		s.mu.Lock()
		delete(s.queries, spec.Name)
		s.mu.Unlock()
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrReadOnly) {
			s.noteDegraded()
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "persisting query %q: %v", spec.Name, err)
		return
	}
	explain, err := rq.liveExplain()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": spec.Name, "vars": rq.outVars, "explain": explain})
}

func (s *server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	type queryInfo struct {
		Name    string              `json:"name"`
		Query   string              `json:"query"`
		Engine  string              `json:"engine"`
		GAO     []string            `json:"gao,omitempty"`
		Workers int                 `json:"workers,omitempty"`
		Runs    int64               `json:"runs"`
		Explain minesweeper.Explain `json:"explain"`
	}
	s.mu.Lock()
	queries := make(map[string]*registeredQuery, len(s.queries))
	for name, rq := range s.queries {
		queries[name] = rq
	}
	s.mu.Unlock()
	out := make([]queryInfo, 0, len(queries))
	for name, rq := range queries {
		// Live plan, refreshed against the current data — a mutation
		// re-plans prepared queries, and the listing must agree with
		// what the next run's stream header will say. Computed outside
		// s.mu: Refresh can rebuild indexes.
		explain, err := rq.liveExplain()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "query %q: %v", name, err)
			return
		}
		out = append(out, queryInfo{
			Name: name, Query: rq.expr, Engine: rq.opts.Engine.String(),
			GAO: rq.opts.GAO, Workers: rq.opts.Workers, Runs: rq.runs.Load(),
			Explain: explain,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleDropQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	if err := s.cat.DropQueryDef(name); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrReadOnly) {
			s.noteDegraded()
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "unpersisting query %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"dropped": true})
}

// runParams are the per-run knobs, from URL parameters (registered
// queries) or the spec body (ad-hoc queries).
type runParams struct {
	limit   int
	timeout time.Duration
	engine  string // "" = query default
	workers int    // <0 = query default
}

func parseRunParams(r *http.Request) (runParams, error) {
	p := runParams{workers: -1}
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, fmt.Errorf("bad limit %q", v)
		}
		if n < 0 {
			n = 0 // negative means unlimited, like the library's ExecuteLimit
		}
		p.limit = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return p, fmt.Errorf("bad timeout %q", v)
		}
		p.timeout = d
	}
	p.engine = q.Get("engine")
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad workers %q", v)
		}
		p.workers = n
	}
	return p, nil
}

func (s *server) handleRunQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	rq, ok := s.queries[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	params, err := parseRunParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.streamRun(w, r, rq, params)
}

func (s *server) handleAdhocQuery(w http.ResponseWriter, r *http.Request) {
	var spec querySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	rq, err := s.buildQuery(&spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	params := runParams{limit: spec.Limit, workers: -1}
	if params.limit < 0 {
		params.limit = 0 // negative means unlimited
	}
	if spec.Timeout != "" {
		d, err := time.ParseDuration(spec.Timeout)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q", spec.Timeout)
			return
		}
		params.timeout = d
	}
	s.streamRun(w, r, rq, params)
}

// streamRun executes one query run and streams the result as NDJSON:
// a header line {"vars":…,"engine":…,"gao":…}, one JSON array per
// output tuple, and a footer line {"done":true,…} with the run's stats.
// Timeouts and client disconnects end the stream early with the tuples
// already emitted — the anytime contract of the streaming executor —
// and the footer reports the cut ("timed_out", "canceled", "aborted"
// or "error").
//
// The 200 status and NDJSON header are written lazily, at the first
// output tuple (or at successful completion): a run that dies before
// producing anything gets a real HTTP status instead of a 200 with a
// bare error footer — 504 when the server-side deadline expired, 499
// when the client went away, 503 at shutdown, 500 for an engine panic.
// Once tuples are on the wire the status is fixed, and the outcome
// rides in the terminal footer record instead.
//
// The engine executes behind a recover boundary: a panicking query
// becomes a 500 (or a terminal error record mid-stream) and a /stats
// counter bump, never a dead process. The parallel drivers recover
// their worker goroutines into errors themselves, so this boundary
// completes the isolation for every engine path.
func (s *server) streamRun(w http.ResponseWriter, r *http.Request, rq *registeredQuery, params runParams) {
	release, err := s.runGate.acquire(r.Context())
	if err != nil {
		admissionError(w, err)
		return
	}
	defer release()

	// A query holds its relations by pointer, so it survives a catalog
	// Drop — but serving from a dropped (or dropped-and-recreated)
	// relation would silently return stale data forever. Refuse instead:
	// the caller must re-register against the current catalog.
	for _, rel := range rq.q.Relations() {
		if cur, ok := s.cat.Get(rel.Name()); !ok || cur != rel {
			httpError(w, http.StatusGone, "relation %q was dropped or replaced since the query was built; re-register it", rel.Name())
			return
		}
	}
	eng := rq.opts.Engine
	if params.engine != "" {
		e, err := minesweeper.ParseEngine(params.engine)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		eng = e
	}
	if eng == minesweeper.EngineAuto {
		eng = minesweeper.EngineMinesweeper
	}
	workers := rq.opts.Workers
	if params.workers >= 0 {
		workers = params.workers
	}
	pq, err := rq.variant(eng, workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Refresh before the response status goes out: a mutation since the
	// last run may re-plan, and a re-plan failure (e.g. a relation
	// emptied into an invalid state) should surface as a clean 400
	// here, while the HTTP status can still carry it.
	if err := pq.Refresh(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Server-side deadline: the client's timeout applies when it is
	// tighter than -run-timeout; absent or looser, the server's own
	// deadline clamps the run so a stuck query cannot hold a slot
	// forever.
	ctx := r.Context()
	timeout := params.timeout
	if s.cfg.runTimeout > 0 && (timeout <= 0 || timeout > s.cfg.runTimeout) {
		timeout = s.cfg.runTimeout
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// Registered with the drain path, which aborts straggler streams
	// with errDraining as the cause so they end with a terminal error
	// record instead of just stopping mid-stream.
	ctx, abortCause := context.WithCancelCause(ctx)
	defer abortCause(nil)
	h := &streamHandle{abort: abortCause}
	s.addStream(h)
	defer s.removeStream(h)

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// "vars" is the column order of the tuple lines (projection or
	// first-appearance order); "gao" is the evaluation order the stream
	// is sorted by. They are distinct invariants — see Result.Vars/GAO.
	// The header is written from the run's own pinned plan (the plan
	// callback fires after any transparent re-plan, before the first
	// tuple), so "gao" always names the order the stream is actually
	// sorted by, even when a mutation races the run.
	var headerExplain minesweeper.Explain
	started := false
	start := func() {
		if started {
			return
		}
		started = true
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc.Encode(map[string]any{"vars": pq.OutputVars(), "engine": pq.Engine().String(), "gao": headerExplain.GAO})
		flush()
	}

	// Tuples are encoded by hand into one per-stream scratch buffer —
	// a JSON array of ints needs no escaping or reflection — so the
	// emit path writes each line with zero allocations instead of
	// paying json.Encoder's per-Encode marshalling.
	line := make([]byte, 0, 64)
	count := 0
	panicked := false
	stats, runErr := func() (st minesweeper.Stats, err error) {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				log.Printf("recovered engine panic serving %q: %v\n%s", rq.expr, p, debug.Stack())
				err = fmt.Errorf("engine panic: %v", p)
			}
		}()
		return pq.StreamContextExplained(ctx, func(ex minesweeper.Explain) { headerExplain = ex }, func(t []int) bool {
			if s.cfg.emitHook != nil {
				s.cfg.emitHook(t)
			}
			start()
			line = appendTupleLine(line[:0], t)
			w.Write(line)
			flush()
			count++
			return params.limit <= 0 || count < params.limit
		})
	}()

	// Classify the outcome. A DeadlineExceeded can only come from the
	// run's own timer (server deadline or the client's requested
	// timeout — both enforced server-side); a Canceled is the client
	// going away, unless the drain path set errDraining as the cause.
	drained := errors.Is(context.Cause(ctx), errDraining)
	timedOut := !drained && errors.Is(runErr, context.DeadlineExceeded)
	clientGone := !drained && !timedOut && errors.Is(runErr, context.Canceled)

	if !started && runErr != nil {
		// Nothing on the wire yet: the outcome can be a real status.
		switch {
		case timedOut:
			httpError(w, http.StatusGatewayTimeout, "server-side deadline exceeded after %s", timeout)
		case drained:
			httpError(w, http.StatusServiceUnavailable, "%v", errDraining)
		case clientGone:
			httpError(w, 499, "client closed request") // nothing will read this; the status keeps logs honest
		default: // engine panic or any other execution error
			httpError(w, http.StatusInternalServerError, "%v", runErr)
		}
	} else {
		start() // successful empty result: header still goes out
		footer := map[string]any{
			"done":      true,
			"tuples":    count,
			"limited":   params.limit > 0 && count >= params.limit,
			"timed_out": timedOut,
			"stats":     &stats,
		}
		if drained {
			footer["aborted"] = true
			footer["error"] = errDraining.Error()
		}
		if clientGone {
			footer["canceled"] = true
		}
		if runErr != nil && !timedOut && !drained && !clientGone {
			footer["error"] = runErr.Error()
		}
		enc.Encode(footer)
		flush()
	}

	rq.runs.Add(1)
	s.statsMu.Lock()
	s.agg.Add(&stats)
	s.runs++
	s.served += int64(count)
	if runErr != nil || (params.limit > 0 && count >= params.limit) {
		s.expired++
	}
	switch {
	case timedOut:
		s.deadline++
	case clientGone:
		s.canceled++
	case drained:
		s.aborted++
	}
	if panicked {
		s.panics++
	}
	s.statsMu.Unlock()
}

// appendTupleLine renders one output tuple as a JSON array line.
func appendTupleLine(buf []byte, t []int) []byte {
	buf = append(buf, '[')
	for i, v := range t {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return append(buf, ']', '\n')
}

// allocSamples names the runtime/metrics series behind the /stats
// allocation counters.
var allocSamples = []metrics.Sample{
	{Name: "/gc/heap/allocs:objects"},
	{Name: "/gc/heap/allocs:bytes"},
}

// readHeapAllocs returns the process-lifetime heap allocation counters.
// Deltas across a run are a best-effort allocs/op-style measure: they
// include whatever else the process did meanwhile (concurrent runs,
// GC bookkeeping), which is exactly the server-wide view /stats wants.
func readHeapAllocs() (objects, bytes uint64) {
	// Stack-local sample array: the measurement itself must not land in
	// the allocation window it reports on.
	var s [2]metrics.Sample
	copy(s[:], allocSamples)
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// --- stats -----------------------------------------------------------

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nq := len(s.queries)
	s.mu.Unlock()
	allocObjs, allocBytes := readHeapAllocs()
	s.statsMu.Lock()
	// Server-lifetime allocation counters: one delta against the
	// start-of-process baseline, so concurrent runs are never
	// double-counted. The totals include the server's own HTTP/catalog
	// work — they are an allocs/op-style health signal, not an exact
	// per-query attribution.
	allocObjs -= s.allocObjs0
	allocBytes -= s.allocBytes0
	degraded := s.cat.Degraded()
	s.reopenMu.Lock()
	reopenAttempts, lastReopenErr := s.reopenAttempts, s.lastReopenErr
	s.reopenMu.Unlock()
	health := map[string]any{
		"read_only":       degraded != nil,
		"draining":        s.draining.Load(),
		"panics":          s.panics,
		"reopen_attempts": reopenAttempts,
	}
	if degraded != nil {
		health["reason"] = degraded.Error()
	}
	if lastReopenErr != "" {
		health["last_reopen_error"] = lastReopenErr
	}
	body := map[string]any{
		"relations":            s.cat.Len(),
		"queries":              nq,
		"storage":              s.cat.StorageStats(),
		"executions":           s.runs,
		"tuples_served":        s.served,
		"cut_short":            s.expired,
		"deadline_expired":     s.deadline,
		"client_canceled":      s.canceled,
		"aborted_streams":      s.aborted,
		"certificate_estimate": s.agg.CertificateEstimate(),
		"stats":                s.agg,
		"admission": map[string]gateStats{
			"runs":      s.runGate.stats(),
			"mutations": s.mutGate.stats(),
		},
		"health":              health,
		"alloc_objects_total": allocObjs,
		"alloc_bytes_total":   allocBytes,
	}
	// Per-shard scatter counters: runs, inflight and queued substreams
	// (queued > 0 marks a hot shard whose substream outpaces the merge),
	// data volume and per-shard storage health.
	if sh := s.shardStats(); sh != nil {
		body["shards"] = sh
		var retries, panics int64
		for _, st := range sh {
			retries += st.Retries
			panics += st.Panics
		}
		health["substream_retries"] = retries
		health["substream_panics"] = panics
		if fo, ok := s.cat.(interface{ Failovers() int64 }); ok {
			health["failovers"] = fo.Failovers()
		}
	}
	if s.runs > 0 {
		body["alloc_objects_per_run"] = float64(allocObjs) / float64(s.runs)
		body["alloc_bytes_per_run"] = float64(allocBytes) / float64(s.runs)
	}
	if s.served > 0 {
		body["alloc_objects_per_tuple"] = float64(allocObjs) / float64(s.served)
	}
	s.statsMu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

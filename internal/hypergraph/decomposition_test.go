package hypergraph

import (
	"math/rand"
	"testing"
)

func TestDecompositionFromOrderTriangle(t *testing.T) {
	h := New(triangle)
	td, err := h.DecompositionFromOrder([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if td.Width != 2 {
		t.Fatalf("width = %d, want 2", td.Width)
	}
	if err := td.Validate(h); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
}

func TestDecompositionFromOrderPath(t *testing.T) {
	h := New(path5)
	gao := []string{"A1", "A2", "A3", "A4", "A5"}
	td, err := h.DecompositionFromOrder(gao)
	if err != nil {
		t.Fatal(err)
	}
	if td.Width != 1 {
		t.Fatalf("path width = %d, want 1", td.Width)
	}
	if err := td.Validate(h); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Every bag has ≤ 2 vertices.
	for i, bag := range td.Bags {
		if len(bag) > 2 {
			t.Fatalf("bag %d = %v", i, bag)
		}
	}
}

func TestDecompositionWidthMatchesEliminationWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	names := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 60; trial++ {
		var edges [][]string
		ne := 1 + rng.Intn(5)
		for i := 0; i < ne; i++ {
			var e []string
			for _, v := range names {
				if rng.Intn(2) == 0 {
					e = append(e, v)
				}
			}
			if len(e) == 0 {
				e = append(e, names[rng.Intn(len(names))])
			}
			edges = append(edges, e)
		}
		h := New(edges)
		// Random permutation of the hypergraph's vertices.
		gao := append([]string(nil), h.Vertices...)
		rng.Shuffle(len(gao), func(i, j int) { gao[i], gao[j] = gao[j], gao[i] })
		td, err := h.DecompositionFromOrder(gao)
		if err != nil {
			t.Fatal(err)
		}
		w, err := h.EliminationWidth(gao)
		if err != nil {
			t.Fatal(err)
		}
		if td.Width != w {
			t.Fatalf("trial %d: decomposition width %d != elimination width %d (gao %v, edges %v)",
				trial, td.Width, w, gao, edges)
		}
		if err := td.Validate(h); err != nil {
			t.Fatalf("trial %d: %v (gao %v, edges %v)", trial, err, gao, edges)
		}
	}
}

func TestOptimalWidthOrder(t *testing.T) {
	cases := []struct {
		name  string
		edges [][]string
		want  int
	}{
		{"triangle", triangle, 2},
		{"path5", path5, 1},
		{"bowtie", bowtie, 1},
		{"4clique", [][]string{{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}, {"C", "D"}}, 3},
		{"4cycle", [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "A"}}, 2},
		{"single edge", [][]string{{"A", "B", "C"}}, 2},
	}
	for _, c := range cases {
		h := New(c.edges)
		gao, w, err := h.OptimalWidthOrder()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if w != c.want {
			t.Fatalf("%s: treewidth = %d, want %d (order %v)", c.name, w, c.want, gao)
		}
		tw, err := h.Treewidth()
		if err != nil || tw != c.want {
			t.Fatalf("%s: Treewidth = %d, %v", c.name, tw, err)
		}
	}
}

func TestOptimalWidthOrderTooLarge(t *testing.T) {
	var edges [][]string
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J"}
	for i := 0; i < len(names)-1; i++ {
		edges = append(edges, []string{names[i], names[i+1]})
	}
	if _, _, err := New(edges).OptimalWidthOrder(); err == nil {
		t.Fatal("10 vertices must be rejected")
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	names := []string{"A", "B", "C", "D", "E", "F"}
	for trial := 0; trial < 40; trial++ {
		var edges [][]string
		ne := 2 + rng.Intn(5)
		for i := 0; i < ne; i++ {
			var e []string
			for _, v := range names {
				if rng.Intn(3) == 0 {
					e = append(e, v)
				}
			}
			if len(e) == 0 {
				e = append(e, names[rng.Intn(len(names))])
			}
			edges = append(edges, e)
		}
		h := New(edges)
		_, optW, err := h.OptimalWidthOrder()
		if err != nil {
			t.Fatal(err)
		}
		_, greedyW := h.GreedyWidthOrder()
		if greedyW < optW {
			t.Fatalf("trial %d: greedy width %d below optimal %d?!", trial, greedyW, optW)
		}
	}
}

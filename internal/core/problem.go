// Package core implements the Minesweeper join algorithm of the paper:
// the generic outer algorithm (Algorithm 2) driving the constraint data
// structure, plus the specialized instantiations worked out in the
// appendices — m-way set intersection (Algorithm 8, Appendix H), the
// bow-tie query (Algorithm 9, Appendix I) and the triangle query with the
// dyadic-tree CDS (Algorithm 10, Appendix L).
package core

import (
	"fmt"
	"sort"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

// AtomSpec describes one atom of a natural join query: a named relation
// with an attribute list and its tuples (columns parallel to Attrs).
// The same underlying data may appear in several atoms under different
// attribute bindings (self-joins).
type AtomSpec struct {
	Name   string
	Attrs  []string
	Tuples [][]int
}

// Atom is an atom prepared for execution: its index tree is built in
// GAO-consistent column order and Positions maps the tree's levels to
// GAO positions (the paper's function s, strictly increasing).
type Atom struct {
	Name      string
	Tree      *reltree.Tree
	Positions []int
}

// Bound is an inclusive allowed value range for one GAO position — the
// pushed-down form of a constant selection ([v, v]) or a range filter.
// The zero Bound is NOT full; use FullBound.
type Bound struct{ Lo, Hi int }

// FullBound allows the whole tuple domain [0, ordered.PosInf).
func FullBound() Bound { return Bound{0, ordered.PosInf - 1} }

// Full reports whether the bound allows the whole domain.
func (b Bound) Full() bool { return b.Lo <= 0 && b.Hi >= ordered.PosInf-1 }

// Empty reports whether the bound allows no value at all.
func (b Bound) Empty() bool { return b.Lo > b.Hi }

// Contains reports whether v satisfies the bound.
func (b Bound) Contains(v int) bool { return v >= b.Lo && v <= b.Hi }

// Intersect returns the conjunction of two bounds.
func (b Bound) Intersect(o Bound) Bound {
	if o.Lo > b.Lo {
		b.Lo = o.Lo
	}
	if o.Hi < b.Hi {
		b.Hi = o.Hi
	}
	return b
}

// FullBounds reports whether every bound in the slice is full (a nil
// slice is trivially full).
func FullBounds(bounds []Bound) bool {
	for _, b := range bounds {
		if !b.Full() {
			return false
		}
	}
	return true
}

// Problem is a join query bound to a global attribute order, with all
// relations indexed consistently with the GAO (Section 2.1).
type Problem struct {
	GAO   []string
	Atoms []Atom
	// Bounds, when non-nil, restricts each GAO position to an inclusive
	// value range (len(Bounds) == len(GAO)). Every engine honors the
	// bounds: Minesweeper seeds them into the CDS as pre-ruled-out gaps
	// before the first probe, the backtracking engines clamp their
	// per-level searches, and the materializing engines consume
	// bounds-filtered Specs. Out-of-bounds tuples are never emitted.
	Bounds []Bound
	// Debug enables the per-iteration soundness check that each non-output
	// probe point is covered by a freshly inserted constraint (the
	// termination invariant of Theorem 3.2's proof). O(2^n log W) per probe.
	Debug bool
	// DisableBoxes turns off box-constraint emission, restricting the CDS
	// to the paper's per-attribute interval gaps. Exists for the
	// interval-vs-box benchmark comparison; leave false for normal runs.
	DisableBoxes bool
}

// ColumnPlan computes, for an atom with the given attributes under the
// GAO, the sorted GAO positions of its columns (the paper's strictly
// increasing function s) and the source-column permutation that brings
// its tuples into GAO-consistent order. The pair (relation identity,
// perm) keys the index caches: two atoms with the same permutation over
// the same data share one search tree.
func ColumnPlan(gao, attrs []string) (positions, perm []int, err error) {
	pos := make(map[string]int, len(gao))
	for i, a := range gao {
		if _, dup := pos[a]; dup {
			return nil, nil, fmt.Errorf("GAO repeats attribute %q", a)
		}
		pos[a] = i
	}
	if len(attrs) == 0 {
		return nil, nil, fmt.Errorf("atom has no attributes")
	}
	type col struct {
		gaoPos, srcCol int
	}
	seen := map[string]bool{}
	cols := make([]col, 0, len(attrs))
	for j, a := range attrs {
		gp, ok := pos[a]
		if !ok {
			return nil, nil, fmt.Errorf("attribute %q not in GAO", a)
		}
		if seen[a] {
			return nil, nil, fmt.Errorf("atom repeats attribute %q", a)
		}
		seen[a] = true
		cols = append(cols, col{gp, j})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].gaoPos < cols[j].gaoPos })
	positions = make([]int, len(cols))
	perm = make([]int, len(cols))
	for i, c := range cols {
		positions[i] = c.gaoPos
		perm[i] = c.srcCol
	}
	return positions, perm, nil
}

// PermuteTuples applies the column permutation to every tuple, producing
// rows in GAO-consistent order ready for reltree.New.
func PermuteTuples(perm []int, tuples [][]int) ([][]int, error) {
	permuted := make([][]int, len(tuples))
	for i, tup := range tuples {
		if len(tup) != len(perm) {
			return nil, fmt.Errorf("tuple %d has %d values, want %d", i, len(tup), len(perm))
		}
		row := make([]int, len(perm))
		for j, src := range perm {
			row[j] = tup[src]
		}
		permuted[i] = row
	}
	return permuted, nil
}

// BuildAtom indexes one atom for the GAO: it plans the column order,
// permutes the tuples and builds the search tree. This is the only place
// the library constructs indexes; prepared queries call it at most once
// per (relation, column order).
func BuildAtom(gao []string, spec AtomSpec) (Atom, error) {
	positions, perm, err := ColumnPlan(gao, spec.Attrs)
	if err != nil {
		return Atom{}, fmt.Errorf("core: atom %q: %w", spec.Name, err)
	}
	permuted, err := PermuteTuples(perm, spec.Tuples)
	if err != nil {
		return Atom{}, fmt.Errorf("core: atom %q: %w", spec.Name, err)
	}
	tree, err := reltree.New(spec.Name, len(perm), permuted)
	if err != nil {
		return Atom{}, err
	}
	return Atom{Name: spec.Name, Tree: tree, Positions: positions}, nil
}

// NewProblemFromAtoms assembles a problem from already-indexed atoms
// (built by BuildAtom or pulled from an index cache), validating that
// atom names are distinct and that the GAO is covered. No tuples are
// copied, sorted or indexed here.
func NewProblemFromAtoms(gao []string, atoms []Atom) (*Problem, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	covered := make([]bool, len(gao))
	names := map[string]bool{}
	p := &Problem{GAO: gao}
	for _, a := range atoms {
		if names[a.Name] {
			return nil, fmt.Errorf("core: duplicate atom name %q (atom names key the certificate variables)", a.Name)
		}
		names[a.Name] = true
		for _, gp := range a.Positions {
			if gp < 0 || gp >= len(gao) {
				return nil, fmt.Errorf("core: atom %q: position %d out of GAO range", a.Name, gp)
			}
			covered[gp] = true
		}
		p.Atoms = append(p.Atoms, a)
	}
	for i, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: GAO attribute %q appears in no atom", gao[i])
		}
	}
	return p, nil
}

// NewProblem validates the query, permutes every atom's columns into
// GAO-consistent order, and builds the search-tree indexes.
func NewProblem(gao []string, atoms []AtomSpec) (*Problem, error) {
	built := make([]Atom, 0, len(atoms))
	if len(atoms) == 0 {
		return nil, fmt.Errorf("core: query has no atoms")
	}
	for _, spec := range atoms {
		a, err := BuildAtom(gao, spec)
		if err != nil {
			return nil, err
		}
		built = append(built, a)
	}
	return NewProblemFromAtoms(gao, built)
}

// Snapshot returns a per-run copy of the problem whose atom trees are
// shallow clones of the originals. The clones share the immutable index
// nodes, so a snapshot costs O(#atoms) — three allocations total, the
// per-atom views live in one block; each run attaches its own stats
// receiver to its snapshot, which is what makes a cached problem safe for
// concurrent executions.
func (p *Problem) Snapshot() *Problem {
	cp := &Problem{GAO: p.GAO, Bounds: p.Bounds, Debug: p.Debug, DisableBoxes: p.DisableBoxes}
	cp.Atoms = make([]Atom, len(p.Atoms))
	views := make([]reltree.Tree, len(p.Atoms))
	for i, a := range p.Atoms {
		views[i] = a.Tree.View()
		cp.Atoms[i] = Atom{Name: a.Name, Tree: &views[i], Positions: a.Positions}
	}
	return cp
}

// Specs reconstructs GAO-consistent atom specs from the built indexes
// (attribute names looked up through the GAO, tuples materialized from
// the trees). Engines that work on raw tuple lists rather than search
// trees — Yannakakis, the pairwise hash plans — consume these. When the
// problem carries Bounds, tuples violating a bound on one of the atom's
// columns are dropped here, so materializing engines evaluate the
// selection-reduced inputs rather than post-filtering the join.
func (p *Problem) Specs() []AtomSpec {
	specs := make([]AtomSpec, len(p.Atoms))
	for i, a := range p.Atoms {
		attrs := make([]string, len(a.Positions))
		bounded := false
		for j, gp := range a.Positions {
			attrs[j] = p.GAO[gp]
			if p.Bounds != nil && !p.Bounds[gp].Full() {
				bounded = true
			}
		}
		tuples := a.Tree.Tuples()
		if bounded {
			kept := make([][]int, 0, len(tuples))
			for _, tup := range tuples {
				ok := true
				for j, gp := range a.Positions {
					if !p.Bounds[gp].Contains(tup[j]) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, tup)
				}
			}
			tuples = kept
		}
		specs[i] = AtomSpec{Name: a.Name, Attrs: attrs, Tuples: tuples}
	}
	return specs
}

// Attach wires per-run stats into every index tree.
func (p *Problem) Attach(s *certificate.Stats) {
	for _, a := range p.Atoms {
		a.Tree.SetStats(s)
	}
}

// Detach removes the stats receivers.
func (p *Problem) Detach() {
	for _, a := range p.Atoms {
		a.Tree.SetStats(nil)
	}
}

// InputSize returns N: the total number of tuples across atoms.
func (p *Problem) InputSize() int {
	n := 0
	for _, a := range p.Atoms {
		n += a.Tree.Size()
	}
	return n
}

package minesweeper

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"minesweeper/internal/reltree"
)

func TestRelationMutators(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 2}, {2, 3}})
	if r.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", r.Epoch())
	}
	// Build an index, then mutate: the cache must be dropped.
	q, err := NewQuery(Atom{Rel: r, Vars: []string{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Prepare(nil); err != nil {
		t.Fatal(err)
	}
	if r.CachedIndexes() != 1 {
		t.Fatalf("CachedIndexes = %d, want 1", r.CachedIndexes())
	}
	if err := r.Insert([]int{5, 6}); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 || r.Len() != 3 || r.CachedIndexes() != 0 {
		t.Fatalf("after Insert: epoch=%d len=%d cached=%d", r.Epoch(), r.Len(), r.CachedIndexes())
	}

	// Validation: wrong arity and negative values are rejected without
	// mutating.
	if err := r.Insert([]int{1}); err == nil {
		t.Fatal("arity-1 insert accepted")
	}
	if err := r.Insert([]int{1, -1}); err == nil {
		t.Fatal("negative insert accepted")
	}
	if err := r.Insert([]int{1, 1 << 60}); err == nil {
		t.Fatal("out-of-domain insert accepted (would poison later index builds)")
	}
	if r.Epoch() != 1 || r.Len() != 3 {
		t.Fatalf("failed insert mutated: epoch=%d len=%d", r.Epoch(), r.Len())
	}
	// Empty insert is a no-op.
	if err := r.Insert(); err != nil || r.Epoch() != 1 {
		t.Fatalf("empty insert: err=%v epoch=%d", err, r.Epoch())
	}

	// Delete removes all copies and reports the count; misses are free.
	if err := r.Insert([]int{5, 6}); err != nil { // duplicate row
		t.Fatal(err)
	}
	n, err := r.Delete([]int{5, 6}, []int{9, 9})
	if err != nil || n != 2 {
		t.Fatalf("Delete = %d, %v; want 2, nil", n, err)
	}
	epoch := r.Epoch()
	if n, _ := r.Delete([]int{9, 9}); n != 0 {
		t.Fatalf("miss delete removed %d", n)
	}
	if r.Epoch() != epoch {
		t.Fatal("no-op delete bumped the epoch")
	}

	// Replace swaps contents wholesale.
	if err := r.Replace([][]int{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !reflect.DeepEqual(r.Tuples(), [][]int{{7, 8}}) {
		t.Fatalf("after Replace: %v", r.Tuples())
	}

	// Tuples returns a snapshot: appending to it must not affect r.
	snap := r.Tuples()
	_ = append(snap, []int{0, 0})
	if r.Len() != 1 {
		t.Fatal("Tuples snapshot aliases the relation")
	}
}

// TestPreparedReflectsMutationAllEngines: a prepared query (every
// engine) transparently serves the post-mutation data on its next
// execution, and re-binding after a mutation only rebuilds the mutated
// relation's index.
func TestPreparedReflectsMutationAllEngines(t *testing.T) {
	for _, eng := range allEngines {
		r := rel(t, "R", 2, [][]int{{1, 2}, {2, 3}})
		s := rel(t, "S", 2, [][]int{{2, 5}, {3, 7}})
		q, err := NewQuery(
			Atom{Rel: r, Vars: []string{"A", "B"}},
			Atom{Rel: s, Vars: []string{"B", "C"}},
		)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := q.Prepare(&Options{Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		res, err := pq.Execute()
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if len(res.Tuples) != 2 {
			t.Fatalf("engine %v: initial %v", eng, res.Tuples)
		}
		if err := r.Insert([]int{9, 3}); err != nil {
			t.Fatal(err)
		}
		before := reltree.Builds()
		res, err = pq.Execute()
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if len(res.Tuples) != 3 {
			t.Fatalf("engine %v: after insert %v", eng, res.Tuples)
		}
		// Exactly one rebuild: R's single column order. S stayed cached.
		if got := reltree.Builds() - before; got != 1 {
			t.Fatalf("engine %v: re-bind rebuilt %d indexes, want 1", eng, got)
		}
	}
}

// countdownCtx cancels itself after its Err method has been polled n
// times — a deterministic stand-in for a deadline that fires mid-run.
type countdownCtx struct {
	context.Context
	calls int
	limit int // 0 = never cancel, just count
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.limit > 0 && c.calls > c.limit {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestExecuteContextPartialResultOnCancel pins the partial-result
// contract: when the context dies mid-run, ExecuteContext returns the
// tuples collected so far alongside the error — a prefix of the full
// GAO-ordered result — instead of discarding them.
func TestExecuteContextPartialResultOnCancel(t *testing.T) {
	q := streamQuery(t, 29)
	gao, _ := q.RecommendGAO()
	pq, err := q.Prepare(&Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	full, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) < 4 {
		t.Fatalf("want ≥4 tuples, got %d", len(full.Tuples))
	}

	// Calibrate: count context polls until the 2nd tuple is out.
	probe := &countdownCtx{Context: context.Background()}
	seen := 0
	if _, err := pq.StreamContext(probe, func([]int) bool {
		seen++
		return seen < 2
	}); err != nil {
		t.Fatal(err)
	}

	// Re-run the identical evaluation, cancelling after that many polls:
	// at least those 2 tuples are in, and the run cannot finish.
	ctx := &countdownCtx{Context: context.Background(), limit: probe.calls}
	res, err := pq.ExecuteContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("res = nil: partial result discarded")
	}
	if len(res.Tuples) < 2 || len(res.Tuples) >= len(full.Tuples) {
		t.Fatalf("partial result has %d tuples, want in [2, %d)", len(res.Tuples), len(full.Tuples))
	}
	if !reflect.DeepEqual(res.Tuples, full.Tuples[:len(res.Tuples)]) {
		t.Fatal("partial result is not a prefix of the full result")
	}
	if res.Stats.Outputs != int64(len(res.Tuples)) {
		t.Fatalf("partial stats: Outputs=%d, tuples=%d", res.Stats.Outputs, len(res.Tuples))
	}

	// Same contract through ExecuteLimitContext with a generous limit.
	ctx = &countdownCtx{Context: context.Background(), limit: probe.calls}
	res, err = pq.ExecuteLimitContext(ctx, len(full.Tuples)+10)
	if !errors.Is(err, context.Canceled) || res == nil || len(res.Tuples) < 2 {
		t.Fatalf("limit variant: res=%v err=%v", res, err)
	}

	// And through the top-level helpers (which prepare internally).
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range allEngines {
		res, err := ExecuteContext(cancelled, q, &Options{Engine: eng, GAO: gao})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: err = %v", eng, err)
		}
		if res == nil {
			t.Fatalf("engine %v: nil result on cancellation", eng)
		}
		res, err = ExecuteLimitContext(cancelled, q, &Options{Engine: eng, GAO: gao}, 5)
		if !errors.Is(err, context.Canceled) || res == nil {
			t.Fatalf("engine %v limit: res=%v err=%v", eng, res, err)
		}
	}
}

// TestPrepareUnknownEngineMessage: the error must name the engine that
// was actually looked up, not the pre-resolution option value.
func TestPrepareUnknownEngineMessage(t *testing.T) {
	q := streamQuery(t, 31)
	_, err := q.Prepare(&Options{Engine: Engine(42)})
	if err == nil {
		t.Fatal("Prepare accepted engine(42)")
	}
	if !strings.Contains(err.Error(), "engine(42)") {
		t.Fatalf("error %q does not name the resolved engine", err)
	}
	if strings.Contains(err.Error(), "auto") {
		t.Fatalf("error %q names the unresolved option", err)
	}
}

// TestSelfJoinNeverTearsAcrossEpochs: all atoms of a query that bind
// the same relation must see one version of it. The fixture is chosen
// so a torn binding is observable: with E = {(1,2),(2,3)} the self-join
// E(A,B) ⋈ E(B,C) has 1 tuple, with the extra edge (3,1) it has 3 —
// but one atom at the old epoch and one at the new yields 2.
func TestSelfJoinNeverTearsAcrossEpochs(t *testing.T) {
	e := rel(t, "E", 2, [][]int{{1, 2}, {2, 3}})
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := e.Insert([]int{3, 1}); err != nil {
				t.Error(err)
				return
			}
			if _, err := e.Delete([]int{3, 1}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		res, err := pq.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if n := len(res.Tuples); n != 1 && n != 3 {
			t.Fatalf("self-join saw %d tuples (%v): atoms bound different epochs", n, res.Tuples)
		}
	}
	<-done
}

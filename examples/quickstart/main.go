// Quickstart: join two relations with Minesweeper and inspect the
// certificate-complexity statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"minesweeper"
)

func main() {
	// Two binary relations sharing attribute B.
	r, err := minesweeper.NewRelation("R", 2, [][]int{
		{1, 10}, {2, 10}, {3, 20}, {4, 99},
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := minesweeper.NewRelation("S", 2, [][]int{
		{10, 100}, {10, 101}, {20, 200}, {55, 500},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Q(A,B,C) = R(A,B) ⋈ S(B,C).
	q, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: r, Vars: []string{"A", "B"}},
		minesweeper.Atom{Rel: s, Vars: []string{"B", "C"}},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query is β-acyclic: %v\n", q.IsBetaAcyclic())
	gao, width := q.RecommendGAO()
	fmt.Printf("recommended GAO: %v (elimination width %d)\n", gao, width)

	res, err := minesweeper.Execute(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresult over %s:\n", strings.Join(res.Vars, ", "))
	for _, tup := range res.Tuples {
		fmt.Printf("  %v\n", tup)
	}
	fmt.Printf("\nrun statistics: %s\n", res.Stats.String())
	fmt.Printf("certificate estimate |C| ≈ %d FindGap operations (input N = %d)\n",
		res.Stats.CertificateEstimate(), r.Len()+s.Len())

	// The same query through a classical engine for comparison.
	lf, err := minesweeper.Execute(q, &minesweeper.Options{Engine: minesweeper.EngineLeapfrog, GAO: res.GAO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleapfrog agrees: %v (%d tuples)\n",
		fmt.Sprint(lf.Tuples) == fmt.Sprint(res.Tuples), len(lf.Tuples))

	// For repeated execution, prepare once: the GAO-permuted indexes are
	// built a single time and cached on the relations, so every
	// re-execution (any engine, any limit) skips the index build.
	pq, err := q.Prepare(nil)
	if err != nil {
		log.Fatal(err)
	}
	for run := 1; run <= 2; run++ {
		pres, err := pq.Execute()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepared run %d: %d tuples, findgaps=%d\n",
			run, len(pres.Tuples), pres.Stats.FindGaps)
	}

	// ExecuteStream exposes the anytime behaviour: tuples arrive one at a
	// time in GAO order, and returning false stops the evaluation — the
	// first k results cost only the probes that found them.
	fmt.Println("\nstreaming (stop after 2):")
	streamed := 0
	if _, err := minesweeper.ExecuteStream(q, nil, func(tup []int) bool {
		fmt.Printf("  -> %v\n", tup)
		streamed++
		return streamed < 2
	}); err != nil {
		log.Fatal(err)
	}
}

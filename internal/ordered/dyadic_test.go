package ordered

import (
	"math/rand"
	"testing"
)

// checkDyadicInvariant verifies the float-up completeness of equation (7):
// whenever a value is covered throughout both children's subtrees, it must
// be recorded at the node itself (or at an ancestor, in the case of
// wildcard bulk-marks that skipped the leaves). Direct insertion at
// internal nodes by MarkKeyRangeFull is allowed — it covers strictly more
// than the children's intersection, which is the sound direction.
func checkDyadicInvariant(t *testing.T, tree *DyadicTree, dom int) {
	t.Helper()
	// subtreeCovers: v is covered at every key of n's range, considering
	// only n's subtree (not ancestors).
	var subtreeCovers func(n *DyadicNode, v int) bool
	subtreeCovers = func(n *DyadicNode, v int) bool {
		if n == nil {
			return false
		}
		if n.Set.Covers(v) {
			return true
		}
		if n.IsLeaf() {
			return false
		}
		return subtreeCovers(n.left, v) && subtreeCovers(n.right, v)
	}
	var walk func(n *DyadicNode, ancestorCovered map[int]bool)
	walk = func(n *DyadicNode, ancestorCovered map[int]bool) {
		if n == nil || n.IsLeaf() {
			return
		}
		next := make(map[int]bool, dom)
		for v := 0; v < dom; v++ {
			here := ancestorCovered[v] || n.Set.Covers(v)
			next[v] = here
			want := subtreeCovers(n.left, v) && subtreeCovers(n.right, v)
			if want && !here {
				t.Fatalf("float-up incomplete at node [%d,%d] value %d", n.Lo, n.Hi, v)
			}
		}
		walk(n.left, next)
		walk(n.right, next)
	}
	walk(tree.Root(), map[int]bool{})
}

func TestDyadicCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := NewDyadicTree(c.in).Capacity(); got != c.want {
			t.Errorf("capacity(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDyadicLeafPaths(t *testing.T) {
	tr := NewDyadicTree(8)
	leaf := tr.Leaf(5)
	if leaf.Lo != 5 || leaf.Hi != 5 {
		t.Fatalf("Leaf(5) covers [%d,%d]", leaf.Lo, leaf.Hi)
	}
	if !leaf.IsLeaf() || tr.Root().IsLeaf() {
		t.Fatal("leafness wrong")
	}
	// Parent chain covers nested dyadic ranges.
	n := leaf
	ranges := [][2]int{{5, 5}, {4, 5}, {4, 7}, {0, 7}}
	for i := 0; n != nil; i++ {
		if n.Lo != ranges[i][0] || n.Hi != ranges[i][1] {
			t.Fatalf("level %d covers [%d,%d], want %v", i, n.Lo, n.Hi, ranges[i])
		}
		n = n.parent
	}
}

func TestDyadicFloatUp(t *testing.T) {
	tr := NewDyadicTree(4)
	// Insert [10,20] at keys 0 and 1: their parent [0,1] must cover [10,20].
	tr.InsertAtKey(0, 10, 20)
	tr.InsertAtKey(1, 10, 20)
	p := tr.Leaf(0).parent
	if !p.Set.CoversRange(10, 20) {
		t.Fatalf("parent should cover [10,20]: %v", p.Set)
	}
	if tr.Root().Set.Covers(15) {
		t.Fatal("root must not cover 15 yet (keys 2,3 uncovered)")
	}
	// Covering keys 2 and 3 partially propagates only the intersection.
	tr.InsertAtKey(2, 12, 30)
	tr.InsertAtKey(3, 15, 25)
	q := tr.Leaf(2).parent
	if !q.Set.CoversRange(15, 25) || q.Set.Covers(14) || q.Set.Covers(26) {
		t.Fatalf("right parent coverage wrong: %v", q.Set)
	}
	if !tr.Root().Set.CoversRange(15, 20) || tr.Root().Set.Covers(14) || tr.Root().Set.Covers(21) {
		t.Fatalf("root coverage wrong: %v", tr.Root().Set)
	}
	checkDyadicInvariant(t, tr, 40)
}

func TestDyadicOpenInsert(t *testing.T) {
	tr := NewDyadicTree(2)
	tr.InsertOpenAtKey(0, 3, 7) // covers 4..6
	leaf := tr.Leaf(0)
	if !leaf.Set.CoversRange(4, 6) || leaf.Set.Covers(3) || leaf.Set.Covers(7) {
		t.Fatalf("open insert coverage wrong: %v", leaf.Set)
	}
	tr.InsertOpenAtKey(1, 5, 6) // empty
	if l := tr.Leaf(1); !l.Set.Empty() {
		t.Fatalf("empty open insert stored something: %v", l.Set)
	}
}

func TestDyadicMarkKeyRangeFull(t *testing.T) {
	tr := NewDyadicTree(8)
	tr.MarkKeyRangeFull(2, 6)
	// Every leaf in [2,6] must be fully covered; others untouched.
	for k := 0; k < 8; k++ {
		full := tr.Leaf(k).Set.CoversRange(0, 100)
		// Interior dyadic nodes [2,3] and [4,5] were marked wholesale;
		// invariant pushes nothing to leaves, so check via effective coverage.
		eff := tr.effectiveCovers(k, 50)
		want := k >= 2 && k <= 6
		if eff != want {
			t.Fatalf("effective coverage at key %d = %v (leaf full=%v), want %v", k, eff, full, want)
		}
	}
	checkDyadicInvariant(t, tr, 10)
}

// effectiveCovers reports whether value v is covered at key considering all
// ancestors (an internal-node range applies to every key below it).
func (t *DyadicTree) effectiveCovers(key, v int) bool {
	n := t.root
	for {
		if n.Set.Covers(v) {
			return true
		}
		if n.IsLeaf() {
			return false
		}
		mid := n.Lo + (n.Hi-n.Lo)/2
		if key > mid {
			if n.right == nil {
				return false
			}
			n = n.right
		} else {
			if n.left == nil {
				return false
			}
			n = n.left
		}
	}
}

func TestDyadicNextSibling(t *testing.T) {
	tr := NewDyadicTree(4)
	root := tr.Root()
	l := tr.Descend(root, 0) // [0,1]
	r := tr.NextSibling(l)   // [2,3]
	if r.Lo != 2 || r.Hi != 3 {
		t.Fatalf("NextSibling([0,1]) = [%d,%d]", r.Lo, r.Hi)
	}
	leaf3 := tr.Leaf(3)
	if tr.NextSibling(leaf3) != nil {
		t.Fatal("NextSibling on all-right spine must be nil")
	}
	leaf2 := tr.Leaf(2)
	if s := tr.NextSibling(leaf2); s == nil || s.Lo != 3 || s.Hi != 3 {
		t.Fatalf("NextSibling(leaf2) wrong")
	}
	if tr.NextSibling(root) != nil {
		t.Fatal("NextSibling(root) must be nil")
	}
}

func TestDyadicCache(t *testing.T) {
	tr := NewDyadicTree(2)
	n := tr.Root()
	if got := n.Cache(7, -1); got != -1 {
		t.Fatalf("empty cache = %d", got)
	}
	n.SetCache(7, 42)
	if got := n.Cache(7, -1); got != 42 {
		t.Fatalf("cache = %d", got)
	}
	if got := n.Cache(8, -1); got != -1 {
		t.Fatalf("cache wrong key = %d", got)
	}
}

// TestDyadicRandomInvariant hammers the tree with random insertions and
// verifies the intersection invariant plus effective coverage against a
// brute-force per-key reference.
func TestDyadicRandomInvariant(t *testing.T) {
	const keys, dom = 16, 60
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tr := NewDyadicTree(keys)
		ref := make([][]bool, keys)
		for k := range ref {
			ref[k] = make([]bool, dom)
		}
		for op := 0; op < 60; op++ {
			if rng.Intn(8) == 0 {
				a := rng.Intn(keys)
				b := a + rng.Intn(keys-a)
				tr.MarkKeyRangeFull(a, b)
				for k := a; k <= b; k++ {
					for v := 0; v < dom; v++ {
						ref[k][v] = true
					}
				}
				continue
			}
			k := rng.Intn(keys)
			lo := rng.Intn(dom)
			hi := lo + rng.Intn(dom-lo)
			tr.InsertAtKey(k, lo, hi)
			for v := lo; v <= hi; v++ {
				ref[k][v] = true
			}
		}
		checkDyadicInvariant(t, tr, dom)
		for k := 0; k < keys; k++ {
			for v := 0; v < dom; v++ {
				if got := tr.effectiveCovers(k, v); got != ref[k][v] {
					t.Fatalf("trial %d: effectiveCovers(%d,%d) = %v, want %v", trial, k, v, got, ref[k][v])
				}
			}
		}
	}
}

package cds

import (
	"testing"

	"minesweeper/internal/ordered"
)

// The CDS hot path — probing and inserting constraints that land on
// existing nodes — must not allocate: GetProbePoint works in per-tree
// scratch, InsConstraint interns patterns only when materializing new
// nodes, and interval/child churn recycles through the SortedList
// free-lists. These tests lock the budget at exactly zero so a
// regression shows up as a test failure, not a benchmark drift.

func warmTree() *Tree {
	tr := NewTree(3)
	// A few nodes at every depth, with intervals, so probing walks a
	// non-trivial filter chain.
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(5)}, Lo: 10, Hi: 20})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(5), Eq(11)}, Lo: 3, Hi: 9})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(11)}, Lo: 30, Hi: 40})
	return tr
}

func TestGetProbePointSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	tr := warmTree()
	if tr.GetProbePoint() == nil {
		t.Fatal("tree unexpectedly exhausted")
	}
	// Steady state: nothing is ruled out between calls, so each probe
	// revisits the same chain walk in warm scratch.
	allocs := testing.AllocsPerRun(100, func() {
		if tr.GetProbePoint() == nil {
			t.Fatal("tree unexpectedly exhausted")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetProbePoint steady state: %v allocs/run, want 0", allocs)
	}
}

func TestInsConstraintSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	tr := warmTree()
	// Re-inserting intervals that merge into existing ranges at existing
	// nodes is the memoization write pattern; it must recycle, not
	// allocate. (Pattern literals are hoisted so the measurement sees
	// only the tree's own allocations.)
	p1 := Pattern{Eq(5)}
	p2 := Pattern{Eq(5), Eq(11)}
	p3 := Pattern{Star}
	allocs := testing.AllocsPerRun(100, func() {
		tr.InsConstraint(Constraint{Prefix: p1, Lo: 10, Hi: 20})
		tr.InsConstraint(Constraint{Prefix: p2, Lo: 2, Hi: 9})
		tr.InsConstraint(Constraint{Prefix: p3, Lo: ordered.NegInf, Hi: 0})
	})
	if allocs != 0 {
		t.Fatalf("InsConstraint steady state: %v allocs/run, want 0", allocs)
	}
}

func TestProbeInsertLoopSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	// The full Algorithm 2 alternation on a reset tree: after one drain
	// has sized the arenas, a Reset + identical refill + drain performs
	// zero allocations.
	const span = 32
	stars := Pattern{Star, Star}
	ruleOut := Pattern{Eq(0)}
	drain := func(tr *Tree) int {
		for d := 0; d < 3; d++ {
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: ordered.NegInf, Hi: 0})
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: span - 1, Hi: ordered.PosInf})
		}
		n := 0
		for pt := tr.GetProbePoint(); pt != nil; pt = tr.GetProbePoint() {
			ruleOut[0] = Eq(pt[0])
			tr.InsConstraint(Constraint{Prefix: ruleOut, Lo: ordered.NegInf, Hi: ordered.PosInf})
			if n++; n > 4*span {
				t.Fatal("drain did not converge")
			}
		}
		return n
	}
	tr := NewTree(3)
	first := drain(tr)
	allocs := testing.AllocsPerRun(20, func() {
		tr.Reset()
		if got := drain(tr); got != first {
			t.Fatalf("drain emitted %d probes, want %d", got, first)
		}
	})
	if allocs != 0 {
		t.Fatalf("reset+drain steady state: %v allocs/run, want 0", allocs)
	}
}

func TestTreeResetEquivalence(t *testing.T) {
	// A reset tree must behave exactly like a fresh one.
	fresh := warmTree()
	reused := warmTree()
	reused.Reset()
	reused.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	reused.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: ordered.NegInf, Hi: 0})
	reused.InsConstraint(Constraint{Prefix: Pattern{Eq(5)}, Lo: 10, Hi: 20})
	reused.InsConstraint(Constraint{Prefix: Pattern{Eq(5), Eq(11)}, Lo: 3, Hi: 9})
	reused.InsConstraint(Constraint{Prefix: Pattern{Star, Eq(11)}, Lo: 30, Hi: 40})
	if got, want := reused.Dump(), fresh.Dump(); got != want {
		t.Fatalf("reset tree diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
	a := fresh.GetProbePoint()
	b := reused.GetProbePoint()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe mismatch: fresh %v, reused %v", a, b)
		}
	}
}

package cds

import (
	"fmt"
	"strings"
)

// Dump renders the ConstraintTree in the style of Figure 1 of the paper:
// one line per node showing its pattern path and interval list, indented
// by depth. Intended for debugging and tests.
func (t *Tree) Dump() string {
	var b strings.Builder
	var walk func(v *node, label string, depth int)
	walk = func(v *node, label string, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(label)
		if !v.intervals.Empty() {
			fmt.Fprintf(&b, " %s", &v.intervals)
		}
		b.WriteByte('\n')
		v.eq.Ascend(func(key int, child *node) bool {
			walk(child, fmt.Sprintf("=%d", key), depth+1)
			return true
		})
		if v.star != nil {
			walk(v.star, "*", depth+1)
		}
	}
	walk(t.root, "root", 0)
	for last, list := range t.boxByLast {
		for _, v := range list {
			fmt.Fprintf(&b, "box@%d %s\n", last,
				BoxConstraint{Prefix: v.prefix, Dims: v.dims})
		}
	}
	return b.String()
}

// Nodes returns the number of materialized nodes (for tests and metrics).
func (t *Tree) Nodes() int {
	count := 0
	var walk func(v *node)
	walk = func(v *node) {
		count++
		v.eq.Ascend(func(_ int, child *node) bool {
			walk(child)
			return true
		})
		if v.star != nil {
			walk(v.star)
		}
	}
	walk(t.root)
	return count
}

package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minesweeper/internal/storage"
)

// Replication coverage: a poisoned primary fails over to a healthy
// follower without losing a mutation, a reopened replica resyncs from
// the surviving leader, a rolling reopen never degrades the catalog,
// and a pre-replication shard layout migrates in place.

// openFaultyReplica opens a replicated durable catalog where exactly
// one replica's backend is wrapped in the fault-injection layer.
func openFaultyReplica(t *testing.T, dir string, shards, replicas, fShard, fRep int, script string) *Catalog {
	t.Helper()
	c, err := OpenWith(dir, shards, replicas, storage.Options{}, func(i, j int) (storage.Backend, error) {
		d, err := storage.OpenDurable(ReplicaDir(dir, i, j), storage.Options{})
		if err != nil {
			return nil, err
		}
		if i == fShard && j == fRep {
			return storage.NewFaulty(d, script)
		}
		return d, nil
	})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	return c
}

func seedTuples(n int) (rT, sT [][]int) {
	for i := 0; i < n; i++ {
		rT = append(rT, []int{i, (i * 3) % 50})
		sT = append(sT, []int{(i * 3) % 50, i % 20})
	}
	return
}

// TestPrimaryFailover: when the primary's WAL poisons mid-mutation the
// shard promotes a healthy follower and the mutation succeeds on the
// first try — the caller never sees the fault, the catalog never turns
// read-only, and the dead replica is reported for background reopen.
func TestPrimaryFailover(t *testing.T) {
	dir := t.TempDir()
	c := openFaultyReplica(t, dir, 2, 2, 0, 0, "append@2=enospc")
	defer c.Close()

	rT, sT := seedTuples(120)
	if _, err := c.Create("R", []string{"a", "b"}, rT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("S", []string{"b", "c"}, sT); err != nil {
		t.Fatal(err)
	}
	// Enough inserts to guarantee shard 0 takes an append; its primary
	// (replica 0) hits the scripted enospc and a follower takes over.
	var ins [][]int
	for i := 0; i < 16; i++ {
		ins = append(ins, []int{1000 + i, i})
	}
	if _, err := c.Insert("R", ins...); err != nil {
		t.Fatalf("insert across the fault: %v", err)
	}
	if got := c.Failovers(); got < 1 {
		t.Fatalf("Failovers() = %d, want >= 1", got)
	}
	if got := c.Primary(0); got != 1 {
		t.Fatalf("shard 0 primary = %d, want 1 after failover", got)
	}
	if err := c.Degraded(); err != nil {
		t.Fatalf("Degraded() = %v, want nil (one healthy replica remains)", err)
	}
	down := c.DownReplicas()
	if len(down) != 1 || down[0].Shard != 0 || down[0].Replica != 0 {
		t.Fatalf("DownReplicas() = %+v, want exactly shard 0 replica 0", down)
	}
	stats := c.ShardStats()
	if stats[0].Replicas[0].Down == "" || stats[0].Replicas[1].Down != "" {
		t.Fatalf("replica health after failover = %+v", stats[0].Replicas)
	}
	if !stats[0].Replicas[1].Primary {
		t.Fatalf("replica 1 not marked primary: %+v", stats[0].Replicas)
	}

	// Mutations keep flowing on the promoted leader.
	if _, err := c.Insert("R", []int{2000, 1}, []int{2001, 2}, []int{2002, 3}); err != nil {
		t.Fatalf("insert after failover: %v", err)
	}
	// Reads never noticed: the sharded stream still matches unsharded.
	const expr = "R(A,B), S(B,C)"
	ref := reference(t, c, expr, nil)
	q, err := c.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := c.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
		t.Fatal("post-failover stream diverges from unsharded reference")
	}

	// ReopenReplica brings the dead copy back and resyncs it from the
	// surviving leader: every fragment lands at the leader's exact epoch.
	if err := c.ReopenReplica(0, 0, func() (storage.Backend, error) {
		return storage.OpenDurable(ReplicaDir(dir, 0, 0), storage.Options{})
	}); err != nil {
		t.Fatalf("ReopenReplica: %v", err)
	}
	if got := c.DownReplicas(); len(got) != 0 {
		t.Fatalf("DownReplicas() after reopen = %+v, want none", got)
	}
	for _, name := range []string{"R", "S"} {
		lead, ok := c.Fragment(0, name)
		if !ok {
			t.Fatalf("no leader fragment of %s", name)
		}
		rep, ok := c.ReplicaFragment(0, 0, name)
		if !ok {
			t.Fatalf("no reopened fragment of %s", name)
		}
		if rep.Epoch() != lead.Epoch() || rep.Len() != lead.Len() {
			t.Fatalf("%s: reopened replica at epoch %d/%d tuples, leader at %d/%d",
				name, rep.Epoch(), rep.Len(), lead.Epoch(), lead.Len())
		}
	}
}

// TestFailoverExhaustion: with every replica of a shard poisoned the
// catalog finally degrades — failover is not an infinite retry loop.
func TestFailoverExhaustion(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenWith(dir, 1, 2, storage.Options{}, func(i, j int) (storage.Backend, error) {
		d, err := storage.OpenDurable(ReplicaDir(dir, i, j), storage.Options{})
		if err != nil {
			return nil, err
		}
		return storage.NewFaulty(d, "append@2=enospc")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("R", []string{"a", "b"}, [][]int{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("R", []int{3, 4}); err == nil {
		t.Fatal("insert succeeded with every replica poisoned")
	} else if !strings.Contains(err.Error(), "no healthy replica") {
		t.Fatalf("exhaustion error = %v, want 'no healthy replica'", err)
	}
	if c.Degraded() == nil {
		t.Fatal("Degraded() = nil with every replica down")
	}
	// Reads still serve from the in-memory fragments.
	if _, ok := c.Get("R"); !ok {
		t.Fatal("gathered view lost R after exhaustion")
	}
}

// TestRollingReopen: reopening every replica of every shard one at a
// time (the rolling-restart primitive) keeps the catalog continuously
// ready and lands every copy back at the leader's epochs.
func TestRollingReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenReplicated(dir, 3, 2, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rT, sT := seedTuples(150)
	if _, err := c.Create("R", []string{"a", "b"}, rT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("S", []string{"b", "c"}, sT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("R", []int{900, 1}, []int{901, 2}); err != nil {
		t.Fatal(err)
	}
	epochs := fragmentEpochs(t, c, "R")
	// First roll step by step, checking readiness between every swap —
	// the zero-downtime claim is that no intermediate state degrades.
	for i := 0; i < c.Shards(); i++ {
		for j := 0; j < c.ReplicaCount(); j++ {
			if err := c.ReopenReplica(i, j, func() (storage.Backend, error) {
				return storage.OpenDurable(ReplicaDir(dir, i, j), storage.Options{})
			}); err != nil {
				t.Fatalf("ReopenReplica(%d, %d): %v", i, j, err)
			}
			if err := c.Degraded(); err != nil {
				t.Fatalf("catalog degraded mid-roll at shard %d replica %d: %v", i, j, err)
			}
		}
	}
	// Then the one-call form over the already-rolled set.
	if err := c.RollingReopen(func(i, j int) (storage.Backend, error) {
		return storage.OpenDurable(ReplicaDir(dir, i, j), storage.Options{})
	}); err != nil {
		t.Fatalf("RollingReopen: %v", err)
	}
	if err := c.Degraded(); err != nil {
		t.Fatalf("Degraded() after roll = %v", err)
	}
	if got := fragmentEpochs(t, c, "R"); !equalU64(got, epochs) {
		t.Fatalf("R epochs after roll = %v, want %v", got, epochs)
	}
	for i := 0; i < c.Shards(); i++ {
		for j := 0; j < c.ReplicaCount(); j++ {
			lead, _ := c.Fragment(i, "R")
			rep, ok := c.ReplicaFragment(i, j, "R")
			if !ok || rep.Epoch() != lead.Epoch() {
				t.Fatalf("shard %d replica %d out of sync after roll", i, j)
			}
		}
	}
	if _, err := c.Insert("R", []int{950, 5}); err != nil {
		t.Fatalf("insert after roll: %v", err)
	}
}

// TestLegacyLayoutMigration: a pre-replication data directory (WAL and
// snapshots directly under shard-<i>/) opens as replica 0 of each
// shard, and a widened replica count backfills the new copies from it.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenReplicated(dir, 2, 1, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rT, _ := seedTuples(80)
	if _, err := c.Create("R", []string{"a", "b"}, rT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("R", []int{500, 7}); err != nil {
		t.Fatal(err)
	}
	epochs := fragmentEpochs(t, c, "R")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Flatten to the legacy layout: move replica-0's files up into the
	// shard directory and remove the replica directory.
	for i := 0; i < 2; i++ {
		rd := ReplicaDir(dir, i, 0)
		files, err := filepath.Glob(filepath.Join(rd, "*"))
		if err != nil || len(files) == 0 {
			t.Fatalf("replica dir %s is empty: %v", rd, err)
		}
		for _, f := range files {
			if err := os.Rename(f, filepath.Join(ShardDir(dir, i), filepath.Base(f))); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.Remove(rd); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := OpenReplicated(dir, 2, 2, storage.Options{})
	if err != nil {
		t.Fatalf("OpenReplicated over legacy layout: %v", err)
	}
	defer c2.Close()
	if got := fragmentEpochs(t, c2, "R"); !equalU64(got, epochs) {
		t.Fatalf("R epochs after migration = %v, want %v", got, epochs)
	}
	// The widened replica set is live: both copies at the same epoch,
	// mutations replicate to both.
	for i := 0; i < 2; i++ {
		lead, _ := c2.Fragment(i, "R")
		rep, ok := c2.ReplicaFragment(i, 1, "R")
		if !ok || rep.Epoch() != lead.Epoch() {
			t.Fatalf("shard %d replica 1 not backfilled from legacy copy", i)
		}
	}
	if _, err := c2.Insert("R", []int{600, 8}, []int{601, 9}); err != nil {
		t.Fatalf("insert after migration: %v", err)
	}
}

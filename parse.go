package minesweeper

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseQuery builds a Query from a textual join expression such as
//
//	"R(A,B), S(B,C), T(A,C)"
//	"R(A,B) ⋈ S(B,C)"
//	"Edge(x,y) Edge(y,z)"
//	"R(x, 7), S(x, y) select x, count(*) where y < 100"
//
// Atoms are RelationName(Term, …); they may be separated by commas, the
// ⋈ operator, or whitespace. A term is a variable or a non-negative
// integer constant (a selection on that column, pushed down into the
// index walk). Relation names are resolved through rels; the same
// relation may appear in several atoms (self-joins). Variable and
// relation names start with a letter or underscore and continue with
// letters, digits or underscores.
//
// The atoms may be followed by optional clauses, in either order:
//
//   - "select" item, …: projects the output onto the listed variables
//     (set semantics) and/or computes aggregates — count(*), count(x),
//     count(distinct x), sum(x), min(x), max(x) — grouped by the listed
//     variables (the whole result is one group when only aggregates are
//     listed).
//   - "where" cond [and/, cond …]: per-variable range filters "x op n"
//     with op one of < <= > >= = ==, pushed down like constants.
//
// The clause keywords only act as keywords when not followed by "(", so
// relations named "select", "where" or "and" stay usable.
func ParseQuery(expr string, rels map[string]*Relation) (*Query, error) {
	p := &queryParser{src: expr}
	var atoms []Atom
	for {
		p.skipSeparators()
		if p.eof() || p.hasKeyword("select") || p.hasKeyword("where") {
			break
		}
		name, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var vars []string
		for {
			p.skipSpace()
			v, err := p.term()
			if err != nil {
				return nil, err
			}
			vars = append(vars, v)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		rel, ok := rels[name]
		if !ok {
			return nil, fmt.Errorf("minesweeper: parse: unknown relation %q at offset %d", name, p.pos)
		}
		atoms = append(atoms, Atom{Rel: rel, Vars: vars})
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("minesweeper: parse: no atoms in %q", expr)
	}
	var sel []string
	var aggs []Aggregate
	var where []Filter
	sawSelect := false
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.hasKeyword("select"):
			p.pos += len("select")
			s, a, err := p.selectItems()
			if err != nil {
				return nil, err
			}
			sawSelect = true
			sel = append(sel, s...)
			aggs = append(aggs, a...)
		case p.hasKeyword("where"):
			p.pos += len("where")
			f, err := p.whereConds()
			if err != nil {
				return nil, err
			}
			where = append(where, f...)
		default:
			return nil, fmt.Errorf("minesweeper: parse: unexpected input at offset %d in %q", p.pos, expr)
		}
	}
	q, err := NewQuery(atoms...)
	if err != nil {
		return nil, err
	}
	if sawSelect && len(sel) == 0 && len(aggs) == 0 {
		return nil, fmt.Errorf("minesweeper: parse: empty select clause in %q", expr)
	}
	if sawSelect && len(sel) > 0 {
		q.sel = sel
	}
	q.aggs = aggs
	q.where = where
	// Validate the clauses eagerly so ParseQuery reports a bad select or
	// where immediately rather than at first execution.
	gao, _ := q.RecommendGAO()
	if _, _, err := q.buildShape(gao, &Options{}); err != nil {
		return nil, err
	}
	return q, nil
}

// term parses one atom argument: a variable name or an integer constant.
func (p *queryParser) term() (string, error) {
	p.skipSpace()
	if c := p.peek(); c >= '0' && c <= '9' {
		return p.number()
	}
	return p.ident("variable or constant")
}

// number consumes a run of digits.
func (p *queryParser) number() (string, error) {
	start := p.pos
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("minesweeper: parse: expected number at offset %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

// aggFuncs maps select-item function names to aggregate ops.
var aggFuncs = map[string]AggOp{
	"count": AggCount,
	"sum":   AggSum,
	"min":   AggMin,
	"max":   AggMax,
}

// selectItems parses the comma-separated items of a select clause:
// variables and aggregate calls, in any mix.
func (p *queryParser) selectItems() (sel []string, aggs []Aggregate, err error) {
	for {
		p.skipSpace()
		name, err := p.ident("select item")
		if err != nil {
			return nil, nil, err
		}
		p.skipSpace()
		if op, isAgg := aggFuncs[name]; isAgg && p.peek() == '(' {
			p.pos++
			p.skipSpace()
			var agg Aggregate
			if op == AggCount && p.peek() == '*' {
				p.pos++
				agg = Aggregate{Op: AggCount}
			} else {
				v, err := p.ident("aggregate variable")
				if err != nil {
					return nil, nil, err
				}
				p.skipSpace()
				if op == AggCount && v == "distinct" && p.peek() != ')' {
					v, err = p.ident("aggregate variable")
					if err != nil {
						return nil, nil, err
					}
					op = AggCountDistinct
				}
				agg = Aggregate{Op: op, Var: v}
			}
			if err := p.expect(')'); err != nil {
				return nil, nil, err
			}
			aggs = append(aggs, agg)
		} else {
			sel = append(sel, name)
		}
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		return sel, aggs, nil
	}
}

// whereConds parses the conjuncts of a where clause: "var op value"
// separated by commas or the "and" keyword.
func (p *queryParser) whereConds() ([]Filter, error) {
	var out []Filter
	for {
		p.skipSpace()
		v, err := p.ident("filter variable")
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		op, err := p.compareOp()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		neg := false
		if p.peek() == '-' {
			neg = true
			p.pos++
		}
		num, err := p.number()
		if err != nil {
			return nil, err
		}
		val, err := strconv.Atoi(num)
		if err != nil {
			return nil, fmt.Errorf("minesweeper: parse: bad filter value %q: %v", num, err)
		}
		if neg {
			val = -val
		}
		out = append(out, Filter{Var: v, Op: op, Value: val})
		p.skipSpace()
		switch {
		case p.peek() == ',':
			p.pos++
		case p.hasKeyword("and"):
			p.pos += len("and")
		default:
			return out, nil
		}
	}
}

// compareOp consumes a comparison operator.
func (p *queryParser) compareOp() (string, error) {
	for _, op := range []string{"<=", ">=", "==", "<", ">", "="} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			p.pos += len(op)
			return op, nil
		}
	}
	return "", fmt.Errorf("minesweeper: parse: expected comparison operator at offset %d in %q", p.pos, p.src)
}

// ParseSelect parses a standalone select list ("x, count(*), sum(y)"),
// the msjoin -select / msserve "select" syntax. It returns the
// projected variables and the aggregates, either possibly empty.
func ParseSelect(list string) (sel []string, aggs []Aggregate, err error) {
	p := &queryParser{src: list}
	sel, aggs, err = p.selectItems()
	if err != nil {
		return nil, nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, nil, fmt.Errorf("minesweeper: parse: unexpected input at offset %d in %q", p.pos, list)
	}
	return sel, aggs, nil
}

// ParseWhere parses a standalone filter list ("x < 100 and y >= 3"),
// the msjoin -where / msserve "where" syntax.
func ParseWhere(list string) ([]Filter, error) {
	p := &queryParser{src: list}
	out, err := p.whereConds()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("minesweeper: parse: unexpected input at offset %d in %q", p.pos, list)
	}
	return out, nil
}

type queryParser struct {
	src string
	pos int
}

func (p *queryParser) eof() bool { return p.pos >= len(p.src) }

func (p *queryParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *queryParser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// skipSeparators consumes whitespace, commas and join operators between
// atoms (⋈ is multi-byte UTF-8; accept the ASCII fallbacks "|><|" and
// "join" too). The "join" keyword only separates when it stands alone —
// a relation named "joint" must not be split.
func (p *queryParser) skipSeparators() {
	for {
		p.skipSpace()
		switch {
		case !p.eof() && p.src[p.pos] == ',':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "⋈"):
			p.pos += len("⋈")
		case strings.HasPrefix(p.src[p.pos:], "|><|"):
			p.pos += 4
		case p.hasKeyword("join"):
			p.pos += len("join")
		default:
			return
		}
	}
}

// hasKeyword reports whether the word starts at the current position,
// ends at a non-identifier boundary, and is not itself an atom: a
// following "(" (possibly after spaces) means the word is a relation
// name — a relation called "join" stays usable.
func (p *queryParser) hasKeyword(word string) bool {
	if !strings.HasPrefix(p.src[p.pos:], word) {
		return false
	}
	rest := p.src[p.pos+len(word):]
	for _, r := range rest {
		if isIdentRune(r) {
			return false // identifier continues: "joint(...)"
		}
		break
	}
	i := 0
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t' || rest[i] == '\n' || rest[i] == '\r') {
		i++
	}
	return i >= len(rest) || rest[i] != '(' // "join(...)" is an atom
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *queryParser) ident(what string) (string, error) {
	p.skipSpace()
	start := p.pos
	for i, r := range p.src[start:] {
		if i == 0 {
			if !isIdentStart(r) {
				return "", fmt.Errorf("minesweeper: parse: expected %s at offset %d in %q", what, p.pos, p.src)
			}
			continue
		}
		if !isIdentRune(r) {
			p.pos = start + i
			return p.src[start : start+i], nil
		}
	}
	if start == len(p.src) {
		return "", fmt.Errorf("minesweeper: parse: expected %s at end of %q", what, p.src)
	}
	p.pos = len(p.src)
	return p.src[start:], nil
}

func (p *queryParser) expect(c byte) error {
	p.skipSpace()
	if p.eof() || p.src[p.pos] != c {
		return fmt.Errorf("minesweeper: parse: expected %q at offset %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

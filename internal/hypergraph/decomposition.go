package hypergraph

import (
	"fmt"
	"sort"
)

// TreeDecomposition is a tree decomposition (Definition A.2 of the
// paper): Bags[i] is the vertex set of node i, Parent[i] the tree edge
// (-1 for the root). Width is max bag size − 1.
type TreeDecomposition struct {
	Bags   [][]string
	Parent []int
	Width  int
}

// DecompositionFromOrder builds the tree decomposition induced by an
// elimination order (the standard construction behind Proposition A.7):
// processing the order back to front, vertex v_k gets the bag
// {v_k} ∪ U(P_k); the bag's parent is the bag of the last-eliminated
// vertex inside U(P_k). The width of the decomposition equals the
// elimination width of the order.
func (h *Hypergraph) DecompositionFromOrder(gao []string) (*TreeDecomposition, error) {
	_, universes, err := h.PrefixPosets(gao)
	if err != nil {
		return nil, err
	}
	n := len(gao)
	pos := make(map[string]int, n)
	for i, v := range gao {
		pos[v] = i
	}
	td := &TreeDecomposition{
		Bags:   make([][]string, n),
		Parent: make([]int, n),
	}
	for k := 0; k < n; k++ {
		bag := append([]string{gao[k]}, universes[k]...)
		sort.Strings(bag)
		td.Bags[k] = bag
		if len(bag)-1 > td.Width {
			td.Width = len(bag) - 1
		}
		// Parent: the earliest-eliminated vertex in U(P_k), i.e. the one
		// with the largest GAO position below k... U(P_k) ⊆ {v_1..v_{k-1}},
		// and the bag connects to the bag of the latest of them.
		parent := -1
		for _, u := range universes[k] {
			if parent == -1 || pos[u] > parent {
				parent = pos[u]
			}
		}
		td.Parent[k] = parent
	}
	return td, nil
}

// Validate checks the two tree-decomposition properties of
// Definition A.2: every hyperedge is contained in some bag, and for every
// vertex the bags containing it form a connected subtree. It returns nil
// when both hold.
func (td *TreeDecomposition) Validate(h *Hypergraph) error {
	// (a) edge coverage.
	for _, e := range h.Edges {
		covered := false
		for _, bag := range td.Bags {
			if subset(e, bag) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("hypergraph: edge %v not contained in any bag", e)
		}
	}
	// (b) connectivity: for each vertex, the bags containing it must form
	// a connected subtree. Walk up from every containing bag towards the
	// root; the walk must reach the topmost containing bag while staying
	// inside containing bags.
	for _, v := range h.Vertices {
		var holders []int
		for i, bag := range td.Bags {
			if contains(bag, v) {
				holders = append(holders, i)
			}
		}
		if len(holders) == 0 {
			return fmt.Errorf("hypergraph: vertex %q in no bag", v)
		}
		holds := map[int]bool{}
		for _, i := range holders {
			holds[i] = true
		}
		depth := func(i int) int {
			d := 0
			for td.Parent[i] != -1 {
				i = td.Parent[i]
				d++
			}
			return d
		}
		top := holders[0]
		for _, i := range holders[1:] {
			if depth(i) < depth(top) {
				top = i
			}
		}
		for _, i := range holders {
			for i != top {
				p := td.Parent[i]
				if p == -1 {
					return fmt.Errorf("hypergraph: vertex %q: bag %d does not reach top holder", v, i)
				}
				if depth(p) < depth(top) {
					return fmt.Errorf("hypergraph: vertex %q: bags disconnected", v)
				}
				if !holds[p] {
					return fmt.Errorf("hypergraph: vertex %q: bag chain broken at %d", v, p)
				}
				i = p
			}
		}
	}
	return nil
}

// OptimalWidthOrder exhaustively searches all elimination orders and
// returns one of minimum elimination width — by Proposition A.7 this
// width is the treewidth of the hypergraph. Exponential in the number of
// vertices; intended for queries (n ≤ ~9), not data.
func (h *Hypergraph) OptimalWidthOrder() (gao []string, width int, err error) {
	n := len(h.Vertices)
	if n == 0 {
		return nil, 0, nil
	}
	if n > 9 {
		return nil, 0, fmt.Errorf("hypergraph: OptimalWidthOrder limited to ≤ 9 vertices, have %d", n)
	}
	best := append([]string(nil), h.Vertices...)
	bestW := 1 << 30
	perm := append([]string(nil), h.Vertices...)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			w, err := h.EliminationWidth(perm)
			if err == nil && w < bestW {
				bestW = w
				copy(best, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, bestW, nil
}

// Treewidth returns the treewidth of the hypergraph by exhaustive
// elimination-order search (Proposition A.7). Same size limit as
// OptimalWidthOrder.
func (h *Hypergraph) Treewidth() (int, error) {
	_, w, err := h.OptimalWidthOrder()
	return w, err
}

package shard

import (
	"context"
	"fmt"
	"testing"

	"minesweeper/internal/dataset"
)

// E15: sharded scaling. The bodies live here rather than in
// internal/benchsuite because benchsuite is imported by the root
// package's bench_test.go, and this package imports the root — the
// suite entries are registered by cmd/msbench instead. Each bench
// prepares once and measures steady-state scatter-gather execution of
// a tracked workload (E1's power-law path join, E12's heavy-enum skew
// join) at a fixed shard count; comparing shards=1 (gathered, no merge
// layer) against 2/4/8 isolates what the fan-out buys on multi-core
// runners and what the per-tuple channel+loser-tree pipeline costs (on
// a single core the curve is pure overhead, which is the point of
// tracking it).

// BenchScalingE1 runs the E1-style path join E(A,B), E(B,C) over a
// power-law graph at the given shard count.
func BenchScalingE1(b *testing.B, shards int) {
	g := dataset.PowerLawGraph(2000, 6, false, 1)
	benchScaling(b, shards, []relSpecB{{"E", []string{"src", "dst"}, g.Edges}}, "E(A,B), E(B,C)")
}

// BenchScalingE12 runs the E12 heavy-enumeration skew join at the
// given shard count: one heavy join value with 64×32 output partners
// plus 20k filler tuples, so per-shard probe work dominates emission.
func BenchScalingE12(b *testing.B, shards int) {
	e, f := dataset.SparseHeavyEnum(64, 32, 20000, 9973)
	benchScaling(b, shards, []relSpecB{
		{"E", []string{"a", "b"}, e},
		{"F", []string{"b", "c"}, f},
	}, "E(A,B), F(B,C)")
}

type relSpecB struct {
	name   string
	vars   []string
	tuples [][]int
}

func benchScaling(b *testing.B, shards int, rels []relSpecB, expr string) {
	c := New(shards)
	for _, r := range rels {
		if _, err := c.Create(r.name, r.vars, r.tuples); err != nil {
			b.Fatal(err)
		}
	}
	q, err := c.Query(expr)
	if err != nil {
		b.Fatal(err)
	}
	pq, err := c.Prepare(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	var tuples int
	res, err := pq.Execute()
	if err != nil {
		b.Fatal(err)
	}
	tuples = len(res.Tuples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		if _, err := pq.StreamContextExplained(context.Background(), nil, func([]int) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != tuples {
			b.Fatalf("iteration emitted %d tuples, want %d", n, tuples)
		}
	}
	b.ReportMetric(float64(tuples), "tuples/op")
}

// BenchReplicatedInsert measures the synchronous write fan-out cost of
// replication: steady-state insert+delete pairs against a 4-shard
// catalog at the given replica count. replicas=1 is the no-fan-out
// baseline; the slope against 2/3 is the per-copy apply+divergence
// check the durability of R copies buys.
func BenchReplicatedInsert(b *testing.B, replicas int) {
	c := NewReplicated(4, replicas)
	var tuples [][]int
	for i := 0; i < 4096; i++ {
		tuples = append(tuples, []int{i, (i * 7) % 512})
	}
	if _, err := c.Create("E", []string{"a", "b"}, tuples); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := []int{100000 + i, i % 512}
		if _, err := c.Insert("E", t); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Delete("E", t); err != nil {
			b.Fatal(err)
		}
	}
}

// ScalingBench is one E15 suite entry for msbench registration.
type ScalingBench struct {
	Name string
	F    func(b *testing.B)
}

// ScalingSuite enumerates the tracked E15 benchmarks: both read
// workloads at 1/2/4/8 shards, plus the replicated write fan-out at
// 1/2/3 copies.
func ScalingSuite() []ScalingBench {
	var out []ScalingBench
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		out = append(out,
			ScalingBench{fmt.Sprintf("ShardedScaling/E1/shards=%d", n), func(b *testing.B) { BenchScalingE1(b, n) }},
			ScalingBench{fmt.Sprintf("ShardedScaling/E12/shards=%d", n), func(b *testing.B) { BenchScalingE12(b, n) }},
		)
	}
	for _, r := range []int{1, 2, 3} {
		r := r
		out = append(out, ScalingBench{
			fmt.Sprintf("ShardedScaling/ReplicatedInsert/replicas=%d", r),
			func(b *testing.B) { BenchReplicatedInsert(b, r) },
		})
	}
	return out
}

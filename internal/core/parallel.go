package core

import (
	"fmt"
	"sort"
	"sync"

	"minesweeper/internal/certificate"
)

// TriangleParallel evaluates the triangle query with the dyadic-CDS
// engine across the given number of workers, partitioning the A domain
// into contiguous ranges (each worker receives the R- and T-tuples whose
// A value falls in its range plus the full S relation, so partitions are
// independent and their outputs disjoint). This mirrors the paper's
// multi-threaded LogicBlox runs (Section 5.2). Stats from all workers are
// summed; outputs arrive sorted. workers ≤ 0 defaults to 1.
func TriangleParallel(r, s, t [][]int, workers int, stats *certificate.Stats) ([][]int, error) {
	if workers <= 1 {
		out, err := Triangle(r, s, t, stats)
		if err != nil {
			return nil, err
		}
		sortTriples(out)
		return out, nil
	}
	// Partition boundaries: distinct A values of R ∪ T, split evenly.
	avals := map[int]bool{}
	for _, tup := range r {
		avals[tup[0]] = true
	}
	for _, tup := range t {
		avals[tup[0]] = true
	}
	if len(avals) == 0 {
		return nil, nil
	}
	distinct := make([]int, 0, len(avals))
	for v := range avals {
		distinct = append(distinct, v)
	}
	sort.Ints(distinct)
	if workers > len(distinct) {
		workers = len(distinct)
	}
	// ranges[w] = [lo, hi] inclusive bounds on A for worker w.
	type arange struct{ lo, hi int }
	ranges := make([]arange, 0, workers)
	per := (len(distinct) + workers - 1) / workers
	for i := 0; i < len(distinct); i += per {
		j := i + per
		if j > len(distinct) {
			j = len(distinct)
		}
		ranges = append(ranges, arange{distinct[i], distinct[j-1]})
	}
	parts := make([][][]int, len(ranges))
	statsParts := make([]certificate.Stats, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for w := range ranges {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = fmt.Errorf("core: triangle worker %d panicked: %v", w, p)
				}
			}()
			rg := ranges[w]
			var rw, tw [][]int
			for _, tup := range r {
				if rg.lo <= tup[0] && tup[0] <= rg.hi {
					rw = append(rw, tup)
				}
			}
			for _, tup := range t {
				if rg.lo <= tup[0] && tup[0] <= rg.hi {
					tw = append(tw, tup)
				}
			}
			if len(rw) == 0 || len(tw) == 0 {
				return
			}
			parts[w], errs[w] = Triangle(rw, s, tw, &statsParts[w])
		}(w)
	}
	wg.Wait()
	var out [][]int
	for w := range ranges {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, parts[w]...)
		if stats != nil {
			stats.Add(&statsParts[w])
		}
	}
	sortTriples(out)
	return out, nil
}

// MinesweeperParallel evaluates an arbitrary join with Minesweeper across
// workers by partitioning the domain of the first GAO attribute into
// contiguous ranges: every atom containing that attribute is filtered to
// the range, other atoms are shared, so the sub-joins are independent and
// their outputs disjoint. Worker stats are summed; outputs come back
// sorted. workers ≤ 1 falls back to the sequential engine.
func MinesweeperParallel(gao []string, atoms []AtomSpec, workers int, stats *certificate.Stats) ([][]int, error) {
	seqProblem := func(as []AtomSpec) (*Problem, error) { return NewProblem(gao, as) }
	if workers <= 1 {
		p, err := seqProblem(atoms)
		if err != nil {
			return nil, err
		}
		out, err := MinesweeperAll(p, stats)
		if err != nil {
			return nil, err
		}
		sortTriples(out)
		return out, nil
	}
	first := gao[0]
	// Column index of the first attribute per atom (-1 when absent).
	cols := make([]int, len(atoms))
	avals := map[int]bool{}
	for i, spec := range atoms {
		cols[i] = -1
		for j, a := range spec.Attrs {
			if a == first {
				cols[i] = j
			}
		}
		if cols[i] >= 0 {
			for _, tup := range spec.Tuples {
				avals[tup[cols[i]]] = true
			}
		}
	}
	if len(avals) == 0 {
		return nil, nil // some atom on the first attribute is empty
	}
	distinct := make([]int, 0, len(avals))
	for v := range avals {
		distinct = append(distinct, v)
	}
	sort.Ints(distinct)
	if workers > len(distinct) {
		workers = len(distinct)
	}
	per := (len(distinct) + workers - 1) / workers
	type arange struct{ lo, hi int }
	var ranges []arange
	for i := 0; i < len(distinct); i += per {
		j := i + per
		if j > len(distinct) {
			j = len(distinct)
		}
		ranges = append(ranges, arange{distinct[i], distinct[j-1]})
	}
	parts := make([][][]int, len(ranges))
	statsParts := make([]certificate.Stats, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for w := range ranges {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = fmt.Errorf("core: minesweeper worker %d panicked: %v", w, p)
				}
			}()
			rg := ranges[w]
			sub := make([]AtomSpec, len(atoms))
			for i, spec := range atoms {
				sub[i] = spec
				if cols[i] < 0 {
					continue
				}
				var filtered [][]int
				for _, tup := range spec.Tuples {
					if rg.lo <= tup[cols[i]] && tup[cols[i]] <= rg.hi {
						filtered = append(filtered, tup)
					}
				}
				sub[i].Tuples = filtered
			}
			p, err := seqProblem(sub)
			if err != nil {
				errs[w] = err
				return
			}
			parts[w], errs[w] = MinesweeperAll(p, &statsParts[w])
		}(w)
	}
	wg.Wait()
	var out [][]int
	for w := range ranges {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, parts[w]...)
		if stats != nil {
			stats.Add(&statsParts[w])
		}
	}
	sortTriples(out)
	return out, nil
}

func sortTriples(ts [][]int) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

package main

import (
	"context"
	"errors"
	"sync"
)

// errShed is returned by gate.acquire when the queue is full: the
// request is load-shed (429 + Retry-After) instead of piling another
// goroutine onto an already-saturated server.
var errShed = errors.New("server overloaded: request shed")

// gate is a bounded admission semaphore with a queue-depth cap: up to
// capacity requests run concurrently, up to queueDepth more wait for a
// slot, and everything beyond that is shed immediately. A nil *gate
// admits everything (unlimited).
type gate struct {
	slots      chan struct{}
	queueDepth int

	mu          sync.Mutex
	inflight    int64
	maxInflight int64 // high-water mark, for the soak test and /stats
	queued      int64
	admitted    int64
	shed        int64
}

// newGate builds a gate; capacity <= 0 means unlimited (nil gate).
func newGate(capacity, queueDepth int) *gate {
	if capacity <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &gate{slots: make(chan struct{}, capacity), queueDepth: queueDepth}
}

// acquire admits the request or reports why not: errShed when the
// queue is full, the context error when the caller gave up while
// queued. On success the returned release must be called exactly once.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	select {
	case g.slots <- struct{}{}:
		// Fast path: a free slot, no queueing.
	default:
		if int(g.queued) >= g.queueDepth {
			g.shed++
			g.mu.Unlock()
			return nil, errShed
		}
		g.queued++
		g.mu.Unlock()
		select {
		case g.slots <- struct{}{}:
			g.mu.Lock()
			g.queued--
		case <-ctx.Done():
			g.mu.Lock()
			g.queued--
			g.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	g.inflight++
	if g.inflight > g.maxInflight {
		g.maxInflight = g.inflight
	}
	g.admitted++
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		g.inflight--
		g.mu.Unlock()
		<-g.slots
	}, nil
}

// gateStats is the /stats rendering of one gate.
type gateStats struct {
	Capacity    int   `json:"capacity"`
	QueueDepth  int   `json:"queue_depth"`
	Inflight    int64 `json:"inflight"`
	MaxInflight int64 `json:"max_inflight"`
	Queued      int64 `json:"queued"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
}

func (g *gate) stats() gateStats {
	if g == nil {
		return gateStats{Capacity: -1}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return gateStats{
		Capacity:    cap(g.slots),
		QueueDepth:  g.queueDepth,
		Inflight:    g.inflight,
		MaxInflight: g.maxInflight,
		Queued:      g.queued,
		Admitted:    g.admitted,
		Shed:        g.shed,
	}
}

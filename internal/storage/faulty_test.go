package storage

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseFaultScript(t *testing.T) {
	good := []string{
		"",
		" ; ; ",
		"append@*=err",
		"append@3=torn:17; compact@1/2=err; sync@*=delay:100us",
		"recover@2+=enospc",
		"close@1=err",
		"append@5=torn",
	}
	for _, script := range good {
		if _, err := ParseFaultScript(script); err != nil {
			t.Errorf("ParseFaultScript(%q) = %v, want nil", script, err)
		}
	}
	bad := []string{
		"append@*",            // missing fault
		"append=err",          // missing occurrence
		"frobnicate@*=err",    // unknown op
		"append@0=err",        // occurrences are 1-based
		"append@x=err",        // non-numeric occurrence
		"append@2/0=err",      // zero stride
		"append@*=wat",        // unknown fault
		"append@*=torn:-3",    // negative byte count
		"append@*=delay",      // delay without duration
		"append@*=delay:fast", // bad duration
		"sync@*=torn",         // torn is append-only
	}
	for _, script := range bad {
		if _, err := ParseFaultScript(script); err == nil {
			t.Errorf("ParseFaultScript(%q) succeeded, want error", script)
		}
	}
}

func TestFaultRuleOccurrences(t *testing.T) {
	cases := []struct {
		occur string
		fires []int // calls (1-based) the rule should fire on, within 1..8
	}{
		{"*", []int{1, 2, 3, 4, 5, 6, 7, 8}},
		{"3", []int{3}},
		{"3+", []int{3, 4, 5, 6, 7, 8}},
		{"2/3", []int{2, 5, 8}},
	}
	for _, tc := range cases {
		rules, err := ParseFaultScript("append@" + tc.occur + "=err")
		if err != nil {
			t.Fatalf("occurrence %q: %v", tc.occur, err)
		}
		want := map[int]bool{}
		for _, n := range tc.fires {
			want[n] = true
		}
		for n := 1; n <= 8; n++ {
			if got := rules[0].matches("append", n); got != want[n] {
				t.Errorf("occurrence %q call %d: matches = %v, want %v", tc.occur, n, got, want[n])
			}
		}
	}
}

// TestFaultyTornAppendPoisonsAndRecovers is the storage-level half of
// the crash contract: an injected torn append lands a real partial
// record in the WAL and poisons the backend, and a fresh open of the
// same directory truncates the torn tail and recovers exactly the
// durable prefix.
func TestFaultyTornAppendPoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaulty(d, "append@2=torn:9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 2}}}); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	err = f.Append(&Record{Op: OpInsert, Name: "R", Tuples: [][]int{{3, 4}}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append 2 = %v, want ErrInjected", err)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", f.Injected())
	}
	// The torn write poisoned the durable backend: further appends are
	// refused with ErrPoisoned, and Healthy reports it.
	if err := f.Append(&Record{Op: OpInsert, Name: "R", Epoch: 1, Tuples: [][]int{{5, 6}}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
	if err := f.Healthy(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Healthy() = %v, want ErrPoisoned", err)
	}
	if !strings.HasPrefix(f.Stats().Mode, "faulty+") {
		t.Fatalf("Stats().Mode = %q, want faulty+ prefix", f.Stats().Mode)
	}
	f.Close()

	// Recovery: the first record survives, the 9-byte torn tail is
	// truncated away.
	d2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	state, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Relations) != 1 || state.Relations[0].Name != "R" || len(state.Relations[0].Tuples) != 1 {
		t.Fatalf("recovered state = %+v, want R with its create-time tuple only", state.Relations)
	}
	if tb := d2.Stats().TruncatedBytes; tb != 9 {
		t.Fatalf("TruncatedBytes = %d, want 9", tb)
	}
}

func TestFaultyENOSPC(t *testing.T) {
	f, err := NewFaulty(NewMem(), "append@*=enospc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	err = f.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A"}})
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append = %v, want ErrInjected wrapping ENOSPC", err)
	}
	// The Mem backend has no poison seam: the fault is the error alone.
	if err := f.Healthy(); err != nil {
		t.Fatalf("Healthy() over Mem = %v, want nil", err)
	}
}

// TestFaultyCompactFailSoft: an injected compaction failure never
// touches the inner backend — the WAL stays authoritative and appends
// keep working, exactly like a real snapshot-write failure.
func TestFaultyCompactFailSoft(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, Options{CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaulty(d, "compact@*=err")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A"}, Tuples: [][]int{{1}}}); err != nil {
		t.Fatal(err)
	}
	if !f.ShouldCompact() {
		t.Fatal("expected ShouldCompact with a 1-byte threshold")
	}
	if err := f.Compact(&State{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("compact = %v, want ErrInjected", err)
	}
	if err := f.Healthy(); err != nil {
		t.Fatalf("Healthy() after failed compaction = %v, want nil", err)
	}
	if err := f.Append(&Record{Op: OpInsert, Name: "R", Epoch: 0, Tuples: [][]int{{2}}}); err != nil {
		t.Fatalf("append after failed compaction = %v, want nil", err)
	}
	if d.Stats().Snapshots != 0 {
		t.Fatalf("Snapshots = %d, want 0 (compaction never ran)", d.Stats().Snapshots)
	}
	f.Close()
}

func TestFaultyDelayProceeds(t *testing.T) {
	f, err := NewFaulty(NewMem(), "append@*=delay:1ms; sync@*=delay:1ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Append(&Record{Op: OpCreate, Name: "R", Vars: []string{"A"}}); err != nil {
		t.Fatalf("delayed append = %v, want nil", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("delayed sync = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("ops returned after %v, want >= 2ms of injected delay", elapsed)
	}
	if f.Injected() != 0 {
		t.Fatalf("Injected() = %d, want 0 (delays are not failures)", f.Injected())
	}
}

// TestFaultyRandDeterminism: the same seed injects the same fault
// sequence — the property that makes a failing chaos run replayable.
func TestFaultyRandDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		f := NewFaultyRand(NewMem(), seed, 0.3)
		f.Recover()
		var outcomes []bool
		for i := 0; i < 64; i++ {
			err := f.Sync()
			outcomes = append(outcomes, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("sync = %v, want ErrInjected or nil", err)
			}
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at op %d", i)
		}
	}
	if n := NewFaultyRand(NewMem(), 42, 0.3); n.Injected() != 0 {
		t.Fatal("fresh backend reports injections")
	}
}

func FuzzFaultScript(f *testing.F) {
	f.Add("append@3=torn:17; compact@1/2=err; sync@*=delay:100us")
	f.Add("recover@2+=enospc")
	f.Add("close@1=err;;append@*=torn")
	f.Add("@=;@@==")
	f.Add("append@18446744073709551616=err")
	f.Fuzz(func(t *testing.T, script string) {
		rules, err := ParseFaultScript(script)
		if err != nil {
			return
		}
		// A parsed script must be usable: matching any rule against the
		// first few calls of its op must not panic.
		for i := range rules {
			for n := 1; n <= 4; n++ {
				rules[i].matches(rules[i].op, n)
			}
		}
	})
}

package minesweeper

import (
	"reflect"
	"testing"
)

func parserRels(t *testing.T) map[string]*Relation {
	t.Helper()
	r := rel(t, "R", 2, [][]int{{1, 2}, {2, 3}})
	s := rel(t, "S", 2, [][]int{{2, 5}})
	u := rel(t, "U", 1, [][]int{{1}})
	return map[string]*Relation{"R": r, "S": s, "U": u, "Edge": r}
}

func TestParseQueryBasic(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("R(A,B), S(B,C)", rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("Vars = %v", got)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQuerySeparators(t *testing.T) {
	rels := parserRels(t)
	exprs := []string{
		"R(A,B) ⋈ S(B,C)",
		"R(A,B) |><| S(B,C)",
		"R(A,B) join S(B,C)",
		"R(A,B)join S(B,C)",
		"R(A,B)\n\tS(B,C)",
		"R( A , B ) , S( B , C )",
	}
	for _, e := range exprs {
		q, err := ParseQuery(e, rels)
		if err != nil {
			t.Fatalf("%q: %v", e, err)
		}
		if len(q.Vars()) != 3 {
			t.Fatalf("%q: vars %v", e, q.Vars())
		}
	}
}

func TestParseQueryJoinKeywordBoundary(t *testing.T) {
	// A relation whose name starts with "join" must not be eaten by the
	// separator scanner.
	joint := rel(t, "joint", 1, [][]int{{1}})
	rels := map[string]*Relation{"joint": joint}
	q, err := ParseQuery("joint(A)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// A relation literally named "join" stays usable: followed by "(",
	// the word is an atom, not a separator.
	jn := rel(t, "join", 1, [][]int{{2}})
	q, err = ParseQuery("join(A)", map[string]*Relation{"join": jn})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Execute(q, nil); err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// And "join" used as both separator and glue around newlines.
	rels2 := parserRels(t)
	if _, err := ParseQuery("R(A,B)\njoin\nS(B,C)", rels2); err != nil {
		t.Fatal(err)
	}
}

func TestParseQuerySelfJoin(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("Edge(x,y) Edge(y,z)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Edge = {(1,2),(2,3)}: one 2-path 1→2→3.
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQueryUnary(t *testing.T) {
	rels := parserRels(t)
	q, err := ParseQuery("U(A), R(A, B)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}

func TestParseQueryErrors(t *testing.T) {
	rels := parserRels(t)
	cases := []string{
		"",         // no atoms
		"  , ",     // separators only
		"R",        // missing (
		"R(",       // missing var
		"R()",      // empty var list
		"R(A",      // missing )
		"R(A,)",    // trailing comma
		"Q(A)",     // unknown relation
		"R(A,B) S", // trailing junk
		"R(1A)",    // bad identifier
		"R(A,B,C)", // arity mismatch (caught by NewQuery)
		"R(A,A)",   // repeated var (caught by NewQuery)
	}
	for _, e := range cases {
		if _, err := ParseQuery(e, rels); err == nil {
			t.Errorf("%q: expected error", e)
		}
	}
}

func TestParseQueryUnicodeIdent(t *testing.T) {
	rels := map[string]*Relation{"Rel_1": rel(t, "Rel_1", 1, [][]int{{7}})}
	q, err := ParseQuery("Rel_1(x_0)", rels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(q, nil)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

package baseline

import (
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
)

// hashTrie is a nested hash-map index over an atom's attributes in GAO
// order, the access structure used by our NPRR-style generic join [40].
type hashTrie struct {
	children map[int]*hashTrie
}

func buildHashTrie(tuples [][]int) *hashTrie {
	root := &hashTrie{children: map[int]*hashTrie{}}
	for _, tup := range tuples {
		n := root
		for _, v := range tup {
			child, ok := n.children[v]
			if !ok {
				child = &hashTrie{children: map[int]*hashTrie{}}
				n.children[v] = child
			}
			n = child
		}
	}
	return root
}

// NPRR evaluates the join with an attribute-at-a-time generic join in the
// style of Ngo–Porat–Ré–Rudra [40]: at each GAO attribute, the candidate
// set is the distinct values of the participating atom with the fewest
// candidates (the size-based choice behind the AGM bound), and each
// candidate is hash-probed against the other participating atoms.
// Worst-case optimal, but ω(|C|) on the Appendix J families.
func NPRR(p *core.Problem, stats *certificate.Stats, emit func([]int)) error {
	n := len(p.GAO)
	levelAtoms := make([][]int, n)
	for ai := range p.Atoms {
		for _, gp := range p.Atoms[ai].Positions {
			levelAtoms[gp] = append(levelAtoms[gp], ai)
		}
	}
	tries := make([]*hashTrie, len(p.Atoms))
	for i := range p.Atoms {
		tries[i] = buildHashTrie(p.Atoms[i].Tree.Tuples())
	}
	// cursor[i]: current hash-trie node of atom i given the bound prefix.
	cursor := make([]*hashTrie, len(p.Atoms))
	copy(cursor, tries)
	t := make([]int, n)
	var rec func(level int) error
	rec = func(level int) error {
		if level == n {
			if stats != nil {
				stats.Outputs++
			}
			emit(append([]int(nil), t...))
			return nil
		}
		parts := levelAtoms[level]
		// Smallest candidate set among the participating atoms.
		minIdx := parts[0]
		for _, ai := range parts[1:] {
			if len(cursor[ai].children) < len(cursor[minIdx].children) {
				minIdx = ai
			}
		}
		saved := make([]*hashTrie, len(parts))
		for v, sub := range cursor[minIdx].children {
			ok := true
			for _, ai := range parts {
				if stats != nil {
					stats.Comparisons++
				}
				if ai == minIdx {
					continue
				}
				if _, found := cursor[ai].children[v]; !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for si, ai := range parts {
				saved[si] = cursor[ai]
				if ai == minIdx {
					cursor[ai] = sub
				} else {
					cursor[ai] = cursor[ai].children[v]
				}
			}
			t[level] = v
			if err := rec(level + 1); err != nil {
				return err
			}
			for si, ai := range parts {
				cursor[ai] = saved[si]
			}
		}
		return nil
	}
	return rec(0)
}

// NPRRAll runs NPRR and collects the outputs in canonical order.
// (Hash-map iteration is unordered, so outputs are sorted.)
func NPRRAll(p *core.Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := NPRR(p, stats, func(t []int) { out = append(out, t) })
	SortTuples(out)
	return out, err
}

// Benchmark harness: one testing.B benchmark per experiment in DESIGN.md's
// index (E1–E9), regenerating the paper's Figure 2 measurement and the
// per-theorem scaling behaviours, plus micro-benchmarks of the substrate
// data structures. The experiment bodies live in internal/benchsuite so
// the same measurements feed both `go test -bench` and the tracked
// BENCH_<n>.json trajectory written by `msbench -json`. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics: findgaps/op is the paper's certificate-size
// measurement, probes/op the outer-loop iterations, cdsops/op the
// constraint-store work.
package minesweeper

import (
	"fmt"
	"testing"

	"minesweeper/internal/baseline"
	"minesweeper/internal/benchsuite"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/dataset"
	"minesweeper/internal/ordered"
	"minesweeper/internal/reltree"
)

func report(b *testing.B, s *certificate.Stats, n int) {
	b.ReportMetric(float64(s.FindGaps)/float64(n), "findgaps/op")
	b.ReportMetric(float64(s.ProbePoints)/float64(n), "probes/op")
	b.ReportMetric(float64(s.CDSOps)/float64(n), "cdsops/op")
	b.ReportMetric(float64(s.Boxes)/float64(n), "boxes/op")
	b.ReportMetric(float64(s.BoxSkips)/float64(n), "boxskips/op")
}

// --- E1: Figure 2 -----------------------------------------------------

func BenchmarkFigure2Star(b *testing.B) { benchsuite.Fig2Star(b) }
func BenchmarkFigure2Path(b *testing.B) { benchsuite.Fig2Path(b) }
func BenchmarkFigure2Tree(b *testing.B) { benchsuite.Fig2Tree(b) }

// --- E2: Theorem 2.7 β-acyclic scaling --------------------------------

func BenchmarkBetaAcyclicScaling(b *testing.B) {
	for _, M := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("M=%d", M), func(b *testing.B) {
			benchsuite.BetaAcyclic(b, M)
		})
	}
}

// --- E3: Appendix J — Minesweeper vs WCOJ baselines -------------------

func benchmarkAppendixJ(b *testing.B, M int, run func(*core.Problem, []string, []core.AtomSpec) error) {
	gao, atoms := dataset.AppendixJPath(5, M)
	p, err := core.NewProblem(gao, atoms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(p, gao, atoms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixJMinesweeper(b *testing.B) { benchsuite.AppendixJMinesweeper(b) }
func BenchmarkAppendixJLeapfrog(b *testing.B)    { benchsuite.AppendixJLeapfrog(b) }

func BenchmarkAppendixJNPRR(b *testing.B) {
	benchmarkAppendixJ(b, 64, func(p *core.Problem, _ []string, _ []core.AtomSpec) error {
		_, err := baseline.NPRRAll(p, nil)
		return err
	})
}

func BenchmarkAppendixJYannakakis(b *testing.B) {
	benchmarkAppendixJ(b, 64, func(_ *core.Problem, gao []string, atoms []core.AtomSpec) error {
		_, err := baseline.Yannakakis(gao, atoms, nil)
		return err
	})
}

// --- E4: Appendix H set intersection -----------------------------------

func BenchmarkSetIntersectionBlocks(b *testing.B)      { benchsuite.SetIntersectionBlocks(b) }
func BenchmarkSetIntersectionInterleaved(b *testing.B) { benchsuite.SetIntersectionInterleaved(b) }

// BenchmarkIntersectCrossover sweeps the max/min set-size ratio across
// the adaptive switch point, running both strategies at every ratio.
// This is the measurement behind core's mergeCrossoverRatio: merge wins
// on balanced inputs, the interval-list CDS on skewed ones.
func BenchmarkIntersectCrossover(b *testing.B) {
	const base = 40000
	for _, ratio := range []int{1, 4, 8, 32, 128} {
		sets := dataset.BlockSets(3, base)
		small := make([]int, 0, base/ratio)
		for i := 0; i < len(sets[0]); i += ratio {
			small = append(small, sets[0][i])
		}
		skewed := append([][]int{small}, sets[1:]...)
		b.Run(fmt.Sprintf("ratio=%d/cds", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.IntersectSets(skewed, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ratio=%d/merge", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.IntersectSetsMerge(skewed, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ratio=%d/adaptive", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.IntersectSetsAdaptive(skewed, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Appendix I bow-tie --------------------------------------------

func BenchmarkBowtieHiddenGap(b *testing.B) { benchsuite.Bowtie(b) }

// --- E6: Theorem 5.4 triangle ------------------------------------------

func BenchmarkTriangleSpecialized(b *testing.B) { benchsuite.TriangleSpecialized(b) }
func BenchmarkTriangleGeneric(b *testing.B)     { benchsuite.TriangleGeneric(b) }

func BenchmarkTriangleLeapfrog(b *testing.B) {
	r, s, t := dataset.TriangleHard(128)
	p, err := core.NewProblem([]string{"A", "B", "C"}, []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
		{Name: "T", Attrs: []string{"A", "C"}, Tuples: t},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LeapfrogAll(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleListingGraph(b *testing.B) {
	g := dataset.PowerLawGraph(600, 8, true, 5)
	r, s, t := dataset.TriangleGraph(g)
	var stats certificate.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Triangle(r, s, t, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

// --- E7: Proposition 5.3 treewidth family -------------------------------

func BenchmarkTreewidthFamily(b *testing.B) {
	for _, m := range []int{16, 32} {
		b.Run(fmt.Sprintf("w=2/m=%d", m), func(b *testing.B) {
			benchsuite.Treewidth(b, m)
		})
	}
}

// --- E8: Example 4.1 memoization ----------------------------------------

func BenchmarkMemoization(b *testing.B) { benchsuite.Memoization(b) }

// --- E9: Examples B.3/B.4 GAO dependence --------------------------------

func BenchmarkGAODependenceABC(b *testing.B) {
	benchsuite.GAODependence(b, []string{"A", "B", "C"})
}
func BenchmarkGAODependenceCAB(b *testing.B) {
	benchsuite.GAODependence(b, []string{"C", "A", "B"})
}

// --- E10/E11: selection pushdown and streaming aggregation ---------------

func BenchmarkSelectivePushdown(b *testing.B)   { benchsuite.SelectivePushdown(b) }
func BenchmarkSelectivePostFilter(b *testing.B) { benchsuite.SelectivePostFilter(b) }
func BenchmarkAggregateGroupCount(b *testing.B) { benchsuite.AggregateGroupCount(b) }

// --- E12: data-aware GAO planning + dense-domain dictionaries --------

func BenchmarkSparseSkewDefault(b *testing.B)         { benchsuite.SparseSkewDefault(b) }
func BenchmarkSparseSkewPlanned(b *testing.B)         { benchsuite.SparseSkewPlanned(b) }
func BenchmarkSparseHeavyEnumDefault(b *testing.B)    { benchsuite.SparseHeavyEnumDefault(b) }
func BenchmarkSparseHeavyEnumPlannedRaw(b *testing.B) { benchsuite.SparseHeavyEnumPlannedRaw(b) }
func BenchmarkSparseHeavyEnumPlanned(b *testing.B)    { benchsuite.SparseHeavyEnumPlanned(b) }

// --- E13: clustered joins, box-cover vs interval-only CDS ------------

func BenchmarkClusteredBandBoxes(b *testing.B)           { benchsuite.ClusteredBandBoxes(b) }
func BenchmarkClusteredBandIntervalOnly(b *testing.B)    { benchsuite.ClusteredBandIntervalOnly(b) }
func BenchmarkClusteredOverlapBoxes(b *testing.B)        { benchsuite.ClusteredOverlapBoxes(b) }
func BenchmarkClusteredOverlapIntervalOnly(b *testing.B) { benchsuite.ClusteredOverlapIntervalOnly(b) }

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkCDSProbeInsertLoop(b *testing.B) { benchsuite.CDSProbeInsertLoop(b) }
func BenchmarkCDSInsConstraint(b *testing.B)   { benchsuite.CDSInsConstraint(b) }

func BenchmarkRangeSetInsert(b *testing.B) { benchsuite.RangeSetInsert(b) }

func BenchmarkRangeSetNext(b *testing.B) {
	rs := ordered.NewRangeSet()
	for j := 0; j < 10000; j++ {
		rs.Insert(j*10, j*10+5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Next(i % 100000)
	}
}

func BenchmarkSortedListInsertDelete(b *testing.B) { benchsuite.SortedListInsertDelete(b) }

func BenchmarkFindGap(b *testing.B) {
	tuples := make([][]int, 100000)
	for i := range tuples {
		tuples[i] = []int{i * 2}
	}
	tr, err := reltree.New("R", 1, tuples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.FindGap(nil, (i*7)%200000)
	}
}

func BenchmarkDyadicInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dt := ordered.NewDyadicTree(1024)
		for j := 0; j < 200; j++ {
			dt.InsertAtKey(j%1024, j*5, j*5+20)
		}
	}
}

// --- End-to-end through the public API ----------------------------------

func BenchmarkExecuteMinesweeperTwoPath(b *testing.B) {
	g := dataset.PowerLawGraph(2000, 6, false, 3)
	e, err := NewRelation("E", 2, g.Edges)
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	u, err := NewRelation("U", 1, dataset.SampleVertices(2000, 0.01, 9))
	if err != nil {
		b.Fatal(err)
	}
	q2, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
		Atom{Rel: u, Vars: []string{"A"}},
		Atom{Rel: u, Vars: []string{"C"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	_ = q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(q2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleParallel(b *testing.B) {
	g := dataset.PowerLawGraph(600, 8, true, 5)
	r, _, _ := dataset.TriangleGraph(g)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TriangleParallel(r, r, r, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBTreeVsSortedListInsert(b *testing.B) {
	const n = 10000
	b.Run("btree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := ordered.NewBTree[int]()
			for j := 0; j < n; j++ {
				t.Insert((j*2654435761)%1000000, j)
			}
		}
	})
	b.Run("avl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := ordered.NewSortedList[int]()
			for j := 0; j < n; j++ {
				t.Insert((j*2654435761)%1000000, j)
			}
		}
	})
}

func BenchmarkBTreeVsSortedListLookup(b *testing.B) {
	const n = 100000
	bt := ordered.NewBTree[int]()
	av := ordered.NewSortedList[int]()
	for j := 0; j < n; j++ {
		k := (j * 2654435761) % 10000000
		bt.Insert(k, j)
		av.Insert(k, j)
	}
	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt.FindLub(i % 10000000)
		}
	})
	b.Run("avl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			av.FindLub(i % 10000000)
		}
	})
}

func BenchmarkExecuteLimitAnytime(b *testing.B) {
	g := dataset.PowerLawGraph(3000, 8, false, 12)
	e, err := NewRelation("E", 2, g.Edges)
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	gao := []string{"A", "B", "C"}
	b.Run("limit10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteLimit(q, &Options{GAO: gao}, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Execute(q, &Options{GAO: gao}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreparedVsCold measures what Prepare buys a served workload:
// "cold" rebuilds every GAO-permuted index per execution (the
// pre-refactor behaviour of Execute), "prepared" builds them once and
// re-executes against the cache. The prepared sub-benchmark also asserts
// that re-execution performs zero reltree builds.
func BenchmarkPreparedVsCold(b *testing.B) {
	g := dataset.PowerLawGraph(2000, 6, false, 3)
	e, err := NewRelation("E", 2, g.Edges)
	if err != nil {
		b.Fatal(err)
	}
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	gao := []string{"A", "B", "C"}
	specs := q.atomSpecs()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := core.NewProblem(gao, specs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.MinesweeperAll(p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		pq, err := q.Prepare(&Options{GAO: gao})
		if err != nil {
			b.Fatal(err)
		}
		before := reltree.Builds()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pq.Execute(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := reltree.Builds(); got != before {
			b.Fatalf("prepared re-execution rebuilt %d indexes", got-before)
		}
	})
	// With a limit, the anytime engine does O(k) probes — so on the cold
	// path the index build dominates, and the prepared path skips it.
	b.Run("cold-limit10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := core.NewProblem(gao, specs)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if err := core.MinesweeperStream(p, nil, func([]int) bool {
				n++
				return n < 10
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-limit10", func(b *testing.B) {
		b.ReportAllocs()
		pq, err := q.Prepare(&Options{GAO: gao})
		if err != nil {
			b.Fatal(err)
		}
		before := reltree.Builds()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pq.ExecuteLimit(10); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := reltree.Builds(); got != before {
			b.Fatalf("prepared limit re-execution rebuilt %d indexes", got-before)
		}
	})
}

func BenchmarkSetIntersectionMergeVariant(b *testing.B) {
	sets := dataset.InterleavedSets(4, 5000)
	var stats certificate.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntersectSetsMerge(sets, &stats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, &stats, b.N)
}

func BenchmarkIntersectAdaptiveSkewed(b *testing.B) { benchsuite.IntersectAdaptiveSkewed(b) }

// --- E14: durability (storage-layer WAL + recovery) -------------------

func BenchmarkDurableAppend(b *testing.B) {
	b.Run("mem", benchsuite.DurableAppendMem)
	b.Run("wal", benchsuite.DurableAppendWAL)
	b.Run("wal-fsync", benchsuite.DurableAppendWALFsync)
}

func BenchmarkDurableRecovery(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("wal=%d", n), func(b *testing.B) {
			benchsuite.DurableRecovery(b, n)
		})
	}
}

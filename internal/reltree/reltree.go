// Package reltree implements the paper's model of indexed relations
// (Section 2.1 and Figure 3): every relation is stored in an ordered
// search tree whose search key is consistent with the global attribute
// order (GAO). Tuples inside the tree are addressed by index tuples
// x = (x1, …, xj): R[x1] is the x1-th smallest value in the first
// attribute, R[x1, x2] the x2-th smallest second-attribute value among
// tuples whose first attribute equals R[x1], and so on.
//
// The structure supports the single access primitive the Minesweeper
// analysis relies on:
//
//	R.FindGap(x, a) → (lo, hi)
//
// which runs in O(k log |R|) and returns the tightest pair of child
// indexes around the value a under prefix x (Section 2.1).
//
// Index convention: indexes are 0-based; following the paper's
// conventions (1) and (2), the out-of-range index -1 denotes the value
// -∞ and the out-of-range index len denotes +∞.
//
// Physically the tree is stored twice over one set of value arrays: a
// contiguous CSR-style flat layout (one concatenated value array per
// level plus int32 child-range offsets) that the probe-path primitives
// — FindGap, Value, InRange, Fanout, Contains — run on with
// hint-seeded galloping search, and a conventional node view carved out
// of the same backing arrays for iterator-style consumers (Root,
// Tuples, Leapfrog). The flat layout replaces per-level pointer chasing
// with three array reads per level, which is what keeps the Minesweeper
// probe loop inside a few cache lines on immutable snapshots.
package reltree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// Node is an internal node of the relation search tree. Values holds the
// sorted distinct values of one attribute under a fixed prefix; for
// non-leaf levels, Children[i] refines Values[i]. Counts[i] is the
// number of tuples stored under Values[i]; it is recorded only at the
// root level (its sole consumer is SliceTop's size computation) and only
// when the root is not a leaf (leaves hold one tuple per value).
type Node struct {
	Values   []int
	Children []*Node // nil at the deepest level
	Counts   []int   // root level only, nil at leaves
}

// builds counts every index constructed by New since process start.
// Clone and SliceTop views are not counted: tests and benchmarks use the
// counter to assert that prepared queries reuse cached indexes instead of
// rebuilding them.
var builds atomic.Int64

// Builds returns the process-wide count of New calls.
func Builds() int64 { return builds.Load() }

// flatIndex is the CSR-style layout of a relation tree: levels[d] holds
// every depth-d value in depth-first order, and offs[d][p] is the start
// of entry p's children inside levels[d+1] (offs[d] carries one trailing
// sentinel, so entry p's children occupy levels[d+1][offs[d][p]:
// offs[d][p+1]]). The layout is immutable and shared by every view of
// the tree; the node hierarchy returned by Root carves its Values
// slices out of the same arrays.
type flatIndex struct {
	levels [][]int
	offs   [][]int32 // len arity-1; offs[d] has len(levels[d])+1 entries
}

// maxHintLevels bounds the per-view galloping hints; deeper levels fall
// back to plain binary search (atom arities beyond this are rare).
const maxHintLevels = 8

// Tree is an indexed relation: a search tree over tuples of fixed arity
// whose level order equals the (GAO-consistent) attribute order used to
// build it.
type Tree struct {
	name  string
	arity int
	size  int // number of tuples
	root  *Node
	flat  *flatIndex
	top0  int // absolute offset of this view's level-0 segment
	stats *certificate.Stats
	// hints remembers, per level, where the last flat search landed.
	// Probe points ascend lexicographically, so seeding the next search
	// there turns most binary searches into a short gallop. The array is
	// part of the struct value: every per-run View carries its own
	// hints, so concurrent runs over one cached index never share them.
	hints [maxHintLevels]int32
}

// New builds the search tree for the given tuples. All tuples must have
// length arity and non-negative components (the paper's ℕ domain).
// Duplicate tuples are collapsed (relations are sets). The tuple slice is
// not retained. The stats receiver may be nil; use SetStats to attach one
// per run.
func New(name string, arity int, tuples [][]int) (*Tree, error) {
	if arity < 1 {
		return nil, fmt.Errorf("reltree: relation %q: arity must be ≥ 1, got %d", name, arity)
	}
	sorted := make([][]int, 0, len(tuples))
	for i, tup := range tuples {
		if len(tup) != arity {
			return nil, fmt.Errorf("reltree: relation %q: tuple %d has %d components, want %d", name, i, len(tup), arity)
		}
		for j, v := range tup {
			if v < 0 || v >= ordered.PosInf {
				return nil, fmt.Errorf("reltree: relation %q: tuple %d component %d = %d out of domain [0, PosInf)", name, i, j, v)
			}
		}
		sorted = append(sorted, tup)
	}
	sort.Slice(sorted, func(i, j int) bool { return lexLess(sorted[i], sorted[j]) })
	sorted = dedup(sorted)
	t := &Tree{name: name, arity: arity, size: len(sorted)}
	t.flat = buildFlat(sorted, arity)
	t.root = t.flat.carve(0, 0, len(t.flat.levels[0]), arity)
	t.flat.rootCounts(t.root, arity)
	builds.Add(1)
	return t, nil
}

// NewFromValues builds the arity-1 search tree for a plain value list —
// the shape the set-intersection solvers use — without wrapping every
// element in a one-int tuple: three allocations total instead of one
// per element. Duplicates collapse; the input slice is not retained.
func NewFromValues(name string, values []int) (*Tree, error) {
	vs := make([]int, len(values))
	copy(vs, values)
	sort.Ints(vs)
	out := vs[:0]
	for i, v := range vs {
		if v < 0 || v >= ordered.PosInf {
			return nil, fmt.Errorf("reltree: relation %q: value %d out of domain [0, PosInf)", name, v)
		}
		if i > 0 && v == vs[i-1] {
			continue
		}
		out = append(out, v)
	}
	t := &Tree{name: name, arity: 1, size: len(out), root: &Node{Values: out}}
	t.flat = &flatIndex{levels: [][]int{out}}
	builds.Add(1)
	return t, nil
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func dedup(sorted [][]int) [][]int {
	out := sorted[:0]
	for i, tup := range sorted {
		if i > 0 && equal(tup, sorted[i-1]) {
			continue
		}
		out = append(out, tup)
	}
	return out
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildFlat constructs the CSR layout from the sorted, deduplicated
// tuples in one pass: a depth-d entry opens whenever the length-(d+1)
// prefix changes, and its child range starts wherever level d+1 has
// grown to at that moment (children are appended contiguously right
// after, depth-first).
func buildFlat(sorted [][]int, arity int) *flatIndex {
	f := &flatIndex{levels: make([][]int, arity)}
	if arity > 1 {
		f.offs = make([][]int32, arity-1)
	}
	for i, tup := range sorted {
		d0 := 0
		if i > 0 {
			prev := sorted[i-1]
			for prev[d0] == tup[d0] {
				d0++
			}
		}
		for d := d0; d < arity; d++ {
			if d < arity-1 {
				f.offs[d] = append(f.offs[d], int32(len(f.levels[d+1])))
			}
			f.levels[d] = append(f.levels[d], tup[d])
		}
	}
	for d := 0; d < arity-1; d++ {
		f.offs[d] = append(f.offs[d], int32(len(f.levels[d+1])))
	}
	return f
}

// carve builds the node view of the flat entry range [lo, hi) at level
// d. Node Values alias the flat level arrays — the two representations
// share one copy of the data.
func (f *flatIndex) carve(d, lo, hi, arity int) *Node {
	n := &Node{}
	if lo < hi {
		n.Values = f.levels[d][lo:hi:hi]
	}
	if d < arity-1 && lo < hi {
		n.Children = make([]*Node, hi-lo)
		for p := lo; p < hi; p++ {
			n.Children[p-lo] = f.carve(d+1, int(f.offs[d][p]), int(f.offs[d][p+1]), arity)
		}
	}
	return n
}

// rootCounts fills the root node's per-value tuple counts (consumed by
// SliceTop's size computation): the width of each top entry's leaf-level
// descendant range, read off the offset chain.
func (f *flatIndex) rootCounts(root *Node, arity int) {
	if arity < 2 || len(root.Values) == 0 {
		return
	}
	counts := make([]int, len(root.Values))
	for i := range counts {
		lo, hi := i, i+1
		for d := 0; d < arity-1; d++ {
			lo, hi = int(f.offs[d][lo]), int(f.offs[d][hi])
		}
		counts[i] = hi - lo
	}
	root.Counts = counts
}

// Name returns the relation's name.
func (t *Tree) Name() string { return t.name }

// Arity returns the number of attributes.
func (t *Tree) Arity() int { return t.arity }

// Size returns the number of (distinct) tuples.
func (t *Tree) Size() int { return t.size }

// SetStats attaches the per-run cost counters; nil detaches.
func (t *Tree) SetStats(s *certificate.Stats) { t.stats = s }

// Clone returns a shallow per-run view of the tree: it shares the
// immutable node structure but carries its own stats receiver, so
// concurrent executions over a cached index can each attach their own
// counters without racing. O(1).
func (t *Tree) Clone() *Tree {
	cp := t.View()
	return &cp
}

// View is Clone by value: a detached copy sharing the immutable node
// structure, with no stats receiver. Callers that clone many trees per
// run (Problem.Snapshot, the parallel workers) store Views in one
// block instead of paying one heap allocation per Clone.
func (t *Tree) View() Tree {
	cp := *t
	cp.stats = nil
	return cp
}

// sliceView packs a sliced tree and its root node into one allocation;
// SliceTop runs once per worker per atom per parallel execution, so the
// saved allocation is on a served workload's steady-state path.
type sliceView struct {
	tree Tree
	node Node
}

// SliceTop returns a view of the tree restricted to the tuples whose
// first attribute lies in [lo, hi]. The view shares all nodes with the
// receiver (nothing is re-sorted or rebuilt), which is how range-parallel
// executions hand each worker its partition of a cached index. The view
// carries no stats receiver. O(log fanout), one allocation.
func (t *Tree) SliceTop(lo, hi int) *Tree {
	root := t.root
	i := sort.SearchInts(root.Values, lo)
	j := sort.SearchInts(root.Values, hi+1)
	v := &sliceView{}
	v.node.Values = root.Values[i:j]
	size := j - i // leaf level: one tuple per value
	if root.Children != nil {
		v.node.Children = root.Children[i:j]
		v.node.Counts = root.Counts[i:j]
		size = 0
		for _, c := range v.node.Counts {
			size += c
		}
	}
	v.tree = Tree{name: t.name, arity: t.arity, size: size, root: &v.node,
		flat: t.flat, top0: t.top0 + i}
	return &v.tree
}

// node returns the node addressed by the index tuple x (all components
// must be in range), or nil when x is out of range. len(x) must be
// < arity for a node to exist below it; len(x) == 0 returns the root.
func (t *Tree) node(x []int) *Node {
	n := t.root
	for _, xi := range x {
		if n == nil || xi < 0 || xi >= len(n.Values) || n.Children == nil {
			return nil
		}
		n = n.Children[xi]
	}
	return n
}

// flatSeg resolves index prefix x to the absolute value range
// [lo, hi) of its children at level len(x): three array reads per level
// against contiguous memory, no pointer chasing. ok is false when x is
// out of range (mirroring node returning nil).
func (t *Tree) flatSeg(x []int) (lo, hi int, ok bool) {
	lo = t.top0
	hi = t.top0 + len(t.root.Values)
	f := t.flat
	for d, xi := range x {
		if xi < 0 || xi >= hi-lo || d >= len(f.offs) {
			return 0, 0, false
		}
		p := lo + xi
		lo, hi = int(f.offs[d][p]), int(f.offs[d][p+1])
	}
	return lo, hi, true
}

// gallopSearch returns the first index in [lo, hi) whose value is ≥ a
// (hi when none is), starting from seed: exponential probing outward
// from the seed, then binary search over the surviving range. When the
// seed is near the answer — the common case on ascending probe points —
// the search touches O(log distance) entries instead of O(log n).
func gallopSearch(arr []int, lo, hi, seed, a int) int {
	if lo >= hi {
		return lo
	}
	if seed < lo {
		seed = lo
	} else if seed >= hi {
		seed = hi - 1
	}
	var l, r int // answer ∈ [l, r]; arr[l-1] < a (or l == lo), arr[r] ≥ a (or r == hi)
	if arr[seed] < a {
		l = seed + 1
		step := 1
		r = l + step
		for r < hi && arr[r] < a {
			l = r + 1
			step <<= 1
			r = l + step
		}
		if r > hi {
			r = hi
		}
	} else {
		r = seed
		step := 1
		l = r - step
		for l > lo && arr[l-1] >= a {
			r = l - 1
			step <<= 1
			l = r - step
		}
		if l < lo {
			l = lo
		}
	}
	for l < r {
		m := int(uint(l+r) >> 1)
		if arr[m] < a {
			l = m + 1
		} else {
			r = m
		}
	}
	return l
}

// Fanout returns |R[x, *]|: the number of distinct values below prefix x.
// It panics if x is out of range or longer than arity-1.
func (t *Tree) Fanout(x []int) int {
	if t.flat != nil {
		lo, hi, ok := t.flatSeg(x)
		if !ok {
			panic(fmt.Sprintf("reltree: %s: Fanout of invalid index tuple %v", t.name, x))
		}
		return hi - lo
	}
	n := t.node(x)
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: Fanout of invalid index tuple %v", t.name, x))
	}
	return len(n.Values)
}

// Value returns R[x]: the value addressed by the non-empty index tuple x.
// All components except the last must be in range; the last component may
// be the out-of-range -1 (returns NegInf) or len (returns PosInf),
// following conventions (1) and (2) of the paper.
func (t *Tree) Value(x []int) int {
	if len(x) == 0 {
		panic("reltree: Value of empty index tuple")
	}
	if t.flat != nil {
		lo, hi, ok := t.flatSeg(x[:len(x)-1])
		if !ok {
			panic(fmt.Sprintf("reltree: %s: Value of invalid index tuple %v", t.name, x))
		}
		last := x[len(x)-1]
		switch {
		case last <= -1:
			return ordered.NegInf
		case last >= hi-lo:
			return ordered.PosInf
		}
		return t.flat.levels[len(x)-1][lo+last]
	}
	n := t.node(x[:len(x)-1])
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: Value of invalid index tuple %v", t.name, x))
	}
	last := x[len(x)-1]
	switch {
	case last <= -1:
		return ordered.NegInf
	case last >= len(n.Values):
		return ordered.PosInf
	}
	return n.Values[last]
}

// InRange reports whether index i is a real coordinate under prefix x.
func (t *Tree) InRange(x []int, i int) bool {
	if t.flat != nil {
		lo, hi, ok := t.flatSeg(x)
		return ok && i >= 0 && i < hi-lo
	}
	n := t.node(x)
	return n != nil && i >= 0 && i < len(n.Values)
}

// FindGap implements the index primitive of Section 2.1: given an in-range
// index tuple x with len(x) < arity and a value a, it returns indexes
// (lo, hi) such that R[(x, lo)] ≤ a ≤ R[(x, hi)], lo maximal and hi
// minimal. lo may be -1 (value -∞) and hi may be Fanout(x) (value +∞).
// When a occurs under x, lo == hi. Runs in O(log |R|) via binary search
// and counts one FindGap plus its comparisons in the attached Stats.
func (t *Tree) FindGap(x []int, a int) (lo, hi int) {
	if t.flat != nil {
		segLo, segHi, ok := t.flatSeg(x)
		if !ok {
			panic(fmt.Sprintf("reltree: %s: FindGap under invalid index tuple %v", t.name, x))
		}
		if t.stats != nil {
			t.stats.FindGaps++
			steps := 1
			for m := segHi - segLo; m > 1; m /= 2 {
				steps++
			}
			t.stats.Comparisons += int64(steps)
		}
		d := len(x)
		arr := t.flat.levels[d]
		seed := segLo
		if d < maxHintLevels {
			seed = int(t.hints[d])
		}
		i := gallopSearch(arr, segLo, segHi, seed, a)
		if d < maxHintLevels {
			t.hints[d] = int32(i)
		}
		hi = i - segLo
		if i < segHi && arr[i] == a {
			return hi, hi
		}
		return hi - 1, hi
	}
	n := t.node(x)
	if n == nil {
		panic(fmt.Sprintf("reltree: %s: FindGap under invalid index tuple %v", t.name, x))
	}
	if t.stats != nil {
		t.stats.FindGaps++
		steps := 1
		for m := len(n.Values); m > 1; m /= 2 {
			steps++
		}
		t.stats.Comparisons += int64(steps)
	}
	// hi = first index with value ≥ a.
	hi = sort.SearchInts(n.Values, a)
	if hi < len(n.Values) && n.Values[hi] == a {
		return hi, hi
	}
	return hi - 1, hi
}

// GapRun reports how many consecutive children of prefix x — starting at
// child index cFrom and stepping toward cTo (inclusive; cTo < cFrom walks
// downward) — have no value strictly inside the open interval
// (loVal, hiVal) at depth len(x)+1. The walk stops at the first child
// that violates the gap, so the cost is proportional to the validated
// run, not to the requested one.
//
// This is the range form of FindGap that box widening needs: validating
// W siblings one FindGap at a time costs W full descents, while GapRun
// resolves the prefix once and then probes each child's sorted run in
// the contiguous child-level array with a galloped successor search
// seeded at the previous child's landing offset — on clustered data,
// where siblings repeat the same sub-sequence, each probe lands within a
// few steps of its seed. One GapRun is counted as one FindGap (a single
// descent) plus the comparisons its child probes perform.
func (t *Tree) GapRun(x []int, cFrom, cTo, loVal, hiVal int) int {
	d := len(x)
	if t.flat == nil || d >= t.arity-1 {
		panic(fmt.Sprintf("reltree: %s: GapRun under invalid index tuple %v", t.name, x))
	}
	segLo, segHi, ok := t.flatSeg(x)
	if !ok {
		panic(fmt.Sprintf("reltree: %s: GapRun under invalid index tuple %v", t.name, x))
	}
	fan := segHi - segLo
	step := 1
	if cTo < cFrom {
		step = -1
	}
	if cFrom < 0 || cFrom >= fan || cTo < 0 || cTo >= fan {
		panic(fmt.Sprintf("reltree: %s: GapRun child range [%d,%d] out of fanout %d", t.name, cFrom, cTo, fan))
	}
	if t.stats != nil {
		t.stats.FindGaps++
	}
	arr := t.flat.levels[d+1]
	offs := t.flat.offs[d]
	n := 0
	seedOff := 0 // landing offset within the previous run
	for c := cFrom; ; c += step {
		p := segLo + c
		rA, rB := int(offs[p]), int(offs[p+1])
		if t.stats != nil {
			steps := 1
			for m := rB - rA; m > 1; m /= 2 {
				steps++
			}
			t.stats.Comparisons += int64(steps)
		}
		i := gallopSearch(arr, rA, rB, rA+seedOff, loVal+1)
		if i < rB && arr[i] < hiVal {
			return n // a value inside the gap: the run ends here
		}
		seedOff = i - rA
		n++
		if c == cTo {
			return n
		}
	}
}

// Contains reports whether the full tuple is present in the relation.
func (t *Tree) Contains(tuple []int) bool {
	if len(tuple) != t.arity {
		return false
	}
	if t.flat != nil {
		f := t.flat
		lo, hi := t.top0, t.top0+len(t.root.Values)
		for d, v := range tuple {
			arr := f.levels[d]
			i := gallopSearch(arr, lo, hi, lo, v)
			if i >= hi || arr[i] != v {
				return false
			}
			if d < t.arity-1 {
				lo, hi = int(f.offs[d][i]), int(f.offs[d][i+1])
			}
		}
		return true
	}
	n := t.root
	for d, v := range tuple {
		i := sort.SearchInts(n.Values, v)
		if i >= len(n.Values) || n.Values[i] != v {
			return false
		}
		if d < t.arity-1 {
			n = n.Children[i]
		}
	}
	return true
}

// Tuples materializes all tuples in lexicographic order (mainly for tests
// and baseline algorithms).
func (t *Tree) Tuples() [][]int {
	out := make([][]int, 0, t.size)
	cur := make([]int, 0, t.arity)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for i, v := range n.Values {
			cur = append(cur, v)
			if depth == t.arity-1 {
				tup := make([]int, len(cur))
				copy(tup, cur)
				out = append(out, tup)
			} else {
				walk(n.Children[i], depth+1)
			}
			cur = cur[:len(cur)-1]
		}
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return out
}

// Root exposes the root node for iterator-based algorithms (leapfrog).
func (t *Tree) Root() *Node { return t.root }

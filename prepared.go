package minesweeper

import (
	"context"
	"fmt"
	"sync"

	"minesweeper/internal/core"
	"minesweeper/internal/engine"
)

// PreparedQuery is a query bound to a global attribute order and an
// engine, with every relation's search-tree index already built. Prepare
// once, execute many times: re-executions skip GAO planning, column
// permutation, sorting and index construction entirely, which is the
// difference between Õ(N log N) and O(#atoms) of setup per query on a
// served workload.
//
// A PreparedQuery is safe for concurrent use: each run operates on a
// snapshot whose tree views carry run-local state.
//
// A PreparedQuery stays bound to its relations across mutations: every
// execution compares the epoch each relation had at binding time with
// its current epoch, and when a relation has been mutated (Insert,
// Delete, Replace) the query transparently re-binds before running —
// the caller never re-prepares by hand. Re-binding pulls indexes from
// the relations' caches, so only the mutated relations pay an index
// rebuild; executions against unmutated relations keep the zero-rebuild
// warm path.
type PreparedQuery struct {
	query  *Query
	opts   Options
	gao    []string // reported GAO over the query variables
	ext    []string // internal evaluation order: hidden constants + gao
	eng    Engine
	runner engine.Engine

	// Resolved query shaping: the output column names and the engine
	// adapter plan (nil for a pass-through run). bounds live inside both
	// the shape (uniform-semantics net) and each binding's problem
	// (engine pushdown).
	outVars []string
	shape   *engine.Shape

	mu  sync.Mutex
	cur *binding
}

// binding is one epoch-stamped materialization of the prepared query:
// the assembled problem plus, per atom, the epoch its relation had when
// the atom's index was fetched.
type binding struct {
	problem *core.Problem
	epochs  []uint64
}

// bind fetches (or builds) the GAO-permuted index of every atom and
// assembles the core problem, recording the relation epochs the indexes
// reflect. Atoms are grouped by relation and each relation's indexes
// are fetched under a single lock acquisition, so a self-join can never
// bind two different versions of the same relation; distinct relations
// may still bind at different epochs (mutations are per-relation, there
// are no cross-relation transactions).
func (q *Query) bind(gao []string, bounds []core.Bound, debug bool) (*binding, error) {
	atoms := make([]core.Atom, len(q.atoms))
	epochs := make([]uint64, len(q.atoms))
	perms := make([][]int, len(q.atoms))
	for i, a := range q.atoms {
		positions, perm, err := core.ColumnPlan(gao, a.Vars)
		if err != nil {
			return nil, fmt.Errorf("minesweeper: atom %d (%s): %w", i, a.Rel.name, err)
		}
		perms[i] = perm
		atoms[i] = core.Atom{
			Name:      fmt.Sprintf("%s#%d", a.Rel.name, i),
			Positions: positions,
		}
	}
	byRel := map[*Relation][]int{}
	var order []*Relation
	for i, a := range q.atoms {
		if _, seen := byRel[a.Rel]; !seen {
			order = append(order, a.Rel)
		}
		byRel[a.Rel] = append(byRel[a.Rel], i)
	}
	for _, rel := range order {
		idxs := byRel[rel]
		ps := make([][]int, len(idxs))
		for j, i := range idxs {
			ps[j] = perms[i]
		}
		trees, epoch, err := rel.indexesFor(ps)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			atoms[i].Tree = trees[j]
			epochs[i] = epoch
		}
	}
	p, err := core.NewProblemFromAtoms(gao, atoms)
	if err != nil {
		return nil, err
	}
	p.Bounds = bounds
	p.Debug = debug
	return &binding{problem: p, epochs: epochs}, nil
}

// Prepare resolves the GAO and engine and builds (or fetches from the
// relations' caches) the GAO-permuted indexes. The returned
// PreparedQuery can be executed repeatedly without re-indexing; two
// prepared queries that bind the same relation under the same column
// order share one index. Mutating a bound relation does not invalidate
// the PreparedQuery: the next execution detects the epoch change and
// re-binds transparently.
func (q *Query) Prepare(opts *Options) (*PreparedQuery, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.GAO = append([]string(nil), o.GAO...)
	gao := o.GAO
	if len(gao) == 0 {
		gao, _ = q.RecommendGAO()
	}
	eng := o.Engine
	if eng == EngineAuto {
		eng = EngineMinesweeper
	}
	runner, ok := engine.Lookup(eng.String())
	if !ok {
		return nil, fmt.Errorf("minesweeper: unknown engine %v", eng)
	}
	outVars, shape, err := q.buildShape(gao, &o)
	if err != nil {
		return nil, err
	}
	var bounds []core.Bound
	if shape != nil {
		bounds = shape.Bounds
	}
	ext := q.extendGAO(gao)
	b, err := q.bind(ext, bounds, o.Debug)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{
		query: q, opts: o, gao: gao, ext: ext, eng: eng, runner: runner,
		outVars: outVars, shape: shape, cur: b,
	}, nil
}

// GAO returns the resolved global attribute order — the evaluation (and
// tuple emission) order over the query's variables. It may differ from
// OutputVars, the presentation column order.
func (pq *PreparedQuery) GAO() []string { return append([]string(nil), pq.gao...) }

// OutputVars returns the column names of emitted tuples, in order: the
// projection list (or all query variables in first-appearance order)
// followed by one labelled column per aggregate. This matches
// Result.Vars of the Execute family.
func (pq *PreparedQuery) OutputVars() []string { return append([]string(nil), pq.outVars...) }

// Engine returns the resolved engine (never EngineAuto).
func (pq *PreparedQuery) Engine() Engine { return pq.eng }

// snapshot returns a per-run problem copy, re-binding first when any
// bound relation has been mutated since the current binding was taken.
// Re-binding reuses the prepared shape, so pushed-down constants and
// filters survive epoch changes.
func (pq *PreparedQuery) snapshot() (*core.Problem, error) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	for i, a := range pq.query.atoms {
		if a.Rel.Epoch() != pq.cur.epochs[i] {
			var bounds []core.Bound
			if pq.shape != nil {
				bounds = pq.shape.Bounds
			}
			b, err := pq.query.bind(pq.ext, bounds, pq.opts.Debug)
			if err != nil {
				return nil, err
			}
			pq.cur = b
			break
		}
	}
	return pq.cur.problem.Snapshot(), nil
}

// Stream evaluates the prepared query, calling yield once per output
// tuple in GAO-lexicographic discovery order, with columns presented in
// OutputVars order. yield returns false to stop early.
func (pq *PreparedQuery) Stream(yield func([]int) bool) (Stats, error) {
	return pq.StreamContext(context.Background(), yield)
}

// StreamContext is Stream with cancellation: a cancelled or expired
// context aborts the run with ctx.Err(). Every engine runs through the
// same streaming executor and shaping adapter, so limits, cancellation,
// projection, filters and aggregation behave uniformly.
func (pq *PreparedQuery) StreamContext(ctx context.Context, yield func([]int) bool) (Stats, error) {
	var stats Stats
	if pq.shape != nil && pq.shape.Empty {
		return stats, nil // contradictory filters: provably empty, no work
	}
	run, err := pq.snapshot()
	if err != nil {
		return stats, err
	}
	rawRun := pq.runner.Run
	if pq.eng == EngineMinesweeper && pq.opts.Workers > 1 {
		workers := pq.opts.Workers
		rawRun = func(ctx context.Context, p *core.Problem, stats *Stats, emit func([]int) bool) error {
			return core.MinesweeperParallelStream(ctx, p, workers, stats, emit)
		}
	}
	err = engine.RunShaped(ctx, rawRun, run, pq.shape, &stats, yield)
	return stats, err
}

// Execute evaluates the prepared query and returns the full result.
func (pq *PreparedQuery) Execute() (*Result, error) {
	return pq.ExecuteContext(context.Background())
}

// ExecuteContext evaluates the prepared query under the context. When
// the run stops early — context cancellation or deadline expiry — the
// tuples collected so far are returned alongside the non-nil error, so
// callers can serve a partial page: res is non-nil whenever evaluation
// started, and res.Tuples is a prefix of the full GAO-ordered result.
func (pq *PreparedQuery) ExecuteContext(ctx context.Context) (*Result, error) {
	res := &Result{Vars: pq.OutputVars(), GAO: pq.GAO(), Engine: pq.eng}
	stats, err := pq.StreamContext(ctx, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return true
	})
	res.Stats = stats
	return res, err
}

// ExecuteLimit evaluates the prepared query, stopping after at most
// limit output tuples (the GAO-lexicographically smallest ones —
// engines emit in order, so the prefix is engine-independent). A
// negative limit means unlimited; limit 0 returns an empty result
// without evaluating.
func (pq *PreparedQuery) ExecuteLimit(limit int) (*Result, error) {
	return pq.ExecuteLimitContext(context.Background(), limit)
}

// ExecuteLimitContext is ExecuteLimit with cancellation. Like
// ExecuteContext, a cancelled or expired context returns the partial
// result collected so far alongside the error.
func (pq *PreparedQuery) ExecuteLimitContext(ctx context.Context, limit int) (*Result, error) {
	if limit < 0 {
		return pq.ExecuteContext(ctx)
	}
	res := &Result{Vars: pq.OutputVars(), GAO: pq.GAO(), Engine: pq.eng}
	if limit == 0 {
		return res, nil
	}
	stats, err := pq.StreamContext(ctx, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return len(res.Tuples) < limit
	})
	res.Stats = stats
	return res, err
}

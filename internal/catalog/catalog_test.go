package catalog

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"minesweeper"
	"minesweeper/internal/reltree"
	"minesweeper/internal/storage"
)

// newCatalog builds a catalog on the backend selected by
// MS_TEST_BACKEND: "durable" runs the whole suite against a WAL in a
// temp directory, with a tiny compaction threshold so snapshot
// rotation happens mid-test; "faulty" layers the fault-injection
// backend on top with a benign chaos script (fail-soft compaction
// errors plus op delays — faults the suite must survive without any
// test changing its expectations); anything else is the in-memory
// backend.
func newCatalog(t testing.TB) *Catalog {
	t.Helper()
	mode := os.Getenv("MS_TEST_BACKEND")
	if mode != "durable" && mode != "faulty" {
		return New()
	}
	var b storage.Backend
	db, err := storage.OpenDurable(t.TempDir(), storage.Options{CompactMinBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	b = db
	if mode == "faulty" {
		f, err := storage.NewFaulty(db, "compact@1/2=err; sync@1/3=delay:100us; append@1/7=delay:50us")
		if err != nil {
			t.Fatal(err)
		}
		b = f
	}
	c, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustCreate(t *testing.T, c *Catalog, name string, vars []string, tuples [][]int) *minesweeper.Relation {
	t.Helper()
	r, err := c.Create(name, vars, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCatalogCRUD(t *testing.T) {
	c := newCatalog(t)
	mustCreate(t, c, "R", []string{"A", "B"}, [][]int{{1, 2}, {2, 3}})
	mustCreate(t, c, "S", []string{"B", "C"}, [][]int{{2, 5}})

	if _, err := c.Create("R", []string{"X"}, nil); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	if _, err := c.Create("T", []string{"X", "X"}, nil); err == nil {
		t.Fatal("repeated vars accepted")
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Fatalf("Names = %v", got)
	}

	info, err := c.Insert("R", []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 3 || info.Epoch != 1 {
		t.Fatalf("after insert: info=%+v, want 3 tuples at epoch 1", info)
	}
	n, info, err := c.Delete("R", []int{1, 2}, []int{9, 9})
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v; want 1, nil", n, err)
	}
	if info.Epoch != 2 {
		t.Fatalf("epoch after delete = %d, want 2", info.Epoch)
	}
	// No-op delete must not bump the epoch (keeps warm paths warm).
	if n, info, _ = c.Delete("R", []int{9, 9}); n != 0 {
		t.Fatalf("no-op delete removed %d", n)
	}
	if info.Epoch != 2 {
		t.Fatalf("epoch after no-op delete = %d, want 2", info.Epoch)
	}

	if _, err := c.Insert("missing", []int{1}); err == nil {
		t.Fatal("Insert on unknown relation succeeded")
	}
	if err := c.Drop("S"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("S"); ok {
		t.Fatal("S still reachable after Drop")
	}
	if err := c.Drop("S"); err == nil {
		t.Fatal("double Drop succeeded")
	}
}

func TestCatalogLoadDumpRoundTrip(t *testing.T) {
	c := newCatalog(t)
	src := "# edges\nE: A B\n1 2\n2 3\n3 1\n"
	info, err := c.Load(strings.NewReader(src), "e.rel")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "E" || info.Tuples != 3 || info.Epoch != 0 {
		t.Fatalf("Load info = %+v", info)
	}
	var buf bytes.Buffer
	if err := c.Dump(&buf, "E"); err != nil {
		t.Fatal(err)
	}
	c2 := newCatalog(t)
	if _, err := c2.Load(strings.NewReader(buf.String()), "roundtrip"); err != nil {
		t.Fatal(err)
	}
	r1, _ := c.Get("E")
	r2, _ := c2.Get("E")
	if !reflect.DeepEqual(r1.Tuples(), r2.Tuples()) {
		t.Fatal("dump/load round trip diverges")
	}

	// Reload over an existing name replaces in place and bumps the epoch.
	info, err = c.Load(strings.NewReader("E: A B\n7 8\n"), "reload")
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1 || info.Epoch != 1 {
		t.Fatalf("reload info = %+v, want 1 tuple at epoch 1", info)
	}
	if again, _ := c.Get("E"); again != r1 {
		t.Fatal("reload must keep the relation identity (bound queries stay attached)")
	}
	// Arity mismatch is rejected.
	if _, err := c.Load(strings.NewReader("E: A B C\n1 2 3\n"), "badarity"); err == nil {
		t.Fatal("arity-changing reload succeeded")
	}
}

// TestCatalogMutationVisibleToPreparedQueries is the PR's acceptance
// criterion: mutate a cataloged relation after queries were prepared
// against it, and the next execution of every bound PreparedQuery must
// reflect the new data with no caller-visible re-prepare, while
// executions against unmutated relations do zero index rebuilds.
func TestCatalogMutationVisibleToPreparedQueries(t *testing.T) {
	c := newCatalog(t)
	mustCreate(t, c, "R", []string{"A", "B"}, [][]int{{1, 2}, {2, 3}})
	mustCreate(t, c, "S", []string{"B", "C"}, [][]int{{2, 5}, {3, 7}})
	mustCreate(t, c, "T", []string{"C", "D"}, [][]int{{5, 1}, {7, 2}})

	q1, err := c.Query("R(A,B), S(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Query("S(B,C), T(C,D)")
	if err != nil {
		t.Fatal(err)
	}
	pq1, err := q1.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	pq2, err := q2.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}

	res, err := pq1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("initial q1 result: %v", res.Tuples)
	}

	// Warm executions of both queries: zero rebuilds.
	before := reltree.Builds()
	if _, err := pq1.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := pq2.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := reltree.Builds(); got != before {
		t.Fatalf("warm executions rebuilt %d indexes", got-before)
	}

	// Mutate R only. Both prepared queries keep working without a
	// caller-visible re-prepare; pq1 sees the new data.
	if _, err := c.Insert("R", []int{9, 2}); err != nil {
		t.Fatal(err)
	}
	res, err = pq1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := 3 // (1,2,5), (9,2,5) via B=2 plus (2,3,7) via B=3
	if len(res.Tuples) != want {
		t.Fatalf("after insert: %d tuples %v, want %d", len(res.Tuples), res.Tuples, want)
	}

	// pq2 binds only unmutated relations: still zero rebuilds.
	before = reltree.Builds()
	if _, err := pq2.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := reltree.Builds(); got != before {
		t.Fatalf("execution over unmutated relations rebuilt %d indexes", got-before)
	}

	// Deleting through the catalog is equally transparent.
	if n, _, err := c.Delete("R", []int{9, 2}); err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	res, err = pq1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("after delete: %v", res.Tuples)
	}

	// Once re-bound, repeated executions are warm again.
	before = reltree.Builds()
	if _, err := pq1.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := reltree.Builds(); got != before {
		t.Fatalf("re-bound execution rebuilt %d indexes", got-before)
	}
}

// TestCatalogConcurrentMutationAndExecution runs prepared queries from
// several goroutines while others mutate the underlying relation — the
// race detector must stay quiet, every execution must succeed, and
// every result must be consistent with some epoch of the data.
func TestCatalogConcurrentMutationAndExecution(t *testing.T) {
	c := newCatalog(t)
	base := [][]int{{1, 2}, {2, 3}, {3, 4}}
	mustCreate(t, c, "R", []string{"A", "B"}, base)
	mustCreate(t, c, "S", []string{"B", "C"}, [][]int{{2, 1}, {3, 1}, {4, 1}, {5, 1}})

	q, err := c.Query("R(A,B), S(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		executors = 4
		rounds    = 50
	)
	var wg sync.WaitGroup
	errc := make(chan error, executors+1)

	wg.Add(1)
	go func() { // mutator: churn tuple (10+i, 5) in and out of R
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tup := []int{10 + i, 5}
			if _, err := c.Insert("R", tup); err != nil {
				errc <- err
				return
			}
			if _, _, err := c.Delete("R", tup); err != nil {
				errc <- err
				return
			}
		}
	}()
	for g := 0; g < executors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var pq2 *minesweeper.PreparedQuery
				if i%10 == 0 { // occasionally re-prepare from scratch too
					fresh, err := q.Prepare(nil)
					if err != nil {
						errc <- fmt.Errorf("executor %d: %v", g, err)
						return
					}
					pq2 = fresh
				} else {
					pq2 = pq
				}
				res, err := pq2.Execute()
				if err != nil {
					errc <- fmt.Errorf("executor %d: %v", g, err)
					return
				}
				// Every valid state joins the 3 base tuples; the churned
				// tuple adds at most one more.
				if n := len(res.Tuples); n < 3 || n > 4 {
					errc <- fmt.Errorf("executor %d: %d tuples, want 3 or 4", g, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced: final contents match the base data again.
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3 {
		t.Fatalf("final result %v, want the 3 base joins", res.Tuples)
	}
}

// Command msbench regenerates the paper's evaluation tables.
//
// Every table/figure of "Beyond Worst-case Analysis for Joins with
// Minesweeper" (PODS 2014) plus one measured experiment per quantitative
// theorem is available by name (see DESIGN.md's experiment index):
//
//	msbench -exp fig2        # Figure 2: N vs |C| on star/3-path/tree
//	msbench -exp appj        # Appendix J: Minesweeper vs WCOJ baselines
//	msbench -exp all         # everything
//	msbench -exp all -scale small   # quick pass
//
// Output is a plain-text table per experiment, with the paper's expected
// shape quoted in the notes line.
//
// It also runs the tracked benchmark suite (internal/benchsuite: E1–E9
// plus the CDS micro-benchmarks) and records it as a machine-readable
// artifact, the repo's benchmark trajectory:
//
//	msbench -json BENCH_1.json -label optimized   # measure + record
//	msbench -json BENCH_1.json -bench 'CDS'       # subset by substring
//	msbench -compare BENCH_0.json,BENCH_1.json    # diff two artifacts
//	msbench -compare old.json,new.json -fail-over 10   # gate: exit 1 on >10% ns regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"minesweeper/internal/benchsuite"
	"minesweeper/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all' (fig2, betaacyclic, appj, intersect, bowtie, triangle, treewidth, memo, gao)")
	scaleFlag := flag.String("scale", "full", "full or small")
	jsonOut := flag.String("json", "", "run the tracked benchmark suite and write BENCH_<n>.json to this path instead of the experiment tables")
	label := flag.String("label", "", "label stored in the -json artifact (e.g. baseline, optimized)")
	benchFilter := flag.String("bench", "", "with -json: only run suite benchmarks whose name contains one of these comma-separated substrings")
	compare := flag.String("compare", "", "compare two BENCH_*.json files: old.json,new.json")
	failOver := flag.Float64("fail-over", 0, "with -compare: exit non-zero when any benchmark's ns/op regresses by more than this percentage (0 = report only)")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *failOver))
	}
	if *jsonOut != "" {
		os.Exit(runJSON(*jsonOut, *label, *benchFilter))
	}

	scale := experiments.Full
	switch *scaleFlag {
	case "full":
	case "small":
		scale = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "msbench: unknown scale %q (want full or small)\n", *scaleFlag)
		os.Exit(2)
	}

	all := experiments.All()
	var selected []struct {
		Name string
		Run  experiments.Runner
	}
	if *exp == "all" {
		selected = all
	} else {
		for _, e := range all {
			if e.Name == *exp {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			names := make([]string, len(all))
			for i, e := range all {
				names[i] = e.Name
			}
			fmt.Fprintf(os.Stderr, "msbench: unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		printTable(tab, time.Since(start))
	}
}

// runJSON measures the tracked suite and writes the JSON artifact.
func runJSON(path, label, filter string) int {
	var pred func(benchsuite.Bench) bool
	if filter != "" {
		subs := strings.Split(filter, ",")
		pred = func(b benchsuite.Bench) bool {
			for _, s := range subs {
				if s = strings.TrimSpace(s); s != "" && strings.Contains(b.Name, s) {
					return true
				}
			}
			return false
		}
	}
	results := benchsuite.Run(pred, os.Stderr)
	results = append(results, benchsuite.RunBenches(shardedSuite(), pred, os.Stderr)...)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "msbench: no suite benchmark matches -bench %q\n", filter)
		return 2
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := benchsuite.WriteJSON(f, label, results); err != nil {
		fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(results), path)
	return 0
}

// runCompare prints the per-benchmark deltas of two artifacts. When
// failOver > 0 it acts as a regression gate: any benchmark whose ns/op
// grew by more than failOver percent makes the exit status non-zero,
// so CI (or a pre-merge hook) can hard-fail on a measured slowdown
// instead of just printing it. failOver == 0 keeps the historical
// report-only behaviour.
func runCompare(spec string, failOver float64) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "msbench: -compare wants old.json,new.json")
		return 2
	}
	files := make([]*benchsuite.File, 2)
	for i, p := range parts {
		fh, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
			return 1
		}
		files[i], err = benchsuite.ReadJSON(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %s: %v\n", p, err)
			return 1
		}
	}
	deltas := benchsuite.Compare(files[0], files[1])
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "msbench: no common benchmarks")
		return 1
	}
	fmt.Printf("%-32s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ns Δ", "old allocs", "new allocs", "allocs Δ")
	var regressed []string
	for _, d := range deltas {
		fmt.Printf("%-32s %14.0f %14.0f %7.0f%% %12.1f %12.1f %7.0f%%\n",
			d.Name, d.OldNs, d.NewNs, (d.NsRatio()-1)*100,
			d.OldAllocs, d.NewAllocs, (d.AllocsRatio()-1)*100)
		if failOver > 0 && (d.NsRatio()-1)*100 > failOver {
			regressed = append(regressed, fmt.Sprintf("%s (+%.0f%%)", d.Name, (d.NsRatio()-1)*100))
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "msbench: %d benchmark(s) regressed beyond -fail-over %.1f%%: %s\n",
			len(regressed), failOver, strings.Join(regressed, ", "))
		return 1
	}
	return 0
}

func printTable(t *experiments.Table, elapsed time.Duration) {
	fmt.Printf("== %s — %s (ran in %s)\n", t.ID, t.Title, elapsed.Round(time.Millisecond))
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	printRow(t.Headers)
	for i := range widths {
		widths[i] = len(strings.Repeat("-", widths[i]))
	}
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Printf("   note: %s\n", t.Notes)
	}
	fmt.Println()
}

package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"minesweeper/internal/certificate"
	"minesweeper/internal/reltree"
)

// arange is an inclusive range of first-attribute values owned by one
// worker.
type arange struct{ lo, hi int }

// splitRanges partitions the sorted distinct values into at most workers
// contiguous, equally sized ranges.
func splitRanges(distinct []int, workers int) []arange {
	if workers > len(distinct) {
		workers = len(distinct)
	}
	per := (len(distinct) + workers - 1) / workers
	ranges := make([]arange, 0, workers)
	for i := 0; i < len(distinct); i += per {
		j := i + per
		if j > len(distinct) {
			j = len(distinct)
		}
		ranges = append(ranges, arange{distinct[i], distinct[j-1]})
	}
	return ranges
}

// distinctSorted collects the distinct values of the given lists,
// sorted. Inputs are the top-level value lists of a few atom trees, so
// the simple hash-and-sort beats a k-way merge in clarity at no
// measurable cost (it runs once per parallel execution).
func distinctSorted(lists ...[]int) []int {
	seen := map[int]bool{}
	for _, l := range lists {
		for _, v := range l {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// partsPool recycles the per-worker tuple buffers of the parallel
// drivers: the [][]int headers are reused across runs (the tuples they
// pointed at are handed to emit and owned by the receiver), so a served
// workload's steady state does not re-grow a fresh buffer per worker
// per run.
var partsPool = sync.Pool{New: func() any { return new([][]int) }}

func putParts(buf *[][]int) {
	b := *buf
	for i := range b {
		b[i] = nil // don't pin emitted tuples
	}
	*buf = b[:0]
	partsPool.Put(buf)
}

// MinesweeperParallelStream evaluates the problem with Minesweeper across
// workers by partitioning the domain of the first non-constant GAO
// attribute (the first one whose bound, if any, is not a single point)
// into contiguous ranges. Each worker receives SliceTop views of the
// atoms leading with that attribute and detached views of the rest, so the cached
// indexes are shared — nothing is re-permuted or re-sorted per worker —
// and the sub-joins are independent with disjoint outputs.
//
// Tuples are emitted in GAO-lexicographic order: each worker buffers its
// (lex-ordered) partition in a pooled buffer and the driver drains the
// buffers in range order as workers complete. When emit returns false,
// outstanding workers are cancelled and the call returns nil; when ctx
// is cancelled, it returns ctx.Err(). Worker stats are summed into
// stats, with Outputs corrected to the number of tuples actually
// emitted.
func MinesweeperParallelStream(ctx context.Context, p *Problem, workers int, stats *certificate.Stats, emit func([]int) bool) error {
	if workers <= 1 {
		return MinesweeperStreamContext(ctx, p, stats, emit)
	}
	// Partition on the first GAO position whose bound is not pinned to a
	// single value: leading point bounds (pushed-down constants) leave
	// at most one distinct value, which would collapse every worker into
	// one. All positions before pp are single-valued, so draining the
	// workers in pp-range order still yields GAO-lex emission.
	pp := 0
	if p.Bounds != nil {
		for pp < len(p.GAO)-1 && p.Bounds[pp].Lo == p.Bounds[pp].Hi {
			pp++
		}
	}
	var lists [][]int
	for i := range p.Atoms {
		a := &p.Atoms[i]
		if len(a.Positions) > 0 && a.Positions[0] == pp {
			lists = append(lists, a.Tree.Root().Values)
		}
	}
	if pp > 0 && len(lists) == 0 {
		// Every atom covering position pp leads with an earlier constant
		// column, so there is no tree root to slice: run sequentially.
		return MinesweeperStreamContext(ctx, p, stats, emit)
	}
	distinct := distinctSorted(lists...)
	if p.Bounds != nil && !p.Bounds[pp].Full() {
		// Values the partition-position bound rules out can never appear
		// in an output tuple; dropping them keeps every worker inside
		// the selected region.
		kept := distinct[:0]
		for _, v := range distinct {
			if p.Bounds[pp].Contains(v) {
				kept = append(kept, v)
			}
		}
		distinct = kept
	}
	if len(distinct) == 0 {
		return nil // every atom on the partition attribute is empty
	}
	ranges := splitRanges(distinct, workers)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*[][]int, len(ranges))
	statsParts := make([]certificate.Stats, len(ranges))
	errs := make([]error, len(ranges))
	done := make([]chan struct{}, len(ranges))
	var wg sync.WaitGroup
	for w := range ranges {
		done[w] = make(chan struct{})
		parts[w] = partsPool.Get().(*[][]int)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer close(done[w])
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("core: minesweeper worker %d panicked: %v", w, r)
				}
			}()
			rg := ranges[w]
			sub := &Problem{GAO: p.GAO, Bounds: p.Bounds, Debug: p.Debug, DisableBoxes: p.DisableBoxes}
			sub.Atoms = make([]Atom, len(p.Atoms))
			views := make([]reltree.Tree, len(p.Atoms))
			for i, a := range p.Atoms {
				var tree *reltree.Tree
				if len(a.Positions) > 0 && a.Positions[0] == pp {
					tree = a.Tree.SliceTop(rg.lo, rg.hi)
				} else {
					views[i] = a.Tree.View()
					tree = &views[i]
				}
				sub.Atoms[i] = Atom{Name: a.Name, Tree: tree, Positions: a.Positions}
			}
			errs[w] = MinesweeperStreamContext(wctx, sub, &statsParts[w], func(t []int) bool {
				*parts[w] = append(*parts[w], t)
				return true
			})
		}(w)
	}

	stopped := false
	emitted := int64(0)
drain:
	for w := range ranges {
		<-done[w]
		if errs[w] != nil {
			break
		}
		for _, t := range *parts[w] {
			emitted++
			if !emit(t) {
				stopped = true
				cancel()
				break drain
			}
		}
	}
	cancel()
	wg.Wait()

	found := int64(0)
	for w := range ranges {
		found += statsParts[w].Outputs
		if stats != nil {
			stats.Add(&statsParts[w])
		}
		putParts(parts[w])
	}
	if stats != nil {
		stats.Outputs += emitted - found
	}
	if stopped {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil && err != context.Canceled {
			return err
		}
	}
	return nil
}

// MinesweeperParallel evaluates an arbitrary join with Minesweeper across
// workers, materializing the sorted result. It builds the indexes once
// and delegates to MinesweeperParallelStream, which shares them across
// workers via SliceTop views.
func MinesweeperParallel(gao []string, atoms []AtomSpec, workers int, stats *certificate.Stats) ([][]int, error) {
	p, err := NewProblem(gao, atoms)
	if err != nil {
		return nil, err
	}
	var out [][]int
	err = MinesweeperParallelStream(context.Background(), p, workers, stats, func(t []int) bool {
		out = append(out, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	// Already sorted: the stream emits workers' lex-ordered partitions in
	// range order.
	return out, nil
}

// TriangleParallel evaluates the triangle query with the dyadic-CDS
// engine across the given number of workers, partitioning the A domain
// into contiguous ranges. The three indexes are built once; each worker
// runs over SliceTop views of R and T (whose first attribute is A) and a
// Clone view of S, so no per-worker re-indexing happens. This mirrors
// the paper's multi-threaded LogicBlox runs (Section 5.2). Stats from
// all workers are summed; outputs arrive sorted. workers ≤ 1 is
// sequential.
func TriangleParallel(r, s, t [][]int, workers int, stats *certificate.Stats) ([][]int, error) {
	rT, sT, tT, err := TriangleIndexes(r, s, t)
	if err != nil {
		return nil, err
	}
	if workers <= 1 {
		out, err := TriangleIndexed(rT, sT, tT, stats)
		if err != nil {
			return nil, err
		}
		sortTriples(out)
		return out, nil
	}
	distinct := distinctSorted(rT.Root().Values, tT.Root().Values)
	if len(distinct) == 0 {
		return nil, nil
	}
	ranges := splitRanges(distinct, workers)
	parts := make([][][]int, len(ranges))
	statsParts := make([]certificate.Stats, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for w := range ranges {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = fmt.Errorf("core: triangle worker %d panicked: %v", w, p)
				}
			}()
			rg := ranges[w]
			rw := rT.SliceTop(rg.lo, rg.hi)
			tw := tT.SliceTop(rg.lo, rg.hi)
			if rw.Size() == 0 || tw.Size() == 0 {
				return
			}
			parts[w], errs[w] = TriangleIndexed(rw, sT.Clone(), tw, &statsParts[w])
		}(w)
	}
	wg.Wait()
	var out [][]int
	for w := range ranges {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, parts[w]...)
		if stats != nil {
			stats.Add(&statsParts[w])
		}
	}
	sortTriples(out)
	return out, nil
}

func sortTriples(ts [][]int) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

package main

import (
	"context"
	"io"

	"minesweeper"
	"minesweeper/internal/catalog"
	"minesweeper/internal/shard"
	"minesweeper/internal/storage"
)

// store abstracts the server's data plane: a plain catalog (one owner
// for every relation) or a sharded catalog (N fragment owners behind a
// gathered view, scatter-gather execution). The handlers never care
// which one they run over; everything shard-specific surfaces through
// optional interfaces (ShardStats) and the Explain.Partitions plan
// annotation.
type store interface {
	Get(name string) (*minesweeper.Relation, bool)
	Len() int
	Relations() []catalog.Info
	Load(r io.Reader, source string) (catalog.Info, error)
	Dump(w io.Writer, name string) error
	Drop(name string) error
	Insert(name string, tuples ...[]int) (catalog.Info, error)
	Delete(name string, tuples ...[]int) (int, catalog.Info, error)
	Query(expr string) (*minesweeper.Query, error)
	PutQueryDef(def storage.QueryDef) error
	DropQueryDef(name string) error
	QueryDefs() []storage.QueryDef
	Degraded() error
	Close() error
	StorageStats() storage.Stats
	// Prepare plans a query built by Query for repeated execution.
	Prepare(q *minesweeper.Query, opts *minesweeper.Options) (prepared, error)
}

// prepared is the runner surface the handlers drive: both
// *minesweeper.PreparedQuery and *shard.Prepared satisfy it.
type prepared interface {
	StreamContextExplained(ctx context.Context, plan func(minesweeper.Explain), yield func([]int) bool) (minesweeper.Stats, error)
	OutputVars() []string
	Engine() minesweeper.Engine
	Refresh() error
	Explain() minesweeper.Explain
}

// singleStore serves an unsharded catalog.
type singleStore struct{ *catalog.Catalog }

func (s singleStore) Prepare(q *minesweeper.Query, opts *minesweeper.Options) (prepared, error) {
	return q.Prepare(opts)
}

// shardStore serves a sharded catalog with scatter-gather execution.
type shardStore struct{ *shard.Catalog }

func (s shardStore) Prepare(q *minesweeper.Query, opts *minesweeper.Options) (prepared, error) {
	return s.Catalog.Prepare(q, opts)
}

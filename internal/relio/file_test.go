package relio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ms")
	if err := os.WriteFile(path, []byte("old content\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new content\n" {
		t.Fatalf("after atomic write: %q, %v", got, err)
	}

	// A failing writer leaves the target untouched and no temp files.
	boom := fmt.Errorf("boom")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error not propagated: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "new content\n" {
		t.Fatalf("failed write clobbered the target: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.ms" {
		for _, e := range entries {
			t.Logf("left behind: %s", e.Name())
		}
		t.Fatalf("temp files not cleaned up: %d entries", len(entries))
	}
}

func TestWriteRelationFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.rel")
	rel := &Relation{Name: "R", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 2}, {3, 4}}}
	if err := WriteRelationFile(path, rel); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadRelation(f, path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != rel.Name || !reflect.DeepEqual(back.Vars, rel.Vars) || !reflect.DeepEqual(back.Tuples, rel.Tuples) {
		t.Fatalf("round trip: %+v, want %+v", back, rel)
	}
}

package certificate

import (
	"fmt"
	"sort"
	"strings"
)

// Var is an index-tuple variable R[x] (Section 2.2 of the paper): a
// symbolic reference to the value stored at index tuple x of relation
// Rel. Index components are 0-based. Instances give Vars concrete values.
type Var struct {
	Rel   string
	Index []int
}

func (v Var) String() string {
	parts := make([]string, len(v.Index))
	for i, x := range v.Index {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return fmt.Sprintf("%s[%s]", v.Rel, strings.Join(parts, ","))
}

func (v Var) key() string { return v.String() }

// Op is a comparison operator θ ∈ {<, =, >}.
type Op int

// Comparison operators.
const (
	Lt Op = iota
	Eq
	Gt
)

func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Eq:
		return "="
	case Gt:
		return ">"
	}
	return "?"
}

// Comparison is one symbolic comparison R[x] θ S[y] between two variables
// on the same attribute (equation (3) of the paper).
type Comparison struct {
	Left  Var
	Op    Op
	Right Var
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Instance resolves variables to concrete domain values. ok is false when
// the index tuple does not exist in the instance.
type Instance interface {
	VarValue(v Var) (val int, ok bool)
}

// InstanceFunc adapts a function to the Instance interface.
type InstanceFunc func(v Var) (int, bool)

// VarValue implements Instance.
func (f InstanceFunc) VarValue(v Var) (int, bool) { return f(v) }

// Argument is a set of comparisons (Definition 2.2). An argument is a
// *certificate* when every pair of instances satisfying it has identical
// witness sets (Definition 2.3); this package provides the constructive
// side — building arguments that are certificates by construction
// (Proposition 2.6) — and satisfaction checking.
type Argument []Comparison

// Size returns the number of comparisons (the |C| of the analysis).
func (a Argument) Size() int { return len(a) }

// SatisfiedBy reports whether the instance satisfies every comparison.
// It errors when the instance does not define a referenced variable
// (arguments only transfer between instances with identical index shape;
// see Example 2.4's discussion of I(N) vs I(N+1)).
func (a Argument) SatisfiedBy(inst Instance) (bool, error) {
	for _, c := range a {
		lv, ok := inst.VarValue(c.Left)
		if !ok {
			return false, fmt.Errorf("certificate: instance does not define %s", c.Left)
		}
		rv, ok := inst.VarValue(c.Right)
		if !ok {
			return false, fmt.Errorf("certificate: instance does not define %s", c.Right)
		}
		switch c.Op {
		case Lt:
			if !(lv < rv) {
				return false, nil
			}
		case Eq:
			if lv != rv {
				return false, nil
			}
		case Gt:
			if !(lv > rv) {
				return false, nil
			}
		default:
			return false, fmt.Errorf("certificate: bad operator %v", c.Op)
		}
	}
	return true, nil
}

func (a Argument) String() string {
	parts := make([]string, len(a))
	for i, c := range a {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// AttrVar pairs a variable with its value in a concrete instance; the
// input to the Proposition 2.6 construction. All AttrVars passed together
// must belong to the same attribute.
type AttrVar struct {
	V     Var
	Value int
}

// BuildProp26 constructs the certificate of Proposition 2.6 for one
// attribute: given every Ai-variable of the instance with its value, it
// emits (a) equality chains linking all variables sharing a value and
// (b) an inequality chain across the distinct values. Applied to every
// attribute, the union is a certificate of size ≤ r·N: it pins down the
// entire relative order of the instance, so any instance satisfying it
// has exactly the same witnesses.
func BuildProp26(vars []AttrVar) Argument {
	if len(vars) == 0 {
		return nil
	}
	byValue := map[int][]Var{}
	var values []int
	for _, av := range vars {
		if _, seen := byValue[av.Value]; !seen {
			values = append(values, av.Value)
		}
		byValue[av.Value] = append(byValue[av.Value], av.V)
	}
	sort.Ints(values)
	var out Argument
	// (a) equality chains within each value class. Skip the redundant
	// links between same-relation variables that the search tree already
	// forces equal (same value at the same node is a single variable, so
	// duplicates only arise from distinct index tuples).
	for _, val := range values {
		class := byValue[val]
		sort.Slice(class, func(i, j int) bool { return class[i].key() < class[j].key() })
		for i := 1; i < len(class); i++ {
			out = append(out, Comparison{Left: class[i-1], Op: Eq, Right: class[i]})
		}
	}
	// (b) inequality chain across representatives of distinct values.
	for i := 1; i < len(values); i++ {
		out = append(out, Comparison{
			Left:  byValue[values[i-1]][0],
			Op:    Lt,
			Right: byValue[values[i]][0],
		})
	}
	return out
}

// Package arena provides the rewindable chunked allocator shared by the
// hot-path object pools: CDS tree nodes and the per-atom gap-exploration
// nodes. Slots are handed out sequentially from fixed-size chunks —
// stable addresses, one allocation per chunk instead of one per object —
// and Rewind restarts the hand-out without releasing memory, so a
// steady-state consumer stops allocating once it has reached its
// high-water footprint.
package arena

// chunkSize is the allocation granularity in slots.
const chunkSize = 64

// Arena hands out *T slots chunk-at-a-time. The zero value is ready for
// use. Alloc does NOT zero recycled slots: callers reset the fields they
// care about, which lets objects retain their internal storage (e.g. a
// CDS node's key arrays) across rewinds.
type Arena[T any] struct {
	chunks      [][]T
	chunk, slot int
}

// Alloc returns the next slot. Slots from fresh chunks are zero values;
// slots reused after Rewind keep their previous contents.
func (a *Arena[T]) Alloc() *T {
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, chunkSize))
	}
	p := &a.chunks[a.chunk][a.slot]
	a.slot++
	if a.slot == chunkSize {
		a.chunk++
		a.slot = 0
	}
	return p
}

// Rewind restarts the hand-out at the first slot, retaining every chunk.
func (a *Arena[T]) Rewind() { a.chunk, a.slot = 0, 0 }

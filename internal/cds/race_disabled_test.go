//go:build !race

package cds

const raceEnabled = false

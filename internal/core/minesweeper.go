package core

import (
	"context"
	"fmt"

	"minesweeper/internal/cds"
	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

// Minesweeper evaluates the join with Algorithm 2 of the paper, calling
// emit for every output tuple (in GAO order). The stats receiver may be
// nil. Probe points come from the ConstraintTree CDS, whose chain-based
// getProbePoint is near-optimal for β-acyclic GAOs (Theorem 2.7) and
// falls back to the shadow-chain walk for general GAOs (Theorem 5.1).
func Minesweeper(p *Problem, stats *certificate.Stats, emit func([]int)) error {
	return MinesweeperStream(p, stats, func(t []int) bool {
		emit(t)
		return true
	})
}

// MinesweeperStream is Minesweeper with early termination: emit returns
// false to stop the evaluation after the current tuple. Because
// Minesweeper discovers outputs one probe point at a time (it never
// builds intermediate results), stopping after k tuples costs only the
// work for those k probes plus the constraints learned so far — the
// anytime behaviour that worst-case-optimal algorithms lack.
//
// Probe points arrive in increasing lexicographic order (GetProbePoint
// always returns the smallest active point and the ruled-out region only
// grows), so output tuples stream in GAO-lexicographic order.
func MinesweeperStream(p *Problem, stats *certificate.Stats, emit func([]int) bool) error {
	return MinesweeperStreamContext(context.Background(), p, stats, emit)
}

// MinesweeperStreamContext is MinesweeperStream with cooperative
// cancellation: the context is checked once per probe point (the outer
// loop of Algorithm 2), and evaluation stops with ctx.Err() when it is
// cancelled or its deadline passes.
func MinesweeperStreamContext(ctx context.Context, p *Problem, stats *certificate.Stats, emit func([]int) bool) error {
	n := len(p.GAO)
	tree := cds.NewTree(n)
	tree.SetStats(stats)
	p.Attach(stats)
	defer p.Detach()

	// explorations[i] caches the per-atom gap exploration of the current
	// probe point.
	explorations := make([]*gapNode, len(p.Atoms))
	for t := tree.GetProbePoint(); t != nil; t = tree.GetProbePoint() {
		if err := ctx.Err(); err != nil {
			return err
		}
		output := true
		for i := range p.Atoms {
			explorations[i] = exploreAtom(&p.Atoms[i], t)
			if !explorations[i].allHighMatch {
				output = false
			}
		}
		if output {
			if stats != nil {
				stats.Outputs++
			}
			keep := emit(append([]int(nil), t...))
			// Rule the output tuple out: ⟨t1,…,t_{n-1},(t_n−1, t_n+1)⟩.
			prefix := make(cds.Pattern, n-1)
			for j := 0; j < n-1; j++ {
				prefix[j] = cds.Eq(t[j])
			}
			lo, hi := ruledOutInterval(t[n-1])
			tree.InsConstraint(cds.Constraint{Prefix: prefix, Lo: lo, Hi: hi})
			if !keep {
				return nil
			}
			continue
		}
		// Insert every discovered gap (Algorithm 2 lines 15–20).
		covered := false
		for i := range p.Atoms {
			atom := &p.Atoms[i]
			insertGaps(tree, atom, n, explorations[i], func(c cds.Constraint) {
				if p.Debug && c.Covers(t) {
					covered = true
				}
				tree.InsConstraint(c)
			})
		}
		if p.Debug && !covered {
			return fmt.Errorf("core: probe point %v not covered by any discovered gap — Minesweeper would not terminate", t)
		}
	}
	return nil
}

// ruledOutInterval returns the open interval (lo, hi) that rules out
// exactly the value v of an emitted tuple's last coordinate. The naive
// (v-1, v+1) overflows when v sits at the int extremes, so endpoints
// are clamped to the ±∞ sentinels: values at or beyond a sentinel keep
// the sentinel itself as that endpoint, which still covers v because
// the CDS treats sentinel endpoints as unbounded.
func ruledOutInterval(v int) (lo, hi int) {
	if v < ordered.NegInf {
		v = ordered.NegInf
	}
	if v > ordered.PosInf {
		v = ordered.PosInf
	}
	lo, hi = ordered.NegInf, ordered.PosInf
	if v > ordered.NegInf {
		lo = v - 1
	}
	if v < ordered.PosInf {
		hi = v + 1
	}
	return lo, hi
}

// gapNode is the exploration tree of one atom around the current probe
// point: node at depth p holds the FindGap result for the index prefix
// reached by one of the {ℓ,h}^p vectors of Algorithm 2. When lo == hi the
// ℓ- and h-branches coincide and are shared.
type gapNode struct {
	lo, hi       int
	loVal, hiVal int
	loChild      *gapNode
	hiChild      *gapNode
	allHighMatch bool // all-h path below (and including) this level hits t exactly
}

// exploreAtom performs the {ℓ,h}^p FindGap sweep of Algorithm 2 lines
// 4–10 for one atom around probe point t.
func exploreAtom(a *Atom, t []int) *gapNode {
	k := a.Tree.Arity()
	idx := make([]int, 0, k)
	var rec func(p int) *gapNode
	rec = func(p int) *gapNode {
		target := t[a.Positions[p]]
		lo, hi := a.Tree.FindGap(idx, target)
		nd := &gapNode{lo: lo, hi: hi}
		nd.loVal = a.Tree.Value(append(idx, lo))
		nd.hiVal = a.Tree.Value(append(idx, hi))
		exact := lo == hi // target present at this level
		if p == k-1 {
			nd.allHighMatch = exact
			return nd
		}
		if a.Tree.InRange(idx, lo) {
			idx = append(idx, lo)
			nd.loChild = rec(p + 1)
			idx = idx[:len(idx)-1]
		}
		if exact {
			nd.hiChild = nd.loChild
		} else if a.Tree.InRange(idx, hi) {
			idx = append(idx, hi)
			nd.hiChild = rec(p + 1)
			idx = idx[:len(idx)-1]
		}
		nd.allHighMatch = exact && nd.hiChild != nil && nd.hiChild.allHighMatch
		return nd
	}
	return rec(0)
}

// insertGaps walks the exploration tree and emits one constraint per node
// (Algorithm 2 lines 15–20): the pattern fixes the values along the index
// path at the atom's attribute positions, wildcards elsewhere, and the
// interval is the discovered gap at the next attribute position.
func insertGaps(tree *cds.Tree, a *Atom, n int, root *gapNode, ins func(cds.Constraint)) {
	// pathVals[j] = value of the j-th index along the current path.
	pathVals := make([]int, 0, a.Tree.Arity())
	var walk func(nd *gapNode, p int)
	walk = func(nd *gapNode, p int) {
		if nd == nil {
			return
		}
		if nd.loVal < nd.hiVal { // non-empty gap
			prefixLen := a.Positions[p]
			prefix := make(cds.Pattern, prefixLen)
			for j := range prefix {
				prefix[j] = cds.Star
			}
			for j := 0; j < p; j++ {
				prefix[a.Positions[j]] = cds.Eq(pathVals[j])
			}
			ins(cds.Constraint{Prefix: prefix, Lo: nd.loVal, Hi: nd.hiVal})
		}
		if p == a.Tree.Arity()-1 {
			return
		}
		if nd.loChild != nil && nd.loVal > ordered.NegInf {
			pathVals = append(pathVals, nd.loVal)
			walk(nd.loChild, p+1)
			pathVals = pathVals[:len(pathVals)-1]
		}
		if nd.hiChild != nil && nd.hiChild != nd.loChild && nd.hiVal < ordered.PosInf {
			pathVals = append(pathVals, nd.hiVal)
			walk(nd.hiChild, p+1)
			pathVals = pathVals[:len(pathVals)-1]
		}
	}
	walk(root, 0)
}

// MinesweeperAll runs Minesweeper and collects the output tuples.
func MinesweeperAll(p *Problem, stats *certificate.Stats) ([][]int, error) {
	var out [][]int
	err := Minesweeper(p, stats, func(t []int) { out = append(out, t) })
	return out, err
}

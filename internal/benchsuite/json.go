package benchsuite

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
)

// Result is one benchmark measurement in the machine-readable trajectory
// format. Metrics carries the custom b.ReportMetric series (findgaps/op,
// probes/op, cdsops/op) alongside the standard ns/allocs/bytes.
type Result struct {
	Name        string             `json:"name"`
	Exp         string             `json:"exp"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_op"`
	AllocsPerOp float64            `json:"allocs_op"`
	BytesPerOp  float64            `json:"bytes_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the schema of a BENCH_<n>.json artifact: environment header
// plus one Result per suite entry. Files with equal Schema are
// comparable benchmark-by-benchmark via Name.
type File struct {
	Schema     int      `json:"schema"`
	Label      string   `json:"label,omitempty"`
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	MaxProcs   int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// SchemaVersion is bumped when the Result encoding changes shape.
const SchemaVersion = 1

// Run executes every suite entry accepted by filter (nil = all) through
// testing.Benchmark and reports progress on progress (may be nil).
func Run(filter func(Bench) bool, progress io.Writer) []Result {
	return RunBenches(Suite(), filter, progress)
}

// RunBenches is Run over an explicit bench list — for tracked suites
// that cannot live in this package (e.g. the sharded E15 entries,
// whose package imports the root package and so cannot be imported
// from here; cmd/msbench registers them directly).
func RunBenches(benches []Bench, filter func(Bench) bool, progress io.Writer) []Result {
	var out []Result
	for _, bench := range benches {
		if filter != nil && !filter(bench) {
			continue
		}
		if progress != nil {
			fmt.Fprintf(progress, "running %s...", bench.Name)
		}
		r := testing.Benchmark(bench.F)
		res := Result{
			Name:        bench.Name,
			Exp:         bench.Exp,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:  float64(r.MemBytes) / float64(r.N),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		out = append(out, res)
		if progress != nil {
			fmt.Fprintf(progress, " %.0f ns/op, %.0f allocs/op\n", res.NsPerOp, res.AllocsPerOp)
		}
	}
	return out
}

// WriteJSON wraps the results in the environment header and writes the
// indented BENCH_<n>.json document.
func WriteJSON(w io.Writer, label string, results []Result) error {
	f := File{
		Schema:     SchemaVersion,
		Label:      label,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		MaxProcs:   runtime.GOMAXPROCS(0),
		Benchmarks: results,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a BENCH_<n>.json document.
func ReadJSON(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchsuite: schema %d, want %d", f.Schema, SchemaVersion)
	}
	return &f, nil
}

// Delta is the comparison of one benchmark across two files.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	OldAllocs, NewAllocs float64
}

// NsRatio returns new/old ns per op (1.0 = unchanged; <1 = faster).
func (d Delta) NsRatio() float64 { return ratio(d.NewNs, d.OldNs) }

// AllocsRatio returns new/old allocs per op.
func (d Delta) AllocsRatio() float64 { return ratio(d.NewAllocs, d.OldAllocs) }

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		// Regressing from zero to nonzero must read as a blow-up, not
		// an improvement: report +Inf, which comparison output renders
		// as an unbounded increase.
		return math.Inf(1)
	}
	return a / b
}

// Compare matches benchmarks of two files by name, in the old file's
// order (for BENCH_*.json artifacts that is the curated Suite() order:
// E1–E9 first, micro-benchmarks last). Benchmarks present in only one
// file are skipped.
func Compare(old, new *File) []Delta {
	idx := make(map[string]Result, len(new.Benchmarks))
	for _, r := range new.Benchmarks {
		idx[r.Name] = r
	}
	var out []Delta
	for _, o := range old.Benchmarks {
		n, ok := idx[o.Name]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Name:  o.Name,
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
		})
	}
	return out
}
